/**
 * @file
 * Quickstart: profile one workload with the two-phase methodology.
 *
 * Builds a ResNet50 int8 engine for the Jetson Orin Nano, runs a
 * single inference process, and prints the SoC-, GPU- and kernel-
 * level metrics the paper's Table 2 defines, followed by the
 * bottleneck analysis.
 *
 * Usage: quickstart [device] [model] [precision] [batch] [processes]
 *   e.g. quickstart orin-nano yolov8n int8 4 2
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/bottleneck.hh"
#include "core/profiler.hh"
#include "prof/report.hh"

using namespace jetsim;

int
main(int argc, char **argv)
{
    core::ExperimentSpec spec;
    spec.device = argc > 1 ? argv[1] : "orin-nano";
    spec.model = argc > 2 ? argv[2] : "resnet50";
    spec.precision = soc::precisionFromName(argc > 3 ? argv[3] : "int8");
    spec.batch = argc > 4 ? std::atoi(argv[4]) : 1;
    spec.processes = argc > 5 ? std::atoi(argv[5]) : 1;

    std::printf("jetsim quickstart: %s\n", spec.label().c_str());

    // Phase 1: lightweight metrics with no profiler intrusion.
    auto [light, deep] = core::runTwoPhase(spec);

    prof::printHeading(std::cout, "Phase 1 (trtexec + jetson-stats)");
    prof::Table t1({"metric", "value", "unit"});
    t1.addRow({"throughput (total)", prof::fmt(light.total_throughput, 1),
               "img/s"});
    t1.addRow({"throughput / process",
               prof::fmt(light.throughput_per_process, 1), "img/s"});
    t1.addRow({"power (avg)", prof::fmt(light.avg_power_w), "W"});
    t1.addRow({"power (max)", prof::fmt(light.max_power_w), "W"});
    t1.addRow({"GPU utilisation", prof::fmt(light.gpu_util_pct, 1), "%"});
    t1.addRow({"GPU memory", prof::fmt(light.mem_pct, 1), "%"});
    t1.addRow({"workload memory", prof::fmt(light.workload_mem_mb, 0),
               "MiB"});
    t1.print(std::cout);

    // Phase 2: deep tracing (note the intrusion on throughput).
    prof::printHeading(std::cout, "Phase 2 (Nsight Systems attached)");
    prof::Table t2({"metric", "value", "unit"});
    t2.addRow({"throughput under profiler",
               prof::fmt(deep.total_throughput, 1), "img/s"});
    t2.addRow({"profiler intrusion",
               prof::fmt(100.0 * (1.0 - deep.total_throughput /
                                            light.total_throughput),
                         0),
               "% slower"});
    t2.addRow({"kernels traced", prof::fmt(double(deep.kernels), 0),
               ""});
    t2.addRow({"kernel duration (mean)", prof::fmt(deep.kernel_us_mean, 1),
               "us"});
    t2.addRow({"SM active (median)", prof::fmt(deep.sm_active.median(), 1),
               "%"});
    t2.addRow({"issue slot (median)",
               prof::fmt(deep.issue_slot.median(), 1), "%"});
    t2.addRow({"TC util (median)", prof::fmt(deep.tc_util.median(), 1),
               "%"});
    t2.print(std::cout);

    prof::printHeading(std::cout, "Kernel-level decomposition (deep)");
    const auto b = core::analyzeBottleneck(deep);
    prof::Table t3({"term", "ms/EC"});
    t3.addRow({"EC span", prof::fmt(b.ec_ms)});
    t3.addRow({"K (launch API)", prof::fmt(b.launch_ms)});
    t3.addRow({"B (blocking)", prof::fmt(b.blocking_ms)});
    t3.addRow({"T (resched)", prof::fmt(b.resched_ms)});
    t3.addRow({"C (cpu work)", prof::fmt(b.cpu_ms)});
    t3.addRow({"  cache penalty", prof::fmt(b.cache_ms)});
    t3.addRow({"sync span", prof::fmt(b.sync_ms)});
    t3.print(std::cout);
    std::printf("\nbottleneck: %s - %s\n", core::bottleneckName(b.primary),
                b.explanation.c_str());

    const auto obs = core::makeObservations({light, deep});
    if (!obs.empty()) {
        prof::printHeading(std::cout, "Observations");
        for (const auto &o : obs)
            std::printf("  [%s] %s\n", o.id.c_str(), o.text.c_str());
    }
    return 0;
}
