/**
 * @file
 * Edge-vs-cloud offloading analysis (the paper's introduction).
 *
 * "In cloud environments equipped with NVIDIA A40 GPUs, a single
 * YoloV8n model is capable of processing over 1000 images per second
 * using fp16 precision. However, network-related delays ... diminish
 * the effective throughput." (paper S1)
 *
 * This example profiles the same workload on the edge boards and on
 * the A40-class cloud device, then folds in a network model
 * (bandwidth + RTT) to compute the *effective* throughput and
 * end-to-end latency a client sees for each placement.
 *
 * Usage: edge_cloud_offload [uplink_mbps] [rtt_ms]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/profiler.hh"
#include "models/zoo.hh"
#include "prof/report.hh"
#include "soc/network_link.hh"

using namespace jetsim;

namespace {

struct Placement
{
    std::string name;
    double device_fps;   ///< what the accelerator sustains
    double effective_fps;///< after the network bottleneck
    double latency_ms;   ///< per-image end-to-end
    double power_w;
};

Placement
evaluate(const std::string &device, const soc::NetworkLink &link)
{
    core::ExperimentSpec s;
    s.device = device;
    s.model = "yolov8n";
    s.precision = soc::Precision::Fp16;
    s.batch = 4;
    s.warmup = sim::msec(250);
    s.duration = sim::sec(2);
    std::fprintf(stderr, "  profiling %s\n", s.label().c_str());
    const auto r = core::runExperiment(s);

    Placement p;
    p.name = device;
    p.device_fps = r.total_throughput;
    p.power_w = r.avg_power_w;

    if (device == "a40") {
        // Remote accelerator: the wire caps the stream.
        p.effective_fps = link.effectiveThroughput(p.device_fps);
        p.latency_ms =
            link.endToEndLatencyMs(p.device_fps, s.batch);
    } else {
        p.effective_fps = p.device_fps;
        p.latency_ms = r.mean.pipeline_ms;
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    soc::NetworkLink link;
    link.uplink_mbps = argc > 1 ? std::atof(argv[1]) : 50.0;
    link.rtt_ms = argc > 2 ? std::atof(argv[2]) : 40.0;

    std::printf("edge vs cloud for YoloV8n fp16 (uplink %.0f Mbps, "
                "RTT %.0f ms; wire admits %.0f img/s)\n",
                link.uplink_mbps, link.rtt_ms,
                link.wireThroughput());

    prof::Table t({"placement", "device fps", "effective fps",
                   "latency (ms)", "board power (W)"});
    Placement best{};
    for (const char *device : {"orin-nano", "nano", "a40"}) {
        const auto p = evaluate(device, link);
        t.addRow({p.name, prof::fmt(p.device_fps, 0),
                  prof::fmt(p.effective_fps, 0),
                  prof::fmt(p.latency_ms, 1), prof::fmt(p.power_w)});
        if (p.effective_fps > best.effective_fps)
            best = p;
    }
    prof::printHeading(std::cout, "Placement comparison");
    t.print(std::cout);

    std::printf("\nhighest effective throughput: %s (%.0f img/s)\n",
                best.name.c_str(), best.effective_fps);
    std::printf("note how the cloud's 1000+ img/s collapses to the "
                "uplink budget - the paper's core offloading "
                "trade-off.\n");
    return 0;
}
