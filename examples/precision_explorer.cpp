/**
 * @file
 * Precision explorer: how a model behaves across the four formats on
 * a device - throughput, memory, power, per-image energy, builder
 * fallbacks, and the resulting recommendation (the paper's S6.1
 * boxed takeaways, generated from data).
 *
 * Usage: precision_explorer [device] [model] [batch]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/bottleneck.hh"
#include "core/profiler.hh"
#include "core/sweep.hh"
#include "models/zoo.hh"
#include "prof/report.hh"
#include "trt/builder.hh"

using namespace jetsim;

int
main(int argc, char **argv)
{
    core::ExperimentSpec base;
    base.device = argc > 1 ? argv[1] : "orin-nano";
    base.model = argc > 2 ? argv[2] : "resnet50";
    base.batch = argc > 3 ? std::atoi(argv[3]) : 1;
    base.warmup = sim::msec(250);
    base.duration = sim::sec(2);

    std::printf("precision exploration: %s on %s, batch %d\n",
                base.model.c_str(), base.device.c_str(), base.batch);

    const auto results = core::sweepPrecision(
        base,
        {soc::Precision::Int8, soc::Precision::Fp16,
         soc::Precision::Tf32, soc::Precision::Fp32},
        [](const std::string &l) {
            std::fprintf(stderr, "  running %s\n", l.c_str());
        });

    const auto net = models::modelByName(base.model);
    trt::Builder builder(soc::deviceByName(base.device));

    prof::Table t({"precision", "img/s", "ms/img", "W", "W/img",
                   "mem (MiB)", "fallback ops", "bottleneck"});
    for (const auto &r : results) {
        trt::BuilderConfig cfg;
        cfg.precision = r.spec.precision;
        cfg.batch = base.batch;
        const auto engine = builder.build(net, cfg);
        const auto b = core::analyzeBottleneck(r);
        t.addRow({soc::name(r.spec.precision),
                  prof::fmt(r.total_throughput, 1),
                  prof::fmt(1e3 / r.total_throughput, 2),
                  prof::fmt(r.avg_power_w),
                  prof::fmt(r.avg_power_w / r.total_throughput, 3),
                  prof::fmt(r.workload_mem_mb, 0),
                  std::to_string(engine.fallbackOps()),
                  core::bottleneckName(b.primary)});
    }
    prof::printHeading(std::cout, "Precision sweep");
    t.print(std::cout);

    const auto obs = core::makeObservations(results);
    prof::printHeading(std::cout, "Recommendation");
    for (const auto &o : obs)
        std::printf("  [%s] %s\n", o.id.c_str(), o.text.c_str());
    return 0;
}
