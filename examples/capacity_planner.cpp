/**
 * @file
 * Capacity planner: the paper's motivating use case.
 *
 * "Instead of manual trial and error with QoS requirements (optimal
 * number of concurrent processes, optimal batch sizes, ...) we can
 * make decisions based on this type of analysis." (paper S8)
 *
 * Given a device, a model, a per-stream latency bound and a
 * per-stream throughput floor, the planner sweeps (precision, batch,
 * processes) offline and reports every feasible deployment plus the
 * one serving the most concurrent streams.
 *
 * Usage: capacity_planner [device] [model] [max_latency_ms]
 *                         [min_stream_fps]
 *   e.g. capacity_planner orin-nano yolov8n 100 15
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "core/profiler.hh"
#include "core/runner.hh"
#include "prof/report.hh"

using namespace jetsim;

namespace {

struct Plan
{
    core::ExperimentResult result;
    double stream_fps;  ///< frames/s each process sustains
    double latency_ms;  ///< per-batch completion time
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string device = argc > 1 ? argv[1] : "orin-nano";
    const std::string model = argc > 2 ? argv[2] : "yolov8n";
    const double max_latency_ms = argc > 3 ? std::atof(argv[3]) : 100;
    const double min_fps = argc > 4 ? std::atof(argv[4]) : 15;

    std::printf("capacity planning: %s on %s, latency <= %.0f ms, "
                ">= %.0f fps per stream\n",
                model.c_str(), device.c_str(), max_latency_ms,
                min_fps);

    prof::Table t({"precision", "batch", "procs", "fps/stream",
                   "latency (ms)", "power (W)", "mem (MiB)",
                   "feasible"});
    std::optional<Plan> best;

    // The full offline sweep is embarrassingly parallel: build every
    // (precision, batch, processes) cell up front and hand the list
    // to the Runner. Results come back in submission order, so the
    // table reads exactly as the old serial triple loop printed it.
    std::vector<core::ExperimentSpec> specs;
    for (auto prec : soc::kAllPrecisions) {
        for (int batch : {1, 2, 4, 8}) {
            for (int procs : {1, 2, 4, 8}) {
                core::ExperimentSpec s;
                s.device = device;
                s.model = model;
                s.precision = prec;
                s.batch = batch;
                s.processes = procs;
                s.warmup = sim::msec(250);
                s.duration = sim::msec(1500);
                specs.push_back(s);
            }
        }
    }
    core::Runner runner; // JETSIM_THREADS / JETSIM_CACHE_DIR aware
    auto results =
        runner.run(specs, [](const std::string &label) {
            std::fprintf(stderr, "  evaluating %s\n", label.c_str());
        });

    for (auto &r : results) {
        const auto prec = r.spec.precision;
        const int batch = r.spec.batch;
        const int procs = r.spec.processes;
        if (!r.all_deployed) {
            t.addRow({soc::name(prec), std::to_string(batch),
                      std::to_string(procs), "-", "-", "-", "-",
                      "OOM"});
            continue;
        }
        Plan p{std::move(r), 0, 0};
        p.stream_fps = p.result.throughput_per_process;
        p.latency_ms = p.result.mean.pipeline_ms;
        const bool ok = p.latency_ms <= max_latency_ms &&
                        p.stream_fps >= min_fps;
        t.addRow({soc::name(prec), std::to_string(batch),
                  std::to_string(procs),
                  prof::fmt(p.stream_fps, 1),
                  prof::fmt(p.latency_ms, 1),
                  prof::fmt(p.result.avg_power_w),
                  prof::fmt(p.result.workload_mem_mb, 0),
                  ok ? "yes" : "no"});
        if (ok &&
            (!best ||
             p.result.spec.processes > best->result.spec.processes ||
             (p.result.spec.processes ==
                  best->result.spec.processes &&
              p.stream_fps > best->stream_fps)))
            best = std::move(p);
    }

    prof::printHeading(std::cout, "Sweep");
    t.print(std::cout);

    if (best) {
        const auto &s = best->result.spec;
        std::printf("\nrecommended deployment: %d x %s/%s batch %d "
                    "-> %d streams at %.1f fps each, %.1f ms latency, "
                    "%.2f W\n",
                    s.processes, model.c_str(), soc::name(s.precision),
                    s.batch, s.processes, best->stream_fps,
                    best->latency_ms, best->result.avg_power_w);
    } else {
        std::printf("\nno deployment on %s meets the QoS; offload to "
                    "the cloud or add accelerators (see "
                    "edge_cloud_offload).\n",
                    device.c_str());
    }
    return 0;
}
