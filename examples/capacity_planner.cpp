/**
 * @file
 * Capacity planner: the paper's motivating use case.
 *
 * "Instead of manual trial and error with QoS requirements (optimal
 * number of concurrent processes, optimal batch sizes, ...) we can
 * make decisions based on this type of analysis." (paper S8)
 *
 * Given a device, a model, a per-stream latency bound and a
 * per-stream throughput floor, the planner sweeps (precision, batch,
 * processes) offline and reports every feasible deployment plus the
 * one serving the most concurrent streams.
 *
 * With --prescreen the jetbound abstract interpreter (src/absint)
 * runs first on every cell: cells it PROVES infeasible (guaranteed
 * OOM, latency lower bound above the SLO, or throughput upper bound
 * below the floor) are pruned without simulating them. Pruning is
 * sound — a pruned cell can never be feasible — so the recommended
 * deployment is identical with and without it, and the surviving
 * cells' results are bit-identical (checked via the golden digest
 * printed at the end, and by tests/absint/prescreen_test.cc).
 *
 * Usage: capacity_planner [--prescreen] [--min-pruned=N]
 *                         [device] [model] [max_latency_ms]
 *                         [min_stream_fps]
 *   e.g. capacity_planner --prescreen nano fcn_resnet50 100 15
 *
 * Exit: 0 ok; 1 when --min-pruned=N was given and fewer than N
 * cells were provably prunable (CI uses this as the effectiveness
 * gate); 2 usage error.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "absint/prescreen.hh"
#include "core/digest.hh"
#include "core/profiler.hh"
#include "core/sweep.hh"
#include "prof/report.hh"

using namespace jetsim;

namespace {

struct Plan
{
    core::ExperimentResult result;
    double stream_fps;  ///< frames/s each process sustains
    double latency_ms;  ///< per-batch completion time
};

/** FNV-1a fold of the unpruned cells' result digests, grid order. */
std::uint64_t
foldDigest(std::uint64_t acc, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        acc ^= (v >> (8 * i)) & 0xff;
        acc *= 0x100000001b3ull;
    }
    return acc;
}

} // namespace

int
main(int argc, char **argv)
{
    bool prescreen = false;
    int min_pruned = -1;
    std::vector<std::string> pos;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--prescreen") {
            prescreen = true;
        } else if (a.rfind("--min-pruned=", 0) == 0) {
            min_pruned = std::atoi(a.c_str() + 13);
            prescreen = true; // the gate implies the screen
        } else if (a.rfind("--", 0) == 0) {
            std::fprintf(stderr,
                         "capacity_planner: unknown flag %s\n"
                         "usage: capacity_planner [--prescreen] "
                         "[--min-pruned=N] [device] [model] "
                         "[max_latency_ms] [min_stream_fps]\n",
                         a.c_str());
            return 2;
        } else {
            pos.push_back(a);
        }
    }
    const std::string device = pos.size() > 0 ? pos[0] : "orin-nano";
    const std::string model = pos.size() > 1 ? pos[1] : "yolov8n";
    const double max_latency_ms =
        pos.size() > 2 ? std::atof(pos[2].c_str()) : 100;
    const double min_fps =
        pos.size() > 3 ? std::atof(pos[3].c_str()) : 15;

    std::printf("capacity planning: %s on %s, latency <= %.0f ms, "
                ">= %.0f fps per stream%s\n",
                model.c_str(), device.c_str(), max_latency_ms, min_fps,
                prescreen ? " [static prescreen on]" : "");

    const std::vector<int> batches = {1, 2, 4, 8};
    const std::vector<int> procs_axis = {1, 2, 4, 8};
    const absint::Slo slo{max_latency_ms, min_fps};

    prof::Table t({"precision", "batch", "procs", "fps/stream",
                   "latency (ms)", "power (W)", "mem (MiB)",
                   "feasible"});
    std::optional<Plan> best;
    int pruned_total = 0, simulated_total = 0;
    std::uint64_t golden = 0xcbf29ce484222325ull;
    const auto t0 = std::chrono::steady_clock::now();

    // The grid stays embarrassingly parallel: per precision, the
    // batch x processes plane goes through sweepGridScreened, which
    // feeds surviving cells to the same Runner sweepGrid uses
    // (JETSIM_THREADS / JETSIM_CACHE_DIR aware), so unpruned results
    // are bit-identical to the unscreened sweep.
    for (auto prec : soc::kAllPrecisions) {
        core::ExperimentSpec base;
        base.device = device;
        base.model = model;
        base.precision = prec;
        base.warmup = sim::msec(250);
        base.duration = sim::msec(1500);

        // Screen verdicts in grid order (keep() is called on the
        // submitting thread, cell by cell, before any simulation).
        std::vector<absint::ScreenResult> screens;
        core::CellScreenFn keep;
        if (prescreen)
            keep = [&](const core::ExperimentSpec &s) {
                screens.push_back(absint::screen(s, slo));
                return screens.back().verdict !=
                       absint::Verdict::ProvedInfeasible;
            };
        auto sweep = core::sweepGridScreened(
            base, batches, procs_axis, keep,
            [](const std::string &label) {
                std::fprintf(stderr, "  evaluating %s\n",
                             label.c_str());
            });
        pruned_total += sweep.pruned;
        simulated_total += sweep.simulated;

        std::size_t cell = 0;
        for (int procs : procs_axis) {
            for (int batch : batches) {
                auto &slot = sweep.cells[cell];
                const auto *sc =
                    prescreen ? &screens[cell] : nullptr;
                ++cell;
                if (!slot.has_value()) { // statically pruned
                    t.addRow({soc::name(prec), std::to_string(batch),
                              std::to_string(procs), "-", "-", "-",
                              "-", "pruned: " + sc->reason});
                    continue;
                }
                auto &r = *slot;
                golden = foldDigest(golden, core::resultDigest(r));
                if (!r.all_deployed) {
                    t.addRow({soc::name(prec), std::to_string(batch),
                              std::to_string(procs), "-", "-", "-",
                              "-", "OOM"});
                    continue;
                }
                Plan p{std::move(r), 0, 0};
                p.stream_fps = p.result.throughput_per_process;
                p.latency_ms = p.result.mean.pipeline_ms;
                const bool ok = p.latency_ms <= max_latency_ms &&
                                p.stream_fps >= min_fps;
                std::string verdict = ok ? "yes" : "no";
                // Bound-vs-measured tightness: where the measured
                // latency sits inside the static interval (0 % = at
                // the lower bound, 100 % = at the upper bound).
                if (sc && sc->bounds.ok &&
                    !sc->bounds.procs.empty()) {
                    const auto &iv =
                        sc->bounds.procs.front().latency_ms;
                    if (iv.width() > 0)
                        verdict += " (lat " +
                                   prof::fmt(100.0 *
                                                 (p.latency_ms -
                                                  iv.lo) /
                                                 iv.width(),
                                             0) +
                                   "% of bound)";
                }
                t.addRow({soc::name(prec), std::to_string(batch),
                          std::to_string(procs),
                          prof::fmt(p.stream_fps, 1),
                          prof::fmt(p.latency_ms, 1),
                          prof::fmt(p.result.avg_power_w),
                          prof::fmt(p.result.workload_mem_mb, 0),
                          verdict});
                if (ok &&
                    (!best ||
                     p.result.spec.processes >
                         best->result.spec.processes ||
                     (p.result.spec.processes ==
                          best->result.spec.processes &&
                      p.stream_fps > best->stream_fps)))
                    best = std::move(p);
            }
        }
    }

    prof::printHeading(std::cout, "Sweep");
    t.print(std::cout);

    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    if (prescreen) {
        const double per_cell =
            simulated_total ? wall_s / simulated_total : 0;
        std::printf("\nprescreen: pruned %d of %d cells statically; "
                    "simulated %d in %.1f s (~%.1f s of simulation "
                    "avoided)\n",
                    pruned_total, pruned_total + simulated_total,
                    simulated_total, wall_s,
                    per_cell * pruned_total);
    }
    std::printf("unpruned golden digest: %016llx\n",
                static_cast<unsigned long long>(golden));

    if (best) {
        const auto &s = best->result.spec;
        std::printf("\nrecommended deployment: %d x %s/%s batch %d "
                    "-> %d streams at %.1f fps each, %.1f ms latency, "
                    "%.2f W\n",
                    s.processes, model.c_str(), soc::name(s.precision),
                    s.batch, s.processes, best->stream_fps,
                    best->latency_ms, best->result.avg_power_w);
    } else {
        std::printf("\nno deployment on %s meets the QoS; offload to "
                    "the cloud or add accelerators (see "
                    "edge_cloud_offload).\n",
                    device.c_str());
    }
    if (min_pruned >= 0 && pruned_total < min_pruned) {
        std::fprintf(stderr,
                     "capacity_planner: only %d cell(s) pruned, "
                     "expected >= %d\n",
                     pruned_total, min_pruned);
        return 1;
    }
    return 0;
}
