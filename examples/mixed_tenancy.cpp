/**
 * @file
 * Multi-tenant serving: different models sharing one edge GPU.
 *
 * The paper's related work (AI multi-tenancy on edge) motivates
 * running heterogeneous DL services concurrently. This example
 * deploys a classification tenant (ResNet50 int8) next to a
 * detection tenant (YoloV8n fp16) on the Orin Nano, quantifies the
 * mutual interference against each tenant running alone, and prints
 * the per-tenant Section-7 decomposition.
 *
 * Usage: mixed_tenancy [device]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/profiler.hh"
#include "prof/report.hh"

using namespace jetsim;

namespace {

core::MixedExperimentSpec
mixOn(const std::string &device)
{
    core::MixedExperimentSpec s;
    s.device = device;
    s.workloads = {
        core::WorkloadSpec{"resnet50", soc::Precision::Int8, 1, 2},
        core::WorkloadSpec{"yolov8n", soc::Precision::Fp16, 2, 1},
        core::WorkloadSpec{"mobilenet_v2", soc::Precision::Int8, 1, 1},
    };
    s.warmup = sim::msec(300);
    s.duration = sim::sec(2);
    return s;
}

double
soloThroughput(const std::string &device,
               const core::WorkloadSpec &w)
{
    core::MixedExperimentSpec s;
    s.device = device;
    s.workloads = {w};
    s.warmup = sim::msec(300);
    s.duration = sim::sec(2);
    return runMixedExperiment(s).throughput_by_workload[0];
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string device = argc > 1 ? argv[1] : "orin-nano";
    const auto spec = mixOn(device);

    std::printf("multi-tenant serving on %s\n", device.c_str());
    std::fprintf(stderr, "  running %s\n", spec.label().c_str());
    const auto mixed = core::runMixedExperiment(spec);
    if (!mixed.all_deployed) {
        std::printf("deployment failed: %d/%d processes fit\n",
                    mixed.deployed_count, spec.totalProcesses());
        return 1;
    }

    prof::Table t({"tenant", "procs", "solo (img/s)",
                   "shared (img/s)", "retained (%)"});
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
        const auto &wl = spec.workloads[w];
        std::fprintf(stderr, "  running %s alone\n", wl.model.c_str());
        const double solo = soloThroughput(device, wl);
        const double shared = mixed.throughput_by_workload[w];
        t.addRow({wl.model + "/" + soc::name(wl.precision),
                  std::to_string(wl.processes), prof::fmt(solo, 1),
                  prof::fmt(shared, 1),
                  prof::fmt(100.0 * shared / solo, 0)});
    }
    prof::printHeading(std::cout, "Interference matrix");
    t.print(std::cout);

    prof::printHeading(std::cout, "Per-tenant kernel-level view");
    prof::Table d({"process", "EC (ms)", "K launch (ms)",
                   "B block (ms)", "C cpu (ms)"});
    for (const auto &p : mixed.procs)
        d.addRow({p.name, prof::fmt(p.ec_ms),
                  prof::fmt(p.launch_ms_per_ec),
                  prof::fmt(p.blocking_ms_per_ec),
                  prof::fmt(p.cpu_ms_per_ec)});
    d.print(std::cout);

    std::printf("\nboard: %.2f W avg, %.1f%% GPU util, %.0f MiB "
                "pinned\n",
                mixed.avg_power_w, mixed.gpu_util_pct,
                mixed.workload_mem_mb);
    return 0;
}
