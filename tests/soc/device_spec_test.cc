/**
 * @file
 * Checks the device factories against the paper's Table 1 and the
 * derived architectural peaks.
 */

#include "soc/device_spec.hh"

#include <gtest/gtest.h>

namespace jetsim::soc {
namespace {

TEST(DeviceSpec, OrinNanoMatchesTable1)
{
    const DeviceSpec d = orinNano();
    EXPECT_EQ(d.name, "orin-nano");
    EXPECT_EQ(d.totalCores(), 6);               // 6-core A78AE
    EXPECT_EQ(d.bigCores(), 3);                 // 3 heavy-load cores
    EXPECT_EQ(d.gpu.totalCudaCores(), 1024);    // 1024-core Ampere
    EXPECT_EQ(d.gpu.totalTensorCores(), 32);    // 32 tensor cores
    EXPECT_EQ(d.memory.total, 8 * sim::kGiB);   // 8 GB unified
    EXPECT_DOUBLE_EQ(d.power.cap_w, 7.0);       // 7-15 W mode
    EXPECT_TRUE(d.gpu.hasTensorCores());
}

TEST(DeviceSpec, JetsonNanoMatchesTable1)
{
    const DeviceSpec d = jetsonNano();
    EXPECT_EQ(d.name, "nano");
    EXPECT_EQ(d.totalCores(), 4);               // 4-core A57
    EXPECT_EQ(d.bigCores(), 2);                 // 2 heavy-load cores
    EXPECT_EQ(d.gpu.totalCudaCores(), 128);     // 128-core Maxwell
    EXPECT_EQ(d.gpu.totalTensorCores(), 0);     // no tensor cores
    EXPECT_EQ(d.memory.total, 4 * sim::kGiB);   // 4 GB unified
    EXPECT_DOUBLE_EQ(d.power.cap_w, 5.0);       // 5-10 W mode
    EXPECT_FALSE(d.gpu.hasTensorCores());
}

TEST(DeviceSpec, PeakCudaRateFollowsGeometry)
{
    const DeviceSpec d = orinNano();
    // 1024 cores x 2 FLOP x 0.625 GHz = 1280 GFLOPS.
    EXPECT_NEAR(d.gpu.peakCudaGflopsFp32(), 1280.0, 1.0);
}

TEST(DeviceSpec, PeakTcRatesScaleByPrecision)
{
    const GpuSpec &g = orinNano().gpu;
    const double fp16 = g.peakTcGflops(Precision::Fp16);
    EXPECT_GT(fp16, 0.0);
    EXPECT_DOUBLE_EQ(g.peakTcGflops(Precision::Int8), 2.0 * fp16);
    EXPECT_DOUBLE_EQ(g.peakTcGflops(Precision::Tf32), 0.5 * fp16);
    EXPECT_DOUBLE_EQ(g.peakTcGflops(Precision::Fp32), 0.0);
}

TEST(DeviceSpec, NanoHasNoTcPath)
{
    const GpuSpec &g = jetsonNano().gpu;
    for (Precision p : kAllPrecisions)
        EXPECT_DOUBLE_EQ(g.peakTcGflops(p), 0.0);
}

TEST(DeviceSpec, EffectiveRatesNeverExceedPeaks)
{
    for (const auto &d : {orinNano(), jetsonNano(), cloudA40()}) {
        const GpuSpec &g = d.gpu;
        if (g.hasTensorCores()) {
            EXPECT_LE(g.eff_tc_gflops_int8,
                      g.peakTcGflops(Precision::Int8));
            EXPECT_LE(g.eff_tc_gflops_fp16,
                      g.peakTcGflops(Precision::Fp16));
        }
        EXPECT_LE(g.eff_cuda_gflops_fp32, g.peakCudaGflopsFp32());
    }
}

TEST(DeviceSpec, PrecisionCoverageReflectsArchitecture)
{
    const DeviceSpec orin = orinNano();
    for (Precision p : kAllPrecisions)
        EXPECT_DOUBLE_EQ(orin.precisionCoverage(p), 1.0);

    const DeviceSpec nano = jetsonNano();
    EXPECT_LT(nano.precisionCoverage(Precision::Int8), 0.5);
    EXPECT_DOUBLE_EQ(nano.precisionCoverage(Precision::Tf32), 0.0);
    EXPECT_DOUBLE_EQ(nano.precisionCoverage(Precision::Fp16), 1.0);
}

TEST(DeviceSpec, AvailableMemoryExcludesOsShare)
{
    const DeviceSpec d = jetsonNano();
    EXPECT_EQ(d.availableMemory(),
              d.memory.total - d.memory.os_reserved);
    EXPECT_LT(d.availableMemory(), d.memory.total);
}

TEST(DeviceSpec, LookupByNameRoundTrips)
{
    EXPECT_EQ(deviceByName("orin-nano").name, "orin-nano");
    EXPECT_EQ(deviceByName("nano").name, "nano");
    EXPECT_EQ(deviceByName("a40").name, "a40");
}

TEST(DeviceSpec, NanoFastFp16CudaPathExists)
{
    // GM20B's double-rate fp16 is why fp16 wins on the Nano.
    const GpuSpec &g = jetsonNano().gpu;
    EXPECT_GT(g.eff_cuda_gflops_fp16, g.eff_cuda_gflops_fp32);
}

TEST(PrecisionNames, RoundTrip)
{
    for (Precision p : kAllPrecisions)
        EXPECT_EQ(precisionFromName(name(p)), p);
}

TEST(PrecisionStorage, MatchesFormatWidths)
{
    EXPECT_EQ(storageBytes(Precision::Int8), 1u);
    EXPECT_EQ(storageBytes(Precision::Fp16), 2u);
    EXPECT_EQ(storageBytes(Precision::Tf32), 4u);
    EXPECT_EQ(storageBytes(Precision::Fp32), 4u);
}

} // namespace
} // namespace jetsim::soc
