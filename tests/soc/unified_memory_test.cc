/**
 * @file
 * Unit tests for the unified-memory accounting allocator.
 */

#include "soc/unified_memory.hh"

#include <gtest/gtest.h>

namespace jetsim::soc {
namespace {

constexpr sim::Bytes kGiB = sim::kGiB;

TEST(UnifiedMemory, FreshPoolIsEmpty)
{
    UnifiedMemory mem(4 * kGiB, 1 * kGiB);
    EXPECT_EQ(mem.used(), 0u);
    EXPECT_EQ(mem.available(), 3 * kGiB);
    EXPECT_EQ(mem.total(), 4 * kGiB);
    EXPECT_EQ(mem.oomEvents(), 0u);
}

TEST(UnifiedMemory, AllocateAndRelease)
{
    UnifiedMemory mem(4 * kGiB, 1 * kGiB);
    const auto id = mem.allocate("p0", 512 * sim::kMiB);
    ASSERT_NE(id, UnifiedMemory::kBadAlloc);
    EXPECT_EQ(mem.used(), 512 * sim::kMiB);
    mem.release(id);
    EXPECT_EQ(mem.used(), 0u);
}

TEST(UnifiedMemory, OomReturnsBadAlloc)
{
    UnifiedMemory mem(2 * kGiB, 1 * kGiB);
    EXPECT_EQ(mem.allocate("p0", 2 * kGiB), UnifiedMemory::kBadAlloc);
    EXPECT_EQ(mem.oomEvents(), 1u);
    EXPECT_EQ(mem.used(), 0u);
}

TEST(UnifiedMemory, ExactFitSucceeds)
{
    UnifiedMemory mem(2 * kGiB, 1 * kGiB);
    EXPECT_NE(mem.allocate("p0", 1 * kGiB), UnifiedMemory::kBadAlloc);
    EXPECT_EQ(mem.available(), 0u);
    EXPECT_EQ(mem.allocate("p1", 1), UnifiedMemory::kBadAlloc);
}

TEST(UnifiedMemory, UsagePercentIncludesOsShare)
{
    UnifiedMemory mem(4 * kGiB, 1 * kGiB);
    EXPECT_DOUBLE_EQ(mem.usagePercent(), 25.0);
    mem.allocate("p0", 1 * kGiB);
    EXPECT_DOUBLE_EQ(mem.usagePercent(), 50.0);
    EXPECT_DOUBLE_EQ(mem.workloadPercent(), 25.0);
}

TEST(UnifiedMemory, OwnerAccounting)
{
    UnifiedMemory mem(4 * kGiB, 0);
    mem.allocate("a", 100);
    mem.allocate("a", 200);
    mem.allocate("b", 50);
    EXPECT_EQ(mem.ownerUsage("a"), 300u);
    EXPECT_EQ(mem.ownerUsage("b"), 50u);
    EXPECT_EQ(mem.ownerUsage("c"), 0u);
}

TEST(UnifiedMemory, ReleaseOwnerDropsAllOfTheirs)
{
    UnifiedMemory mem(4 * kGiB, 0);
    mem.allocate("a", 100);
    mem.allocate("b", 50);
    mem.allocate("a", 200);
    mem.releaseOwner("a");
    EXPECT_EQ(mem.used(), 50u);
    EXPECT_EQ(mem.ownerUsage("a"), 0u);
}

TEST(UnifiedMemory, PeakTracksHighWaterMark)
{
    UnifiedMemory mem(4 * kGiB, 0);
    const auto a = mem.allocate("p", 300);
    mem.allocate("p", 100);
    mem.release(a);
    EXPECT_EQ(mem.used(), 100u);
    EXPECT_EQ(mem.peakUsed(), 400u);
}

TEST(UnifiedMemory, ManySmallAllocationsSumCorrectly)
{
    UnifiedMemory mem(1 * kGiB, 0);
    for (int i = 0; i < 100; ++i)
        ASSERT_NE(mem.allocate("p", 1024), UnifiedMemory::kBadAlloc);
    EXPECT_EQ(mem.used(), 100u * 1024u);
}

TEST(UnifiedMemory, FailedAllocationLeavesStateIntact)
{
    UnifiedMemory mem(1 * kGiB, 0);
    mem.allocate("p", 512 * sim::kMiB);
    const auto before = mem.used();
    EXPECT_EQ(mem.allocate("p", 600 * sim::kMiB),
              UnifiedMemory::kBadAlloc);
    EXPECT_EQ(mem.used(), before);
    // Smaller request still succeeds afterwards.
    EXPECT_NE(mem.allocate("p", 100 * sim::kMiB),
              UnifiedMemory::kBadAlloc);
}

} // namespace
} // namespace jetsim::soc
