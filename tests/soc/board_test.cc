/**
 * @file
 * Board composition tests: activity publication, power integration,
 * and the 15 W power-mode variant.
 */

#include "soc/board.hh"

#include <gtest/gtest.h>

namespace jetsim::soc {
namespace {

TEST(Board, IdleBoardDrawsIdlePower)
{
    sim::EventQueue eq;
    Board b(orinNano(), eq);
    EXPECT_NEAR(b.powerW(), b.spec().power.idle_w, 1e-9);
    EXPECT_FALSE(b.activity().gpu_busy);
}

TEST(Board, CpuActivityRaisesPower)
{
    sim::EventQueue eq;
    Board b(orinNano(), eq);
    const double idle = b.powerW();
    b.setCpuActive(2, 1);
    EXPECT_GT(b.powerW(), idle);
    EXPECT_EQ(b.activity().cpu_active_big, 2);
    EXPECT_EQ(b.activity().cpu_active_little, 1);
}

TEST(Board, GpuStateClearsWhenIdle)
{
    sim::EventQueue eq;
    Board b(orinNano(), eq);
    b.setGpuState(true, 0.9, 0.3, 0.4, 0.5);
    EXPECT_TRUE(b.activity().gpu_busy);
    EXPECT_DOUBLE_EQ(b.activity().tc_util, 0.4);
    b.setGpuState(false, 0.9, 0.3, 0.4, 0.5);
    EXPECT_DOUBLE_EQ(b.activity().sm_active, 0.0);
    EXPECT_DOUBLE_EQ(b.activity().tc_util, 0.0);
}

TEST(Board, PowerRailIntegratesOverTime)
{
    sim::EventQueue eq;
    Board b(orinNano(), eq);
    const double idle = b.powerW();
    // Busy for the second half of a 2 ms window.
    eq.schedule(sim::msec(1), [&] {
        b.setGpuState(true, 1.0, 0.5, 0.5, 0.5);
    });
    eq.runUntil(sim::msec(2));
    const double avg = b.powerTw().average(eq.now());
    EXPECT_GT(avg, idle);
    EXPECT_LT(avg, b.powerW()); // less than the busy level
}

TEST(Board, GpuBusyTwTracksDutyCycle)
{
    sim::EventQueue eq;
    Board b(orinNano(), eq);
    eq.schedule(sim::msec(1), [&] {
        b.setGpuState(true, 1, 0, 0, 0);
    });
    eq.schedule(sim::msec(3), [&] {
        b.setGpuState(false, 0, 0, 0, 0);
    });
    eq.runUntil(sim::msec(4));
    EXPECT_NEAR(b.gpuBusyTw().average(eq.now()), 0.5, 1e-9);
}

TEST(Board, SeedVariesRngNotSpec)
{
    sim::EventQueue eq;
    Board a(orinNano(), eq, 1);
    Board b(orinNano(), eq, 2);
    EXPECT_NE(a.rng().next(), b.rng().next());
    EXPECT_EQ(a.spec().gpu.num_sms, b.spec().gpu.num_sms);
}

TEST(Board, LaunchOverheadFactorDefaultsToOne)
{
    sim::EventQueue eq;
    Board b(orinNano(), eq);
    EXPECT_DOUBLE_EQ(b.launchOverheadFactor(), 1.0);
    b.setLaunchOverheadFactor(1.7);
    EXPECT_DOUBLE_EQ(b.launchOverheadFactor(), 1.7);
}

TEST(PowerMode, FifteenWattModeRaisesEnvelopeAndClock)
{
    const auto w7 = orinNano();
    const auto w15 = orinNano15W();
    EXPECT_DOUBLE_EQ(w15.power.cap_w, 15.0);
    EXPECT_GT(w15.gpu.max_freq_ghz, w7.gpu.max_freq_ghz);
    EXPECT_GT(w15.gpu.eff_tc_gflops_int8, w7.gpu.eff_tc_gflops_int8);
    // Same silicon: geometry and memory unchanged.
    EXPECT_EQ(w15.gpu.totalCudaCores(), w7.gpu.totalCudaCores());
    EXPECT_EQ(w15.memory.total, w7.memory.total);
    EXPECT_DOUBLE_EQ(w15.gpu.mem_bw_gbps, w7.gpu.mem_bw_gbps);
}

TEST(PowerMode, LookupByName)
{
    EXPECT_EQ(deviceByName("orin-nano-15w").name, "orin-nano-15w");
}

} // namespace
} // namespace jetsim::soc
