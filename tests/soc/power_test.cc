/**
 * @file
 * Unit tests for the power model.
 */

#include "soc/power.hh"

#include <gtest/gtest.h>

namespace jetsim::soc {
namespace {

PowerSpec
spec()
{
    PowerSpec s;
    s.idle_w = 2.0;
    s.cap_w = 7.0;
    s.cpu_core_w = 0.5;
    s.cpu_little_w = 0.2;
    s.gpu_base_w = 0.4;
    s.sm_w = 1.0;
    s.tc_w = 2.0;
    s.dram_w = 1.0;
    return s;
}

TEST(PowerModel, IdleBoardDrawsIdlePower)
{
    PowerModel pm(spec());
    EXPECT_DOUBLE_EQ(pm.watts(Activity{}, 1.0), 2.0);
}

TEST(PowerModel, CpuCoresAddLinearly)
{
    PowerModel pm(spec());
    Activity a;
    a.cpu_active_big = 2;
    a.cpu_active_little = 1;
    EXPECT_DOUBLE_EQ(pm.watts(a, 1.0), 2.0 + 1.0 + 0.2);
}

TEST(PowerModel, GpuTermsOnlyCountWhileBusy)
{
    PowerModel pm(spec());
    Activity a;
    a.sm_active = 1.0;
    a.tc_util = 1.0;
    a.bw_util = 1.0;
    a.gpu_busy = false;
    EXPECT_DOUBLE_EQ(pm.watts(a, 1.0), 2.0);
    a.gpu_busy = true;
    EXPECT_DOUBLE_EQ(pm.watts(a, 1.0), 2.0 + 0.4 + 1.0 + 2.0 + 1.0);
}

TEST(PowerModel, DynamicTermsScaleWithFrequency)
{
    PowerModel pm(spec());
    Activity a;
    a.gpu_busy = true;
    a.sm_active = 1.0;
    const double full = pm.watts(a, 1.0);
    const double half = pm.watts(a, 0.5);
    // gpu_base stays, the sm term halves.
    EXPECT_DOUBLE_EQ(full - half, 0.5);
}

TEST(PowerModel, MonotoneInEveryActivityTerm)
{
    PowerModel pm(spec());
    Activity lo;
    lo.gpu_busy = true;
    lo.sm_active = 0.2;
    lo.tc_util = 0.1;
    lo.bw_util = 0.1;
    Activity hi = lo;
    hi.sm_active = 0.9;
    hi.tc_util = 0.8;
    hi.bw_util = 0.7;
    hi.cpu_active_big = 3;
    EXPECT_GT(pm.watts(hi, 1.0), pm.watts(lo, 1.0));
}

TEST(PowerModel, TensorCoreTermDominatesWhenWeighted)
{
    // The fp32 power drop: no TC activity means less dynamic power
    // even at full SM activity.
    PowerModel pm(spec());
    Activity fp32;
    fp32.gpu_busy = true;
    fp32.sm_active = 1.0;
    fp32.tc_util = 0.0;
    fp32.bw_util = 0.3;
    Activity int8 = fp32;
    int8.sm_active = 0.8;
    int8.tc_util = 0.6;
    EXPECT_GT(pm.watts(int8, 1.0), pm.watts(fp32, 1.0));
}

} // namespace
} // namespace jetsim::soc
