/**
 * @file
 * NetworkLink model tests.
 */

#include "soc/network_link.hh"

#include <gtest/gtest.h>

namespace jetsim::soc {
namespace {

NetworkLink
link()
{
    NetworkLink l;
    l.uplink_mbps = 80.0;
    l.downlink_mbps = 100.0;
    l.rtt_ms = 30.0;
    l.per_image_bytes = 200e3; // 200 kB frames
    l.result_bytes = 4e3;
    return l;
}

TEST(NetworkLink, WireThroughputFollowsBandwidth)
{
    // 80 Mbps / (200 kB x 8 bits) = 50 img/s.
    EXPECT_NEAR(link().wireThroughput(), 50.0, 1e-9);
}

TEST(NetworkLink, EffectiveThroughputIsTheMin)
{
    const auto l = link();
    EXPECT_NEAR(l.effectiveThroughput(1000.0), 50.0, 1e-9);
    EXPECT_NEAR(l.effectiveThroughput(20.0), 20.0, 1e-9);
}

TEST(NetworkLink, CloudCollapseMatchesPaperIntro)
{
    // The paper's framing: an A40 sustains 1000+ img/s, but a
    // realistic uplink admits a tiny fraction of that.
    const auto l = link();
    EXPECT_LT(l.effectiveThroughput(1000.0), 0.1 * 1000.0);
}

TEST(NetworkLink, LatencyDecomposes)
{
    const auto l = link();
    // batch 1 at 100 fps device: 30 RTT + 20 up + 0.32 down + 10.
    EXPECT_NEAR(l.endToEndLatencyMs(100.0, 1), 60.32, 0.1);
}

TEST(NetworkLink, LatencyGrowsWithBatch)
{
    const auto l = link();
    EXPECT_GT(l.endToEndLatencyMs(100.0, 8),
              l.endToEndLatencyMs(100.0, 1));
}

TEST(NetworkLink, FasterUplinkRaisesEverything)
{
    auto slow = link();
    auto fast = link();
    fast.uplink_mbps = 800.0;
    EXPECT_GT(fast.wireThroughput(), slow.wireThroughput());
    EXPECT_LT(fast.endToEndLatencyMs(100.0, 4),
              slow.endToEndLatencyMs(100.0, 4));
}

TEST(NetworkLink, SaturationPointCapsAtDevice)
{
    const auto l = link();
    EXPECT_NEAR(l.saturationPoint(30.0), 30.0, 1e-9);
    EXPECT_NEAR(l.saturationPoint(500.0), 50.0, 1e-9);
}

} // namespace
} // namespace jetsim::soc
