/**
 * @file
 * Tests for the DVFS governor: throttling under the cap, recovery,
 * and the disable switch (ablation A2).
 */

#include "soc/dvfs.hh"

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace jetsim::soc {
namespace {

DeviceSpec
device()
{
    return orinNano();
}

TEST(Dvfs, StartsAtMaxFrequency)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 3.0; });
    EXPECT_DOUBLE_EQ(g.freqFrac(), 1.0);
    EXPECT_EQ(g.level(), device().gpu.dvfs_levels - 1);
}

TEST(Dvfs, ThrottlesWhenPowerExceedsCap)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 9.0; }); // above 7 W cap
    g.start();
    eq.runUntil(sim::msec(200));
    EXPECT_LT(g.freqFrac(), 1.0);
    EXPECT_GT(g.throttleEvents(), 0u);
}

TEST(Dvfs, HoldsMaxWhenUnderCap)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 4.0; });
    g.start();
    eq.runUntil(sim::sec(1));
    EXPECT_DOUBLE_EQ(g.freqFrac(), 1.0);
    EXPECT_EQ(g.throttleEvents(), 0u);
}

TEST(Dvfs, RecoversAfterLoadDrops)
{
    sim::EventQueue eq;
    double power = 9.0;
    DvfsGovernor g(device(), eq, [&] { return power; });
    g.start();
    eq.runUntil(sim::msec(300));
    EXPECT_LT(g.freqFrac(), 1.0);
    power = 3.0;
    eq.runUntil(eq.now() + sim::sec(2));
    EXPECT_DOUBLE_EQ(g.freqFrac(), 1.0);
}

TEST(Dvfs, DisabledGovernorPinsMax)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 20.0; });
    g.setEnabled(false);
    g.start();
    eq.runUntil(sim::sec(1));
    EXPECT_DOUBLE_EQ(g.freqFrac(), 1.0);
}

TEST(Dvfs, DisablingRestoresMaxLevel)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 9.0; });
    g.start();
    eq.runUntil(sim::msec(300));
    ASSERT_LT(g.freqFrac(), 1.0);
    g.setEnabled(false);
    EXPECT_DOUBLE_EQ(g.freqFrac(), 1.0);
}

TEST(Dvfs, TemperatureRisesUnderLoad)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 6.5; });
    g.start();
    const double t0 = g.tempC();
    eq.runUntil(sim::sec(5));
    EXPECT_GT(g.tempC(), t0);
}

TEST(Dvfs, FrequencyNeverLeavesLevelRange)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 50.0; });
    g.start();
    eq.runUntil(sim::sec(3));
    EXPECT_GE(g.level(), 0);
    const auto &gpu = device().gpu;
    EXPECT_GE(g.freqGhz(), gpu.min_freq_ghz - 1e-9);
    EXPECT_LE(g.freqGhz(), gpu.max_freq_ghz + 1e-9);
}

TEST(Dvfs, ThermalThrottleEngagesWhenHot)
{
    // Lower the throttle point so the thermal path triggers within
    // a short simulation (the stock 95 degC point needs minutes of
    // sustained load).
    sim::EventQueue eq;
    DeviceSpec d = device();
    d.power.throttle_temp_c = 37.0; // just above ambient
    DvfsGovernor g(d, eq, [] { return 6.0; }); // under the 7 W cap
    g.start();
    eq.runUntil(sim::sec(30));
    EXPECT_GT(g.tempC(), d.power.throttle_temp_c - 1.0);
    EXPECT_LT(g.freqFrac(), 1.0);
    EXPECT_GT(g.throttleEvents(), 0u);
}

TEST(Dvfs, TemperatureEquilibratesUnderSustainedLoad)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 6.5; });
    g.start();
    eq.runUntil(sim::sec(120));
    const double t1 = g.tempC();
    eq.runUntil(eq.now() + sim::sec(120));
    const double t2 = g.tempC();
    // First-order system: the second interval adds far less heat.
    EXPECT_GT(t1, device().power.ambient_temp_c + 5.0);
    EXPECT_LT(t2 - t1, 0.3 * (t1 - device().power.ambient_temp_c));
}

TEST(Dvfs, StopCancelsControl)
{
    sim::EventQueue eq;
    DvfsGovernor g(device(), eq, [] { return 9.0; });
    g.start();
    g.stop();
    eq.runUntil(sim::sec(1));
    EXPECT_EQ(g.throttleEvents(), 0u);
    EXPECT_DOUBLE_EQ(g.freqFrac(), 1.0);
}

} // namespace
} // namespace jetsim::soc
