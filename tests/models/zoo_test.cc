/**
 * @file
 * Model-zoo fidelity tests: parameter counts and compute pinned
 * against the published architectures.
 */

#include "models/zoo.hh"

#include <gtest/gtest.h>

namespace jetsim::models {
namespace {

TEST(Zoo, ResNet50ParamsMatchTorchvision)
{
    const auto net = resnet50();
    // torchvision resnet50: 25.557M parameters.
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 25.557e6,
                0.25e6);
}

TEST(Zoo, ResNet50MacsMatchPublished)
{
    const auto net = resnet50();
    // ~4.1 GMACs at 224x224.
    EXPECT_NEAR(net.totalMacs(), 4.1e9, 0.2e9);
}

TEST(Zoo, ResNet50OutputIsImagenetLogits)
{
    const auto net = resnet50();
    EXPECT_EQ(net.layer(net.outputId()).out,
              (graph::Shape{1000, 1, 1}));
}

TEST(Zoo, ResNet50InputIs224)
{
    const auto net = resnet50();
    EXPECT_EQ(net.layer(net.inputId()).out,
              (graph::Shape{3, 224, 224}));
}

TEST(Zoo, FcnResnet50ParamsMatchTorchvision)
{
    const auto net = fcnResnet50();
    // torchvision fcn_resnet50 (with aux head): 35.3M parameters.
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 35.3e6,
                0.4e6);
}

TEST(Zoo, FcnDilationKeepsOutputStride8)
{
    const auto net = fcnResnet50();
    // The segmentation logits come from 28x28 (output stride 8 at
    // 224 input), upsampled back to 224.
    EXPECT_EQ(net.layer(net.outputId()).out,
              (graph::Shape{21, 224, 224}));
}

TEST(Zoo, FcnComputeFarExceedsClassifier)
{
    // Dilated stages make FCN several times heavier than ResNet50.
    EXPECT_GT(fcnResnet50().totalMacs(), 4.0 * resnet50().totalMacs());
}

TEST(Zoo, Yolov8nParamsMatchUltralytics)
{
    const auto net = yolov8n();
    // YOLOv8n: 3.157M parameters.
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 3.157e6,
                0.1e6);
}

TEST(Zoo, Yolov8nMacsMatchUltralytics)
{
    const auto net = yolov8n();
    // 8.7 GFLOPs = ~4.35 GMACs at 640x640.
    EXPECT_NEAR(net.totalMacs(), 4.35e9, 0.3e9);
}

TEST(Zoo, Yolov8nInputIs640)
{
    const auto net = yolov8n();
    EXPECT_EQ(net.layer(net.inputId()).out,
              (graph::Shape{3, 640, 640}));
}

TEST(Zoo, ModelsValidate)
{
    for (const auto &name : paperModelNames())
        modelByName(name).validate();
}

TEST(Zoo, PaperModelListMatchesStudy)
{
    const auto &names = paperModelNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "resnet50");
    EXPECT_EQ(names[1], "fcn_resnet50");
    EXPECT_EQ(names[2], "yolov8n");
}

TEST(Zoo, ActivationFootprintOrdering)
{
    // YOLO at 640^2 moves more activations than ResNet50 at 224^2.
    EXPECT_GT(yolov8n().totalActivationElems(),
              resnet50().totalActivationElems());
}

TEST(Zoo, BuildersAreDeterministic)
{
    const auto a = resnet50();
    const auto b = resnet50();
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a.totalParams(), b.totalParams());
    EXPECT_DOUBLE_EQ(a.totalMacs(), b.totalMacs());
}

TEST(Zoo, Resnet18ParamsMatchTorchvision)
{
    // torchvision resnet18: 11.69M parameters, ~1.8 GMACs.
    const auto net = resnet18();
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 11.69e6,
                0.1e6);
    EXPECT_NEAR(net.totalMacs(), 1.8e9, 0.1e9);
    EXPECT_EQ(net.layer(net.outputId()).out,
              (graph::Shape{1000, 1, 1}));
}

TEST(Zoo, MobilenetV2ParamsMatchTorchvision)
{
    // torchvision mobilenet_v2: 3.50M parameters, ~0.3 GMACs.
    const auto net = mobilenetV2();
    EXPECT_NEAR(static_cast<double>(net.totalParams()), 3.50e6,
                0.1e6);
    EXPECT_NEAR(net.totalMacs(), 0.31e9, 0.05e9);
}

TEST(Zoo, MobilenetV2UsesDepthwiseConvs)
{
    const auto net = mobilenetV2();
    int depthwise = 0;
    for (const auto &l : net.layers())
        if (l.kind == graph::OpKind::Conv && l.groups > 1) {
            ++depthwise;
            EXPECT_EQ(l.groups, l.in.c);
            EXPECT_FALSE(l.tensorCoreEligible());
        }
    EXPECT_EQ(depthwise, 17); // one per inverted residual
}

TEST(Zoo, AllModelNamesBuildAndValidate)
{
    ASSERT_EQ(allModelNames().size(), 5u);
    for (const auto &name : allModelNames()) {
        const auto net = modelByName(name);
        net.validate();
        EXPECT_GT(net.totalParams(), 0);
        EXPECT_GT(net.totalMacs(), 0.0);
    }
}

TEST(Zoo, ComputeOrderingAcrossZoo)
{
    // mobilenet_v2 < resnet18 < resnet50 < fcn_resnet50 in MACs.
    EXPECT_LT(mobilenetV2().totalMacs(), resnet18().totalMacs());
    EXPECT_LT(resnet18().totalMacs(), resnet50().totalMacs());
    EXPECT_LT(resnet50().totalMacs(), fcnResnet50().totalMacs());
}

TEST(Zoo, DilationOnlyInFcnBackbone)
{
    auto dilated_layers = [](const graph::Network &net) {
        int n = 0;
        for (const auto &l : net.layers())
            if (l.kind == graph::OpKind::Conv && l.dilation > 1)
                ++n;
        return n;
    };
    EXPECT_EQ(dilated_layers(resnet50()), 0);
    EXPECT_EQ(dilated_layers(yolov8n()), 0);
    EXPECT_GT(dilated_layers(fcnResnet50()), 5);
}

} // namespace
} // namespace jetsim::models
