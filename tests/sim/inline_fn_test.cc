/**
 * @file
 * Tests for sim::InlineFn: the heap-fallback path for captures beyond
 * kInlineSize, the fixed-size move recipes vs. the relocate path,
 * self-move safety, and the monotonic process-wide fallback counter
 * that EventQueue::stats() / micro_sim --json surface.
 */

#include "sim/inline_fn.hh"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <utility>

using jetsim::sim::InlineFn;

namespace {

/** Live-instance counter for destructor accounting. */
struct Tracker
{
    static int live;
    int *hits; ///< bumped on every invocation
    explicit Tracker(int *h) : hits(h) { ++live; }
    Tracker(const Tracker &o) noexcept : hits(o.hits) { ++live; }
    Tracker(Tracker &&o) noexcept : hits(o.hits) { ++live; }
    ~Tracker() { --live; }
    void operator()() const { ++*hits; }
};
int Tracker::live = 0;

} // namespace

TEST(InlineFnTest, SmallCaptureStaysInline)
{
    const auto before = InlineFn::heapFallbackCount();
    int hits = 0;
    InlineFn fn([&hits] { ++hits; });
    EXPECT_FALSE(fn.onHeap());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(InlineFn::heapFallbackCount(), before);
}

TEST(InlineFnTest, CaptureBeyondInlineSizeFallsBackToHeap)
{
    const auto before = InlineFn::heapFallbackCount();
    std::array<char, InlineFn::kInlineSize + 16> big{};
    big.back() = 42;
    int sum = 0;
    InlineFn fn([big, &sum] { sum += big.back(); });
    EXPECT_TRUE(fn.onHeap());
    EXPECT_EQ(InlineFn::heapFallbackCount(), before + 1);
    fn();
    EXPECT_EQ(sum, 42);
}

TEST(InlineFnTest, FallbackCounterIsMonotonic)
{
    const auto base = InlineFn::heapFallbackCount();
    std::array<char, InlineFn::kInlineSize + 1> big{};
    for (int i = 0; i < 5; ++i) {
        InlineFn fn([big] { (void)big; });
        EXPECT_TRUE(fn.onHeap());
        EXPECT_EQ(InlineFn::heapFallbackCount(),
                  base + static_cast<std::uint64_t>(i) + 1);
    }
    // Inline constructions, moves and resets never bump the counter.
    InlineFn a([] {});
    InlineFn b(std::move(a));
    b.reset();
    EXPECT_EQ(InlineFn::heapFallbackCount(), base + 5);
}

TEST(InlineFnTest, TrivialMoveRecipesPreserveCapture)
{
    // One capture per fixed-size memcpy recipe (16/32/48 bytes) plus
    // the stateless 0-byte case: the moved-to fn must see the bytes,
    // the moved-from fn must be empty.
    int out = 0;

    InlineFn f0([] {});
    InlineFn g0(std::move(f0));
    EXPECT_TRUE(static_cast<bool>(g0));
    EXPECT_FALSE(static_cast<bool>(f0)); // NOLINT(bugprone-use-after-move)

    std::array<char, 12> c16{};
    c16[11] = 7;
    InlineFn f16([c16, &out] { out = c16[11]; });
    InlineFn g16(std::move(f16));
    g16();
    EXPECT_EQ(out, 7);

    std::array<char, 24> c32{};
    c32[23] = 9;
    InlineFn f32([c32, &out] { out = c32[23]; });
    InlineFn g32(std::move(f32));
    g32();
    EXPECT_EQ(out, 9);

    std::array<char, 40> c48{};
    c48[39] = 11;
    InlineFn f48([c48, &out] { out = c48[39]; });
    InlineFn g48(std::move(f48));
    g48();
    EXPECT_EQ(out, 11);
}

TEST(InlineFnTest, NonTrivialCaptureUsesRelocateAndDestroysOnce)
{
    ASSERT_EQ(Tracker::live, 0);
    int hits = 0;
    {
        InlineFn fn{Tracker(&hits)};
        EXPECT_FALSE(fn.onHeap());
        EXPECT_EQ(Tracker::live, 1);
        InlineFn moved(std::move(fn));
        // Relocate = move-construct into dst + destroy src: exactly
        // one live instance either side of the move.
        EXPECT_EQ(Tracker::live, 1);
        EXPECT_FALSE(static_cast<bool>(fn)); // NOLINT(bugprone-use-after-move)
        moved();
        EXPECT_EQ(hits, 1);
    }
    EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFnTest, HeapFallbackMoveTransfersOwnership)
{
    ASSERT_EQ(Tracker::live, 0);
    int hits = 0;
    {
        std::array<char, InlineFn::kInlineSize> pad{};
        InlineFn fn([t = Tracker(&hits), pad] {
            (void)pad;
            t();
        });
        EXPECT_TRUE(fn.onHeap());
        EXPECT_EQ(Tracker::live, 1);
        InlineFn moved(std::move(fn));
        EXPECT_TRUE(moved.onHeap());
        EXPECT_EQ(Tracker::live, 1); // pointer steal, no copy
        moved();
        EXPECT_EQ(hits, 1);
    }
    EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFnTest, SelfMoveAssignIsSafe)
{
    int hits = 0;
    InlineFn fn{Tracker(&hits)};
    ASSERT_EQ(Tracker::live, 1);
    InlineFn *alias = &fn; // defeat -Wself-move
    fn = std::move(*alias);
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_EQ(Tracker::live, 1);
    fn();
    EXPECT_EQ(hits, 1);
    fn.reset();
    EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFnTest, MoveAssignReleasesPreviousTarget)
{
    int hits_a = 0;
    int hits_b = 0;
    InlineFn a{Tracker(&hits_a)};
    InlineFn b{Tracker(&hits_b)};
    ASSERT_EQ(Tracker::live, 2);
    a = std::move(b);
    EXPECT_EQ(Tracker::live, 1); // a's original capture destroyed
    a();
    EXPECT_EQ(hits_a, 0);
    EXPECT_EQ(hits_b, 1);
    EXPECT_FALSE(static_cast<bool>(b)); // NOLINT(bugprone-use-after-move)
    a = nullptr;
    EXPECT_EQ(Tracker::live, 0);
    EXPECT_FALSE(static_cast<bool>(a));
}
