/**
 * @file
 * MsgRing unit tests: ring fast path, arena overflow, move-only
 * payloads, and the MPSC contract under real producer threads.
 */

#include "sim/msg_ring.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace jetsim::sim {
namespace {

TEST(MsgRing, PushDrainRoundTrip)
{
    MsgRing<int> ring(8);
    for (int i = 0; i < 5; ++i)
        ring.push(i);
    std::vector<int> got;
    EXPECT_EQ(ring.drain([&](int &&v) { got.push_back(v); }), 5u);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(ring.drain([&](int &&) { FAIL(); }), 0u);
    EXPECT_EQ(ring.overflowed(), 0u);
}

TEST(MsgRing, RingWrapsAcrossManyDrains)
{
    MsgRing<int> ring(4);
    int next = 0;
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 3; ++i)
            ring.push(next++);
        int seen = 0;
        ring.drain([&](int &&) { ++seen; });
        EXPECT_EQ(seen, 3);
    }
    EXPECT_EQ(ring.overflowed(), 0u);
    EXPECT_EQ(ring.blocksAllocated(), 0u);
}

TEST(MsgRing, OverflowTakesArenaBlocksAndRecycles)
{
    MsgRing<int> ring(4);
    constexpr int kBurst = 300;
    for (int i = 0; i < kBurst; ++i)
        ring.push(i);
    EXPECT_GT(ring.overflowed(), 0u);
    EXPECT_GT(ring.blocksAllocated(), 0u);
    std::vector<int> got;
    EXPECT_EQ(ring.drain([&](int &&v) { got.push_back(v); }),
              static_cast<std::size_t>(kBurst));
    std::sort(got.begin(), got.end());
    for (int i = 0; i < kBurst; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
    // Second burst reuses the freelist: no new blocks.
    const auto blocks = ring.blocksAllocated();
    for (int i = 0; i < kBurst; ++i)
        ring.push(i);
    std::size_t n = 0;
    ring.drain([&](int &&) { ++n; });
    EXPECT_EQ(n, static_cast<std::size_t>(kBurst));
    EXPECT_EQ(ring.blocksAllocated(), blocks);
}

TEST(MsgRing, MoveOnlyPayload)
{
    MsgRing<std::unique_ptr<int>> ring(8);
    for (int i = 0; i < 20; ++i) // past capacity: overflow too
        ring.push(std::make_unique<int>(i));
    long sum = 0;
    ring.drain([&](std::unique_ptr<int> &&p) { sum += *p; });
    EXPECT_EQ(sum, 190);
}

TEST(MsgRing, DropsUndrainedOnDestruction)
{
    // Leak check rides the test binary's sanitizer jobs: destroying
    // a ring with queued ring + overflow entries must release them.
    auto counted = std::make_shared<int>(0);
    struct Tok
    {
        std::shared_ptr<int> c;
        ~Tok()
        {
            if (c)
                ++*c;
        }
        Tok(std::shared_ptr<int> p) : c(std::move(p)) {}
        Tok(Tok &&o) noexcept : c(std::move(o.c)) {}
    };
    {
        MsgRing<Tok> ring(4);
        for (int i = 0; i < 10; ++i)
            ring.push(Tok{counted});
    }
    EXPECT_EQ(*counted, 10);
}

TEST(MsgRing, ConcurrentProducersLoseNothing)
{
    // The engine's shape: N producers hammer one shard's inbox
    // during a phase; the consumer drains at a quiescent point.
    MsgRing<std::uint64_t> ring(64);
    constexpr int kProducers = 4;
    constexpr std::uint64_t kEach = 5000;
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int p = 0; p < kProducers; ++p)
        ts.emplace_back([&ring, &go, p] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            for (std::uint64_t i = 0; i < kEach; ++i)
                ring.push(static_cast<std::uint64_t>(p) * kEach + i);
        });
    go.store(true, std::memory_order_release);
    for (auto &t : ts)
        t.join();
    // Quiescent now: single consumer drains everything exactly once.
    std::vector<std::uint64_t> got;
    got.reserve(kProducers * kEach);
    ring.drain([&](std::uint64_t &&v) { got.push_back(v); });
    ASSERT_EQ(got.size(), kProducers * kEach);
    std::sort(got.begin(), got.end());
    for (std::uint64_t i = 0; i < kProducers * kEach; ++i)
        EXPECT_EQ(got[i], i);
}

} // namespace
} // namespace jetsim::sim
