/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include "sim/rng.hh"

#include <gtest/gtest.h>

#include <cmath>

namespace jetsim::sim {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(3.0, 9.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 9.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng r(11);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        lo |= v == 2;
        hi |= v == 5;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, NormalHasExpectedMoments)
{
    Rng r(42);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalMatchesTargetMean)
{
    Rng r(42);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.lognormal(6.0, 0.35);
    EXPECT_NEAR(sum / n, 6.0, 0.1);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng r(1);
    EXPECT_DOUBLE_EQ(r.lognormal(5.0, 0.0), 5.0);
}

TEST(Rng, LognormalIsPositive)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(r.lognormal(10.0, 1.0), 0.0);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(9);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ForkedChildrenAreIndependentOfLabel)
{
    Rng parent1(5), parent2(5);
    Rng a = parent1.fork("gpu");
    Rng b = parent2.fork("cpu");
    // Different labels from identically-seeded parents diverge.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng p1(5), p2(5);
    Rng a = p1.fork("x");
    Rng b = p2.fork("x");
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, HashLabelIsStable)
{
    EXPECT_EQ(hashLabel("abc"), hashLabel("abc"));
    EXPECT_NE(hashLabel("abc"), hashLabel("abd"));
    EXPECT_NE(hashLabel(""), hashLabel("a"));
}

} // namespace
} // namespace jetsim::sim
