/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include "sim/stats.hh"

#include <gtest/gtest.h>

#include <cmath>

namespace jetsim::sim {
namespace {

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    // Sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleSampleHasZeroVariance)
{
    Accumulator a;
    a.sample(3.5);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator a;
    a.sample(1.0);
    a.sample(2.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Accumulator, HandlesNegativeValues)
{
    Accumulator a;
    a.sample(-5.0);
    a.sample(5.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(TimeWeighted, ConstantSignalAverage)
{
    TimeWeighted tw(0, 2.0);
    EXPECT_DOUBLE_EQ(tw.average(100), 2.0);
    EXPECT_DOUBLE_EQ(tw.integral(100), 200.0);
}

TEST(TimeWeighted, StepSignal)
{
    TimeWeighted tw(0, 0.0);
    tw.set(50, 1.0); // 0 for [0,50), 1 for [50,100)
    EXPECT_DOUBLE_EQ(tw.average(100), 0.5);
    EXPECT_DOUBLE_EQ(tw.integral(100), 50.0);
}

TEST(TimeWeighted, MultipleSteps)
{
    TimeWeighted tw(0, 1.0);
    tw.set(10, 3.0);
    tw.set(20, 0.0);
    // 1*10 + 3*10 + 0*10 = 40 over 30 ticks.
    EXPECT_DOUBLE_EQ(tw.integral(30), 40.0);
    EXPECT_NEAR(tw.average(30), 40.0 / 30.0, 1e-12);
}

TEST(TimeWeighted, LevelIsReadable)
{
    TimeWeighted tw(0, 0.25);
    EXPECT_DOUBLE_EQ(tw.level(), 0.25);
    tw.set(5, 0.75);
    EXPECT_DOUBLE_EQ(tw.level(), 0.75);
}

TEST(TimeWeighted, ResetRestartsWindow)
{
    TimeWeighted tw(0, 4.0);
    tw.set(10, 2.0);
    tw.reset(10);
    EXPECT_DOUBLE_EQ(tw.integral(20), 20.0);
    EXPECT_DOUBLE_EQ(tw.average(20), 2.0);
}

TEST(TimeWeighted, ZeroSpanAverageIsLevel)
{
    TimeWeighted tw(5, 7.0);
    EXPECT_DOUBLE_EQ(tw.average(5), 7.0);
}

TEST(TimeWeighted, RedundantSetKeepsIntegral)
{
    TimeWeighted tw(0, 1.0);
    tw.set(10, 1.0);
    tw.set(20, 1.0);
    EXPECT_DOUBLE_EQ(tw.integral(30), 30.0);
}

} // namespace
} // namespace jetsim::sim
