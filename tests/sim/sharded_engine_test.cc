/**
 * @file
 * ShardedEngine unit tests: epoch scheduling, the merge fallback,
 * cross-shard message determinism, and the lookahead edge cases the
 * differential battery builds on.
 */

#include "sim/sharded_engine.hh"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "check/reporter.hh"

namespace jetsim::sim {
namespace {

ShardedEngine::Options
opts(int shards, int threads, Tick lookahead)
{
    ShardedEngine::Options o;
    o.shards = shards;
    o.threads = threads;
    o.lookahead = lookahead;
    return o;
}

TEST(ShardedEngine, SingleShardMatchesEventQueue)
{
    ShardedEngine eng(opts(1, 1, 0));
    std::vector<int> log;
    eng.shard(0).schedule(10, [&] { log.push_back(1); });
    eng.shard(0).schedule(5, [&] { log.push_back(0); });
    eng.shard(0).schedule(20, [&] { log.push_back(2); });
    EXPECT_EQ(eng.runUntil(15), 2u);
    EXPECT_EQ(eng.shard(0).now(), 15);
    EXPECT_EQ(eng.runUntil(30), 1u);
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedEngine, CrossShardPostDeliversAtRequestedTick)
{
    ShardedEngine eng(opts(2, 1, 100));
    const int port = eng.addPort(0);
    Tick seen = kTickInvalid;
    eng.shard(0).schedule(50, [&] {
        eng.post(port, 1, eng.shard(0).now() + 100,
                 [&] { seen = eng.shard(1).now(); });
    });
    eng.runUntil(1000);
    EXPECT_EQ(seen, 150);
    EXPECT_EQ(eng.stats().messages, 1u);
}

TEST(ShardedEngine, PostBelowLookaheadViolatesAndClamps)
{
    check::ScopedCapture cap;
    ShardedEngine eng(opts(2, 1, 100));
    const int port = eng.addPort(0);
    Tick seen = kTickInvalid;
    eng.shard(0).schedule(10, [&] {
        // 10 + 40 < 10 + lookahead: conservative bound broken.
        eng.post(port, 1, 50, [&] { seen = eng.shard(1).now(); });
    });
    eng.runUntil(1000);
    EXPECT_EQ(cap.total(), 1u);
    EXPECT_EQ(seen, 110); // clamped to now + lookahead
}

/**
 * The observable of a sharded run: per-shard event logs (cross-shard
 * order is unobservable by design — no shared state) plus counters.
 */
struct Observed
{
    std::vector<std::string> per_shard;
    std::uint64_t executed = 0;

    bool
    operator==(const Observed &o) const
    {
        return per_shard == o.per_shard && executed == o.executed;
    }
};

/**
 * A fixed 4-"device" workload: every device ticks locally and sends
 * round-robin messages to the next device, with deliberate (when,
 * priority) collisions at every multiple of 10.
 */
Observed
runWorkload(int shards, int threads, Tick lookahead)
{
    constexpr int kDevices = 4;
    ShardedEngine eng(opts(shards, threads, lookahead));
    const int k = eng.shards();

    Observed obs;
    obs.per_shard.resize(static_cast<std::size_t>(kDevices));

    std::array<int, kDevices> ports{};
    for (int d = 0; d < kDevices; ++d)
        ports[static_cast<std::size_t>(d)] = eng.addPort(d % k);

    struct Dev
    {
        ShardedEngine *eng;
        Observed *obs;
        const std::array<int, kDevices> *ports;
        int id;
        int shard;
        int sent = 0;

        void
        tick()
        {
            auto &eq = eng->shard(shard);
            obs->per_shard[static_cast<std::size_t>(id)] +=
                "t" + std::to_string(eq.now()) + ";";
            if (sent < 12) {
                ++sent;
                const int dst = (id + 1) % kDevices;
                const int dst_shard = dst % eng->shards();
                eng->post((*ports)[static_cast<std::size_t>(id)],
                          dst_shard, eq.now() + 10,
                          [this, dst](/*runs on dst shard*/) {
                              obs->per_shard[static_cast<
                                  std::size_t>(dst)] +=
                                  "m" + std::to_string(id) + ";";
                          });
                eq.scheduleIn(10, [this] { tick(); });
            }
        }
    };

    std::array<Dev, kDevices> devs;
    for (int d = 0; d < kDevices; ++d) {
        devs[static_cast<std::size_t>(d)] =
            Dev{&eng, &obs, &ports, d, d % k};
        eng.shard(d % k).schedule(
            10, [&devs, d] { devs[static_cast<std::size_t>(d)].tick(); });
    }
    obs.executed = eng.runUntil(500);
    return obs;
}

TEST(ShardedEngine, EveryTopologyMatchesSerial)
{
    const Observed serial = runWorkload(1, 1, 10);
    for (const int shards : {1, 2, 4, 8})
        for (const int threads : {1, 2, 8})
            for (const Tick lookahead : {Tick{0}, Tick{10}}) {
                const Observed got =
                    runWorkload(shards, threads, lookahead);
                EXPECT_EQ(got, serial)
                    << "shards=" << shards << " threads=" << threads
                    << " lookahead=" << lookahead;
            }
}

TEST(ShardedEngine, ZeroLookaheadFallsBackToSerialMerge)
{
    ShardedEngine eng(opts(4, 8, 0));
    const int port = eng.addPort(0);
    int ran = 0;
    eng.shard(0).schedule(
        1, [&] { eng.post(port, 2, 2, [&] { ++ran; }); });
    eng.runUntil(10);
    const auto st = eng.stats();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(st.epochs, 0u) << "zero lookahead must not run epochs";
    EXPECT_GT(st.merge_steps, 0u);
}

TEST(ShardedEngine, EpochModeRunsEpochs)
{
    ShardedEngine eng(opts(2, 2, 10));
    for (int s = 0; s < 2; ++s)
        for (int i = 1; i <= 5; ++i)
            eng.shard(s).schedule(i * 20, [] {});
    eng.runUntil(200);
    const auto st = eng.stats();
    EXPECT_GT(st.epochs, 0u);
    EXPECT_EQ(st.merge_steps, 0u);
    EXPECT_EQ(st.executed, 10u);
}

TEST(ShardedEngine, SimultaneousCrossShardMessageTieIsPortOrdered)
{
    // Two ports on different shards post to shard 2 at the same
    // (when, priority): the lower port id must run first — in both
    // the merge fallback and the epoch path.
    for (const Tick lookahead : {Tick{0}, Tick{5}}) {
        ShardedEngine eng(opts(3, 1, lookahead));
        const int pa = eng.addPort(0); // lower port id
        const int pb = eng.addPort(1);
        std::vector<int> order;
        // Source events at distinct priorities so the *sources* never
        // tie; both messages land at tick 20.
        eng.shard(1).schedule(1, [&] {
            eng.post(pb, 2, 20, [&] { order.push_back(1); });
        });
        eng.shard(0).schedule(
            1, [&] { eng.post(pa, 2, 20,
                              [&] { order.push_back(0); }); },
            -1);
        eng.runUntil(100);
        EXPECT_EQ(order, (std::vector<int>{0, 1}))
            << "lookahead=" << lookahead;
    }
}

TEST(ShardedEngine, MessagesBeatTiedLocalEvents)
{
    // A message and a local event at the same (when, priority): the
    // message's reserved low seq band must dispatch it first,
    // matching what a serial single-queue run would do if the local
    // event were scheduled after the arrival.
    ShardedEngine eng(opts(2, 1, 5));
    const int port = eng.addPort(0);
    std::vector<char> order;
    eng.shard(1).schedule(20, [&] { order.push_back('l'); });
    eng.shard(0).schedule(
        1, [&] { eng.post(port, 1, 20, [&] { order.push_back('m'); }); });
    eng.runUntil(100);
    EXPECT_EQ(order, (std::vector<char>{'m', 'l'}));
}

TEST(ShardedEngine, StarvedShardStillAdvancesToTarget)
{
    ShardedEngine eng(opts(4, 2, 10));
    // Only shard 0 has work; shards 1-3 are starved the whole run.
    int ran = 0;
    for (int i = 1; i <= 50; ++i)
        eng.shard(0).schedule(i * 10, [&] { ++ran; });
    eng.runUntil(1000);
    EXPECT_EQ(ran, 50);
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(eng.shard(s).now(), 1000) << "shard " << s;
}

TEST(ShardedEngine, RepeatedRunUntilAdvancesIncrementally)
{
    // The profiler's warmup / measure / extend loop shape.
    ShardedEngine eng(opts(2, 2, 10));
    const int port = eng.addPort(0);
    std::uint64_t delivered = 0;
    struct Pump
    {
        ShardedEngine &eng;
        int port;
        std::uint64_t &delivered;
        void
        go()
        {
            eng.post(port, 1, eng.shard(0).now() + 10,
                     [this] { ++delivered; });
            eng.shard(0).scheduleIn(10, [this] { go(); });
        }
    } pump{eng, port, delivered};
    eng.shard(0).schedule(1, [&pump] { pump.go(); });

    eng.runUntil(100);
    const auto mid = delivered;
    EXPECT_GT(mid, 0u);
    eng.runUntil(200);
    EXPECT_GT(delivered, mid);
    EXPECT_EQ(eng.shard(0).now(), 200);
    EXPECT_EQ(eng.shard(1).now(), 200);
}

TEST(ShardedEngine, HandleCancelAcrossEpochsIsSafe)
{
    // ABA/lifetime: cancel local events on one shard while messages
    // from another shard land around them; slab slots are recycled
    // across epochs, so stale-generation handles must stay inert.
    ShardedEngine eng(opts(2, 2, 10));
    const int port = eng.addPort(0);
    std::vector<EventQueue::Handle> doomed;
    int ran_cancelled = 0;
    for (int i = 1; i <= 20; ++i)
        doomed.push_back(eng.shard(1).schedule(
            i * 50, [&] { ++ran_cancelled; }));
    int delivered = 0;
    struct Pump
    {
        ShardedEngine &eng;
        int port;
        int &delivered;
        int left = 40;
        void
        go()
        {
            if (--left < 0)
                return;
            eng.post(port, 1, eng.shard(0).now() + 10,
                     [this] { ++delivered; });
            eng.shard(0).scheduleIn(25, [this] { go(); });
        }
    } pump{eng, port, delivered};
    eng.shard(0).schedule(1, [&pump] { pump.go(); });

    eng.runUntil(40); // a few epochs in
    for (auto &h : doomed)
        h.cancel();
    // Cancelling again (stale generation after slot reuse) is a no-op.
    eng.runUntil(2000);
    for (auto &h : doomed)
        h.cancel();
    EXPECT_EQ(ran_cancelled, 0);
    EXPECT_EQ(delivered, 40);
}

TEST(ShardedEngine, ThreadsCappedAtShardCount)
{
    ShardedEngine eng(opts(2, 16, 10));
    EXPECT_EQ(eng.threads(), 2);
}

TEST(ShardedEngine, NextEventTimeSpansShards)
{
    ShardedEngine eng(opts(3, 1, 10));
    Tick when = 0;
    EXPECT_FALSE(eng.nextEventTime(when));
    eng.shard(2).schedule(70, [] {});
    eng.shard(1).schedule(30, [] {});
    ASSERT_TRUE(eng.nextEventTime(when));
    EXPECT_EQ(when, 30);
}

TEST(ShardedEngine, LocalOnlyPortPostsWithinShard)
{
    // A local_only port: one-tick minimum delay even under a large
    // lookahead, message-band seq (beats tied local events), and no
    // effect on the fused horizon of other shards.
    ShardedEngine eng(opts(2, 1, 1000));
    const int p = eng.addPort(0, /*local_only=*/true);
    std::vector<char> order;
    eng.shard(0).schedule(20, [&] { order.push_back('l'); });
    eng.shard(0).schedule(10, [&] {
        eng.post(p, 0, 20, [&] { order.push_back('m'); });
    });
    eng.shard(1).schedule(5000, [&] { order.push_back('x'); });
    eng.runUntil(6000);
    EXPECT_EQ(order, (std::vector<char>{'m', 'l', 'x'}));
    // No non-local port anywhere: the whole run is one fused epoch.
    EXPECT_EQ(eng.stats().epochs, 1u);
}

TEST(ShardedEngine, BatchWindowsKnobIsDigestInvariantButCheaper)
{
    // batch_windows=1 restores classic one-window epochs;
    // batch_windows=0 (adaptive) must produce the same observables
    // with no more epochs.
    auto run = [](std::uint64_t batch, std::uint64_t &epochs) {
        ShardedEngine::Options o = opts(3, 1, 10);
        o.batch_windows = batch;
        ShardedEngine eng(o);
        const int port = eng.addPort(0);
        std::string log;
        struct Pump
        {
            ShardedEngine &eng;
            int port;
            std::string &log;
            int left = 20;
            void
            go()
            {
                if (--left < 0)
                    return;
                const int dst = 1 + left % 2;
                eng.post(port, dst, eng.shard(0).now() + 10,
                         [this, dst] {
                             log += std::to_string(dst) + "@" +
                                    std::to_string(
                                        eng.shard(dst).now()) +
                                    ";";
                         });
                eng.shard(0).scheduleIn(40, [this] { go(); });
            }
        } pump{eng, port, log};
        eng.shard(0).schedule(1, [&pump] { pump.go(); });
        eng.runUntil(2000);
        epochs = eng.stats().epochs;
        return log;
    };
    std::uint64_t classic_epochs = 0;
    std::uint64_t adaptive_epochs = 0;
    const std::string classic = run(1, classic_epochs);
    const std::string adaptive = run(0, adaptive_epochs);
    EXPECT_EQ(adaptive, classic);
    EXPECT_LE(adaptive_epochs, classic_epochs);
    EXPECT_GT(classic_epochs, 0u);
}

TEST(ShardedEngine, RingOverflowDeliversEverything)
{
    // A burst past the inbox ring's capacity takes the arena
    // overflow path; nothing may be lost or reordered observably.
    ShardedEngine::Options o = opts(2, 2, 5);
    o.inbox_capacity = 4; // force overflow quickly
    ShardedEngine eng(o);
    const int port = eng.addPort(0);
    std::atomic<int> got{0};
    eng.shard(0).schedule(1, [&] {
        for (int i = 0; i < 200; ++i)
            eng.post(port, 1, 10 + i, [&] {
                got.fetch_add(1, std::memory_order_relaxed);
            });
    });
    eng.runUntil(1000);
    EXPECT_EQ(got.load(), 200);
    const auto st = eng.stats();
    EXPECT_EQ(st.messages, 200u);
    EXPECT_GT(st.ring_overflow, 0u);
}

TEST(ShardedEngine, BarrierCountsTrackEpochs)
{
    ShardedEngine eng(opts(4, 4, 10));
    const int port = eng.addPort(0);
    struct Pump
    {
        ShardedEngine &eng;
        int port;
        int left = 10;
        void
        go()
        {
            if (--left < 0)
                return;
            eng.post(port, 1 + left % 3,
                     eng.shard(0).now() + 10, [] {});
            eng.shard(0).scheduleIn(10, [this] { go(); });
        }
    } pump{eng, port};
    eng.shard(0).schedule(1, [&pump] { pump.go(); });
    eng.runUntil(500);
    const auto st = eng.stats();
    EXPECT_GT(st.epochs, 0u);
    EXPECT_EQ(st.barriers, 2 * st.epochs)
        << "one start + one end crossing per parallel epoch";
}

TEST(ShardedEngine, ChooserRunAllTerminatesAfterDrain)
{
    // Regression: the controlled (merge) drain used to spin forever
    // once every shard emptied — an empty peek at the kTickMax
    // sweep was misread as a stale cache, so mergeOne retried
    // endlessly instead of reporting quiescence (caught by the jetmc
    // models, which runAll() to completion under a chooser).
    struct DefaultChooser final : Chooser
    {
        int calls = 0;
        int
        choose(ChoiceKind, const std::int64_t *, int) override
        {
            ++calls;
            return 0;
        }
    } chooser;
    ShardedEngine eng(opts(2, 1, 1));
    const int port = eng.addPort(0);
    int ran = 0;
    // Tied events on both shards force at least one merge choice.
    eng.shard(0).schedule(5, [&] { ++ran; });
    eng.shard(1).schedule(5, [&] { ++ran; });
    eng.shard(0).schedule(1, [&] {
        ++ran;
        eng.post(port, 1, 3, [&] { ++ran; });
    });
    eng.setChooser(&chooser);
    EXPECT_EQ(eng.runAll(), 4u);
    EXPECT_EQ(ran, 4);
    EXPECT_GT(chooser.calls, 0);
    Tick when = 0;
    EXPECT_FALSE(eng.nextEventTime(when));
}

TEST(ShardedEngine, RunAllDrainsEverything)
{
    ShardedEngine eng(opts(3, 2, 10));
    const int port = eng.addPort(0);
    int ran = 0;
    eng.shard(0).schedule(1, [&] {
        ++ran;
        eng.post(port, 1, 11, [&] { ++ran; });
        eng.post(port, 2, 12, [&] { ++ran; });
    });
    EXPECT_EQ(eng.runAll(), 3u);
    EXPECT_EQ(ran, 3);
    Tick when = 0;
    EXPECT_FALSE(eng.nextEventTime(when));
}

} // namespace
} // namespace jetsim::sim
