/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include "sim/event_queue.hh"

#include <gtest/gtest.h>

#include <vector>

namespace jetsim::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunOneAdvancesTime)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(100, [&] { ran = true; });
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.runOne());
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.now(), 100);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(1); }, 0);
    eq.schedule(50, [&] { order.push_back(2); }, 0);
    eq.schedule(50, [&] { order.push_back(0); }, -5);
    eq.schedule(50, [&] { order.push_back(3); },
                EventQueue::kPriSample);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = -1;
    eq.schedule(10, [&] {});
    eq.runOne();
    eq.scheduleIn(5, [&] { seen = eq.now(); });
    eq.runOne();
    EXPECT_EQ(seen, 15);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    auto h = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    eq.runAll();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterRun)
{
    EventQueue eq;
    auto h = eq.schedule(10, [] {});
    eq.runAll();
    EXPECT_FALSE(h.pending());
    h.cancel(); // no effect, no crash
    EventQueue::Handle inert;
    EXPECT_FALSE(inert.pending());
    inert.cancel();
}

TEST(EventQueue, PendingCountExcludesCancelled)
{
    EventQueue eq;
    auto a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    a.cancel();
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilStopsAtHorizon)
{
    EventQueue eq;
    std::vector<Tick> seen;
    for (Tick t : {10, 20, 30, 40})
        eq.schedule(t, [&, t] { seen.push_back(t); });
    EXPECT_EQ(eq.runUntil(25), 2u);
    EXPECT_EQ(seen, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(eq.now(), 25);
    EXPECT_EQ(eq.pending(), 2u);
}

TEST(EventQueue, RunUntilIncludesEventsAtHorizon)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(25, [&] { ++ran; });
    eq.runUntil(25);
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(10, chain);
    };
    eq.scheduleIn(10, chain);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 50);
}

TEST(EventQueue, RunAllHonoursEventBudget)
{
    EventQueue eq;
    std::function<void()> forever = [&] { eq.scheduleIn(1, forever); };
    eq.scheduleIn(1, forever);
    EXPECT_EQ(eq.runAll(100), 100u);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentTick)
{
    EventQueue eq;
    eq.schedule(42, [] {});
    eq.runOne();
    Tick seen = -1;
    eq.scheduleIn(0, [&] { seen = eq.now(); });
    eq.runOne();
    EXPECT_EQ(seen, 42);
}

} // namespace
} // namespace jetsim::sim
