/**
 * @file
 * Differential fuzz battery (the tentpole proof): randomized
 * multi-device fleet deployments run serial and sharded, digests
 * compared bit for bit. A failure dumps a minimised replay spec that
 * `simcheck --fleet-replay=<file>` re-executes directly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/digest.hh"
#include "core/fleet.hh"
#include "sim/rng.hh"

namespace jetsim::core {
namespace {

const char *const kDevices[] = {"orin-nano", "nano"};
const char *const kModels[] = {"resnet50", "fcn_resnet50", "yolov8n",
                               "resnet18", "mobilenet_v2"};
const soc::Precision kPrecisions[] = {soc::Precision::Fp16,
                                      soc::Precision::Int8};

FleetSpec
randomSpec(sim::Rng &rng)
{
    FleetSpec spec;
    const int n = static_cast<int>(rng.uniformInt(2, 6));
    for (int d = 0; d < n; ++d) {
        FleetDevice dev;
        dev.device = kDevices[rng.uniformInt(0, 1)];
        dev.model = kModels[rng.uniformInt(0, 4)];
        dev.precision = kPrecisions[rng.uniformInt(0, 1)];
        dev.batch = static_cast<int>(rng.uniformInt(1, 4));
        // A third of the boards also take local open-loop traffic.
        dev.local_rate =
            rng.chance(0.33) ? rng.uniform(20.0, 120.0) : 0.0;
        spec.devices.push_back(dev);
    }
    spec.balancer_rate = rng.uniform(50.0, 600.0);
    spec.dispatch_latency = sim::usec(rng.uniform(20.0, 500.0));
    // Half the fleets dispatch through the two-hop hierarchical
    // balancer so the fuzzer also covers root->sub->device ordering.
    spec.hierarchical = rng.chance(0.5);
    if (spec.hierarchical)
        spec.fanout_latency = sim::usec(rng.uniform(10.0, 200.0));
    spec.warmup = sim::msec(10);
    spec.duration = sim::msec(40);
    spec.seed = rng.next();
    return spec;
}

/**
 * Shrink a failing spec: drop devices / zero local rates while the
 * serial-vs-sharded mismatch persists, so the dumped replay is the
 * smallest configuration that still disagrees.
 */
FleetSpec
minimise(FleetSpec spec, const FleetOptions &sharded)
{
    const auto differs = [&sharded](const FleetSpec &s) {
        return resultDigest(runFleet(s, {})) !=
               resultDigest(runFleet(s, sharded));
    };
    bool shrunk = true;
    while (shrunk && spec.devices.size() > 1) {
        shrunk = false;
        for (std::size_t d = 0; d < spec.devices.size(); ++d) {
            FleetSpec trial = spec;
            trial.devices.erase(trial.devices.begin() +
                                static_cast<std::ptrdiff_t>(d));
            if (differs(trial)) {
                spec = std::move(trial);
                shrunk = true;
                break;
            }
        }
    }
    for (auto &dev : spec.devices) {
        if (dev.local_rate == 0.0)
            continue;
        FleetSpec trial = spec;
        trial.devices[static_cast<std::size_t>(
                          &dev - spec.devices.data())]
            .local_rate = 0.0;
        if (differs(trial))
            dev.local_rate = 0.0;
    }
    return spec;
}

void
expectIdentical(const FleetSpec &spec, const FleetOptions &sharded,
                const char *what)
{
    const auto serial = resultDigest(runFleet(spec, {}));
    const auto got = resultDigest(runFleet(spec, sharded));
    if (serial == got)
        return;
    const FleetSpec min = minimise(spec, sharded);
    const std::string path =
        ::testing::TempDir() + "fleet_replay_" +
        std::to_string(min.seed) + ".txt";
    writeFleetReplay(min, sharded, path);
    FAIL() << what << ": sharded digest diverged from serial for "
           << spec.label() << "\nminimised replay spec: " << path
           << "\nre-run with: simcheck --fleet-replay=" << path;
}

TEST(ShardedDiff, RandomFleetsSerialVsSharded)
{
    sim::Rng rng(0xd1ffe12ull);
    for (int i = 0; i < 12; ++i) {
        const FleetSpec spec = randomSpec(rng);
        for (const auto &[shards, threads] :
             {std::pair{2, 2}, std::pair{4, 8}, std::pair{8, 2}}) {
            FleetOptions o;
            o.shards = shards;
            o.threads = threads;
            expectIdentical(spec, o, "epoch path");
        }
        // Zero-lookahead fallback: same digests through the serial
        // cross-shard merge.
        FleetOptions merge;
        merge.shards = 4;
        merge.threads = 1;
        merge.lookahead = 0;
        expectIdentical(spec, merge, "merge fallback");
    }
}

TEST(ShardedDiff, TinyLookaheadStressesEpochBoundaries)
{
    // lookahead of 1 tick: maximal epoch count, every horizon edge
    // case (gmin straddling messages, ties at the boundary).
    sim::Rng rng(0xfeedull);
    for (int i = 0; i < 3; ++i) {
        FleetSpec spec = randomSpec(rng);
        spec.duration = sim::msec(15);
        FleetOptions o;
        o.shards = 4;
        o.threads = 2;
        o.lookahead = 1;
        expectIdentical(spec, o, "lookahead=1");
    }
}

TEST(ShardedDiff, ReplaySpecRoundTrips)
{
    sim::Rng rng(0xabcdull);
    FleetSpec spec = randomSpec(rng);
    // Pin the hierarchical fields so the round trip exercises both
    // new replay keys regardless of what the rng rolled.
    spec.hierarchical = true;
    spec.fanout_latency = sim::usec(77);
    FleetOptions o;
    o.shards = 3;
    o.threads = 2;
    o.lookahead = 12345;
    const std::string path =
        ::testing::TempDir() + "fleet_replay_roundtrip.txt";
    ASSERT_TRUE(writeFleetReplay(spec, o, path));

    FleetSpec back;
    FleetOptions back_o;
    std::string err;
    ASSERT_TRUE(readFleetReplay(path, back, back_o, err)) << err;
    EXPECT_EQ(back.label(), spec.label());
    EXPECT_EQ(back.devices.size(), spec.devices.size());
    for (std::size_t d = 0; d < spec.devices.size(); ++d)
        EXPECT_EQ(back.devices[d].local_rate,
                  spec.devices[d].local_rate);
    EXPECT_EQ(back.warmup, spec.warmup);
    EXPECT_EQ(back.duration, spec.duration);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.hierarchical, spec.hierarchical);
    EXPECT_EQ(back.fanout_latency, spec.fanout_latency);
    EXPECT_EQ(back_o.shards, o.shards);
    EXPECT_EQ(back_o.threads, o.threads);
    EXPECT_EQ(back_o.lookahead, o.lookahead);
    // The round-tripped spec reproduces the original's digest.
    EXPECT_EQ(resultDigest(runFleet(back, back_o)),
              resultDigest(runFleet(spec, o)));
    std::remove(path.c_str());
}

} // namespace
} // namespace jetsim::core
