/**
 * @file
 * Tests for the pooled event core: handle lifetime across slot reuse
 * and queue destruction, cancellation edge cases, a randomized
 * differential fuzz against a naive reference queue, and the
 * zero-allocation guarantee of the steady-state schedule path.
 */

#include "sim/event_pool.hh"
#include "sim/event_queue.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <queue>
#include <vector>

#include "sim/rng.hh"

// ------------------------------------------------ allocation counter
//
// Global operator new/delete overrides (whole test binary): counting
// is off by default and enabled only inside the zero-allocation test,
// so the other tests are unaffected.
//
// GCC pairs the replacement operator new with the std::free in the
// replacement delete and warns; both sides are malloc-based, so the
// pairing is consistent by construction.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
// Atomics: flipped by the test thread, observed from operator new on
// any thread the allocator runs on (jetrace: atomic, hence exempt
// from the guarded/confined requirement).
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
} // namespace

void *
operator new(std::size_t n)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace jetsim::sim {
namespace {

// ---------------------------------------------------- handle lifetime

TEST(EventPoolHandle, CancelAfterFireIsInert)
{
    EventQueue eq;
    int runs = 0;
    auto h = eq.schedule(10, [&] { ++runs; });
    EXPECT_TRUE(h.pending());
    eq.runAll();
    EXPECT_EQ(runs, 1);
    EXPECT_FALSE(h.pending());
    h.cancel(); // no-op: already executed
    EXPECT_EQ(eq.stats().cancelled, 0u);
}

TEST(EventPoolHandle, DoubleCancelCountsOnce)
{
    EventQueue eq;
    auto h = eq.schedule(10, [] {});
    h.cancel();
    h.cancel();
    EXPECT_FALSE(h.pending());
    EXPECT_EQ(eq.stats().cancelled, 1u);
    EXPECT_EQ(eq.runAll(), 0u);
}

TEST(EventPoolHandle, HandleOutlivesQueue)
{
    EventQueue::Handle h;
    {
        EventQueue eq;
        h = eq.schedule(10, [] {});
        EXPECT_TRUE(h.pending());
    }
    // The queue (and its pool) are gone; the shared liveness block
    // keeps the handle safe and inert.
    EXPECT_FALSE(h.pending());
    h.cancel();
}

TEST(EventPoolHandle, SlotReuseDoesNotResurrectOldHandle)
{
    EventQueue eq;
    auto h1 = eq.schedule(10, [] {});
    eq.runAll(); // slot recycled onto the freelist
    EXPECT_FALSE(h1.pending());

    // The next event reuses the slot (LIFO freelist); the stale
    // handle's generation no longer matches, so it must neither
    // report pending nor cancel the new occupant (ABA hazard).
    int runs2 = 0;
    auto h2 = eq.schedule(20, [&] { ++runs2; });
    EXPECT_FALSE(h1.pending());
    h1.cancel();
    EXPECT_TRUE(h2.pending());
    eq.runAll();
    EXPECT_EQ(runs2, 1);
}

TEST(EventPoolHandle, StaleHandleInertAcrossShrink)
{
    EventQueue eq;
    auto h1 = eq.schedule(10, [] {});
    h1.cancel();
    eq.runAll();
    eq.shrink(); // drops every slab; raises the generation floor

    int runs = 0;
    auto h2 = eq.schedule(20, [&] { ++runs; });
    EXPECT_FALSE(h1.pending());
    h1.cancel(); // must not touch the fresh slab's occupant
    EXPECT_TRUE(h2.pending());
    eq.runAll();
    EXPECT_EQ(runs, 1);
}

// --------------------------------------------------------- pool unit

TEST(EventPool, GenerationChecksGateIsPending)
{
    EventPool pool;
    const auto idx = pool.alloc([] {});
    const auto gen = pool.gen(idx);
    EXPECT_TRUE(pool.isPending(idx, gen));
    EXPECT_FALSE(pool.isPending(idx, gen + 1));
    EXPECT_FALSE(pool.isPending(idx + 1000, gen));
    pool.free(idx);
    EXPECT_FALSE(pool.isPending(idx, gen));
    pool.releaseAll();
}

TEST(EventPool, ReleaseAllRaisesGenerationFloor)
{
    EventPool pool;
    const auto idx = pool.alloc([] {});
    const auto gen = pool.gen(idx);
    pool.free(idx);
    pool.releaseAll(/*handles_outstanding=*/true);
    // New slabs start past every generation ever handed out.
    const auto idx2 = pool.alloc([] {});
    EXPECT_EQ(idx2, idx); // same slot index, fresh slab
    EXPECT_GT(pool.gen(idx2), gen);
    pool.free(idx2);
    pool.releaseAll();
}

// ------------------------------------------------- differential fuzz

/** The pre-pool implementation: shared_ptr events in a binary heap
 * ordered by (when, priority, seq) — the dispatch-order oracle. */
class NaiveQueue
{
  public:
    int
    schedule(Tick when, int priority)
    {
        const int id = next_id_++;
        heap_.push(Ev{when, priority, seq_++, id});
        return id;
    }

    void cancel(int id) { cancelled_.push_back(id); }

    std::vector<int>
    runAll()
    {
        std::vector<int> order;
        while (!heap_.empty()) {
            const Ev e = heap_.top();
            heap_.pop();
            bool dead = false;
            for (const int c : cancelled_)
                if (c == e.id)
                    dead = true;
            if (!dead)
                order.push_back(e.id);
        }
        return order;
    }

  private:
    struct Ev
    {
        Tick when;
        int pri;
        std::uint64_t seq;
        int id;
    };
    struct Later
    {
        bool
        operator()(const Ev &a, const Ev &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.pri != b.pri)
                return a.pri > b.pri;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
    std::vector<int> cancelled_;
    std::uint64_t seq_ = 0;
    int next_id_ = 0;
};

TEST(EventPoolFuzz, RandomScheduleCancelMatchesReference)
{
    Rng rng(0xfeedu);
    for (int round = 0; round < 20; ++round) {
        EventQueue eq;
        NaiveQueue ref;
        std::vector<int> got;
        std::vector<EventQueue::Handle> handles;
        std::vector<int> ids;

        const int n = 50 + static_cast<int>(rng.uniformInt(0, 150));
        for (int i = 0; i < n; ++i) {
            const Tick when = static_cast<Tick>(rng.uniformInt(0, 50));
            const int pri = static_cast<int>(rng.uniformInt(0, 5)) - 2;
            const int id = ref.schedule(when, pri);
            handles.push_back(
                eq.schedule(when, [&got, id] { got.push_back(id); },
                            pri));
            ids.push_back(id);
            // Occasionally cancel a random earlier event.
            if (rng.uniformInt(0, 4) == 0) {
                const auto pick = static_cast<std::size_t>(
                    rng.uniformInt(0, handles.size() - 1));
                handles[pick].cancel();
                ref.cancel(ids[pick]);
            }
        }
        eq.runAll();
        EXPECT_EQ(got, ref.runAll()) << "round " << round;
    }
}

// ---------------------------------------------------- zero-allocation

TEST(EventPoolAlloc, SteadyStateSchedulePathDoesNotAllocate)
{
    EventQueue eq;
    // Pre-warm: grow the pool, heap arrays and freelist to their
    // steady-state footprint.
    for (int i = 0; i < 200; ++i)
        eq.schedule(i, [] {});
    eq.runAll();

    const auto fallbacks_before = InlineFn::heapFallbackCount();
    std::uint64_t executed = 0;
    struct Capture
    {
        std::uint64_t *counter;
        std::uint64_t pad[5]; // 48 bytes total: the SBO boundary
    };
    static_assert(sizeof(Capture) == InlineFn::kInlineSize);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 200; ++i) {
        const Capture c{&executed, {}};
        eq.scheduleIn(1, [c] { ++*c.counter; });
    }
    eq.runAll();
    g_count_allocs.store(false);

    EXPECT_EQ(executed, 200u);
    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "steady-state schedule/dispatch touched the allocator";
    EXPECT_EQ(InlineFn::heapFallbackCount(), fallbacks_before);
    EXPECT_EQ(eq.stats().sbo_misses, 0u);
}

TEST(EventPoolAlloc, OversizedCaptureCountsAsSboMiss)
{
    EventQueue eq;
    struct Big
    {
        char bytes[InlineFn::kInlineSize + 8];
    };
    const Big big{};
    eq.schedule(1, [big] { (void)big; });
    EXPECT_EQ(eq.stats().sbo_misses, 1u);
    eq.runAll();
}

// ------------------------------------------------------ stats/shrink

TEST(EventQueueStats, TracksPeakPendingAndShrinks)
{
    EventQueue eq;
    for (int i = 0; i < 600; ++i)
        eq.schedule(i, [] {});
    auto s = eq.stats();
    EXPECT_EQ(s.pending, 600u);
    EXPECT_EQ(s.peak_pending, 600u);
    EXPECT_GE(s.pool_capacity, 600u);
    EXPECT_GE(s.pool_slabs, 1u);

    eq.runAll();
    s = eq.stats();
    EXPECT_EQ(s.pending, 0u);
    EXPECT_EQ(s.peak_pending, 600u);
    EXPECT_EQ(s.executed, 600u);
    EXPECT_GE(s.pool_capacity, 600u); // retained for reuse

    eq.shrink();
    s = eq.stats();
    EXPECT_EQ(s.pool_capacity, 0u); // fully drained: slabs dropped
    EXPECT_EQ(s.pool_slabs, 0u);
    EXPECT_EQ(s.shrinks, 1u);

    // The queue stays usable after a shrink.
    int runs = 0;
    eq.scheduleIn(5, [&] { ++runs; });
    eq.runAll();
    EXPECT_EQ(runs, 1);
}

} // namespace
} // namespace jetsim::sim
