/**
 * @file
 * JetSan stream-hazard invariant: work submitted to a destroyed
 * stream's channel (the CUDA use-after-destroy analogue, e.g. an
 * ExecutionContext outliving its cuda::Stream) must be detected and
 * dropped; normal stream teardown must stay silent.
 */

#include <gtest/gtest.h>

#include "check/reporter.hh"
#include "cuda/stream.hh"
#include "gpu/engine.hh"
#include "sim/event_queue.hh"
#include "soc/board.hh"
#include "soc/device_spec.hh"

namespace jetsim {
namespace {

using check::Invariant;
using check::ScopedCapture;
using check::Severity;

gpu::KernelDesc
smallKernel()
{
    gpu::KernelDesc k;
    k.name = "probe";
    k.flops = 1e6;
    k.bytes = 1e5;
    k.blocks = 8;
    return k;
}

TEST(HazardInjection, SubmitOnDestroyedStreamIsDetected)
{
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    gpu::GpuEngine engine(board);
    const gpu::KernelDesc k = smallKernel();

    int channel = -1;
    {
        cuda::Stream s(engine, "doomed");
        channel = s.channel();
        EXPECT_TRUE(engine.channelAlive(channel));
    }
    EXPECT_FALSE(engine.channelAlive(channel));

    ScopedCapture cap;
    bool fired = false;
    engine.submit(channel, &k, [&fired] { fired = true; });
    eq.runAll();

    ASSERT_EQ(cap.count(Invariant::StreamHazard), 1u);
    const auto &v = cap.violations().front();
    EXPECT_EQ(v.severity, Severity::Error);
    EXPECT_EQ(v.component, "gpu.engine");
    EXPECT_FALSE(fired); // the dangling callback never ran
    EXPECT_EQ(engine.kernelsExecuted(), 0u);
}

TEST(HazardInjection, InFlightKernelSkipsCallbackAfterDestroy)
{
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    gpu::GpuEngine engine(board);
    const gpu::KernelDesc k = smallKernel();

    ScopedCapture cap;
    {
        cuda::Stream s(engine, "torn-down");
        s.launch(&k);
        // Destroyed while the kernel is still executing: the real
        // UAF this guards against is the engine calling back into
        // freed Stream memory (ASan catches the unguarded version).
    }
    eq.runAll();

    EXPECT_EQ(engine.kernelsExecuted(), 1u);
    // Teardown with in-flight work is normal shutdown, not a bug.
    EXPECT_EQ(cap.total(), 0u);
}

TEST(HazardClean, NormalStreamLifecycleReportsNothing)
{
    ScopedCapture cap;
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    gpu::GpuEngine engine(board);
    const gpu::KernelDesc k = smallKernel();

    cuda::Stream s(engine, "healthy");
    int done = 0;
    for (int i = 0; i < 5; ++i)
        s.launch(&k);
    s.onComplete(5, [&done] { ++done; });
    eq.runAll();

    EXPECT_EQ(s.completed(), 5u);
    EXPECT_EQ(done, 1);
    EXPECT_EQ(engine.kernelsExecuted(), 5u);
    EXPECT_EQ(cap.total(), 0u);
}

TEST(HazardClean, TwoStreamsTimeMultiplexCleanly)
{
    ScopedCapture cap;
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    gpu::GpuEngine engine(board);
    const gpu::KernelDesc k = smallKernel();

    cuda::Stream a(engine, "a");
    cuda::Stream b(engine, "b");
    for (int i = 0; i < 4; ++i) {
        a.launch(&k);
        b.launch(&k);
    }
    eq.runAll();

    EXPECT_EQ(a.completed(), 4u);
    EXPECT_EQ(b.completed(), 4u);
    EXPECT_EQ(cap.total(), 0u);
}

} // namespace
} // namespace jetsim
