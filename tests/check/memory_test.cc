/**
 * @file
 * JetSan memory-accounting invariant: planted double-frees,
 * over-capacity reservations, and accounting drift must each be
 * detected with the right severity and component — and clean usage
 * must produce zero reports.
 */

#include <gtest/gtest.h>

#include "check/reporter.hh"
#include "cuda/device_buffer.hh"
#include "soc/unified_memory.hh"

namespace jetsim::soc {

/**
 * The fault-injection seam declared as a friend in UnifiedMemory:
 * corrupts internal accounting so the audit has something real to
 * find. Test-only.
 */
class MemoryFaultInjector
{
  public:
    static void
    corruptUsed(UnifiedMemory &m, sim::Bytes delta)
    {
        m.used_ += delta;
    }
};

namespace {

using check::Invariant;
using check::ScopedCapture;
using check::Severity;

constexpr sim::Bytes kTotal = 1024 * sim::kMiB;
constexpr sim::Bytes kOs = 256 * sim::kMiB;

TEST(MemoryInjection, DoubleFreeIsDetected)
{
    UnifiedMemory mem(kTotal, kOs);
    const auto id = mem.allocate("proc0", 64 * sim::kMiB);
    ASSERT_NE(id, UnifiedMemory::kBadAlloc);
    mem.release(id);

    ScopedCapture cap;
    mem.release(id); // deliberate double free

    ASSERT_EQ(cap.count(Invariant::MemoryAccounting), 1u);
    const auto &v = cap.violations().front();
    EXPECT_EQ(v.severity, Severity::Error);
    EXPECT_EQ(v.component, "soc.memory");
    EXPECT_NE(v.message.find("double free"), std::string::npos);
    EXPECT_EQ(mem.used(), 0u); // accounting untouched by the bad free
}

TEST(MemoryInjection, UseAfterFreeOfUnknownIdIsDetected)
{
    UnifiedMemory mem(kTotal, kOs);
    ScopedCapture cap;
    mem.release(9999); // never allocated
    EXPECT_EQ(cap.count(Invariant::MemoryAccounting), 1u);
}

TEST(MemoryInjection, OsReservationExceedingCapacityIsDetected)
{
    ScopedCapture cap;
    UnifiedMemory mem(kTotal, kTotal + sim::kMiB);

    ASSERT_EQ(cap.count(Invariant::MemoryAccounting), 1u);
    const auto &v = cap.violations().front();
    EXPECT_EQ(v.severity, Severity::Error);
    EXPECT_EQ(v.component, "soc.memory");
    // Sanitised: the pool is unusable but consistent.
    EXPECT_EQ(mem.available(), 0u);
}

TEST(MemoryInjection, AccountingDriftIsDetectedByAudit)
{
    UnifiedMemory mem(kTotal, kOs);
    const auto id = mem.allocate("proc0", 32 * sim::kMiB);
    ASSERT_NE(id, UnifiedMemory::kBadAlloc);
    EXPECT_TRUE(mem.auditInvariants());

    MemoryFaultInjector::corruptUsed(mem, 900 * sim::kMiB);

    ScopedCapture cap;
    EXPECT_FALSE(mem.auditInvariants());
    // Both the sum mismatch and the capacity breach fire.
    EXPECT_EQ(cap.count(Invariant::MemoryAccounting), 2u);
    for (const auto &v : cap.violations())
        EXPECT_EQ(v.severity, Severity::Error);
}

TEST(MemoryClean, HonestExhaustionIsNotAViolation)
{
    // Over-deploying is the paper's legitimate failure mode: the
    // allocator refuses, the caller copes. JetSan must stay quiet.
    ScopedCapture cap;
    UnifiedMemory mem(kTotal, kOs);
    const auto a = mem.allocate("p0", 512 * sim::kMiB);
    EXPECT_NE(a, UnifiedMemory::kBadAlloc);
    const auto b = mem.allocate("p1", 512 * sim::kMiB);
    EXPECT_EQ(b, UnifiedMemory::kBadAlloc);
    EXPECT_EQ(mem.oomEvents(), 1u);

    mem.release(a);
    EXPECT_TRUE(mem.auditInvariants());
    EXPECT_EQ(cap.total(), 0u);
}

TEST(MemoryClean, DeviceBufferRaiiIsViolationFree)
{
    ScopedCapture cap;
    UnifiedMemory mem(kTotal, kOs);
    {
        auto buf =
            cuda::DeviceBuffer::tryAlloc(mem, "p0", 128 * sim::kMiB);
        ASSERT_TRUE(buf.has_value());
        auto moved = std::move(*buf);
        EXPECT_EQ(mem.used(), 128 * sim::kMiB);
    }
    EXPECT_EQ(mem.used(), 0u);
    EXPECT_TRUE(mem.auditInvariants());
    EXPECT_EQ(cap.total(), 0u);
}

} // namespace
} // namespace jetsim::soc
