/**
 * @file
 * JetSan causality invariant: violation injection against the event
 * queue, plus regression coverage for the comparator's tie-breaking
 * contract (equal-timestamp events dispatch in priority then
 * insertion order, deterministically).
 */

#include <gtest/gtest.h>

#include <vector>

#include "check/reporter.hh"
#include "sim/event_queue.hh"

namespace jetsim {
namespace {

using check::Invariant;
using check::ScopedCapture;
using check::Severity;

TEST(CausalityInjection, SchedulingIntoThePastIsDetected)
{
    sim::EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne(); // now() == 100

    ScopedCapture cap;
    eq.schedule(50, [] {}); // deliberately in the past

    ASSERT_EQ(cap.count(Invariant::Causality), 1u);
    const auto &v = cap.violations().front();
    EXPECT_EQ(v.severity, Severity::Error);
    EXPECT_EQ(v.component, "sim.event_queue");
    EXPECT_EQ(v.sim_time, 100);

    // Log-mode sanitisation clamps the event to now(): it still runs.
    bool ran = false;
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(eq.now(), 100);
    (void)ran;
}

TEST(CausalityInjection, NegativeDelayIsDetected)
{
    sim::EventQueue eq;
    ScopedCapture cap;
    eq.scheduleIn(-5, [] {});
    EXPECT_EQ(cap.count(Invariant::Causality), 1u);
}

TEST(CausalityInjection, PastHorizonIsDetected)
{
    sim::EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne();

    ScopedCapture cap;
    eq.runUntil(10); // horizon before now()
    EXPECT_EQ(cap.count(Invariant::Causality), 1u);
    EXPECT_EQ(eq.now(), 100); // time did not go backwards
}

TEST(CausalityClean, CleanRunReportsNothing)
{
    ScopedCapture cap;
    sim::EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.scheduleIn(i * 7 % 13, [] {});
    eq.runAll();
    EXPECT_EQ(cap.total(), 0u);
}

// --- comparator tie-breaking regressions -------------------------------

TEST(Comparator, EqualTimestampsDispatchInInsertionOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 32; ++i)
        eq.schedule(500, [&order, i] { order.push_back(i); });

    ScopedCapture cap;
    eq.runAll();

    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[i], i) << "insertion order broken at " << i;
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Comparator, PriorityBeatsInsertionOrderAtEqualTimestamps)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(0); },
                sim::EventQueue::kPriSample);
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(10, [&] { order.push_back(2); },
                sim::EventQueue::kPriSample);
    eq.schedule(10, [&] { order.push_back(3); });

    ScopedCapture cap;
    eq.runAll();

    // Default-priority events first (in insertion order), then the
    // samplers (in insertion order).
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 3, 0, 2}));
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Comparator, CancellationPreservesTieOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    std::vector<sim::EventQueue::Handle> handles;
    for (int i = 0; i < 16; ++i)
        handles.push_back(
            eq.schedule(42, [&order, i] { order.push_back(i); }));
    for (int i = 1; i < 16; i += 2)
        handles[i].cancel();

    ScopedCapture cap;
    eq.runAll();

    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], static_cast<int>(2 * i));
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Comparator, SameTickReschedulingKeepsCausalOrder)
{
    // An event that schedules more work at its own tick: the new
    // events must run after it, in their own insertion order, and
    // the dispatch-order checker must stay quiet.
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(7, [&] {
        order.push_back(0);
        eq.schedule(7, [&] { order.push_back(2); });
        eq.schedule(7, [&] { order.push_back(3); });
    });
    eq.schedule(7, [&] { order.push_back(1); });

    ScopedCapture cap;
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Comparator, RunUntilRepushKeepsOrder)
{
    // runUntil() pops and re-pushes the first not-yet-due event; the
    // re-push must not perturb tie-breaking among its peers.
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });

    ScopedCapture cap;
    eq.runUntil(50); // touches the heap but runs nothing
    EXPECT_TRUE(order.empty());
    eq.runAll();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_EQ(cap.total(), 0u);
}

} // namespace
} // namespace jetsim
