/**
 * @file
 * JetSan plausibility invariant: NaN/Inf and out-of-range physical
 * quantities injected into the board power path and the GPU cost
 * model must be detected, reported with the right component, and
 * sanitised so nothing non-finite escapes into the timeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "check/reporter.hh"
#include "gpu/cost_model.hh"
#include "sim/event_queue.hh"
#include "soc/board.hh"
#include "soc/device_spec.hh"

namespace jetsim {
namespace {

using check::Invariant;
using check::ScopedCapture;
using check::Severity;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

gpu::KernelDesc
healthyKernel()
{
    gpu::KernelDesc k;
    k.name = "conv1";
    k.flops = 2e9;
    k.bytes = 5e7;
    k.blocks = 128;
    return k;
}

void
expectFinite(const gpu::KernelTiming &t)
{
    EXPECT_GT(t.duration, 0);
    EXPECT_TRUE(std::isfinite(t.sm_active));
    EXPECT_TRUE(std::isfinite(t.issue_slot));
    EXPECT_TRUE(std::isfinite(t.tc_util));
    EXPECT_TRUE(std::isfinite(t.bw_util));
    EXPECT_TRUE(std::isfinite(t.compute_frac));
}

TEST(PlausibilityInjection, NanGpuUtilisationIsDetected)
{
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);

    ScopedCapture cap;
    board.setGpuState(true, kNaN, 0.2, 0.1, 0.3); // deliberate NaN

    ASSERT_EQ(cap.count(Invariant::Plausibility), 1u);
    const auto &v = cap.violations().front();
    EXPECT_EQ(v.severity, Severity::Error);
    EXPECT_EQ(v.component, "soc.board");
    // Sanitised: the NaN never reaches the power model.
    EXPECT_TRUE(std::isfinite(board.powerW()));
    EXPECT_EQ(board.activity().sm_active, 0.0);
}

TEST(PlausibilityInjection, OutOfRangeUtilisationIsDetected)
{
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);

    ScopedCapture cap;
    board.setGpuState(true, 3.5, 0.2, 0.1, 0.3); // > 1
    EXPECT_EQ(cap.count(Invariant::Plausibility), 1u);
    EXPECT_EQ(board.activity().sm_active, 1.0); // clamped
}

TEST(PlausibilityInjection, BadCpuCoreCountIsDetected)
{
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);

    ScopedCapture cap;
    board.setCpuActive(999, -1);
    EXPECT_EQ(cap.count(Invariant::Plausibility), 1u);
    EXPECT_LE(board.activity().cpu_active_big,
              board.spec().bigCores());
    EXPECT_GE(board.activity().cpu_active_little, 0);
    EXPECT_TRUE(std::isfinite(board.powerW()));
}

TEST(PlausibilityInjection, ZeroFrequencyIsDetectedAndSanitised)
{
    const gpu::KernelCostModel model(soc::orinNano());
    const gpu::KernelDesc k = healthyKernel();

    ScopedCapture cap;
    const auto t = model.timing(k, 0.0); // divide-by-zero bait

    ASSERT_GE(cap.count(Invariant::Plausibility), 1u);
    const auto &v = cap.violations().front();
    EXPECT_EQ(v.severity, Severity::Error);
    EXPECT_EQ(v.component, "gpu.cost");
    expectFinite(t);
}

TEST(PlausibilityInjection, NanFrequencyIsDetectedAndSanitised)
{
    const gpu::KernelCostModel model(soc::orinNano());

    ScopedCapture cap;
    const auto t = model.timing(healthyKernel(), kNaN);
    EXPECT_GE(cap.count(Invariant::Plausibility), 1u);
    expectFinite(t);
}

TEST(PlausibilityInjection, DegenerateKernelDescriptorIsDetected)
{
    const gpu::KernelCostModel model(soc::orinNano());

    gpu::KernelDesc k = healthyKernel();
    k.blocks = 0;
    k.efficiency_scale = 0.0;
    k.flops = kNaN;

    ScopedCapture cap;
    const auto t = model.timing(k, 1.0);
    EXPECT_GE(cap.count(Invariant::Plausibility), 1u);
    expectFinite(t);
}

TEST(PlausibilityClean, HealthyCostModelReportsNothing)
{
    ScopedCapture cap;
    const gpu::KernelCostModel model(soc::orinNano());
    const gpu::KernelDesc k = healthyKernel();

    for (double f : {0.25, 0.5, 0.75, 1.0}) {
        const auto t = model.timing(k, f);
        expectFinite(t);
        EXPECT_LE(t.sm_active, 1.0);
        EXPECT_LE(t.bw_util, 1.0);
    }
    EXPECT_EQ(cap.total(), 0u);
}

TEST(PlausibilityClean, DvfsGovernorStaysInTable)
{
    // Run the governor for a while under load: the in-table frequency
    // invariant (component soc.dvfs) must never fire.
    ScopedCapture cap;
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    board.start();
    board.setGpuState(true, 0.9, 0.4, 0.5, 0.6);
    eq.runUntil(sim::msec(200));
    board.setGpuState(false, 0, 0, 0, 0);
    eq.runUntil(sim::msec(400));

    EXPECT_GT(board.governor().freqGhz(), 0.0);
    EXPECT_EQ(cap.total(), 0u);
}

} // namespace
} // namespace jetsim
