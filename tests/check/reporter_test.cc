/**
 * @file
 * Unit tests for the JetSan reporter itself: modes, counters,
 * bounded history, and the scoped-capture helper the injection
 * tests rely on.
 */

#include <gtest/gtest.h>

#include "check/check.hh"
#include "check/digest.hh"
#include "check/reporter.hh"

namespace jetsim::check {
namespace {

TEST(Reporter, RecordsSeverityComponentAndTime)
{
    ScopedCapture cap;
    Reporter::instance().report(Severity::Error, Invariant::Causality,
                                "test.component", 1234,
                                "value was %d", 42);

    ASSERT_EQ(cap.total(), 1u);
    const Violation &v = cap.violations().front();
    EXPECT_EQ(v.severity, Severity::Error);
    EXPECT_EQ(v.invariant, Invariant::Causality);
    EXPECT_EQ(v.component, "test.component");
    EXPECT_EQ(v.sim_time, 1234);
    EXPECT_EQ(v.message, "value was 42");
    EXPECT_NE(v.str().find("error"), std::string::npos);
    EXPECT_NE(v.str().find("causality"), std::string::npos);
}

TEST(Reporter, SnapshotMatchesQuiescentReference)
{
    // violationsSnapshot() is the lock-safe accessor (copies under
    // the reporter mutex); at a quiescent point it must agree
    // element-for-element with the zero-copy violations() reference.
    ScopedCapture cap;
    Reporter::instance().report(Severity::Warning,
                                Invariant::StreamHazard, "t", 7, "x");
    Reporter::instance().report(Severity::Error, Invariant::Causality,
                                "t", 8, "y");

    const auto snap = cap.violationsSnapshot();
    const auto &ref = cap.violations();
    ASSERT_EQ(snap.size(), ref.size());
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].severity, ref[i].severity);
        EXPECT_EQ(snap[i].invariant, ref[i].invariant);
        EXPECT_EQ(snap[i].sim_time, ref[i].sim_time);
        EXPECT_EQ(snap[i].message, ref[i].message);
    }
    // The snapshot is an independent copy: clearing the reporter
    // must not invalidate or empty it.
    Reporter::instance().clear();
    EXPECT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[1].message, "y");
}

TEST(Reporter, CountsPerInvariantClass)
{
    ScopedCapture cap;
    Reporter::instance().report(Severity::Warning,
                                Invariant::MemoryAccounting, "t",
                                kTimeUnknown, "a");
    Reporter::instance().report(Severity::Error,
                                Invariant::MemoryAccounting, "t",
                                kTimeUnknown, "b");
    Reporter::instance().report(Severity::Error,
                                Invariant::Plausibility, "t",
                                kTimeUnknown, "c");

    EXPECT_EQ(cap.total(), 3u);
    EXPECT_EQ(cap.count(Invariant::MemoryAccounting), 2u);
    EXPECT_EQ(cap.count(Invariant::Plausibility), 1u);
    EXPECT_EQ(cap.count(Invariant::Causality), 0u);
}

TEST(Reporter, CheckMacroOnlyFiresOnFailure)
{
    ScopedCapture cap;
    JETSIM_CHECK(1 + 1 == 2, Severity::Error, Invariant::Plausibility,
                 "test", kTimeUnknown, "never fires");
    EXPECT_EQ(cap.total(), 0u);
    JETSIM_CHECK(1 + 1 == 3, Severity::Error, Invariant::Plausibility,
                 "test", kTimeUnknown, "always fires");
    EXPECT_EQ(cap.total(), 1u);
}

TEST(Reporter, ScopedCaptureRestoresModeAndClears)
{
    const auto outer = Reporter::instance().mode();
    {
        ScopedCapture cap;
        EXPECT_EQ(Reporter::instance().mode(),
                  Reporter::Mode::Count);
        Reporter::instance().report(Severity::Error,
                                    Invariant::Determinism, "t",
                                    kTimeUnknown, "inside");
        EXPECT_EQ(cap.total(), 1u);
    }
    EXPECT_EQ(Reporter::instance().mode(), outer);
    EXPECT_EQ(Reporter::instance().total(), 0u);
}

TEST(Reporter, HistoryIsBoundedButCountingIsNot)
{
    ScopedCapture cap;
    for (int i = 0; i < 200; ++i)
        Reporter::instance().report(Severity::Warning,
                                    Invariant::StreamHazard, "t",
                                    kTimeUnknown, "%d", i);
    EXPECT_EQ(cap.total(), 200u);
    EXPECT_LE(cap.violations().size(), 64u);
}

TEST(Digest, OrderAndValueSensitive)
{
    Digest a, b, c;
    a.add(std::uint64_t{1}).add(std::uint64_t{2});
    b.add(std::uint64_t{2}).add(std::uint64_t{1});
    c.add(std::uint64_t{1}).add(std::uint64_t{2});
    EXPECT_NE(a.value(), b.value());
    EXPECT_EQ(a.value(), c.value());
}

TEST(Digest, DoublesHashByBitPattern)
{
    Digest a, b;
    a.add(0.1);
    b.add(0.1 + 1e-18); // same double after rounding
    EXPECT_EQ(a.value(), b.value());

    Digest c, d;
    c.add(1.0);
    d.add(1.0 + 1e-15); // genuinely different bits
    EXPECT_NE(c.value(), d.value());
}

TEST(Digest, StringsIncludeLength)
{
    Digest a, b;
    a.add(std::string_view("ab")).add(std::string_view("c"));
    b.add(std::string_view("a")).add(std::string_view("bc"));
    EXPECT_NE(a.value(), b.value());
}

} // namespace
} // namespace jetsim::check
