/**
 * @file
 * JetSan determinism invariant: running the same seeded experiment
 * twice must reproduce every output bit (same digest); a different
 * seed must perturb the jittered timeline (different digest). This
 * is the in-suite version of the tools/simcheck replay harness.
 */

#include <gtest/gtest.h>

#include "check/reporter.hh"
#include "core/digest.hh"
#include "core/profiler.hh"

namespace jetsim {
namespace {

core::ExperimentSpec
smallSpec(std::uint64_t seed)
{
    core::ExperimentSpec spec;
    spec.device = "orin-nano";
    spec.model = "resnet50";
    spec.precision = soc::Precision::Fp16;
    spec.batch = 1;
    spec.processes = 2;
    spec.phase = core::Phase::Light;
    spec.warmup = sim::msec(100);
    spec.duration = sim::msec(300);
    spec.seed = seed;
    return spec;
}

TEST(Determinism, SameSeedBitIdenticalDigest)
{
    check::ScopedCapture cap;
    const auto a = core::runExperiment(smallSpec(7));
    const auto b = core::runExperiment(smallSpec(7));

    EXPECT_TRUE(a.all_deployed);
    EXPECT_GT(a.total_throughput, 0.0);
    EXPECT_EQ(core::resultDigest(a), core::resultDigest(b));
    EXPECT_EQ(cap.total(), 0u); // the clean suite reports nothing
}

TEST(Determinism, DifferentSeedDifferentDigest)
{
    check::ScopedCapture cap;
    const auto a = core::runExperiment(smallSpec(7));
    const auto b = core::runExperiment(smallSpec(8));
    EXPECT_NE(core::resultDigest(a), core::resultDigest(b));
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Determinism, DeepPhaseIsAlsoReproducible)
{
    // Phase 2 adds the Nsight-style tracer (counter CDFs, kernel
    // spans) — the digest covers those too.
    check::ScopedCapture cap;
    auto spec = smallSpec(21);
    spec.phase = core::Phase::Deep;
    const auto a = core::runExperiment(spec);
    const auto b = core::runExperiment(spec);

    EXPECT_GT(a.kernels, 0u);
    EXPECT_EQ(core::resultDigest(a), core::resultDigest(b));
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Determinism, DigestCoversPerProcessMetrics)
{
    const auto a = core::runExperiment(smallSpec(7));
    auto b = a;
    ASSERT_FALSE(b.procs.empty());
    b.procs.back().throughput += 1e-9;
    EXPECT_NE(core::resultDigest(a), core::resultDigest(b));
}

} // namespace
} // namespace jetsim
