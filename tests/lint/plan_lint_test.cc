/**
 * @file
 * Plan/deployment lint tests: a tampered precision-mismatch plan, the
 * paper's over-capacity FCN_ResNet50 Nano deployment, and the clean
 * path for every zoo model x precision x board cell.
 */

#include "lint/plan_lint.hh"

#include <gtest/gtest.h>

#include "models/zoo.hh"
#include "trt/builder.hh"

namespace jetsim::lint {
namespace {

trt::Engine
buildEngine(const std::string &model, const std::string &device,
            soc::Precision prec, int batch = 1)
{
    const auto dev = soc::deviceByName(device);
    trt::Builder builder(dev);
    trt::BuilderConfig cfg;
    cfg.precision = prec;
    cfg.batch = batch;
    return builder.build(models::modelByName(model), cfg);
}

TEST(PlanLint, CleanEngineHasNoErrors)
{
    const auto e =
        buildEngine("resnet50", "orin-nano", soc::Precision::Fp16);
    Report rep;
    lintEngine(e, soc::deviceByName("orin-nano"), rep);
    EXPECT_TRUE(rep.clean()) << rep.text();
}

TEST(PlanLint, PrecisionMismatchPlanIsFlagged)
{
    // Tamper with a serialized plan the way a corrupted or
    // hand-edited plan file would: an fp16 engine acquires a tf32
    // kernel that neither the request nor the fallback path allows.
    const auto e =
        buildEngine("resnet50", "orin-nano", soc::Precision::Fp16);
    auto plan = e.serialize();
    const auto k = plan.find("\nk ");
    ASSERT_NE(k, std::string::npos);
    const auto prec = plan.find(" fp16 ", k);
    ASSERT_NE(prec, std::string::npos);
    plan.replace(prec, 6, " tf32 ");

    const auto tampered = trt::Engine::deserialize(plan);
    Report rep;
    lintEngine(tampered, rep);
    EXPECT_FALSE(rep.byRule(Rule::PlanPrecisionMismatch).empty());
    EXPECT_FALSE(rep.clean());
}

TEST(PlanLint, FallbackBookkeepingMismatchIsAWarning)
{
    // Int8 on the Nano demotes unsupported ops; zeroing the recorded
    // fallback count must trip the P006 cross-check.
    const auto e =
        buildEngine("resnet50", "nano", soc::Precision::Int8);
    ASSERT_GT(e.fallbackOps(), 0);
    auto plan = e.serialize();
    const auto pos = plan.find("fallback_ops ");
    ASSERT_NE(pos, std::string::npos);
    const auto eol = plan.find('\n', pos);
    plan.replace(pos, eol - pos, "fallback_ops 0");

    const auto tampered = trt::Engine::deserialize(plan);
    Report rep;
    lintEngine(tampered, rep);
    EXPECT_FALSE(rep.byRule(Rule::PlanFallbackMismatch).empty());
}

TEST(PlanLint, OverCapacityFcnDeploymentOnNanoIsAnError)
{
    // The paper's motivating failure: four FCN_ResNet50 processes
    // exceed the Nano's unified memory and reboot the board. jetlint
    // must predict it from the spec sheet alone.
    const auto spec = soc::deviceByName("nano");
    const auto e =
        buildEngine("fcn_resnet50", "nano", soc::Precision::Fp16);
    Report rep;
    lintDeployment(e, 4, spec, rep);
    const auto over = rep.byRule(Rule::DeployOverCapacity);
    ASSERT_EQ(over.size(), 1u);
    EXPECT_EQ(over[0].severity, check::Severity::Error);
    EXPECT_NE(over[0].message.find("MiB"), std::string::npos);

    // A single process fits.
    Report single;
    lintDeployment(e, 1, spec, single);
    EXPECT_TRUE(single.byRule(Rule::DeployOverCapacity).empty());
}

TEST(PlanLint, HeterogeneousDeploymentSumsAllGroups)
{
    const auto spec = soc::deviceByName("nano");
    const auto fcn =
        buildEngine("fcn_resnet50", "nano", soc::Precision::Fp16);
    const auto mob =
        buildEngine("mobilenet_v2", "nano", soc::Precision::Fp16);
    // Each group alone fits at these counts; the combined footprint
    // does not.
    Report alone_fcn, alone_mob, rep;
    lintDeployment(fcn, 3, spec, alone_fcn);
    lintDeployment(mob, 2, spec, alone_mob);
    EXPECT_TRUE(alone_fcn.byRule(Rule::DeployOverCapacity).empty());
    EXPECT_TRUE(alone_mob.byRule(Rule::DeployOverCapacity).empty());
    lintDeployment({{&fcn, 3}, {&mob, 2}}, spec, rep);
    EXPECT_FALSE(rep.byRule(Rule::DeployOverCapacity).empty());
}

TEST(PlanLint, EveryZooCellLintsErrorFree)
{
    for (const auto &device : soc::deviceNames()) {
        const auto spec = soc::deviceByName(device);
        for (const auto &model : models::allModelNames()) {
            for (const auto prec : soc::kAllPrecisions) {
                const auto e = buildEngine(model, device, prec);
                Report rep;
                lintEngine(e, spec, rep);
                EXPECT_TRUE(rep.clean())
                    << model << "@" << soc::name(prec) << " on "
                    << device << ":\n"
                    << rep.text();
            }
        }
    }
}

} // namespace
} // namespace jetsim::lint
