/**
 * @file
 * Config lint tests: end-to-end lintExperiment over good and bad
 * experiment specs, including the paper's over-deployment cell.
 */

#include "lint/config_lint.hh"

#include <gtest/gtest.h>

namespace jetsim::lint {
namespace {

core::ExperimentSpec
goodSpec()
{
    core::ExperimentSpec s;
    s.device = "orin-nano";
    s.model = "resnet50";
    s.precision = soc::Precision::Fp16;
    s.batch = 1;
    s.processes = 1;
    return s;
}

TEST(ConfigLint, DefaultSpecIsClean)
{
    Report rep;
    lintExperiment(goodSpec(), rep);
    EXPECT_TRUE(rep.clean()) << rep.text();
}

TEST(ConfigLint, UnknownDeviceIsAnErrorListingTheCatalogue)
{
    auto s = goodSpec();
    s.device = "xavier-nx";
    Report rep;
    lintExperiment(s, rep);
    const auto f = rep.byRule(Rule::ConfigUnknownDevice);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_NE(f[0].hint.find("orin-nano"), std::string::npos);
}

TEST(ConfigLint, UnknownModelIsAnError)
{
    auto s = goodSpec();
    s.model = "vgg16";
    Report rep;
    lintExperiment(s, rep);
    EXPECT_FALSE(rep.byRule(Rule::ConfigUnknownModel).empty());
}

TEST(ConfigLint, NonPositiveBatchAndProcessesAreErrors)
{
    auto s = goodSpec();
    s.batch = 0;
    s.processes = -2;
    Report rep;
    lintExperiment(s, rep);
    EXPECT_FALSE(rep.byRule(Rule::ConfigBadBatch).empty());
    EXPECT_FALSE(rep.byRule(Rule::ConfigBadProcesses).empty());
}

TEST(ConfigLint, BeyondGridBatchIsOnlyAWarning)
{
    auto s = goodSpec();
    s.batch = 64;
    Report rep;
    lintExperiment(s, rep);
    const auto f = rep.byRule(Rule::ConfigBadBatch);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0].severity, check::Severity::Warning);
}

TEST(ConfigLint, NegativeWindowAndPreEnqueueAreErrors)
{
    auto s = goodSpec();
    s.duration = 0;
    s.pre_enqueue = -1;
    Report rep;
    lintExperiment(s, rep);
    EXPECT_FALSE(rep.byRule(Rule::ConfigBadWindow).empty());
    EXPECT_FALSE(rep.byRule(Rule::ConfigBadPreEnqueue).empty());
}

TEST(ConfigLint, SpatialSharingOnAJetsonIsAWarning)
{
    auto s = goodSpec();
    s.spatial_sharing = true;
    Report rep;
    lintExperiment(s, rep);
    EXPECT_FALSE(rep.byRule(Rule::ConfigSpatialSharing).empty());

    s.device = "a40";
    Report a40;
    lintExperiment(s, a40);
    EXPECT_TRUE(a40.byRule(Rule::ConfigSpatialSharing).empty());
}

TEST(ConfigLint, PartialPrecisionCoverageIsSurfacedAsInfo)
{
    // The Nano has no int8 tensor paths; the paper found the int8
    // request silently running mostly fp32 (S6.1.1).
    auto s = goodSpec();
    s.device = "nano";
    s.precision = soc::Precision::Int8;
    Report rep;
    lintExperiment(s, rep);
    EXPECT_FALSE(rep.byRule(Rule::ConfigPrecisionCoverage).empty());
    EXPECT_TRUE(rep.clean()) << rep.text();
}

TEST(ConfigLint, OverDeployedCellComesBackWithD001)
{
    // The full pipeline reproduces the paper's Nano OOM from the
    // spec alone: 4x FCN_ResNet50 never fits in 4 GiB.
    auto s = goodSpec();
    s.device = "nano";
    s.model = "fcn_resnet50";
    s.processes = 4;
    Report rep;
    lintExperiment(s, rep);
    EXPECT_FALSE(rep.byRule(Rule::DeployOverCapacity).empty());
}

TEST(ConfigLint, MixedSpecSumsGroupFootprints)
{
    core::MixedExperimentSpec s;
    s.device = "nano";
    s.workloads = {
        core::WorkloadSpec{"fcn_resnet50", soc::Precision::Fp16, 1, 3},
        core::WorkloadSpec{"mobilenet_v2", soc::Precision::Fp16, 1, 2},
    };
    Report rep;
    lintExperiment(s, rep);
    EXPECT_FALSE(rep.byRule(Rule::DeployOverCapacity).empty());
}

TEST(ConfigLint, MixedSpecWithNoWorkloadsIsAnError)
{
    core::MixedExperimentSpec s;
    s.device = "orin-nano";
    Report rep;
    lintExperiment(s, rep);
    EXPECT_FALSE(rep.clean());
}

} // namespace
} // namespace jetsim::lint
