/**
 * @file
 * Happens-before hazard detector tests: unsynchronized cross-stream
 * WAW/RAW hazards, event-edge synchronization making them vanish,
 * event-wait deadlock cycles, and misuse warnings.
 */

#include "lint/hazard_lint.hh"

#include <gtest/gtest.h>

namespace jetsim::lint {
namespace {

TEST(HazardLint, UnsynchronizedCrossStreamWawIsFlagged)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int buf = p.buffer("activations");
    p.launch(s0, "writerA", {}, {buf});
    p.launch(s1, "writerB", {}, {buf});
    Report rep;
    lintHazards(p, rep);
    const auto waw = rep.byRule(Rule::HazardWaw);
    ASSERT_EQ(waw.size(), 1u);
    EXPECT_NE(waw[0].message.find("activations"), std::string::npos);
    EXPECT_FALSE(rep.clean());
}

TEST(HazardLint, UnsynchronizedCrossStreamRawIsFlagged)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int buf = p.buffer("weights");
    p.launch(s0, "producer", {}, {buf});
    p.launch(s1, "consumer", {buf}, {});
    Report rep;
    lintHazards(p, rep);
    EXPECT_EQ(rep.byRule(Rule::HazardRaw).size(), 1u);
    EXPECT_TRUE(rep.byRule(Rule::HazardWaw).empty());
}

TEST(HazardLint, RecordWaitEdgeSynchronizesTheStreams)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int buf = p.buffer("activations");
    const int ev = p.event("done");
    p.launch(s0, "producer", {}, {buf});
    p.record(s0, ev);
    p.wait(s1, ev);
    p.launch(s1, "consumer", {buf}, {});
    Report rep;
    lintHazards(p, rep);
    EXPECT_TRUE(rep.findings().empty()) << rep.text();
}

TEST(HazardLint, SameStreamAccessesNeverConflict)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int buf = p.buffer("io");
    p.launch(s0, "a", {}, {buf});
    p.launch(s0, "b", {buf}, {buf});
    Report rep;
    lintHazards(p, rep);
    EXPECT_TRUE(rep.findings().empty()) << rep.text();
}

TEST(HazardLint, ReadersNeedNoOrdering)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int buf = p.buffer("weights");
    p.launch(s0, "readerA", {buf}, {});
    p.launch(s1, "readerB", {buf}, {});
    Report rep;
    lintHazards(p, rep);
    EXPECT_TRUE(rep.findings().empty()) << rep.text();
}

TEST(HazardLint, CrossStreamWaitCycleIsADeadlock)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int e0 = p.event("e0");
    const int e1 = p.event("e1");
    // s0 waits for e1 before recording e0; s1 waits for e0 before
    // recording e1: neither record can ever execute.
    p.wait(s0, e1);
    p.record(s0, e0);
    p.wait(s1, e0);
    p.record(s1, e1);
    Report rep;
    lintHazards(p, rep);
    EXPECT_FALSE(rep.byRule(Rule::HazardDeadlock).empty());
    EXPECT_FALSE(rep.clean());
}

TEST(HazardLint, WaitOnNeverRecordedEventIsAWarning)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int ev = p.event("phantom");
    p.wait(s0, ev);
    Report rep;
    lintHazards(p, rep);
    const auto w = rep.byRule(Rule::HazardUnrecordedWait);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].severity, check::Severity::Warning);
    EXPECT_TRUE(rep.clean());
}

TEST(HazardLint, ReRecordedEventIsAWarning)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int ev = p.event("reused");
    p.record(s0, ev);
    p.record(s1, ev);
    Report rep;
    lintHazards(p, rep);
    EXPECT_FALSE(rep.byRule(Rule::HazardReRecord).empty());
}

TEST(HazardLint, TransitiveSynchronizationCarriesAcrossStreams)
{
    // s0 -> s1 -> s2 via two event edges: s2's consumer is ordered
    // after s0's producer even though they never synchronize
    // directly.
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int s2 = p.stream("s2");
    const int buf = p.buffer("activations");
    const int e0 = p.event("e0");
    const int e1 = p.event("e1");
    p.launch(s0, "producer", {}, {buf});
    p.record(s0, e0);
    p.wait(s1, e0);
    p.record(s1, e1);
    p.wait(s2, e1);
    p.launch(s2, "consumer", {buf}, {});
    Report rep;
    lintHazards(p, rep);
    EXPECT_TRUE(rep.findings().empty()) << rep.text();
}

// ---- conflictingStreamPairs: the dependence relation jetmc's DPOR
// and jetbound's serialization allowance are built on ----------------

TEST(HazardLint, EmptyProgramHasNoConflictingPairs)
{
    StreamProgram p;
    EXPECT_TRUE(conflictingStreamPairs(p).empty());
    p.stream("s0");
    p.stream("s1");
    EXPECT_TRUE(conflictingStreamPairs(p).empty());
}

TEST(HazardLint, SyncEdgeOnlyStreamsAreIndependent)
{
    // record/wait edges alone carry no data: streams that touch no
    // common buffer commute even when explicitly ordered.
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int a = p.buffer("a");
    const int b = p.buffer("b");
    const int ev = p.event("e");
    p.launch(s0, "left", {}, {a});
    p.record(s0, ev);
    p.wait(s1, ev);
    p.launch(s1, "right", {}, {b});
    EXPECT_TRUE(conflictingStreamPairs(p).empty());
}

TEST(HazardLint, SynchronizedConflictIsStillReported)
{
    // The relation is *potential* dependence: a record/wait edge
    // ordering the conflict must not hide it (the checker, not the
    // lint, decides whether the order is enforced everywhere).
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int buf = p.buffer("shared");
    const int ev = p.event("e");
    p.launch(s0, "producer", {}, {buf});
    p.record(s0, ev);
    p.wait(s1, ev);
    p.launch(s1, "consumer", {buf}, {});
    const auto pairs = conflictingStreamPairs(p);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0], std::make_pair(s0, s1));
}

TEST(HazardLint, SelfConflictDoesNotPairAStreamWithItself)
{
    // WAW inside one stream is FIFO-ordered by definition; the
    // relation only ever contains cross-stream pairs with a < b.
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int buf = p.buffer("reused");
    p.launch(s0, "first", {}, {buf});
    p.launch(s0, "second", {buf}, {buf});
    EXPECT_TRUE(conflictingStreamPairs(p).empty());
}

TEST(HazardLint, ReadOnlySharingIsNotAConflict)
{
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int w = p.buffer("weights");
    p.launch(s0, "infer0", {w}, {});
    p.launch(s1, "infer1", {w}, {});
    EXPECT_TRUE(conflictingStreamPairs(p).empty());
    // ... until someone writes the shared buffer.
    p.launch(s1, "update", {}, {w});
    EXPECT_EQ(conflictingStreamPairs(p).size(), 1u);
}

TEST(HazardLint, PairsAreDeduplicatedAndOrdered)
{
    // Many conflicting accesses between the same two streams yield
    // one pair, and pairs come out sorted with first < second.
    StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int s2 = p.stream("s2");
    const int a = p.buffer("a");
    const int b = p.buffer("b");
    p.launch(s1, "w1", {}, {a});
    p.launch(s1, "w1b", {}, {b});
    p.launch(s0, "w0", {}, {a});
    p.launch(s0, "w0b", {}, {b});
    p.launch(s2, "w2", {}, {b});
    const auto pairs = conflictingStreamPairs(p);
    ASSERT_EQ(pairs.size(), 3u);
    EXPECT_EQ(pairs[0], std::make_pair(s0, s1));
    EXPECT_EQ(pairs[1], std::make_pair(s0, s2));
    EXPECT_EQ(pairs[2], std::make_pair(s1, s2));
}

TEST(HazardLint, BufferBytesDefaultToZeroAndAreRetrievable)
{
    // The sized-buffer overload feeds the liveness memory analysis
    // (src/absint/memlive); unsized declarations stay weightless.
    StreamProgram p;
    const int a = p.buffer("plain");
    const int b = p.buffer("sized", 64 * 1024 * 1024);
    EXPECT_EQ(p.bufferBytes(a), 0u);
    EXPECT_EQ(p.bufferBytes(b), 64u * 1024 * 1024);
    EXPECT_EQ(p.numBuffers(), 2);
}

} // namespace
} // namespace jetsim::lint
