/**
 * @file
 * Graph-lint tests: seeded malformed layer lists (cycles, dangling
 * references, bad shapes) that the Network builder API cannot
 * express, plus the shipped zoo models which must lint error-free.
 */

#include "lint/graph_lint.hh"

#include <gtest/gtest.h>

#include "models/zoo.hh"

namespace jetsim::lint {
namespace {

using graph::Layer;
using graph::OpKind;
using graph::Shape;

Layer
inputLayer(Shape s)
{
    Layer l;
    l.id = 0;
    l.name = "input";
    l.kind = OpKind::Input;
    l.in = s;
    l.out = s;
    return l;
}

Layer
reluLayer(int id, std::vector<int> inputs, Shape s)
{
    Layer l;
    l.id = id;
    l.name = "relu" + std::to_string(id);
    l.kind = OpKind::Relu;
    l.inputs = std::move(inputs);
    l.in = s;
    l.out = s;
    return l;
}

TEST(GraphLint, WellFormedChainIsClean)
{
    graph::Network net("n", Shape{3, 8, 8});
    const int c = net.addConv("c", 0, 4, 3, 1, 1);
    net.addActivation("r", c, OpKind::Relu);
    Report rep;
    lintNetwork(net, rep);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.warnings(), 0);
}

TEST(GraphLint, SeededCycleIsFlagged)
{
    const Shape s{3, 8, 8};
    std::vector<Layer> layers = {
        inputLayer(s),
        reluLayer(1, {2}, s), // 1 <- 2
        reluLayer(2, {1}, s), // 2 <- 1: a cycle the builder API
                              // could never produce
    };
    Report rep;
    lintLayers("cyclic", layers, 2, rep);
    EXPECT_FALSE(rep.byRule(Rule::GraphCycle).empty());
    EXPECT_FALSE(rep.clean());
}

TEST(GraphLint, SelfLoopIsACycle)
{
    const Shape s{3, 8, 8};
    std::vector<Layer> layers = {inputLayer(s),
                                 reluLayer(1, {1}, s)};
    Report rep;
    lintLayers("selfloop", layers, 1, rep);
    EXPECT_FALSE(rep.byRule(Rule::GraphCycle).empty());
}

TEST(GraphLint, DanglingProducerReferenceIsFlagged)
{
    const Shape s{3, 8, 8};
    std::vector<Layer> layers = {inputLayer(s),
                                 reluLayer(1, {5}, s)};
    Report rep;
    lintLayers("dangling", layers, 1, rep);
    EXPECT_FALSE(rep.byRule(Rule::GraphDanglingInput).empty());
}

TEST(GraphLint, ShapeMismatchBetweenProducerAndConsumer)
{
    std::vector<Layer> layers = {inputLayer(Shape{3, 8, 8}),
                                 reluLayer(1, {0}, Shape{3, 4, 4})};
    Report rep;
    lintLayers("mismatch", layers, 1, rep);
    EXPECT_FALSE(rep.byRule(Rule::GraphShapeMismatch).empty());
}

TEST(GraphLint, NonPositiveDimensionIsFlagged)
{
    std::vector<Layer> layers = {inputLayer(Shape{3, 8, 8}),
                                 reluLayer(1, {0}, Shape{3, 8, 8})};
    layers[1].out = Shape{3, 0, 8};
    Report rep;
    lintLayers("baddims", layers, 1, rep);
    EXPECT_FALSE(rep.byRule(Rule::GraphBadDims).empty());
}

TEST(GraphLint, DeadBranchIsAWarningNotAnError)
{
    const Shape s{3, 8, 8};
    std::vector<Layer> layers = {
        inputLayer(s),
        reluLayer(1, {0}, s),
        reluLayer(2, {0}, s), // never consumed, not the output
    };
    Report rep;
    lintLayers("deadbranch", layers, 1, rep);
    const auto dead = rep.byRule(Rule::GraphDeadLayer);
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0].severity, check::Severity::Warning);
    EXPECT_TRUE(rep.clean());
}

TEST(GraphLint, ImpossibleConvParamsAreFlagged)
{
    std::vector<Layer> layers = {inputLayer(Shape{3, 8, 8})};
    Layer conv;
    conv.id = 1;
    conv.name = "badconv";
    conv.kind = OpKind::Conv;
    conv.inputs = {0};
    conv.in = Shape{3, 8, 8};
    conv.out = Shape{4, 8, 8};
    conv.out_channels = 4;
    conv.kernel = 0; // impossible
    layers.push_back(conv);
    Report rep;
    lintLayers("badconv", layers, 1, rep);
    EXPECT_FALSE(rep.byRule(Rule::GraphBadOpParams).empty());
}

TEST(GraphLint, EveryZooModelLintsErrorFree)
{
    for (const auto &name : models::allModelNames()) {
        Report rep;
        lintNetwork(models::modelByName(name), rep);
        EXPECT_TRUE(rep.clean()) << name << ":\n" << rep.text();
    }
}

} // namespace
} // namespace jetsim::lint
