/**
 * @file
 * Report/Finding emitter tests: severity accounting, text and JSON
 * rendering, and forwarding into the JetSan reporter.
 */

#include "lint/finding.hh"

#include <gtest/gtest.h>

#include "check/reporter.hh"

namespace jetsim::lint {
namespace {

TEST(Report, DefaultSeverityComesFromTheRuleCatalogue)
{
    Report rep;
    rep.add(Rule::GraphCycle, "graph.m", "layer 3", "cycle");
    rep.add(Rule::GraphDeadLayer, "graph.m", "layer 4", "dead");
    ASSERT_EQ(rep.findings().size(), 2u);
    EXPECT_EQ(rep.findings()[0].severity, check::Severity::Error);
    EXPECT_EQ(rep.findings()[1].severity, check::Severity::Warning);
    EXPECT_EQ(rep.errors(), 1);
    EXPECT_EQ(rep.warnings(), 1);
    EXPECT_FALSE(rep.clean());
}

TEST(Report, ExplicitSeverityOverridesTheDefault)
{
    Report rep;
    rep.add(Rule::ConfigBadBatch, check::Severity::Warning, "config",
            "", "batch 64 beyond grid");
    EXPECT_EQ(rep.errors(), 0);
    EXPECT_EQ(rep.warnings(), 1);
    EXPECT_TRUE(rep.clean());
}

TEST(Report, ByRuleFiltersFindings)
{
    Report rep;
    rep.add(Rule::HazardWaw, "hazard", "", "a");
    rep.add(Rule::HazardRaw, "hazard", "", "b");
    rep.add(Rule::HazardWaw, "hazard", "", "c");
    EXPECT_EQ(rep.byRule(Rule::HazardWaw).size(), 2u);
    EXPECT_EQ(rep.byRule(Rule::HazardRaw).size(), 1u);
    EXPECT_EQ(rep.byRule(Rule::HazardDeadlock).size(), 0u);
}

TEST(Report, TextRenderingCarriesRuleIdAndHint)
{
    Report rep;
    rep.add(Rule::DeployOverCapacity, "deploy.nano", "", "needs more",
            "reduce processes");
    const auto text = rep.text();
    EXPECT_NE(text.find("[D001]"), std::string::npos);
    EXPECT_NE(text.find("deploy.nano"), std::string::npos);
    EXPECT_NE(text.find("fix: reduce processes"), std::string::npos);
    EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(Report, JsonRenderingEscapesAndCounts)
{
    Report rep;
    rep.add(Rule::GraphShapeMismatch, "graph.m", "layer 1",
            "shape \"8x8\"\nmismatch");
    const auto json = rep.json();
    EXPECT_NE(json.find("\"rule\":\"G003\""), std::string::npos);
    EXPECT_NE(json.find("\\\"8x8\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
    EXPECT_EQ(json.find("\n"), std::string::npos) << "raw newline";
}

TEST(Report, ForwardsIntoJetSanAsStaticLintViolations)
{
    check::ScopedCapture capture;
    Report rep;
    rep.add(Rule::GraphCycle, "graph.m", "layer 2", "cycle");
    rep.add(Rule::HazardWaw, "hazard", "", "unordered writes");
    rep.toReporter();
    EXPECT_EQ(capture.count(check::Invariant::StaticLint), 2u);
}

TEST(Rules, CatalogueIsCompleteAndWellFormed)
{
    for (const auto rule : allRules()) {
        const auto &info = ruleInfo(rule);
        ASSERT_NE(info.id, nullptr);
        EXPECT_EQ(std::string(info.id).size(), 4u);
        EXPECT_NE(std::string(info.title), "");
        EXPECT_NE(std::string(info.description), "");
    }
}

} // namespace
} // namespace jetsim::lint
