/**
 * @file
 * The jetbound soundness harness — the tentpole property of the
 * static analyzer: for every zoo model x board x 1..4-process
 * configuration, every value the simulator measures lands inside the
 * statically derived interval (lo <= sim <= hi), the liveness memory
 * verdict agrees with the deployment outcome, the per-channel queue
 * depth never exceeds the static cap, and jetmc's schedule-space
 * worst-case blocking stays below the adversarial static bound.
 *
 * These are not calibration checks: analyze() never runs the
 * simulator, so any containment failure is a genuine unsoundness in
 * the abstract domain (or a simulator mechanism the domain does not
 * dominate) and must fail loudly.
 */

#include <gtest/gtest.h>

#include "absint/bounds.hh"
#include "core/profiler.hh"
#include "gpu/engine.hh"
#include "mc/deployment.hh"
#include "mc/explorer.hh"
#include "models/zoo.hh"
#include "soc/device_spec.hh"
#include "workload/inference_process.hh"

namespace jetsim::absint {
namespace {

/** Slack for double accumulation across thousands of samples. */
bool
inside(double v, const Interval &iv)
{
    return iv.contains(v, 1e-6 * std::max(1.0, iv.hi) + 1e-9);
}

void
checkSound(const core::ExperimentSpec &spec)
{
    SCOPED_TRACE(spec.label());
    const auto b = analyze(spec);
    ASSERT_TRUE(b.ok) << b.error;
    const auto res = core::runExperiment(spec);

    // The liveness analysis is exact for the deployment program, so
    // the static OOM verdict must equal the simulated outcome.
    EXPECT_EQ(res.all_deployed, !b.must_oom);
    if (!res.all_deployed)
        return;
    EXPECT_TRUE(inside(res.workload_mem_mb, b.mem_mib))
        << res.workload_mem_mb << " vs " << b.mem_mib.str();
    EXPECT_LE(res.throughput_per_process,
              b.mean_throughput_hi_fps *
                  (1.0 + 1e-6)); // mean per-process cap

    ASSERT_EQ(res.procs.size(), b.procs.size());
    for (std::size_t i = 0; i < res.procs.size(); ++i) {
        const auto &m = res.procs[i];
        const auto &pb = b.procs[i];
        ASSERT_EQ(m.name, pb.name);
        if (!m.deployed)
            continue;
        SCOPED_TRACE(m.name);
        if (m.ecs >= 1) {
            EXPECT_TRUE(inside(m.pipeline_ms, pb.latency_ms))
                << m.pipeline_ms << " vs " << pb.latency_ms.str();
            EXPECT_LE(m.blocking_ms_per_ec,
                      pb.blocking_ms_hi * (1.0 + 1e-6));
        }
        if (m.ecs >= 2) { // the period needs two completions
            EXPECT_TRUE(inside(m.ec_ms, pb.period_ms))
                << m.ec_ms << " vs " << pb.period_ms.str();
        }
        EXPECT_TRUE(inside(m.throughput, pb.throughput_fps))
            << m.throughput << " vs " << pb.throughput_fps.str();
    }
}

core::ExperimentSpec
cell(const std::string &device, const std::string &model, int procs)
{
    core::ExperimentSpec s;
    s.device = device;
    s.model = model;
    s.processes = procs;
    s.warmup = sim::msec(200);
    s.duration = sim::msec(1000);
    return s;
}

/** The full acceptance grid: zoo x {orin-nano, nano} x 1..4 procs. */
TEST(Soundness, EveryZooModelOnOrinNano)
{
    for (const auto &model : models::allModelNames())
        for (int procs = 1; procs <= 4; ++procs)
            checkSound(cell("orin-nano", model, procs));
}

TEST(Soundness, EveryZooModelOnNano)
{
    for (const auto &model : models::allModelNames())
        for (int procs = 1; procs <= 4; ++procs)
            checkSound(cell("nano", model, procs));
}

TEST(Soundness, AblationCorners)
{
    auto s = cell("orin-nano", "yolov8n", 3);
    s.phase = core::Phase::Deep; // Nsight intrusion in the bounds
    checkSound(s);

    s = cell("orin-nano", "resnet18", 2);
    s.dvfs = false; // pinned clock
    s.batch = 4;
    checkSound(s);

    s = cell("nano", "mobilenet_v2", 4);
    s.pre_enqueue = 0; // ablation A1: no pipelining
    checkSound(s);

    s = cell("orin-nano", "resnet50", 2);
    s.pre_enqueue = 3;
    s.batch = 8;
    s.seed = 7;
    checkSound(s);
}

TEST(Soundness, QueueDepthNeverExceedsTheStaticCap)
{
    // Drive the engine directly so the per-channel peak is visible.
    core::ExperimentSpec spec = cell("orin-nano", "resnet50", 2);
    const auto b = analyze(spec);
    ASSERT_TRUE(b.ok);

    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    board.start();
    cpu::OsScheduler sched(board);
    gpu::GpuEngine gpu(board);
    graph::Network net = models::resnet50();

    std::vector<std::unique_ptr<workload::InferenceProcess>> procs;
    for (int i = 0; i < spec.processes; ++i) {
        workload::ProcessConfig cfg;
        cfg.name = "p" + std::to_string(i);
        cfg.pre_enqueue = spec.pre_enqueue;
        procs.push_back(std::make_unique<workload::InferenceProcess>(
            board, sched, gpu, net, cfg));
        ASSERT_TRUE(procs.back()->deploy());
        procs.back()->start();
    }
    eq.runUntil(sim::msec(800));
    for (int ch = 0; ch < spec.processes; ++ch)
        EXPECT_LE(gpu.peakChannelDepth(ch),
                  static_cast<std::size_t>(
                      b.procs[0].queue_depth_hi))
            << "channel " << ch;
}

TEST(Soundness, JetmcWorstCaseBlockingInsideTheAdversarialBound)
{
    // The model checker explores *adversarial* CPU dispatch orders
    // the FIFO bound does not cover; its observed worst case must
    // stay below the theft-augmented static bound.
    mc::DeployConfig cfg;
    cfg.device = "orin-nano";
    cfg.procs = {{"resnet50", soc::Precision::Fp16, 1},
                 {"yolov8n", soc::Precision::Fp16, 1}};
    cfg.max_ecs = 2;
    cfg.pre_enqueue = 1;

    core::MixedExperimentSpec spec;
    spec.device = cfg.device;
    for (const auto &p : cfg.procs)
        spec.workloads.push_back({p.model, p.precision, p.batch, 1});
    spec.pre_enqueue = cfg.pre_enqueue;
    spec.dvfs = false; // the model pins the governor off
    const auto b = analyze(spec);
    ASSERT_TRUE(b.ok) << b.error;

    mc::DeploymentModel model(cfg);
    mc::ExploreConfig ec;
    ec.depth = 12;
    ec.max_runs = 300;
    ec.stop_on_failure = false;
    const auto rep = mc::explore(model, ec);
    EXPECT_TRUE(rep.clean()) << rep.ce_what;
    ASSERT_EQ(rep.max_block_ms.size(), cfg.procs.size());
    for (std::size_t i = 0; i < rep.max_block_ms.size(); ++i) {
        const double bound = adversarialBlockingHiMs(
            b, static_cast<int>(i), cfg.max_ecs);
        EXPECT_LE(rep.max_block_ms[i], bound * (1.0 + 1e-6))
            << "proc " << i << " observed " << rep.max_block_ms[i]
            << " vs adversarial bound " << bound;
    }
}

} // namespace
} // namespace jetsim::absint
