/**
 * @file
 * Buffer-liveness memory bound tests: the interval must tighten
 * jetlint's whole-sum D001 exactly when lifetimes are provably
 * disjoint, stay equal to it when everything must coexist, and
 * degrade soundly (never invert) on cycles and large programs.
 */

#include "absint/memlive.hh"

#include <gtest/gtest.h>

namespace jetsim::absint {
namespace {

constexpr sim::Bytes kMiB = 1024 * 1024;

TEST(MemLive, EmptyProgramHasZeroBounds)
{
    lint::StreamProgram p;
    const auto b = memHighWater(p);
    EXPECT_EQ(b.peak_lo, 0u);
    EXPECT_EQ(b.peak_hi, 0u);
    EXPECT_EQ(b.whole_sum, 0u);
    EXPECT_TRUE(b.exact_hi);
    EXPECT_FALSE(b.cyclic);
}

TEST(MemLive, SyncOnlyProgramAllocatesNothing)
{
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int ev = p.event("e");
    p.record(s0, ev);
    p.wait(s1, ev);
    const auto b = memHighWater(p);
    EXPECT_EQ(b.peak_lo, 0u);
    EXPECT_EQ(b.peak_hi, 0u);
}

TEST(MemLive, UnaccessedBufferCountsOnlyTowardWholeSum)
{
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    const int a = p.buffer("a", 10 * kMiB);
    p.buffer("never-touched", 90 * kMiB);
    p.launch(s0, "k", {}, {a});
    const auto b = memHighWater(p);
    EXPECT_EQ(b.peak_lo, 10 * kMiB);
    EXPECT_EQ(b.peak_hi, 10 * kMiB);
    EXPECT_EQ(b.whole_sum, 100 * kMiB); // D001 still sums everything
}

TEST(MemLive, SequentialLifetimesTightenTheWholeSum)
{
    // Same stream, so program order proves a and b never coexist:
    // the peak is the heavier one, strictly below D001's sum.
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    const int a = p.buffer("a", 30 * kMiB);
    const int b_ = p.buffer("b", 50 * kMiB);
    p.launch(s0, "phase1", {}, {a});
    p.launch(s0, "phase2", {}, {b_});
    const auto b = memHighWater(p);
    EXPECT_EQ(b.peak_hi, 50 * kMiB);
    EXPECT_EQ(b.peak_lo, 50 * kMiB);
    EXPECT_LT(b.peak_hi, b.whole_sum);
    EXPECT_TRUE(b.exact_hi);
}

TEST(MemLive, RecordWaitEdgeAlsoSeparatesLifetimes)
{
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int ev = p.event("done");
    const int a = p.buffer("a", 40 * kMiB);
    const int b_ = p.buffer("b", 8 * kMiB);
    p.launch(s0, "producer", {}, {a});
    p.record(s0, ev);
    p.wait(s1, ev);
    p.launch(s1, "consumer", {}, {b_});
    const auto b = memHighWater(p);
    EXPECT_EQ(b.peak_hi, 40 * kMiB); // cross-stream HB still disjoint
    EXPECT_EQ(b.peak_lo, 40 * kMiB);
}

TEST(MemLive, UnorderedStreamsMayButNeedNotOverlap)
{
    // No sync between the streams: some schedule co-allocates both
    // (upper = sum), but a serial schedule does not (lower = max).
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int a = p.buffer("a", 30 * kMiB);
    const int b_ = p.buffer("b", 50 * kMiB);
    p.launch(s0, "left", {}, {a});
    p.launch(s1, "right", {}, {b_});
    const auto b = memHighWater(p);
    EXPECT_EQ(b.peak_hi, 80 * kMiB);
    EXPECT_EQ(b.peak_lo, 50 * kMiB);
}

TEST(MemLive, SharedAccessForcesCoResidency)
{
    // One kernel touching both buffers pins them live together in
    // every schedule: the lower bound reaches the sum.
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    const int a = p.buffer("in", 30 * kMiB);
    const int b_ = p.buffer("out", 50 * kMiB);
    p.launch(s0, "k", {a}, {b_});
    const auto b = memHighWater(p);
    EXPECT_EQ(b.peak_lo, 80 * kMiB);
    EXPECT_EQ(b.peak_hi, 80 * kMiB);
}

TEST(MemLive, InterlockedAccessesMustOverlap)
{
    // a is accessed before and after an access of b (program order),
    // so their live ranges intersect in every schedule even though
    // no single op touches both.
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    const int a = p.buffer("a", 30 * kMiB);
    const int b_ = p.buffer("b", 50 * kMiB);
    p.launch(s0, "first", {}, {a});
    p.launch(s0, "middle", {}, {b_});
    p.launch(s0, "last", {a}, {});
    const auto b = memHighWater(p);
    EXPECT_EQ(b.peak_lo, 80 * kMiB);
    EXPECT_EQ(b.peak_hi, 80 * kMiB);
}

TEST(MemLive, DeadlockCycleDegradesToWholeSum)
{
    // H003 wait-cycle: no consistent order exists, so the analysis
    // refuses to tighten anything.
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    const int s1 = p.stream("s1");
    const int e0 = p.event("e0");
    const int e1 = p.event("e1");
    const int a = p.buffer("a", 30 * kMiB);
    p.launch(s0, "k", {}, {a});
    p.wait(s0, e1);
    p.record(s0, e0);
    p.wait(s1, e0);
    p.record(s1, e1);
    const auto b = memHighWater(p);
    EXPECT_TRUE(b.cyclic);
    EXPECT_FALSE(b.exact_hi);
    EXPECT_EQ(b.peak_lo, 0u);
    EXPECT_EQ(b.peak_hi, b.whole_sum);
}

TEST(MemLive, LargeProgramFallbackStaysSound)
{
    // Above kExactCliqueLimit buffers the upper bound falls back to
    // the whole sum and the lower bound goes greedy — both must keep
    // lo <= hi <= sum.
    lint::StreamProgram p;
    const int s0 = p.stream("s0");
    for (int i = 0; i < kExactCliqueLimit + 6; ++i) {
        const int buf =
            p.buffer("b" + std::to_string(i), (i + 1) * kMiB);
        p.launch(s0, "k" + std::to_string(i), {}, {buf});
    }
    const auto b = memHighWater(p);
    EXPECT_FALSE(b.exact_hi);
    EXPECT_EQ(b.peak_hi, b.whole_sum);
    EXPECT_GE(b.peak_lo,
              static_cast<sim::Bytes>(kExactCliqueLimit + 6) * kMiB);
    EXPECT_LE(b.peak_lo, b.peak_hi);
}

} // namespace
} // namespace jetsim::absint
