/**
 * @file
 * Sweep pre-screening tests: verdict logic against the SLO, the
 * pruning-effectiveness acceptance case (nano / fcn_resnet50), and
 * the bit-identity guarantee — cells that survive the screen must
 * simulate to exactly the same digest as in an unscreened sweep.
 */

#include "absint/prescreen.hh"

#include <gtest/gtest.h>

#include "core/digest.hh"
#include "core/sweep.hh"

namespace jetsim::absint {
namespace {

core::ExperimentSpec
cell(const std::string &device, const std::string &model, int batch,
     int procs)
{
    core::ExperimentSpec s;
    s.device = device;
    s.model = model;
    s.batch = batch;
    s.processes = procs;
    s.warmup = sim::msec(200);
    s.duration = sim::msec(1000);
    return s;
}

TEST(Prescreen, UnanalyzableSpecStaysUnknown)
{
    auto s = cell("orin-nano", "resnet50", 1, 1);
    s.spatial_sharing = true;
    const auto r = screen(s, {100, 15});
    EXPECT_EQ(r.verdict, Verdict::Unknown);
    EXPECT_NE(r.reason.find("not analyzable"), std::string::npos);
}

TEST(Prescreen, ProvesMemoryInfeasibility)
{
    const auto r = screen(cell("nano", "fcn_resnet50", 1, 4), {});
    EXPECT_EQ(r.verdict, Verdict::ProvedInfeasible);
    EXPECT_NE(r.reason.find("memory"), std::string::npos);
    EXPECT_TRUE(r.bounds.must_oom);
}

TEST(Prescreen, ProvesLatencyInfeasibility)
{
    // fcn_resnet50 at batch 8: even the run-alone serial GPU time
    // exceeds a 100 ms SLO, no schedule can be faster.
    const auto r =
        screen(cell("nano", "fcn_resnet50", 8, 1), {100, 0});
    EXPECT_EQ(r.verdict, Verdict::ProvedInfeasible);
    EXPECT_NE(r.reason.find("latency"), std::string::npos);
    EXPECT_GT(r.bounds.procs[0].latency_ms.lo, 100.0);
}

TEST(Prescreen, ProvesThroughputInfeasibility)
{
    // No process can average more than the aggregate GPU-serial cap
    // allows; an absurd floor is provably unreachable.
    const auto r =
        screen(cell("orin-nano", "fcn_resnet50", 8, 4), {0, 1e6});
    EXPECT_EQ(r.verdict, Verdict::ProvedInfeasible);
    EXPECT_NE(r.reason.find("throughput"), std::string::npos);
}

TEST(Prescreen, ProvesFeasibilityUnderAGenerousSlo)
{
    const auto r =
        screen(cell("orin-nano", "resnet18", 1, 1), {10000, 0.01});
    EXPECT_EQ(r.verdict, Verdict::ProvedFeasible);
}

TEST(Prescreen, UndecidedCellsStayUnknown)
{
    // A tight-but-reachable SLO sits between the bounds: the screen
    // must defer to simulation rather than guess.
    const auto r =
        screen(cell("orin-nano", "resnet50", 1, 2), {12, 30});
    EXPECT_EQ(r.verdict, Verdict::Unknown);
}

TEST(Prescreen, AcceptanceGridPrunesCells)
{
    // The shipped planner example: nano / fcn_resnet50 against a
    // 100 ms / 15 fps SLO. At least the 4-process column (provable
    // OOM) and the batch-8 rows (provable latency) must go.
    const Slo slo{100, 15};
    int pruned = 0;
    for (int procs : {1, 2, 4, 8})
        for (int batch : {1, 2, 4, 8})
            if (screen(cell("nano", "fcn_resnet50", batch, procs),
                       slo)
                    .verdict == Verdict::ProvedInfeasible)
                ++pruned;
    EXPECT_GE(pruned, 8);
}

TEST(Prescreen, ScreenedSweepIsBitIdenticalOnSurvivors)
{
    // Prune the 4-process column statically (guaranteed OOM) and
    // simulate the rest; every surviving cell must reproduce the
    // unscreened sweep's result bit for bit.
    auto base = cell("nano", "fcn_resnet50", 1, 1);
    const std::vector<int> batches = {1, 2};
    const std::vector<int> procs = {1, 4};

    const auto plain = core::sweepGrid(base, batches, procs);

    const core::CellScreenFn keep =
        [](const core::ExperimentSpec &s) {
            return screen(s, {}).verdict !=
                   Verdict::ProvedInfeasible;
        };
    const auto screened =
        core::sweepGridScreened(base, batches, procs, keep);

    ASSERT_EQ(plain.size(), screened.cells.size());
    EXPECT_EQ(screened.pruned, 2);    // the procs=4 row
    EXPECT_EQ(screened.simulated, 2); // the procs=1 row
    int compared = 0;
    for (std::size_t i = 0; i < plain.size(); ++i) {
        if (!screened.cells[i].has_value())
            continue;
        EXPECT_EQ(core::resultDigest(plain[i]),
                  core::resultDigest(*screened.cells[i]))
            << "cell " << i << " diverged under screening";
        ++compared;
    }
    EXPECT_EQ(compared, screened.simulated);
    // And the pruned cells really were infeasible: the unscreened
    // sweep failed to deploy them.
    for (std::size_t i = 0; i < plain.size(); ++i) {
        if (!screened.cells[i].has_value()) {
            EXPECT_FALSE(plain[i].all_deployed);
        }
    }
}

TEST(Prescreen, NullScreenKeepsEverything)
{
    auto base = cell("orin-nano", "resnet18", 1, 1);
    const auto sweep = core::sweepGridScreened(base, {1, 2}, {1},
                                               core::CellScreenFn{});
    EXPECT_EQ(sweep.pruned, 0);
    EXPECT_EQ(sweep.simulated, 2);
    for (const auto &c : sweep.cells)
        EXPECT_TRUE(c.has_value());
}

TEST(Prescreen, VerdictNamesAreStable)
{
    EXPECT_STREQ(verdictName(Verdict::Unknown), "unknown");
    EXPECT_STREQ(verdictName(Verdict::ProvedInfeasible),
                 "proved-infeasible");
    EXPECT_STREQ(verdictName(Verdict::ProvedFeasible),
                 "proved-feasible");
}

} // namespace
} // namespace jetsim::absint
