/**
 * @file
 * Static bound structure tests: interval algebra, analyzability
 * guards (unknown device/model, spatial sharing), the shape of the
 * per-process intervals, memory exactness for the deployment program,
 * and monotonicity under the ablation switches.
 */

#include "absint/bounds.hh"

#include <gtest/gtest.h>

namespace jetsim::absint {
namespace {

TEST(Interval, Algebra)
{
    const Interval a{1.0, 3.0};
    const Interval b{2.0, 5.0};
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(a.contains(1.0));
    EXPECT_TRUE(a.contains(3.0));
    EXPECT_FALSE(a.contains(3.5));
    EXPECT_TRUE(a.contains(3.4, 0.5)); // slack

    const Interval s = a + b;
    EXPECT_DOUBLE_EQ(s.lo, 3.0);
    EXPECT_DOUBLE_EQ(s.hi, 8.0);

    const Interval k = a.scaled(2.0);
    EXPECT_DOUBLE_EQ(k.lo, 2.0);
    EXPECT_DOUBLE_EQ(k.hi, 6.0);

    const Interval h = a.hull(b);
    EXPECT_DOUBLE_EQ(h.lo, 1.0);
    EXPECT_DOUBLE_EQ(h.hi, 5.0);
    EXPECT_DOUBLE_EQ(a.width(), 2.0);
}

core::ExperimentSpec
baseSpec()
{
    core::ExperimentSpec s;
    s.device = "orin-nano";
    s.model = "resnet50";
    s.processes = 2;
    s.warmup = sim::msec(200);
    s.duration = sim::msec(1000);
    return s;
}

TEST(Bounds, RejectsUnknownDevice)
{
    auto s = baseSpec();
    s.device = "xavier-nx"; // not in the device table
    const auto b = analyze(s);
    EXPECT_FALSE(b.ok);
    EXPECT_NE(b.error.find("device"), std::string::npos);
}

TEST(Bounds, RejectsUnknownModel)
{
    auto s = baseSpec();
    s.model = "vit_h14";
    const auto b = analyze(s);
    EXPECT_FALSE(b.ok);
}

TEST(Bounds, RefusesSpatialSharing)
{
    // No sound serialization bound exists under hypothetical MPS;
    // the analyzer must refuse rather than guess.
    auto s = baseSpec();
    s.spatial_sharing = true;
    const auto b = analyze(s);
    EXPECT_FALSE(b.ok);
    EXPECT_NE(b.error.find("spatial"), std::string::npos);
}

TEST(Bounds, RejectsDegenerateCounts)
{
    auto s = baseSpec();
    s.processes = 0;
    EXPECT_FALSE(analyze(s).ok);
    s = baseSpec();
    s.batch = 0;
    EXPECT_FALSE(analyze(s).ok);
    s = baseSpec();
    s.pre_enqueue = -1;
    EXPECT_FALSE(analyze(s).ok);
}

TEST(Bounds, IntervalShapeIsWellFormed)
{
    const auto b = analyze(baseSpec());
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_EQ(b.procs.size(), 2u);
    EXPECT_FALSE(b.kernels.empty());
    for (const auto &k : b.kernels) {
        EXPECT_GT(k.ms.lo, 0.0);
        EXPECT_LE(k.ms.lo, k.ms.hi);
    }
    for (const auto &p : b.procs) {
        EXPECT_GT(p.kernels_per_ec, 0);
        EXPECT_EQ(p.queue_depth_hi,
                  (1 + b.pre_enqueue) * p.kernels_per_ec);
        EXPECT_TRUE(p.gpu_ec_ms.valid());
        EXPECT_GT(p.gpu_ec_ms.lo, 0.0);
        EXPECT_TRUE(p.latency_ms.valid());
        EXPECT_TRUE(p.period_ms.valid());
        EXPECT_TRUE(p.throughput_fps.valid());
        EXPECT_GT(p.blocking_ms_hi, 0.0);
        // The pipeline span contains the run-alone GPU time.
        EXPECT_LE(p.latency_ms.lo, p.gpu_ec_ms.lo + 1e-9);
        EXPECT_GE(p.latency_ms.hi, p.gpu_ec_ms.hi);
        // Disjoint private buffers: no conflict allowance.
        EXPECT_EQ(p.conflict_stall_ms, 0.0);
    }
    EXPECT_EQ(b.contending_pairs, 0);
    EXPECT_GT(b.mean_throughput_hi_fps, 0.0);
}

TEST(Bounds, DeploymentMemoryIsExact)
{
    // Every process's runtime + engine allocation is live at once in
    // every schedule, so the liveness interval collapses to the
    // whole-sum point — the analysis is exact for this program shape.
    const auto b = analyze(baseSpec());
    ASSERT_TRUE(b.ok);
    EXPECT_DOUBLE_EQ(b.mem_mib.lo, b.mem_mib.hi);
    EXPECT_DOUBLE_EQ(b.mem_mib.hi, b.whole_sum_mib);
    EXPECT_FALSE(b.must_oom);
}

TEST(Bounds, ProvesOomWhenEngineSumsPastBudget)
{
    core::ExperimentSpec s;
    s.device = "nano"; // 4 GiB board
    s.model = "fcn_resnet50";
    s.processes = 4;
    const auto b = analyze(s);
    ASSERT_TRUE(b.ok);
    EXPECT_TRUE(b.must_oom);
    EXPECT_TRUE(b.may_oom);
    EXPECT_GT(b.mem_mib.lo, b.available_mib);
}

TEST(Bounds, DvfsWidensOnlyTheUpperBound)
{
    auto s = baseSpec();
    s.dvfs = false;
    const auto pinned = analyze(s);
    s.dvfs = true;
    const auto governed = analyze(s);
    ASSERT_TRUE(pinned.ok && governed.ok);
    // The governor can only lower the clock: run-alone lower bounds
    // coincide (max frequency), upper bounds grow.
    EXPECT_DOUBLE_EQ(pinned.procs[0].gpu_ec_ms.lo,
                     governed.procs[0].gpu_ec_ms.lo);
    EXPECT_LE(pinned.procs[0].gpu_ec_ms.hi,
              governed.procs[0].gpu_ec_ms.hi);
}

TEST(Bounds, DeepPhaseOnlyInflatesUpperBounds)
{
    auto s = baseSpec();
    const auto light = analyze(s);
    s.phase = core::Phase::Deep;
    const auto deep = analyze(s);
    ASSERT_TRUE(light.ok && deep.ok);
    EXPECT_DOUBLE_EQ(light.procs[0].gpu_ec_ms.lo,
                     deep.procs[0].gpu_ec_ms.lo);
    EXPECT_GT(deep.procs[0].gpu_ec_ms.hi,
              light.procs[0].gpu_ec_ms.hi);
    EXPECT_GE(deep.procs[0].latency_ms.hi,
              light.procs[0].latency_ms.hi);
}

TEST(Bounds, MixedSpecNamesMatchTheProfiler)
{
    core::MixedExperimentSpec s;
    s.device = "orin-nano";
    s.workloads.push_back({"resnet50", soc::Precision::Int8, 1, 2});
    s.workloads.push_back({"yolov8n", soc::Precision::Fp16, 4, 1});
    const auto b = analyze(s);
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_EQ(b.procs.size(), 3u);
    EXPECT_EQ(b.procs[0].name, "resnet50/int8.0");
    EXPECT_EQ(b.procs[1].name, "resnet50/int8.1");
    EXPECT_EQ(b.procs[2].name, "yolov8n/fp16.0");
    EXPECT_EQ(b.procs[2].workload, 1);
}

TEST(Bounds, MoreContendersNeverTightenTheEnvelope)
{
    auto s = baseSpec();
    s.processes = 1;
    const auto solo = analyze(s);
    s.processes = 4;
    const auto packed = analyze(s);
    ASSERT_TRUE(solo.ok && packed.ok);
    EXPECT_LE(solo.procs[0].latency_ms.hi,
              packed.procs[0].latency_ms.hi);
    EXPECT_LE(solo.procs[0].blocking_ms_hi,
              packed.procs[0].blocking_ms_hi);
}

TEST(Bounds, AdversarialBlockingDominatesTheFifoBound)
{
    const auto b = analyze(baseSpec());
    ASSERT_TRUE(b.ok);
    const double adv = adversarialBlockingHiMs(b, 0, 2);
    EXPECT_GT(adv, b.procs[0].blocking_ms_hi);
    // More in-flight ECs give the adversary more work to steal.
    EXPECT_GE(adversarialBlockingHiMs(b, 0, 4), adv);
}

} // namespace
} // namespace jetsim::absint
