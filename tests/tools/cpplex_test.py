#!/usr/bin/env python3
"""Self-test for tools/cpplex.py — the lexer / scope-walker /
emitter scaffolding shared by jethot, jetrace, and detlint.

Pins the pieces the three tools rely on: comment/string stripping
(incl. multi-line block comments), scope classification (namespace /
class / function / lambda / control block, and that JETSIM_HOT /
JETSIM_COLD_OK annotations on a definition do not confuse it), the
char-level Walker contract (on_open after push, on_close after pop,
statement events with paren-aware `;` handling so for-headers and
C++17 if-initializers stay whole), Tarjan cycle detection, the
per-tool allow() suppression matcher, and the shared SARIF 2.1.0
emitter.

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import importlib.util
import os
import unittest

CPPLEX = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, os.pardir, "tools", "cpplex.py")

spec = importlib.util.spec_from_file_location("cpplex", CPPLEX)
cpplex = importlib.util.module_from_spec(spec)
spec.loader.exec_module(cpplex)


class StripNoiseTest(unittest.TestCase):
    def test_line_comment(self):
        code, blk = cpplex.strip_noise("int x; // trailing", False)
        self.assertEqual(code.strip(), "int x;")
        self.assertFalse(blk)

    def test_string_with_brace(self):
        code, _ = cpplex.strip_noise('call("{;}");', False)
        self.assertNotIn("{", code.replace('""', ""))

    def test_block_comment_spans_lines(self):
        code, blk = cpplex.strip_noise("int a; /* open", False)
        self.assertTrue(blk)
        self.assertEqual(code.strip(), "int a;")
        code, blk = cpplex.strip_noise("still out */ int b;", True)
        self.assertFalse(blk)
        self.assertEqual(code.strip(), "int b;")

    def test_strip_file(self):
        lines = cpplex.strip_file(
            ['int a; /* x', 'y */ int b; // z'])
        self.assertEqual([ln.strip() for ln in lines],
                         ["int a;", "int b;"])


class ClassifyOpenTest(unittest.TestCase):
    def kind(self, text):
        return cpplex.classify_open(text, 1).kind

    def test_namespace(self):
        sc = cpplex.classify_open("namespace jetsim::sim", 1)
        self.assertEqual((sc.kind, sc.name),
                         ("namespace", "jetsim::sim"))

    def test_class(self):
        sc = cpplex.classify_open("class EventQueue", 1)
        self.assertEqual((sc.kind, sc.name), ("class", "EventQueue"))

    def test_function_qualified(self):
        sc = cpplex.classify_open("void EventQueue::dispatch(int k)",
                                  1)
        self.assertEqual((sc.kind, sc.name),
                         ("function", "EventQueue::dispatch"))

    def test_control_is_block(self):
        self.assertEqual(self.kind("if (ready(x))"), "block")
        self.assertEqual(self.kind("for (int i = 0; i < n; ++i)"),
                         "block")
        self.assertEqual(self.kind("while (x.load())"), "block")

    def test_lambda(self):
        self.assertEqual(
            cpplex.classify_open("eq_.schedule(t, [this]", 1).name,
            "<lambda>")

    def test_annotation_macros_stripped(self):
        sc = cpplex.classify_open(
            'JETSIM_COLD_OK("slab growth") void EventPool::grow()', 1)
        self.assertEqual((sc.kind, sc.name),
                         ("function", "EventPool::grow"))
        sc = cpplex.classify_open("JETSIM_HOT void dispatch()", 1)
        self.assertEqual((sc.kind, sc.name),
                         ("function", "dispatch"))


class WalkerTest(unittest.TestCase):
    def walk(self, src):
        events = []
        w = cpplex.Walker(
            on_open=lambda sc, sig, ln: events.append(
                ("open", sc.kind, sc.name, ln)),
            on_close=lambda sc: events.append(("close", sc.kind)),
            on_statement=lambda st, ln: events.append(
                ("stmt", " ".join(st.split()), ln)))
        w.run(cpplex.strip_file(src.splitlines()))
        return events

    def test_scopes_and_statements(self):
        ev = self.walk("void f()\n{\n    int x = 1;\n}\n")
        self.assertEqual(ev[0][:3], ("open", "function", "f"))
        self.assertEqual(ev[1][:2], ("stmt", "int x = 1"))
        self.assertEqual(ev[2], ("close", "function"))

    def test_semicolons_inside_parens_do_not_split(self):
        # C++17 if-initializer: the `;` inside the condition parens
        # must not end the statement — a split here misreads the
        # tail `!ts.empty())` as a function definition.
        ev = self.walk(
            "void f()\n{\n"
            "    if (const auto &ts = env().threads; !ts.empty()) {\n"
            "        use(ts);\n"
            "    }\n"
            "}\n")
        kinds = [(e[0], e[1]) for e in ev if e[0] == "open"]
        self.assertEqual(kinds,
                         [("open", "function"), ("open", "block")])

    def test_for_header_stays_whole(self):
        ev = self.walk(
            "void f()\n{\n"
            "    for (int i = 0; i < n; ++i) {\n"
            "        g(i);\n"
            "    }\n"
            "}\n")
        opens = [e for e in ev if e[0] == "open" and e[1] == "block"]
        self.assertEqual(len(opens), 1)
        stmts = [e[1] for e in ev if e[0] == "stmt"]
        self.assertEqual(stmts, ["g(i)"])

    def test_lambda_in_arg_list_restores_depth(self):
        ev = self.walk(
            "void f()\n{\n"
            "    eq_.schedule(t, [this] {\n"
            "        tick();\n"
            "    });\n"
            "    done();\n"
            "}\n")
        names = [e[2] for e in ev if e[0] == "open"]
        self.assertIn("<lambda>", names)
        stmts = [e[1] for e in ev if e[0] == "stmt"]
        self.assertIn("done()", stmts)

    def test_pending_start_tracks_statement_spans(self):
        starts = []
        w = cpplex.Walker()
        w.on_statement = lambda st, ln: starts.append(
            (w.pending_start, ln))
        w.run(cpplex.strip_file(
            "void f()\n{\n    g(a,\n      b);\n}\n".splitlines()))
        self.assertEqual(starts, [(3, 4)])


class FindCyclesTest(unittest.TestCase):
    def test_cycle_found(self):
        cyc = cpplex.find_cycles(
            ["a", "b", "c"], {("a", "b"), ("b", "a"), ("b", "c")})
        self.assertTrue(any(set(c) == {"a", "b"} for c in cyc))

    def test_acyclic(self):
        self.assertEqual(
            cpplex.find_cycles(["a", "b"], {("a", "b")}), [])

    def test_self_edge(self):
        self.assertTrue(
            cpplex.find_cycles(["a"], {("a", "a")}))


class AllowMatcherTest(unittest.TestCase):
    def test_same_line_and_line_above(self):
        allowed = cpplex.allow_matcher("jethot")
        lines = ["// jethot: allow(hot-spin) bounded",
                 "while (!cas()) {}",
                 "x.lock();  // jethot: allow(hot-lock) startup"]
        self.assertTrue(allowed(lines, 1, "hot-spin"))
        self.assertTrue(allowed(lines, 2, "hot-lock"))
        self.assertFalse(allowed(lines, 1, "hot-lock"))
        self.assertFalse(allowed(lines, 2, "hot-spin"))

    def test_comma_list_and_tool_isolation(self):
        jethot = cpplex.allow_matcher("jethot")
        detlint = cpplex.allow_matcher("detlint")
        lines = ["// jethot: allow(hot-spin, hot-io) barrier"]
        self.assertTrue(jethot(lines, 0, "hot-io"))
        self.assertFalse(detlint(lines, 0, "hot-io"))


class SarifTest(unittest.TestCase):
    def test_shape_and_properties(self):
        doc = cpplex.to_sarif(
            "jethot", [("hot-alloc", "heap allocation")],
            [{"path": "/r/src/a.cc", "line": 7, "rule": "hot-alloc",
              "message": "operator new", "chain": ["root", "f"]}],
            root="/r")
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "jethot")
        self.assertEqual(run["tool"]["driver"]["rules"][0]["id"],
                         "hot-alloc")
        res = run["results"][0]
        self.assertEqual(res["ruleId"], "hot-alloc")
        loc = res["locations"][0]["physicalLocation"]
        self.assertEqual(loc["artifactLocation"]["uri"], "src/a.cc")
        self.assertEqual(loc["region"]["startLine"], 7)
        self.assertEqual(res["properties"]["chain"], ["root", "f"])


if __name__ == "__main__":
    unittest.main(verbosity=2)
