#!/usr/bin/env python3
"""Self-test for tools/jethot.py.

Feeds synthetic C++ files through the hot-path discipline analyzer
and checks each rule fires on a seeded violation and stays quiet on
the idiomatic pattern it must not confuse it with: placement new vs.
operator new, a single wait-free fetch_add vs. a CAS retry loop, a
JETSIM_CHECK error arm vs. a reachable throw. Also pins the
annotation semantics (JETSIM_HOT roots, function- and statement-level
JETSIM_COLD_OK, JETSIM_HOT_BOUNDARY, the `// jethot:` comment forms),
chain minimisation, class-qualified call resolution (an atomic
member `.store(...)` must not alias an unrelated `X::store`), the
--json and --sarif contracts, and that the repo's own src/ tree
audits clean with every heap-fallback site covered.

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import importlib.util
import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, os.pardir, "tools")
JETHOT = os.path.join(TOOLS, "jethot.py")


def load_jethot_module():
    spec = importlib.util.spec_from_file_location("jethot", JETHOT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


JETHOT_MOD = load_jethot_module()


class AuditMixin:
    """audit() one in-memory fixture with the lexical backend."""

    def audit_src(self, src, name="fixture.cc"):
        with tempfile.TemporaryDirectory() as td:
            path = os.path.join(td, name)
            with open(path, "w", encoding="utf-8") as f:
                f.write(src)
            return JETHOT_MOD.audit([path], td, backend="lex")

    def rules_of(self, findings):
        return sorted({f["rule"] for f in findings})


class RuleFiresTest(AuditMixin, unittest.TestCase):
    """Each rule fires on its seeded violation, with a chain."""

    def test_hot_alloc_new(self):
        findings, _, _ = self.audit_src(
            JETHOT_MOD.SELFTEST_HOT_ALLOC)
        self.assertIn("hot-alloc", self.rules_of(findings))

    def test_hot_alloc_container_growth(self):
        findings, _, _ = self.audit_src("""
            #include <vector>
            std::vector<int> v_;
            JETSIM_HOT void root() { v_.push_back(1); }
        """)
        self.assertIn("hot-alloc", self.rules_of(findings))

    def test_hot_lock(self):
        findings, _, _ = self.audit_src(JETHOT_MOD.SELFTEST_HOT_LOCK)
        self.assertIn("hot-lock", self.rules_of(findings))

    def test_hot_throw(self):
        findings, _, _ = self.audit_src(
            JETHOT_MOD.SELFTEST_HOT_THROW)
        self.assertIn("hot-throw", self.rules_of(findings))

    def test_hot_io(self):
        findings, _, _ = self.audit_src("""
            #include <cstdio>
            void logIt() { printf("x"); }
            JETSIM_HOT void root() { logIt(); }
        """)
        self.assertIn("hot-io", self.rules_of(findings))

    def test_hot_env(self):
        findings, _, _ = self.audit_src("""
            int threads() { return core::env().threads; }
            JETSIM_HOT void root() { threads(); }
        """)
        self.assertIn("hot-env", self.rules_of(findings))

    def test_hot_spin(self):
        findings, _, _ = self.audit_src(JETHOT_MOD.SELFTEST_SPIN)
        self.assertIn("hot-spin", self.rules_of(findings))

    def test_unguarded_sbo_site(self):
        findings, summ, _ = self.audit_src(JETHOT_MOD.SELFTEST_SBO)
        sbo = [f for f in findings
               if f["rule"] == "unguarded-sbo-fallback"]
        self.assertEqual(len(sbo), 1)
        self.assertEqual(len(summ["sbo_sites"]), 2)
        self.assertEqual(
            sum(s["covered"] for s in summ["sbo_sites"]), 1)

    def test_chain_is_minimised(self):
        findings, _, _ = self.audit_src(
            JETHOT_MOD.SELFTEST_HOT_ALLOC)
        hits = [f for f in findings if f["rule"] == "hot-alloc"]
        self.assertTrue(hits)
        self.assertEqual(len(hits[0]["chain"]), 2,
                         f"decoy path not minimised: {hits[0]}")


class QuietOnIdiomaticTest(AuditMixin, unittest.TestCase):
    """The discipline's own idioms must not trip the rules."""

    def test_placement_new_quiet(self):
        findings, _, _ = self.audit_src("""
            struct Fn { unsigned char buf_[48]; };
            JETSIM_HOT void root(Fn &f, int v)
            { ::new (static_cast<void *>(f.buf_)) int(v); }
        """)
        self.assertEqual(findings, [])

    def test_single_fetch_add_quiet(self):
        findings, _, _ = self.audit_src("""
            #include <atomic>
            std::atomic<unsigned long> n_{0};
            JETSIM_HOT void root()
            { n_.fetch_add(1, std::memory_order_relaxed); }
        """)
        self.assertEqual(findings, [])

    def test_check_macro_arm_quiet(self):
        findings, _, _ = self.audit_src("""
            JETSIM_HOT void root(int live, int cap)
            {
                JETSIM_CHECK(live <= cap, Severity::Error,
                             "live (%d) exceeds capacity (%d)",
                             live, cap);
            }
        """)
        self.assertEqual(findings, [])

    def test_unreachable_alloc_quiet(self):
        findings, _, _ = self.audit_src("""
            void coldSetup() { int *p = new int[64]; delete[] p; }
            JETSIM_HOT void root(int x) { (void)x; }
        """)
        self.assertEqual(findings, [])

    def test_atomic_store_does_not_alias_repo_store(self):
        # Regression: `sense_.store(...)` must not create a call
        # edge to an unrelated ResultCache::store.
        findings, _, _ = self.audit_src("""
            #include <atomic>
            struct ResultCache {
                void store(int k) { int *p = new int(k); sink(p); }
            };
            std::atomic<bool> sense_{false};
            JETSIM_HOT void root()
            { sense_.store(true, std::memory_order_release); }
        """)
        self.assertEqual(findings, [])

    def test_own_class_member_preferred(self):
        # A::tick() calling helper() resolves to A::helper, not to
        # the identically named allocating B::helper.
        findings, _, _ = self.audit_src("""
            struct A {
                void helper() { ++n_; }
                JETSIM_HOT void tick() { helper(); }
                int n_ = 0;
            };
            struct B {
                void helper() { p_ = new int(1); }
                int *p_ = nullptr;
            };
        """)
        self.assertEqual(findings, [])


class SuppressionTest(AuditMixin, unittest.TestCase):
    """Every sanctioned-escape form stops the finding and is
    ledgered."""

    def test_function_cold_ok(self):
        findings, summ, _ = self.audit_src(
            JETHOT_MOD.SELFTEST_COLD_OK_QUIET)
        self.assertEqual(findings, [])
        self.assertTrue(any(e["scope"] == "function"
                            for e in summ["cold_ok"]))

    def test_statement_cold_ok(self):
        findings, summ, _ = self.audit_src("""
            #include <vector>
            std::vector<int> keys_;
            JETSIM_HOT void root(int k)
            {
                JETSIM_COLD_OK("amortized: reserved up front")
                keys_.push_back(k);
            }
        """)
        self.assertEqual(findings, [])
        self.assertTrue(any(e["scope"] == "statement"
                            for e in summ["cold_ok"]))

    def test_boundary_macro(self):
        findings, _, _ = self.audit_src(
            JETHOT_MOD.SELFTEST_BOUNDARY_QUIET)
        self.assertEqual(findings, [])

    def test_boundary_comment(self):
        findings, _, _ = self.audit_src("""
            // jethot: boundary(choose) audited by the checker
            struct Chooser { virtual int choose(int n) = 0; };
            struct Impl : Chooser {
                int choose(int n) { int *p = new int(n); return *p; }
            };
            JETSIM_HOT void root(Chooser &c) { c.choose(2); }
        """)
        self.assertEqual(findings, [])

    def test_allow_comment(self):
        findings, _, _ = self.audit_src(
            JETHOT_MOD.SELFTEST_SPIN_ALLOWED)
        self.assertEqual(
            [f for f in findings if f["rule"] == "hot-spin"], [])


class CliContractTest(unittest.TestCase):
    """--json / --sarif schemas, --selftest, and the src/ gate."""

    def run_cli(self, args, path_src=None):
        with tempfile.TemporaryDirectory() as td:
            extra = []
            if path_src is not None:
                p = os.path.join(td, "t.cc")
                with open(p, "w", encoding="utf-8") as f:
                    f.write(path_src)
                extra = ["--root", td, p]
            return subprocess.run(
                [sys.executable, JETHOT, "--backend", "lex"]
                + args + extra,
                capture_output=True, text=True)

    def test_selftest_passes(self):
        proc = self.run_cli(["--selftest"])
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_json_contract(self):
        proc = self.run_cli(
            ["--json"], JETHOT_MOD.SELFTEST_HOT_ALLOC)
        self.assertEqual(proc.returncode, 1)
        doc = json.loads(proc.stdout)
        self.assertEqual(doc["schema_version"], 1)
        self.assertEqual(doc["tool"], "jethot")
        self.assertTrue(doc["findings"])
        for f in doc["findings"]:
            for k in ("path", "line", "rule", "message", "chain"):
                self.assertIn(k, f)
        for k in ("roots", "reachable", "cold_ok", "boundaries",
                  "sbo_sites"):
            self.assertIn(k, doc)

    def test_sarif_contract(self):
        proc = self.run_cli(
            ["--sarif"], JETHOT_MOD.SELFTEST_HOT_ALLOC)
        self.assertEqual(proc.returncode, 1)
        doc = json.loads(proc.stdout)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "jethot")
        self.assertTrue(run["results"])
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for res in run["results"]:
            self.assertIn(res["ruleId"], rule_ids)

    def test_dot_output(self):
        proc = self.run_cli(
            ["--dot"], JETHOT_MOD.SELFTEST_HOT_ALLOC)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("digraph hot_reach", proc.stdout)
        self.assertIn("leakyHelper", proc.stdout)

    def test_repo_src_is_clean(self):
        """The committed tree must audit clean: every real finding
        fixed or carrying an analyzer-verified JETSIM_COLD_OK, and
        every runtime heap-fallback site covered."""
        root = os.path.join(TOOLS, os.pardir)
        proc = subprocess.run(
            [sys.executable, JETHOT, "--backend", "lex", "--json",
             "--root", root, os.path.join(root, "src")],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout[-4000:])
        doc = json.loads(proc.stdout)
        self.assertEqual(doc["findings"], [])
        self.assertTrue(len(doc["sbo_sites"]) >= 3)
        self.assertTrue(all(s["covered"] for s in doc["sbo_sites"]))
        self.assertTrue(len(doc["roots"]) >= 10)


if __name__ == "__main__":
    unittest.main(verbosity=2)
