#!/usr/bin/env python3
"""Self-test for tools/detlint.py.

Feeds synthetic C++ files through the linter and checks each rule
fires (and stays quiet) where it should: wall-clock, rand, getenv,
sleep, unordered-iteration, allow() suppressions, comment/string
stripping, and the --json contract (schema_version 1, stable finding
fields, exit codes).

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

DETLINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, os.pardir, "tools", "detlint.py")


def run_lint(source, extra_args=None):
    """Lint one synthetic file; returns (exit_code, stdout)."""
    with tempfile.TemporaryDirectory() as td:
        path = os.path.join(td, "probe.cc")
        with open(path, "w", encoding="utf-8") as f:
            f.write(source)
        proc = subprocess.run(
            [sys.executable, DETLINT] + (extra_args or []) + [path],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout


class DetlintRules(unittest.TestCase):
    def assert_rule(self, source, rule):
        code, out = run_lint(source)
        self.assertEqual(code, 1, out)
        self.assertIn(f"[{rule}]", out)

    def assert_clean(self, source):
        code, out = run_lint(source)
        self.assertEqual(code, 0, out)

    def test_wall_clock_fires(self):
        self.assert_rule("auto t = std::chrono::steady_clock::now();",
                         "wall-clock")
        self.assert_rule("gettimeofday(&tv, nullptr);", "wall-clock")

    def test_sleep_fires(self):
        self.assert_rule(
            "std::this_thread::sleep_for(std::chrono::seconds(1));",
            "sleep")
        self.assert_rule("usleep(100);", "sleep")
        self.assert_rule("nanosleep(&ts, nullptr);", "sleep")

    def test_sleep_requires_the_call(self):
        # Identifiers merely containing the words stay legal.
        self.assert_clean("int sleep_for_budget = 3;\n"
                          "void do_not_usleep_here();\n")

    def test_rand_fires(self):
        self.assert_rule("int x = rand();", "rand")
        self.assert_rule("std::random_device rd;", "rand")

    def test_getenv_fires(self):
        self.assert_rule('const char *v = std::getenv("HOME");',
                         "getenv")

    def test_unordered_iteration_fires(self):
        src = ("std::unordered_map<int, int> m;\n"
               "void f() { for (const auto &kv : m) { use(kv); } }\n")
        self.assert_rule(src, "unordered-iteration")

    def test_lookups_into_unordered_are_fine(self):
        self.assert_clean("std::unordered_map<int, int> m;\n"
                          "int g() { return m.at(3); }\n")

    def test_allow_suppresses(self):
        self.assert_clean(
            "// detlint: allow(sleep) host-side tool, real wait ok\n"
            "usleep(100);\n")

    def test_comments_and_strings_are_stripped(self):
        self.assert_clean('// usleep(100) in a comment\n'
                          '/* std::this_thread::sleep_for(x) */\n'
                          'const char *s = "rand() inside a string";\n')

    def test_json_contract(self):
        code, out = run_lint("usleep(5);\nint ok;\n",
                             extra_args=["--json"])
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertEqual(doc["schema_version"], 1)
        self.assertEqual(doc["tool"], "detlint")
        self.assertEqual(doc["files"], 1)
        self.assertEqual(len(doc["findings"]), 1)
        f = doc["findings"][0]
        self.assertEqual(f["line"], 1)
        self.assertEqual(f["rule"], "sleep")
        self.assertTrue(f["path"].endswith("probe.cc"))
        self.assertIn("delay", f["message"])

    def test_json_clean_is_empty_and_zero(self):
        code, out = run_lint("int x = 1;\n", extra_args=["--json"])
        self.assertEqual(code, 0)
        doc = json.loads(out)
        self.assertEqual(doc["findings"], [])

    def test_repo_src_is_clean(self):
        # The tree itself must satisfy its own invariant.
        proc = subprocess.run([sys.executable, DETLINT],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout)


if __name__ == "__main__":
    unittest.main()
