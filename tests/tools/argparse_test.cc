/**
 * @file
 * ArgParser unit tests (the flag parser shared by the CLI tools).
 */

#include "argparse.hh"

#include <gtest/gtest.h>

#include <array>

namespace jetsim::tools {
namespace {

ArgParser
parser()
{
    ArgParser p("test", "test parser");
    p.add("model", "resnet50", "model name");
    p.add("batch", "1", "batch size");
    p.add("rate", "2.5", "a double");
    p.add("verbose", "false", "a boolean switch");
    p.add("list", "1,2,4", "an int list");
    return p;
}

template <std::size_t N>
bool
parse(ArgParser &p, std::array<const char *, N> argv)
{
    return p.parse(static_cast<int>(N),
                   const_cast<char **>(argv.data()));
}

TEST(ArgParse, DefaultsApplyWhenUnset)
{
    auto p = parser();
    ASSERT_TRUE(parse(p, std::array<const char *, 1>{"test"}));
    EXPECT_EQ(p.str("model"), "resnet50");
    EXPECT_EQ(p.intval("batch"), 1);
    EXPECT_DOUBLE_EQ(p.dbl("rate"), 2.5);
    EXPECT_FALSE(p.boolean("verbose"));
    EXPECT_FALSE(p.given("model"));
}

TEST(ArgParse, EqualsSyntax)
{
    auto p = parser();
    ASSERT_TRUE(parse(p, std::array<const char *, 3>{
                             "test", "--model=yolov8n",
                             "--batch=8"}));
    EXPECT_EQ(p.str("model"), "yolov8n");
    EXPECT_EQ(p.intval("batch"), 8);
    EXPECT_TRUE(p.given("model"));
}

TEST(ArgParse, SpaceSyntax)
{
    auto p = parser();
    ASSERT_TRUE(parse(p, std::array<const char *, 5>{
                             "test", "--model", "fcn_resnet50",
                             "--rate", "9.75"}));
    EXPECT_EQ(p.str("model"), "fcn_resnet50");
    EXPECT_DOUBLE_EQ(p.dbl("rate"), 9.75);
}

TEST(ArgParse, BareFlagIsBooleanTrue)
{
    auto p = parser();
    ASSERT_TRUE(parse(p, std::array<const char *, 2>{"test",
                                                     "--verbose"}));
    EXPECT_TRUE(p.boolean("verbose"));
}

TEST(ArgParse, BareFlagBeforeAnotherFlag)
{
    auto p = parser();
    ASSERT_TRUE(parse(p, std::array<const char *, 3>{
                             "test", "--verbose", "--batch=4"}));
    EXPECT_TRUE(p.boolean("verbose"));
    EXPECT_EQ(p.intval("batch"), 4);
}

TEST(ArgParse, IntListParses)
{
    auto p = parser();
    ASSERT_TRUE(parse(p, std::array<const char *, 2>{
                             "test", "--list=1,2,4,16"}));
    EXPECT_EQ(p.intlist("list"),
              (std::vector<int>{1, 2, 4, 16}));
}

TEST(ArgParse, IntListDefault)
{
    auto p = parser();
    ASSERT_TRUE(parse(p, std::array<const char *, 1>{"test"}));
    EXPECT_EQ(p.intlist("list"), (std::vector<int>{1, 2, 4}));
}

TEST(ArgParse, UnknownFlagFails)
{
    auto p = parser();
    EXPECT_FALSE(parse(p, std::array<const char *, 2>{
                              "test", "--nope=1"}));
}

TEST(ArgParse, PositionalArgumentFails)
{
    auto p = parser();
    EXPECT_FALSE(
        parse(p, std::array<const char *, 2>{"test", "oops"}));
}

TEST(ArgParse, BooleanSpellings)
{
    for (const char *v : {"true", "1", "yes", "on"}) {
        auto p = parser();
        const std::string flag = std::string("--verbose=") + v;
        ASSERT_TRUE(parse(p, std::array<const char *, 2>{
                                 "test", flag.c_str()}));
        EXPECT_TRUE(p.boolean("verbose")) << v;
    }
    auto p = parser();
    ASSERT_TRUE(parse(p, std::array<const char *, 2>{
                             "test", "--verbose=off"}));
    EXPECT_FALSE(p.boolean("verbose"));
}

} // namespace
} // namespace jetsim::tools
