#!/usr/bin/env python3
"""Self-test for tools/jetrace.py.

Feeds synthetic C++ files through the concurrency auditor and checks
each rule fires (and stays quiet) where it should: the shared-state
inventory trichotomy (guarded / atomic / confined), the raw-mutex
ban, unknown capabilities, lock-order cycle detection across both
single functions and the call graph, the shard-lock leaf discipline
(shard-lock-not-leaf), suppression and justification comments, and
the --json contract (schema_version 1, inventory and
lock-graph blocks, exit codes). Also runs the embedded --selftest
(the two-lock jetmc mirror) and asserts src/ itself audits clean.

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import importlib.util
import json
import os
import subprocess
import sys
import tempfile
import unittest

JETRACE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, os.pardir, "tools", "jetrace.py")


def load_jetrace_module():
    """Import tools/jetrace.py so tests can reuse its embedded
    selftest fixtures verbatim (keeps test and --selftest in
    lockstep)."""
    spec = importlib.util.spec_from_file_location("jetrace", JETRACE)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


JETRACE_MOD = load_jetrace_module()

# Every fixture is audited with the lexical backend so the results do
# not depend on whether libclang bindings happen to be installed.
BASE_ARGS = ["--backend", "lex"]


def run_audit(source, extra_args=None, filename="probe.cc"):
    """Audit one synthetic file; returns (exit_code, stdout)."""
    with tempfile.TemporaryDirectory() as td:
        path = os.path.join(td, filename)
        with open(path, "w", encoding="utf-8") as f:
            f.write(source)
        proc = subprocess.run(
            [sys.executable, JETRACE] + BASE_ARGS +
            (extra_args or []) + ["--root", td, path],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout


class JetraceInventory(unittest.TestCase):
    def assert_rule(self, source, rule):
        code, out = run_audit(source)
        self.assertEqual(code, 1, out)
        self.assertIn(f"[{rule}]", out)

    def assert_clean(self, source):
        code, out = run_audit(source)
        self.assertEqual(code, 0, out)

    def test_unannotated_global_fires(self):
        self.assert_rule("int g_shared = 0;\n", "unannotated-global")

    def test_unannotated_local_static_fires(self):
        self.assert_rule(
            "int f() { static int calls = 0; return ++calls; }\n",
            "unannotated-global")

    def test_guarded_global_passes(self):
        self.assert_clean(
            "Mutex mu;\n"
            "int g_shared JETSIM_GUARDED_BY(mu) = 0;\n")

    def test_atomic_global_passes(self):
        self.assert_clean("std::atomic<int> g_shared{0};\n")

    def test_thread_local_passes(self):
        self.assert_clean("thread_local int t_scratch = 0;\n")

    def test_const_globals_are_not_inventory(self):
        self.assert_clean("const int kLimit = 8;\n"
                          "constexpr double kScale = 1.5;\n")

    def test_confined_comment_passes(self):
        self.assert_clean(
            "// jetrace: confined(main) set once before spawn\n"
            "int g_config = 0;\n")

    def test_guarded_comment_passes(self):
        # Self-synchronized singletons: members individually guarded.
        self.assert_clean(
            "int f() { static int reg = 0; // jetrace: guarded(mu)\n"
            "  return reg; }\n")

    def test_allow_suppresses(self):
        self.assert_clean(
            "// jetrace: allow(unannotated-global) test fixture\n"
            "int g_loose = 0;\n")

    def test_comments_and_strings_are_stripped(self):
        self.assert_clean(
            '// int g_commented = 0;\n'
            '/* std::mutex in_a_comment; */\n'
            'const char *s = "std::mutex in_a_string";\n')


class JetraceLocks(unittest.TestCase):
    def test_raw_mutex_fires(self):
        code, out = run_audit("std::mutex mu;\n")
        self.assertEqual(code, 1, out)
        self.assertIn("[raw-mutex]", out)

    def test_raw_lock_guard_fires(self):
        code, out = run_audit(
            "void f() { std::lock_guard<std::mutex> l(mu); }\n")
        self.assertEqual(code, 1, out)
        self.assertIn("[raw-mutex]", out)

    def test_raw_mutex_allowed_in_core_mutex_hh(self):
        # The one sanctioned wrapping site.
        with tempfile.TemporaryDirectory() as td:
            d = os.path.join(td, "core")
            os.makedirs(d)
            path = os.path.join(d, "mutex.hh")
            with open(path, "w", encoding="utf-8") as f:
                f.write("class Mutex { std::mutex m_; };\n")
            proc = subprocess.run(
                [sys.executable, JETRACE] + BASE_ARGS +
                ["--root", td, path],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_unknown_capability_fires(self):
        self.assert_finding(
            "Mutex mu;\n"
            "int x JETSIM_GUARDED_BY(other) = 0;\n",
            "unknown-capability")

    def assert_finding(self, source, rule):
        code, out = run_audit(source)
        self.assertEqual(code, 1, out)
        self.assertIn(f"[{rule}]", out)

    def test_ordered_chain_is_acyclic(self):
        code, out = run_audit(
            "Mutex a;\nMutex b;\n"
            "void f() { LockGuard la(a); LockGuard lb(b); }\n"
            "void g() { LockGuard la(a); LockGuard lb(b); }\n")
        self.assertEqual(code, 0, out)
        self.assertIn("acyclic", out)

    def test_inverted_order_is_a_cycle(self):
        code, out = run_audit(
            "Mutex a;\nMutex b;\n"
            "void f() { LockGuard la(a); LockGuard lb(b); }\n"
            "void g() { LockGuard lb(b); LockGuard la(a); }\n")
        self.assertEqual(code, 1, out)
        self.assertIn("[lock-cycle]", out)
        self.assertIn("deadlock", out)

    def test_cycle_through_call_graph(self):
        # f holds a and calls h (which takes b); g inverts directly.
        code, out = run_audit(
            "Mutex a;\nMutex b;\n"
            "void h() { LockGuard lb(b); }\n"
            "void f() { LockGuard la(a); h(); }\n"
            "void g() { LockGuard lb(b); LockGuard la(a); }\n")
        self.assertEqual(code, 1, out)
        self.assertIn("[lock-cycle]", out)

    def test_sequential_scopes_do_not_edge(self):
        # Guards in sibling blocks are never held together.
        code, out = run_audit(
            "Mutex a;\nMutex b;\n"
            "void f() { { LockGuard la(a); } { LockGuard lb(b); } }\n"
            "void g() { { LockGuard lb(b); } { LockGuard la(a); } }\n")
        self.assertEqual(code, 0, out)

    def test_shard_lock_leaf_is_clean(self):
        # Taking the shard lock innermost (edges *into* it) is the
        # sanctioned shape; no finding even though edges exist.
        code, out = run_audit(
            "Mutex shard_mu_;\nMutex stats_mu;\n"
            "void f() { LockGuard s(stats_mu); "
            "LockGuard g(shard_mu_); }\n")
        self.assertEqual(code, 0, out)

    def test_shard_lock_not_leaf_fires(self):
        # Acquiring any capability under the shard lock breaks the
        # leaf discipline even though the graph is acyclic.
        code, out = run_audit(
            "Mutex shard_mu_;\nMutex stats_mu;\n"
            "void f() { LockGuard g(shard_mu_); "
            "LockGuard s(stats_mu); }\n")
        self.assertEqual(code, 1, out)
        self.assertIn("[shard-lock-not-leaf]", out)
        self.assertNotIn("[lock-cycle]", out)

    def test_shard_lock_not_leaf_through_call_graph(self):
        # The violation is indirect: the callee takes the inner lock.
        code, out = run_audit(
            "Mutex shard_mu_;\nMutex stats_mu;\n"
            "void bump() { LockGuard s(stats_mu); }\n"
            "void f() { LockGuard g(shard_mu_); bump(); }\n")
        self.assertEqual(code, 1, out)
        self.assertIn("[shard-lock-not-leaf]", out)

    def test_nested_shard_locks_fire(self):
        # Two shard inbox locks nested is still a non-leaf edge.
        code, out = run_audit(
            "Mutex shard_mu_;\nMutex other_shard_mu_;\n"
            "void f() { LockGuard a(shard_mu_); "
            "LockGuard b(other_shard_mu_); }\n")
        self.assertEqual(code, 1, out)
        self.assertIn("[shard-lock-not-leaf]", out)

    def test_shard_lock_not_leaf_allow_suppresses(self):
        code, out = run_audit(
            "Mutex shard_mu_;\nMutex stats_mu;\n"
            "void f() { LockGuard g(shard_mu_);\n"
            "  // jetrace: allow(shard-lock-not-leaf) test fixture\n"
            "  LockGuard s(stats_mu); }\n")
        self.assertEqual(code, 0, out)

    def test_requires_annotation_contributes_held_set(self):
        # f() runs with `a` held by contract; taking b inside it plus
        # g()'s inverted order closes the cycle.
        code, out = run_audit(
            "Mutex a;\nMutex b;\n"
            "void f() JETSIM_REQUIRES(a) { LockGuard lb(b); }\n"
            "void g() { LockGuard lb(b); LockGuard la(a); }\n")
        self.assertEqual(code, 1, out)
        self.assertIn("[lock-cycle]", out)


class JetraceMpscInbox(unittest.TestCase):
    """The sharded engine's lock-free MPSC inbox ring replaced the
    shard_mu_ mutex inbox (DESIGN.md §4i). These tests pin the audit
    contract for that replacement: the ring idiom introduces no
    lock-graph capability at all, the old mutexed idiom is flagged
    before it can come back, and the real tree no longer carries any
    shard capability (shard-lock-not-leaf is vacuously satisfied)."""

    def test_ring_fixture_is_clean_and_capability_free(self):
        code, out = run_audit(JETRACE_MOD.SELFTEST_MPSC_RING,
                              extra_args=["--json"],
                              filename="mpsc_ring.cc")
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        self.assertEqual(doc["findings"], [])
        self.assertEqual(doc["lock_graph"]["nodes"], [])
        self.assertEqual(doc["lock_graph"]["edges"], [])
        inv = doc["inventory"]
        self.assertEqual(inv["capabilities"], 0)
        self.assertGreaterEqual(inv["atomic"], 3)
        self.assertGreaterEqual(inv["confined"], 1)

    def test_raw_mutex_inbox_fixture_is_flagged(self):
        code, out = run_audit(JETRACE_MOD.SELFTEST_MPSC_RAW_MUTEX,
                              extra_args=["--json"],
                              filename="mpsc_raw_inbox.cc")
        self.assertEqual(code, 1, out)
        doc = json.loads(out)
        rules = [f["rule"] for f in doc["findings"]]
        # Declaration plus lock site: both raw-mutex, nothing else.
        self.assertEqual(rules, ["raw-mutex", "raw-mutex"])

    def test_repo_lock_graph_has_no_shard_capability(self):
        # With the mutex inbox gone, no capability matching the
        # shard pattern may remain anywhere in src/ — the leaf rule
        # holds vacuously rather than by discipline.
        proc = subprocess.run(
            [sys.executable, JETRACE] + BASE_ARGS + ["--json"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        doc = json.loads(proc.stdout)
        shard_caps = [n for n in doc["lock_graph"]["nodes"]
                      if JETRACE_MOD.SHARD_CAP_RE.search(n)]
        self.assertEqual(shard_caps, [])
        self.assertNotIn(
            "shard-lock-not-leaf",
            [f["rule"] for f in doc["findings"]])


class JetraceJson(unittest.TestCase):
    def test_json_contract(self):
        code, out = run_audit("int g_loose = 0;\n",
                              extra_args=["--json"])
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertEqual(doc["schema_version"], 1)
        self.assertEqual(doc["tool"], "jetrace")
        self.assertEqual(doc["files"], 1)
        self.assertEqual(len(doc["findings"]), 1)
        f = doc["findings"][0]
        self.assertEqual(f["rule"], "unannotated-global")
        self.assertEqual(f["line"], 1)
        self.assertTrue(f["path"].endswith("probe.cc"))
        self.assertIn("inventory", doc)
        self.assertIn("lock_graph", doc)
        self.assertTrue(doc["lock_graph"]["acyclic"])

    def test_json_inventory_counts(self):
        code, out = run_audit(
            "Mutex mu;\n"
            "int a JETSIM_GUARDED_BY(mu) = 0;\n"
            "std::atomic<int> b{0};\n"
            "// jetrace: confined(main)\n"
            "int c = 0;\n"
            "void f() { LockGuard l(mu); }\n",
            extra_args=["--json"])
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        inv = doc["inventory"]
        self.assertEqual(inv["guarded"], 1)
        # `b` plus the Mutex object itself classify as atomic.
        self.assertEqual(inv["atomic"], 2)
        self.assertEqual(inv["confined"], 1)
        self.assertEqual(inv["capabilities"], 1)
        self.assertEqual(inv["guarded_fields"], 1)
        self.assertEqual(doc["lock_graph"]["nodes"], ["mu"])

    def test_json_lock_graph_edges(self):
        code, out = run_audit(
            "Mutex a;\nMutex b;\n"
            "void f() { LockGuard la(a); LockGuard lb(b); }\n",
            extra_args=["--json"])
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        edges = [(e["from"], e["to"])
                 for e in doc["lock_graph"]["edges"]]
        self.assertEqual(edges, [("a", "b")])

    def test_json_cycle_flag(self):
        code, out = run_audit(
            "Mutex a;\nMutex b;\n"
            "void f() { LockGuard la(a); LockGuard lb(b); }\n"
            "void g() { LockGuard lb(b); LockGuard la(a); }\n",
            extra_args=["--json"])
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertFalse(doc["lock_graph"]["acyclic"])
        self.assertIn("lock-cycle",
                      [f["rule"] for f in doc["findings"]])


class JetraceHarness(unittest.TestCase):
    def test_selftest_passes(self):
        proc = subprocess.run(
            [sys.executable, JETRACE, "--selftest"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("cycle", proc.stdout)

    def test_selftest_rejects_mismatched_jetmc_ce(self):
        # A CE claiming the *ordered* model deadlocked contradicts
        # the static verdict and must fail the cross-check.
        with tempfile.TemporaryDirectory() as td:
            ce = os.path.join(td, "ce.json")
            with open(ce, "w", encoding="utf-8") as f:
                json.dump({"jetmc_ce": 1, "model": "toylock-ordered",
                           "what": "deadlock", "script": []}, f)
            proc = subprocess.run(
                [sys.executable, JETRACE, "--selftest",
                 "--jetmc-ce", ce],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, JETRACE, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        for rule in ("unannotated-global", "lock-cycle", "raw-mutex",
                     "unknown-capability", "shard-lock-not-leaf"):
            self.assertIn(rule, proc.stdout)

    def test_repo_src_is_clean(self):
        # The tree itself must satisfy its own discipline, and its
        # lock graph must be acyclic — the gate ci.sh pass 1f holds.
        proc = subprocess.run(
            [sys.executable, JETRACE] + BASE_ARGS + ["--json"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        doc = json.loads(proc.stdout)
        self.assertEqual(doc["findings"], [])
        self.assertTrue(doc["lock_graph"]["acyclic"])
        # The annotation campaign's floor: the four core capabilities
        # (runner queues, ordered progress, reporter, name registry)
        # and at least one confined global (the env snapshot).
        self.assertGreaterEqual(doc["inventory"]["capabilities"], 4)
        self.assertGreaterEqual(doc["inventory"]["confined"], 1)


if __name__ == "__main__":
    unittest.main()
