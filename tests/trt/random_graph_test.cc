/**
 * @file
 * Fuzz-style property tests: random CNN-shaped graphs pushed through
 * the fusion pass, the builder and the cost model must preserve
 * their invariants for every seed.
 */

#include <gtest/gtest.h>

#include "gpu/cost_model.hh"
#include "sim/rng.hh"
#include "trt/builder.hh"
#include "trt/fusion.hh"

namespace jetsim::trt {
namespace {

using graph::Network;
using graph::OpKind;

/** Generate a random but valid CNN-ish DAG. */
Network
randomNetwork(std::uint64_t seed)
{
    sim::Rng rng(seed);
    const int hw0 = 1 << rng.uniformInt(4, 7); // 16..128
    Network net("random", graph::Shape{3, hw0, hw0});

    std::vector<int> frontier = {net.inputId()};
    const int layers = static_cast<int>(rng.uniformInt(5, 40));
    for (int i = 0; i < layers; ++i) {
        const int src = frontier[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(frontier.size()) - 1))];
        const auto in = net.layer(src).out;
        const std::string name = "l" + std::to_string(i);
        int id = -1;
        switch (rng.uniformInt(0, 6)) {
          case 0:
          case 1: { // conv (possibly strided)
            const int out_c =
                static_cast<int>(rng.uniformInt(8, 64));
            const int stride = in.h >= 8 && rng.chance(0.3) ? 2 : 1;
            id = net.addConv(name, src, out_c, 3, stride, 1);
            break;
          }
          case 2: { // 1x1 conv
            id = net.addConv(name, src,
                             static_cast<int>(rng.uniformInt(8, 128)),
                             1, 1, 0);
            break;
          }
          case 3:
            id = net.addBatchNorm(name, src);
            break;
          case 4:
            id = net.addActivation(name, src,
                                   rng.chance(0.5) ? OpKind::Relu
                                                   : OpKind::Silu);
            break;
          case 5: { // residual add with a same-shape partner
            int partner = -1;
            for (int j = src - 1; j >= 0; --j)
                if (net.layer(j).out == in) {
                    partner = j;
                    break;
                }
            if (partner >= 0)
                id = net.addAdd(name, src, partner);
            else
                id = net.addActivation(name, src, OpKind::Relu);
            break;
          }
          default:
            if (in.h >= 4)
                id = net.addPool(name, src, OpKind::MaxPool, 2, 2);
            else
                id = net.addActivation(name, src, OpKind::Relu);
            break;
        }
        frontier.push_back(id);
        if (frontier.size() > 4)
            frontier.erase(frontier.begin());
    }
    net.validate();
    return net;
}

class RandomGraphs : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomGraphs, FusionCoversAndConserves)
{
    const auto net = randomNetwork(GetParam());
    const auto ops = fuseNetwork(net);

    std::size_t covered = 0;
    double macs = 0;
    std::int64_t params = 0;
    for (const auto &o : ops) {
        covered += o.layer_ids.size();
        macs += o.macs;
        params += o.weight_params;
        EXPECT_GT(o.out_elems, 0);
    }
    std::size_t expected = 0;
    for (const auto &l : net.layers())
        if (l.kind != OpKind::Input && l.kind != OpKind::Concat &&
            l.kind != OpKind::Slice)
            ++expected;
    EXPECT_EQ(covered, expected);
    EXPECT_NEAR(macs, net.totalMacs(),
                1e-6 * std::max(1.0, net.totalMacs()));
    EXPECT_EQ(params, net.totalParams());
}

TEST_P(RandomGraphs, BuilderProducesRunnableKernels)
{
    const auto net = randomNetwork(GetParam());
    for (const auto &dev : {soc::orinNano(), soc::jetsonNano()}) {
        Builder b(dev);
        gpu::KernelCostModel cost(dev);
        for (auto p : soc::kAllPrecisions) {
            BuilderConfig cfg;
            cfg.precision = p;
            cfg.batch =
                static_cast<int>(1 + GetParam() % 8); // vary batch
            const auto e = b.build(net, cfg);
            EXPECT_EQ(e.kernels().size(), fuseNetwork(net).size());
            EXPECT_GT(e.deviceBytes(), 0u);
            for (const auto &k : e.kernels()) {
                EXPECT_GE(k.flops, 0.0);
                EXPECT_GT(k.bytes, 0.0);
                EXPECT_GE(k.blocks, 1);
                // The cost model must accept every built kernel.
                const auto t = cost.timing(k, 1.0);
                EXPECT_GT(t.duration, 0);
                EXPECT_LE(t.sm_active, 1.0);
                EXPECT_LE(t.tc_util, 0.99);
                if (!dev.gpu.hasTensorCores()) {
                    EXPECT_FALSE(k.tc);
                }
            }
        }
    }
}

TEST_P(RandomGraphs, SerializationRoundTrips)
{
    const auto net = randomNetwork(GetParam());
    Builder b(soc::orinNano());
    BuilderConfig cfg;
    cfg.precision = soc::Precision::Fp16;
    const auto e = b.build(net, cfg);
    const auto d = Engine::deserialize(e.serialize());
    EXPECT_EQ(d.kernels().size(), e.kernels().size());
    EXPECT_DOUBLE_EQ(d.totalFlops(), e.totalFlops());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace jetsim::trt
