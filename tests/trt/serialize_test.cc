/**
 * @file
 * Engine plan serialisation round-trip tests.
 */

#include "trt/engine.hh"

#include <gtest/gtest.h>

#include "models/zoo.hh"
#include "trt/builder.hh"

namespace jetsim::trt {
namespace {

Engine
build(const std::string &model, soc::Precision p, int batch = 1)
{
    Builder b(soc::orinNano());
    BuilderConfig cfg;
    cfg.precision = p;
    cfg.batch = batch;
    return b.build(models::modelByName(model), cfg);
}

TEST(Serialize, RoundTripPreservesMetadata)
{
    const auto e = build("resnet50", soc::Precision::Int8, 4);
    const auto plan = e.serialize();
    const auto d = Engine::deserialize(plan);

    EXPECT_EQ(d.model(), e.model());
    EXPECT_EQ(d.requestedPrecision(), e.requestedPrecision());
    EXPECT_EQ(d.batch(), e.batch());
    EXPECT_EQ(d.fallbackOps(), e.fallbackOps());
    EXPECT_EQ(d.weightBytes(), e.weightBytes());
    EXPECT_EQ(d.activationBytes(), e.activationBytes());
    EXPECT_EQ(d.ioBytes(), e.ioBytes());
    EXPECT_EQ(d.workspaceBytes(), e.workspaceBytes());
    EXPECT_EQ(d.deviceBytes(), e.deviceBytes());
}

TEST(Serialize, RoundTripPreservesEveryKernel)
{
    for (const auto &model : models::paperModelNames()) {
        const auto e = build(model, soc::Precision::Fp16);
        const auto d = Engine::deserialize(e.serialize());
        ASSERT_EQ(d.kernels().size(), e.kernels().size()) << model;
        for (std::size_t i = 0; i < e.kernels().size(); ++i) {
            const auto &a = e.kernels()[i];
            const auto &b = d.kernels()[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_DOUBLE_EQ(a.flops, b.flops);
            EXPECT_DOUBLE_EQ(a.bytes, b.bytes);
            EXPECT_EQ(a.prec, b.prec);
            EXPECT_EQ(a.tc, b.tc);
            EXPECT_EQ(a.blocks, b.blocks);
            EXPECT_DOUBLE_EQ(a.efficiency_scale, b.efficiency_scale);
            EXPECT_DOUBLE_EQ(a.issue_intensity, b.issue_intensity);
            EXPECT_DOUBLE_EQ(a.tc_stall_factor, b.tc_stall_factor);
        }
    }
}

TEST(Serialize, TotalsRecomputedOnLoad)
{
    const auto e = build("yolov8n", soc::Precision::Int8, 2);
    const auto d = Engine::deserialize(e.serialize());
    EXPECT_DOUBLE_EQ(d.totalFlops(), e.totalFlops());
    EXPECT_DOUBLE_EQ(d.totalBytes(), e.totalBytes());
}

TEST(Serialize, SerializeIsDeterministic)
{
    const auto a = build("resnet50", soc::Precision::Tf32).serialize();
    const auto b = build("resnet50", soc::Precision::Tf32).serialize();
    EXPECT_EQ(a, b);
}

TEST(Serialize, DoubleRoundTripIsStable)
{
    const auto e = build("mobilenet_v2", soc::Precision::Int8);
    const auto once = e.serialize();
    const auto twice = Engine::deserialize(once).serialize();
    EXPECT_EQ(once, twice);
}

using SerializeDeath = ::testing::Test;

TEST(SerializeDeath, RejectsBadMagic)
{
    EXPECT_DEATH(Engine::deserialize("not-a-plan v1\n"),
                 "bad header");
}

TEST(SerializeDeath, RejectsTruncatedPlan)
{
    auto plan = build("resnet50", soc::Precision::Fp16).serialize();
    plan.resize(plan.size() / 2);
    EXPECT_DEATH(Engine::deserialize(plan), "plan");
}

} // namespace
} // namespace jetsim::trt
