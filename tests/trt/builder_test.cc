/**
 * @file
 * Builder tests: precision assignment and fallback, memory
 * footprints, tactic parameters, determinism.
 */

#include "trt/builder.hh"

#include <gtest/gtest.h>

#include "models/zoo.hh"

namespace jetsim::trt {
namespace {

Engine
build(const soc::DeviceSpec &dev, const std::string &model,
      soc::Precision p, int batch = 1)
{
    Builder b(dev);
    BuilderConfig cfg;
    cfg.precision = p;
    cfg.batch = batch;
    return b.build(models::modelByName(model), cfg);
}

TEST(Builder, KernelCountMatchesFusedOps)
{
    const auto net = models::resnet50();
    const auto ops = fuseNetwork(net);
    const auto e = build(soc::orinNano(), "resnet50",
                         soc::Precision::Fp16);
    EXPECT_EQ(e.kernels().size(), ops.size());
}

TEST(Builder, OrinRunsAllPrecisionsNatively)
{
    for (auto p : soc::kAllPrecisions) {
        const auto e = build(soc::orinNano(), "resnet50", p);
        EXPECT_EQ(e.fallbackOps(), 0) << soc::name(p);
        for (const auto &k : e.kernels())
            EXPECT_EQ(k.prec, p);
    }
}

TEST(Builder, NanoInt8MostlyFallsBack)
{
    const auto e = build(soc::jetsonNano(), "resnet50",
                         soc::Precision::Int8);
    // Coverage is a minority: most ops run the fp32 path.
    EXPECT_GT(e.fallbackOps(),
              static_cast<int>(e.kernels().size()) / 2);
    int fp32 = 0;
    for (const auto &k : e.kernels())
        fp32 += k.prec == soc::Precision::Fp32;
    EXPECT_EQ(fp32, e.fallbackOps());
}

TEST(Builder, NanoTf32FullyFallsBack)
{
    const auto e = build(soc::jetsonNano(), "resnet50",
                         soc::Precision::Tf32);
    EXPECT_EQ(e.fallbackOps(),
              static_cast<int>(e.kernels().size()));
}

TEST(Builder, NanoFp16IsNative)
{
    const auto e = build(soc::jetsonNano(), "resnet50",
                         soc::Precision::Fp16);
    EXPECT_EQ(e.fallbackOps(), 0);
}

TEST(Builder, YoloInt8DemotesSiluOpsToFp16)
{
    const auto e = build(soc::orinNano(), "yolov8n",
                         soc::Precision::Int8);
    int fp16 = 0, int8 = 0;
    for (const auto &k : e.kernels()) {
        fp16 += k.prec == soc::Precision::Fp16;
        int8 += k.prec == soc::Precision::Int8;
    }
    EXPECT_GT(fp16, 30); // SiLU-fused convolutions
    EXPECT_GT(e.fallbackOps(), 0);
    // ResNet (ReLU) keeps everything in int8 on Orin.
    const auto r = build(soc::orinNano(), "resnet50",
                         soc::Precision::Int8);
    EXPECT_EQ(r.fallbackOps(), 0);
    (void)int8;
}

TEST(Builder, WeightBytesScaleWithPrecision)
{
    const auto i8 = build(soc::orinNano(), "resnet50",
                          soc::Precision::Int8);
    const auto f16 = build(soc::orinNano(), "resnet50",
                           soc::Precision::Fp16);
    const auto f32 = build(soc::orinNano(), "resnet50",
                           soc::Precision::Fp32);
    EXPECT_LT(i8.weightBytes(), f16.weightBytes());
    EXPECT_LT(f16.weightBytes(), f32.weightBytes());
    // fp32 weights are ~4x int8 weights (same parameter count).
    EXPECT_NEAR(static_cast<double>(f32.weightBytes()) /
                    static_cast<double>(i8.weightBytes()),
                4.0, 0.6);
}

TEST(Builder, FootprintGrowsWithBatch)
{
    sim::Bytes prev = 0;
    for (int b : {1, 2, 4, 8, 16}) {
        const auto e = build(soc::orinNano(), "resnet50",
                             soc::Precision::Fp16, b);
        EXPECT_GT(e.deviceBytes(), prev);
        prev = e.deviceBytes();
    }
}

TEST(Builder, WeightsDominateSmallBatchFootprint)
{
    // The paper: "the model size is the dominant factor" at batch 1.
    const auto e = build(soc::orinNano(), "resnet50",
                         soc::Precision::Fp32);
    EXPECT_GT(e.weightBytes(), e.activationBytes());
    EXPECT_GT(e.weightBytes(), e.ioBytes());
}

TEST(Builder, IoBytesModelPreEnqueueDoubleBuffer)
{
    const auto b1 = build(soc::orinNano(), "resnet50",
                          soc::Precision::Fp16, 1);
    const auto b4 = build(soc::orinNano(), "resnet50",
                          soc::Precision::Fp16, 4);
    EXPECT_NEAR(static_cast<double>(b4.ioBytes()),
                4.0 * static_cast<double>(b1.ioBytes()), 16.0);
}

TEST(Builder, FlopsScaleLinearlyWithBatch)
{
    const auto b1 = build(soc::orinNano(), "yolov8n",
                          soc::Precision::Fp16, 1);
    const auto b8 = build(soc::orinNano(), "yolov8n",
                          soc::Precision::Fp16, 8);
    EXPECT_NEAR(b8.totalFlops() / b1.totalFlops(), 8.0, 0.01);
}

TEST(Builder, TcOnlyForEligibleOpsOnTcDevices)
{
    const auto nano = build(soc::jetsonNano(), "resnet50",
                            soc::Precision::Fp16);
    for (const auto &k : nano.kernels())
        EXPECT_FALSE(k.tc);

    const auto orin = build(soc::orinNano(), "resnet50",
                            soc::Precision::Fp16);
    int tc = 0;
    for (const auto &k : orin.kernels())
        tc += k.tc;
    EXPECT_GT(tc, 40); // all the conv/linear kernels
}

TEST(Builder, Fp32NeverOnTensorCores)
{
    const auto e = build(soc::orinNano(), "resnet50",
                         soc::Precision::Fp32);
    for (const auto &k : e.kernels())
        EXPECT_FALSE(k.tc);
}

TEST(Builder, DilatedOpsCarryStallFactor)
{
    const auto e = build(soc::orinNano(), "fcn_resnet50",
                         soc::Precision::Fp16);
    int stalled = 0;
    for (const auto &k : e.kernels())
        stalled += k.tc_stall_factor > 1.0;
    EXPECT_GT(stalled, 5);
}

TEST(Builder, Deterministic)
{
    const auto a = build(soc::orinNano(), "yolov8n",
                         soc::Precision::Int8, 4);
    const auto b = build(soc::orinNano(), "yolov8n",
                         soc::Precision::Int8, 4);
    ASSERT_EQ(a.kernels().size(), b.kernels().size());
    for (std::size_t i = 0; i < a.kernels().size(); ++i) {
        EXPECT_EQ(a.kernels()[i].prec, b.kernels()[i].prec);
        EXPECT_DOUBLE_EQ(a.kernels()[i].flops, b.kernels()[i].flops);
    }
    EXPECT_EQ(a.deviceBytes(), b.deviceBytes());
}

TEST(Builder, EngineMetadataIsRecorded)
{
    const auto e = build(soc::orinNano(), "resnet50",
                         soc::Precision::Tf32, 4);
    EXPECT_EQ(e.model(), "resnet50");
    EXPECT_EQ(e.requestedPrecision(), soc::Precision::Tf32);
    EXPECT_EQ(e.batch(), 4);
    EXPECT_GT(e.workspaceBytes(), 0u);
}

} // namespace
} // namespace jetsim::trt
