/**
 * @file
 * ExecutionContext tests: one enqueue drives every engine kernel
 * through the stream and reports a coherent EC record.
 */

#include "trt/execution_context.hh"

#include <gtest/gtest.h>

#include "cpu/scheduler.hh"
#include "models/zoo.hh"
#include "sim/event_queue.hh"
#include "trt/builder.hh"

namespace jetsim::trt {
namespace {

struct Rig
{
    sim::EventQueue eq;
    soc::Board board{soc::orinNano(), eq};
    cpu::OsScheduler sched{board};
    gpu::GpuEngine gpu{board};
    cuda::Stream stream{gpu, "s0"};
    cpu::Thread *thread = sched.createThread("t0");

    Engine engine = [this] {
        Builder b(board.spec());
        BuilderConfig cfg;
        cfg.precision = soc::Precision::Int8;
        return b.build(models::resnet50(), cfg);
    }();
    ExecutionContext ctx{engine, stream, *thread, board};
};

TEST(ExecutionContext, EnqueueRunsEveryKernel)
{
    Rig r;
    bool done = false;
    EcRecord rec;
    r.thread->exec(sim::usec(1), [&] {
        r.ctx.enqueue([&](const EcRecord &x) {
            rec = x;
            done = true;
        });
    });
    r.eq.runAll();
    ASSERT_TRUE(done);
    EXPECT_EQ(static_cast<std::size_t>(rec.kernels),
              r.engine.kernels().size());
    EXPECT_EQ(r.stream.completed(), r.engine.kernels().size());
}

TEST(ExecutionContext, RecordTimesAreOrdered)
{
    Rig r;
    EcRecord rec;
    bool done = false;
    r.thread->exec(sim::usec(1), [&] {
        r.ctx.enqueue([&](const EcRecord &x) {
            rec = x;
            done = true;
        });
    });
    r.eq.runAll();
    ASSERT_TRUE(done);
    EXPECT_LE(rec.enqueue_begin, rec.enqueue_end);
    EXPECT_LT(rec.enqueue_end, rec.gpu_done);
    EXPECT_GT(rec.launch_api_total, 0);
    EXPECT_GT(rec.span(), 0);
}

TEST(ExecutionContext, CpuDoneFiresBeforeGpuDone)
{
    Rig r;
    sim::Tick cpu_done = -1, gpu_done = -1;
    r.thread->exec(sim::usec(1), [&] {
        r.ctx.enqueue(
            [&](const EcRecord &) { gpu_done = r.eq.now(); },
            [&] { cpu_done = r.eq.now(); });
    });
    r.eq.runAll();
    ASSERT_GE(cpu_done, 0);
    ASSERT_GE(gpu_done, 0);
    EXPECT_LT(cpu_done, gpu_done);
}

TEST(ExecutionContext, SequentialEnqueuesPipeline)
{
    Rig r;
    int done = 0;
    // Enqueue the second EC as soon as the first's CPU side returns:
    // both are then in flight on the stream.
    r.thread->exec(sim::usec(1), [&] {
        r.ctx.enqueue([&](const EcRecord &) { ++done; }, [&] {
            r.ctx.enqueue([&](const EcRecord &) { ++done; });
        });
    });
    r.eq.runAll();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(r.ctx.invocations(), 2u);
    EXPECT_EQ(r.stream.completed(), 2 * r.engine.kernels().size());
}

TEST(ExecutionContext, LaunchApiInflatesWithProfiler)
{
    sim::Tick base, inflated;
    {
        Rig r;
        EcRecord rec;
        r.thread->exec(sim::usec(1), [&] {
            r.ctx.enqueue([&](const EcRecord &x) { rec = x; });
        });
        r.eq.runAll();
        base = rec.launch_api_total;
    }
    {
        Rig r;
        r.board.setLaunchOverheadFactor(1.7);
        EcRecord rec;
        r.thread->exec(sim::usec(1), [&] {
            r.ctx.enqueue([&](const EcRecord &x) { rec = x; });
        });
        r.eq.runAll();
        inflated = rec.launch_api_total;
    }
    EXPECT_GT(static_cast<double>(inflated),
              1.3 * static_cast<double>(base));
}

} // namespace
} // namespace jetsim::trt
