/**
 * @file
 * Fusion-pass tests: pattern coverage, exactness, and the per-op
 * metadata the builder consumes.
 */

#include "trt/fusion.hh"

#include <gtest/gtest.h>

#include "models/zoo.hh"

namespace jetsim::trt {
namespace {

using graph::Network;
using graph::OpKind;
using graph::Shape;

TEST(Fusion, ConvBnReluCollapses)
{
    Network net("n", Shape{3, 8, 8});
    int x = net.addConv("conv", 0, 8, 3, 1, 1);
    x = net.addBatchNorm("bn", x);
    net.addActivation("relu", x, OpKind::Relu);
    const auto ops = fuseNetwork(net);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].layer_ids.size(), 3u);
    EXPECT_EQ(ops[0].anchor, OpKind::Conv);
}

TEST(Fusion, ResidualAddFoldsIntoConvEpilogue)
{
    Network net("n", Shape{8, 8, 8});
    int x = net.addConv("c1", 0, 8, 3, 1, 1);
    x = net.addBatchNorm("bn1", x);
    net.addAdd("add", x, 0);
    const auto ops = fuseNetwork(net);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].layer_ids.size(), 3u);
}

TEST(Fusion, FanoutBlocksFusion)
{
    Network net("n", Shape{3, 8, 8});
    const int c = net.addConv("conv", 0, 8, 3, 1, 1);
    net.addActivation("r1", c, OpKind::Relu);
    net.addActivation("r2", c, OpKind::Relu);
    const auto ops = fuseNetwork(net);
    // Conv stays alone; the two activations are separate kernels.
    EXPECT_EQ(ops.size(), 3u);
}

TEST(Fusion, NetworkOutputNeverAbsorbed)
{
    Network net("n", Shape{3, 8, 8});
    const int c = net.addConv("conv", 0, 8, 3, 1, 1);
    net.addActivation("relu", c, OpKind::Relu);
    net.setOutput(c); // conv itself is the output
    const auto ops = fuseNetwork(net);
    EXPECT_EQ(ops.size(), 2u);
}

TEST(Fusion, ConcatAndSliceProduceNoKernels)
{
    Network net("n", Shape{8, 4, 4});
    const int a = net.addConv("a", 0, 8, 1);
    const int b = net.addConv("b", 0, 8, 1);
    const int c = net.addConcat("cat", {a, b});
    net.addSlice("s", c, 0, 8);
    const auto ops = fuseNetwork(net);
    EXPECT_EQ(ops.size(), 2u); // just the two convs
}

TEST(Fusion, EveryKernelLayerCoveredExactlyOnce)
{
    for (const auto &name : models::paperModelNames()) {
        const auto net = models::modelByName(name);
        const auto ops = fuseNetwork(net);
        std::size_t covered = 0;
        for (const auto &o : ops)
            covered += o.layer_ids.size();
        std::size_t expected = 0;
        for (const auto &l : net.layers())
            if (l.kind != OpKind::Input &&
                l.kind != OpKind::Concat && l.kind != OpKind::Slice)
                ++expected;
        EXPECT_EQ(covered, expected) << name;
    }
}

TEST(Fusion, MacsAreConserved)
{
    for (const auto &name : models::paperModelNames()) {
        const auto net = models::modelByName(name);
        const auto ops = fuseNetwork(net);
        double fused = 0;
        for (const auto &o : ops)
            fused += o.macs;
        EXPECT_NEAR(fused, net.totalMacs(), net.totalMacs() * 1e-9)
            << name;
    }
}

TEST(Fusion, ParamsAreConserved)
{
    const auto net = models::resnet50();
    const auto ops = fuseNetwork(net);
    std::int64_t fused = 0;
    for (const auto &o : ops)
        fused += o.weight_params;
    EXPECT_EQ(fused, net.totalParams());
}

TEST(Fusion, ResNet50KernelCountIsCompact)
{
    // 53 convs + 1 fc + pools: TensorRT-style fusion lands in the
    // 50-60 kernel range, far below the 175 raw layers.
    const auto ops = fuseNetwork(models::resnet50());
    EXPECT_GE(ops.size(), 50u);
    EXPECT_LE(ops.size(), 62u);
}

TEST(Fusion, SiluFlagMarksYoloOps)
{
    const auto ops = fuseNetwork(models::yolov8n());
    int with_silu = 0;
    for (const auto &o : ops)
        with_silu += o.has_silu;
    EXPECT_GT(with_silu, 30);
}

TEST(Fusion, DilatedFlagMarksFcnOps)
{
    const auto ops = fuseNetwork(models::fcnResnet50());
    int dilated = 0;
    for (const auto &o : ops)
        dilated += o.dilated;
    EXPECT_GT(dilated, 5);

    for (const auto &o : fuseNetwork(models::resnet50()))
        EXPECT_FALSE(o.dilated);
}

TEST(Fusion, IntensityPerElemIsSane)
{
    const auto ops = fuseNetwork(models::resnet50());
    for (const auto &o : ops) {
        if (o.anchor == OpKind::Conv) {
            EXPECT_GT(o.intensityPerElem(), 1.0) << o.name;
        }
    }
}

TEST(Fusion, Deterministic)
{
    const auto a = fuseNetwork(models::yolov8n());
    const auto b = fuseNetwork(models::yolov8n());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].layer_ids, b[i].layer_ids);
    }
}

} // namespace
} // namespace jetsim::trt
