/**
 * @file
 * Inference-process tests: deployment, the trtexec loop discipline,
 * pre-enqueue, sync modes, and measurement windows.
 */

#include "workload/inference_process.hh"

#include <gtest/gtest.h>

#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "sim/event_queue.hh"

namespace jetsim::workload {
namespace {

struct Rig
{
    explicit Rig(soc::DeviceSpec spec = soc::orinNano())
        : board(std::move(spec), eq)
    {
        board.start();
    }

    sim::EventQueue eq;
    soc::Board board;
    cpu::OsScheduler sched{board};
    gpu::GpuEngine gpu{board};
    graph::Network net = models::resnet50();

    std::unique_ptr<InferenceProcess>
    makeProcess(ProcessConfig cfg = {})
    {
        if (cfg.name == "proc")
            cfg.name = "proc" + std::to_string(counter_++);
        cfg.build.precision = soc::Precision::Int8;
        return std::make_unique<InferenceProcess>(board, sched, gpu,
                                                  net, cfg);
    }

    double
    runOne(ProcessConfig cfg = {})
    {
        auto p = makeProcess(std::move(cfg));
        EXPECT_TRUE(p->deploy());
        p->start();
        eq.runUntil(sim::msec(300));
        p->beginMeasurement();
        eq.runUntil(eq.now() + sim::sec(1));
        p->endMeasurement();
        p->stopEnqueue();
        return p->throughput();
    }

    int counter_ = 0;
};

TEST(Process, DeploysAndPinsMemory)
{
    Rig r;
    auto p = r.makeProcess();
    EXPECT_FALSE(p->deployed());
    ASSERT_TRUE(p->deploy());
    EXPECT_TRUE(p->deployed());
    EXPECT_GT(p->deviceBytes(),
              r.board.spec().memory.process_runtime_overhead);
    EXPECT_EQ(r.board.memory().used(), p->deviceBytes());
}

TEST(Process, MemoryReleasedOnDestruction)
{
    Rig r;
    {
        auto p = r.makeProcess();
        ASSERT_TRUE(p->deploy());
        EXPECT_GT(r.board.memory().used(), 0u);
    }
    EXPECT_EQ(r.board.memory().used(), 0u);
}

TEST(Process, DeployFailsWhenMemoryExhausted)
{
    Rig r;
    // Hog nearly everything first.
    const auto avail = r.board.memory().available();
    r.board.memory().allocate("hog", avail - 10 * sim::kMiB);
    auto p = r.makeProcess();
    EXPECT_FALSE(p->deploy());
    EXPECT_FALSE(p->deployed());
    // The failed deploy leaks nothing.
    EXPECT_EQ(r.board.memory().ownerUsage(p->config().name), 0u);
}

TEST(Process, ProducesThroughput)
{
    Rig r;
    const double tput = r.runOne();
    EXPECT_GT(tput, 100.0);
    EXPECT_LT(tput, 2000.0);
}

TEST(Process, MeasurementWindowExcludesWarmup)
{
    Rig r;
    auto p = r.makeProcess();
    ASSERT_TRUE(p->deploy());
    p->start();
    r.eq.runUntil(sim::msec(300));
    EXPECT_EQ(p->imagesCompleted(), 0u); // not measuring yet
    p->beginMeasurement();
    r.eq.runUntil(r.eq.now() + sim::sec(1));
    p->endMeasurement();
    EXPECT_GT(p->imagesCompleted(), 0u);
    EXPECT_EQ(p->imagesCompleted(), p->ecsCompleted()); // batch 1
}

TEST(Process, BatchMultipliesImagesPerEc)
{
    Rig r;
    ProcessConfig cfg;
    cfg.build.batch = 8;
    auto p = r.makeProcess(std::move(cfg));
    ASSERT_TRUE(p->deploy());
    p->start();
    r.eq.runUntil(sim::msec(300));
    p->beginMeasurement();
    r.eq.runUntil(r.eq.now() + sim::sec(1));
    p->endMeasurement();
    EXPECT_EQ(p->imagesCompleted(), 8 * p->ecsCompleted());
}

TEST(Process, PreEnqueueLiftsThroughput)
{
    Rig a;
    ProcessConfig with;
    with.pre_enqueue = 1;
    const double pipelined = a.runOne(std::move(with));

    Rig b;
    ProcessConfig without;
    without.pre_enqueue = 0;
    const double serial = b.runOne(std::move(without));

    // The paper: pre-enqueue makes trtexec an *upper bound*.
    EXPECT_GT(pipelined, serial * 1.05);
}

TEST(Process, StopEnqueueDrainsQuietly)
{
    Rig r;
    auto p = r.makeProcess();
    ASSERT_TRUE(p->deploy());
    p->start();
    r.eq.runUntil(sim::msec(200));
    p->stopEnqueue();
    // Everything in flight finishes; the queue then goes quiet
    // except for periodic services.
    const auto executed = r.eq.executed();
    r.eq.runUntil(r.eq.now() + sim::msec(100));
    r.eq.runUntil(r.eq.now() + sim::msec(100));
    EXPECT_GT(r.eq.executed(), executed); // governor still ticking
    EXPECT_FALSE(r.board.activity().gpu_busy);
}

TEST(Process, RecordsKernelLevelMetrics)
{
    Rig r;
    auto p = r.makeProcess();
    ASSERT_TRUE(p->deploy());
    p->start();
    r.eq.runUntil(sim::msec(300));
    p->beginMeasurement();
    r.eq.runUntil(r.eq.now() + sim::sec(1));
    p->endMeasurement();
    EXPECT_GT(p->ecPeriod().count(), 0u);
    EXPECT_GT(p->enqueueSpan().mean(), 0.0);
    EXPECT_GT(p->launchApiPerEc().mean(), 0.0);
    EXPECT_GT(p->syncSpan().mean(), 0.0);
    // EC period tracks the throughput reciprocal.
    const double period_s =
        p->ecPeriod().mean() / 1e9;
    EXPECT_NEAR(1.0 / period_s, p->throughput(),
                p->throughput() * 0.1);
}

TEST(Process, BlockingSyncModeAlsoWorks)
{
    Rig r;
    ProcessConfig cfg;
    cfg.spin_wait = false;
    auto p = r.makeProcess(std::move(cfg));
    ASSERT_TRUE(p->deploy());
    p->start();
    r.eq.runUntil(sim::msec(300));
    p->beginMeasurement();
    r.eq.runUntil(r.eq.now() + sim::sec(1));
    p->endMeasurement();
    EXPECT_GT(p->throughput(), 100.0);
}

TEST(Process, SpinWaitBurnsMoreCpu)
{
    auto cpu_time = [](bool spin) {
        Rig r;
        ProcessConfig cfg;
        cfg.spin_wait = spin;
        auto p = r.makeProcess(std::move(cfg));
        EXPECT_TRUE(p->deploy());
        p->start();
        r.eq.runUntil(sim::msec(300));
        p->beginMeasurement();
        r.eq.runUntil(r.eq.now() + sim::sec(1));
        p->endMeasurement();
        return p->thread().cpuTime();
    };
    EXPECT_GT(cpu_time(true), 2 * cpu_time(false));
}

} // namespace
} // namespace jetsim::workload
