/**
 * @file
 * Open-loop serving tests: queueing behaviour under light load,
 * saturation, and latency growth with offered load.
 */

#include "workload/serving_process.hh"

#include <gtest/gtest.h>

#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "sim/event_queue.hh"

namespace jetsim::workload {
namespace {

struct Rig
{
    Rig()
        : board(soc::orinNano(), eq)
    {
        board.start();
    }

    sim::EventQueue eq;
    soc::Board board;
    cpu::OsScheduler sched{board};
    gpu::GpuEngine gpu{board};
    graph::Network net = models::resnet50();

    std::unique_ptr<ServingProcess>
    server(double rate, int batch = 1)
    {
        ServingConfig cfg;
        cfg.name = "srv";
        cfg.build.precision = soc::Precision::Int8;
        cfg.build.batch = batch;
        cfg.arrival_rate = rate;
        auto p = std::make_unique<ServingProcess>(board, sched, gpu,
                                                  net, cfg);
        EXPECT_TRUE(p->deploy());
        return p;
    }

    void
    measure(ServingProcess &p, sim::Tick warm = sim::msec(400),
            sim::Tick dur = sim::sec(3))
    {
        p.start();
        eq.runUntil(eq.now() + warm);
        p.beginMeasurement();
        eq.runUntil(eq.now() + dur);
        p.endMeasurement();
        p.stopArrivals();
    }
};

TEST(Serving, LightLoadServesEverything)
{
    Rig r;
    auto p = r.server(50.0); // capacity is ~350 img/s
    r.measure(*p);
    EXPECT_NEAR(p->achievedThroughput(), 50.0, 10.0);
    // No standing queue under light load.
    EXPECT_LE(p->maxQueueDepth(), 4u);
}

TEST(Serving, LightLoadLatencyNearServiceTime)
{
    Rig r;
    auto p = r.server(50.0);
    r.measure(*p);
    // Service time is a few ms (one EC plus prep); queueing adds
    // little at 14 % utilisation.
    EXPECT_LT(p->requestLatency().median() / 1e6, 15.0);
    EXPECT_GT(p->requestLatency().median() / 1e6, 1.0);
}

TEST(Serving, OverloadSaturatesAtCapacity)
{
    Rig r;
    auto p = r.server(2000.0); // far beyond capacity
    r.measure(*p);
    // Achieved rate is the closed-loop capacity ballpark, far below
    // the offered 2000 img/s.
    EXPECT_LT(p->achievedThroughput(), 600.0);
    EXPECT_GT(p->achievedThroughput(), 150.0);
    // The backlog grows without bound.
    EXPECT_GT(p->maxQueueDepth(), 100u);
}

TEST(Serving, LatencyGrowsWithOfferedLoad)
{
    double prev = 0.0;
    for (double rate : {50.0, 200.0, 330.0}) {
        Rig r;
        auto p = r.server(rate);
        r.measure(*p);
        const double p99 = p->requestLatency().quantile(0.99);
        EXPECT_GT(p99, prev) << rate;
        prev = p99;
    }
}

TEST(Serving, BatchingTradesLatencyForThroughput)
{
    Rig r1;
    auto b1 = r1.server(300.0, 1);
    r1.measure(*b1);

    Rig r8;
    auto b8 = r8.server(300.0, 8);
    r8.measure(*b8);

    // The batch-8 engine holds the rate easily (more headroom)...
    EXPECT_NEAR(b8->achievedThroughput(), 300.0, 40.0);
    // ...but each request waits for its batch and the longer EC.
    EXPECT_GT(b8->requestLatency().median(),
              b1->requestLatency().median());
}

TEST(Serving, ArrivalsAccountedExactly)
{
    Rig r;
    auto p = r.server(100.0);
    r.measure(*p);
    // Served cannot exceed arrivals within the window by more than
    // what was already queued at the window start.
    EXPECT_LE(p->served(), p->arrived() + 8);
    EXPECT_GT(p->arrived(), 200u); // ~100/s over 3 s
}

TEST(Serving, Deterministic)
{
    auto run = [] {
        Rig r;
        auto p = r.server(150.0);
        r.measure(*p);
        return p->achievedThroughput();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Serving, StopArrivalsDrains)
{
    Rig r;
    auto p = r.server(100.0);
    p->start();
    r.eq.runUntil(sim::msec(500));
    p->stopArrivals();
    r.eq.runUntil(r.eq.now() + sim::sec(1));
    EXPECT_FALSE(r.board.activity().gpu_busy);
}

TEST(Serving, DeployFailureIsRecoverable)
{
    Rig r;
    r.board.memory().allocate("hog",
                              r.board.memory().available() -
                                  10 * sim::kMiB);
    ServingConfig cfg;
    cfg.build.precision = soc::Precision::Int8;
    ServingProcess p(r.board, r.sched, r.gpu, r.net, cfg);
    EXPECT_FALSE(p.deploy());
}

TEST(Serving, InjectedArrivalsServeInExternalOnlyMode)
{
    // arrival_rate 0: no local generator; the fleet balancer's
    // injectArrival() path is the only traffic source.
    Rig r;
    auto p = r.server(0.0);
    p->start();
    r.eq.runUntil(sim::msec(1));
    p->beginMeasurement();
    // Inject 50 requests at a steady 10 ms spacing via queue events,
    // each with an origin one dispatch-hop in the past.
    for (int i = 1; i <= 50; ++i)
        r.eq.schedule(r.eq.now() + i * sim::msec(10), [&] {
            p->injectArrival(r.eq.now() - sim::usec(200));
        });
    r.eq.runUntil(r.eq.now() + sim::msec(520));
    p->endMeasurement();
    p->stopArrivals();
    EXPECT_EQ(p->arrived(), 50u);
    EXPECT_GE(p->served(), 45u);
    // The latency clock starts at the balancer-side origin, so every
    // sample includes the 200 us dispatch hop.
    EXPECT_GT(p->requestLatency().min(), sim::usec(200));
}

TEST(Serving, InjectedArrivalsDroppedAfterStop)
{
    Rig r;
    auto p = r.server(0.0);
    p->start();
    p->beginMeasurement();
    p->stopArrivals();
    p->injectArrival(r.eq.now());
    r.eq.runUntil(sim::msec(50));
    p->endMeasurement();
    EXPECT_EQ(p->arrived(), 0u);
    EXPECT_EQ(p->served(), 0u);
}

} // namespace
} // namespace jetsim::workload
