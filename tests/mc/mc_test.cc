/**
 * @file
 * Tests for jetmc, the schedule-space model checker: the toylock
 * self-test models (seeded deadlock found + minimised, safe variant
 * proved clean), deployment digest-independence, the DPOR reduction
 * and its collapse under injected dependence, counterexample
 * round-trip + replay, and the TraceChooser record/replay contract.
 */

#include "mc/explorer.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "mc/ce.hh"
#include "mc/deployment.hh"
#include "mc/toylock.hh"
#include "mc/trace.hh"
#include "sim/event_queue.hh"
#include "soc/precision.hh"

using namespace jetsim;

namespace {

mc::DeployConfig
twoProcConfig(bool shared_buffer)
{
    mc::DeployConfig dc;
    dc.device = "orin-nano";
    dc.max_ecs = 1;
    dc.shared_buffer = shared_buffer;
    for (int i = 0; i < 2; ++i) {
        mc::DeployConfig::Proc p;
        p.model = "resnet50";
        p.precision = soc::Precision::Fp16;
        dc.procs.push_back(p);
    }
    return dc;
}

mc::ExploreConfig
smallSearch()
{
    mc::ExploreConfig cfg;
    cfg.depth = 12;
    cfg.max_runs = 5000;
    return cfg;
}

} // namespace

TEST(ToyLockTest, OrderedVariantProvesDeadlockFree)
{
    mc::ToyLockModel m(false);
    const auto rep = mc::explore(m, smallSearch());
    EXPECT_TRUE(rep.proved());
    EXPECT_FALSE(rep.deadlock);
    EXPECT_GT(rep.runs, 1u) << "tie at t=0 must branch";
    EXPECT_TRUE(rep.ce_script.empty());
}

TEST(ToyLockTest, InvertedVariantDeadlocksOffTheDefaultSchedule)
{
    mc::ToyLockModel m(true);

    // The default schedule itself is safe — the deadlock hides in a
    // non-default tie-break, which is the point of the self-test.
    const auto def = m.run({});
    EXPECT_FALSE(def.deadlock);

    const auto rep = mc::explore(m, smallSearch());
    EXPECT_TRUE(rep.deadlock);
    EXPECT_EQ(rep.ce_what, "deadlock");
    ASSERT_FALSE(rep.ce_script.empty());
    // Minimisation strips trailing defaults, so the last scripted
    // choice is a real deviation.
    EXPECT_NE(rep.ce_script.back(), 0);

    // The counterexample replays: same script, same verdict.
    const auto again = m.run(rep.ce_script);
    EXPECT_TRUE(again.deadlock);
    EXPECT_EQ(mc::failureKind(again, rep.digest), "deadlock");
}

TEST(ToyLockTest, FullyDependentModelGetsNoReduction)
{
    // ToyLockModel declares every pair of processes dependent, so the
    // DPOR search must degrade to exactly the naive DFS.
    mc::ToyLockModel m(false);
    auto cfg = smallSearch();
    const auto dpor = mc::explore(m, cfg);
    cfg.dpor = false;
    const auto naive = mc::explore(m, cfg);
    EXPECT_EQ(dpor.runs, naive.runs);
    EXPECT_EQ(dpor.pruned, 0u);
    EXPECT_EQ(dpor.digest, naive.digest);
}

TEST(DeploymentMcTest, TwoProcessDigestIsScheduleIndependent)
{
    mc::DeploymentModel m(twoProcConfig(false));
    const auto rep = mc::explore(m, smallSearch());
    EXPECT_TRUE(rep.proved())
        << rep.ce_what << ": " << rep.ce_detail;
    EXPECT_GT(rep.runs, 1u);
    EXPECT_NE(rep.digest, 0u);
    ASSERT_EQ(rep.max_block_ms.size(), 2u);
}

TEST(DeploymentMcTest, DisjointProcessesPruneSharedBufferDoesNot)
{
    // Private per-process buffers → independent → the reduction
    // skips commuting branches. One seeded cross-process buffer →
    // full dependence → nothing is prunable.
    mc::DeploymentModel disjoint(twoProcConfig(false));
    const auto d = mc::explore(disjoint, smallSearch());
    EXPECT_GT(d.pruned, 0u);

    mc::DeploymentModel shared(twoProcConfig(true));
    const auto s = mc::explore(shared, smallSearch());
    EXPECT_EQ(s.pruned, 0u);
    EXPECT_TRUE(s.clean()) << s.ce_what;
}

TEST(DeploymentMcTest, DefaultScheduleMatchesReferenceDigest)
{
    // Run 0 of the search is the empty script; re-running it
    // standalone must reproduce the reference digest bit-exactly
    // (runs are pure functions of (config, script)).
    mc::DeploymentModel m(twoProcConfig(false));
    const auto rep = mc::explore(m, smallSearch());
    const auto solo = m.run({});
    EXPECT_EQ(solo.digest, rep.digest);
    EXPECT_FALSE(solo.deadlock);
    EXPECT_FALSE(solo.bound_exceeded);
}

TEST(CounterExampleTest, DeploymentRoundTripPreservesConfig)
{
    mc::CounterExample ce;
    ce.model = "deployment";
    ce.what = "digest-mismatch";
    ce.detail = "proc 1 \"stalled\"";
    ce.ref_digest = 0x1234abcdu;
    ce.script = {0, 2, 1};
    ce.deploy = twoProcConfig(true);
    ce.deploy.max_events = 77777;

    const std::string path =
        testing::TempDir() + "/jetmc_ce_roundtrip.json";
    ASSERT_TRUE(mc::writeCe(ce, path));

    mc::CounterExample back;
    std::string err;
    ASSERT_TRUE(mc::readCe(path, back, err)) << err;
    EXPECT_EQ(back.model, ce.model);
    EXPECT_EQ(back.what, ce.what);
    EXPECT_EQ(back.detail, ce.detail);
    EXPECT_EQ(back.ref_digest, ce.ref_digest);
    EXPECT_EQ(back.script, ce.script);
    EXPECT_EQ(back.deploy.device, "orin-nano");
    EXPECT_EQ(back.deploy.max_ecs, 1u);
    EXPECT_EQ(back.deploy.max_events, 77777u);
    EXPECT_TRUE(back.deploy.shared_buffer);
    ASSERT_EQ(back.deploy.procs.size(), 2u);
    EXPECT_EQ(back.deploy.procs[0].model, "resnet50");
    EXPECT_EQ(back.deploy.procs[0].precision, soc::Precision::Fp16);
    std::remove(path.c_str());
}

TEST(CounterExampleTest, ToyLockCeReplaysEndToEnd)
{
    mc::ToyLockModel m(true);
    const auto rep = mc::explore(m, smallSearch());
    ASSERT_TRUE(rep.deadlock);

    mc::CounterExample ce;
    ce.model = "toylock-inverted";
    ce.what = rep.ce_what;
    ce.detail = rep.ce_detail;
    ce.ref_digest = rep.digest;
    ce.script = rep.ce_script;

    const std::string path =
        testing::TempDir() + "/jetmc_ce_toylock.json";
    ASSERT_TRUE(mc::writeCe(ce, path));
    mc::CounterExample back;
    std::string err;
    ASSERT_TRUE(mc::readCe(path, back, err)) << err;
    EXPECT_EQ(mc::replayCe(back), "");
    std::remove(path.c_str());
}

TEST(CounterExampleTest, ReaderRejectsGarbage)
{
    const std::string path = testing::TempDir() + "/jetmc_bad.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"not_a_ce\": true}\n", f);
    std::fclose(f);
    mc::CounterExample ce;
    std::string err;
    EXPECT_FALSE(mc::readCe(path, ce, err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}

TEST(TraceChooserTest, ClampsStaleScriptEntriesToDefault)
{
    mc::TraceChooser tc({1, 99, -3});
    const std::int64_t actors[3] = {10, 11, 12};
    EXPECT_EQ(tc.choose(sim::ChoiceKind::EventTie, actors, 3), 1);
    EXPECT_EQ(tc.choose(sim::ChoiceKind::EventTie, actors, 3), 0);
    EXPECT_EQ(tc.choose(sim::ChoiceKind::EventTie, actors, 2), 0);
    // Past the script: default, still recorded.
    EXPECT_EQ(tc.choose(sim::ChoiceKind::GpuChannel, actors, 2), 0);
    EXPECT_EQ(tc.clamped(), 2u);
    ASSERT_EQ(tc.trace().size(), 4u);
    EXPECT_EQ(tc.trace()[0].picked, 1);
    EXPECT_EQ(tc.trace()[0].n, 3);
    EXPECT_EQ(tc.trace()[0].actors[2], 12);
    EXPECT_EQ(tc.trace()[3].kind, sim::ChoiceKind::GpuChannel);
}

TEST(EventQueueChoiceTest, ChooserPermutesSameTickTies)
{
    // Three same-tick, same-priority events: the uncontrolled queue
    // dispatches in schedule (seq) order; a scripted chooser can
    // realise any permutation, one deviation per site.
    const auto order = [](std::vector<int> script) {
        sim::EventQueue eq;
        mc::TraceChooser tc(std::move(script));
        eq.setChooser(&tc);
        std::vector<int> out;
        for (int i = 0; i < 3; ++i)
            eq.schedule(100, [&out, i] { out.push_back(i); });
        eq.runAll(100);
        eq.setChooser(nullptr);
        return out;
    };
    EXPECT_EQ(order({}), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(order({2}), (std::vector<int>{2, 0, 1}));
    EXPECT_EQ(order({1, 1}), (std::vector<int>{1, 2, 0}));
}
