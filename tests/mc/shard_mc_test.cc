/**
 * @file
 * jetmc coverage of the sharded event core: the two-shard ping model
 * explored over the complete bounded merge-schedule space (deadlock
 * freedom + digest invariance proved), the racy self-test variant
 * (schedule-dependence must be caught), and the tie between the
 * explored merge space and the production epoch/barrier path.
 */

#include "mc/shard_model.hh"

#include <gtest/gtest.h>

#include "mc/explorer.hh"

using namespace jetsim;

namespace {

mc::ExploreConfig
search()
{
    mc::ExploreConfig cfg;
    cfg.depth = 24;
    cfg.max_runs = 20000;
    return cfg;
}

} // namespace

TEST(ShardMc, MergeScheduleSpaceProvedCleanAndDeadlockFree)
{
    // 2 round trips keep the exhaustive space (dependent() == true,
    // no pruning) complete within the run budget; 3 rounds exceed it.
    mc::ShardPingModel m(2);
    const auto rep = mc::explore(m, search());
    EXPECT_TRUE(rep.proved())
        << "deadlock=" << rep.deadlock
        << " digest_mismatch=" << rep.digest_mismatch
        << " violations=" << rep.violation_runs
        << " budget_hit=" << rep.run_budget_hit;
    // The colliders guarantee real arbitration: more than one
    // schedule must have been explored, or the proof is vacuous.
    EXPECT_GT(rep.runs, 1u);
    EXPECT_GT(rep.max_trace_len, 0);
}

TEST(ShardMc, RacyVariantIsCaughtAsDigestMismatch)
{
    // The broken model folds cross-shard execution order into its
    // digest — exactly what merge arbitration varies. The harness
    // must see it (self-test that ShardMerge choice points are live).
    mc::ShardPingModel m(2, /*racy=*/true);
    auto cfg = search();
    cfg.stop_on_failure = true;
    const auto rep = mc::explore(m, cfg);
    EXPECT_TRUE(rep.digest_mismatch);
    EXPECT_FALSE(rep.ce_script.empty());
    EXPECT_EQ(rep.ce_what, "digest-mismatch");
}

TEST(ShardMc, DefaultMergeScheduleMatchesEpochPath)
{
    // The digest the explorer branches around equals the digest of
    // the real (uncontrolled) scheduling paths — serial merge, serial
    // epochs, and genuinely parallel epochs.
    mc::ShardPingModel m(2);
    const auto explored = mc::explore(m, search());

    sim::ShardedEngine::Options serial_merge;
    serial_merge.shards = 2;
    serial_merge.threads = 1;
    serial_merge.lookahead = 0;
    const auto merge = m.runWith(serial_merge, nullptr);
    EXPECT_EQ(merge.digest, explored.digest);
    EXPECT_FALSE(merge.deadlock) << merge.detail;

    sim::ShardedEngine::Options epochs;
    epochs.shards = 2;
    epochs.threads = 1;
    epochs.lookahead = 1;
    const auto serial_epochs = m.runWith(epochs, nullptr);
    EXPECT_EQ(serial_epochs.digest, explored.digest);

    epochs.threads = 2;
    const auto parallel_epochs = m.runWith(epochs, nullptr);
    EXPECT_EQ(parallel_epochs.digest, explored.digest);
    EXPECT_FALSE(parallel_epochs.deadlock) << parallel_epochs.detail;
}

TEST(ShardMc, ReplayedCounterexampleReproduces)
{
    mc::ShardPingModel m(2, /*racy=*/true);
    auto cfg = search();
    const auto rep = mc::explore(m, cfg);
    ASSERT_TRUE(rep.digest_mismatch);
    // Re-running the minimised script must still diverge from the
    // reference digest — counterexamples are deterministic.
    const auto again = m.run(rep.ce_script);
    EXPECT_NE(again.digest, rep.digest);
}
