/**
 * @file
 * jetmc coverage of hierarchical two-hop dispatch (ISSUE 9): the
 * root -> sub -> device model explored over the complete bounded
 * merge-schedule space (deadlock freedom + per-device arrival digest
 * invariance proved), the racy self-test variant (cross-shard arrival
 * order must be caught as schedule-dependent), and the tie between
 * the explored merge space and the production epoch/barrier path —
 * including the adaptive batch_windows fusion.
 */

#include "mc/hier_model.hh"

#include <gtest/gtest.h>

#include "mc/explorer.hh"

using namespace jetsim;

namespace {

mc::ExploreConfig
search()
{
    mc::ExploreConfig cfg;
    cfg.depth = 24;
    cfg.max_runs = 20000;
    return cfg;
}

} // namespace

TEST(HierMc, TwoHopScheduleSpaceProvedCleanAndDeadlockFree)
{
    mc::HierDispatchModel m(2);
    const auto rep = mc::explore(m, search());
    EXPECT_TRUE(rep.proved())
        << "deadlock=" << rep.deadlock
        << " digest_mismatch=" << rep.digest_mismatch
        << " violations=" << rep.violation_runs
        << " budget_hit=" << rep.run_budget_hit;
    // Devices on distinct shards share hop ticks, so merge
    // arbitration is live: the proof must not be vacuous.
    EXPECT_GT(rep.runs, 1u);
    EXPECT_GT(rep.max_trace_len, 0);
}

TEST(HierMc, RacyVariantIsCaughtAsDigestMismatch)
{
    // The broken model folds cross-shard arrival order into its
    // digest — exactly what merge arbitration varies across the
    // two device shards. The harness must see it.
    mc::HierDispatchModel m(2, /*racy=*/true);
    auto cfg = search();
    cfg.stop_on_failure = true;
    const auto rep = mc::explore(m, cfg);
    EXPECT_TRUE(rep.digest_mismatch);
    EXPECT_FALSE(rep.ce_script.empty());
    EXPECT_EQ(rep.ce_what, "digest-mismatch");
}

TEST(HierMc, MergeScheduleMatchesEpochAndSerialPaths)
{
    // The digest the explorer branches around equals the digest of
    // every real scheduling path: fully serial (shards=1), serial
    // merge, serial epochs, parallel epochs, and the unlimited
    // batch_windows fusion the 1000-board fleet rides.
    mc::HierDispatchModel m(2);
    const auto explored = mc::explore(m, search());

    sim::ShardedEngine::Options serial;
    serial.shards = 1;
    serial.threads = 1;
    serial.lookahead = 0;
    const auto flat = m.runWith(serial, nullptr);
    EXPECT_EQ(flat.digest, explored.digest);
    EXPECT_FALSE(flat.deadlock) << flat.detail;

    sim::ShardedEngine::Options merge;
    merge.shards = 3;
    merge.threads = 1;
    merge.lookahead = 0;
    const auto merged = m.runWith(merge, nullptr);
    EXPECT_EQ(merged.digest, explored.digest);

    for (const int threads : {1, 2})
        for (const std::uint64_t windows : {0u, 1u}) {
            sim::ShardedEngine::Options epochs;
            epochs.shards = 3;
            epochs.threads = threads;
            epochs.lookahead = 1;
            epochs.batch_windows = windows;
            const auto got = m.runWith(epochs, nullptr);
            EXPECT_EQ(got.digest, explored.digest)
                << "threads=" << threads << " windows=" << windows;
            EXPECT_FALSE(got.deadlock) << got.detail;
        }
}

TEST(HierMc, ReplayedCounterexampleReproduces)
{
    mc::HierDispatchModel m(2, /*racy=*/true);
    const auto rep = mc::explore(m, search());
    ASSERT_TRUE(rep.digest_mismatch);
    const auto again = m.run(rep.ce_script);
    EXPECT_NE(again.digest, rep.digest);
}
