/**
 * @file
 * CUDA-shim tests: stream ordering, events, completion waiters, and
 * device-buffer RAII.
 */

#include "cuda/device_buffer.hh"
#include "cuda/stream.hh"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "soc/board.hh"

namespace jetsim::cuda {
namespace {

struct Rig
{
    sim::EventQueue eq;
    soc::Board board{soc::orinNano(), eq};
    gpu::GpuEngine engine{board};
};

gpu::KernelDesc
kernel()
{
    gpu::KernelDesc k;
    k.name = "k";
    k.flops = 1e8;
    k.bytes = 1e6;
    k.prec = soc::Precision::Fp16;
    k.tc = true;
    k.blocks = 64;
    return k;
}

TEST(Stream, CountsSubmittedAndCompleted)
{
    Rig r;
    Stream s(r.engine, "s0");
    const auto k = kernel();
    EXPECT_TRUE(s.idle());
    s.launch(&k);
    s.launch(&k);
    EXPECT_EQ(s.submitted(), 2u);
    EXPECT_EQ(s.completed(), 0u);
    EXPECT_FALSE(s.idle());
    r.eq.runAll();
    EXPECT_EQ(s.completed(), 2u);
    EXPECT_TRUE(s.idle());
}

TEST(Stream, OnCompleteFiresImmediatelyWhenSatisfied)
{
    Rig r;
    Stream s(r.engine, "s0");
    bool fired = false;
    s.onComplete(0, [&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(Stream, OnCompleteFiresAtTarget)
{
    Rig r;
    Stream s(r.engine, "s0");
    const auto k = kernel();
    std::vector<std::uint64_t> seen;
    s.launch(&k);
    s.launch(&k);
    s.launch(&k);
    s.onComplete(2, [&] { seen.push_back(s.completed()); });
    s.onComplete(3, [&] { seen.push_back(s.completed()); });
    r.eq.runAll();
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 3}));
}

TEST(Stream, MultipleWaitersSameTarget)
{
    Rig r;
    Stream s(r.engine, "s0");
    const auto k = kernel();
    s.launch(&k);
    int fired = 0;
    s.onComplete(1, [&] { ++fired; });
    s.onComplete(1, [&] { ++fired; });
    r.eq.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(Event, QueryReflectsProgress)
{
    Rig r;
    Stream s(r.engine, "s0");
    const auto k = kernel();
    Event e;
    e.record(s); // empty stream: nothing to wait for
    EXPECT_TRUE(e.query());
    s.launch(&k);
    e.record(s);
    EXPECT_FALSE(e.query());
    r.eq.runAll();
    EXPECT_TRUE(e.query());
}

TEST(Event, WaitFiresOnCompletion)
{
    Rig r;
    Stream s(r.engine, "s0");
    const auto k = kernel();
    s.launch(&k);
    Event e;
    e.record(s);
    s.launch(&k); // later work not covered by the event
    sim::Tick fired_at = -1;
    e.wait([&] { fired_at = r.eq.now(); });
    r.eq.runAll();
    EXPECT_GT(fired_at, 0);
    EXPECT_LT(fired_at, r.eq.now()); // before the second kernel ended
}

TEST(Event, RecordIsAPositionNotALiveView)
{
    Rig r;
    Stream s(r.engine, "s0");
    const auto k = kernel();
    Event e;
    e.record(s);
    s.launch(&k);
    EXPECT_TRUE(e.query()); // recorded before any work
}

TEST(DeviceBuffer, AllocatesAndReleasesOnDestruction)
{
    soc::UnifiedMemory mem(1 * sim::kGiB, 0);
    {
        auto buf = DeviceBuffer::tryAlloc(mem, "p", 100 * sim::kMiB);
        ASSERT_TRUE(buf.has_value());
        EXPECT_EQ(buf->size(), 100 * sim::kMiB);
        EXPECT_EQ(mem.used(), 100 * sim::kMiB);
    }
    EXPECT_EQ(mem.used(), 0u);
}

TEST(DeviceBuffer, FailureReturnsNullopt)
{
    soc::UnifiedMemory mem(64 * sim::kMiB, 0);
    auto buf = DeviceBuffer::tryAlloc(mem, "p", 100 * sim::kMiB);
    EXPECT_FALSE(buf.has_value());
    EXPECT_EQ(mem.used(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership)
{
    soc::UnifiedMemory mem(1 * sim::kGiB, 0);
    auto a = DeviceBuffer::tryAlloc(mem, "p", 10 * sim::kMiB);
    ASSERT_TRUE(a.has_value());
    DeviceBuffer b = std::move(*a);
    EXPECT_EQ(mem.used(), 10 * sim::kMiB);
    a.reset(); // releasing the moved-from shell frees nothing
    EXPECT_EQ(mem.used(), 10 * sim::kMiB);
}

TEST(DeviceBuffer, MoveAssignReleasesPrevious)
{
    soc::UnifiedMemory mem(1 * sim::kGiB, 0);
    auto a = DeviceBuffer::tryAlloc(mem, "p", 10 * sim::kMiB);
    auto b = DeviceBuffer::tryAlloc(mem, "p", 20 * sim::kMiB);
    ASSERT_TRUE(a && b);
    *a = std::move(*b);
    EXPECT_EQ(mem.used(), 20 * sim::kMiB);
}

} // namespace
} // namespace jetsim::cuda
