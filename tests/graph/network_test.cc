/**
 * @file
 * Graph IR tests: shape inference, parameter and MAC formulas,
 * liveness-based peak activation, and validation.
 */

#include "graph/network.hh"

#include <gtest/gtest.h>

namespace jetsim::graph {
namespace {

TEST(Network, InputLayerIsImplicit)
{
    Network net("n", Shape{3, 224, 224});
    EXPECT_EQ(net.size(), 1u);
    EXPECT_EQ(net.layer(0).kind, OpKind::Input);
    EXPECT_EQ(net.layer(0).out, (Shape{3, 224, 224}));
}

TEST(Network, ConvShapeInference)
{
    Network net("n", Shape{3, 224, 224});
    const int c = net.addConv("c", net.inputId(), 64, 7, 2, 3);
    EXPECT_EQ(net.layer(c).out, (Shape{64, 112, 112}));
}

TEST(Network, ConvSamePadding)
{
    Network net("n", Shape{16, 56, 56});
    const int c = net.addConv("c", 0, 32, 3, 1, 1);
    EXPECT_EQ(net.layer(c).out, (Shape{32, 56, 56}));
}

TEST(Network, DilatedConvKeepsResolutionWithMatchingPad)
{
    Network net("n", Shape{256, 28, 28});
    const int c = net.addConv("c", 0, 256, 3, 1, 2, 2);
    EXPECT_EQ(net.layer(c).out, (Shape{256, 28, 28}));
}

TEST(Network, ConvParamsFormula)
{
    Network net("n", Shape{3, 224, 224});
    const int c = net.addConv("c", 0, 64, 7, 2, 3);
    // 64 x 3 x 7 x 7 = 9408, no bias.
    EXPECT_EQ(net.layer(c).params(), 9408);
    const int cb = net.addConv("cb", c, 8, 1, 1, 0, 1, 1, true);
    EXPECT_EQ(net.layer(cb).params(), 64 * 8 + 8);
}

TEST(Network, GroupedConvDividesParams)
{
    Network net("n", Shape{32, 10, 10});
    const int c = net.addConv("c", 0, 32, 3, 1, 1, 1, 32);
    // Depthwise: 32 x (32/32) x 3 x 3.
    EXPECT_EQ(net.layer(c).params(), 32 * 9);
}

TEST(Network, ConvMacsFormula)
{
    Network net("n", Shape{3, 224, 224});
    const int c = net.addConv("c", 0, 64, 7, 2, 3);
    // out elems x in_c x k x k = 64*112*112 * 3*49.
    EXPECT_DOUBLE_EQ(net.layer(c).macs(),
                     64.0 * 112 * 112 * 3 * 49);
}

TEST(Network, PoolShapes)
{
    Network net("n", Shape{64, 112, 112});
    const int p = net.addPool("p", 0, OpKind::MaxPool, 3, 2, 1);
    EXPECT_EQ(net.layer(p).out, (Shape{64, 56, 56}));
    const int g = net.addGlobalAvgPool("g", p);
    EXPECT_EQ(net.layer(g).out, (Shape{64, 1, 1}));
}

TEST(Network, LinearFlattensInput)
{
    Network net("n", Shape{2048, 1, 1});
    const int f = net.addLinear("fc", 0, 1000);
    EXPECT_EQ(net.layer(f).out, (Shape{1000, 1, 1}));
    EXPECT_EQ(net.layer(f).params(), 2048 * 1000 + 1000);
}

TEST(Network, ElementwiseShapesPreserved)
{
    Network net("n", Shape{8, 4, 4});
    const int a = net.addConv("a", 0, 8, 1);
    const int r = net.addActivation("r", a, OpKind::Relu);
    const int s = net.addAdd("s", r, 0);
    const int bn = net.addBatchNorm("bn", s);
    for (int id : {r, s, bn})
        EXPECT_EQ(net.layer(id).out, (Shape{8, 4, 4}));
    EXPECT_EQ(net.layer(bn).params(), 4 * 8);
}

TEST(Network, ConcatSumsChannels)
{
    Network net("n", Shape{8, 4, 4});
    const int a = net.addConv("a", 0, 16, 1);
    const int b = net.addConv("b", 0, 24, 1);
    const int c = net.addConcat("c", {a, b});
    EXPECT_EQ(net.layer(c).out, (Shape{40, 4, 4}));
    EXPECT_DOUBLE_EQ(net.layer(c).macs(), 0.0);
}

TEST(Network, SliceSelectsChannelRange)
{
    Network net("n", Shape{32, 4, 4});
    const int s = net.addSlice("s", 0, 8, 24);
    EXPECT_EQ(net.layer(s).out, (Shape{16, 4, 4}));
    EXPECT_EQ(net.layer(s).params(), 0);
}

TEST(Network, UpsampleScalesSpatially)
{
    Network net("n", Shape{21, 28, 28});
    const int u = net.addUpsample("u", 0, 8);
    EXPECT_EQ(net.layer(u).out, (Shape{21, 224, 224}));
}

TEST(Network, TotalsAggregate)
{
    Network net("n", Shape{3, 8, 8});
    net.addConv("a", 0, 4, 3, 1, 1);
    net.addConv("b", 1, 4, 3, 1, 1);
    EXPECT_EQ(net.totalParams(), 3 * 4 * 9 + 4 * 4 * 9);
    EXPECT_GT(net.totalMacs(), 0.0);
    EXPECT_EQ(net.totalActivationElems(), 2 * 4 * 8 * 8);
}

TEST(Network, PeakLivenessBeatsTotal)
{
    // A deep chain's peak is far below the total of all tensors.
    Network net("n", Shape{4, 16, 16});
    int x = net.inputId();
    for (int i = 0; i < 10; ++i)
        x = net.addConv("c" + std::to_string(i), x, 4, 3, 1, 1);
    EXPECT_LT(net.peakActivationElems(),
              net.totalActivationElems());
    // At least one producer + consumer pair must be live together.
    EXPECT_GE(net.peakActivationElems(), 2 * 4 * 16 * 16);
}

TEST(Network, PeakAccountsForSkipConnections)
{
    // Residual input stays live across the body of the block.
    Network net("n", Shape{8, 8, 8});
    int x = net.addConv("c1", 0, 8, 3, 1, 1);
    int y = net.addConv("c2", x, 8, 3, 1, 1);
    y = net.addConv("c3", y, 8, 3, 1, 1);
    net.addAdd("add", y, x); // x live until here
    EXPECT_GE(net.peakActivationElems(), 3 * 8 * 8 * 8);
}

TEST(Network, FanoutCountsConsumers)
{
    Network net("n", Shape{8, 4, 4});
    const int a = net.addConv("a", 0, 8, 1);
    net.addActivation("r1", a, OpKind::Relu);
    net.addActivation("r2", a, OpKind::Relu);
    EXPECT_EQ(net.fanout(a), 2);
    EXPECT_EQ(net.fanout(0), 1);
}

TEST(Network, OutputDefaultsToLastAndIsSettable)
{
    Network net("n", Shape{8, 4, 4});
    const int a = net.addConv("a", 0, 8, 1);
    const int b = net.addConv("b", a, 8, 1);
    EXPECT_EQ(net.outputId(), b);
    net.setOutput(a);
    EXPECT_EQ(net.outputId(), a);
}

TEST(Network, TensorCoreEligibility)
{
    Network net("n", Shape{64, 8, 8});
    const int big = net.addConv("big", 0, 64, 3, 1, 1);
    EXPECT_TRUE(net.layer(big).tensorCoreEligible());
    const int dw = net.addConv("dw", 0, 64, 3, 1, 1, 1, 64);
    EXPECT_FALSE(net.layer(dw).tensorCoreEligible());
    const int act = net.addActivation("r", big, OpKind::Relu);
    EXPECT_FALSE(net.layer(act).tensorCoreEligible());
}

TEST(Network, ToDotRendersEveryNodeAndEdge)
{
    Network net("tiny", Shape{3, 8, 8});
    const int a = net.addConv("convA", 0, 8, 3, 1, 1);
    net.addActivation("reluB", a, OpKind::Relu);
    const auto dot = net.toDot();
    EXPECT_NE(dot.find("digraph \"tiny\""), std::string::npos);
    EXPECT_NE(dot.find("convA"), std::string::npos);
    EXPECT_NE(dot.find("reluB"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
}

TEST(Network, ValidatePassesOnWellFormedGraph)
{
    Network net("n", Shape{3, 8, 8});
    net.addConv("a", 0, 4, 3, 1, 1);
    net.validate(); // must not panic
}

// Malformed construction must die deterministically — the same
// assertion fires in every build flavour (NDEBUG included), so a bad
// model generator can never silently produce a nonsense graph.

TEST(NetworkDeath, ZeroInputDimension)
{
    EXPECT_DEATH(Network("n", Shape{3, 0, 224}), "non-positive");
}

TEST(NetworkDeath, NegativeInputDimension)
{
    EXPECT_DEATH(Network("n", Shape{-3, 224, 224}), "non-positive");
}

TEST(NetworkDeath, OutOfRangeLayerReference)
{
    Network net("n", Shape{3, 8, 8});
    EXPECT_DEATH(net.addConv("c", 7, 4, 3, 1, 1), "assertion failed");
}

TEST(NetworkDeath, NegativeLayerReference)
{
    Network net("n", Shape{3, 8, 8});
    EXPECT_DEATH(net.addBatchNorm("bn", -1), "assertion failed");
}

TEST(NetworkDeath, ShapeMismatchedAdd)
{
    Network net("n", Shape{3, 8, 8});
    const int a = net.addConv("a", 0, 4, 3, 1, 1);
    const int b = net.addConv("b", 0, 4, 3, 2, 1);
    EXPECT_DEATH(net.addAdd("sum", a, b), "assertion failed");
}

TEST(NetworkDeath, ZeroConvChannels)
{
    Network net("n", Shape{3, 8, 8});
    EXPECT_DEATH(net.addConv("c", 0, 0, 3, 1, 1), "impossible");
}

TEST(NetworkDeath, NegativeConvStride)
{
    Network net("n", Shape{3, 8, 8});
    EXPECT_DEATH(net.addConv("c", 0, 4, 3, -1, 1), "impossible");
}

TEST(NetworkDeath, ZeroPoolKernel)
{
    Network net("n", Shape{3, 8, 8});
    EXPECT_DEATH(net.addPool("p", 0, OpKind::MaxPool, 0, 2, 0),
                 "impossible");
}

TEST(NetworkDeath, NonPositiveLinearFeatures)
{
    Network net("n", Shape{3, 8, 8});
    EXPECT_DEATH(net.addLinear("fc", 0, 0), "out_features");
}

} // namespace
} // namespace jetsim::graph
