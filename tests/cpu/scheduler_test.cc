/**
 * @file
 * OS-scheduler tests: dispatch, time-sharing, preemption accounting,
 * cache-warmth penalties, and the big.LITTLE partition, including
 * parameterized sweeps over thread counts.
 */

#include "cpu/scheduler.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "soc/board.hh"

namespace jetsim::cpu {
namespace {

struct Rig
{
    sim::EventQueue eq;
    soc::Board board{soc::orinNano(), eq};
    OsScheduler sched{board};
};

TEST(Scheduler, SingleThreadRunsImmediately)
{
    Rig r;
    bool done = false;
    Thread *t = r.sched.createThread("t0");
    EXPECT_EQ(t->state(), Thread::State::Idle);
    t->exec(sim::usec(100), [&] { done = true; });
    r.eq.runAll();
    EXPECT_TRUE(done);
    EXPECT_EQ(t->state(), Thread::State::Idle);
    EXPECT_GE(t->cpuTime(), sim::usec(100));
}

TEST(Scheduler, WorkTimeIsAccounted)
{
    Rig r;
    Thread *t = r.sched.createThread("t0");
    t->exec(sim::usec(250), nullptr);
    r.eq.runAll();
    EXPECT_EQ(t->cpuTime(), sim::usec(250));
    EXPECT_EQ(t->dispatches(), 1u);
}

TEST(Scheduler, ChainedItemsRunInOrder)
{
    Rig r;
    Thread *t = r.sched.createThread("t0");
    std::vector<int> order;
    t->exec(sim::usec(10), [&] { order.push_back(1); });
    t->exec(sim::usec(10), [&] { order.push_back(2); });
    t->exec(sim::usec(10), [&] { order.push_back(3); });
    r.eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, CallbackMayQueueMoreWork)
{
    Rig r;
    Thread *t = r.sched.createThread("t0");
    int steps = 0;
    std::function<void()> step = [&] {
        if (++steps < 4)
            t->exec(sim::usec(5), step);
    };
    t->exec(sim::usec(5), step);
    r.eq.runAll();
    EXPECT_EQ(steps, 4);
}

TEST(Scheduler, ThreadsWithinCoreCountRunConcurrently)
{
    Rig r;
    // 3 big cores: 3 threads of equal work finish at the same time.
    std::vector<sim::Tick> done(3);
    for (int i = 0; i < 3; ++i) {
        Thread *t = r.sched.createThread("t" + std::to_string(i));
        t->exec(sim::msec(1), [&, i] { done[i] = r.eq.now(); });
    }
    r.eq.runAll();
    EXPECT_EQ(done[0], done[1]);
    EXPECT_EQ(done[1], done[2]);
}

TEST(Scheduler, OversubscriptionSerialises)
{
    Rig r;
    // 6 threads x 1 ms on 3 big cores: ~2 ms wall, not 1 ms.
    sim::Tick last = 0;
    for (int i = 0; i < 6; ++i) {
        Thread *t = r.sched.createThread("t" + std::to_string(i));
        t->exec(sim::msec(1), [&] { last = r.eq.now(); });
    }
    r.eq.runAll();
    EXPECT_GE(last, sim::msec(2));
}

TEST(Scheduler, WakeWaitAccruesUnderContention)
{
    Rig r;
    std::vector<Thread *> ts;
    for (int i = 0; i < 6; ++i)
        ts.push_back(r.sched.createThread("t" + std::to_string(i)));
    for (auto *t : ts)
        t->exec(sim::msec(1), nullptr);
    r.eq.runAll();
    sim::Tick total_wait = 0;
    for (auto *t : ts)
        total_wait += t->wakeWait();
    EXPECT_GT(total_wait, 0);
}

TEST(Scheduler, NoWaitWhenCoresAreFree)
{
    Rig r;
    Thread *t = r.sched.createThread("t0");
    t->exec(sim::msec(1), nullptr);
    r.eq.runAll();
    EXPECT_EQ(t->wakeWait(), 0);
    EXPECT_EQ(t->preemptWait(), 0);
    EXPECT_EQ(t->migrations(), 0u);
}

TEST(Scheduler, LongRunnersGetPreempted)
{
    Rig r;
    // 4 long threads on 3 cores force timeslice preemption.
    std::vector<Thread *> ts;
    for (int i = 0; i < 4; ++i) {
        ts.push_back(r.sched.createThread("t" + std::to_string(i)));
        ts.back()->exec(sim::msec(20), nullptr);
    }
    r.eq.runAll();
    EXPECT_GT(r.sched.preemptions(), 0u);
    std::uint64_t preempted = 0;
    for (auto *t : ts)
        preempted += t->preemptions();
    EXPECT_GT(preempted, 0u);
}

TEST(Scheduler, FairnessUnderTimeSharing)
{
    Rig r;
    // All equal threads finish within one timeslice of each other.
    std::vector<sim::Tick> done(6, 0);
    for (int i = 0; i < 6; ++i) {
        Thread *t = r.sched.createThread("t" + std::to_string(i));
        t->exec(sim::msec(10), [&, i] { done[i] = r.eq.now(); });
    }
    r.eq.runAll();
    const auto [lo, hi] = std::minmax_element(done.begin(), done.end());
    EXPECT_LE(*hi - *lo,
              2 * r.board.spec().runtime.timeslice +
                  sim::usec(200));
}

TEST(Scheduler, MigrationsChargeCachePenalty)
{
    Rig r;
    std::vector<Thread *> ts;
    for (int i = 0; i < 5; ++i) {
        ts.push_back(r.sched.createThread("t" + std::to_string(i)));
        ts.back()->exec(sim::msec(30), nullptr);
    }
    r.eq.runAll();
    std::uint64_t migrations = 0;
    sim::Tick penalty = 0;
    for (auto *t : ts) {
        migrations += t->migrations();
        penalty += t->cachePenalty();
    }
    EXPECT_GT(migrations, 0u);
    EXPECT_GT(penalty, 0);
}

TEST(Scheduler, BigAffinityLimitsParallelismWhenPartitioned)
{
    Rig r;
    // 6 big threads on 3 big cores vs the same with partitioning off
    // (all 6 cores usable): partitioned must take longer.
    sim::Tick partitioned_end = 0;
    {
        Rig p;
        for (int i = 0; i < 6; ++i)
            p.sched.createThread("t" + std::to_string(i))
                ->exec(sim::msec(5), nullptr);
        p.eq.runAll();
        partitioned_end = p.eq.now();
    }
    r.sched.setPartitioned(false);
    for (int i = 0; i < 6; ++i)
        r.sched.createThread("t" + std::to_string(i))
            ->exec(sim::msec(5), nullptr);
    r.eq.runAll();
    EXPECT_LT(r.eq.now(), partitioned_end);
}

TEST(Scheduler, LittleThreadsUseLittleCores)
{
    Rig r;
    Thread *big = r.sched.createThread("big", true);
    Thread *little = r.sched.createThread("little", false);
    big->exec(sim::msec(1), nullptr);
    little->exec(sim::msec(1), nullptr);
    // Both runnable: one big core and one LITTLE core busy.
    r.eq.runUntil(sim::usec(100));
    EXPECT_EQ(r.sched.busyCores(true), 1);
    EXPECT_EQ(r.sched.busyCores(false), 1);
    r.eq.runAll();
}

TEST(Scheduler, BoardActivityTracksBusyCores)
{
    Rig r;
    for (int i = 0; i < 2; ++i)
        r.sched.createThread("t" + std::to_string(i))
            ->exec(sim::msec(1), nullptr);
    r.eq.runUntil(sim::usec(100));
    EXPECT_EQ(r.board.activity().cpu_active_big, 2);
    r.eq.runAll();
    EXPECT_EQ(r.board.activity().cpu_active_big, 0);
}

TEST(Scheduler, ResetStatsZeroesCounters)
{
    Rig r;
    Thread *t = r.sched.createThread("t0");
    t->exec(sim::msec(1), nullptr);
    r.eq.runAll();
    EXPECT_GT(t->cpuTime(), 0);
    t->resetStats();
    EXPECT_EQ(t->cpuTime(), 0);
    EXPECT_EQ(t->dispatches(), 0u);
}

/** Invariant sweep over thread counts. */
class SchedulerLoad : public ::testing::TestWithParam<int>
{
};

TEST_P(SchedulerLoad, ConservationAndBounds)
{
    const int n = GetParam();
    Rig r;
    std::vector<Thread *> ts;
    const sim::Tick work = sim::msec(4);
    for (int i = 0; i < n; ++i) {
        ts.push_back(r.sched.createThread("t" + std::to_string(i)));
        ts.back()->exec(work, nullptr);
    }
    r.eq.runAll();

    const auto &spec = r.board.spec();
    for (auto *t : ts) {
        // Every thread ran at least its nominal work (plus possible
        // cache-penalty inflation), and is idle at the end.
        EXPECT_GE(t->cpuTime(), work);
        EXPECT_EQ(t->state(), Thread::State::Idle);
        EXPECT_GE(t->dispatches(), 1u);
    }
    // Make-span is bounded below by total work over the big cores.
    const double big = spec.bigCores();
    EXPECT_GE(r.eq.now(),
              static_cast<sim::Tick>(n * work / big) - sim::usec(1));
    // No core ran two threads at once: busy cores never exceed count.
    EXPECT_EQ(r.sched.busyCores(true), 0);
}

INSTANTIATE_TEST_SUITE_P(Counts, SchedulerLoad,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

} // namespace
} // namespace jetsim::cpu
