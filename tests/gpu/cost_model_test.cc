/**
 * @file
 * Kernel cost-model tests: roofline behaviour, precision paths,
 * latency floor, and the derived utilisation counters.
 */

#include "gpu/cost_model.hh"

#include <gtest/gtest.h>

namespace jetsim::gpu {
namespace {

KernelDesc
bigTcKernel(soc::Precision p = soc::Precision::Fp16)
{
    KernelDesc k;
    k.name = "conv";
    k.flops = 2e9;
    k.bytes = 4e6;
    k.prec = p;
    k.tc = true;
    k.blocks = 4096;
    k.efficiency_scale = 1.0;
    return k;
}

TEST(CostModel, ComputeBoundDurationFollowsRate)
{
    const auto spec = soc::orinNano();
    KernelCostModel m(spec);
    const auto k = bigTcKernel();
    const auto t = m.timing(k, 1.0);
    const double expect_ns = k.flops / spec.gpu.eff_tc_gflops_fp16;
    EXPECT_NEAR(static_cast<double>(t.duration), expect_ns,
                expect_ns * 0.05 +
                    static_cast<double>(KernelCostModel::kKernelOverhead));
    EXPECT_GT(t.compute_frac, 0.9);
}

TEST(CostModel, MemoryBoundKernelIgnoresComputeRate)
{
    const auto spec = soc::orinNano();
    KernelCostModel m(spec);
    KernelDesc k = bigTcKernel();
    k.flops = 1e6;   // trivial compute
    k.bytes = 100e6; // heavy traffic
    const auto t = m.timing(k, 1.0);
    const double eff_bw = spec.gpu.mem_bw_gbps * spec.gpu.mem_efficiency;
    EXPECT_NEAR(static_cast<double>(t.duration), k.bytes / eff_bw,
                k.bytes / eff_bw * 0.05 + 5e3);
    EXPECT_LT(t.compute_frac, 0.1);
    EXPECT_GT(t.bw_util, 0.5);
}

TEST(CostModel, FrequencyScalingSlowsCompute)
{
    KernelCostModel m(soc::orinNano());
    const auto k = bigTcKernel();
    const auto full = m.timing(k, 1.0);
    const auto half = m.timing(k, 0.5);
    EXPECT_NEAR(static_cast<double>(half.duration),
                2.0 * static_cast<double>(full.duration),
                static_cast<double>(full.duration) * 0.1);
}

TEST(CostModel, PrecisionOrderingOnTensorCores)
{
    KernelCostModel m(soc::orinNano());
    auto dur = [&](soc::Precision p) {
        return m.timing(bigTcKernel(p), 1.0).duration;
    };
    EXPECT_LT(dur(soc::Precision::Int8), dur(soc::Precision::Fp16));
    EXPECT_LT(dur(soc::Precision::Fp16), dur(soc::Precision::Tf32));
    EXPECT_LT(dur(soc::Precision::Tf32), dur(soc::Precision::Fp32));
}

TEST(CostModel, Fp32NeverUsesTensorCores)
{
    KernelCostModel m(soc::orinNano());
    KernelDesc k = bigTcKernel(soc::Precision::Fp32);
    const auto t = m.timing(k, 1.0);
    EXPECT_DOUBLE_EQ(t.tc_util, 0.0);
}

TEST(CostModel, NanoHasNoTcPathAndFastFp16)
{
    KernelCostModel m(soc::jetsonNano());
    KernelDesc k = bigTcKernel(soc::Precision::Fp16);
    const auto t16 = m.timing(k, 1.0);
    EXPECT_DOUBLE_EQ(t16.tc_util, 0.0);
    k.prec = soc::Precision::Fp32;
    const auto t32 = m.timing(k, 1.0);
    EXPECT_LT(t16.duration, t32.duration);
}

TEST(CostModel, LatencyFloorBindsSmallKernels)
{
    const auto spec = soc::orinNano();
    KernelCostModel m(spec);
    KernelDesc k = bigTcKernel();
    k.flops = 1e3;
    k.bytes = 1e3;
    const auto t = m.timing(k, 1.0);
    EXPECT_GE(t.duration, spec.gpu.min_kernel_latency);
}

TEST(CostModel, SmActiveReflectsGridOccupancy)
{
    KernelCostModel m(soc::orinNano()); // 8 SMs
    KernelDesc k = bigTcKernel();
    k.blocks = 8 * 100; // full waves
    EXPECT_NEAR(m.timing(k, 1.0).sm_active, 1.0, 0.01);
    k.blocks = 2; // quarter of one wave
    EXPECT_NEAR(m.timing(k, 1.0).sm_active, 0.25, 0.01);
    k.blocks = 12; // 1.5 waves: 8/8 then 4/8 -> 0.75 average
    EXPECT_NEAR(m.timing(k, 1.0).sm_active, 0.75, 0.01);
}

TEST(CostModel, CountersStayInRange)
{
    KernelCostModel m(soc::orinNano());
    sim::Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        KernelDesc k = bigTcKernel();
        k.flops = rng.uniform(1e3, 5e9);
        k.bytes = rng.uniform(1e3, 2e8);
        k.blocks = static_cast<int>(rng.uniformInt(1, 5000));
        k.efficiency_scale = rng.uniform(0.4, 2.9);
        const auto t = m.timing(k, rng.uniform(0.3, 1.0), &rng);
        EXPECT_GT(t.duration, 0);
        EXPECT_GE(t.sm_active, 0.0);
        EXPECT_LE(t.sm_active, 1.0);
        EXPECT_GE(t.issue_slot, 0.0);
        EXPECT_LE(t.issue_slot, 0.85);
        EXPECT_GE(t.tc_util, 0.0);
        EXPECT_LE(t.tc_util, 0.99);
        EXPECT_GE(t.bw_util, 0.0);
        EXPECT_LE(t.bw_util, 1.0);
    }
}

TEST(CostModel, Int8TcUtilLowerThanFp16ForMemoryBoundWork)
{
    // The paper's inversion: int8 finishes the math sooner, so its
    // TC-active fraction over the (memory-bound) duration is lower.
    KernelCostModel m(soc::orinNano());
    KernelDesc k = bigTcKernel(soc::Precision::Int8);
    k.bytes = 60e6; // memory bound either way
    const auto t8 = m.timing(k, 1.0);
    k.prec = soc::Precision::Fp16;
    k.bytes = 120e6; // same traffic scaled by element width
    const auto t16 = m.timing(k, 1.0);
    EXPECT_LT(t8.tc_util, t16.tc_util);
}

TEST(CostModel, StallFactorRaisesTcResidency)
{
    KernelCostModel m(soc::orinNano());
    KernelDesc k = bigTcKernel();
    const auto base = m.timing(k, 1.0);
    k.tc_stall_factor = 3.5;
    const auto stalled = m.timing(k, 1.0);
    EXPECT_GT(stalled.tc_util, base.tc_util);
    EXPECT_EQ(stalled.duration, base.duration);
}

TEST(CostModel, DeterministicWithoutRng)
{
    KernelCostModel m(soc::orinNano());
    const auto k = bigTcKernel();
    const auto a = m.timing(k, 0.8);
    const auto b = m.timing(k, 0.8);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_DOUBLE_EQ(a.tc_util, b.tc_util);
}

TEST(CostModel, EfficiencyScaleIsCappedNearPeak)
{
    const auto spec = soc::orinNano();
    KernelCostModel m(spec);
    KernelDesc k = bigTcKernel();
    k.efficiency_scale = 100.0; // absurd tactic quality
    const auto t = m.timing(k, 1.0);
    const double floor_ns =
        k.flops / (0.95 * spec.gpu.peakTcGflops(k.prec));
    EXPECT_GE(static_cast<double>(t.duration), floor_ns);
}

} // namespace
} // namespace jetsim::gpu
