/**
 * @file
 * GPU engine tests: channel FIFO order, time multiplexing with
 * switch penalties and quanta, spatial (MPS-like) sharing, trace
 * hooks and profiler intrusion.
 */

#include "gpu/engine.hh"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "soc/board.hh"

namespace jetsim::gpu {
namespace {

struct Rig
{
    sim::EventQueue eq;
    soc::Board board{soc::orinNano(), eq};
    GpuEngine engine{board};
};

KernelDesc
kernel(double flops = 5e8)
{
    KernelDesc k;
    k.name = "k";
    k.flops = flops;
    k.bytes = 1e6;
    k.prec = soc::Precision::Fp16;
    k.tc = true;
    k.blocks = 512;
    return k;
}

TEST(GpuEngine, ExecutesSubmittedKernel)
{
    Rig r;
    const int ch = r.engine.createChannel("p0");
    const auto k = kernel();
    bool done = false;
    r.engine.submit(ch, &k, [&] { done = true; });
    r.eq.runAll();
    EXPECT_TRUE(done);
    EXPECT_EQ(r.engine.kernelsExecuted(), 1u);
}

TEST(GpuEngine, ChannelIsFifo)
{
    Rig r;
    const int ch = r.engine.createChannel("p0");
    const auto k = kernel();
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        r.engine.submit(ch, &k, [&, i] { order.push_back(i); });
    r.eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(GpuEngine, BusyWhileExecuting)
{
    Rig r;
    const int ch = r.engine.createChannel("p0");
    const auto k = kernel();
    r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::usec(10));
    EXPECT_TRUE(r.board.activity().gpu_busy);
    r.eq.runAll();
    EXPECT_FALSE(r.board.activity().gpu_busy);
}

TEST(GpuEngine, SingleChannelPaysNoSwitches)
{
    Rig r;
    const int ch = r.engine.createChannel("p0");
    const auto k = kernel();
    for (int i = 0; i < 10; ++i)
        r.engine.submit(ch, &k, nullptr);
    r.eq.runAll();
    EXPECT_EQ(r.engine.channelSwitches(), 0u);
}

TEST(GpuEngine, MultiChannelPaysSwitchPenalty)
{
    Rig r;
    const int a = r.engine.createChannel("a");
    const int b = r.engine.createChannel("b");
    const auto k = kernel();
    for (int i = 0; i < 4; ++i) {
        r.engine.submit(a, &k, nullptr);
        r.engine.submit(b, &k, nullptr);
    }
    r.eq.runAll();
    EXPECT_GT(r.engine.channelSwitches(), 0u);
}

TEST(GpuEngine, TwoChannelsShareFairly)
{
    Rig r;
    const int a = r.engine.createChannel("a");
    const int b = r.engine.createChannel("b");
    const auto k = kernel();
    int done_a = 0, done_b = 0;
    for (int i = 0; i < 20; ++i) {
        r.engine.submit(a, &k, [&] { ++done_a; });
        r.engine.submit(b, &k, [&] { ++done_b; });
    }
    // Run until roughly half the work is finished, then compare.
    r.eq.runUntil(sim::msec(2));
    EXPECT_NEAR(done_a, done_b, 8);
    r.eq.runAll();
    EXPECT_EQ(done_a, 20);
    EXPECT_EQ(done_b, 20);
}

TEST(GpuEngine, SerializationStretchesCompletionTime)
{
    // Two channels of work take about twice as long as one.
    const auto k = kernel();
    sim::Tick one, two;
    {
        Rig r;
        const int a = r.engine.createChannel("a");
        for (int i = 0; i < 10; ++i)
            r.engine.submit(a, &k, nullptr);
        r.eq.runAll();
        one = r.eq.now();
    }
    {
        Rig r;
        const int a = r.engine.createChannel("a");
        const int b = r.engine.createChannel("b");
        for (int i = 0; i < 10; ++i) {
            r.engine.submit(a, &k, nullptr);
            r.engine.submit(b, &k, nullptr);
        }
        r.eq.runAll();
        two = r.eq.now();
    }
    EXPECT_GT(two, static_cast<sim::Tick>(1.8 * one));
}

TEST(GpuEngine, TraceHookSeesEveryKernel)
{
    Rig r;
    const int ch = r.engine.createChannel("p0");
    const auto k = kernel();
    std::vector<KernelRecord> recs;
    r.engine.setTraceHook([&](const KernelRecord &rec) {
        recs.push_back(rec);
    });
    for (int i = 0; i < 6; ++i)
        r.engine.submit(ch, &k, nullptr);
    r.eq.runAll();
    ASSERT_EQ(recs.size(), 6u);
    for (const auto &rec : recs) {
        EXPECT_EQ(rec.desc, &k);
        EXPECT_LE(rec.submit, rec.start);
        EXPECT_LT(rec.start, rec.end);
    }
    // Back-to-back: each next kernel starts when the previous ends.
    for (std::size_t i = 1; i < recs.size(); ++i)
        EXPECT_EQ(recs[i].start, recs[i - 1].end);
}

TEST(GpuEngine, ExtraOverheadLengthensKernels)
{
    const auto k = kernel();
    sim::Tick base, instrumented;
    {
        Rig r;
        const int ch = r.engine.createChannel("p");
        r.engine.submit(ch, &k, nullptr);
        r.eq.runAll();
        base = r.eq.now();
    }
    {
        Rig r;
        r.engine.setExtraKernelOverhead(sim::usec(14));
        const int ch = r.engine.createChannel("p");
        r.engine.submit(ch, &k, nullptr);
        r.eq.runAll();
        instrumented = r.eq.now();
    }
    EXPECT_GE(instrumented, base + sim::usec(13));
}

TEST(GpuEngine, CompletionCallbackMaySubmitMore)
{
    Rig r;
    const int ch = r.engine.createChannel("p0");
    const auto k = kernel();
    int count = 0;
    std::function<void()> resubmit = [&] {
        if (++count < 5)
            r.engine.submit(ch, &k, resubmit);
    };
    r.engine.submit(ch, &k, resubmit);
    r.eq.runAll();
    EXPECT_EQ(count, 5);
}

TEST(GpuEngine, ChannelDepthTracksQueue)
{
    Rig r;
    const int ch = r.engine.createChannel("p0");
    const auto k = kernel();
    EXPECT_EQ(r.engine.channelDepth(ch), 0u);
    r.engine.submit(ch, &k, nullptr);
    r.engine.submit(ch, &k, nullptr);
    EXPECT_EQ(r.engine.channelDepth(ch), 2u);
    r.eq.runAll();
    EXPECT_EQ(r.engine.channelDepth(ch), 0u);
}

TEST(GpuEngine, DispatchWaitGrowsWithQueueing)
{
    Rig r;
    const int ch = r.engine.createChannel("p0");
    const auto k = kernel();
    for (int i = 0; i < 10; ++i)
        r.engine.submit(ch, &k, nullptr);
    r.eq.runAll();
    // The first kernel starts immediately, later ones waited.
    EXPECT_GT(r.engine.dispatchWait().max(),
              r.engine.dispatchWait().min());
}

// ------------------------------------------------ spatial (MPS) mode

TEST(GpuEngineSpatial, RunsChannelsConcurrently)
{
    Rig r;
    r.engine.setSpatialSharing(true);
    const int a = r.engine.createChannel("a");
    const int b = r.engine.createChannel("b");
    const auto k = kernel();
    sim::Tick done_a = 0, done_b = 0;
    r.engine.submit(a, &k, [&] { done_a = r.eq.now(); });
    r.engine.submit(b, &k, [&] { done_b = r.eq.now(); });
    r.eq.runAll();
    // Processor sharing: both finish at ~2x the solo duration, at
    // nearly the same time (no serialisation to 1x then 2x; the
    // residual gap is the per-kernel duration jitter).
    EXPECT_NEAR(static_cast<double>(done_a),
                static_cast<double>(done_b),
                static_cast<double>(done_a) * 0.10);
}

TEST(GpuEngineSpatial, SoloKernelRunsAtFullRate)
{
    const auto k = kernel();
    sim::Tick mux, spatial;
    {
        Rig r;
        const int ch = r.engine.createChannel("p");
        r.engine.submit(ch, &k, nullptr);
        r.eq.runAll();
        mux = r.eq.now();
    }
    {
        Rig r;
        r.engine.setSpatialSharing(true);
        const int ch = r.engine.createChannel("p");
        r.engine.submit(ch, &k, nullptr);
        r.eq.runAll();
        spatial = r.eq.now();
    }
    EXPECT_NEAR(static_cast<double>(spatial),
                static_cast<double>(mux),
                static_cast<double>(mux) * 0.1 + 1e4);
}

TEST(GpuEngineSpatial, NoChannelSwitchPenalty)
{
    Rig r;
    r.engine.setSpatialSharing(true);
    const int a = r.engine.createChannel("a");
    const int b = r.engine.createChannel("b");
    const auto k = kernel();
    for (int i = 0; i < 5; ++i) {
        r.engine.submit(a, &k, nullptr);
        r.engine.submit(b, &k, nullptr);
    }
    r.eq.runAll();
    EXPECT_EQ(r.engine.channelSwitches(), 0u);
    EXPECT_EQ(r.engine.kernelsExecuted(), 10u);
}

TEST(GpuEngineSpatial, PerChannelOrderPreserved)
{
    Rig r;
    r.engine.setSpatialSharing(true);
    const int a = r.engine.createChannel("a");
    const auto k = kernel();
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        r.engine.submit(a, &k, [&, i] { order.push_back(i); });
    r.eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

} // namespace
} // namespace jetsim::gpu
