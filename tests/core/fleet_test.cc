/**
 * @file
 * Fleet golden layer: for every zoo model x both boards, the sharded
 * engine's digest is bit-identical to the serial engine's across the
 * full shard x thread matrix — the acceptance matrix of the sharded
 * core. Plus unit coverage of the fleet layer itself.
 */

#include "core/fleet.hh"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "check/reporter.hh"
#include "core/digest.hh"
#include "soc/shard_map.hh"

namespace jetsim::core {
namespace {

FleetSpec
cell(const std::string &device, const std::string &model,
     int boards = 4)
{
    FleetSpec spec;
    for (int d = 0; d < boards; ++d) {
        FleetDevice dev;
        dev.device = device;
        dev.model = model;
        dev.precision = soc::Precision::Int8;
        dev.batch = 1;
        spec.devices.push_back(dev);
    }
    spec.balancer_rate = 300.0;
    spec.warmup = sim::msec(15);
    spec.duration = sim::msec(120);
    spec.seed = 7;
    return spec;
}

class FleetGolden
    : public ::testing::TestWithParam<
          std::tuple<const char *, const char *>>
{
};

TEST_P(FleetGolden, ShardMatrixBitIdenticalToSerial)
{
    check::ScopedCapture cap;
    const auto [device, model] = GetParam();
    const FleetSpec spec = cell(device, model);

    const FleetResult serial = runFleet(spec, {});
    const auto want = resultDigest(serial);
    // The run must have actually moved traffic, or the digests are
    // vacuously equal. (Completions can be zero on the slow board
    // with heavy models inside a short window — arrivals cannot.)
    ASSERT_TRUE(serial.all_deployed);
    ASSERT_GT(serial.dispatched, 0u);
    std::uint64_t arrived = 0;
    for (const auto &d : serial.devices)
        arrived += d.arrived;
    ASSERT_GT(arrived, 0u);
    ASSERT_GT(serial.events, 100u);

    for (const int shards : {1, 2, 4, 8})
        for (const int threads : {1, 2, 8}) {
            FleetOptions o;
            o.shards = shards;
            o.threads = threads;
            const FleetResult got = runFleet(spec, o);
            EXPECT_EQ(resultDigest(got), want)
                << spec.label() << " shards=" << shards
                << " threads=" << threads;
            EXPECT_EQ(got.events, serial.events);
        }
    EXPECT_EQ(cap.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ZooBothBoards, FleetGolden,
    ::testing::Combine(::testing::Values("orin-nano", "nano"),
                       ::testing::Values("resnet50", "fcn_resnet50",
                                         "yolov8n", "resnet18",
                                         "mobilenet_v2")),
    [](const auto &info) {
        std::string s = std::string(std::get<0>(info.param)) + "_" +
                        std::get<1>(info.param);
        for (auto &c : s)
            if (c == '-')
                c = '_';
        return s;
    });

FleetSpec
bigFleet(int boards, bool hierarchical)
{
    // Homogeneous wide fleet: cheap per-board model so hundreds of
    // boards stay test-sized; rate scaled so every board sees
    // traffic inside the short window.
    FleetSpec spec = cell("orin-nano", "mobilenet_v2", boards);
    spec.balancer_rate = 25.0 * boards;
    spec.warmup = sim::msec(4);
    spec.duration = sim::msec(30);
    spec.seed = 23;
    spec.hierarchical = hierarchical;
    return spec;
}

TEST(Fleet, SixteenShardMatrixBitIdenticalToSerial)
{
    // The 4-board golden cells clamp at 4 shards; the 16-shard
    // matrix row needs a wider fleet.
    check::ScopedCapture cap;
    const FleetSpec spec = bigFleet(20, false);
    const FleetResult serial = runFleet(spec, {});
    ASSERT_GT(serial.dispatched, 0u);
    const auto want = resultDigest(serial);
    for (const int threads : {1, 2, 8}) {
        FleetOptions o;
        o.shards = 16;
        o.threads = threads;
        const FleetResult got = runFleet(spec, o);
        EXPECT_EQ(resultDigest(got), want) << "threads=" << threads;
        EXPECT_EQ(got.events, serial.events);
    }
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Fleet, HierarchicalFleetBitIdenticalAcrossTopologies)
{
    // The two-hop root->sub->device dispatch must stay
    // topology-invariant: serial, merge fallback (lookahead 0) and
    // epoch-batched hierarchical paths all one digest, on a fleet
    // wide enough (256 boards) that the balancerReserved map
    // actually reserves shard 0.
    check::ScopedCapture cap;
    const FleetSpec spec = bigFleet(256, true);
    const FleetResult serial = runFleet(spec, {});
    ASSERT_TRUE(serial.all_deployed);
    ASSERT_GT(serial.dispatched, 0u);
    const auto want = resultDigest(serial);

    FleetOptions merge;
    merge.shards = 8;
    merge.threads = 1;
    merge.lookahead = 0;
    const FleetResult m = runFleet(spec, merge);
    EXPECT_EQ(resultDigest(m), want) << "merge fallback";
    EXPECT_EQ(m.events, serial.events);

    for (const int shards : {4, 16})
        for (const int threads : {1, 8}) {
            FleetOptions o;
            o.shards = shards;
            o.threads = threads;
            const FleetResult got = runFleet(spec, o);
            EXPECT_EQ(resultDigest(got), want)
                << "shards=" << shards << " threads=" << threads;
            EXPECT_EQ(got.events, serial.events);
        }
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Fleet, ThousandBoardFleetCompletesBitIdentical)
{
    // The headline acceptance run: 1000 boards, digests bit-identical
    // between serial, the lookahead-0 merge, and the epoch-batched
    // hierarchical path.
    check::ScopedCapture cap;
    FleetSpec spec = bigFleet(1000, true);
    spec.duration = sim::msec(12);
    const FleetResult serial = runFleet(spec, {});
    ASSERT_TRUE(serial.all_deployed);
    ASSERT_GT(serial.dispatched, 0u);
    const auto want = resultDigest(serial);

    FleetOptions merge;
    merge.shards = 16;
    merge.threads = 1;
    merge.lookahead = 0;
    EXPECT_EQ(resultDigest(runFleet(spec, merge)), want)
        << "lookahead=0 merge";

    FleetOptions batched;
    batched.shards = 16;
    batched.threads = 2;
    const FleetResult got = runFleet(spec, batched);
    EXPECT_EQ(resultDigest(got), want) << "epoch-batched";
    EXPECT_EQ(got.events, serial.events);
    // Batching must actually have fused windows: far fewer epochs
    // than root dispatch decisions would need one-by-one.
    EXPECT_LT(got.epochs, got.messages);
    EXPECT_EQ(cap.total(), 0u);
}

TEST(Fleet, HierarchicalLatencyIncludesFanoutHop)
{
    FleetSpec flat = cell("orin-nano", "resnet18", 2);
    flat.balancer_rate = 100.0;
    FleetSpec hier = flat;
    hier.hierarchical = true;
    hier.fanout_latency = sim::msec(3);
    const FleetResult a = runFleet(flat, {});
    const FleetResult b = runFleet(hier, {});
    ASSERT_GT(a.total_throughput, 0.0);
    EXPECT_GE(b.devices[0].p50_ms, a.devices[0].p50_ms + 2.5);
}

TEST(Fleet, BalancerReservedMapShape)
{
    const auto m = soc::ShardMap::balancerReserved(6, 4);
    EXPECT_EQ(m.shards(), 4);
    EXPECT_TRUE(m.devicesOn(0).empty()); // root-only shard
    for (int d = 0; d < 6; ++d)
        EXPECT_EQ(m.shardOf(d), 1 + d % 3);
    // Clamped: never an empty device shard.
    const auto tight = soc::ShardMap::balancerReserved(2, 16);
    EXPECT_EQ(tight.shards(), 3);
    // Degenerate serial topology: no shard to reserve.
    const auto serial = soc::ShardMap::balancerReserved(5, 1);
    EXPECT_EQ(serial.shards(), 1);
    EXPECT_EQ(serial.devicesOn(0).size(), 5u);
}

TEST(Fleet, LabelRunLengthCompressesWideFleets)
{
    FleetSpec spec = cell("orin-nano", "mobilenet_v2", 256);
    spec.hierarchical = true;
    const std::string l = spec.label();
    EXPECT_NE(l.find("256x orin-nano/mobilenet_v2/int8 b1"),
              std::string::npos)
        << l;
    EXPECT_NE(l.find(" h"), std::string::npos) << l;
    EXPECT_LT(l.size(), 120u) << l;
    // Heterogeneous runs stay distinct.
    FleetSpec het = cell("orin-nano", "resnet18", 2);
    het.devices[1].model = "yolov8n";
    EXPECT_NE(het.label().find(" + "), std::string::npos);
}

TEST(Fleet, RepeatRunsAreBitIdentical)
{
    const FleetSpec spec = cell("orin-nano", "resnet50", 3);
    FleetOptions o;
    o.shards = 3;
    o.threads = 2;
    EXPECT_EQ(resultDigest(runFleet(spec, o)),
              resultDigest(runFleet(spec, o)));
}

TEST(Fleet, BalancerSpreadsLoadRoundRobin)
{
    const FleetSpec spec = cell("orin-nano", "resnet18", 4);
    const FleetResult r = runFleet(spec, {});
    ASSERT_EQ(r.devices.size(), 4u);
    // Round-robin dispatch: arrivals differ by at most a rotation.
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto &d : r.devices) {
        lo = std::min(lo, d.arrived);
        hi = std::max(hi, d.arrived);
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST(Fleet, LatencyIncludesDispatchHop)
{
    // Same fleet, two dispatch latencies: the slower network shifts
    // the fleet p50 by at least the added hop.
    FleetSpec fast = cell("orin-nano", "resnet18", 2);
    fast.balancer_rate = 100.0;
    FleetSpec slow = fast;
    slow.dispatch_latency = fast.dispatch_latency + sim::msec(5);
    const FleetResult a = runFleet(fast, {});
    const FleetResult b = runFleet(slow, {});
    ASSERT_GT(a.total_throughput, 0.0);
    EXPECT_GE(b.devices[0].p50_ms, a.devices[0].p50_ms + 4.0);
}

TEST(Fleet, LocalTrafficRidesAlongBalancerTraffic)
{
    FleetSpec spec = cell("orin-nano", "resnet18", 2);
    spec.balancer_rate = 80.0;
    FleetSpec with_local = spec;
    with_local.devices[0].local_rate = 60.0;
    const FleetResult base = runFleet(spec, {});
    const FleetResult extra = runFleet(with_local, {});
    EXPECT_GT(extra.devices[0].arrived, base.devices[0].arrived);
}

TEST(Fleet, HeterogeneousFleetDigestsStable)
{
    FleetSpec spec;
    const char *const models[] = {"resnet50", "yolov8n",
                                  "mobilenet_v2"};
    const char *const boards[] = {"orin-nano", "nano", "orin-nano"};
    for (int d = 0; d < 3; ++d) {
        FleetDevice dev;
        dev.device = boards[d];
        dev.model = models[d];
        dev.precision = soc::Precision::Fp16;
        spec.devices.push_back(dev);
    }
    spec.balancer_rate = 150.0;
    spec.warmup = sim::msec(10);
    spec.duration = sim::msec(40);
    const auto want = resultDigest(runFleet(spec, {}));
    for (const int shards : {2, 3}) {
        FleetOptions o;
        o.shards = shards;
        o.threads = 2;
        EXPECT_EQ(resultDigest(runFleet(spec, o)), want)
            << "shards=" << shards;
    }
}

} // namespace
} // namespace jetsim::core
