/**
 * @file
 * Property-style invariants swept over the experiment grid with
 * parameterized tests: results must stay physical for every cell.
 */

#include "core/profiler.hh"

#include <gtest/gtest.h>

#include <tuple>

#include "soc/device_spec.hh"

namespace jetsim::core {
namespace {

using Cell = std::tuple<const char *, const char *, soc::Precision,
                        int, int>; // device, model, prec, batch, procs

ExperimentResult
run(const Cell &c, Phase phase = Phase::Light)
{
    ExperimentSpec s;
    s.device = std::get<0>(c);
    s.model = std::get<1>(c);
    s.precision = std::get<2>(c);
    s.batch = std::get<3>(c);
    s.processes = std::get<4>(c);
    s.phase = phase;
    s.warmup = sim::msec(200);
    s.duration = sim::sec(1);
    return runExperiment(s);
}

class GridInvariants : public ::testing::TestWithParam<Cell>
{
};

TEST_P(GridInvariants, PhysicalBounds)
{
    const auto r = run(GetParam());
    const auto dev = soc::deviceByName(r.spec.device);

    if (!r.all_deployed) {
        EXPECT_LT(r.deployed_count, r.spec.processes);
        return;
    }

    // SoC level.
    EXPECT_GT(r.total_throughput, 0.0);
    EXPECT_GE(r.avg_power_w, dev.power.idle_w - 0.01);
    EXPECT_LE(r.max_power_w, dev.power.cap_w + 0.4);

    // GPU level.
    EXPECT_GE(r.gpu_util_pct, 0.0);
    EXPECT_LE(r.gpu_util_pct, 100.0001);
    EXPECT_GT(r.mem_pct, 0.0);
    EXPECT_LE(r.mem_pct, 100.0);
    EXPECT_GE(r.final_freq_frac,
              dev.gpu.min_freq_ghz / dev.gpu.max_freq_ghz - 1e-9);
    EXPECT_LE(r.final_freq_frac, 1.0);

    // Kernel level.
    EXPECT_GT(r.mean.ec_ms, 0.0);
    EXPECT_GE(r.mean.blocking_ms_per_ec, 0.0);
    EXPECT_GE(r.mean.launch_ms_per_ec, 0.0);
    EXPECT_LT(r.mean.launch_ms_per_ec, r.mean.ec_ms);

    // EC period and throughput must cohere:
    // throughput = processes * batch / EC.
    const double implied =
        r.spec.processes * r.spec.batch / (r.mean.ec_ms / 1e3);
    EXPECT_NEAR(r.total_throughput, implied,
                0.25 * r.total_throughput);
}

TEST_P(GridInvariants, DeepPhaseCountersInRange)
{
    const auto r = run(GetParam(), Phase::Deep);
    if (!r.all_deployed)
        return;
    ASSERT_FALSE(r.sm_active.empty());
    EXPECT_GE(r.sm_active.min(), 0.0);
    EXPECT_LE(r.sm_active.max(), 100.0);
    EXPECT_GE(r.issue_slot.min(), 0.0);
    // Paper: issue-slot utilisation never exceeds ~80 %.
    EXPECT_LE(r.issue_slot.max(), 85.0);
    EXPECT_GE(r.tc_util.min(), 0.0);
    EXPECT_LE(r.tc_util.max(), 100.0);
    const auto dev = soc::deviceByName(r.spec.device);
    if (!dev.gpu.hasTensorCores()) {
        EXPECT_DOUBLE_EQ(r.tc_util.max(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, GridInvariants,
    ::testing::Values(
        Cell{"orin-nano", "resnet50", soc::Precision::Int8, 1, 1},
        Cell{"orin-nano", "resnet50", soc::Precision::Fp32, 4, 2},
        Cell{"orin-nano", "fcn_resnet50", soc::Precision::Tf32, 1, 1},
        Cell{"orin-nano", "fcn_resnet50", soc::Precision::Int8, 2, 4},
        Cell{"orin-nano", "yolov8n", soc::Precision::Int8, 8, 1},
        Cell{"orin-nano", "yolov8n", soc::Precision::Fp16, 1, 8},
        Cell{"nano", "resnet50", soc::Precision::Fp16, 2, 2},
        Cell{"nano", "resnet50", soc::Precision::Int8, 1, 1},
        Cell{"nano", "yolov8n", soc::Precision::Fp16, 4, 1},
        Cell{"nano", "fcn_resnet50", soc::Precision::Fp16, 1, 4}));

/** Monotonicity sweeps. */
TEST(Monotonicity, MemoryGrowsWithProcesses)
{
    double prev = 0.0;
    for (int procs : {1, 2, 4}) {
        const auto r = run(Cell{"orin-nano", "yolov8n",
                                soc::Precision::Int8, 1, procs});
        EXPECT_GT(r.workload_mem_mb, prev);
        prev = r.workload_mem_mb;
    }
}

TEST(Monotonicity, MemoryGrowsWithBatch)
{
    double prev = 0.0;
    for (int batch : {1, 4, 16}) {
        const auto r = run(Cell{"orin-nano", "yolov8n",
                                soc::Precision::Int8, batch, 1});
        EXPECT_GT(r.workload_mem_mb, prev);
        prev = r.workload_mem_mb;
    }
}

TEST(Monotonicity, ThroughputPerProcessFallsWithProcesses)
{
    double prev = 1e18;
    for (int procs : {1, 2, 4, 8}) {
        const auto r = run(Cell{"orin-nano", "resnet50",
                                soc::Precision::Int8, 1, procs});
        EXPECT_LT(r.throughput_per_process, prev);
        prev = r.throughput_per_process;
    }
}

TEST(Monotonicity, ThroughputPerProcessRisesWithBatch)
{
    // Non-decreasing (within noise), with a real overall gain: the
    // paper's batch benefit plateaus at the high end.
    double first = 0.0, prev = 0.0;
    for (int batch : {1, 4, 16}) {
        const auto r = run(Cell{"orin-nano", "yolov8n",
                                soc::Precision::Int8, batch, 1});
        if (batch == 1)
            first = r.throughput_per_process;
        EXPECT_GE(r.throughput_per_process, prev * 0.97);
        prev = r.throughput_per_process;
    }
    EXPECT_GT(prev, 1.1 * first);
}

TEST(Monotonicity, EcDurationGrowsWithProcesses)
{
    double prev = 0.0;
    for (int procs : {1, 2, 4, 8}) {
        const auto r = run(Cell{"orin-nano", "resnet50",
                                soc::Precision::Int8, 1, procs});
        EXPECT_GT(r.mean.ec_ms, prev);
        prev = r.mean.ec_ms;
    }
}

} // namespace
} // namespace jetsim::core
