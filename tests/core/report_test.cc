/**
 * @file
 * Markdown report rendering tests.
 */

#include "core/report.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/profiler.hh"

namespace jetsim::core {
namespace {

ExperimentSpec
quick()
{
    ExperimentSpec s;
    s.model = "resnet50";
    s.precision = soc::Precision::Int8;
    s.warmup = sim::msec(200);
    s.duration = sim::sec(1);
    return s;
}

TEST(Report, ContainsAllSections)
{
    const auto [light, deep] = runTwoPhase(quick());
    const auto doc = renderReport(light, deep);

    EXPECT_NE(doc.find("# Profiling report"), std::string::npos);
    EXPECT_NE(doc.find("## Phase 1"), std::string::npos);
    EXPECT_NE(doc.find("## Phase 2"), std::string::npos);
    EXPECT_NE(doc.find("Utilisation counters"), std::string::npos);
    EXPECT_NE(doc.find("Kernel-level decomposition"),
              std::string::npos);
    EXPECT_NE(doc.find("**Bottleneck:**"), std::string::npos);
    EXPECT_NE(doc.find("resnet50"), std::string::npos);
    EXPECT_NE(doc.find("int8"), std::string::npos);
}

TEST(Report, NumbersMatchResults)
{
    const auto [light, deep] = runTwoPhase(quick());
    const auto doc = renderReport(light, deep);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", light.total_throughput);
    EXPECT_NE(doc.find(buf), std::string::npos);
}

TEST(Report, OomReportShortCircuits)
{
    ExperimentSpec s = quick();
    s.device = "nano";
    s.model = "fcn_resnet50";
    s.processes = 4;
    const auto [light, deep] = runTwoPhase(s);
    const auto doc = renderReport(light, deep);
    EXPECT_NE(doc.find("FAILED (out of memory)"), std::string::npos);
    EXPECT_EQ(doc.find("## Phase 1"), std::string::npos);
}

TEST(Report, WriteReportCreatesFile)
{
    const std::string path = "/tmp/jetsim_report_test.md";
    ASSERT_TRUE(writeReport(quick(), path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("# Profiling report"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace jetsim::core
