/**
 * @file
 * Concurrency stress for core::Runner and the process-wide state it
 * exposed: an oversubscribed pool (threads >> cores) hammering mixed
 * and plain specs with progress callbacks, plus regression tests for
 * the latent global-state races the pool surfaced (the sim::logging
 * sink, the JetSan check::Reporter, the models/zoo and
 * soc::findDevice static tables). tools/ci.sh runs this binary under
 * JETSIM_SANITIZE=thread, where TSan turns any missing
 * synchronisation into a hard failure; the digest comparisons turn
 * any cross-thread *value* leakage into one too.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "check/reporter.hh"
#include "core/digest.hh"
#include "core/env.hh"
#include "core/profiler.hh"
#include "core/runner.hh"
#include "models/zoo.hh"
#include "sim/logging.hh"
#include "soc/device_spec.hh"

namespace jetsim {
namespace {

core::ExperimentSpec
tinySpec(std::uint64_t seed, int batch, int procs)
{
    core::ExperimentSpec s;
    s.device = seed % 2 ? "orin-nano" : "nano";
    s.model = seed % 3 ? "resnet50" : "yolov8n";
    s.precision =
        seed % 2 ? soc::Precision::Fp16 : soc::Precision::Int8;
    s.batch = batch;
    s.processes = procs;
    s.warmup = sim::msec(20);
    s.duration = sim::msec(60);
    s.seed = seed;
    return s;
}

TEST(RunnerStress, OversubscribedPoolStaysDeterministic)
{
    // Threads >> cores: every scheduling interleaving the host OS can
    // produce must yield the same bits.
    std::vector<core::ExperimentSpec> specs;
    for (std::uint64_t i = 0; i < 24; ++i)
        specs.push_back(tinySpec(i + 1, 1 + static_cast<int>(i % 3),
                                 1 + static_cast<int>(i % 2)));

    core::Runner serial(1);
    const auto reference = serial.run(specs);

    std::atomic<int> progress_calls{0};
    core::Runner oversub(32);
    const auto results =
        oversub.run(specs, [&](const std::string &) {
            progress_calls.fetch_add(1, std::memory_order_relaxed);
        });

    EXPECT_EQ(progress_calls.load(), static_cast<int>(specs.size()));
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(core::resultDigest(results[i]),
                  core::resultDigest(reference[i]))
            << specs[i].label();
}

TEST(RunnerStress, OversubscribedMixedBatch)
{
    std::vector<core::MixedExperimentSpec> specs;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        core::MixedExperimentSpec m;
        m.device = seed % 2 ? "orin-nano" : "nano";
        m.workloads = {
            {"resnet50", soc::Precision::Int8, 1, 1},
            {"yolov8n", soc::Precision::Fp16, 1, 1},
        };
        m.warmup = sim::msec(20);
        m.duration = sim::msec(60);
        m.seed = seed;
        specs.push_back(m);
    }

    core::Runner serial(1);
    core::Runner oversub(16);
    const auto a = serial.runMixed(specs);
    const auto b = oversub.runMixed(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(core::resultDigest(a[i]), core::resultDigest(b[i]));
}

// ---------------------------------------------------------------
// Regression tests for the global state the pool exposed. Each runs
// the hazardous operation on two raw threads; under TSan a relapse
// is a hard failure, and the digest diffs catch value corruption
// even in plain builds.
// ---------------------------------------------------------------

TEST(GlobalState, TwoThreadsSameSpecIdenticalDigests)
{
    const auto spec = tinySpec(5, 2, 2);
    std::uint64_t d1 = 0;
    std::uint64_t d2 = 0;
    std::thread t1([&] {
        d1 = core::resultDigest(core::runExperiment(spec));
    });
    std::thread t2([&] {
        d2 = core::resultDigest(core::runExperiment(spec));
    });
    t1.join();
    t2.join();
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1,
              core::resultDigest(core::runExperiment(spec)));
}

TEST(GlobalState, ConcurrentLoggingIsRaceFree)
{
    // inform()/warn() read the process-wide sink pointer on every
    // call; two logging threads plus a sink swap exercise the
    // atomic exchange.
    std::thread writer([] {
        for (int i = 0; i < 200; ++i)
            sim::inform("stress logging line %d", i);
    });
    std::thread swapper([] {
        for (int i = 0; i < 50; ++i) {
            const auto prev =
                sim::setLogSink([](sim::LogLevel, const std::string &) {
                });
            sim::setLogSink(prev);
        }
    });
    writer.join();
    swapper.join();
}

TEST(GlobalState, ReporterCountsAreExactUnderContention)
{
    check::ScopedCapture cap;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 250;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                check::Reporter::instance().report(
                    check::Severity::Warning,
                    check::Invariant::Plausibility,
                    "tests.runner_stress", check::kTimeUnknown,
                    "thread %d event %d", t, i);
        });
    }
    for (auto &t : threads)
        t.join();
    // Pre-mutex, the unsynchronised ++total_ dropped increments.
    EXPECT_EQ(cap.total(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(cap.count(check::Invariant::Plausibility),
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(GlobalState, EnvSnapshotSafeFromConcurrentFirstTouch)
{
    // core::env() replaced the scattered getenv calls with a magic-
    // static snapshot; concurrent first-touch from worker threads
    // must initialise exactly once and every reader must see the
    // same immutable struct (under TSan an init race is fatal).
    const core::Env *seen[4] = {};
    std::vector<std::thread> threads;
    for (auto *&slot : seen)
        threads.emplace_back([&slot] { slot = &core::env(); });
    for (auto &t : threads)
        t.join();
    for (const auto *p : seen)
        EXPECT_EQ(p, &core::env());
}

TEST(GlobalState, ViolationsSnapshotIsSafeUnderContention)
{
    // Unlike violations() (quiescent-only reference), the snapshot
    // accessor copies under the reporter lock and so may race with
    // live reporters; the copy must be internally consistent.
    check::ScopedCapture cap;
    constexpr int kEvents = 300;
    std::thread producer([] {
        for (int i = 0; i < kEvents; ++i)
            check::Reporter::instance().report(
                check::Severity::Warning,
                check::Invariant::Plausibility,
                "tests.runner_stress", check::kTimeUnknown,
                "snapshot race %d", i);
    });
    std::size_t max_seen = 0;
    for (int i = 0; i < 50; ++i) {
        const auto snap = cap.violationsSnapshot();
        EXPECT_GE(snap.size(), max_seen); // append-only growth
        max_seen = snap.size();
        for (const auto &v : snap)
            EXPECT_EQ(v.invariant, check::Invariant::Plausibility);
    }
    producer.join();
    EXPECT_EQ(cap.total(), static_cast<std::uint64_t>(kEvents));
}

TEST(GlobalState, StaticTablesSafeFromTwoThreads)
{
    // models/zoo and the soc device tables are function-local
    // statics; concurrent first-touch and lookups must be safe and
    // yield identical tables on both threads.
    auto probe = [] {
        std::size_t layers = 0;
        for (const auto &name : models::allModelNames())
            layers += models::modelByName(name).layers().size();
        std::size_t devices = 0;
        for (const auto &name : soc::deviceNames())
            devices += soc::findDevice(name).has_value() ? 1 : 0;
        return layers + 1000 * devices;
    };
    std::size_t a = 0;
    std::size_t b = 0;
    std::thread t1([&] { a = probe(); });
    std::thread t2([&] { b = probe(); });
    t1.join();
    t2.join();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, probe());
}

} // namespace
} // namespace jetsim
