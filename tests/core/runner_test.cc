/**
 * @file
 * Golden determinism tests for core::Runner: the parallel executor
 * must be *bit-identical* to the serial path. For a representative
 * grid on both boards, every cell's core::resultDigest under
 * threads=N (N in {2, 8}) must equal the threads=1 digest, across
 * two repeated runs — the executable form of this PR's proof
 * obligation. Also covers submission-order results, serialized
 * in-order progress delivery, JETSIM_THREADS resolution, and the
 * mixed (multi-tenant) path.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/reporter.hh"
#include "core/digest.hh"
#include "core/profiler.hh"
#include "core/env.hh"
#include "core/runner.hh"
#include "core/sweep.hh"

namespace jetsim {
namespace {

core::ExperimentSpec
baseSpec(const std::string &device)
{
    core::ExperimentSpec s;
    s.device = device;
    s.model = "resnet50";
    s.precision = soc::Precision::Fp16;
    s.warmup = sim::msec(50);
    s.duration = sim::msec(200);
    s.seed = 11;
    return s;
}

/** Representative grid: batch x processes x phase on one board. */
std::vector<core::ExperimentSpec>
grid(const std::string &device)
{
    std::vector<core::ExperimentSpec> specs;
    for (const int procs : {1, 2}) {
        for (const int batch : {1, 4}) {
            auto s = baseSpec(device);
            s.batch = batch;
            s.processes = procs;
            specs.push_back(s);
        }
    }
    // One deep-phase cell so counter CDFs and kernel spans are in
    // the digests too.
    auto deep = baseSpec(device);
    deep.phase = core::Phase::Deep;
    specs.push_back(deep);
    return specs;
}

std::vector<std::uint64_t>
digestsOf(const std::vector<core::ExperimentResult> &results)
{
    std::vector<std::uint64_t> ds;
    ds.reserve(results.size());
    for (const auto &r : results)
        ds.push_back(core::resultDigest(r));
    return ds;
}

class RunnerGolden : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RunnerGolden, ParallelBitIdenticalToSerial)
{
    check::ScopedCapture cap;
    const auto specs = grid(GetParam());

    core::Runner serial(1);
    const auto reference = digestsOf(serial.run(specs));

    for (const int n : {2, 8}) {
        for (int repeat = 0; repeat < 2; ++repeat) {
            core::Runner parallel(n);
            ASSERT_EQ(parallel.threads(), n);
            const auto got = digestsOf(parallel.run(specs));
            ASSERT_EQ(got.size(), reference.size());
            for (std::size_t i = 0; i < reference.size(); ++i)
                EXPECT_EQ(got[i], reference[i])
                    << "cell " << specs[i].label() << " diverged at "
                    << n << " threads (repeat " << repeat << ")";
        }
    }
    EXPECT_EQ(cap.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothBoards, RunnerGolden,
                         ::testing::Values("orin-nano", "nano"));

TEST(Runner, SerialPathMatchesDirectRunExperiment)
{
    const auto spec = baseSpec("orin-nano");
    core::Runner serial(1);
    const auto via_runner = serial.run({spec});
    ASSERT_EQ(via_runner.size(), 1u);
    EXPECT_EQ(core::resultDigest(via_runner[0]),
              core::resultDigest(core::runExperiment(spec)));
}

TEST(Runner, ResultsInSubmissionOrder)
{
    const auto specs = grid("orin-nano");
    core::Runner runner(4);
    const auto results = runner.run(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(results[i].spec.label(), specs[i].label());
}

TEST(Runner, ProgressSerializedAndInSubmissionOrder)
{
    const auto specs = grid("orin-nano");
    std::vector<std::string> seen;
    core::Runner runner(8);
    // The callback appends without its own lock: Runner guarantees
    // serialized delivery (TSan would flag a violation).
    runner.run(specs, [&](const std::string &label) {
        seen.push_back(label);
    });
    ASSERT_EQ(seen.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(seen[i], specs[i].label());
}

TEST(Runner, MixedSpecsParallelBitIdentical)
{
    std::vector<core::MixedExperimentSpec> specs;
    for (const std::uint64_t seed : {1, 2, 3, 4}) {
        core::MixedExperimentSpec m;
        m.device = "orin-nano";
        m.workloads = {
            {"resnet50", soc::Precision::Int8, 1, 2},
            {"yolov8n", soc::Precision::Fp16, 2, 1},
        };
        m.warmup = sim::msec(50);
        m.duration = sim::msec(200);
        m.seed = seed;
        specs.push_back(m);
    }

    core::Runner serial(1);
    core::Runner parallel(4);
    const auto a = serial.runMixed(specs);
    const auto b = parallel.runMixed(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(core::resultDigest(a[i]), core::resultDigest(b[i]));
}

TEST(Runner, SweepsMatchLegacySerialResults)
{
    // The sweep helpers are now Runner-backed; their output must
    // stay bit-identical to the pre-Runner cell-by-cell loop.
    auto base = baseSpec("orin-nano");
    const std::vector<int> batches = {1, 2};
    const std::vector<int> procs = {1, 2};

    const auto swept = core::sweepGrid(base, batches, procs);
    ASSERT_EQ(swept.size(), batches.size() * procs.size());
    std::size_t i = 0;
    for (const int p : procs) {
        for (const int b : batches) {
            auto cell = base;
            cell.batch = b;
            cell.processes = p;
            EXPECT_EQ(core::resultDigest(swept[i]),
                      core::resultDigest(core::runExperiment(cell)));
            ++i;
        }
    }
}

TEST(Runner, ThreadResolutionHonoursEnvOverride)
{
    // Runner reads the cached startup environment (core::env()), so
    // runtime setenv calls must be followed by a quiescent reload.
    ::setenv("JETSIM_THREADS", "3", 1);
    core::reloadEnv();
    EXPECT_EQ(core::Runner::resolveThreads(0), 3);
    // An explicit request beats the environment.
    EXPECT_EQ(core::Runner::resolveThreads(5), 5);
    ::setenv("JETSIM_THREADS", "1", 1);
    core::reloadEnv();
    core::Runner serial;
    EXPECT_EQ(serial.threads(), 1);
    ::unsetenv("JETSIM_THREADS");
    core::reloadEnv();
    EXPECT_GE(core::Runner::resolveThreads(0), 1);
}

TEST(Runner, EmptyBatchIsANoOp)
{
    core::Runner runner(4);
    bool called = false;
    const auto results = runner.run(
        {}, [&](const std::string &) { called = true; });
    EXPECT_TRUE(results.empty());
    EXPECT_FALSE(called);
}

} // namespace
} // namespace jetsim
