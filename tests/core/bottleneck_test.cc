/**
 * @file
 * Bottleneck classification and observation-engine tests.
 */

#include "core/bottleneck.hh"

#include <gtest/gtest.h>

#include "core/profiler.hh"

namespace jetsim::core {
namespace {

ExperimentResult
synthetic()
{
    ExperimentResult r;
    r.spec.device = "orin-nano";
    r.all_deployed = true;
    r.deployed_count = 1;
    r.mean.deployed = true;
    r.mean.ec_ms = 10.0;
    r.mean.launch_ms_per_ec = 0.5;
    r.mean.blocking_ms_per_ec = 0.1;
    r.mean.resched_ms_per_ec = 0.0;
    r.mean.cpu_ms_per_ec = 1.0;
    r.final_freq_frac = 1.0;
    return r;
}

TEST(Bottleneck, GpuComputeIsTheQuietDefault)
{
    const auto b = analyzeBottleneck(synthetic());
    EXPECT_EQ(b.primary, Bottleneck::GpuCompute);
    EXPECT_DOUBLE_EQ(b.ec_ms, 10.0);
}

TEST(Bottleneck, MemoryCapacityWinsOverEverything)
{
    auto r = synthetic();
    r.all_deployed = false;
    r.spec.processes = 4;
    r.deployed_count = 3;
    r.mean.blocking_ms_per_ec = 9.0;
    const auto b = analyzeBottleneck(r);
    EXPECT_EQ(b.primary, Bottleneck::MemoryCapacity);
    EXPECT_NE(b.explanation.find("3/4"), std::string::npos);
}

TEST(Bottleneck, BlockingDominanceDetected)
{
    auto r = synthetic();
    r.mean.blocking_ms_per_ec = 2.0;
    r.mean.resched_ms_per_ec = 1.0;
    const auto b = analyzeBottleneck(r);
    EXPECT_EQ(b.primary, Bottleneck::CpuBlocking);
}

TEST(Bottleneck, PowerThrottleDetected)
{
    auto r = synthetic();
    r.dvfs_throttle_events = 20;
    r.final_freq_frac = 0.6;
    const auto b = analyzeBottleneck(r);
    EXPECT_EQ(b.primary, Bottleneck::PowerThrottle);
}

TEST(Bottleneck, LaunchBoundDetected)
{
    auto r = synthetic();
    r.mean.launch_ms_per_ec = 4.0;
    const auto b = analyzeBottleneck(r);
    EXPECT_EQ(b.primary, Bottleneck::KernelLaunch);
}

TEST(Bottleneck, NamesAreStable)
{
    EXPECT_STREQ(bottleneckName(Bottleneck::GpuCompute),
                 "gpu-compute");
    EXPECT_STREQ(bottleneckName(Bottleneck::MemoryCapacity),
                 "memory-capacity");
}

TEST(Observations, EmptyInputYieldsNothing)
{
    EXPECT_TRUE(makeObservations({}).empty());
}

TEST(Observations, BestPrecisionPerDevice)
{
    std::vector<ExperimentResult> rs;
    for (auto p : {soc::Precision::Int8, soc::Precision::Fp32}) {
        auto r = synthetic();
        r.spec.model = "resnet50";
        r.spec.precision = p;
        r.spec.processes = 1;
        r.total_throughput =
            p == soc::Precision::Int8 ? 400.0 : 40.0;
        rs.push_back(r);
    }
    const auto obs = makeObservations(rs);
    bool found = false;
    for (const auto &o : obs)
        if (o.id == "best-precision") {
            found = true;
            EXPECT_NE(o.text.find("int8"), std::string::npos);
        }
    EXPECT_TRUE(found);
}

TEST(Observations, OomIsSurfaced)
{
    auto r = synthetic();
    r.all_deployed = false;
    r.spec.processes = 4;
    r.deployed_count = 3;
    const auto obs = makeObservations({r});
    bool found = false;
    for (const auto &o : obs)
        found |= o.id == "oom";
    EXPECT_TRUE(found);
}

TEST(Observations, RealRunsProduceTakeaways)
{
    // End to end: a small sweep should yield at least the power
    // envelope and best-precision statements.
    std::vector<ExperimentResult> rs;
    for (auto p : {soc::Precision::Int8, soc::Precision::Fp32}) {
        ExperimentSpec s;
        s.model = "resnet50";
        s.precision = p;
        s.warmup = sim::msec(200);
        s.duration = sim::sec(1);
        rs.push_back(runExperiment(s));
    }
    const auto obs = makeObservations(rs);
    EXPECT_GE(obs.size(), 2u);
}

} // namespace
} // namespace jetsim::core
