/**
 * @file
 * Calibration anchors: the quantitative claims quoted in the paper's
 * text, asserted with generous tolerances (we reproduce shapes and
 * rough magnitudes, not testbed-exact numbers).
 *
 * Paper anchors covered:
 *  - S6.1.1  int8 speed-ups on Orin Nano (9.75x / 12x / ~3x);
 *            fp16 optimal on Jetson Nano; memory grows with precision
 *  - S6.1.2  FCN tf32/fp32 = 12/5 img/s; fp32 power drop;
 *            Nano fp16 ~0.125 W/img; caps 7 W / 5 W
 *  - S6.2.1  YoloV8n T/P 210 -> 320 over batch; T/P falls with
 *            processes; FCN x4 OOM on Nano, ResNet50 x4 fits
 *  - S7      blocking appears past the heavy-core count; EC doubles
 *            on Nano at 4 processes
 */

#include "core/profiler.hh"

#include <gtest/gtest.h>

#include <map>

namespace jetsim::core {
namespace {

ExperimentResult
run(const std::string &dev, const std::string &model,
    soc::Precision prec, int batch = 1, int procs = 1)
{
    ExperimentSpec s;
    s.device = dev;
    s.model = model;
    s.precision = prec;
    s.batch = batch;
    s.processes = procs;
    s.warmup = sim::msec(250);
    s.duration = sim::sec(2);
    return runExperiment(s);
}

using soc::Precision;

TEST(Calibration, OrinResnetInt8SpeedupNearPaper)
{
    const auto i8 = run("orin-nano", "resnet50", Precision::Int8);
    const auto f32 = run("orin-nano", "resnet50", Precision::Fp32);
    const double speedup = i8.total_throughput / f32.total_throughput;
    EXPECT_GT(speedup, 6.5);  // paper: 9.75x
    EXPECT_LT(speedup, 13.0);
}

TEST(Calibration, OrinFcnInt8SpeedupNearPaper)
{
    const auto i8 = run("orin-nano", "fcn_resnet50", Precision::Int8);
    const auto f32 = run("orin-nano", "fcn_resnet50", Precision::Fp32);
    const double speedup = i8.total_throughput / f32.total_throughput;
    EXPECT_GT(speedup, 8.0);  // paper: 12x
    EXPECT_LT(speedup, 18.0);
}

TEST(Calibration, OrinFcnAbsoluteThroughputNearPaper)
{
    // Paper S6.1.2: tf32 ~12 img/s, fp32 ~5 img/s.
    const auto tf = run("orin-nano", "fcn_resnet50", Precision::Tf32);
    const auto f32 = run("orin-nano", "fcn_resnet50", Precision::Fp32);
    EXPECT_NEAR(tf.total_throughput, 12.0, 5.0);
    EXPECT_NEAR(f32.total_throughput, 5.0, 2.5);
}

TEST(Calibration, OrinInt8WinsEveryModel)
{
    for (const char *model :
         {"resnet50", "fcn_resnet50", "yolov8n"}) {
        std::map<Precision, double> tput;
        for (auto p : soc::kAllPrecisions)
            tput[p] = run("orin-nano", model, p).total_throughput;
        for (auto p : {Precision::Fp16, Precision::Tf32,
                       Precision::Fp32})
            EXPECT_GE(tput[Precision::Int8], tput[p]) << model;
    }
}

TEST(Calibration, NanoFp16WinsEveryModel)
{
    for (const char *model : {"resnet50", "yolov8n"}) {
        std::map<Precision, double> tput;
        for (auto p : soc::kAllPrecisions)
            tput[p] = run("nano", model, p).total_throughput;
        for (auto p :
             {Precision::Int8, Precision::Tf32, Precision::Fp32})
            EXPECT_GT(tput[Precision::Fp16], tput[p]) << model;
    }
}

TEST(Calibration, NanoYoloFp16RoughlyPaperLevel)
{
    // Paper: ~20 img/s (we land within ~2x).
    const auto r = run("nano", "yolov8n", Precision::Fp16);
    EXPECT_GT(r.total_throughput, 10.0);
    EXPECT_LT(r.total_throughput, 45.0);
}

TEST(Calibration, NanoFp16EnergyPerImageNearPaper)
{
    // Paper: ResNet50 ~0.125 W/img fp16, and fp16 about half the
    // per-image power of the fp32-path precisions.
    const auto f16 = run("nano", "resnet50", Precision::Fp16);
    const auto tf = run("nano", "resnet50", Precision::Tf32);
    const double e16 = f16.avg_power_w / f16.total_throughput;
    const double etf = tf.avg_power_w / tf.total_throughput;
    EXPECT_NEAR(e16, 0.125, 0.06);
    EXPECT_LT(e16, 0.55 * etf);
}

TEST(Calibration, MemoryGrowsWithPrecisionOnOrin)
{
    // Paper Fig 3: fp32 engines use ~2x the memory of int8 for the
    // ResNet variants, ~1.25x for YoloV8n.
    const auto i8 = run("orin-nano", "resnet50", Precision::Int8);
    const auto f32 = run("orin-nano", "resnet50", Precision::Fp32);
    EXPECT_GT(f32.workload_mem_mb, 1.3 * i8.workload_mem_mb);
    EXPECT_LT(f32.workload_mem_mb, 2.5 * i8.workload_mem_mb);

    const auto y8 = run("orin-nano", "yolov8n", Precision::Int8);
    const auto y32 = run("orin-nano", "yolov8n", Precision::Fp32);
    EXPECT_GT(y32.workload_mem_mb, 1.02 * y8.workload_mem_mb);
    EXPECT_LT(y32.workload_mem_mb, 1.6 * y8.workload_mem_mb);
}

TEST(Calibration, Fp32PowerDropOnOrin)
{
    // S6.1.2: fp32 sometimes draws *less* power than tf32/fp16
    // because the tensor cores sit idle and throughput collapses.
    const auto tf = run("orin-nano", "resnet50", Precision::Tf32);
    const auto f32 = run("orin-nano", "resnet50", Precision::Fp32);
    EXPECT_LT(f32.avg_power_w, tf.avg_power_w);
}

TEST(Calibration, PowerCapsRespected)
{
    // "Power consumption never crosses 7 W (Orin Nano) / 5 W (Nano)."
    for (auto p : soc::kAllPrecisions) {
        EXPECT_LE(run("orin-nano", "fcn_resnet50", p, 8, 1).max_power_w,
                  7.0 + 0.3);
        EXPECT_LE(run("nano", "resnet50", p, 4, 1).max_power_w,
                  5.0 + 0.3);
    }
}

TEST(Calibration, YoloBatchSweepMatchesPaperShape)
{
    // S6.2.1: T/P ~210 at batch 1 rising to ~320 at batch 16, with
    // diminishing returns.
    const auto b1 = run("orin-nano", "yolov8n", Precision::Int8, 1);
    const auto b16 = run("orin-nano", "yolov8n", Precision::Int8, 16);
    EXPECT_NEAR(b1.total_throughput, 210.0, 130.0);
    EXPECT_NEAR(b16.total_throughput, 320.0, 130.0);
    EXPECT_GT(b16.total_throughput, 1.12 * b1.total_throughput);
    EXPECT_LT(b16.total_throughput, 2.0 * b1.total_throughput);
}

TEST(Calibration, ThroughputPerProcessFallsWithConcurrency)
{
    const auto p1 = run("orin-nano", "resnet50", Precision::Int8, 1, 1);
    const auto p4 = run("orin-nano", "resnet50", Precision::Int8, 1, 4);
    const auto p8 = run("orin-nano", "resnet50", Precision::Int8, 1, 8);
    EXPECT_GT(p1.throughput_per_process,
              2.0 * p4.throughput_per_process);
    EXPECT_GT(p4.throughput_per_process,
              1.5 * p8.throughput_per_process);
}

TEST(Calibration, NanoFcnFourProcessesOom)
{
    // The paper's reboot case: FCN_ResNet50 x4 does not fit, while
    // ResNet50 x4 deploys safely.
    const auto fcn = run("nano", "fcn_resnet50", Precision::Fp16, 1, 4);
    EXPECT_FALSE(fcn.all_deployed);
    const auto rn = run("nano", "resnet50", Precision::Fp16, 1, 4);
    EXPECT_TRUE(rn.all_deployed);
}

TEST(Calibration, BlockingAppearsPastHeavyCores)
{
    // S7: with <= 3 processes (Orin big cores) blocking is
    // negligible; at 8 it reaches the milliseconds.
    const auto p2 = run("orin-nano", "resnet50", Precision::Int8, 1, 2);
    const auto p8 = run("orin-nano", "resnet50", Precision::Int8, 1, 8);
    EXPECT_LT(p2.mean.blocking_ms_per_ec, 0.3);
    EXPECT_GT(p8.mean.blocking_ms_per_ec, 0.4);
    EXPECT_GT(p8.mean.blocking_ms_per_ec,
              3.0 * p2.mean.blocking_ms_per_ec);
}

TEST(Calibration, NanoEcDoublesAtFourProcesses)
{
    // S7 (Fig 12): past half the Nano's cores the EC duration
    // roughly doubles beyond pure GPU sharing.
    const auto p2 = run("nano", "resnet50", Precision::Fp16, 1, 2);
    const auto p4 = run("nano", "resnet50", Precision::Fp16, 1, 4);
    EXPECT_GT(p4.mean.ec_ms, 1.8 * p2.mean.ec_ms);
}

TEST(Calibration, CloudA40ExceedsThousandImagesPerSecond)
{
    // The paper's intro: "a single YoloV8n model is capable of
    // processing over 1000 images per second using fp16 precision"
    // on an A40-class cloud GPU.
    const auto r = run("a40", "yolov8n", Precision::Fp16, 4);
    EXPECT_GT(r.total_throughput, 1000.0);
}

TEST(Calibration, GpuUtilisationNearFullSingleProcess)
{
    // The paper's motivating observation: >98 % GPU utilisation with
    // tiny memory use for ResNet50 on Orin Nano.
    const auto r = run("orin-nano", "resnet50", Precision::Fp16);
    EXPECT_GT(r.gpu_util_pct, 95.0);
    EXPECT_LT(r.workload_mem_mb, 0.05 * 8192);
}

} // namespace
} // namespace jetsim::core
