/**
 * @file
 * Result-cache tests: digest-keyed hit/miss behaviour, bit-exact
 * round-trip fidelity (a cached ExperimentResult equals the fresh one
 * field by field, CDFs included), cache invalidation when *any* spec
 * field changes, and tolerance of corrupted cache files (fall back to
 * a re-run, never crash).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/digest.hh"
#include "core/profiler.hh"
#include "core/result_cache.hh"
#include "core/env.hh"
#include "core/runner.hh"

namespace jetsim {
namespace {

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::path(::testing::TempDir()) /
               ("jetsim_cache_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir() const { return dir_.string(); }

    fs::path dir_;
};

core::ExperimentSpec
smallSpec()
{
    core::ExperimentSpec s;
    s.device = "orin-nano";
    s.model = "resnet50";
    s.precision = soc::Precision::Fp16;
    s.batch = 2;
    s.processes = 2;
    s.phase = core::Phase::Deep; // non-empty CDFs + kernel spans
    s.warmup = sim::msec(50);
    s.duration = sim::msec(200);
    s.seed = 99;
    return s;
}

void
expectProcEq(const core::ProcessMetrics &a,
             const core::ProcessMetrics &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.deployed, b.deployed);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.ec_ms, b.ec_ms);
    EXPECT_EQ(a.pipeline_ms, b.pipeline_ms);
    EXPECT_EQ(a.enqueue_ms, b.enqueue_ms);
    EXPECT_EQ(a.launch_ms_per_ec, b.launch_ms_per_ec);
    EXPECT_EQ(a.sync_ms, b.sync_ms);
    EXPECT_EQ(a.blocking_ms_per_ec, b.blocking_ms_per_ec);
    EXPECT_EQ(a.resched_ms_per_ec, b.resched_ms_per_ec);
    EXPECT_EQ(a.cpu_ms_per_ec, b.cpu_ms_per_ec);
    EXPECT_EQ(a.cache_ms_per_ec, b.cache_ms_per_ec);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.ecs, b.ecs);
}

void
expectCdfEq(const prof::Cdf &a, const prof::Cdf &b)
{
    ASSERT_EQ(a.count(), b.count());
    if (a.empty())
        return;
    EXPECT_EQ(a.mean(), b.mean());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0})
        EXPECT_EQ(a.quantile(q), b.quantile(q));
}

TEST_F(ResultCacheTest, MissOnEmptyThenHitAfterStore)
{
    core::ResultCache cache(dir());
    const auto spec = smallSpec();
    EXPECT_FALSE(cache.load(spec).has_value());

    const auto fresh = core::runExperiment(spec);
    cache.store(fresh);
    EXPECT_TRUE(fs::exists(cache.pathFor(spec)));
    EXPECT_TRUE(cache.load(spec).has_value());
}

TEST_F(ResultCacheTest, RoundTripIsBitExactFieldByField)
{
    core::ResultCache cache(dir());
    const auto spec = smallSpec();
    const auto fresh = core::runExperiment(spec);
    cache.store(fresh);

    const auto cached = cache.load(spec);
    ASSERT_TRUE(cached.has_value());

    EXPECT_EQ(cached->spec.label(), fresh.spec.label());
    EXPECT_EQ(cached->all_deployed, fresh.all_deployed);
    EXPECT_EQ(cached->deployed_count, fresh.deployed_count);
    EXPECT_EQ(cached->total_throughput, fresh.total_throughput);
    EXPECT_EQ(cached->throughput_per_process,
              fresh.throughput_per_process);
    EXPECT_EQ(cached->avg_power_w, fresh.avg_power_w);
    EXPECT_EQ(cached->max_power_w, fresh.max_power_w);
    EXPECT_EQ(cached->gpu_util_pct, fresh.gpu_util_pct);
    EXPECT_EQ(cached->mem_pct, fresh.mem_pct);
    EXPECT_EQ(cached->workload_mem_mb, fresh.workload_mem_mb);
    EXPECT_EQ(cached->dvfs_throttle_events,
              fresh.dvfs_throttle_events);
    EXPECT_EQ(cached->final_freq_frac, fresh.final_freq_frac);
    EXPECT_EQ(cached->kernel_us_mean, fresh.kernel_us_mean);
    EXPECT_EQ(cached->kernels, fresh.kernels);

    ASSERT_GT(fresh.sm_active.count(), 0u); // deep phase has CDFs
    expectCdfEq(cached->sm_active, fresh.sm_active);
    expectCdfEq(cached->issue_slot, fresh.issue_slot);
    expectCdfEq(cached->tc_util, fresh.tc_util);

    ASSERT_EQ(cached->procs.size(), fresh.procs.size());
    for (std::size_t i = 0; i < fresh.procs.size(); ++i)
        expectProcEq(cached->procs[i], fresh.procs[i]);
    expectProcEq(cached->mean, fresh.mean);

    // The one-integer summary of all of the above.
    EXPECT_EQ(core::resultDigest(*cached), core::resultDigest(fresh));
}

TEST_F(ResultCacheTest, MixedRoundTripIsBitExact)
{
    core::MixedExperimentSpec spec;
    spec.device = "orin-nano";
    spec.workloads = {
        {"resnet50", soc::Precision::Int8, 1, 2},
        {"yolov8n", soc::Precision::Fp16, 2, 1},
    };
    spec.phase = core::Phase::Deep;
    spec.warmup = sim::msec(50);
    spec.duration = sim::msec(200);
    spec.seed = 4;

    core::ResultCache cache(dir());
    const auto fresh = core::runMixedExperiment(spec);
    cache.store(fresh);
    const auto cached = cache.load(spec);
    ASSERT_TRUE(cached.has_value());
    ASSERT_EQ(cached->throughput_by_workload.size(),
              fresh.throughput_by_workload.size());
    for (std::size_t i = 0; i < fresh.throughput_by_workload.size();
         ++i)
        EXPECT_EQ(cached->throughput_by_workload[i],
                  fresh.throughput_by_workload[i]);
    EXPECT_EQ(core::resultDigest(*cached), core::resultDigest(fresh));
}

TEST_F(ResultCacheTest, AnySpecFieldChangeChangesTheKey)
{
    const auto base = smallSpec();
    const auto key = core::ResultCache::specKey(base);

    auto mutated = [&](auto mutate) {
        auto s = base;
        mutate(s);
        return core::ResultCache::specKey(s);
    };

    using Spec = core::ExperimentSpec;
    EXPECT_NE(key, mutated([](Spec &s) { s.device = "nano"; }));
    EXPECT_NE(key, mutated([](Spec &s) { s.model = "yolov8n"; }));
    EXPECT_NE(key, mutated([](Spec &s) {
        s.precision = soc::Precision::Int8;
    }));
    EXPECT_NE(key, mutated([](Spec &s) { s.batch = 1; }));
    EXPECT_NE(key, mutated([](Spec &s) { s.processes = 4; }));
    EXPECT_NE(key, mutated([](Spec &s) {
        s.phase = core::Phase::Light;
    }));
    EXPECT_NE(key, mutated([](Spec &s) { s.warmup += 1; }));
    EXPECT_NE(key, mutated([](Spec &s) { s.duration += 1; }));
    EXPECT_NE(key, mutated([](Spec &s) { s.pre_enqueue = 0; }));
    EXPECT_NE(key, mutated([](Spec &s) { s.dvfs = false; }));
    EXPECT_NE(key, mutated([](Spec &s) { s.biglittle = false; }));
    EXPECT_NE(key, mutated([](Spec &s) {
        s.spatial_sharing = true;
    }));
    EXPECT_NE(key, mutated([](Spec &s) { s.seed += 1; }));
}

TEST_F(ResultCacheTest, MixedKeyCoversWorkloadsAndKind)
{
    core::MixedExperimentSpec m;
    m.device = "orin-nano";
    m.workloads = {{"resnet50", soc::Precision::Fp16, 1, 1}};
    m.seed = 7;
    const auto key = core::ResultCache::specKey(m);

    auto w2 = m;
    w2.workloads.push_back({"yolov8n", soc::Precision::Int8, 2, 1});
    EXPECT_NE(key, core::ResultCache::specKey(w2));

    auto batch = m;
    batch.workloads[0].batch = 2;
    EXPECT_NE(key, core::ResultCache::specKey(batch));

    // A single-workload mixed spec must never alias the equivalent
    // plain ExperimentSpec (distinct key kinds).
    core::ExperimentSpec flat;
    flat.device = m.device;
    flat.model = "resnet50";
    flat.precision = soc::Precision::Fp16;
    flat.seed = 7;
    EXPECT_NE(core::ResultCache::specKey(m),
              core::ResultCache::specKey(flat));
}

TEST_F(ResultCacheTest, CorruptedFilesFallBackToMiss)
{
    core::ResultCache cache(dir());
    const auto spec = smallSpec();
    const auto fresh = core::runExperiment(spec);
    cache.store(fresh);
    const auto path = cache.pathFor(spec);

    const std::vector<std::string> corruptions = {
        "",                          // empty file
        "not json at all",           // garbage
        "{\"version\":",             // truncated mid-token
        "{\"version\": 999999, \"key\": 1, \"result\": {}}", // version
        "[1, 2, 3]",                 // wrong shape
        "{}",                        // missing everything
    };
    for (const auto &bad : corruptions) {
        std::ofstream(path, std::ios::trunc) << bad;
        EXPECT_FALSE(cache.load(spec).has_value())
            << "accepted corrupted content: " << bad;
    }

    // Truncated-but-valid-prefix of the real file.
    {
        cache.store(fresh);
        std::ifstream in(path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        std::ofstream(path, std::ios::trunc)
            << text.substr(0, text.size() / 2);
    }
    EXPECT_FALSE(cache.load(spec).has_value());

    // A Runner pointed at the poisoned cache must transparently
    // re-run and produce the bit-identical result.
    std::ofstream(path, std::ios::trunc) << "garbage";
    core::Runner runner(2, dir());
    const auto results = runner.run({spec});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(core::resultDigest(results[0]),
              core::resultDigest(fresh));
    EXPECT_EQ(runner.cacheStats().hits, 0u);
    EXPECT_EQ(runner.cacheStats().misses, 1u);
    EXPECT_EQ(runner.cacheStats().stores, 1u);
    // The re-run repaired the entry.
    EXPECT_TRUE(cache.load(spec).has_value());
}

TEST_F(ResultCacheTest, RunnerServesRepeatsFromCache)
{
    const auto specs = [] {
        std::vector<core::ExperimentSpec> v;
        for (const int batch : {1, 2, 4}) {
            auto s = smallSpec();
            s.phase = core::Phase::Light;
            s.batch = batch;
            v.push_back(s);
        }
        return v;
    }();

    core::Runner cold(2, dir());
    const auto first = cold.run(specs);
    EXPECT_EQ(cold.cacheStats().hits, 0u);
    EXPECT_EQ(cold.cacheStats().misses, specs.size());
    EXPECT_EQ(cold.cacheStats().stores, specs.size());

    core::Runner warm(2, dir());
    const auto second = warm.run(specs);
    EXPECT_EQ(warm.cacheStats().hits, specs.size());
    EXPECT_EQ(warm.cacheStats().misses, 0u);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(core::resultDigest(first[i]),
                  core::resultDigest(second[i]));
}

TEST_F(ResultCacheTest, EnvVarEnablesCaching)
{
    ::setenv("JETSIM_CACHE_DIR", dir().c_str(), 1);
    core::reloadEnv(); // Runner reads the cached startup environment
    {
        core::Runner runner(1);
        EXPECT_TRUE(runner.cacheEnabled());
        auto s = smallSpec();
        s.phase = core::Phase::Light;
        runner.run({s});
        EXPECT_EQ(runner.cacheStats().stores, 1u);
    }
    ::unsetenv("JETSIM_CACHE_DIR");
    core::reloadEnv();
    core::Runner off(1);
    EXPECT_FALSE(off.cacheEnabled());
}

} // namespace
} // namespace jetsim
