/**
 * @file
 * Heterogeneous (multi-tenant) experiment tests.
 */

#include "core/profiler.hh"

#include <gtest/gtest.h>

namespace jetsim::core {
namespace {

MixedExperimentSpec
duoSpec()
{
    MixedExperimentSpec s;
    s.device = "orin-nano";
    s.workloads = {
        WorkloadSpec{"resnet50", soc::Precision::Int8, 1, 2},
        WorkloadSpec{"yolov8n", soc::Precision::Fp16, 4, 1},
    };
    s.warmup = sim::msec(200);
    s.duration = sim::sec(1);
    return s;
}

TEST(Mixed, DeploysEveryGroup)
{
    const auto r = runMixedExperiment(duoSpec());
    EXPECT_TRUE(r.all_deployed);
    EXPECT_EQ(r.deployed_count, 3);
    ASSERT_EQ(r.procs.size(), 3u);
    EXPECT_NE(r.procs[0].name.find("resnet50"), std::string::npos);
    EXPECT_NE(r.procs[2].name.find("yolov8n"), std::string::npos);
}

TEST(Mixed, PerWorkloadThroughputSumsToTotal)
{
    const auto r = runMixedExperiment(duoSpec());
    ASSERT_EQ(r.throughput_by_workload.size(), 2u);
    EXPECT_GT(r.throughput_by_workload[0], 0.0);
    EXPECT_GT(r.throughput_by_workload[1], 0.0);
    EXPECT_NEAR(r.total_throughput,
                r.throughput_by_workload[0] +
                    r.throughput_by_workload[1],
                1e-9);
}

TEST(Mixed, TenantInterferenceSlowsBoth)
{
    // Each tenant alone, then together: both must lose throughput.
    MixedExperimentSpec alone = duoSpec();
    alone.workloads = {duoSpec().workloads[0]};
    const auto a = runMixedExperiment(alone);

    alone.workloads = {duoSpec().workloads[1]};
    const auto b = runMixedExperiment(alone);

    const auto mixed = runMixedExperiment(duoSpec());
    EXPECT_LT(mixed.throughput_by_workload[0],
              a.throughput_by_workload[0]);
    EXPECT_LT(mixed.throughput_by_workload[1],
              b.throughput_by_workload[0]);
}

TEST(Mixed, Deterministic)
{
    const auto a = runMixedExperiment(duoSpec());
    const auto b = runMixedExperiment(duoSpec());
    EXPECT_DOUBLE_EQ(a.total_throughput, b.total_throughput);
    EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
}

TEST(Mixed, LabelDescribesTheMix)
{
    const auto label = duoSpec().label();
    EXPECT_NE(label.find("2xresnet50/int8"), std::string::npos);
    EXPECT_NE(label.find("1xyolov8n/fp16 b4"), std::string::npos);
}

TEST(Mixed, OomReportsPartialDeployment)
{
    MixedExperimentSpec s;
    s.device = "nano";
    s.workloads = {
        WorkloadSpec{"resnet50", soc::Precision::Fp16, 1, 2},
        WorkloadSpec{"fcn_resnet50", soc::Precision::Fp16, 1, 3},
    };
    s.warmup = sim::msec(200);
    s.duration = sim::sec(1);
    const auto r = runMixedExperiment(s);
    EXPECT_FALSE(r.all_deployed);
    EXPECT_LT(r.deployed_count, 5);
    EXPECT_DOUBLE_EQ(r.total_throughput, 0.0);
}

TEST(Mixed, DeepPhaseCollectsCounters)
{
    auto s = duoSpec();
    s.phase = Phase::Deep;
    const auto r = runMixedExperiment(s);
    EXPECT_FALSE(r.sm_active.empty());
    EXPECT_GT(r.kernels, 0u);
}

TEST(Mixed, HomogeneousMixMatchesRunExperiment)
{
    // A one-workload mix and the classic API agree exactly.
    MixedExperimentSpec m;
    m.workloads = {WorkloadSpec{"resnet50", soc::Precision::Int8, 1,
                                2}};
    m.warmup = sim::msec(200);
    m.duration = sim::sec(1);
    const auto a = runMixedExperiment(m);

    ExperimentSpec e;
    e.model = "resnet50";
    e.precision = soc::Precision::Int8;
    e.processes = 2;
    e.warmup = sim::msec(200);
    e.duration = sim::sec(1);
    const auto b = runExperiment(e);

    EXPECT_DOUBLE_EQ(a.total_throughput, b.total_throughput);
    EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
}

TEST(Mixed, ExtensionModelsRunConcurrently)
{
    MixedExperimentSpec s;
    s.workloads = {
        WorkloadSpec{"mobilenet_v2", soc::Precision::Int8, 1, 1},
        WorkloadSpec{"resnet18", soc::Precision::Fp16, 1, 1},
    };
    s.warmup = sim::msec(200);
    s.duration = sim::sec(1);
    const auto r = runMixedExperiment(s);
    EXPECT_TRUE(r.all_deployed);
    EXPECT_GT(r.throughput_by_workload[0], 0.0);
    EXPECT_GT(r.throughput_by_workload[1], 0.0);
    // Despite MobileNetV2's 6x fewer MACs, its many tiny depthwise
    // kernels sit on the latency floor, so the two tenants end up in
    // the same throughput ballpark — the classic "MobileNets do not
    // convert FLOP savings into GPU speed" effect.
    EXPECT_GT(r.throughput_by_workload[0],
              0.5 * r.throughput_by_workload[1]);
    EXPECT_LT(r.throughput_by_workload[0],
              3.0 * r.throughput_by_workload[1]);
}

} // namespace
} // namespace jetsim::core
