/**
 * @file
 * Sharded-engine stress: oversubscription, shard-count far beyond
 * core-count, and repeated full runs. tools/ci.sh pass 2c runs this
 * binary under JETSIM_SANITIZE=thread (--tsan), which is what turns
 * the epoch barrier and inbox-lock races — if any — into failures.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/digest.hh"
#include "core/fleet.hh"
#include "sim/sharded_engine.hh"

namespace jetsim::sim {
namespace {

ShardedEngine::Options
opts(int shards, int threads, Tick lookahead)
{
    ShardedEngine::Options o;
    o.shards = shards;
    o.threads = threads;
    o.lookahead = lookahead;
    return o;
}

/** Heavy cross-shard chatter: every shard pumps messages to every
 * other shard while executing local work each tick. */
std::uint64_t
chatter(int shards, int threads, int rounds)
{
    ShardedEngine eng(opts(shards, threads, 4));
    const int k = eng.shards();
    std::vector<int> ports;
    for (int s = 0; s < k; ++s)
        ports.push_back(eng.addPort(s));

    struct Node
    {
        ShardedEngine *eng;
        const std::vector<int> *ports;
        std::vector<Node> *nodes;
        int shard;
        int left;
        /** Messages delivered *to* this shard — only ever touched by
         * the thread running this shard, so no atomics needed. */
        std::uint64_t received = 0;

        void
        pump()
        {
            if (left-- <= 0)
                return;
            auto &eq = eng->shard(shard);
            for (int dst = 0; dst < eng->shards(); ++dst)
                eng->post((*ports)[static_cast<std::size_t>(shard)],
                          dst, eq.now() + 4, [ns = nodes, dst] {
                              ++(*ns)[static_cast<std::size_t>(dst)]
                                    .received;
                          });
            eq.scheduleIn(4, [this] { pump(); });
        }
    };
    std::vector<Node> nodes;
    nodes.reserve(static_cast<std::size_t>(k));
    for (int s = 0; s < k; ++s)
        nodes.push_back(Node{&eng, &ports, &nodes, s, rounds});
    for (int s = 0; s < k; ++s)
        eng.shard(s).schedule(
            1, [&nodes, s] { nodes[static_cast<std::size_t>(s)].pump(); });
    eng.runAll();

    std::uint64_t total = 0;
    for (const auto &n : nodes)
        total += n.received;
    return total;
}

TEST(ShardedStress, OversubscribedThreadsMatchSerialTotals)
{
    // Far more worker threads than this host has cores: the barrier
    // must stay correct (and live) under arbitrary preemption.
    const unsigned cores = std::thread::hardware_concurrency();
    const int threads = static_cast<int>(cores ? cores * 4 : 8);
    const std::uint64_t want = chatter(8, 1, 50);
    EXPECT_EQ(chatter(8, threads, 50), want);
    EXPECT_EQ(want, 8ull * 8ull * 50ull);
}

TEST(ShardedStress, ShardCountBeyondCoreCount)
{
    const std::uint64_t want = chatter(16, 1, 20);
    EXPECT_EQ(chatter(16, 8, 20), want);
    EXPECT_EQ(want, 16ull * 16ull * 20ull);
}

TEST(ShardedStress, RepeatedRunsReuseWorkersSafely)
{
    // One engine, many runUntil() cycles: workers park and restart
    // across epochs without losing events.
    ShardedEngine eng(opts(4, 4, 8));
    std::atomic<std::uint64_t> ran{0};
    const int port = eng.addPort(0);
    for (int cycle = 1; cycle <= 25; ++cycle) {
        const Tick base = eng.shard(0).now();
        for (int s = 0; s < 4; ++s)
            eng.shard(s).schedule(base + 3, [&] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        eng.shard(0).schedule(base + 2, [&eng, port, base, &ran] {
            eng.post(port, 3, base + 10, [&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        });
        eng.runUntil(base + 20);
    }
    // Per cycle: 4 local events + 1 delivered cross-shard message.
    EXPECT_EQ(ran.load(), 25ull * 5ull);
}

TEST(ShardedStress, ConcurrentFleetDigestStaysGolden)
{
    // A real fleet under the parallel epoch path, repeated: the kind
    // of run CI's TSan pass hammers. Digest must never wobble.
    jetsim::core::FleetSpec spec;
    for (int d = 0; d < 6; ++d) {
        jetsim::core::FleetDevice dev;
        dev.device = d % 2 ? "nano" : "orin-nano";
        dev.model = "resnet18";
        spec.devices.push_back(dev);
    }
    spec.balancer_rate = 250.0;
    spec.warmup = sim::msec(5);
    spec.duration = sim::msec(25);

    const auto want =
        jetsim::core::resultDigest(jetsim::core::runFleet(spec, {}));
    for (int rep = 0; rep < 3; ++rep) {
        jetsim::core::FleetOptions o;
        o.shards = 6;
        o.threads = 6;
        EXPECT_EQ(jetsim::core::resultDigest(
                      jetsim::core::runFleet(spec, o)),
                  want)
            << "rep " << rep;
    }
}

} // namespace
} // namespace jetsim::sim
