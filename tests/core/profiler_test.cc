/**
 * @file
 * End-to-end profiler tests: sane results, determinism, phase-2
 * intrusion, ablation switches, and deployment failure reporting.
 */

#include "core/profiler.hh"

#include <gtest/gtest.h>

namespace jetsim::core {
namespace {

ExperimentSpec
quickSpec()
{
    ExperimentSpec s;
    s.device = "orin-nano";
    s.model = "resnet50";
    s.precision = soc::Precision::Int8;
    s.warmup = sim::msec(200);
    s.duration = sim::sec(1);
    return s;
}

TEST(Profiler, SingleProcessBaselineIsSane)
{
    const auto r = runExperiment(quickSpec());
    EXPECT_TRUE(r.all_deployed);
    EXPECT_EQ(r.deployed_count, 1);
    EXPECT_GT(r.total_throughput, 50.0);
    EXPECT_GT(r.avg_power_w, r.spec.seed ? 2.0 : 0.0);
    EXPECT_LE(r.max_power_w, 7.5);
    EXPECT_GT(r.gpu_util_pct, 90.0); // paper: >98 % GPU utilisation
    EXPECT_GT(r.mem_pct, 0.0);
    EXPECT_LT(r.mem_pct, 100.0);
    ASSERT_EQ(r.procs.size(), 1u);
    EXPECT_GT(r.mean.ec_ms, 0.0);
}

TEST(Profiler, DeterministicForIdenticalSpecs)
{
    const auto a = runExperiment(quickSpec());
    const auto b = runExperiment(quickSpec());
    EXPECT_DOUBLE_EQ(a.total_throughput, b.total_throughput);
    EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
    EXPECT_DOUBLE_EQ(a.mean.ec_ms, b.mean.ec_ms);
}

TEST(Profiler, SeedChangesJitterNotRegime)
{
    auto s = quickSpec();
    const auto a = runExperiment(s);
    s.seed = 999;
    const auto b = runExperiment(s);
    // Continuous statistics shift with the seed (image counts can
    // coincide after integer quantisation), the regime does not.
    EXPECT_NE(a.mean.ec_ms, b.mean.ec_ms);
    EXPECT_NEAR(a.total_throughput, b.total_throughput,
                a.total_throughput * 0.1);
}

TEST(Profiler, DeepPhaseCollectsCountersAndIntrudes)
{
    auto s = quickSpec();
    const auto [light, deep] = runTwoPhase(s);
    EXPECT_TRUE(light.sm_active.empty());
    EXPECT_FALSE(deep.sm_active.empty());
    EXPECT_FALSE(deep.issue_slot.empty());
    EXPECT_FALSE(deep.tc_util.empty());
    EXPECT_GT(deep.kernels, 0u);
    EXPECT_GT(deep.kernel_us_mean, 0.0);
    // The paper reports ~50 % throughput loss under Nsight; accept a
    // broad band around it.
    const double loss =
        1.0 - deep.total_throughput / light.total_throughput;
    EXPECT_GT(loss, 0.15);
    EXPECT_LT(loss, 0.70);
}

TEST(Profiler, OomCellIsReportedNotRun)
{
    ExperimentSpec s;
    s.device = "nano";
    s.model = "fcn_resnet50";
    s.precision = soc::Precision::Fp16;
    s.processes = 4; // the paper's reboot case
    s.warmup = sim::msec(200);
    s.duration = sim::sec(1);
    const auto r = runExperiment(s);
    EXPECT_FALSE(r.all_deployed);
    EXPECT_EQ(r.deployed_count, 3);
    EXPECT_DOUBLE_EQ(r.total_throughput, 0.0);
}

TEST(Profiler, SpatialSharingAblationBeatsTimeMuxSansDvfs)
{
    // At equal clocks, spatial sharing removes the channel-switch
    // overhead. (With DVFS on, the higher power density of
    // concurrent kernels can throttle the clock and *lose* - the
    // abl_mps bench shows both regimes.)
    ExperimentSpec s = quickSpec();
    s.model = "yolov8n";
    s.processes = 4;
    s.dvfs = false;
    const auto mux = runExperiment(s);
    s.spatial_sharing = true;
    const auto mps = runExperiment(s);
    EXPECT_GT(mps.total_throughput, 0.98 * mux.total_throughput);
}

TEST(Profiler, SpatialSharingCanThrottleUnderPowerCap)
{
    // The flip side: under the 7 W budget, packing kernels spatially
    // raises instantaneous power and invites DVFS throttling.
    ExperimentSpec s = quickSpec();
    s.model = "yolov8n";
    s.processes = 4;
    s.spatial_sharing = true;
    const auto r = runExperiment(s);
    EXPECT_LE(r.max_power_w, 7.4);
}

TEST(Profiler, DvfsOffRemovesThrottling)
{
    ExperimentSpec s = quickSpec();
    s.model = "fcn_resnet50";
    s.processes = 4;
    s.dvfs = false;
    const auto r = runExperiment(s);
    EXPECT_DOUBLE_EQ(r.final_freq_frac, 1.0);
    EXPECT_EQ(r.dvfs_throttle_events, 0);
}

TEST(Profiler, PreEnqueueAblationLowersThroughput)
{
    ExperimentSpec s = quickSpec();
    const auto with = runExperiment(s);
    s.pre_enqueue = 0;
    const auto without = runExperiment(s);
    EXPECT_GT(with.total_throughput,
              without.total_throughput * 1.05);
}

TEST(Profiler, LabelIsInformative)
{
    auto s = quickSpec();
    s.phase = Phase::Deep;
    const auto label = s.label();
    EXPECT_NE(label.find("orin-nano"), std::string::npos);
    EXPECT_NE(label.find("resnet50"), std::string::npos);
    EXPECT_NE(label.find("int8"), std::string::npos);
    EXPECT_NE(label.find("deep"), std::string::npos);
}

TEST(Profiler, PerProcessMetricsAggregateIntoMean)
{
    auto s = quickSpec();
    s.processes = 2;
    const auto r = runExperiment(s);
    ASSERT_EQ(r.procs.size(), 2u);
    const double sum =
        r.procs[0].throughput + r.procs[1].throughput;
    EXPECT_NEAR(r.total_throughput, sum, 1e-9);
    EXPECT_NEAR(r.throughput_per_process, sum / 2.0, 1e-9);
}

} // namespace
} // namespace jetsim::core
