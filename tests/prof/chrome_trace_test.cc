/**
 * @file
 * Chrome-trace exporter tests.
 */

#include "prof/chrome_trace.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/event_queue.hh"
#include "soc/board.hh"

namespace jetsim::prof {
namespace {

struct Rig
{
    sim::EventQueue eq;
    soc::Board board{soc::orinNano(), eq};
    gpu::GpuEngine engine{board};
};

gpu::KernelDesc
kernel(const std::string &name)
{
    gpu::KernelDesc k;
    k.name = name;
    k.flops = 1e8;
    k.bytes = 1e6;
    k.prec = soc::Precision::Fp16;
    k.tc = true;
    k.blocks = 64;
    return k;
}

TEST(ChromeTrace, CapturesKernelEvents)
{
    Rig r;
    ChromeTraceExporter trace(r.engine);
    trace.attach();
    const auto k = kernel("conv1+fused");
    const int ch = r.engine.createChannel("p0");
    for (int i = 0; i < 3; ++i)
        r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(10));
    EXPECT_EQ(trace.eventCount(), 3u);
}

TEST(ChromeTrace, JsonIsWellFormedEnough)
{
    Rig r;
    ChromeTraceExporter trace(r.engine);
    trace.attach();
    const auto k = kernel("layer1.0.conv1+fused");
    const int a = r.engine.createChannel("a");
    const int b = r.engine.createChannel("b");
    r.engine.submit(a, &k, nullptr);
    r.engine.submit(b, &k, nullptr);
    r.eq.runUntil(sim::msec(10));

    const std::string doc = trace.json();
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc.back(), '}');
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("layer1.0.conv1+fused"), std::string::npos);
    EXPECT_NE(doc.find("\"tid\":0"), std::string::npos);
    EXPECT_NE(doc.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"precision\":\"fp16\""), std::string::npos);

    // Balanced braces (cheap structural check).
    int depth = 0;
    for (char c : doc) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ChromeTrace, EmptyTraceIsStillValid)
{
    Rig r;
    ChromeTraceExporter trace(r.engine);
    const std::string doc = trace.json();
    EXPECT_NE(doc.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(ChromeTrace, DetachStopsCapture)
{
    Rig r;
    ChromeTraceExporter trace(r.engine);
    trace.attach();
    const auto k = kernel("k");
    const int ch = r.engine.createChannel("p");
    r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(10));
    trace.detach();
    r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(20));
    EXPECT_EQ(trace.eventCount(), 1u);
}

TEST(ChromeTrace, ClearDropsEvents)
{
    Rig r;
    ChromeTraceExporter trace(r.engine);
    trace.attach();
    const auto k = kernel("k");
    const int ch = r.engine.createChannel("p");
    r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(10));
    trace.clear();
    EXPECT_EQ(trace.eventCount(), 0u);
}

TEST(ChromeTrace, WritesFile)
{
    Rig r;
    ChromeTraceExporter trace(r.engine);
    trace.attach();
    const auto k = kernel("k");
    const int ch = r.engine.createChannel("p");
    r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(10));

    const std::string path = "/tmp/jetsim_trace_test.json";
    ASSERT_TRUE(trace.writeFile(path));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, trace.json());
    std::remove(path.c_str());
}

} // namespace
} // namespace jetsim::prof
