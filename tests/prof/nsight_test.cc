/**
 * @file
 * Nsight tracer tests: span capture, counter CDFs, and the
 * modelled intrusion.
 */

#include "prof/nsight.hh"

#include <gtest/gtest.h>

namespace jetsim::prof {
namespace {

struct Rig
{
    sim::EventQueue eq;
    soc::Board board{soc::orinNano(), eq};
    gpu::GpuEngine engine{board};
};

gpu::KernelDesc
kernel()
{
    gpu::KernelDesc k;
    k.name = "k";
    k.flops = 1e9;
    k.bytes = 2e6;
    k.prec = soc::Precision::Fp16;
    k.tc = true;
    k.blocks = 512;
    return k;
}

TEST(Nsight, RecordsKernelSpans)
{
    Rig r;
    NsightTracer tracer(r.board, r.engine);
    tracer.attach();
    const auto k = kernel();
    const int ch = r.engine.createChannel("p");
    for (int i = 0; i < 5; ++i)
        r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(100));
    EXPECT_EQ(tracer.kernelCount(), 5u);
    EXPECT_GT(tracer.kernelDuration().mean(), 0.0);
}

TEST(Nsight, SamplesCountersWhileBusy)
{
    Rig r;
    NsightTracer tracer(r.board, r.engine, sim::usec(50));
    tracer.attach();
    const auto k = kernel();
    const int ch = r.engine.createChannel("p");
    for (int i = 0; i < 20; ++i)
        r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(100));
    EXPECT_GT(tracer.smActiveCdf().count(), 10u);
    EXPECT_GT(tracer.tcUtilCdf().median(), 0.0);
    // Percent units.
    EXPECT_LE(tracer.smActiveCdf().max(), 100.0);
    EXPECT_GE(tracer.smActiveCdf().min(), 0.0);
}

TEST(Nsight, NoCounterSamplesWhileIdle)
{
    Rig r;
    NsightTracer tracer(r.board, r.engine, sim::usec(50));
    tracer.attach();
    r.eq.runUntil(sim::msec(10));
    EXPECT_EQ(tracer.smActiveCdf().count(), 0u);
}

TEST(Nsight, IntrusionSlowsKernels)
{
    const auto k = kernel();
    sim::Tick clean = 0, traced = 0;
    {
        Rig r;
        const int ch = r.engine.createChannel("p");
        for (int i = 0; i < 10; ++i)
            r.engine.submit(ch, &k, [&] { clean = r.eq.now(); });
        r.eq.runUntil(sim::msec(100));
    }
    {
        Rig r;
        NsightTracer tracer(r.board, r.engine);
        tracer.attach();
        const int ch = r.engine.createChannel("p");
        for (int i = 0; i < 10; ++i)
            r.engine.submit(ch, &k, [&] { traced = r.eq.now(); });
        r.eq.runUntil(sim::msec(100));
    }
    ASSERT_GT(clean, 0);
    ASSERT_GT(traced, 0);
    EXPECT_GE(traced,
              clean + 10 * NsightTracer::kPerKernelOverhead - 100);
}

TEST(Nsight, IntrusionCanBeDisabled)
{
    Rig r;
    NsightTracer tracer(r.board, r.engine);
    tracer.setIntrusion(false);
    tracer.attach();
    EXPECT_EQ(r.engine.extraKernelOverhead(), 0);
    EXPECT_DOUBLE_EQ(r.board.launchOverheadFactor(), 1.0);
}

TEST(Nsight, DetachRestoresCleanState)
{
    Rig r;
    NsightTracer tracer(r.board, r.engine);
    tracer.attach();
    EXPECT_GT(r.engine.extraKernelOverhead(), 0);
    EXPECT_GT(r.board.launchOverheadFactor(), 1.0);
    tracer.detach();
    EXPECT_EQ(r.engine.extraKernelOverhead(), 0);
    EXPECT_DOUBLE_EQ(r.board.launchOverheadFactor(), 1.0);
}

TEST(Nsight, DestructorDetaches)
{
    Rig r;
    {
        NsightTracer tracer(r.board, r.engine);
        tracer.attach();
    }
    EXPECT_EQ(r.engine.extraKernelOverhead(), 0);
    EXPECT_DOUBLE_EQ(r.board.launchOverheadFactor(), 1.0);
}

TEST(Nsight, ResetClearsData)
{
    Rig r;
    NsightTracer tracer(r.board, r.engine);
    tracer.attach();
    const auto k = kernel();
    const int ch = r.engine.createChannel("p");
    r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(100));
    EXPECT_GT(tracer.kernelCount(), 0u);
    tracer.reset();
    EXPECT_EQ(tracer.kernelCount(), 0u);
    EXPECT_TRUE(tracer.smActiveCdf().empty());
}

} // namespace
} // namespace jetsim::prof
