/**
 * @file
 * Unit tests for the empirical CDF container.
 */

#include "prof/cdf.hh"

#include <gtest/gtest.h>

namespace jetsim::prof {
namespace {

Cdf
ramp(int n)
{
    Cdf c;
    for (int i = 1; i <= n; ++i)
        c.add(i);
    return c;
}

TEST(Cdf, EmptyBehaviour)
{
    Cdf c;
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.count(), 0u);
    EXPECT_DOUBLE_EQ(c.mean(), 0.0);
    EXPECT_DOUBLE_EQ(c.fractionBelow(10.0), 0.0);
    EXPECT_TRUE(c.curve().empty());
    EXPECT_EQ(c.summary(), "(no samples)");
}

TEST(Cdf, SingleSample)
{
    Cdf c;
    c.add(5.0);
    EXPECT_DOUBLE_EQ(c.median(), 5.0);
    EXPECT_DOUBLE_EQ(c.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(c.quantile(1.0), 5.0);
}

TEST(Cdf, QuantilesOfRamp)
{
    const Cdf c = ramp(101); // 1..101
    EXPECT_DOUBLE_EQ(c.min(), 1.0);
    EXPECT_DOUBLE_EQ(c.max(), 101.0);
    EXPECT_DOUBLE_EQ(c.median(), 51.0);
    EXPECT_DOUBLE_EQ(c.quantile(0.25), 26.0);
}

TEST(Cdf, QuantileInterpolates)
{
    Cdf c;
    c.add(0.0);
    c.add(10.0);
    EXPECT_DOUBLE_EQ(c.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(c.quantile(0.75), 7.5);
}

TEST(Cdf, FractionBelow)
{
    const Cdf c = ramp(10); // 1..10
    EXPECT_DOUBLE_EQ(c.fractionBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(c.fractionBelow(5.0), 0.5);
    EXPECT_DOUBLE_EQ(c.fractionBelow(10.0), 1.0);
    EXPECT_DOUBLE_EQ(c.fractionBelow(99.0), 1.0);
}

TEST(Cdf, MeanMatches)
{
    const Cdf c = ramp(100);
    EXPECT_DOUBLE_EQ(c.mean(), 50.5);
}

TEST(Cdf, CurveIsMonotoneAndCoversRange)
{
    const Cdf c = ramp(50);
    const auto curve = c.curve(11);
    ASSERT_EQ(curve.size(), 11u);
    EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
    EXPECT_DOUBLE_EQ(curve.back().first, 50.0);
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LE(curve[i - 1].first, curve[i].first);
        EXPECT_LE(curve[i - 1].second, curve[i].second);
    }
}

TEST(Cdf, UnsortedInsertionOrderIrrelevant)
{
    Cdf a, b;
    for (double x : {3.0, 1.0, 2.0})
        a.add(x);
    for (double x : {1.0, 2.0, 3.0})
        b.add(x);
    EXPECT_DOUBLE_EQ(a.median(), b.median());
    EXPECT_DOUBLE_EQ(a.quantile(0.9), b.quantile(0.9));
}

TEST(Cdf, AddAfterQueryStillWorks)
{
    Cdf c;
    c.add(1.0);
    EXPECT_DOUBLE_EQ(c.median(), 1.0);
    c.add(3.0);
    EXPECT_DOUBLE_EQ(c.median(), 2.0);
}

TEST(Cdf, CopyIsIndependent)
{
    Cdf a = ramp(10);
    Cdf b = a;
    b.add(1000.0);
    EXPECT_EQ(a.count(), 10u);
    EXPECT_EQ(b.count(), 11u);
}

} // namespace
} // namespace jetsim::prof
