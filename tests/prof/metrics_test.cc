/**
 * @file
 * Checks the metric catalogue against the paper's Table 2.
 */

#include "prof/metrics.hh"

#include <gtest/gtest.h>

#include <set>

namespace jetsim::prof {
namespace {

TEST(Metrics, CatalogHasTable2Entries)
{
    const auto &cat = metricCatalog();
    EXPECT_EQ(cat.size(), 10u);
}

TEST(Metrics, LevelsPartitionAsInTable2)
{
    int soc = 0, gpu = 0, kernel = 0;
    for (const auto &m : metricCatalog()) {
        switch (m.level) {
          case MetricLevel::Soc: ++soc; break;
          case MetricLevel::Gpu: ++gpu; break;
          case MetricLevel::Kernel: ++kernel; break;
        }
    }
    EXPECT_EQ(soc, 2);    // throughput, power
    EXPECT_EQ(gpu, 5);    // util, memory, issue, active, tc
    EXPECT_EQ(kernel, 3); // launch, sync, ec
}

TEST(Metrics, IdsAreUniqueAndNonEmpty)
{
    std::set<std::string> ids;
    for (const auto &m : metricCatalog()) {
        EXPECT_FALSE(m.id.empty());
        EXPECT_FALSE(m.name.empty());
        EXPECT_FALSE(m.description.empty());
        EXPECT_TRUE(ids.insert(m.id).second) << m.id;
    }
}

TEST(Metrics, ToolMappingMatchesMethodology)
{
    // Throughput comes from trtexec; power/memory from jetson-stats;
    // everything kernel/counter level from Nsight (paper Section 4).
    for (const auto &m : metricCatalog()) {
        if (m.id == "throughput") {
            EXPECT_EQ(m.source, MetricSource::Trtexec);
        }
        if (m.id == "power" || m.id == "gpu_mem") {
            EXPECT_EQ(m.source, MetricSource::JetsonStats);
        }
        if (m.level == MetricLevel::Kernel) {
            EXPECT_EQ(m.source, MetricSource::NsightSystems);
        }
    }
}

TEST(Metrics, NamesRender)
{
    EXPECT_STREQ(levelName(MetricLevel::Soc), "SoC Level Metrics");
    EXPECT_STREQ(levelName(MetricLevel::Gpu), "GPU Level Metrics");
    EXPECT_STREQ(levelName(MetricLevel::Kernel),
                 "Kernel Level Metrics");
    EXPECT_STREQ(sourceName(MetricSource::Trtexec), "trtexec");
    EXPECT_STREQ(sourceName(MetricSource::JetsonStats),
                 "jetson-stats");
    EXPECT_STREQ(sourceName(MetricSource::NsightSystems),
                 "Nsight Systems");
}

} // namespace
} // namespace jetsim::prof
