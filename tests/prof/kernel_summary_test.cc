/**
 * @file
 * KernelSummary aggregation tests.
 */

#include "prof/kernel_summary.hh"

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "soc/board.hh"

namespace jetsim::prof {
namespace {

struct Rig
{
    sim::EventQueue eq;
    soc::Board board{soc::orinNano(), eq};
    gpu::GpuEngine engine{board};
};

gpu::KernelDesc
kernel(const std::string &name, double flops, double bytes)
{
    gpu::KernelDesc k;
    k.name = name;
    k.flops = flops;
    k.bytes = bytes;
    k.prec = soc::Precision::Fp16;
    k.tc = true;
    k.blocks = 512;
    return k;
}

TEST(KernelSummary, AggregatesByName)
{
    Rig r;
    KernelSummary s(r.engine);
    s.attach();
    const auto a = kernel("a", 1e9, 1e6);
    const auto b = kernel("b", 2e9, 1e6);
    const int ch = r.engine.createChannel("p");
    r.engine.submit(ch, &a, nullptr);
    r.engine.submit(ch, &a, nullptr);
    r.engine.submit(ch, &b, nullptr);
    r.eq.runUntil(sim::msec(50));

    EXPECT_EQ(s.totalCalls(), 3u);
    const auto rows = s.table();
    ASSERT_EQ(rows.size(), 2u);
    // b is heavier per call but a has two calls of half the work:
    // totals are comparable; check the per-name accounting instead.
    for (const auto &row : rows) {
        if (row.name == "a") {
            EXPECT_EQ(row.calls, 2u);
        }
        if (row.name == "b") {
            EXPECT_EQ(row.calls, 1u);
        }
    }
}

TEST(KernelSummary, SharesSumToHundred)
{
    Rig r;
    KernelSummary s(r.engine);
    s.attach();
    const int ch = r.engine.createChannel("p");
    std::vector<gpu::KernelDesc> ks;
    for (int i = 0; i < 5; ++i)
        ks.push_back(kernel("k" + std::to_string(i), 1e8 * (i + 1),
                            1e6));
    for (const auto &k : ks)
        r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(50));

    double total = 0;
    for (const auto &row : s.table())
        total += row.share_pct;
    EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(KernelSummary, TableSortsByTotalTime)
{
    Rig r;
    KernelSummary s(r.engine);
    s.attach();
    const auto small = kernel("small", 1e8, 1e5);
    const auto big = kernel("big", 4e9, 1e5);
    const int ch = r.engine.createChannel("p");
    r.engine.submit(ch, &small, nullptr);
    r.engine.submit(ch, &big, nullptr);
    r.eq.runUntil(sim::msec(50));
    const auto rows = s.table();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "big");
}

TEST(KernelSummary, TopLimitsRows)
{
    Rig r;
    KernelSummary s(r.engine);
    s.attach();
    const int ch = r.engine.createChannel("p");
    std::vector<gpu::KernelDesc> ks;
    for (int i = 0; i < 6; ++i)
        ks.push_back(kernel("k" + std::to_string(i), 1e8, 1e5));
    for (const auto &k : ks)
        r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(50));
    EXPECT_EQ(s.table(3).size(), 3u);
    EXPECT_EQ(s.table().size(), 6u);
}

TEST(KernelSummary, BoundClassification)
{
    Rig r;
    KernelSummary s(r.engine);
    s.attach();
    const auto compute = kernel("compute", 5e9, 1e5);
    const auto memory = kernel("memory", 1e6, 2e8);
    auto latency = kernel("latency", 1e5, 1e4); // tiny: hits floor
    const int ch = r.engine.createChannel("p");
    r.engine.submit(ch, &compute, nullptr);
    r.engine.submit(ch, &memory, nullptr);
    r.engine.submit(ch, &latency, nullptr);
    r.eq.runUntil(sim::msec(50));

    for (const auto &row : s.table()) {
        if (row.name == "compute") {
            EXPECT_EQ(row.bound, KernelBound::Compute);
        }
        if (row.name == "memory") {
            EXPECT_EQ(row.bound, KernelBound::Memory);
        }
        if (row.name == "latency") {
            EXPECT_EQ(row.bound, KernelBound::Latency);
        }
    }
}

TEST(KernelSummary, ClearResets)
{
    Rig r;
    KernelSummary s(r.engine);
    s.attach();
    const auto k = kernel("k", 1e8, 1e5);
    const int ch = r.engine.createChannel("p");
    r.engine.submit(ch, &k, nullptr);
    r.eq.runUntil(sim::msec(50));
    EXPECT_GT(s.totalCalls(), 0u);
    s.clear();
    EXPECT_EQ(s.totalCalls(), 0u);
    EXPECT_TRUE(s.table().empty());
}

} // namespace
} // namespace jetsim::prof
