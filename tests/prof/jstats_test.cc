/**
 * @file
 * JStats sampler tests against synthetic board activity.
 */

#include "prof/jstats.hh"

#include <gtest/gtest.h>

namespace jetsim::prof {
namespace {

struct Rig
{
    sim::EventQueue eq;
    soc::Board board{soc::orinNano(), eq};
};

TEST(JStats, SamplesAtInterval)
{
    Rig r;
    JStatsSampler js(r.board, sim::msec(100));
    js.start();
    r.eq.runUntil(sim::sec(1));
    EXPECT_EQ(js.samples().size(), 10u);
}

TEST(JStats, IdleBoardReadsIdlePowerAndZeroUtil)
{
    Rig r;
    JStatsSampler js(r.board, sim::msec(100));
    js.start();
    r.eq.runUntil(sim::sec(1));
    EXPECT_NEAR(js.avgPowerW(), r.board.spec().power.idle_w, 0.01);
    EXPECT_DOUBLE_EQ(js.avgGpuUtilPct(), 0.0);
}

TEST(JStats, GpuBusyWindowShowsUtilisation)
{
    Rig r;
    JStatsSampler js(r.board, sim::msec(100));
    js.start();
    // Busy for exactly half of each interval via synthetic toggles.
    for (int i = 0; i < 10; ++i) {
        r.eq.schedule(sim::msec(100 * i), [&] {
            r.board.setGpuState(true, 0.8, 0.3, 0.2, 0.4);
        });
        r.eq.schedule(sim::msec(100 * i + 50), [&] {
            r.board.setGpuState(false, 0, 0, 0, 0);
        });
    }
    r.eq.runUntil(sim::sec(1));
    EXPECT_NEAR(js.avgGpuUtilPct(), 50.0, 1.0);
    EXPECT_GT(js.avgPowerW(), r.board.spec().power.idle_w);
}

TEST(JStats, MemoryPercentTracksAllocations)
{
    Rig r;
    JStatsSampler js(r.board, sim::msec(100));
    js.start();
    const auto os_pct = r.board.memory().usagePercent();
    r.eq.schedule(sim::msec(450), [&] {
        r.board.memory().allocate("p", 2 * sim::kGiB);
    });
    r.eq.runUntil(sim::sec(1));
    EXPECT_NEAR(js.samples().front().mem_pct, os_pct, 0.1);
    EXPECT_GT(js.peakMemPct(), os_pct + 20.0);
}

TEST(JStats, ResetDropsHistory)
{
    Rig r;
    JStatsSampler js(r.board, sim::msec(100));
    js.start();
    r.eq.runUntil(sim::msec(500));
    EXPECT_FALSE(js.samples().empty());
    js.reset();
    EXPECT_TRUE(js.samples().empty());
    r.eq.runUntil(sim::sec(1));
    EXPECT_EQ(js.samples().size(), 5u);
}

TEST(JStats, StopHaltsSampling)
{
    Rig r;
    JStatsSampler js(r.board, sim::msec(100));
    js.start();
    r.eq.runUntil(sim::msec(300));
    js.stop();
    const auto n = js.samples().size();
    r.eq.runUntil(sim::sec(1));
    EXPECT_EQ(js.samples().size(), n);
}

TEST(JStats, StartIsIdempotent)
{
    Rig r;
    JStatsSampler js(r.board, sim::msec(100));
    js.start();
    js.start();
    r.eq.runUntil(sim::msec(500));
    EXPECT_EQ(js.samples().size(), 5u);
}

} // namespace
} // namespace jetsim::prof
