# Empty compiler generated dependencies file for trt_tests.
# This may be replaced when dependencies are built.
