file(REMOVE_RECURSE
  "CMakeFiles/trt_tests.dir/trt/builder_test.cc.o"
  "CMakeFiles/trt_tests.dir/trt/builder_test.cc.o.d"
  "CMakeFiles/trt_tests.dir/trt/execution_context_test.cc.o"
  "CMakeFiles/trt_tests.dir/trt/execution_context_test.cc.o.d"
  "CMakeFiles/trt_tests.dir/trt/fusion_test.cc.o"
  "CMakeFiles/trt_tests.dir/trt/fusion_test.cc.o.d"
  "CMakeFiles/trt_tests.dir/trt/random_graph_test.cc.o"
  "CMakeFiles/trt_tests.dir/trt/random_graph_test.cc.o.d"
  "CMakeFiles/trt_tests.dir/trt/serialize_test.cc.o"
  "CMakeFiles/trt_tests.dir/trt/serialize_test.cc.o.d"
  "trt_tests"
  "trt_tests.pdb"
  "trt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
