file(REMOVE_RECURSE
  "CMakeFiles/soc_tests.dir/soc/board_test.cc.o"
  "CMakeFiles/soc_tests.dir/soc/board_test.cc.o.d"
  "CMakeFiles/soc_tests.dir/soc/device_spec_test.cc.o"
  "CMakeFiles/soc_tests.dir/soc/device_spec_test.cc.o.d"
  "CMakeFiles/soc_tests.dir/soc/dvfs_test.cc.o"
  "CMakeFiles/soc_tests.dir/soc/dvfs_test.cc.o.d"
  "CMakeFiles/soc_tests.dir/soc/network_link_test.cc.o"
  "CMakeFiles/soc_tests.dir/soc/network_link_test.cc.o.d"
  "CMakeFiles/soc_tests.dir/soc/power_test.cc.o"
  "CMakeFiles/soc_tests.dir/soc/power_test.cc.o.d"
  "CMakeFiles/soc_tests.dir/soc/unified_memory_test.cc.o"
  "CMakeFiles/soc_tests.dir/soc/unified_memory_test.cc.o.d"
  "soc_tests"
  "soc_tests.pdb"
  "soc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
