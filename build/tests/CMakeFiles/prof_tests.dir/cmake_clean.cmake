file(REMOVE_RECURSE
  "CMakeFiles/prof_tests.dir/prof/cdf_test.cc.o"
  "CMakeFiles/prof_tests.dir/prof/cdf_test.cc.o.d"
  "CMakeFiles/prof_tests.dir/prof/chrome_trace_test.cc.o"
  "CMakeFiles/prof_tests.dir/prof/chrome_trace_test.cc.o.d"
  "CMakeFiles/prof_tests.dir/prof/jstats_test.cc.o"
  "CMakeFiles/prof_tests.dir/prof/jstats_test.cc.o.d"
  "CMakeFiles/prof_tests.dir/prof/kernel_summary_test.cc.o"
  "CMakeFiles/prof_tests.dir/prof/kernel_summary_test.cc.o.d"
  "CMakeFiles/prof_tests.dir/prof/metrics_test.cc.o"
  "CMakeFiles/prof_tests.dir/prof/metrics_test.cc.o.d"
  "CMakeFiles/prof_tests.dir/prof/nsight_test.cc.o"
  "CMakeFiles/prof_tests.dir/prof/nsight_test.cc.o.d"
  "prof_tests"
  "prof_tests.pdb"
  "prof_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prof_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
