# Empty dependencies file for prof_tests.
# This may be replaced when dependencies are built.
