file(REMOVE_RECURSE
  "CMakeFiles/gpu_tests.dir/gpu/cost_model_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/cost_model_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/engine_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/engine_test.cc.o.d"
  "gpu_tests"
  "gpu_tests.pdb"
  "gpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
