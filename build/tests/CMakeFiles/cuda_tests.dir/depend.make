# Empty dependencies file for cuda_tests.
# This may be replaced when dependencies are built.
