file(REMOVE_RECURSE
  "CMakeFiles/cuda_tests.dir/cuda/stream_test.cc.o"
  "CMakeFiles/cuda_tests.dir/cuda/stream_test.cc.o.d"
  "cuda_tests"
  "cuda_tests.pdb"
  "cuda_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuda_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
