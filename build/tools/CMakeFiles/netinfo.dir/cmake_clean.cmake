file(REMOVE_RECURSE
  "CMakeFiles/netinfo.dir/netinfo.cpp.o"
  "CMakeFiles/netinfo.dir/netinfo.cpp.o.d"
  "netinfo"
  "netinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
