# Empty dependencies file for netinfo.
# This may be replaced when dependencies are built.
