# Empty compiler generated dependencies file for jetprof.
# This may be replaced when dependencies are built.
