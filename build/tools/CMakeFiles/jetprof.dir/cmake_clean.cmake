file(REMOVE_RECURSE
  "CMakeFiles/jetprof.dir/jetprof.cpp.o"
  "CMakeFiles/jetprof.dir/jetprof.cpp.o.d"
  "jetprof"
  "jetprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
