# Empty dependencies file for trtexec_sim.
# This may be replaced when dependencies are built.
