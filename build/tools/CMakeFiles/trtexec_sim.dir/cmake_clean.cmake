file(REMOVE_RECURSE
  "CMakeFiles/trtexec_sim.dir/trtexec_sim.cpp.o"
  "CMakeFiles/trtexec_sim.dir/trtexec_sim.cpp.o.d"
  "trtexec_sim"
  "trtexec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trtexec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
