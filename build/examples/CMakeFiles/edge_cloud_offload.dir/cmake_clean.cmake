file(REMOVE_RECURSE
  "CMakeFiles/edge_cloud_offload.dir/edge_cloud_offload.cpp.o"
  "CMakeFiles/edge_cloud_offload.dir/edge_cloud_offload.cpp.o.d"
  "edge_cloud_offload"
  "edge_cloud_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cloud_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
