# Empty compiler generated dependencies file for edge_cloud_offload.
# This may be replaced when dependencies are built.
