file(REMOVE_RECURSE
  "CMakeFiles/fig09_power_nano.dir/fig09_power_nano.cpp.o"
  "CMakeFiles/fig09_power_nano.dir/fig09_power_nano.cpp.o.d"
  "fig09_power_nano"
  "fig09_power_nano.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_power_nano.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
