# Empty compiler generated dependencies file for fig09_power_nano.
# This may be replaced when dependencies are built.
