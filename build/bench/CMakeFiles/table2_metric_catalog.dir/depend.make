# Empty dependencies file for table2_metric_catalog.
# This may be replaced when dependencies are built.
