file(REMOVE_RECURSE
  "CMakeFiles/table2_metric_catalog.dir/table2_metric_catalog.cpp.o"
  "CMakeFiles/table2_metric_catalog.dir/table2_metric_catalog.cpp.o.d"
  "table2_metric_catalog"
  "table2_metric_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_metric_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
