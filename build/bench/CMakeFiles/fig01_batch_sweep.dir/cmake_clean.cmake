file(REMOVE_RECURSE
  "CMakeFiles/fig01_batch_sweep.dir/fig01_batch_sweep.cpp.o"
  "CMakeFiles/fig01_batch_sweep.dir/fig01_batch_sweep.cpp.o.d"
  "fig01_batch_sweep"
  "fig01_batch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
