# Empty dependencies file for fig01_batch_sweep.
# This may be replaced when dependencies are built.
