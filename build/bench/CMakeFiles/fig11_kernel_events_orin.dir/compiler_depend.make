# Empty compiler generated dependencies file for fig11_kernel_events_orin.
# This may be replaced when dependencies are built.
