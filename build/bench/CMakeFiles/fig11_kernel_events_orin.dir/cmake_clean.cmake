file(REMOVE_RECURSE
  "CMakeFiles/fig11_kernel_events_orin.dir/fig11_kernel_events_orin.cpp.o"
  "CMakeFiles/fig11_kernel_events_orin.dir/fig11_kernel_events_orin.cpp.o.d"
  "fig11_kernel_events_orin"
  "fig11_kernel_events_orin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_kernel_events_orin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
