file(REMOVE_RECURSE
  "CMakeFiles/fig08_power_orin.dir/fig08_power_orin.cpp.o"
  "CMakeFiles/fig08_power_orin.dir/fig08_power_orin.cpp.o.d"
  "fig08_power_orin"
  "fig08_power_orin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_power_orin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
