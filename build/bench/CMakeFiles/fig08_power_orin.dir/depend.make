# Empty dependencies file for fig08_power_orin.
# This may be replaced when dependencies are built.
