# Empty dependencies file for fig03_precision_mem_tput.
# This may be replaced when dependencies are built.
