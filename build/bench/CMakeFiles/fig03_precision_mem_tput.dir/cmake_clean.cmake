file(REMOVE_RECURSE
  "CMakeFiles/fig03_precision_mem_tput.dir/fig03_precision_mem_tput.cpp.o"
  "CMakeFiles/fig03_precision_mem_tput.dir/fig03_precision_mem_tput.cpp.o.d"
  "fig03_precision_mem_tput"
  "fig03_precision_mem_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_precision_mem_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
