file(REMOVE_RECURSE
  "CMakeFiles/abl_preenqueue.dir/abl_preenqueue.cpp.o"
  "CMakeFiles/abl_preenqueue.dir/abl_preenqueue.cpp.o.d"
  "abl_preenqueue"
  "abl_preenqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_preenqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
