# Empty compiler generated dependencies file for abl_preenqueue.
# This may be replaced when dependencies are built.
