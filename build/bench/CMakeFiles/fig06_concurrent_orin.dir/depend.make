# Empty dependencies file for fig06_concurrent_orin.
# This may be replaced when dependencies are built.
