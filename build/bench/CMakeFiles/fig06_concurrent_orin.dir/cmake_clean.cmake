file(REMOVE_RECURSE
  "CMakeFiles/fig06_concurrent_orin.dir/fig06_concurrent_orin.cpp.o"
  "CMakeFiles/fig06_concurrent_orin.dir/fig06_concurrent_orin.cpp.o.d"
  "fig06_concurrent_orin"
  "fig06_concurrent_orin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_concurrent_orin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
