file(REMOVE_RECURSE
  "CMakeFiles/ext_serving_latency.dir/ext_serving_latency.cpp.o"
  "CMakeFiles/ext_serving_latency.dir/ext_serving_latency.cpp.o.d"
  "ext_serving_latency"
  "ext_serving_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_serving_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
