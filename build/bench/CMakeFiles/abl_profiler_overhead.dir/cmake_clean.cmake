file(REMOVE_RECURSE
  "CMakeFiles/abl_profiler_overhead.dir/abl_profiler_overhead.cpp.o"
  "CMakeFiles/abl_profiler_overhead.dir/abl_profiler_overhead.cpp.o.d"
  "abl_profiler_overhead"
  "abl_profiler_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_profiler_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
