# Empty compiler generated dependencies file for abl_profiler_overhead.
# This may be replaced when dependencies are built.
