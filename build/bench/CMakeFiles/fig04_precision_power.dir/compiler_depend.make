# Empty compiler generated dependencies file for fig04_precision_power.
# This may be replaced when dependencies are built.
