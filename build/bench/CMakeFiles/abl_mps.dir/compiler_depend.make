# Empty compiler generated dependencies file for abl_mps.
# This may be replaced when dependencies are built.
