file(REMOVE_RECURSE
  "CMakeFiles/abl_mps.dir/abl_mps.cpp.o"
  "CMakeFiles/abl_mps.dir/abl_mps.cpp.o.d"
  "abl_mps"
  "abl_mps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
