# Empty compiler generated dependencies file for ext_layer_breakdown.
# This may be replaced when dependencies are built.
