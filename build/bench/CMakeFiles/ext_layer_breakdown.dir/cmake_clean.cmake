file(REMOVE_RECURSE
  "CMakeFiles/ext_layer_breakdown.dir/ext_layer_breakdown.cpp.o"
  "CMakeFiles/ext_layer_breakdown.dir/ext_layer_breakdown.cpp.o.d"
  "ext_layer_breakdown"
  "ext_layer_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_layer_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
