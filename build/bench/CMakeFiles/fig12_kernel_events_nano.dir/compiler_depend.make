# Empty compiler generated dependencies file for fig12_kernel_events_nano.
# This may be replaced when dependencies are built.
