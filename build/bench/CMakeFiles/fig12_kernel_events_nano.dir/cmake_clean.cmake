file(REMOVE_RECURSE
  "CMakeFiles/fig12_kernel_events_nano.dir/fig12_kernel_events_nano.cpp.o"
  "CMakeFiles/fig12_kernel_events_nano.dir/fig12_kernel_events_nano.cpp.o.d"
  "fig12_kernel_events_nano"
  "fig12_kernel_events_nano.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_kernel_events_nano.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
