file(REMOVE_RECURSE
  "CMakeFiles/paper_compliance.dir/paper_compliance.cpp.o"
  "CMakeFiles/paper_compliance.dir/paper_compliance.cpp.o.d"
  "paper_compliance"
  "paper_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
