# Empty dependencies file for paper_compliance.
# This may be replaced when dependencies are built.
