# Empty compiler generated dependencies file for table1_device_specs.
# This may be replaced when dependencies are built.
