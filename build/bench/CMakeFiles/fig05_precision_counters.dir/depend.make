# Empty dependencies file for fig05_precision_counters.
# This may be replaced when dependencies are built.
