file(REMOVE_RECURSE
  "CMakeFiles/fig05_precision_counters.dir/fig05_precision_counters.cpp.o"
  "CMakeFiles/fig05_precision_counters.dir/fig05_precision_counters.cpp.o.d"
  "fig05_precision_counters"
  "fig05_precision_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_precision_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
