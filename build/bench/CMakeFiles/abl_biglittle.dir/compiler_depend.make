# Empty compiler generated dependencies file for abl_biglittle.
# This may be replaced when dependencies are built.
