file(REMOVE_RECURSE
  "CMakeFiles/abl_biglittle.dir/abl_biglittle.cpp.o"
  "CMakeFiles/abl_biglittle.dir/abl_biglittle.cpp.o.d"
  "abl_biglittle"
  "abl_biglittle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_biglittle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
