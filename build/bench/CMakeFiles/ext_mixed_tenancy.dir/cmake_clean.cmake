file(REMOVE_RECURSE
  "CMakeFiles/ext_mixed_tenancy.dir/ext_mixed_tenancy.cpp.o"
  "CMakeFiles/ext_mixed_tenancy.dir/ext_mixed_tenancy.cpp.o.d"
  "ext_mixed_tenancy"
  "ext_mixed_tenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mixed_tenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
