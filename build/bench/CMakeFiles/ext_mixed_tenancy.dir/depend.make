# Empty dependencies file for ext_mixed_tenancy.
# This may be replaced when dependencies are built.
