# Empty compiler generated dependencies file for fig07_concurrent_nano.
# This may be replaced when dependencies are built.
