file(REMOVE_RECURSE
  "CMakeFiles/fig07_concurrent_nano.dir/fig07_concurrent_nano.cpp.o"
  "CMakeFiles/fig07_concurrent_nano.dir/fig07_concurrent_nano.cpp.o.d"
  "fig07_concurrent_nano"
  "fig07_concurrent_nano.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_concurrent_nano.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
