# Empty compiler generated dependencies file for fig10_concurrent_counters.
# This may be replaced when dependencies are built.
