file(REMOVE_RECURSE
  "CMakeFiles/fig10_concurrent_counters.dir/fig10_concurrent_counters.cpp.o"
  "CMakeFiles/fig10_concurrent_counters.dir/fig10_concurrent_counters.cpp.o.d"
  "fig10_concurrent_counters"
  "fig10_concurrent_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_concurrent_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
