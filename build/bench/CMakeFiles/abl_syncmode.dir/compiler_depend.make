# Empty compiler generated dependencies file for abl_syncmode.
# This may be replaced when dependencies are built.
