file(REMOVE_RECURSE
  "CMakeFiles/abl_syncmode.dir/abl_syncmode.cpp.o"
  "CMakeFiles/abl_syncmode.dir/abl_syncmode.cpp.o.d"
  "abl_syncmode"
  "abl_syncmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_syncmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
