file(REMOVE_RECURSE
  "libjetsim_workload.a"
)
