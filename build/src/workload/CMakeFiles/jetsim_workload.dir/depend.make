# Empty dependencies file for jetsim_workload.
# This may be replaced when dependencies are built.
