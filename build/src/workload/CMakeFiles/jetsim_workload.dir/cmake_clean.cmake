file(REMOVE_RECURSE
  "CMakeFiles/jetsim_workload.dir/inference_process.cc.o"
  "CMakeFiles/jetsim_workload.dir/inference_process.cc.o.d"
  "CMakeFiles/jetsim_workload.dir/serving_process.cc.o"
  "CMakeFiles/jetsim_workload.dir/serving_process.cc.o.d"
  "libjetsim_workload.a"
  "libjetsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
