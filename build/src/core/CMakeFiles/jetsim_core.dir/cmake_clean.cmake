file(REMOVE_RECURSE
  "CMakeFiles/jetsim_core.dir/bottleneck.cc.o"
  "CMakeFiles/jetsim_core.dir/bottleneck.cc.o.d"
  "CMakeFiles/jetsim_core.dir/profiler.cc.o"
  "CMakeFiles/jetsim_core.dir/profiler.cc.o.d"
  "CMakeFiles/jetsim_core.dir/report.cc.o"
  "CMakeFiles/jetsim_core.dir/report.cc.o.d"
  "CMakeFiles/jetsim_core.dir/sweep.cc.o"
  "CMakeFiles/jetsim_core.dir/sweep.cc.o.d"
  "libjetsim_core.a"
  "libjetsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
