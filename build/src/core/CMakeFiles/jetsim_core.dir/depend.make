# Empty dependencies file for jetsim_core.
# This may be replaced when dependencies are built.
