file(REMOVE_RECURSE
  "libjetsim_core.a"
)
