
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bottleneck.cc" "src/core/CMakeFiles/jetsim_core.dir/bottleneck.cc.o" "gcc" "src/core/CMakeFiles/jetsim_core.dir/bottleneck.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/jetsim_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/jetsim_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/jetsim_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/jetsim_core.dir/report.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/core/CMakeFiles/jetsim_core.dir/sweep.cc.o" "gcc" "src/core/CMakeFiles/jetsim_core.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/jetsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/jetsim_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/trt/CMakeFiles/jetsim_trt.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/jetsim_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/jetsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/jetsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/jetsim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/jetsim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/jetsim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jetsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
