# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("soc")
subdirs("cpu")
subdirs("gpu")
subdirs("cuda")
subdirs("graph")
subdirs("models")
subdirs("trt")
subdirs("prof")
subdirs("workload")
subdirs("core")
