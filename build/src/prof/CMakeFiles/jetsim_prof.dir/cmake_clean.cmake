file(REMOVE_RECURSE
  "CMakeFiles/jetsim_prof.dir/cdf.cc.o"
  "CMakeFiles/jetsim_prof.dir/cdf.cc.o.d"
  "CMakeFiles/jetsim_prof.dir/chrome_trace.cc.o"
  "CMakeFiles/jetsim_prof.dir/chrome_trace.cc.o.d"
  "CMakeFiles/jetsim_prof.dir/jstats.cc.o"
  "CMakeFiles/jetsim_prof.dir/jstats.cc.o.d"
  "CMakeFiles/jetsim_prof.dir/kernel_summary.cc.o"
  "CMakeFiles/jetsim_prof.dir/kernel_summary.cc.o.d"
  "CMakeFiles/jetsim_prof.dir/metrics.cc.o"
  "CMakeFiles/jetsim_prof.dir/metrics.cc.o.d"
  "CMakeFiles/jetsim_prof.dir/nsight.cc.o"
  "CMakeFiles/jetsim_prof.dir/nsight.cc.o.d"
  "CMakeFiles/jetsim_prof.dir/report.cc.o"
  "CMakeFiles/jetsim_prof.dir/report.cc.o.d"
  "libjetsim_prof.a"
  "libjetsim_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
