file(REMOVE_RECURSE
  "libjetsim_prof.a"
)
