# Empty compiler generated dependencies file for jetsim_prof.
# This may be replaced when dependencies are built.
