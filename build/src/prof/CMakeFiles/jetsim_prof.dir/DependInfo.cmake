
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prof/cdf.cc" "src/prof/CMakeFiles/jetsim_prof.dir/cdf.cc.o" "gcc" "src/prof/CMakeFiles/jetsim_prof.dir/cdf.cc.o.d"
  "/root/repo/src/prof/chrome_trace.cc" "src/prof/CMakeFiles/jetsim_prof.dir/chrome_trace.cc.o" "gcc" "src/prof/CMakeFiles/jetsim_prof.dir/chrome_trace.cc.o.d"
  "/root/repo/src/prof/jstats.cc" "src/prof/CMakeFiles/jetsim_prof.dir/jstats.cc.o" "gcc" "src/prof/CMakeFiles/jetsim_prof.dir/jstats.cc.o.d"
  "/root/repo/src/prof/kernel_summary.cc" "src/prof/CMakeFiles/jetsim_prof.dir/kernel_summary.cc.o" "gcc" "src/prof/CMakeFiles/jetsim_prof.dir/kernel_summary.cc.o.d"
  "/root/repo/src/prof/metrics.cc" "src/prof/CMakeFiles/jetsim_prof.dir/metrics.cc.o" "gcc" "src/prof/CMakeFiles/jetsim_prof.dir/metrics.cc.o.d"
  "/root/repo/src/prof/nsight.cc" "src/prof/CMakeFiles/jetsim_prof.dir/nsight.cc.o" "gcc" "src/prof/CMakeFiles/jetsim_prof.dir/nsight.cc.o.d"
  "/root/repo/src/prof/report.cc" "src/prof/CMakeFiles/jetsim_prof.dir/report.cc.o" "gcc" "src/prof/CMakeFiles/jetsim_prof.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/jetsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/jetsim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jetsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
