# Empty compiler generated dependencies file for jetsim_models.
# This may be replaced when dependencies are built.
