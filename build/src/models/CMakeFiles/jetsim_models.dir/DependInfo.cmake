
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/extra.cc" "src/models/CMakeFiles/jetsim_models.dir/extra.cc.o" "gcc" "src/models/CMakeFiles/jetsim_models.dir/extra.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/models/CMakeFiles/jetsim_models.dir/resnet.cc.o" "gcc" "src/models/CMakeFiles/jetsim_models.dir/resnet.cc.o.d"
  "/root/repo/src/models/yolov8.cc" "src/models/CMakeFiles/jetsim_models.dir/yolov8.cc.o" "gcc" "src/models/CMakeFiles/jetsim_models.dir/yolov8.cc.o.d"
  "/root/repo/src/models/zoo.cc" "src/models/CMakeFiles/jetsim_models.dir/zoo.cc.o" "gcc" "src/models/CMakeFiles/jetsim_models.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/jetsim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jetsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
