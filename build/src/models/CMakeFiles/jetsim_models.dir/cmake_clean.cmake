file(REMOVE_RECURSE
  "CMakeFiles/jetsim_models.dir/extra.cc.o"
  "CMakeFiles/jetsim_models.dir/extra.cc.o.d"
  "CMakeFiles/jetsim_models.dir/resnet.cc.o"
  "CMakeFiles/jetsim_models.dir/resnet.cc.o.d"
  "CMakeFiles/jetsim_models.dir/yolov8.cc.o"
  "CMakeFiles/jetsim_models.dir/yolov8.cc.o.d"
  "CMakeFiles/jetsim_models.dir/zoo.cc.o"
  "CMakeFiles/jetsim_models.dir/zoo.cc.o.d"
  "libjetsim_models.a"
  "libjetsim_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
