file(REMOVE_RECURSE
  "libjetsim_models.a"
)
