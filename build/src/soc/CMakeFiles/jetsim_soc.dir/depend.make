# Empty dependencies file for jetsim_soc.
# This may be replaced when dependencies are built.
