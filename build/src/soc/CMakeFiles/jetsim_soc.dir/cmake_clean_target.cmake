file(REMOVE_RECURSE
  "libjetsim_soc.a"
)
