file(REMOVE_RECURSE
  "CMakeFiles/jetsim_soc.dir/board.cc.o"
  "CMakeFiles/jetsim_soc.dir/board.cc.o.d"
  "CMakeFiles/jetsim_soc.dir/device_spec.cc.o"
  "CMakeFiles/jetsim_soc.dir/device_spec.cc.o.d"
  "CMakeFiles/jetsim_soc.dir/dvfs.cc.o"
  "CMakeFiles/jetsim_soc.dir/dvfs.cc.o.d"
  "CMakeFiles/jetsim_soc.dir/network_link.cc.o"
  "CMakeFiles/jetsim_soc.dir/network_link.cc.o.d"
  "CMakeFiles/jetsim_soc.dir/power.cc.o"
  "CMakeFiles/jetsim_soc.dir/power.cc.o.d"
  "CMakeFiles/jetsim_soc.dir/precision.cc.o"
  "CMakeFiles/jetsim_soc.dir/precision.cc.o.d"
  "CMakeFiles/jetsim_soc.dir/unified_memory.cc.o"
  "CMakeFiles/jetsim_soc.dir/unified_memory.cc.o.d"
  "libjetsim_soc.a"
  "libjetsim_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
