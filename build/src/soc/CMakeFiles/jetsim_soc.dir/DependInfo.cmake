
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/board.cc" "src/soc/CMakeFiles/jetsim_soc.dir/board.cc.o" "gcc" "src/soc/CMakeFiles/jetsim_soc.dir/board.cc.o.d"
  "/root/repo/src/soc/device_spec.cc" "src/soc/CMakeFiles/jetsim_soc.dir/device_spec.cc.o" "gcc" "src/soc/CMakeFiles/jetsim_soc.dir/device_spec.cc.o.d"
  "/root/repo/src/soc/dvfs.cc" "src/soc/CMakeFiles/jetsim_soc.dir/dvfs.cc.o" "gcc" "src/soc/CMakeFiles/jetsim_soc.dir/dvfs.cc.o.d"
  "/root/repo/src/soc/network_link.cc" "src/soc/CMakeFiles/jetsim_soc.dir/network_link.cc.o" "gcc" "src/soc/CMakeFiles/jetsim_soc.dir/network_link.cc.o.d"
  "/root/repo/src/soc/power.cc" "src/soc/CMakeFiles/jetsim_soc.dir/power.cc.o" "gcc" "src/soc/CMakeFiles/jetsim_soc.dir/power.cc.o.d"
  "/root/repo/src/soc/precision.cc" "src/soc/CMakeFiles/jetsim_soc.dir/precision.cc.o" "gcc" "src/soc/CMakeFiles/jetsim_soc.dir/precision.cc.o.d"
  "/root/repo/src/soc/unified_memory.cc" "src/soc/CMakeFiles/jetsim_soc.dir/unified_memory.cc.o" "gcc" "src/soc/CMakeFiles/jetsim_soc.dir/unified_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/jetsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
