file(REMOVE_RECURSE
  "CMakeFiles/jetsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/jetsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/jetsim_sim.dir/logging.cc.o"
  "CMakeFiles/jetsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/jetsim_sim.dir/rng.cc.o"
  "CMakeFiles/jetsim_sim.dir/rng.cc.o.d"
  "CMakeFiles/jetsim_sim.dir/stats.cc.o"
  "CMakeFiles/jetsim_sim.dir/stats.cc.o.d"
  "libjetsim_sim.a"
  "libjetsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
