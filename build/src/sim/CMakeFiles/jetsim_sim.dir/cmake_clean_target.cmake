file(REMOVE_RECURSE
  "libjetsim_sim.a"
)
