# Empty compiler generated dependencies file for jetsim_sim.
# This may be replaced when dependencies are built.
