# Empty compiler generated dependencies file for jetsim_graph.
# This may be replaced when dependencies are built.
