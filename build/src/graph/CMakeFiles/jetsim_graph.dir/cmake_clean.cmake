file(REMOVE_RECURSE
  "CMakeFiles/jetsim_graph.dir/network.cc.o"
  "CMakeFiles/jetsim_graph.dir/network.cc.o.d"
  "libjetsim_graph.a"
  "libjetsim_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
