file(REMOVE_RECURSE
  "libjetsim_graph.a"
)
