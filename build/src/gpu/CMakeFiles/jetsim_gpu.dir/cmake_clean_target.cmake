file(REMOVE_RECURSE
  "libjetsim_gpu.a"
)
