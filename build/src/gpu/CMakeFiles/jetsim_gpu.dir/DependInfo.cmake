
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cost_model.cc" "src/gpu/CMakeFiles/jetsim_gpu.dir/cost_model.cc.o" "gcc" "src/gpu/CMakeFiles/jetsim_gpu.dir/cost_model.cc.o.d"
  "/root/repo/src/gpu/engine.cc" "src/gpu/CMakeFiles/jetsim_gpu.dir/engine.cc.o" "gcc" "src/gpu/CMakeFiles/jetsim_gpu.dir/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/jetsim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jetsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
