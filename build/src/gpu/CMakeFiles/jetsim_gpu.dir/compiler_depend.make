# Empty compiler generated dependencies file for jetsim_gpu.
# This may be replaced when dependencies are built.
