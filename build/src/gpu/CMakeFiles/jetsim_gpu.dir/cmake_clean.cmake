file(REMOVE_RECURSE
  "CMakeFiles/jetsim_gpu.dir/cost_model.cc.o"
  "CMakeFiles/jetsim_gpu.dir/cost_model.cc.o.d"
  "CMakeFiles/jetsim_gpu.dir/engine.cc.o"
  "CMakeFiles/jetsim_gpu.dir/engine.cc.o.d"
  "libjetsim_gpu.a"
  "libjetsim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
