file(REMOVE_RECURSE
  "libjetsim_trt.a"
)
