# Empty compiler generated dependencies file for jetsim_trt.
# This may be replaced when dependencies are built.
