file(REMOVE_RECURSE
  "CMakeFiles/jetsim_trt.dir/builder.cc.o"
  "CMakeFiles/jetsim_trt.dir/builder.cc.o.d"
  "CMakeFiles/jetsim_trt.dir/execution_context.cc.o"
  "CMakeFiles/jetsim_trt.dir/execution_context.cc.o.d"
  "CMakeFiles/jetsim_trt.dir/fusion.cc.o"
  "CMakeFiles/jetsim_trt.dir/fusion.cc.o.d"
  "CMakeFiles/jetsim_trt.dir/serialize.cc.o"
  "CMakeFiles/jetsim_trt.dir/serialize.cc.o.d"
  "libjetsim_trt.a"
  "libjetsim_trt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_trt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
