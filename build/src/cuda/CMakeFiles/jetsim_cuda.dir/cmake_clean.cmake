file(REMOVE_RECURSE
  "CMakeFiles/jetsim_cuda.dir/device_buffer.cc.o"
  "CMakeFiles/jetsim_cuda.dir/device_buffer.cc.o.d"
  "CMakeFiles/jetsim_cuda.dir/stream.cc.o"
  "CMakeFiles/jetsim_cuda.dir/stream.cc.o.d"
  "libjetsim_cuda.a"
  "libjetsim_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
