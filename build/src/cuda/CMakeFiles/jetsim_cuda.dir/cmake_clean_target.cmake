file(REMOVE_RECURSE
  "libjetsim_cuda.a"
)
