
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuda/device_buffer.cc" "src/cuda/CMakeFiles/jetsim_cuda.dir/device_buffer.cc.o" "gcc" "src/cuda/CMakeFiles/jetsim_cuda.dir/device_buffer.cc.o.d"
  "/root/repo/src/cuda/stream.cc" "src/cuda/CMakeFiles/jetsim_cuda.dir/stream.cc.o" "gcc" "src/cuda/CMakeFiles/jetsim_cuda.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/jetsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/jetsim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jetsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
