# Empty compiler generated dependencies file for jetsim_cuda.
# This may be replaced when dependencies are built.
