file(REMOVE_RECURSE
  "CMakeFiles/jetsim_cpu.dir/scheduler.cc.o"
  "CMakeFiles/jetsim_cpu.dir/scheduler.cc.o.d"
  "libjetsim_cpu.a"
  "libjetsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jetsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
