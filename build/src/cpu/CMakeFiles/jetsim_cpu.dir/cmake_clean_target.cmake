file(REMOVE_RECURSE
  "libjetsim_cpu.a"
)
