# Empty dependencies file for jetsim_cpu.
# This may be replaced when dependencies are built.
