/**
 * @file
 * Compile-time fixture for the JETSIM_THREAD_SAFETY gate.
 *
 * Built twice by CMake when the option is ON and the compiler is
 * Clang (see the try_compile calls in the top-level CMakeLists):
 *
 *  - without JETSIM_TS_PROBE_BUG it MUST compile: proves the
 *    annotated core::Mutex / core::LockGuard idiom satisfies the
 *    analysis (a broken macro layer would fail here, not deep in
 *    the tree);
 *  - with    JETSIM_TS_PROBE_BUG it MUST NOT compile: proves
 *    -Wthread-safety -Werror=thread-safety actually rejects an
 *    unguarded write to a JETSIM_GUARDED_BY field. If this half
 *    ever *succeeds*, the analysis is silently off and CMake fails
 *    the configure with a hard error.
 */

#include "core/mutex.hh"
#include "core/thread_annotations.hh"

namespace {

class Counter
{
  public:
    void bump()
    {
        jetsim::core::LockGuard lock(mu_);
        ++value_;
    }

#ifdef JETSIM_TS_PROBE_BUG
    /** Unguarded write: the analysis must reject this function. */
    void bumpRacy() { ++value_; }
#endif

    long read()
    {
        jetsim::core::LockGuard lock(mu_);
        return value_;
    }

  private:
    jetsim::core::Mutex mu_;
    long value_ JETSIM_GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    c.bump();
#ifdef JETSIM_TS_PROBE_BUG
    c.bumpRacy();
#endif
    return c.read() == 0;
}
