/**
 * @file
 * Fig 8: power consumption for int8 models on the Jetson Orin Nano
 * over the batch x process grid.
 *
 * Paper shape: power generally rises with batch size, but the
 * process dimension is non-monotonic (DVFS keeps the rail under the
 * 7 W budget, trading throughput for power); FCN_ResNet50 draws the
 * most at every cell.
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

int
main()
{
    const std::vector<int> batches = {1, 2, 4, 8, 16};
    const std::vector<int> procs = {1, 2, 4, 8};

    for (const auto &model : models::paperModelNames()) {
        core::ExperimentSpec base;
        base.device = "orin-nano";
        base.model = model;
        base.precision = soc::Precision::Int8;
        bench::applyBenchTiming(base);

        const auto results =
            core::sweepGrid(base, batches, procs, bench::progress());

        prof::printHeading(std::cout, "Fig 8 (orin-nano, int8): " +
                                          model + " power [W]");
        prof::Table t({"procs\\batch", "b1", "b2", "b4", "b8", "b16"});
        std::size_t i = 0;
        double peak = 0;
        int throttles = 0;
        for (int p : procs) {
            std::vector<std::string> row = {"p" + std::to_string(p)};
            for (std::size_t b = 0; b < batches.size(); ++b) {
                const auto &r = results[i++];
                row.push_back(r.all_deployed
                                  ? prof::fmt(r.avg_power_w)
                                  : "OOM");
                peak = std::max(peak, r.max_power_w);
                throttles += r.dvfs_throttle_events;
            }
            t.addRow(row);
        }
        t.print(std::cout);
        std::printf("\npeak %.2f W (cap 7 W), DVFS throttle events "
                    "across grid: %d\n",
                    peak, throttles);
    }
    return 0;
}
