/**
 * @file
 * Extension bench: heterogeneous multi-tenancy sweep.
 *
 * The paper's related work reports up to 3.8x aggregate throughput
 * from running concurrent DL applications on edge devices. This
 * bench measures aggregate throughput of mixed tenant sets against
 * the best single tenant, across sharing modes.
 */

#include "bench_util.hh"

using namespace jetsim;

namespace {

core::MixedExperimentResult
runMix(std::vector<core::WorkloadSpec> workloads, bool spatial)
{
    core::MixedExperimentSpec s;
    s.device = "orin-nano";
    s.workloads = std::move(workloads);
    s.spatial_sharing = spatial;
    s.warmup = sim::msec(300);
    s.duration = std::getenv("JETSIM_QUICK") ? sim::msec(500)
                                             : sim::sec(2);
    std::fprintf(stderr, "  running %s\n", s.label().c_str());
    return core::runMixedExperiment(s);
}

} // namespace

int
main()
{
    using core::WorkloadSpec;
    using soc::Precision;

    const WorkloadSpec rn{"resnet50", Precision::Int8, 1, 1};
    const WorkloadSpec yolo{"yolov8n", Precision::Fp16, 1, 1};
    const WorkloadSpec mbv2{"mobilenet_v2", Precision::Int8, 1, 1};
    const WorkloadSpec fcn{"fcn_resnet50", Precision::Int8, 1, 1};

    struct Case
    {
        const char *name;
        std::vector<WorkloadSpec> mix;
    };
    const std::vector<Case> cases = {
        {"resnet50 alone", {rn}},
        {"resnet50 + yolov8n", {rn, yolo}},
        {"resnet50 + mobilenet_v2", {rn, mbv2}},
        {"resnet50 + yolov8n + mobilenet_v2", {rn, yolo, mbv2}},
        {"fcn + mobilenet_v2", {fcn, mbv2}},
    };

    prof::printHeading(std::cout,
                       "Extension: mixed multi-tenancy on Orin Nano");
    prof::Table t({"tenant set", "sharing", "aggregate (img/s)",
                   "power (W)", "gpu util (%)", "mem (MiB)"});
    for (const auto &c : cases) {
        for (bool spatial : {false, true}) {
            const auto r = runMix(c.mix, spatial);
            t.addRow({c.name, spatial ? "spatial" : "time-mux",
                      r.all_deployed ? prof::fmt(r.total_throughput, 1)
                                     : "OOM",
                      prof::fmt(r.avg_power_w),
                      prof::fmt(r.gpu_util_pct, 1),
                      prof::fmt(r.workload_mem_mb, 0)});
        }
    }
    t.print(std::cout);

    std::printf("\nheterogeneous tenants with complementary compute "
                "shapes share the GPU more productively than extra "
                "copies of one heavy model.\n");
    return 0;
}
