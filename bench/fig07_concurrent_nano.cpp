/**
 * @file
 * Fig 7: GPU memory usage (%) and throughput-per-process for fp16
 * models on the Jetson Nano, over the batch x process grid.
 *
 * Paper shape: same trends as Fig 6 at much lower absolute levels;
 * FCN_ResNet50 cannot deploy 4 processes (memory exhaustion - the
 * board reboots in the paper; we report the failed cell).
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

int
main()
{
    const std::vector<int> batches = {1, 2, 4, 8};
    const std::vector<int> procs = {1, 2, 4};

    for (const auto &model : models::paperModelNames()) {
        core::ExperimentSpec base;
        base.device = "nano";
        base.model = model;
        base.precision = soc::Precision::Fp16;
        bench::applyBenchTiming(base);

        const auto results =
            core::sweepGrid(base, batches, procs, bench::progress());

        prof::printHeading(std::cout, "Fig 7 (nano, fp16): " + model +
                                          " T/P [img/s per process]");
        prof::Table tput({"procs\\batch", "b1", "b2", "b4", "b8"});
        prof::Table mem({"procs\\batch", "b1", "b2", "b4", "b8"});
        std::size_t i = 0;
        for (int p : procs) {
            std::vector<std::string> trow = {"p" + std::to_string(p)};
            std::vector<std::string> mrow = trow;
            for (std::size_t b = 0; b < batches.size(); ++b) {
                const auto &r = results[i++];
                trow.push_back(bench::tpCell(r));
                mrow.push_back(
                    r.all_deployed
                        ? prof::fmt(100.0 * r.workload_mem_mb / 4096.0,
                                    1)
                        : "OOM");
            }
            tput.addRow(trow);
            mem.addRow(mrow);
        }
        tput.print(std::cout);
        std::cout << "\nGPU memory (workload % of 4 GB):\n";
        mem.print(std::cout);
        bench::printObservations(results);
    }
    return 0;
}
