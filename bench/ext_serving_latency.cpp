/**
 * @file
 * Extension bench: open-loop latency-throughput curve.
 *
 * The paper's trtexec methodology measures the capacity bound; a
 * deployment decision also needs the latency curve under offered
 * load (where is the knee, what does p99 look like near saturation).
 * This bench sweeps Poisson arrival rates against a YoloV8n int8
 * server on the Orin Nano and prints the curve, plus the effect of
 * the 15 W power mode.
 */

#include "bench_util.hh"

#include "cpu/scheduler.hh"
#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "sim/logging.hh"
#include "workload/serving_process.hh"

using namespace jetsim;

namespace {

struct Point
{
    double offered;
    double achieved;
    double p50_ms;
    double p99_ms;
    std::size_t max_queue;
};

Point
run(const std::string &device, double rate)
{
    sim::EventQueue eq;
    soc::Board board(soc::deviceByName(device), eq);
    board.start();
    cpu::OsScheduler sched(board);
    gpu::GpuEngine gpu(board);
    const auto net = models::yolov8n();

    workload::ServingConfig cfg;
    cfg.name = "srv";
    cfg.build.precision = soc::Precision::Int8;
    cfg.arrival_rate = rate;
    workload::ServingProcess p(board, sched, gpu, net, cfg);
    if (!p.deploy())
        sim::fatal("deploy failed");
    p.start();
    eq.runUntil(sim::msec(500));
    p.beginMeasurement();
    const sim::Tick dur = std::getenv("JETSIM_QUICK")
                              ? sim::sec(1)
                              : sim::sec(4);
    eq.runUntil(eq.now() + dur);
    p.endMeasurement();
    p.stopArrivals();

    Point pt;
    pt.offered = rate;
    pt.achieved = p.achievedThroughput();
    pt.p50_ms = p.requestLatency().empty()
                    ? 0.0
                    : p.requestLatency().median() / 1e6;
    pt.p99_ms = p.requestLatency().empty()
                    ? 0.0
                    : p.requestLatency().quantile(0.99) / 1e6;
    pt.max_queue = p.maxQueueDepth();
    return pt;
}

} // namespace

int
main()
{
    for (const char *device : {"orin-nano", "orin-nano-15w"}) {
        prof::printHeading(std::cout,
                           std::string("Extension: open-loop serving "
                                       "curve, yolov8n int8 b1 on ") +
                               device);
        prof::Table t({"offered (img/s)", "achieved (img/s)",
                       "p50 (ms)", "p99 (ms)", "max queue"});
        for (double rate : {25.0, 50.0, 100.0, 150.0, 200.0, 250.0,
                            300.0, 400.0}) {
            std::fprintf(stderr, "  running %s @ %.0f img/s\n", device,
                         rate);
            const auto pt = run(device, rate);
            t.addRow({prof::fmt(pt.offered, 0),
                      prof::fmt(pt.achieved, 1),
                      prof::fmt(pt.p50_ms), prof::fmt(pt.p99_ms),
                      std::to_string(pt.max_queue)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::printf("the knee of the curve - not the trtexec capacity "
                "bound - is the deployable operating point; the 15 W "
                "mode moves it right.\n");
    return 0;
}
