/**
 * @file
 * Ablation A3: the big.LITTLE heavy-load partition.
 *
 * The paper attributes the 4+-process blocking threshold on Orin
 * Nano to the 3 heavy-load cores. Lifting the partition (letting
 * inference threads use all 6 cores) moves the threshold and shrinks
 * blocking - quantified here.
 */

#include "bench_util.hh"

using namespace jetsim;

int
main()
{
    prof::printHeading(std::cout,
                       "Ablation A3: big.LITTLE partition (orin-nano, "
                       "resnet50 int8, b1)");
    prof::Table t({"procs", "partition", "T/P (img/s)",
                   "blocking (ms/EC)", "EC (ms)"});
    std::vector<core::ExperimentSpec> specs;
    for (int procs : {2, 4, 6, 8}) {
        for (bool part : {true, false}) {
            core::ExperimentSpec s;
            s.device = "orin-nano";
            s.model = "resnet50";
            s.precision = soc::Precision::Int8;
            s.processes = procs;
            s.biglittle = part;
            bench::applyBenchTiming(s);
            specs.push_back(s);
        }
    }
    for (const auto &r : bench::runParallel(specs))
        t.addRow({std::to_string(r.spec.processes),
                  r.spec.biglittle ? "3 big cores" : "all 6 cores",
                  prof::fmt(r.throughput_per_process, 1),
                  prof::fmt(r.mean.blocking_ms_per_ec),
                  prof::fmt(r.mean.ec_ms)});
    t.print(std::cout);
    return 0;
}
