/**
 * @file
 * Extension bench: per-kernel time breakdown (the Nsight "CUDA GPU
 * kernel summary" view), showing *where* each model's time goes and
 * which kernels are compute-, memory- or latency-bound — the
 * hardware-aware optimisation guidance the paper's abstract calls
 * for.
 */

#include "bench_util.hh"

#include "cpu/scheduler.hh"
#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "prof/kernel_summary.hh"
#include "sim/logging.hh"
#include "workload/inference_process.hh"

using namespace jetsim;

namespace {

void
breakdown(const std::string &model, soc::Precision prec)
{
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    board.start();
    cpu::OsScheduler sched(board);
    gpu::GpuEngine gpu(board);
    const auto net = models::modelByName(model);

    workload::ProcessConfig cfg;
    cfg.name = "p0";
    cfg.build.precision = prec;
    workload::InferenceProcess p(board, sched, gpu, net, cfg);
    if (!p.deploy())
        sim::fatal("deploy failed");

    prof::KernelSummary summary(gpu);
    summary.attach();

    p.start();
    eq.runUntil(sim::msec(300));
    summary.clear();
    p.beginMeasurement();
    eq.runUntil(eq.now() + sim::sec(1));
    p.endMeasurement();
    p.stopEnqueue();

    prof::printHeading(std::cout,
                       model + " / " + soc::name(prec) +
                           " on orin-nano: top kernels by GPU time");
    prof::Table t({"kernel", "calls", "total (us)", "avg (us)",
                   "share (%)", "tc util", "bound"});
    for (const auto &k : summary.table(12))
        t.addRow({k.name, std::to_string(k.calls),
                  prof::fmt(k.total_us, 0), prof::fmt(k.avg_us(), 1),
                  prof::fmt(k.share_pct, 1),
                  prof::fmt(k.avg_tc_util, 2),
                  prof::boundName(k.bound)});
    t.print(std::cout);

    // Bound-ness mix over the whole engine.
    double comp = 0, mem = 0, lat = 0;
    for (const auto &k : summary.table()) {
        switch (k.bound) {
          case prof::KernelBound::Compute: comp += k.share_pct; break;
          case prof::KernelBound::Memory: mem += k.share_pct; break;
          case prof::KernelBound::Latency: lat += k.share_pct; break;
        }
    }
    std::printf("\nGPU time split: %.0f%% compute-bound, %.0f%% "
                "memory-bound, %.0f%% latency-bound\n",
                comp, mem, lat);
}

} // namespace

int
main()
{
    breakdown("resnet50", soc::Precision::Int8);
    breakdown("fcn_resnet50", soc::Precision::Fp16);
    breakdown("yolov8n", soc::Precision::Int8);
    return 0;
}
