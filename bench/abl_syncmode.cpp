/**
 * @file
 * Ablation A7: spin-wait vs blocking synchronisation.
 *
 * trtexec's low-latency spin sync keeps CPU cores busy while the GPU
 * works; the blocking alternative yields the core. The paper's
 * blocking-time growth (S7) is a spin-mode phenomenon: with more
 * spinners than heavy cores, the OS time-shares them and completion
 * detection is deferred. Blocking sync trades that for wake-up
 * latency and lower CPU burn.
 */

#include "bench_util.hh"

#include "core/profiler.hh"
#include "cpu/scheduler.hh"
#include "sim/logging.hh"
#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "workload/inference_process.hh"

using namespace jetsim;

namespace {

struct Row
{
    double tput_per_proc;
    double blocking_ms;
    double cpu_ms_per_ec;
};

Row
run(int procs, bool spin)
{
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    board.start();
    cpu::OsScheduler sched(board);
    gpu::GpuEngine gpu(board);
    const auto net = models::resnet50();

    std::vector<std::unique_ptr<workload::InferenceProcess>> ps;
    for (int i = 0; i < procs; ++i) {
        workload::ProcessConfig cfg;
        cfg.name = "p" + std::to_string(i);
        cfg.build.precision = soc::Precision::Int8;
        cfg.spin_wait = spin;
        cfg.start_offset = sim::msec(7) * i;
        ps.push_back(std::make_unique<workload::InferenceProcess>(
            board, sched, gpu, net, cfg));
        if (!ps.back()->deploy())
            sim::fatal("deploy failed");
        ps.back()->start();
    }
    eq.runUntil(sim::msec(300));
    for (auto &p : ps)
        p->beginMeasurement();
    eq.runUntil(eq.now() + sim::sec(2));
    Row row{0, 0, 0};
    for (auto &p : ps) {
        p->endMeasurement();
        p->stopEnqueue();
        row.tput_per_proc += p->throughput() / procs;
        row.blocking_ms += sim::toMsec(static_cast<sim::Tick>(
                               p->blockedTime().count()
                                   ? p->blockedTime().mean()
                                   : 0.0)) /
                           procs;
        const double ecs =
            p->ecsCompleted() ? double(p->ecsCompleted()) : 1.0;
        row.cpu_ms_per_ec +=
            sim::toMsec(p->thread().cpuTime()) / ecs / procs;
    }
    return row;
}

} // namespace

int
main()
{
    prof::printHeading(std::cout,
                       "Ablation A7: sync mode (orin-nano, resnet50 "
                       "int8, b1)");
    prof::Table t({"procs", "sync", "T/P (img/s)", "blocking (ms/EC)",
                   "cpu (ms/EC)"});
    for (int procs : {1, 4, 8}) {
        for (bool spin : {true, false}) {
            std::fprintf(stderr, "  running p%d %s\n", procs,
                         spin ? "spin" : "block");
            const Row r = run(procs, spin);
            t.addRow({std::to_string(procs),
                      spin ? "spin-wait" : "blocking",
                      prof::fmt(r.tput_per_proc, 1),
                      prof::fmt(r.blocking_ms),
                      prof::fmt(r.cpu_ms_per_ec)});
        }
    }
    t.print(std::cout);
    std::printf("\nspin-wait burns CPU for latency; blocking sync "
                "frees the cores but pays wake-up costs.\n");
    return 0;
}
