/**
 * @file
 * Ablation A4: profiler intrusion.
 *
 * The paper reports that attaching Nsight Systems (phase 2) cuts
 * throughput by ~50 %. This ablation measures the light phase, the
 * deep phase, and a hypothetical zero-overhead tracer.
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

int
main()
{
    prof::printHeading(std::cout,
                       "Ablation A4: profiling intrusion (orin-nano, "
                       "int8, b1, 1 process)");
    prof::Table t({"model", "phase 1 (img/s)", "phase 2 (img/s)",
                   "intrusion (%)"});
    for (const auto &model : models::paperModelNames()) {
        core::ExperimentSpec s;
        s.device = "orin-nano";
        s.model = model;
        s.precision = soc::Precision::Int8;
        bench::applyBenchTiming(s);
        bench::progress()(s.label());
        const auto [light, deep] = core::runTwoPhase(s);
        const double loss =
            100.0 *
            (1.0 - deep.total_throughput / light.total_throughput);
        t.addRow({model, prof::fmt(light.total_throughput, 1),
                  prof::fmt(deep.total_throughput, 1),
                  prof::fmt(loss, 0)});
    }
    t.print(std::cout);
    std::printf("\npaper: the phase-2 profiler reduced throughput by "
                "~50%%; phase-1 tools are non-intrusive.\n");
    return 0;
}
