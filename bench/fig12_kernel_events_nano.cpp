/**
 * @file
 * Fig 12: the Fig 11 decomposition for ResNet50 fp16 on the Jetson
 * Nano.
 *
 * Paper shape: EC duration largely invariant per image across batch
 * sizes while per-EC launch cost amortises; once the process count
 * exceeds half the 4 cores (i.e. the 2 heavy-load cores), EC
 * duration roughly doubles beyond pure sharing.
 */

#include "bench_util.hh"

using namespace jetsim;

namespace {

void
printDecomposition(const std::vector<core::ExperimentResult> &results,
                   bool batch_axis)
{
    prof::Table t({batch_axis ? "batch" : "procs", "EC (ms)",
                   "EC/img (ms)", "K launch (ms)", "K/img (ms)",
                   "sync (ms)", "B block (ms)", "C cpu (ms)",
                   "bottleneck"});
    for (const auto &r : results) {
        if (!r.all_deployed)
            continue;
        const auto b = core::analyzeBottleneck(r);
        const int n = r.spec.batch;
        const std::string key =
            (batch_axis ? "b" : "p") +
            std::to_string(batch_axis ? r.spec.batch
                                      : r.spec.processes);
        t.addRow({key, prof::fmt(b.ec_ms), prof::fmt(b.ec_ms / n),
                  prof::fmt(b.launch_ms), prof::fmt(b.launch_ms / n),
                  prof::fmt(b.sync_ms), prof::fmt(b.blocking_ms),
                  prof::fmt(b.cpu_ms),
                  core::bottleneckName(b.primary)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    core::ExperimentSpec base;
    base.device = "nano";
    base.model = "resnet50";
    base.precision = soc::Precision::Fp16;
    base.phase = core::Phase::Deep;
    bench::applyBenchTiming(base);

    prof::printHeading(std::cout,
                       "Fig 12 left (nano, resnet50 fp16): events vs "
                       "batch size (1 process)");
    const auto by_batch =
        core::sweepBatch(base, {1, 2, 4, 8}, bench::progress());
    printDecomposition(by_batch, true);

    prof::printHeading(std::cout,
                       "Fig 12 right (nano, resnet50 fp16): events "
                       "vs process count (batch 1)");
    std::vector<core::ExperimentSpec> proc_specs;
    for (int p : {1, 2, 4}) {
        auto s = base;
        s.processes = p;
        proc_specs.push_back(s);
    }
    const auto by_procs = bench::runParallel(proc_specs);
    printDecomposition(by_procs, false);

    // The S7 threshold statement, checked inline.
    if (by_procs.size() == 3 && by_procs[1].all_deployed &&
        by_procs[2].all_deployed) {
        std::printf("\nEC inflation p2 -> p4: %.2fx (paper: ~2x past "
                    "half the cores)\n",
                    by_procs[2].mean.ec_ms / by_procs[1].mean.ec_ms);
    }
    bench::printObservations(by_procs);
    return 0;
}
