/**
 * @file
 * Fig 10: SM-active, issue-slot and tensor-core utilisation CDFs vs
 * concurrent process count (batch 1, int8, Jetson Orin Nano,
 * phase 2).
 *
 * Paper shape: SM-active rises with process count (the GPU always
 * holds someone's resident warps, and switch periods count as
 * active); issue-slot stays flat near ~25 % on average and never
 * exceeds ~80 %; TC utilisation sags from ~25-30 % towards 15-20 %
 * at 4-8 processes.
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

int
main()
{
    prof::printHeading(std::cout,
                       "Fig 10 (orin-nano, int8, b1, phase 2): "
                       "counter CDFs vs process count [percent]");
    prof::Table t({"model", "procs", "counter", "p10", "p50", "p90",
                   "max"});
    std::vector<core::ExperimentSpec> specs;
    for (const auto &model : models::paperModelNames()) {
        for (int procs : {1, 2, 4, 8}) {
            core::ExperimentSpec s;
            s.device = "orin-nano";
            s.model = model;
            s.precision = soc::Precision::Int8;
            s.processes = procs;
            s.phase = core::Phase::Deep;
            bench::applyBenchTiming(s);
            specs.push_back(s);
        }
    }
    auto all = bench::runParallel(specs);

    for (const auto &r : all) {
        auto row = [&](const char *counter, const prof::Cdf &c) {
            if (c.empty())
                return;
            t.addRow({r.spec.model,
                      std::to_string(r.spec.processes), counter,
                      prof::fmt(c.quantile(0.10), 1),
                      prof::fmt(c.median(), 1),
                      prof::fmt(c.quantile(0.90), 1),
                      prof::fmt(c.max(), 1)});
        };
        row("sm_active", r.sm_active);
        row("issue_slot", r.issue_slot);
        row("tc_util", r.tc_util);
    }
    t.print(std::cout);

    // Trend summary: median TC utilisation by process count.
    prof::printHeading(std::cout,
                       "median tc_util by process count (ResNet50)");
    for (const auto &r : all)
        if (r.spec.model == "resnet50" && !r.tc_util.empty())
            std::printf("  p%-2d  %.1f%%\n", r.spec.processes,
                        r.tc_util.median());
    bench::printObservations(all);
    return 0;
}
