/**
 * @file
 * Fig 3: GPU memory usage and throughput vs precision for the three
 * vision workloads on both devices (batch 1, single process).
 *
 * Paper shape: on Orin Nano int8 wins everywhere (9.75x / 12x / ~3x
 * over fp32) and memory grows with precision width; on Jetson Nano
 * fp16 wins because int8/tf32 lack native kernels and fall back.
 */

#include "bench_util.hh"

#include "models/zoo.hh"
#include "trt/builder.hh"

using namespace jetsim;

int
main()
{
    for (const char *device : {"orin-nano", "nano"}) {
        prof::printHeading(std::cout,
                           std::string("Fig 3 (") + device +
                               "): memory & throughput vs precision");
        prof::Table t({"model", "precision", "throughput (img/s)",
                       "workload mem (MiB)", "fallback ops"});

        std::vector<core::ExperimentResult> all;
        for (const auto &model : models::paperModelNames()) {
            core::ExperimentSpec base;
            base.device = device;
            base.model = model;
            bench::applyBenchTiming(base);
            auto rs = core::sweepPrecision(
                base,
                {soc::Precision::Int8, soc::Precision::Fp16,
                 soc::Precision::Tf32, soc::Precision::Fp32},
                bench::progress());
            for (const auto &r : rs) {
                // Report the builder's fallback count for the cell.
                trt::Builder builder(soc::deviceByName(device));
                trt::BuilderConfig cfg;
                cfg.precision = r.spec.precision;
                const auto engine =
                    builder.build(models::modelByName(model), cfg);
                t.addRow({model, soc::name(r.spec.precision),
                          prof::fmt(r.total_throughput, 1),
                          prof::fmt(r.workload_mem_mb, 0),
                          std::to_string(engine.fallbackOps())});
                all.push_back(r);
            }
        }
        t.print(std::cout);

        // Headline ratios.
        for (std::size_t m = 0; m < 3; ++m) {
            const auto &i8 = all[m * 4 + 0];
            const auto &f32 = all[m * 4 + 3];
            if (i8.total_throughput > 0 && f32.total_throughput > 0)
                std::printf("%-14s int8/fp32 speed-up: %.2fx, "
                            "fp32/int8 memory: %.2fx\n",
                            i8.spec.model.c_str(),
                            i8.total_throughput / f32.total_throughput,
                            f32.workload_mem_mb / i8.workload_mem_mb);
        }
        bench::printObservations(all);
    }
    return 0;
}
