/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench prints the rows/series of one paper artefact on
 * stdout, with a progress line per grid cell on stderr.
 */

#ifndef JETSIM_BENCH_BENCH_UTIL_HH
#define JETSIM_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/bottleneck.hh"
#include "core/profiler.hh"
#include "core/runner.hh"
#include "core/sweep.hh"
#include "prof/report.hh"
#include "soc/device_spec.hh"

namespace jetsim::bench {

/**
 * Hardware baseline shared by every committed BENCH_*.json: numbers
 * recorded on different host classes are not comparable, so each
 * emitter stamps this note into its output.
 */
inline constexpr const char *kHostNote =
    "1-core Intel Xeon @ 2.10GHz container; shared host, min over "
    "repetitions; RelWithDebInfo (-O2)";

/** Progress callback for sweeps: one stderr line per cell. */
inline core::ProgressFn
progress()
{
    return [](const std::string &label) {
        std::fprintf(stderr, "  running %s\n", label.c_str());
    };
}

/**
 * Run an explicit cell list through the parallel runner (auto thread
 * count via JETSIM_THREADS, result cache via JETSIM_CACHE_DIR), with
 * the standard per-cell progress line. Results come back in
 * submission order and bit-identical to a serial loop, so callers
 * index them exactly as they built the spec list.
 */
inline std::vector<core::ExperimentResult>
runParallel(const std::vector<core::ExperimentSpec> &specs)
{
    core::Runner runner;
    auto results = runner.run(specs, progress());
    const auto stats = runner.cacheStats();
    if (stats.hits > 0)
        std::fprintf(stderr, "  (%llu of %zu cells from cache)\n",
                     static_cast<unsigned long long>(stats.hits),
                     specs.size());
    return results;
}

/** Heterogeneous counterpart of runParallel(). */
inline std::vector<core::MixedExperimentResult>
runParallelMixed(const std::vector<core::MixedExperimentSpec> &specs)
{
    core::Runner runner;
    return runner.runMixed(specs, progress());
}

/**
 * Common sweep timing: benches favour wall-clock over variance, so
 * they run shorter windows than the library defaults. JETSIM_QUICK=1
 * shrinks them further for smoke runs.
 */
inline void
applyBenchTiming(core::ExperimentSpec &spec)
{
    const bool quick = std::getenv("JETSIM_QUICK") != nullptr;
    spec.warmup = sim::msec(quick ? 150 : 300);
    spec.duration = quick ? sim::msec(500) : sim::sec(2);
}

/** Render a throughput-per-process cell, or "OOM" for failures. */
inline std::string
tpCell(const core::ExperimentResult &r)
{
    if (!r.all_deployed)
        return "OOM(" + std::to_string(r.deployed_count) + "/" +
               std::to_string(r.spec.processes) + ")";
    return prof::fmt(r.throughput_per_process, 1);
}

/** Print the observation list a sweep generated. */
inline void
printObservations(const std::vector<core::ExperimentResult> &results)
{
    const auto obs = core::makeObservations(results);
    if (obs.empty())
        return;
    prof::printHeading(std::cout, "Observations");
    for (const auto &o : obs)
        std::printf("  [%s] %s\n", o.id.c_str(), o.text.c_str());
}

} // namespace jetsim::bench

#endif // JETSIM_BENCH_BENCH_UTIL_HH
