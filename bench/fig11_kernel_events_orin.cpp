/**
 * @file
 * Fig 11: GPU and CPU event decomposition for ResNet50 int8 on the
 * Jetson Orin Nano - EC duration, launch-API time, sync span,
 * blocking, rescheduling and CPU work per EC, vs batch size (left)
 * and vs process count (right).
 *
 * Paper shape: EC duration grows only mildly with batch relative to
 * the batch factor (per-image EC time falls); with processes past
 * the 3 heavy-load cores, blocking (B_l ~1-2 ms), launch and
 * cache-penalty terms all climb and EC inflates beyond pure sharing.
 */

#include "bench_util.hh"

using namespace jetsim;

namespace {

void
printDecomposition(const std::vector<core::ExperimentResult> &results,
                   const char *axis)
{
    prof::Table t({axis, "EC (ms)", "EC/img (ms)", "K launch (ms)",
                   "sync (ms)", "B block (ms)", "T resched (ms)",
                   "C cpu (ms)", "cache pen (ms)", "bottleneck"});
    for (const auto &r : results) {
        if (!r.all_deployed)
            continue;
        const auto b = core::analyzeBottleneck(r);
        const int n = r.spec.batch;
        const std::string key =
            std::string(axis[0] == 'b' ? "b" : "p") +
            std::to_string(axis[0] == 'b' ? r.spec.batch
                                          : r.spec.processes);
        t.addRow({key, prof::fmt(b.ec_ms), prof::fmt(b.ec_ms / n),
                  prof::fmt(b.launch_ms), prof::fmt(b.sync_ms),
                  prof::fmt(b.blocking_ms), prof::fmt(b.resched_ms),
                  prof::fmt(b.cpu_ms), prof::fmt(b.cache_ms),
                  core::bottleneckName(b.primary)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    core::ExperimentSpec base;
    base.device = "orin-nano";
    base.model = "resnet50";
    base.precision = soc::Precision::Int8;
    base.phase = core::Phase::Deep;
    bench::applyBenchTiming(base);

    prof::printHeading(std::cout,
                       "Fig 11 left (orin-nano, resnet50 int8): "
                       "events vs batch size (1 process)");
    const auto by_batch = core::sweepBatch(base, {1, 2, 4, 8, 16},
                                           bench::progress());
    printDecomposition(by_batch, "batch");

    prof::printHeading(std::cout,
                       "Fig 11 right (orin-nano, resnet50 int8): "
                       "events vs process count (batch 1)");
    std::vector<core::ExperimentSpec> proc_specs;
    for (int p : {1, 2, 4, 8}) {
        auto s = base;
        s.processes = p;
        proc_specs.push_back(s);
    }
    const auto by_procs = bench::runParallel(proc_specs);
    printDecomposition(by_procs, "procs");

    bench::printObservations(by_procs);
    return 0;
}
