/**
 * @file
 * Runner scaling baseline: serial vs parallel wall-clock for a fixed
 * reference grid, plus the warm-cache path, recorded as
 * BENCH_runner.json so the perf trajectory of the sweep loop is
 * tracked PR over PR.
 *
 * The reference grid is the paper's concurrency sweep shape: ResNet50
 * and YOLOv8n, batch {1,2,4,8} x processes {1,2,4} on orin-nano —
 * 24 cells. Each thread count runs the identical grid; digests are
 * cross-checked so the bench doubles as a determinism smoke test.
 *
 * Usage: bench_runner_scaling [out.json]   (default BENCH_runner.json)
 */

#include "bench_util.hh"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include "core/digest.hh"
#include "core/result_cache.hh"
#include "core/runner.hh"

using namespace jetsim;

namespace {

std::vector<core::ExperimentSpec>
referenceGrid()
{
    std::vector<core::ExperimentSpec> specs;
    for (const char *model : {"resnet50", "yolov8n"}) {
        for (const int procs : {1, 2, 4}) {
            for (const int batch : {1, 2, 4, 8}) {
                core::ExperimentSpec s;
                s.device = "orin-nano";
                s.model = model;
                s.precision = soc::Precision::Fp16;
                s.batch = batch;
                s.processes = procs;
                bench::applyBenchTiming(s);
                specs.push_back(s);
            }
        }
    }
    return specs;
}

double
wallSeconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_runner.json";
    const auto specs = referenceGrid();
    const unsigned cores = std::thread::hardware_concurrency();

    prof::printHeading(std::cout, "Runner scaling (reference grid)");
    std::printf("grid: %zu cells, host cores: %u\n", specs.size(),
                cores);

    struct Row
    {
        int threads;
        double wall_s;
        double cells_per_s;
    };
    std::vector<Row> rows;
    std::vector<std::uint64_t> reference;

    for (const int threads : {1, 2, 4, 8}) {
        core::Runner runner(threads);
        std::vector<core::ExperimentResult> results;
        const double wall =
            wallSeconds([&] { results = runner.run(specs); });

        std::vector<std::uint64_t> digests;
        digests.reserve(results.size());
        for (const auto &r : results)
            digests.push_back(core::resultDigest(r));
        if (reference.empty()) {
            reference = digests;
        } else if (digests != reference) {
            std::fprintf(stderr,
                         "bench_runner_scaling: digests at %d "
                         "threads diverge from serial!\n",
                         threads);
            return 1;
        }

        rows.push_back({threads, wall,
                        static_cast<double>(specs.size()) / wall});
        std::printf("  threads=%d  wall=%.3fs  cells/s=%.1f\n",
                    threads, wall, rows.back().cells_per_s);
    }

    // Warm-cache replay: the same grid served from the result cache.
    const std::string cache_dir = out_path + ".cache";
    double cold_s = 0;
    double warm_s = 0;
    {
        core::Runner cold(1, cache_dir);
        cold_s = wallSeconds([&] { cold.run(specs); });
        core::Runner warm(1, cache_dir);
        warm_s = wallSeconds([&] {
            const auto results = warm.run(specs);
            for (std::size_t i = 0; i < results.size(); ++i) {
                if (core::resultDigest(results[i]) != reference[i]) {
                    std::fprintf(stderr,
                                 "bench_runner_scaling: cached cell "
                                 "%zu diverges!\n",
                                 i);
                    std::exit(1);
                }
            }
        });
        if (warm.cacheStats().hits != specs.size()) {
            std::fprintf(stderr, "bench_runner_scaling: expected all "
                                 "cells cached\n");
            return 1;
        }
        std::filesystem::remove_all(cache_dir);
    }
    std::printf("  cache: cold=%.3fs warm=%.3fs (speedup %.1fx)\n",
                cold_s, warm_s, warm_s > 0 ? cold_s / warm_s : 0.0);

    const double speedup4 = rows[0].wall_s / rows[2].wall_s;
    std::printf("  speedup at 4 threads: %.2fx\n", speedup4);

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << "{\n  \"bench\": \"runner_scaling\",\n";
    out << "  \"host\": \"" << bench::kHostNote << "\",\n";
    out << "  \"grid_cells\": " << specs.size() << ",\n";
    out << "  \"host_cores\": " << cores << ",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "    {\"threads\": %d, \"wall_s\": %.4f, "
                      "\"cells_per_s\": %.2f}%s\n",
                      rows[i].threads, rows[i].wall_s,
                      rows[i].cells_per_s,
                      i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "  ],\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"speedup_4_threads\": %.3f,\n"
                  "  \"cache_cold_s\": %.4f,\n"
                  "  \"cache_warm_s\": %.4f,\n"
                  "  \"cache_speedup\": %.2f,\n"
                  "  \"deterministic_across_thread_counts\": true\n}\n",
                  speedup4, cold_s, warm_s,
                  warm_s > 0 ? cold_s / warm_s : 0.0);
    out << buf;
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
