/**
 * @file
 * Ablation A1: trtexec's pre-enqueue discipline.
 *
 * The paper notes that pre-enqueueing one batch removes GPU idling
 * on host preprocessing and makes measured throughput "an upper
 * bound for model throughput under ideal conditions". This ablation
 * quantifies the gap against a synchronous (enqueue -> wait) loop.
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

int
main()
{
    prof::printHeading(std::cout,
                       "Ablation A1: pre-enqueue depth vs throughput "
                       "(orin-nano, int8, b1, 1 process)");
    prof::Table t({"model", "pre-enqueue", "throughput (img/s)",
                   "gpu util (%)"});
    std::vector<core::ExperimentSpec> specs;
    for (const auto &model : models::paperModelNames()) {
        for (int depth : {0, 1, 2}) {
            core::ExperimentSpec s;
            s.device = "orin-nano";
            s.model = model;
            s.precision = soc::Precision::Int8;
            s.pre_enqueue = depth;
            bench::applyBenchTiming(s);
            specs.push_back(s);
        }
    }
    for (const auto &r : bench::runParallel(specs))
        t.addRow({r.spec.model, std::to_string(r.spec.pre_enqueue),
                  prof::fmt(r.total_throughput, 1),
                  prof::fmt(r.gpu_util_pct, 1)});
    t.print(std::cout);
    std::printf("\npre-enqueue=0 is the synchronous loop; >=1 is the "
                "trtexec upper-bound methodology.\n");
    return 0;
}
