/**
 * @file
 * Fig 6: GPU memory usage (%) and throughput-per-process for int8
 * ResNet50 / FCN_ResNet50 / YoloV8n on the Jetson Orin Nano, over
 * the batch x concurrent-process grid (YoloV8n additionally at 16
 * processes, as in the paper's memory discussion).
 *
 * Paper shape: T/P rises with batch (sub-linearly) and falls with
 * process count; memory grows with both, sharply with processes
 * (YoloV8n: <10 % at 1 proc / batch 8, >35 % towards 16 procs).
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

int
main()
{
    const std::vector<int> batches = {1, 2, 4, 8, 16};

    for (const auto &model : models::paperModelNames()) {
        const std::vector<int> procs =
            model == "yolov8n" ? std::vector<int>{1, 2, 4, 8, 16}
                               : std::vector<int>{1, 2, 4, 8};

        core::ExperimentSpec base;
        base.device = "orin-nano";
        base.model = model;
        base.precision = soc::Precision::Int8;
        bench::applyBenchTiming(base);

        const auto results =
            core::sweepGrid(base, batches, procs, bench::progress());

        prof::printHeading(std::cout, "Fig 6 (orin-nano, int8): " +
                                          model +
                                          " T/P [img/s per process]");
        prof::Table tput({"procs\\batch", "b1", "b2", "b4", "b8",
                          "b16"});
        prof::Table mem({"procs\\batch", "b1", "b2", "b4", "b8",
                         "b16"});
        std::size_t i = 0;
        for (int p : procs) {
            std::vector<std::string> trow = {"p" + std::to_string(p)};
            std::vector<std::string> mrow = trow;
            for (std::size_t b = 0; b < batches.size(); ++b) {
                const auto &r = results[i++];
                trow.push_back(bench::tpCell(r));
                mrow.push_back(
                    r.all_deployed
                        ? prof::fmt(100.0 * r.workload_mem_mb / 8192.0,
                                    1)
                        : "OOM");
            }
            tput.addRow(trow);
            mem.addRow(mrow);
        }
        tput.print(std::cout);
        std::cout << "\nGPU memory (workload % of 8 GB):\n";
        mem.print(std::cout);
        bench::printObservations(results);
    }
    return 0;
}
