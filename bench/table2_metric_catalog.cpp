/**
 * @file
 * Table 2: the metric taxonomy, printed from the catalogue.
 */

#include <iostream>

#include "prof/metrics.hh"
#include "prof/report.hh"

using namespace jetsim;

int
main()
{
    for (auto level : {prof::MetricLevel::Soc, prof::MetricLevel::Gpu,
                       prof::MetricLevel::Kernel}) {
        prof::printHeading(std::cout, prof::levelName(level));
        prof::Table t({"Metric", "Description", "Unit", "Tool"});
        for (const auto &m : prof::metricCatalog())
            if (m.level == level)
                t.addRow({m.name, m.description, m.unit,
                          prof::sourceName(m.source)});
        t.print(std::cout);
    }
    return 0;
}
