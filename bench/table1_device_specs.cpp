/**
 * @file
 * Table 1: NVIDIA Jetson GPU specifications, printed from the device
 * models (plus the A40-class cloud reference used by the intro).
 */

#include <iostream>

#include "prof/report.hh"
#include "soc/device_spec.hh"

using namespace jetsim;

int
main()
{
    prof::printHeading(std::cout, "Table 1: Edge GPU Specification");

    prof::Table t({"Metric", "Jetson Orin Nano", "Jetson Nano",
                   "(A40 cloud ref)"});

    const auto orin = soc::orinNano();
    const auto nano = soc::jetsonNano();
    const auto a40 = soc::cloudA40();

    auto cpu_row = [](const soc::DeviceSpec &d) {
        return std::to_string(d.totalCores()) + "-core " +
               d.clusters.front().name;
    };
    auto gpu_row = [](const soc::DeviceSpec &d) {
        return std::to_string(d.gpu.totalCudaCores()) + "-core " +
               d.gpu.arch;
    };
    auto tc_row = [](const soc::DeviceSpec &d) {
        return d.gpu.hasTensorCores()
                   ? std::to_string(d.gpu.totalTensorCores())
                   : std::string("-");
    };
    auto mem_row = [](const soc::DeviceSpec &d) {
        return prof::fmt(sim::toMiB(d.memory.total) / 1024.0, 0) +
               "GB";
    };
    auto pow_row = [](const soc::DeviceSpec &d) {
        return prof::fmt(d.power.cap_w, 0) + "W mode";
    };

    t.addRow({"CPU", cpu_row(orin), cpu_row(nano), cpu_row(a40)});
    t.addRow({"GPU", gpu_row(orin), gpu_row(nano), gpu_row(a40)});
    t.addRow({"Tensor Cores", tc_row(orin), tc_row(nano), tc_row(a40)});
    t.addRow({"Unified Memory", mem_row(orin), mem_row(nano),
              mem_row(a40)});
    t.addRow({"Power", pow_row(orin), pow_row(nano), pow_row(a40)});
    t.addRow({"Heavy-load cores", std::to_string(orin.bigCores()),
              std::to_string(nano.bigCores()),
              std::to_string(a40.bigCores())});
    t.print(std::cout);
    return 0;
}
