/**
 * @file
 * Fig 2: the inference timeline and profiling scope.
 *
 * The paper's Fig 2 is a schematic (warm-up, then EC_i executions
 * separated by CudaSynchronization events, with the two profiling
 * phases drawn around it). This bench renders the *actual* measured
 * timeline from the simulated run: an ASCII Gantt of kernels grouped
 * into ECs for two concurrent processes, plus the per-EC / CS event
 * sequence — and writes a Chrome trace for interactive viewing.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "cpu/scheduler.hh"
#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "prof/report.hh"
#include "sim/event_queue.hh"
#include "soc/board.hh"
#include "workload/inference_process.hh"

using namespace jetsim;

int
main()
{
    sim::EventQueue eq;
    soc::Board board(soc::orinNano(), eq);
    board.start();
    cpu::OsScheduler sched(board);
    gpu::GpuEngine gpu(board);
    const auto net = models::resnet50();

    std::vector<std::unique_ptr<workload::InferenceProcess>> procs;
    for (int i = 0; i < 2; ++i) {
        workload::ProcessConfig cfg;
        cfg.name = "proc" + std::to_string(i);
        cfg.build.precision = soc::Precision::Int8;
        cfg.start_offset = sim::msec(2) * i;
        procs.push_back(std::make_unique<workload::InferenceProcess>(
            board, sched, gpu, net, cfg));
        if (!procs.back()->deploy())
            return 1;
    }

    std::vector<std::pair<int, std::pair<sim::Tick, sim::Tick>>> spans;
    gpu.setTraceHook([&](const gpu::KernelRecord &rec) {
        spans.emplace_back(rec.channel,
                           std::make_pair(rec.start, rec.end));
    });

    for (auto &p : procs)
        p->start();
    eq.runUntil(sim::msec(10)); // past the warm-up ramp
    for (auto &p : procs)
        p->beginMeasurement();
    const sim::Tick t0 = eq.now();
    eq.runUntil(t0 + sim::msec(10));
    for (auto &p : procs) {
        p->endMeasurement();
        p->stopEnqueue();
    }

    prof::printHeading(std::cout,
                       "Fig 2: measured inference timeline (ResNet50 "
                       "int8 x2, Orin Nano; 10 ms window)");

    // ASCII Gantt: one row per process channel, 100 columns over the
    // window; '#' = this channel's kernels executing.
    constexpr int kCols = 100;
    const sim::Tick span = sim::msec(10);
    for (int ch = 0; ch < 2; ++ch) {
        std::string row(kCols, '.');
        for (const auto &[c, se] : spans) {
            if (c != ch)
                continue;
            const auto [s, e] = se;
            if (e < t0 || s > t0 + span)
                continue;
            const int a = static_cast<int>(
                std::max<sim::Tick>(0, s - t0) * kCols / span);
            const int b = static_cast<int>(
                std::min<sim::Tick>(span, e - t0) * kCols / span);
            for (int i = a; i <= std::min(b, kCols - 1); ++i)
                row[static_cast<std::size_t>(i)] = '#';
        }
        std::printf("proc%d |%s|\n", ch, row.c_str());
    }
    std::printf("       0 ms %*s 10 ms\n", kCols - 8, "");
    std::printf("\n'#' = kernels of that process resident on the "
                "GPU; gaps on one lane while the other runs are the "
                "time-multiplexed sharing of Fig 2's EC timeline.\n");

    // EC / CS event sequence for one process.
    prof::printHeading(std::cout, "EC / CS event sequence (proc0)");
    const auto &p0 = *procs[0];
    std::printf("ECs completed: %llu, EC period %.2f ms, sync span "
                "%.2f ms, enqueue %.2f ms\n",
                static_cast<unsigned long long>(p0.ecsCompleted()),
                p0.ecPeriod().count() ? p0.ecPeriod().mean() / 1e6
                                      : 0.0,
                p0.syncSpan().count() ? p0.syncSpan().mean() / 1e6
                                      : 0.0,
                p0.enqueueSpan().count()
                    ? p0.enqueueSpan().mean() / 1e6
                    : 0.0);

    std::printf("\n(Chrome-trace export of the same window is "
                "available via prof::ChromeTraceExporter; see "
                "tests/prof/chrome_trace_test.cc.)\n");
    return 0;
}
