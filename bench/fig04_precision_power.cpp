/**
 * @file
 * Fig 4: power consumption vs precision on both devices.
 *
 * Paper shape: power grows with precision except fp32 on Orin Nano,
 * which *drops* (tensor cores idle + DVFS); FCN_ResNet50 draws the
 * most; per-image energy still grows with precision; on the Nano
 * fp16 uses about half the per-image energy of the fp32-path
 * precisions; envelopes stay under 7 W / 5 W.
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

int
main()
{
    for (const char *device : {"orin-nano", "nano"}) {
        prof::printHeading(std::cout, std::string("Fig 4 (") + device +
                                          "): power vs precision");
        prof::Table t({"model", "precision", "power (W)",
                       "throughput (img/s)", "energy (W/img)"});
        std::vector<core::ExperimentResult> all;
        for (const auto &model : models::paperModelNames()) {
            core::ExperimentSpec base;
            base.device = device;
            base.model = model;
            bench::applyBenchTiming(base);
            for (const auto &r : core::sweepPrecision(
                     base,
                     {soc::Precision::Int8, soc::Precision::Fp16,
                      soc::Precision::Tf32, soc::Precision::Fp32},
                     bench::progress())) {
                const double per_img =
                    r.total_throughput > 0
                        ? r.avg_power_w / r.total_throughput
                        : 0.0;
                t.addRow({model, soc::name(r.spec.precision),
                          prof::fmt(r.avg_power_w),
                          prof::fmt(r.total_throughput, 1),
                          prof::fmt(per_img, 3)});
                all.push_back(r);
            }
        }
        t.print(std::cout);
        double peak = 0;
        for (const auto &r : all)
            peak = std::max(peak, r.max_power_w);
        std::printf("\npeak power on %s: %.2f W (cap %.0f W)\n", device,
                    peak, soc::deviceByName(device).power.cap_w);
    }
    return 0;
}
