/**
 * @file
 * Fig 9: power consumption for fp16 models on the Jetson Nano over
 * the batch x process grid.
 *
 * Paper shape: intuitive, near-monotone growth with batch and
 * process count, always under the 5 W budget (e.g. FCN_ResNet50 at
 * 1 process: ~4.2-4.3 W across batch sizes).
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

int
main()
{
    const std::vector<int> batches = {1, 2, 4, 8};
    const std::vector<int> procs = {1, 2, 4};

    for (const auto &model : models::paperModelNames()) {
        core::ExperimentSpec base;
        base.device = "nano";
        base.model = model;
        base.precision = soc::Precision::Fp16;
        bench::applyBenchTiming(base);

        const auto results =
            core::sweepGrid(base, batches, procs, bench::progress());

        prof::printHeading(std::cout,
                           "Fig 9 (nano, fp16): " + model +
                               " power [W]");
        prof::Table t({"procs\\batch", "b1", "b2", "b4", "b8"});
        std::size_t i = 0;
        double peak = 0;
        for (int p : procs) {
            std::vector<std::string> row = {"p" + std::to_string(p)};
            for (std::size_t b = 0; b < batches.size(); ++b) {
                const auto &r = results[i++];
                row.push_back(r.all_deployed
                                  ? prof::fmt(r.avg_power_w)
                                  : "OOM");
                peak = std::max(peak, r.max_power_w);
            }
            t.addRow(row);
        }
        t.print(std::cout);
        std::printf("\npeak %.2f W (cap 5 W)\n", peak);
    }
    return 0;
}
