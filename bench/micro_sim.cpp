/**
 * @file
 * Ablation A6: google-benchmark microbenchmarks of the simulator
 * itself - event-queue throughput, scheduler dispatch, kernel cost
 * evaluation, engine building, and a full experiment cell. These
 * guard the framework's own performance (a profiling tool must be
 * cheap enough to sweep grids).
 *
 * Invoked with `--json[=path]` the binary instead runs the simcore
 * measurements with plain chrono timing (min over repetitions) and
 * writes BENCH_simcore.json — the committed before/after record for
 * the pooled event core (see EXPERIMENTS.md).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <sys/resource.h>

#include "core/digest.hh"
#include "core/fleet.hh"
#include "core/profiler.hh"
#include "cpu/scheduler.hh"
#include "gpu/cost_model.hh"
#include "models/zoo.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_engine.hh"
#include "soc/board.hh"
#include "trt/builder.hh"

using namespace jetsim;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [] {});
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    // Half the scheduled events are cancelled before the run: the
    // queue must skip them cheaply (lazy deletion at pop).
    std::vector<sim::EventQueue::Handle> handles;
    handles.reserve(500);
    for (auto _ : state) {
        sim::EventQueue eq;
        handles.clear();
        for (int i = 0; i < 1000; ++i) {
            auto h = eq.schedule(i, [] {});
            if (i % 2 == 0)
                handles.push_back(std::move(h));
        }
        for (auto &h : handles)
            h.cancel();
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

static void
BM_SchedulerContention(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    // Intern the thread names once: the measured loop should time
    // scheduling, not std::string temporaries.
    std::vector<sim::NameId> ids;
    ids.reserve(threads);
    for (int i = 0; i < threads; ++i)
        ids.push_back(sim::internName("t" + std::to_string(i)));
    for (auto _ : state) {
        sim::EventQueue eq;
        soc::Board board(soc::orinNano(), eq);
        cpu::OsScheduler sched(board);
        for (int i = 0; i < threads; ++i)
            sched.createThread(ids[i])->exec(sim::msec(5), nullptr);
        eq.runAll();
        benchmark::DoNotOptimize(eq.executed());
    }
}
BENCHMARK(BM_SchedulerContention)->Arg(2)->Arg(8)->Arg(16);

/** The fleet spec both the BM_ShardedEngine series and the --json
 * shard block run: 8 devices over both boards with balancer plus
 * local traffic, sized so every shard owns real work. */
static core::FleetSpec
shardBenchSpec()
{
    core::FleetSpec spec;
    for (int d = 0; d < 8; ++d)
        spec.devices.push_back({d % 2 ? "nano" : "orin-nano",
                                d % 4 < 2 ? "resnet18" : "mobilenet_v2",
                                soc::Precision::Int8, 1, 60.0});
    spec.balancer_rate = 500.0;
    spec.warmup = sim::msec(20);
    spec.duration = sim::msec(250);
    spec.seed = 29;
    return spec;
}

static void
BM_ShardedEngine(benchmark::State &state)
{
    // Throughput of the epoch path at shards == threads == range(0);
    // shards=1 is the serial EventQueue baseline through the same
    // fleet. Items processed == simulated events, so the reported
    // items/s is directly the events/s scaling curve.
    const int shards = static_cast<int>(state.range(0));
    const core::FleetSpec spec = shardBenchSpec();
    std::uint64_t events = 0;
    for (auto _ : state) {
        core::FleetOptions o;
        o.shards = shards;
        o.threads = shards;
        const auto r = core::runFleet(spec, o);
        events = r.events;
        benchmark::DoNotOptimize(r.dispatched);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

static void
BM_KernelCostModel(benchmark::State &state)
{
    gpu::KernelCostModel model(soc::orinNano());
    gpu::KernelDesc k;
    k.flops = 1e9;
    k.bytes = 5e6;
    k.prec = soc::Precision::Fp16;
    k.tc = true;
    k.blocks = 512;
    sim::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.timing(k, 0.9, &rng));
}
BENCHMARK(BM_KernelCostModel);

static void
BM_BuildResnet50Engine(benchmark::State &state)
{
    const auto net = models::resnet50();
    trt::Builder builder(soc::orinNano());
    trt::BuilderConfig cfg;
    cfg.precision = soc::Precision::Int8;
    for (auto _ : state)
        benchmark::DoNotOptimize(builder.build(net, cfg));
}
BENCHMARK(BM_BuildResnet50Engine);

static void
BM_BuildYolov8nGraph(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(models::yolov8n());
}
BENCHMARK(BM_BuildYolov8nGraph);

static void
BM_FullExperimentCell(benchmark::State &state)
{
    core::ExperimentSpec s;
    s.model = "resnet50";
    s.precision = soc::Precision::Int8;
    s.processes = static_cast<int>(state.range(0));
    s.warmup = sim::msec(100);
    s.duration = sim::msec(400);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::runExperiment(s));
}
BENCHMARK(BM_FullExperimentCell)->Arg(1)->Arg(4)->Unit(
    benchmark::kMillisecond);

// --------------------------------------------------- --json emitter

namespace {

/** Wall time of one @p fn call, minimised over @p reps runs. The
 * minimum is the standard noise-robust estimator on a shared host. */
template <typename Fn>
double
minSeconds(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

double
scheduleRunEventsPerSec(int reps)
{
    const double s = minSeconds(reps, [] {
        sim::EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [] {});
        benchmark::DoNotOptimize(eq.runAll());
    });
    return 1000.0 / s;
}

double
cancelHeavyEventsPerSec(int reps)
{
    std::vector<sim::EventQueue::Handle> handles;
    handles.reserve(500);
    const double s = minSeconds(reps, [&handles] {
        sim::EventQueue eq;
        handles.clear();
        for (int i = 0; i < 1000; ++i) {
            auto h = eq.schedule(i, [] {});
            if (i % 2 == 0)
                handles.push_back(std::move(h));
        }
        for (auto &h : handles)
            h.cancel();
        benchmark::DoNotOptimize(eq.runAll());
    });
    return 1000.0 / s;
}

double
fullCellMs(int processes, int reps)
{
    core::ExperimentSpec spec;
    spec.model = "resnet50";
    spec.precision = soc::Precision::Int8;
    spec.processes = processes;
    spec.warmup = sim::msec(100);
    spec.duration = sim::msec(400);
    return 1e3 * minSeconds(reps, [&spec] {
               benchmark::DoNotOptimize(core::runExperiment(spec));
           });
}

struct ShardPoint
{
    int shards;
    double events_per_sec;
    double speedup;
    bool digest_match;
};

/**
 * The sharded scaling series for the JSON record: the shard-bench
 * fleet at shards == threads in {1, 2, 4, 8}, each point's digest
 * compared against the serial run. events_per_sec counts simulated
 * events (FleetResult::events, shard-count-invariant), so speedup is
 * a pure wall-clock ratio.
 */
std::vector<ShardPoint>
shardSeries(int reps, std::uint64_t &events_out)
{
    const core::FleetSpec spec = shardBenchSpec();
    const auto serial = core::runFleet(spec, {});
    const auto want = core::resultDigest(serial);
    events_out = serial.events;

    std::vector<ShardPoint> out;
    double serial_evps = 0.0;
    for (const int shards : {1, 2, 4, 8}) {
        core::FleetOptions o;
        o.shards = shards;
        o.threads = shards;
        bool match = true;
        const double s = minSeconds(reps, [&spec, &o, &want, &match] {
            const auto r = core::runFleet(spec, o);
            match = match && core::resultDigest(r) == want;
        });
        const double evps = static_cast<double>(serial.events) / s;
        if (shards == 1)
            serial_evps = evps;
        out.push_back({shards, evps,
                       serial_evps > 0.0 ? evps / serial_evps : 0.0,
                       match});
    }
    return out;
}

/** The 1000-board hierarchical fleet (two-hop root -> sub-balancer
 * dispatch): the ISSUE 9 headline configuration, matching the
 * simcheck --fleet-overhead spec and the Fleet.ThousandBoard test. */
core::FleetSpec
fleet1000Spec()
{
    core::FleetSpec spec;
    for (int d = 0; d < 1000; ++d)
        spec.devices.push_back({"orin-nano", "mobilenet_v2",
                                soc::Precision::Int8, 1, 0.0});
    spec.balancer_rate = 25.0 * 1000;
    spec.hierarchical = true;
    spec.warmup = sim::msec(4);
    spec.duration = sim::msec(30);
    spec.seed = 23;
    return spec;
}

struct Fleet1000Point
{
    int shards;
    int threads;
    double events_per_sec;
    double ratio_vs_serial;
    bool digest_match;
    std::uint64_t epochs;
    std::uint64_t barriers;
};

/**
 * The thousand-board series: serial baseline, then the epoch path
 * with parallelism removed (shards=8/threads=1 and shards=16/
 * threads=1 — pure protocol overhead, the CI pass-1c gate shape)
 * and one genuinely threaded point. epochs/barriers record how hard
 * adaptive batching fused lookahead windows (epochs << messages).
 */
std::vector<Fleet1000Point>
fleet1000Series(int reps, std::uint64_t &events_out)
{
    const core::FleetSpec spec = fleet1000Spec();
    const auto serial = core::runFleet(spec, {});
    const auto want = core::resultDigest(serial);
    events_out = serial.events;

    std::vector<Fleet1000Point> out;
    double serial_evps = 0.0;
    for (const auto &[shards, threads] :
         {std::pair{1, 1}, std::pair{8, 1}, std::pair{16, 1},
          std::pair{16, 2}}) {
        core::FleetOptions o;
        o.shards = shards;
        o.threads = threads;
        bool match = true;
        core::FleetResult last;
        const double s =
            minSeconds(reps, [&spec, &o, &want, &match, &last] {
                last = core::runFleet(spec, o);
                match = match && core::resultDigest(last) == want;
            });
        const double evps = static_cast<double>(serial.events) / s;
        if (shards == 1)
            serial_evps = evps;
        out.push_back({shards, threads, evps,
                       serial_evps > 0.0 ? evps / serial_evps : 0.0,
                       match, last.epochs, last.barriers});
    }
    return out;
}

/** Peak resident set (MB) of this process so far — after the 1000-
 * board series it bounds the fleet's memory footprint. */
double
peakRssMb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/**
 * sbo_misses after the steady-state schedule workload: every hot-path
 * callback (`this` + small ids) must fit InlineFn's inline buffer, so
 * the count must be zero. Measured on a fresh queue so the number is
 * attributable to this workload alone.
 */
std::uint64_t
steadyStateSboMisses()
{
    sim::EventQueue eq;
    for (int i = 0; i < 1000; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    return eq.stats().sbo_misses;
}

/**
 * Seed-commit baselines, measured with this same emitter method
 * (min over repetitions) on the shared reference host below before
 * the pooled event core landed. Committed so the "speedup" fields
 * stay meaningful without rebuilding the seed.
 */
constexpr double kSeedScheduleRunEvPerSec = 7.97e6;
constexpr double kSeedCancelHeavyEvPerSec = 7.30e6;
constexpr double kSeedFullCell1Ms = 9.00;
constexpr double kSeedFullCell4Ms = 10.6;
/** bench::kHostNote plus the cross-reference to the seed numbers. */
const std::string kHostNote = std::string(bench::kHostNote) +
    "; same flags and host class as the seed baselines and "
    "BENCH_runner.json; shared-host absolute numbers drift between "
    "records (all sections are re-measured together, so compare "
    "within one record); the sharded_fleet series on a 1-core host "
    "records scheduling overhead, not scaling - see the cores field";

int
emitJson(const std::string &path)
{
    std::fprintf(stderr, "measuring simcore benchmarks...\n");
    const double sched = scheduleRunEventsPerSec(400);
    const double cancel = cancelHeavyEventsPerSec(400);
    const double cell1 = fullCellMs(1, 6);
    const double cell4 = fullCellMs(4, 6);
    std::uint64_t fleet_events = 0;
    const auto shard_pts = shardSeries(4, fleet_events);
    std::uint64_t fleet1000_events = 0;
    const auto fleet1000_pts = fleet1000Series(3, fleet1000_events);
    const double peak_rss_mb = peakRssMb();

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"host\": \"%s\",\n", kHostNote.c_str());
    std::fprintf(f, "  \"event_queue_schedule_run\": {\n");
    std::fprintf(f, "    \"events_per_sec\": %.3e,\n", sched);
    std::fprintf(f, "    \"seed_events_per_sec\": %.3e,\n",
                 kSeedScheduleRunEvPerSec);
    std::fprintf(f, "    \"speedup\": %.2f\n", sched / kSeedScheduleRunEvPerSec);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"event_queue_cancel_heavy\": {\n");
    std::fprintf(f, "    \"events_per_sec\": %.3e,\n", cancel);
    std::fprintf(f, "    \"seed_events_per_sec\": %.3e,\n",
                 kSeedCancelHeavyEvPerSec);
    std::fprintf(f, "    \"speedup\": %.2f\n",
                 cancel / kSeedCancelHeavyEvPerSec);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"full_cell_resnet50_int8\": {\n");
    std::fprintf(f, "    \"procs1_ms\": %.2f,\n", cell1);
    std::fprintf(f, "    \"seed_procs1_ms\": %.2f,\n", kSeedFullCell1Ms);
    std::fprintf(f, "    \"procs1_speedup\": %.2f,\n",
                 kSeedFullCell1Ms / cell1);
    std::fprintf(f, "    \"procs4_ms\": %.2f,\n", cell4);
    std::fprintf(f, "    \"seed_procs4_ms\": %.2f,\n", kSeedFullCell4Ms);
    std::fprintf(f, "    \"procs4_speedup\": %.2f\n",
                 kSeedFullCell4Ms / cell4);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sharded_fleet\": {\n");
    std::fprintf(f, "    \"events\": %llu,\n",
                 static_cast<unsigned long long>(fleet_events));
    std::fprintf(f, "    \"cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"series\": [\n");
    for (std::size_t i = 0; i < shard_pts.size(); ++i) {
        const auto &p = shard_pts[i];
        std::fprintf(f,
                     "      {\"shards\": %d, \"threads\": %d, "
                     "\"events_per_sec\": %.3e, "
                     "\"speedup_vs_serial\": %.2f, "
                     "\"digest_match\": %s}%s\n",
                     p.shards, p.shards, p.events_per_sec, p.speedup,
                     p.digest_match ? "true" : "false",
                     i + 1 < shard_pts.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sharded_fleet_1000\": {\n");
    std::fprintf(f, "    \"boards\": 1000,\n");
    std::fprintf(f, "    \"hierarchical\": true,\n");
    std::fprintf(f, "    \"events\": %llu,\n",
                 static_cast<unsigned long long>(fleet1000_events));
    std::fprintf(f, "    \"peak_rss_mb\": %.1f,\n", peak_rss_mb);
    std::fprintf(f, "    \"series\": [\n");
    for (std::size_t i = 0; i < fleet1000_pts.size(); ++i) {
        const auto &p = fleet1000_pts[i];
        std::fprintf(f,
                     "      {\"shards\": %d, \"threads\": %d, "
                     "\"events_per_sec\": %.3e, "
                     "\"ratio_vs_serial\": %.2f, "
                     "\"digest_match\": %s, "
                     "\"epochs\": %llu, \"barriers\": %llu}%s\n",
                     p.shards, p.threads, p.events_per_sec,
                     p.ratio_vs_serial,
                     p.digest_match ? "true" : "false",
                     static_cast<unsigned long long>(p.epochs),
                     static_cast<unsigned long long>(p.barriers),
                     i + 1 < fleet1000_pts.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"event_queue_sbo_misses\": %llu,\n",
                 static_cast<unsigned long long>(
                     steadyStateSboMisses()));
    std::fprintf(f, "  \"inline_fn_heap_fallbacks\": %llu\n",
                 static_cast<unsigned long long>(
                     sim::InlineFn::heapFallbackCount()));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--assert-sbo") {
            // CI probe (tools/ci.sh pass 1c): the steady-state
            // schedule path must never fall back to the heap.
            const auto misses = steadyStateSboMisses();
            if (misses != 0) {
                std::fprintf(stderr,
                             "micro_sim: sbo_misses = %llu after the "
                             "steady-state schedule workload "
                             "(expected 0): an InlineFn capture "
                             "outgrew the inline buffer\n",
                             static_cast<unsigned long long>(misses));
                return 1;
            }
            std::printf("micro_sim: sbo_misses == 0 (steady-state "
                        "schedule path allocation-free)\n");
            return 0;
        }
        if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
            std::string path = "BENCH_simcore.json";
            if (const auto eq = arg.find('=');
                eq != std::string_view::npos)
                path = std::string(arg.substr(eq + 1));
            return emitJson(path);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
