/**
 * @file
 * Ablation A6: google-benchmark microbenchmarks of the simulator
 * itself - event-queue throughput, scheduler dispatch, kernel cost
 * evaluation, engine building, and a full experiment cell. These
 * guard the framework's own performance (a profiling tool must be
 * cheap enough to sweep grids).
 */

#include <benchmark/benchmark.h>

#include "core/profiler.hh"
#include "cpu/scheduler.hh"
#include "gpu/cost_model.hh"
#include "models/zoo.hh"
#include "sim/event_queue.hh"
#include "soc/board.hh"
#include "trt/builder.hh"

using namespace jetsim;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [] {});
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_SchedulerContention(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        soc::Board board(soc::orinNano(), eq);
        cpu::OsScheduler sched(board);
        for (int i = 0; i < threads; ++i)
            sched.createThread("t" + std::to_string(i))
                ->exec(sim::msec(5), nullptr);
        eq.runAll();
        benchmark::DoNotOptimize(eq.executed());
    }
}
BENCHMARK(BM_SchedulerContention)->Arg(2)->Arg(8)->Arg(16);

static void
BM_KernelCostModel(benchmark::State &state)
{
    gpu::KernelCostModel model(soc::orinNano());
    gpu::KernelDesc k;
    k.flops = 1e9;
    k.bytes = 5e6;
    k.prec = soc::Precision::Fp16;
    k.tc = true;
    k.blocks = 512;
    sim::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.timing(k, 0.9, &rng));
}
BENCHMARK(BM_KernelCostModel);

static void
BM_BuildResnet50Engine(benchmark::State &state)
{
    const auto net = models::resnet50();
    trt::Builder builder(soc::orinNano());
    trt::BuilderConfig cfg;
    cfg.precision = soc::Precision::Int8;
    for (auto _ : state)
        benchmark::DoNotOptimize(builder.build(net, cfg));
}
BENCHMARK(BM_BuildResnet50Engine);

static void
BM_BuildYolov8nGraph(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(models::yolov8n());
}
BENCHMARK(BM_BuildYolov8nGraph);

static void
BM_FullExperimentCell(benchmark::State &state)
{
    core::ExperimentSpec s;
    s.model = "resnet50";
    s.precision = soc::Precision::Int8;
    s.processes = static_cast<int>(state.range(0));
    s.warmup = sim::msec(100);
    s.duration = sim::msec(400);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::runExperiment(s));
}
BENCHMARK(BM_FullExperimentCell)->Arg(1)->Arg(4)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
