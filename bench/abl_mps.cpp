/**
 * @file
 * Ablation A5: hypothetical MPS (spatial GPU sharing).
 *
 * Jetson GPUs do not support MPS (paper S2), forcing time
 * multiplexing with channel-switch overhead. This ablation runs the
 * same concurrent workloads under an idealised spatial-sharing mode
 * to quantify what the missing feature costs.
 */

#include "bench_util.hh"

using namespace jetsim;

int
main()
{
    prof::printHeading(std::cout,
                       "Ablation A5: time multiplexing vs idealised "
                       "MPS (orin-nano, yolov8n int8, b1)");
    prof::Table t({"procs", "sharing", "dvfs", "T/P (img/s)",
                   "total (img/s)", "power max (W)", "final freq"});
    std::vector<core::ExperimentSpec> specs;
    for (int procs : {1, 2, 4, 8}) {
        for (bool spatial : {false, true}) {
            for (bool dvfs : {true, false}) {
                core::ExperimentSpec s;
                s.device = "orin-nano";
                s.model = "yolov8n";
                s.precision = soc::Precision::Int8;
                s.processes = procs;
                s.spatial_sharing = spatial;
                s.dvfs = dvfs;
                bench::applyBenchTiming(s);
                specs.push_back(s);
            }
        }
    }
    for (const auto &r : bench::runParallel(specs))
        t.addRow({std::to_string(r.spec.processes),
                  r.spec.spatial_sharing ? "spatial (MPS)"
                                         : "time-mux (Jetson)",
                  r.spec.dvfs ? "on" : "off",
                  prof::fmt(r.throughput_per_process, 1),
                  prof::fmt(r.total_throughput, 1),
                  prof::fmt(r.max_power_w),
                  prof::fmt(r.final_freq_frac)});
    t.print(std::cout);
    std::printf(
        "\nat equal clocks (dvfs off) spatial sharing removes the\n"
        "channel-switch overhead - the price of Jetson's missing "
        "MPS.\nunder the 7 W budget, however, packing kernels "
        "spatially raises\ninstantaneous power and DVFS claws the "
        "gain back: a finding the\npaper's time-mux-only hardware "
        "could not expose.\n");
    return 0;
}
