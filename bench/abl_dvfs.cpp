/**
 * @file
 * Ablation A2: the DVFS governor.
 *
 * With the governor disabled the GPU pins its top clock and the rail
 * may exceed the board's power-mode budget; with it enabled the cap
 * holds and throughput pays - the mechanism the paper blames for the
 * fp32 power drop and Fig 8's non-linearity.
 */

#include "bench_util.hh"

using namespace jetsim;

int
main()
{
    prof::printHeading(std::cout,
                       "Ablation A2: DVFS on/off (orin-nano, "
                       "fcn_resnet50 int8, batch 8)");
    prof::Table t({"procs", "dvfs", "throughput (img/s)",
                   "avg power (W)", "max power (W)", "final freq",
                   "throttle events"});
    std::vector<core::ExperimentSpec> specs;
    for (int procs : {1, 2, 4}) {
        for (bool dvfs : {true, false}) {
            core::ExperimentSpec s;
            s.device = "orin-nano";
            s.model = "fcn_resnet50";
            s.precision = soc::Precision::Int8;
            s.batch = 8;
            s.processes = procs;
            s.dvfs = dvfs;
            bench::applyBenchTiming(s);
            specs.push_back(s);
        }
    }
    for (const auto &r : bench::runParallel(specs))
        t.addRow({std::to_string(r.spec.processes),
                  r.spec.dvfs ? "on" : "off",
                  prof::fmt(r.total_throughput, 1),
                  prof::fmt(r.avg_power_w),
                  prof::fmt(r.max_power_w),
                  prof::fmt(r.final_freq_frac),
                  std::to_string(r.dvfs_throttle_events)});
    t.print(std::cout);
    std::printf("\nwith DVFS off the 7 W budget is not enforced; "
                "with it on, power stays capped at the cost of "
                "clock (and throughput).\n");
    return 0;
}
