/**
 * @file
 * Paper-vs-measured compliance sheet: every quantitative claim the
 * paper's text makes, next to what this reproduction measures. The
 * EXPERIMENTS.md table is generated from this binary's output.
 */

#include "bench_util.hh"

#include <functional>

using namespace jetsim;

namespace {

struct Anchor
{
    const char *id;
    const char *claim;       ///< the paper's statement
    const char *paper_value; ///< quoted value
    std::function<double()> measure;
    double lo, hi;           ///< acceptance band
};

core::ExperimentResult
cell(const char *dev, const char *model, soc::Precision prec,
     int batch = 1, int procs = 1,
     core::Phase phase = core::Phase::Light)
{
    core::ExperimentSpec s;
    s.device = dev;
    s.model = model;
    s.precision = prec;
    s.batch = batch;
    s.processes = procs;
    s.phase = phase;
    bench::applyBenchTiming(s);
    bench::progress()(s.label());
    return core::runExperiment(s);
}

using soc::Precision;

} // namespace

int
main()
{
    std::vector<Anchor> anchors = {
        {"S6.1.1-resnet-int8",
         "ResNet50 int8 speed-up over fp32 (Orin Nano)", "9.75x",
         [] {
             return cell("orin-nano", "resnet50", Precision::Int8)
                        .total_throughput /
                    cell("orin-nano", "resnet50", Precision::Fp32)
                        .total_throughput;
         },
         6.5, 13.0},
        {"S6.1.1-fcn-int8",
         "FCN_ResNet50 int8 speed-up over fp32 (Orin Nano)", "12x",
         [] {
             return cell("orin-nano", "fcn_resnet50", Precision::Int8)
                        .total_throughput /
                    cell("orin-nano", "fcn_resnet50", Precision::Fp32)
                        .total_throughput;
         },
         8.0, 18.0},
        {"S6.1.1-yolo-int8",
         "YoloV8n int8 speed-up over fp32 (Orin Nano)", "~3x",
         [] {
             return cell("orin-nano", "yolov8n", Precision::Int8)
                        .total_throughput /
                    cell("orin-nano", "yolov8n", Precision::Fp32)
                        .total_throughput;
         },
         2.0, 11.0},
        {"S6.1.2-fcn-tf32",
         "FCN_ResNet50 tf32 throughput (Orin Nano)", "12 img/s",
         [] {
             return cell("orin-nano", "fcn_resnet50", Precision::Tf32)
                 .total_throughput;
         },
         7.0, 18.0},
        {"S6.1.2-fcn-fp32",
         "FCN_ResNet50 fp32 throughput (Orin Nano)", "5 img/s",
         [] {
             return cell("orin-nano", "fcn_resnet50", Precision::Fp32)
                 .total_throughput;
         },
         2.5, 7.5},
        {"S6.1.2-nano-fp16-energy",
         "ResNet50 fp16 energy per image (Jetson Nano)",
         "0.125 W/img",
         [] {
             const auto r =
                 cell("nano", "resnet50", Precision::Fp16);
             return r.avg_power_w / r.total_throughput;
         },
         0.07, 0.19},
        {"S6.2.1-yolo-b1",
         "YoloV8n int8 T/P at batch 1 (Orin Nano)", "~210 img/s",
         [] {
             return cell("orin-nano", "yolov8n", Precision::Int8, 1)
                 .throughput_per_process;
         },
         120.0, 345.0},
        {"S6.2.1-yolo-b16",
         "YoloV8n int8 T/P at batch 16 (Orin Nano)", "~320 img/s",
         [] {
             return cell("orin-nano", "yolov8n", Precision::Int8, 16)
                 .throughput_per_process;
         },
         220.0, 455.0},
        {"S6.2.2-orin-cap",
         "Peak power stays under the Orin Nano budget", "< 7 W",
         [] {
             return cell("orin-nano", "fcn_resnet50",
                         Precision::Int8, 8, 2)
                 .max_power_w;
         },
         0.0, 7.3},
        {"S6.2.2-nano-cap",
         "Peak power stays under the Jetson Nano budget", "< 5 W",
         [] {
             return cell("nano", "resnet50", Precision::Fp16, 4, 2)
                 .max_power_w;
         },
         0.0, 5.3},
        {"S6.1.3-issue-slot",
         "Issue-slot utilisation median (never above ~80 %)",
         "25-40 %",
         [] {
             return cell("orin-nano", "resnet50", Precision::Int8, 1,
                         1, core::Phase::Deep)
                 .issue_slot.median();
         },
         15.0, 45.0},
        {"S6.1.4-tc-util",
         "ResNet50 int8 TC utilisation median (Orin Nano)",
         "~25 % (below 50)",
         [] {
             return cell("orin-nano", "resnet50", Precision::Int8, 1,
                         1, core::Phase::Deep)
                 .tc_util.median();
         },
         10.0, 45.0},
        {"S7-blocking",
         "Per-EC blocking at 8 processes (Orin Nano)", "1-2 ms b_l",
         [] {
             return cell("orin-nano", "resnet50", Precision::Int8, 1,
                         8)
                 .mean.blocking_ms_per_ec;
         },
         0.4, 3.0},
        {"S7-nano-ec",
         "Nano EC inflation from 2 to 4 processes", "~2x",
         [] {
             const auto p2 =
                 cell("nano", "resnet50", Precision::Fp16, 1, 2);
             const auto p4 =
                 cell("nano", "resnet50", Precision::Fp16, 1, 4);
             return p4.mean.ec_ms / p2.mean.ec_ms;
         },
         1.8, 3.2},
        {"S4-intrusion",
         "Nsight (phase 2) throughput reduction", "~50 %",
         [] {
             const auto l =
                 cell("orin-nano", "resnet50", Precision::Int8);
             const auto d =
                 cell("orin-nano", "resnet50", Precision::Int8, 1, 1,
                      core::Phase::Deep);
             return 100.0 *
                    (1.0 - d.total_throughput / l.total_throughput);
         },
         15.0, 70.0},
    };

    prof::printHeading(std::cout,
                       "Paper-vs-measured compliance sheet");
    prof::Table t({"anchor", "claim", "paper", "measured", "band",
                   "ok"});
    int failures = 0;
    for (const auto &a : anchors) {
        const double v = a.measure();
        const bool ok = v >= a.lo && v <= a.hi;
        failures += !ok;
        t.addRow({a.id, a.claim, a.paper_value, prof::fmt(v),
                  "[" + prof::fmt(a.lo, 1) + ", " +
                      prof::fmt(a.hi, 1) + "]",
                  ok ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::printf("\n%zu anchors, %d outside their acceptance band\n",
                anchors.size(), failures);
    return failures == 0 ? 0 : 1;
}
