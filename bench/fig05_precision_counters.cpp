/**
 * @file
 * Fig 5: SM-active, issue-slot and tensor-core utilisation CDFs vs
 * precision on the Jetson Orin Nano (phase 2; the Jetson Nano lacks
 * both Nsight counter support and tensor cores, as in the paper).
 *
 * Paper shape: SM active mostly 75-100 %; issue-slot never above
 * ~80 % and concentrated near 25-40 %; int8 shows the lowest TC
 * utilisation despite the highest throughput; FCN_ResNet50 reaches
 * near-100 % TC utilisation at fp16/tf32 without winning on
 * throughput.
 */

#include "bench_util.hh"

#include "models/zoo.hh"

using namespace jetsim;

namespace {

void
printCdfRow(prof::Table &t, const std::string &model,
            const char *prec, const char *counter,
            const prof::Cdf &cdf)
{
    if (cdf.empty())
        return;
    t.addRow({model, prec, counter, prof::fmt(cdf.quantile(0.10), 1),
              prof::fmt(cdf.median(), 1),
              prof::fmt(cdf.quantile(0.90), 1),
              prof::fmt(cdf.max(), 1)});
}

} // namespace

int
main()
{
    prof::printHeading(std::cout,
                       "Fig 5 (orin-nano, phase 2): utilisation "
                       "counter CDFs vs precision [percent]");
    prof::Table t({"model", "precision", "counter", "p10", "p50",
                   "p90", "max"});
    std::vector<core::ExperimentResult> all;
    for (const auto &model : models::paperModelNames()) {
        core::ExperimentSpec base;
        base.device = "orin-nano";
        base.model = model;
        base.phase = core::Phase::Deep;
        bench::applyBenchTiming(base);
        for (const auto &r : core::sweepPrecision(
                 base,
                 {soc::Precision::Int8, soc::Precision::Fp16,
                  soc::Precision::Tf32, soc::Precision::Fp32},
                 bench::progress())) {
            const char *p = soc::name(r.spec.precision);
            printCdfRow(t, model, p, "sm_active", r.sm_active);
            printCdfRow(t, model, p, "issue_slot", r.issue_slot);
            printCdfRow(t, model, p, "tc_util", r.tc_util);
            all.push_back(r);
        }
    }
    t.print(std::cout);

    // CDF curves for plotting (CSV on stdout, one block per cell).
    prof::printHeading(std::cout, "CDF series (x=percent, y=F(x))");
    for (const auto &r : all) {
        if (r.tc_util.empty())
            continue;
        std::printf("# %s tc_util\n", r.spec.label().c_str());
        for (const auto &[x, y] : r.tc_util.curve(11))
            std::printf("%.1f,%.3f\n", x, y);
    }
    bench::printObservations(all);
    return 0;
}
