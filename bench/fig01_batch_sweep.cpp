/**
 * @file
 * Fig 1: GPU memory usage and throughput vs batch size for the
 * ResNet50 fp16 model on Jetson Orin Nano.
 *
 * Paper shape: throughput rises with batch size but levels off at
 * higher values; memory grows steadily; GPU utilisation is ~98 %+
 * while memory stays small.
 */

#include "bench_util.hh"

using namespace jetsim;

int
main()
{
    core::ExperimentSpec base;
    base.device = "orin-nano";
    base.model = "resnet50";
    base.precision = soc::Precision::Fp16;
    bench::applyBenchTiming(base);

    const auto results = core::sweepBatch(
        base, {1, 2, 4, 8, 16, 32}, bench::progress());

    prof::printHeading(std::cout,
                       "Fig 1: ResNet50 fp16 on Orin Nano - memory & "
                       "throughput vs batch size");
    prof::Table t({"batch", "throughput (img/s)", "gpu mem (%)",
                   "workload mem (MiB)", "gpu util (%)"});
    for (const auto &r : results)
        t.addRow({std::to_string(r.spec.batch),
                  prof::fmt(r.total_throughput, 1),
                  prof::fmt(r.mem_pct, 1),
                  prof::fmt(r.workload_mem_mb, 0),
                  prof::fmt(r.gpu_util_pct, 1)});
    t.print(std::cout);

    // The paper's shape claims, checked inline.
    const double first = results.front().total_throughput;
    const double last = results.back().total_throughput;
    std::printf("\nthroughput gain 1->%d: %.2fx (diminishing returns "
                "expected)\n",
                results.back().spec.batch, last / first);
    bench::printObservations(results);
    return 0;
}
