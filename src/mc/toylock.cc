#include "mc/toylock.hh"

#include <array>

#include "check/digest.hh"
#include "check/reporter.hh"
#include "sim/event_queue.hh"

namespace jetsim::mc {

namespace {

enum class Op { Yield, AcqA, AcqB, RelA, RelB };

constexpr int kWorkers = 2;

struct Lock
{
    int held_by = -1;
    int waiter = -1; ///< at most one worker can block per lock here
};

struct World
{
    sim::EventQueue &eq;
    std::array<std::vector<Op>, kWorkers> prog;
    std::array<std::size_t, kWorkers> pc{};
    Lock a, b;

    explicit World(sim::EventQueue &q) : eq(q) {}

    Lock &
    lockFor(Op op)
    {
        return op == Op::AcqA || op == Op::RelA ? a : b;
    }

    void
    scheduleStep(int w)
    {
        // Same tick, default priority: pending steps of both workers
        // tie, and the tie break is the schedule under test.
        eq.schedule(eq.now(), [this, w] { step(w); });
    }

    void
    advance(int w)
    {
        ++pc[static_cast<std::size_t>(w)];
        if (pc[static_cast<std::size_t>(w)] <
            prog[static_cast<std::size_t>(w)].size())
            scheduleStep(w);
    }

    void
    step(int w)
    {
        const Op op = prog[static_cast<std::size_t>(w)]
                          [pc[static_cast<std::size_t>(w)]];
        switch (op) {
          case Op::Yield:
            advance(w);
            break;
          case Op::AcqA:
          case Op::AcqB: {
            Lock &l = lockFor(op);
            if (l.held_by < 0) {
                l.held_by = w;
                advance(w);
            } else {
                // Hold-and-wait: no event rescheduled until the
                // holder releases. A drained queue with a parked
                // worker is the deadlock the checker must find.
                l.waiter = w;
            }
            break;
          }
          case Op::RelA:
          case Op::RelB: {
            Lock &l = lockFor(op);
            l.held_by = -1;
            if (l.waiter >= 0) {
                const int g = l.waiter;
                l.waiter = -1;
                l.held_by = g;
                advance(g); // past its blocked acquire
            }
            advance(w);
            break;
          }
        }
    }
};

} // namespace

RunOutcome
ToyLockModel::run(const std::vector<int> &script)
{
    // Count mode: a toy-model bug must surface as a finding, not an
    // abort mid-exploration.
    check::ScopedCapture capture;

    sim::EventQueue eq;
    World world(eq);
    world.prog[0] = {Op::AcqA, Op::AcqB, Op::RelB, Op::RelA};
    if (inverted_)
        world.prog[1] = {Op::Yield, Op::AcqB, Op::AcqA, Op::RelA,
                         Op::RelB};
    else
        world.prog[1] = {Op::Yield, Op::AcqA, Op::AcqB, Op::RelB,
                         Op::RelA};

    TraceChooser chooser(script);
    eq.setChooser(&chooser);
    for (int w = 0; w < kWorkers; ++w)
        world.scheduleStep(w);
    const std::uint64_t events = eq.runAll(10000);

    RunOutcome out;
    out.trace = chooser.trace();
    out.events = events;
    out.violations = capture.total();
    out.max_block_ms.assign(kWorkers, 0.0);

    check::Digest d;
    for (int w = 0; w < kWorkers; ++w) {
        const auto done = world.pc[static_cast<std::size_t>(w)];
        const auto total = world.prog[static_cast<std::size_t>(w)].size();
        d.add(static_cast<std::uint64_t>(done));
        if (done < total) {
            out.deadlock = true;
            if (!out.detail.empty())
                out.detail += "; ";
            out.detail += "worker " + std::to_string(w) +
                          " parked at op " + std::to_string(done) +
                          "/" + std::to_string(total);
        }
    }
    d.add(static_cast<std::int64_t>(world.a.held_by));
    d.add(static_cast<std::int64_t>(world.b.held_by));
    d.add(out.violations);
    out.digest = d.value();
    return out;
}

} // namespace jetsim::mc
