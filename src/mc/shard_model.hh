/**
 * @file
 * Two-shard ping model: jetmc coverage for the sharded event core.
 *
 * A token bounces between two ShardedEngine shards through post()
 * (the cross-shard message path) while both shards execute local
 * events at the *same ticks* — so in controlled (merge-fallback) mode
 * every tick is a ShardMerge arbitration site: which shard's event
 * runs first is the schedule under test. The explorer then proves,
 * over the complete bounded schedule space:
 *
 *  - deadlock-freedom of the merge scheduling: the token always
 *    completes its round trips, no schedule strands a shard;
 *  - digest invariance: counters (hops, per-shard work) are identical
 *    under every merge order — the semantic core of the engine's
 *    bit-identity claim, machine-checked rather than argued.
 *
 * The deliberately broken variant (racy=true) folds the *execution
 * order* of same-tick cross-shard events into the digest. That order
 * is exactly what merge arbitration varies, so the explorer must find
 * a digest mismatch — the self-test that the harness can see
 * schedule-dependence through the sharded engine at all.
 *
 * runWith() exposes the same workload on the *epoch* (lookahead
 * barrier) path so tests can compare uncontrolled parallel digests
 * against the explored merge space (tests/mc/shard_mc_test.cc).
 */

#ifndef JETSIM_MC_SHARD_MODEL_HH
#define JETSIM_MC_SHARD_MODEL_HH

#include "mc/model.hh"
#include "sim/sharded_engine.hh"

namespace jetsim::mc {

/** Token ping-pong across two shards with colliding local events. */
class ShardPingModel final : public Model
{
  public:
    /** @param rounds token round trips (2*rounds cross-shard hops);
     *  @param racy fold schedule-dependent order into the digest
     *         (the explorer must catch it). */
    explicit ShardPingModel(int rounds = 3, bool racy = false)
        : rounds_(rounds), racy_(racy)
    {
    }

    std::string name() const override
    {
        return racy_ ? "shardping-racy" : "shardping";
    }

    RunOutcome run(const std::vector<int> &script) override;

    /**
     * Run the same workload under explicit engine options. With
     * @p script == nullptr the engine is uncontrolled: options with
     * lookahead > 0 exercise the real epoch/barrier path (threads > 1
     * runs it genuinely parallel). The outcome digest is comparable
     * with run()'s — equality ties the explored merge space to the
     * production scheduling path.
     */
    RunOutcome runWith(const sim::ShardedEngine::Options &opts,
                       const std::vector<int> *script);

    /** One process per shard. */
    int procCount() const override { return 2; }

    int procOf(sim::ChoiceKind kind, std::int64_t actor) const override
    {
        if (kind == sim::ChoiceKind::ShardMerge && actor >= 0 &&
            actor < 2)
            return static_cast<int>(actor);
        return kProcUnknown;
    }

    /** Exhaustive search: the point is the complete proof, and the
     * cross-shard token makes the shards interact anyway. */
    bool dependent(int, int) const override { return true; }

  private:
    int rounds_;
    bool racy_;
};

} // namespace jetsim::mc

#endif // JETSIM_MC_SHARD_MODEL_HH
