/**
 * @file
 * Counterexample files: how jetmc hands a failing schedule to a human
 * (or to `simcheck --mc-replay`).
 *
 * A counterexample is a JSON object carrying the model identity, the
 * minimal choice script that reproduces the failure, the failure kind
 * and the reference digest. Replaying is exact: reconstruct the model
 * from the embedded configuration, run the script, and the same
 * failure must appear — runs are pure functions of (config, script).
 *
 * The reader is a minimal scanner for exactly the format the writer
 * produces (no external JSON dependency); it is tolerant of
 * whitespace and field order but not a general JSON parser.
 */

#ifndef JETSIM_MC_CE_HH
#define JETSIM_MC_CE_HH

#include <memory>
#include <string>
#include <vector>

#include "mc/deployment.hh"
#include "mc/model.hh"

namespace jetsim::mc {

/** A replayable failing schedule. */
struct CounterExample
{
    /** "toylock-inverted", "toylock-ordered" or "deployment". */
    std::string model;
    std::string what;   ///< failureKind() string
    std::string detail; ///< human diagnosis from the failing run
    std::uint64_t ref_digest = 0;
    std::vector<int> script;
    /** Populated when model == "deployment". */
    DeployConfig deploy;
};

/** Serialise to @p path; returns false on I/O failure. */
bool writeCe(const CounterExample &ce, const std::string &path);

/** Parse a writeCe() file; on failure returns false and sets @p err. */
bool readCe(const std::string &path, CounterExample &ce,
            std::string &err);

/** Reconstruct the model a counterexample ran against. */
std::unique_ptr<Model> buildModel(const CounterExample &ce);

/**
 * Re-run the counterexample and check the recorded failure
 * reproduces. @return empty string on success, else a diagnosis.
 */
std::string replayCe(const CounterExample &ce);

} // namespace jetsim::mc

#endif // JETSIM_MC_CE_HH
