/**
 * @file
 * Stateless DFS over the schedule space with partial-order reduction.
 *
 * The explorer never snapshots simulator state. A node of the search
 * tree is a choice *script* (mc/trace.hh); visiting it means
 * re-executing the model from scratch under that script. After a run
 * whose script had length L, every arbitration site i >= L in the
 * recorded trace took the default — so each non-default alternative
 * at such a site spawns the child script trace[0..i-1].picks + [alt].
 * Branching only at sites at or beyond the script length partitions
 * the schedule space by first deviation point: every interleaving
 * (within the depth bound) is visited exactly once, and the run count
 * of this naive DFS is the denominator of the reported reduction
 * factor.
 *
 * The reduction is a sleep-set-style commutation prune built on the
 * model's dependence relation (for deployments: the hazard relation
 * from lint/hazard_lint). A non-default alternative that would
 * schedule process b at site i is redundant when the default
 * continuation reaches a same-kind site that schedules b anyway with
 * only b-independent steps in between: the two runs are the same
 * Mazurkiewicz trace, so every logical invariant (digest equality,
 * deadlock-freedom) holds in one iff it holds in the other. Any
 * dependent intermediate step — or any step the model cannot
 * attribute (kProcUnknown) — blocks the prune, so fully dependent
 * models (the toylock self-test, shared-buffer deployments) degrade
 * to the exhaustive search. Note the timing *bounds* (worst-case
 * blocking) are maxima over the reduced run set: sound for the
 * logical properties, reported as observed bounds, not proofs.
 */

#ifndef JETSIM_MC_EXPLORER_HH
#define JETSIM_MC_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mc/model.hh"

namespace jetsim::mc {

/** Search budget and switches. */
struct ExploreConfig
{
    /** Branch only at arbitration sites with index < depth. */
    int depth = 64;
    /** Abort the search after this many executions. */
    std::uint64_t max_runs = 200000;
    /** Apply the commutation prune (false = naive DFS). */
    bool dpor = true;
    /** Stop at the first failing run (still minimises the CE). */
    bool stop_on_failure = true;
    /** Greedily shrink a counterexample script before reporting. */
    bool minimize = true;
};

/** What the search established. */
struct ExploreReport
{
    std::uint64_t runs = 0;   ///< executions (incl. minimisation)
    std::uint64_t pruned = 0; ///< branches skipped by the reduction
    std::uint64_t branches = 0; ///< branches actually scheduled
    int max_trace_len = 0;    ///< longest trace seen (sites)
    std::uint64_t max_events = 0; ///< most events in one run

    bool run_budget_hit = false; ///< max_runs exhausted: incomplete
    bool depth_clipped = false;  ///< sites beyond depth existed
    bool event_bound_hit = false; ///< some run hit its event budget

    /** @name Verdicts
     * @{ */
    bool deadlock = false;
    bool digest_mismatch = false;
    std::uint64_t violation_runs = 0;
    /** @} */

    /** Reference digest (the default schedule's). */
    std::uint64_t digest = 0;
    /** Elementwise max over explored runs (ms per process). */
    std::vector<double> max_block_ms;

    /** Minimal failing script; empty when no failure. */
    std::vector<int> ce_script;
    /** "deadlock", "violation" or "digest-mismatch". */
    std::string ce_what;
    std::string ce_detail;

    /** All checked properties held over the explored space. */
    bool
    clean() const
    {
        return !deadlock && !digest_mismatch && violation_runs == 0;
    }
    /** clean() over the *complete* bounded space. */
    bool
    proved() const
    {
        return clean() && !run_budget_hit && !event_bound_hit;
    }
};

/** Run the bounded search over @p m. */
ExploreReport explore(Model &m, const ExploreConfig &cfg);

/** How a single outcome fails against @p ref_digest ("" = passes). */
std::string failureKind(const RunOutcome &out,
                        std::uint64_t ref_digest);

} // namespace jetsim::mc

#endif // JETSIM_MC_EXPLORER_HH
