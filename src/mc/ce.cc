#include "mc/ce.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mc/explorer.hh"
#include "mc/toylock.hh"

namespace jetsim::mc {

namespace {

void
jsonEscape(std::FILE *f, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            std::fputc('\\', f);
        std::fputc(c, f);
    }
}

/** Value text after `"key":`, or npos. */
std::size_t
valuePos(const std::string &text, const std::string &key,
         std::size_t from = 0)
{
    const std::string needle = "\"" + key + "\"";
    const auto at = text.find(needle, from);
    if (at == std::string::npos)
        return std::string::npos;
    auto p = text.find(':', at + needle.size());
    if (p == std::string::npos)
        return std::string::npos;
    ++p;
    while (p < text.size() &&
           (text[p] == ' ' || text[p] == '\n' || text[p] == '\t'))
        ++p;
    return p;
}

bool
getString(const std::string &text, const std::string &key,
          std::string &out, std::size_t from = 0)
{
    auto p = valuePos(text, key, from);
    if (p == std::string::npos || text[p] != '"')
        return false;
    ++p;
    out.clear();
    while (p < text.size() && text[p] != '"') {
        if (text[p] == '\\' && p + 1 < text.size())
            ++p;
        out += text[p++];
    }
    return true;
}

bool
getU64(const std::string &text, const std::string &key,
       std::uint64_t &out, std::size_t from = 0)
{
    const auto p = valuePos(text, key, from);
    if (p == std::string::npos)
        return false;
    out = std::strtoull(text.c_str() + p, nullptr, 10);
    return true;
}

bool
getBool(const std::string &text, const std::string &key, bool &out,
        std::size_t from = 0)
{
    const auto p = valuePos(text, key, from);
    if (p == std::string::npos)
        return false;
    out = text.compare(p, 4, "true") == 0;
    return true;
}

bool
getIntArray(const std::string &text, const std::string &key,
            std::vector<int> &out)
{
    auto p = valuePos(text, key);
    if (p == std::string::npos || text[p] != '[')
        return false;
    ++p;
    out.clear();
    while (p < text.size() && text[p] != ']') {
        char *end = nullptr;
        const long v = std::strtol(text.c_str() + p, &end, 10);
        if (end == text.c_str() + p) {
            ++p; // skip separators / whitespace
            continue;
        }
        out.push_back(static_cast<int>(v));
        p = static_cast<std::size_t>(end - text.c_str());
    }
    return true;
}

} // namespace

bool
writeCe(const CounterExample &ce, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n  \"jetmc_ce\": 1,\n  \"model\": \"");
    jsonEscape(f, ce.model);
    std::fprintf(f, "\",\n  \"what\": \"");
    jsonEscape(f, ce.what);
    std::fprintf(f, "\",\n  \"detail\": \"");
    jsonEscape(f, ce.detail);
    std::fprintf(f, "\",\n  \"ref_digest\": %llu,\n",
                 static_cast<unsigned long long>(ce.ref_digest));
    std::fprintf(f, "  \"script\": [");
    for (std::size_t i = 0; i < ce.script.size(); ++i)
        std::fprintf(f, "%s%d", i ? ", " : "", ce.script[i]);
    std::fprintf(f, "]");
    if (ce.model == "deployment") {
        const DeployConfig &d = ce.deploy;
        std::fprintf(f, ",\n  \"deployment\": {\n    \"device\": \"");
        jsonEscape(f, d.device);
        std::fprintf(f,
                     "\",\n    \"max_ecs\": %llu,\n"
                     "    \"pre_enqueue\": %d,\n"
                     "    \"seed\": %llu,\n"
                     "    \"max_events\": %llu,\n"
                     "    \"shared_buffer\": %s,\n"
                     "    \"procs\": [\n",
                     static_cast<unsigned long long>(d.max_ecs),
                     d.pre_enqueue,
                     static_cast<unsigned long long>(d.seed),
                     static_cast<unsigned long long>(d.max_events),
                     d.shared_buffer ? "true" : "false");
        for (std::size_t i = 0; i < d.procs.size(); ++i) {
            std::fprintf(f, "      {\"net\": \"");
            jsonEscape(f, d.procs[i].model);
            std::fprintf(
                f, "\", \"precision\": \"%s\", \"batch\": %d}%s\n",
                soc::name(d.procs[i].precision), d.procs[i].batch,
                i + 1 < d.procs.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  }");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
}

bool
readCe(const std::string &path, CounterExample &ce, std::string &err)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        err = "cannot open " + path;
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::uint64_t version = 0;
    if (!getU64(text, "jetmc_ce", version) || version != 1) {
        err = path + ": not a jetmc counterexample (v1)";
        return false;
    }
    if (!getString(text, "model", ce.model) ||
        !getString(text, "what", ce.what) ||
        !getIntArray(text, "script", ce.script)) {
        err = path + ": missing model/what/script";
        return false;
    }
    getString(text, "detail", ce.detail);
    getU64(text, "ref_digest", ce.ref_digest);

    if (ce.model == "deployment") {
        const auto dep = valuePos(text, "deployment");
        if (dep == std::string::npos) {
            err = path + ": deployment CE without config";
            return false;
        }
        DeployConfig &d = ce.deploy;
        getString(text, "device", d.device, dep);
        getU64(text, "max_ecs", d.max_ecs, dep);
        std::uint64_t v = 0;
        if (getU64(text, "pre_enqueue", v, dep))
            d.pre_enqueue = static_cast<int>(v);
        getU64(text, "seed", d.seed, dep);
        getU64(text, "max_events", d.max_events, dep);
        getBool(text, "shared_buffer", d.shared_buffer, dep);
        d.procs.clear();
        std::size_t at = dep;
        std::string model_name;
        while (getString(text, "net", model_name, at)) {
            DeployConfig::Proc p;
            p.model = model_name;
            const auto here = text.find("\"net\"", at);
            std::string prec;
            if (getString(text, "precision", prec, here))
                p.precision = soc::precisionFromName(prec);
            std::uint64_t batch = 1;
            if (getU64(text, "batch", batch, here))
                p.batch = static_cast<int>(batch);
            d.procs.push_back(std::move(p));
            at = text.find('}', here);
            if (at == std::string::npos)
                break;
        }
        if (d.procs.empty()) {
            err = path + ": deployment CE with no processes";
            return false;
        }
    } else if (ce.model != "toylock-inverted" &&
               ce.model != "toylock-ordered") {
        err = path + ": unknown model '" + ce.model + "'";
        return false;
    }
    return true;
}

std::unique_ptr<Model>
buildModel(const CounterExample &ce)
{
    if (ce.model == "toylock-inverted")
        return std::make_unique<ToyLockModel>(true);
    if (ce.model == "toylock-ordered")
        return std::make_unique<ToyLockModel>(false);
    return std::make_unique<DeploymentModel>(ce.deploy);
}

std::string
replayCe(const CounterExample &ce)
{
    const auto model = buildModel(ce);
    const RunOutcome out = model->run(ce.script);
    const std::string kind = failureKind(out, ce.ref_digest);
    if (kind == ce.what)
        return "";
    return "expected '" + ce.what + "' but the replay produced '" +
           (kind.empty() ? "clean run" : kind) + "'" +
           (out.detail.empty() ? "" : " (" + out.detail + ")");
}

} // namespace jetsim::mc
