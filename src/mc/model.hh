/**
 * @file
 * The checkable-system interface jetmc explores.
 *
 * A Model is anything that can execute one complete, terminating run
 * of a closed system under a choice script and report what happened.
 * Runs must be pure functions of the script: same script, same
 * RunOutcome, bit for bit. The checker (explorer.hh) owns the search;
 * the model owns the semantics — including the two ingredients the
 * partial-order reduction needs:
 *
 *  - a mapping from arbitration-site actor tags to *process indices*
 *    (the unit of independence), and
 *  - the dependence relation between processes, derived for real
 *    deployments from the happens-before hazard analysis
 *    (lint::conflictingStreamPairs): two processes are independent
 *    exactly when their stream programs touch disjoint buffers, so
 *    swapping adjacent scheduling actions of the two cannot change
 *    any reachable logical state.
 */

#ifndef JETSIM_MC_MODEL_HH
#define JETSIM_MC_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mc/trace.hh"

namespace jetsim::mc {

/** Everything one controlled run produces. */
struct RunOutcome
{
    /** Every arbitration site hit, in execution order. */
    std::vector<ChoiceRec> trace;

    /** Queue drained before the closed workload completed. */
    bool deadlock = false;

    /** Event budget exhausted before quiescence (config too large —
     * not a verdict about the system). */
    bool bound_exceeded = false;

    /** JetSan violations reported during the run. */
    std::uint64_t violations = 0;

    /**
     * Logical digest: folds only schedule-invariant facts (per-process
     * completion counts, per-channel FIFO kernel sequences, memory
     * balance, violation count) — never timing. Equal across all
     * interleavings iff the model's observable results are
     * schedule-independent.
     */
    std::uint64_t digest = 0;

    /** Per-process worst observed blocking (ms); timing, so reported
     * as a bound over explored schedules, not an invariant. */
    std::vector<double> max_block_ms;

    /** Events executed (diagnostic). */
    std::uint64_t events = 0;

    /** Human-readable diagnosis of a deadlock/violation, if any. */
    std::string detail;

    bool failed() const { return deadlock || violations > 0; }
};

/** Process index when an actor tag cannot be attributed. */
inline constexpr int kProcUnknown = -1;

/** A closed system the explorer can run under a script. */
class Model
{
  public:
    virtual ~Model() = default;

    /** Short identity for reports and counterexample files. */
    virtual std::string name() const = 0;

    /** Execute one full run under @p script (deterministic). */
    virtual RunOutcome run(const std::vector<int> &script) = 0;

    /** Number of processes (for report shapes). */
    virtual int procCount() const = 0;

    /** Map an arbitration actor tag to a process index, or
     * kProcUnknown when the tag identifies no single process. */
    virtual int procOf(sim::ChoiceKind kind,
                       std::int64_t actor) const = 0;

    /**
     * May scheduling actions of processes @p pa and @p pb fail to
     * commute? Called with valid indices only; the explorer treats
     * kProcUnknown as dependent on everything.
     */
    virtual bool dependent(int pa, int pb) const = 0;
};

} // namespace jetsim::mc

#endif // JETSIM_MC_MODEL_HH
