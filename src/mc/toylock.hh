/**
 * @file
 * Two-worker, two-lock toy model: the checker's own self-test.
 *
 * Two workers run short op programs over locks A and B on one event
 * queue; every op is an event at the current tick, so whenever both
 * workers have a step pending the queue's EventTie choice point picks
 * who moves. In the *inverted* variant worker 1 takes A then B while
 * worker 2 takes B then A — safe under the default (insertion-order)
 * schedule, but a handful of adverse tie-breaks reach the classic
 * hold-and-wait cycle. A checker that cannot find that deadlock (and
 * produce a replayable trace for it) is not trustworthy on real
 * deployments, so CI runs this model first (jetmc --selftest).
 *
 * The well-ordered variant (both workers acquire A before B) is
 * deadlock-free in every interleaving; the self-test proves that too.
 */

#ifndef JETSIM_MC_TOYLOCK_HH
#define JETSIM_MC_TOYLOCK_HH

#include "mc/model.hh"

namespace jetsim::mc {

/** Lock-ordering toy: safe or deliberately deadlockable. */
class ToyLockModel final : public Model
{
  public:
    /** @param inverted worker 2 acquires B before A (deadlockable);
     *         false keeps a global lock order (provably safe). */
    explicit ToyLockModel(bool inverted) : inverted_(inverted) {}

    std::string name() const override
    {
        return inverted_ ? "toylock-inverted" : "toylock-ordered";
    }

    RunOutcome run(const std::vector<int> &script) override;

    int procCount() const override { return 2; }

    int procOf(sim::ChoiceKind, std::int64_t) const override
    {
        // Every site is an EventTie between opaque callbacks: no
        // attribution, hence no independence, hence no pruning — the
        // self-test exercises the exhaustive path.
        return kProcUnknown;
    }

    bool dependent(int, int) const override { return true; }

  private:
    bool inverted_;
};

} // namespace jetsim::mc

#endif // JETSIM_MC_TOYLOCK_HH
