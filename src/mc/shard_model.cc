#include "mc/shard_model.hh"

#include <array>

#include "check/digest.hh"
#include "check/reporter.hh"

namespace jetsim::mc {

namespace {

/** Shared observer state for one run. */
struct World
{
    sim::ShardedEngine &eng;
    int port[2];
    std::uint64_t target_hops;
    bool racy;

    std::uint64_t hops = 0;
    std::array<std::uint64_t, 2> local{};
    /** racy only: shard ids in execution order of same-tick events —
     * precisely what merge arbitration is allowed to vary. */
    std::vector<int> order_log;

    void
    hop(int s)
    {
        ++hops;
        if (racy)
            order_log.push_back(s);
        if (hops >= target_hops)
            return;
        const int dst = 1 - s;
        eng.post(port[s], dst, eng.shard(s).now() + 1,
                 [this, dst] { hop(dst); });
    }

    void
    localWork(int s)
    {
        ++local[static_cast<std::size_t>(s)];
        if (racy)
            order_log.push_back(s);
    }
};

} // namespace

RunOutcome
ShardPingModel::run(const std::vector<int> &script)
{
    sim::ShardedEngine::Options opts;
    opts.shards = 2;
    opts.threads = 1;
    opts.lookahead = 1; // post() minimum; chooser forces merge anyway
    return runWith(opts, &script);
}

RunOutcome
ShardPingModel::runWith(const sim::ShardedEngine::Options &opts,
                        const std::vector<int> *script)
{
    // Count mode: findings must come back as data, not aborts.
    check::ScopedCapture capture;

    sim::ShardedEngine eng(opts);
    World world{eng,
                {eng.addPort(0), eng.addPort(1 % eng.shards())},
                static_cast<std::uint64_t>(2 * rounds_),
                racy_,
                0,
                {},
                {}};

    // The token starts on shard 0 at tick 1; hop r lands at tick r.
    eng.shard(0).schedule(1, [&world] { world.hop(0); });
    // Colliders: both shards busy at every token tick, so controlled
    // runs hit a ShardMerge site per tick.
    for (int t = 1; t <= 2 * rounds_; ++t)
        for (int s = 0; s < eng.shards(); ++s)
            eng.shard(s).schedule(
                t, [&world, s] { world.localWork(s); });

    TraceChooser chooser(script ? *script : std::vector<int>{});
    if (script)
        eng.setChooser(&chooser);
    const std::uint64_t events = eng.runAll(100000);

    RunOutcome out;
    if (script)
        out.trace = chooser.trace();
    out.events = events;
    out.violations = capture.total();
    out.max_block_ms.assign(2, 0.0);

    const auto expect_local =
        static_cast<std::uint64_t>(2 * rounds_);
    if (world.hops < world.target_hops ||
        world.local[0] < expect_local ||
        world.local[1] < expect_local) {
        out.deadlock = true;
        out.detail = "stalled: hops " + std::to_string(world.hops) +
                     "/" + std::to_string(world.target_hops) +
                     ", local " + std::to_string(world.local[0]) +
                     "+" + std::to_string(world.local[1]) + "/" +
                     std::to_string(2 * expect_local);
    }

    check::Digest d;
    d.add(world.hops);
    d.add(world.local[0]);
    d.add(world.local[1]);
    d.add(out.violations);
    for (const int s : world.order_log)
        d.add(static_cast<std::int64_t>(s));
    out.digest = d.value();
    return out;
}

} // namespace jetsim::mc
