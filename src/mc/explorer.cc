#include "mc/explorer.hh"

#include <algorithm>

namespace jetsim::mc {

namespace {

/**
 * Sleep-set commutation check: is taking alternative @p alt at site
 * @p i redundant given the default run's continuation in @p trace?
 * True iff the alternative's process b reappears as the pick of a
 * later same-kind site with every intermediate step independent of b
 * — then the deviated run is a transposition of independent steps of
 * this one and reaches the same logical state.
 */
bool
prunable(const Model &m, const std::vector<ChoiceRec> &trace,
         std::size_t i, int alt)
{
    const sim::ChoiceKind kind = trace[i].kind;
    const int pb = m.procOf(kind, trace[i].actors[alt]);
    if (pb == kProcUnknown)
        return false;
    for (std::size_t j = i; j < trace.size(); ++j) {
        const ChoiceRec &step = trace[j];
        const int pj =
            m.procOf(step.kind, step.actors[step.picked]);
        if (step.kind == kind && pj == pb)
            return true; // b got its turn; everything before commuted
        if (pj == kProcUnknown || m.dependent(pj, pb))
            return false; // deviation is observable: must explore
    }
    return false; // b never scheduled again: conservatively explore
}

/** Fold one outcome into the report's non-verdict aggregates. */
void
merge(ExploreReport &rep, const RunOutcome &out)
{
    rep.max_trace_len = std::max(
        rep.max_trace_len, static_cast<int>(out.trace.size()));
    rep.max_events = std::max(rep.max_events, out.events);
    if (out.bound_exceeded)
        rep.event_bound_hit = true;
    if (rep.max_block_ms.size() < out.max_block_ms.size())
        rep.max_block_ms.resize(out.max_block_ms.size(), 0.0);
    for (std::size_t i = 0; i < out.max_block_ms.size(); ++i)
        rep.max_block_ms[i] =
            std::max(rep.max_block_ms[i], out.max_block_ms[i]);
}

/**
 * Greedy counterexample shrink: zero entries right to left (a zero is
 * the default, so trailing zeros can then be dropped entirely),
 * keeping each simplification that still fails the same way.
 */
std::vector<int>
minimizeCe(Model &m, std::vector<int> script, const std::string &what,
           std::uint64_t ref_digest, ExploreReport &rep)
{
    auto stillFails = [&](const std::vector<int> &s) {
        ++rep.runs;
        return failureKind(m.run(s), ref_digest) == what;
    };
    for (std::size_t i = script.size(); i-- > 0;) {
        if (script[i] == 0)
            continue;
        std::vector<int> trial = script;
        trial[i] = 0;
        while (!trial.empty() && trial.back() == 0)
            trial.pop_back();
        if (stillFails(trial))
            script = std::move(trial);
    }
    while (!script.empty() && script.back() == 0)
        script.pop_back();
    return script;
}

} // namespace

std::string
failureKind(const RunOutcome &out, std::uint64_t ref_digest)
{
    if (out.deadlock)
        return "deadlock";
    if (out.violations > 0)
        return "violation";
    if (!out.bound_exceeded && out.digest != ref_digest)
        return "digest-mismatch";
    return "";
}

ExploreReport
explore(Model &m, const ExploreConfig &cfg)
{
    ExploreReport rep;

    // The reference run: the default schedule, which must match the
    // uncontrolled simulator bit for bit.
    std::vector<std::vector<int>> stack;
    stack.push_back({});
    bool have_ref = false;
    std::uint64_t ref_digest = 0;

    while (!stack.empty()) {
        if (rep.runs >= cfg.max_runs) {
            rep.run_budget_hit = true;
            break;
        }
        const std::vector<int> script = std::move(stack.back());
        stack.pop_back();

        const RunOutcome out = m.run(script);
        ++rep.runs;
        merge(rep, out);
        if (!have_ref) {
            have_ref = true;
            ref_digest = out.digest;
            rep.digest = ref_digest;
        }

        const std::string fail = failureKind(out, ref_digest);
        if (!fail.empty()) {
            if (fail == "deadlock")
                rep.deadlock = true;
            else if (fail == "violation")
                ++rep.violation_runs;
            else
                rep.digest_mismatch = true;
            if (rep.ce_what.empty()) {
                rep.ce_what = fail;
                rep.ce_detail = out.detail;
                rep.ce_script = script;
                if (cfg.minimize)
                    rep.ce_script = minimizeCe(m, rep.ce_script, fail,
                                               ref_digest, rep);
            }
            if (cfg.stop_on_failure)
                break;
        }

        // Branch at every site that took the default (i.e. every site
        // at or beyond this script), within the depth bound.
        const std::size_t limit = std::min(
            out.trace.size(), static_cast<std::size_t>(cfg.depth));
        if (out.trace.size() >
            static_cast<std::size_t>(cfg.depth))
            rep.depth_clipped = true;
        for (std::size_t i = script.size(); i < limit; ++i) {
            for (int a = 1; a < out.trace[i].n; ++a) {
                if (cfg.dpor && prunable(m, out.trace, i, a)) {
                    ++rep.pruned;
                    continue;
                }
                std::vector<int> child;
                child.reserve(i + 1);
                for (std::size_t k = 0; k < i; ++k)
                    child.push_back(out.trace[k].picked);
                child.push_back(a);
                stack.push_back(std::move(child));
                ++rep.branches;
            }
        }
    }
    return rep;
}

} // namespace jetsim::mc
