#include "mc/hier_model.hh"

#include <array>

#include "check/digest.hh"
#include "check/reporter.hh"

namespace jetsim::mc {

namespace {

/** Three devices over two device shards: 0 and 2 on shard 1 (the
 * same-shard tie the sub counter must resolve deterministically),
 * 1 alone on shard 2 (the cross-shard race merge arbitration owns). */
constexpr int kDevices = 3;

constexpr int
shardOf(int device)
{
    return 1 + device % 2;
}

/** Shared observer state for one run. */
struct World
{
    sim::ShardedEngine &eng;
    int root_port;
    std::array<int, 3> sub_port; // index = shard; 0 unused
    sim::Tick fanout;
    bool racy;

    std::array<std::uint64_t, kDevices> arrived{};
    /** racy only: device ids in execution order of same-tick arrivals
     * — precisely what merge arbitration is allowed to vary. */
    std::vector<int> order_log;

    /** Root wave: one job per device through the two-hop path, in
     * round-robin order — the production Balancer::onArrival shape. */
    void
    dispatchWave()
    {
        for (int d = 0; d < kDevices; ++d) {
            // Sub ports are keyed by nominal shard; the destination
            // collapses with the actual shard count so the serial
            // (shards=1) comparison run exercises the same code.
            const int sp = sub_port[static_cast<std::size_t>(shardOf(d))];
            const int s = shardOf(d) % eng.shards();
            eng.post(root_port, s, eng.shard(0).now() + 1,
                     [this, sp, s, d] {
                         eng.post(sp, s, eng.shard(s).now() + fanout,
                                  [this, d] { arrive(d); });
                     });
        }
    }

    void
    arrive(int d)
    {
        ++arrived[static_cast<std::size_t>(d)];
        if (racy)
            order_log.push_back(d);
    }
};

} // namespace

RunOutcome
HierDispatchModel::run(const std::vector<int> &script)
{
    sim::ShardedEngine::Options opts;
    opts.shards = 3;
    opts.threads = 1;
    opts.lookahead = 1; // post() minimum; chooser forces merge anyway
    return runWith(opts, &script);
}

RunOutcome
HierDispatchModel::runWith(const sim::ShardedEngine::Options &opts,
                           const std::vector<int> *script)
{
    // Count mode: findings must come back as data, not aborts.
    check::ScopedCapture capture;

    sim::ShardedEngine eng(opts);
    World world{eng,
                eng.addPort(0),
                {-1, eng.addPort(1 % eng.shards(), /*local_only=*/
                                 eng.shards() > 1),
                 eng.addPort(2 % eng.shards(), /*local_only=*/
                             eng.shards() > 1)},
                /*fanout=*/1,
                racy_,
                {},
                {}};

    // Wave r fires on the root at tick 1 + 3r; hop-1 arrivals land at
    // tick 2 + 3r on both device shards, hop-2 injections at 3 + 3r —
    // every hop tick is a cross-shard tie.
    for (int r = 0; r < rounds_; ++r)
        eng.shard(0).schedule(1 + 3 * r,
                              [&world] { world.dispatchWave(); });

    TraceChooser chooser(script ? *script : std::vector<int>{});
    if (script)
        eng.setChooser(&chooser);
    const std::uint64_t events = eng.runAll(100000);

    RunOutcome out;
    if (script)
        out.trace = chooser.trace();
    out.events = events;
    out.violations = capture.total();
    out.max_block_ms.assign(3, 0.0);

    const auto expect = static_cast<std::uint64_t>(rounds_);
    for (int d = 0; d < kDevices; ++d)
        if (world.arrived[static_cast<std::size_t>(d)] < expect) {
            out.deadlock = true;
            out.detail =
                "stalled: device " + std::to_string(d) + " arrived " +
                std::to_string(
                    world.arrived[static_cast<std::size_t>(d)]) +
                "/" + std::to_string(expect);
            break;
        }

    check::Digest dg;
    for (int d = 0; d < kDevices; ++d)
        dg.add(world.arrived[static_cast<std::size_t>(d)]);
    dg.add(out.violations);
    for (const int d : world.order_log)
        dg.add(static_cast<std::int64_t>(d));
    out.digest = dg.value();
    return out;
}

} // namespace jetsim::mc
