/**
 * @file
 * Hierarchical two-hop dispatch model: jetmc coverage for the fleet
 * layer's root -> sub-balancer -> device scheduling (ISSUE 9).
 *
 * A root balancer on shard 0 dispatches jobs round-robin to devices
 * spread over two device shards; each job takes the production two-hop
 * path — a cross-shard post to the device's shard followed by a
 * local_only sub-balancer hop that injects the arrival. Devices on
 * *different* shards receive their hop events at the same ticks, so in
 * controlled (merge-fallback) mode every hop tick is a ShardMerge
 * arbitration site. The explorer proves, over the complete bounded
 * schedule space:
 *
 *  - deadlock-freedom: every dispatched job arrives under every merge
 *    order — no schedule strands a sub-balancer hop;
 *  - digest invariance: per-device arrival counts are identical under
 *    every merge order — the machine-checked core of the claim that
 *    hierarchical dispatch is topology- and schedule-invariant
 *    (same-shard ties resolve by the sub port's message counter, which
 *    equals root dispatch order).
 *
 * The deliberately broken variant (racy=true) folds the *cross-shard
 * execution order* of same-tick arrivals into the digest — exactly
 * what merge arbitration varies — so the explorer must find a digest
 * mismatch (self-test that the two-hop sites are live choice points).
 *
 * runWith() exposes the workload on the epoch/barrier path, including
 * the adaptive batch_windows fusion, so tests can tie the explored
 * merge space to the production scheduling paths
 * (tests/mc/hier_mc_test.cc).
 */

#ifndef JETSIM_MC_HIER_MODEL_HH
#define JETSIM_MC_HIER_MODEL_HH

#include "mc/model.hh"
#include "sim/sharded_engine.hh"

namespace jetsim::mc {

/** Root -> sub -> device dispatch over three shards. */
class HierDispatchModel final : public Model
{
  public:
    /** @param rounds root dispatch waves (each wave posts one job to
     *  every device); @param racy fold schedule-dependent cross-shard
     *  order into the digest (the explorer must catch it). */
    explicit HierDispatchModel(int rounds = 2, bool racy = false)
        : rounds_(rounds), racy_(racy)
    {
    }

    std::string name() const override
    {
        return racy_ ? "hierdispatch-racy" : "hierdispatch";
    }

    RunOutcome run(const std::vector<int> &script) override;

    /**
     * Run the same workload under explicit engine options. With
     * @p script == nullptr the engine is uncontrolled: lookahead > 0
     * exercises the epoch/barrier path (threads > 1 genuinely
     * parallel; batch_windows as configured). Digest comparability
     * with run() ties the explored merge space to production paths.
     */
    RunOutcome runWith(const sim::ShardedEngine::Options &opts,
                       const std::vector<int> *script);

    /** One process per shard (root + two device shards). */
    int procCount() const override { return 3; }

    int procOf(sim::ChoiceKind kind, std::int64_t actor) const override
    {
        if (kind == sim::ChoiceKind::ShardMerge && actor >= 0 &&
            actor < 3)
            return static_cast<int>(actor);
        return kProcUnknown;
    }

    /** Exhaustive search: the root's dispatch couples every shard. */
    bool dependent(int, int) const override { return true; }

  private:
    int rounds_;
    bool racy_;
};

} // namespace jetsim::mc

#endif // JETSIM_MC_HIER_MODEL_HH
