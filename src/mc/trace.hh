/**
 * @file
 * Choice traces: the record/replay layer under the model checker.
 *
 * A *script* is a plain vector of alternative indices. TraceChooser
 * replays it site by site — the first script.size() arbitration sites
 * take the scripted alternative, every later site takes the default
 * (alternative 0) — and records the full trace of every site it was
 * asked about: which kind, how many alternatives, their actor tags,
 * and the pick. A run of the simulator under a TraceChooser is a pure
 * function of (configuration, script), which is what makes stateless
 * exploration possible: the checker never snapshots simulator state,
 * it just re-executes with a longer script.
 */

#ifndef JETSIM_MC_TRACE_HH
#define JETSIM_MC_TRACE_HH

#include <cstdint>
#include <vector>

#include "sim/choice.hh"
#include "sim/logging.hh"

namespace jetsim::mc {

/** One arbitration site as the chooser saw it. */
struct ChoiceRec
{
    sim::ChoiceKind kind;
    int n = 0;      ///< alternatives offered (>= 2)
    int picked = 0; ///< alternative taken
    std::int64_t actors[sim::kMaxChoiceAlts] = {};
};

/** Replay a script prefix, record the full trace. */
class TraceChooser final : public sim::Chooser
{
  public:
    explicit TraceChooser(std::vector<int> script)
        : script_(std::move(script))
    {
    }

    int
    choose(sim::ChoiceKind kind, const std::int64_t *actors,
           int n) override
    {
        JETSIM_ASSERT(n >= 2 && n <= sim::kMaxChoiceAlts);
        ChoiceRec rec;
        rec.kind = kind;
        rec.n = n;
        for (int i = 0; i < n; ++i)
            rec.actors[i] = actors[i];
        int pick = 0;
        if (trace_.size() < script_.size()) {
            pick = script_[trace_.size()];
            // A stale script entry (the branch point moved because an
            // earlier choice changed the run) falls back to the
            // default rather than crashing: exploration treats the
            // resulting trace as what actually happened.
            if (pick < 0 || pick >= n) {
                pick = 0;
                ++clamped_;
            }
        }
        rec.picked = pick;
        trace_.push_back(rec);
        return pick;
    }

    const std::vector<ChoiceRec> &trace() const { return trace_; }

    /** Script entries that no longer matched a legal alternative. */
    std::uint64_t clamped() const { return clamped_; }

  private:
    std::vector<int> script_;
    std::vector<ChoiceRec> trace_;
    std::uint64_t clamped_ = 0;
};

} // namespace jetsim::mc

#endif // JETSIM_MC_TRACE_HH
