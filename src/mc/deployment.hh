/**
 * @file
 * The real thing under the checker: a bounded concurrent deployment.
 *
 * DeploymentModel runs the full simulator stack — board, OS
 * scheduler, GPU engine, N inference processes — as a *closed*
 * workload: each process enqueues exactly max_ecs execution contexts
 * (counted in its own program order, so the count is identical in
 * every interleaving), uses blocking sync (spin-wait never quiesces),
 * and the DVFS governor's periodic events stay off. The event queue
 * therefore drains, and one run is a terminating, deterministic
 * function of the choice script.
 *
 * What a run reports:
 *  - deadlock: the queue drained while some process had work left;
 *  - a *logical* digest folding only schedule-invariant facts
 *    (per-process EC/launch/image counts, each channel's FIFO kernel
 *    sequence, the memory balance, the violation count). Timing is
 *    deliberately excluded: GPU/CPU arbitration legitimately moves
 *    latencies, and the schedule-independence theorem jetmc proves is
 *    about results, not timestamps;
 *  - per-process worst-case blocking, reported as a bound over the
 *    explored schedules.
 *
 * Independence for the partial-order reduction comes from
 * lint::conflictingStreamPairs over a symbolic stream program
 * mirroring the deployment: one stream and one private buffer set per
 * process (TensorRT processes share no device memory), so distinct
 * processes are independent — unless `shared_buffer` seeds a
 * cross-process conflict, which collapses the reduction exactly as
 * the theory says it must.
 */

#ifndef JETSIM_MC_DEPLOYMENT_HH
#define JETSIM_MC_DEPLOYMENT_HH

#include <string>
#include <vector>

#include "mc/model.hh"
#include "sim/name_registry.hh"
#include "soc/precision.hh"

namespace jetsim::mc {

/** One bounded concurrent deployment to check. */
struct DeployConfig
{
    std::string device = "orin-nano";

    struct Proc
    {
        std::string model = "resnet50";
        soc::Precision precision = soc::Precision::Fp16;
        int batch = 1;
    };
    std::vector<Proc> procs;

    /** ECs each process enqueues before stopping (program-order
     * bound; see workload::ProcessConfig::max_ecs). */
    std::uint64_t max_ecs = 2;
    int pre_enqueue = 1;
    std::uint64_t seed = 1;
    /** Event budget per run; exhausting it is a config error, not a
     * verdict. */
    std::uint64_t max_events = 500000;
    /** Seed a cross-process buffer conflict into the symbolic stream
     * program (dependence-injection test for the DPOR). */
    bool shared_buffer = false;

    std::string label() const;
};

/** Model implementation over the full simulator stack. */
class DeploymentModel final : public Model
{
  public:
    explicit DeploymentModel(DeployConfig cfg);

    std::string name() const override { return cfg_.label(); }
    RunOutcome run(const std::vector<int> &script) override;
    int procCount() const override
    {
        return static_cast<int>(cfg_.procs.size());
    }
    int procOf(sim::ChoiceKind kind, std::int64_t actor) const override;
    bool dependent(int pa, int pb) const override;

    const DeployConfig &config() const { return cfg_; }

  private:
    DeployConfig cfg_;
    /** Interned per-process thread names (CpuRunQueue actor tags). */
    std::vector<sim::NameId> thread_ids_;
    /** dependent_[a*n+b] from the hazard relation (symmetric). */
    std::vector<char> dependent_;
};

} // namespace jetsim::mc

#endif // JETSIM_MC_DEPLOYMENT_HH
