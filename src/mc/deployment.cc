#include "mc/deployment.hh"

#include <memory>

#include "check/digest.hh"
#include "check/reporter.hh"
#include "cpu/scheduler.hh"
#include "gpu/engine.hh"
#include "lint/hazard_lint.hh"
#include "models/zoo.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "soc/board.hh"
#include "workload/inference_process.hh"

namespace jetsim::mc {

namespace {

std::string
procName(const DeployConfig &cfg, int i)
{
    return cfg.procs[static_cast<std::size_t>(i)].model + "/" +
           soc::name(cfg.procs[static_cast<std::size_t>(i)].precision) +
           "." + std::to_string(i);
}

} // namespace

std::string
DeployConfig::label() const
{
    std::string s = device + "[";
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (i)
            s += " + ";
        s += procs[i].model + "/" + soc::name(procs[i].precision) +
             " b" + std::to_string(procs[i].batch);
    }
    s += "] ecs" + std::to_string(max_ecs);
    if (shared_buffer)
        s += " shared-buffer";
    return s;
}

DeploymentModel::DeploymentModel(DeployConfig cfg)
    : cfg_(std::move(cfg))
{
    JETSIM_ASSERT(!cfg_.procs.empty() && cfg_.max_ecs > 0);
    const int n = procCount();
    thread_ids_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        thread_ids_.push_back(sim::internName(procName(cfg_, i)));

    // Symbolic stream program mirroring what the deployment submits:
    // one stream per process, one private buffer per process that its
    // kernels read and write (TensorRT processes share no device
    // memory). The hazard relation over that program — not an
    // assumption — is the independence the DPOR prunes with:
    // conflict-free stream pairs commute at the logical-digest level.
    lint::StreamProgram prog;
    std::vector<int> streams, bufs;
    for (int i = 0; i < n; ++i) {
        streams.push_back(prog.stream(procName(cfg_, i)));
        bufs.push_back(
            prog.buffer(procName(cfg_, i) + ".mem"));
    }
    const int shared =
        cfg_.shared_buffer ? prog.buffer("shared.mem") : -1;
    for (int i = 0; i < n; ++i) {
        std::vector<int> writes{bufs[static_cast<std::size_t>(i)]};
        if (shared >= 0)
            writes.push_back(shared);
        prog.launch(streams[static_cast<std::size_t>(i)],
                    cfg_.procs[static_cast<std::size_t>(i)].model,
                    {bufs[static_cast<std::size_t>(i)]},
                    std::move(writes));
    }

    dependent_.assign(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
    for (const auto &[a, b] : lint::conflictingStreamPairs(prog)) {
        dependent_[static_cast<std::size_t>(a) *
                       static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(b)] = 1;
        dependent_[static_cast<std::size_t>(b) *
                       static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(a)] = 1;
    }
}

int
DeploymentModel::procOf(sim::ChoiceKind kind, std::int64_t actor) const
{
    switch (kind) {
      case sim::ChoiceKind::GpuChannel:
        // Streams are created in deploy order, so channel id ==
        // process index.
        if (actor >= 0 && actor < procCount())
            return static_cast<int>(actor);
        return kProcUnknown;
      case sim::ChoiceKind::CpuRunQueue:
        for (int i = 0; i < procCount(); ++i)
            if (thread_ids_[static_cast<std::size_t>(i)] ==
                static_cast<sim::NameId>(actor))
                return i;
        return kProcUnknown;
      case sim::ChoiceKind::EventTie:
        return kProcUnknown;
      case sim::ChoiceKind::ShardMerge:
        // Deployments run on one queue; merge sites never arise.
        return kProcUnknown;
    }
    return kProcUnknown;
}

bool
DeploymentModel::dependent(int pa, int pb) const
{
    if (pa == pb)
        return true;
    return dependent_[static_cast<std::size_t>(pa) *
                          static_cast<std::size_t>(procCount()) +
                      static_cast<std::size_t>(pb)] != 0;
}

RunOutcome
DeploymentModel::run(const std::vector<int> &script)
{
    // Count mode: a finding must come back as data, not an abort in
    // the middle of the search.
    check::ScopedCapture capture;
    RunOutcome out;

    sim::EventQueue eq;
    soc::Board board(soc::deviceByName(cfg_.device), eq, cfg_.seed);
    // Closed system: the governor's periodic sampling would keep the
    // queue alive forever (and its events are schedule-noise anyway),
    // so it stays off — board.start() is never called.
    board.governor().setEnabled(false);

    cpu::OsScheduler sched(board);
    gpu::GpuEngine gpu(board);

    // Per-channel kernel-name FIFO: channels are FIFOs, so each
    // channel's sequence is schedule-invariant and digest-safe even
    // though the cross-channel interleaving is not.
    std::vector<std::vector<std::string>> chan_seq;
    gpu.setTraceHook([&chan_seq](const gpu::KernelRecord &r) {
        if (r.channel >= static_cast<int>(chan_seq.size()))
            chan_seq.resize(static_cast<std::size_t>(r.channel) + 1);
        chan_seq[static_cast<std::size_t>(r.channel)].push_back(
            r.desc->name);
    });

    const int n = procCount();
    std::vector<graph::Network> nets;
    nets.reserve(static_cast<std::size_t>(n));
    std::vector<std::unique_ptr<workload::InferenceProcess>> procs;
    procs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const auto &p = cfg_.procs[static_cast<std::size_t>(i)];
        nets.push_back(models::modelByName(p.model));
        workload::ProcessConfig pc;
        pc.name = procName(cfg_, i);
        pc.build.precision = p.precision;
        pc.build.batch = p.batch;
        pc.pre_enqueue = cfg_.pre_enqueue;
        // All processes start at tick 0: the launch race is the point.
        pc.start_offset = 0;
        // Blocking sync — a spin-wait loop polls forever and the
        // closed system would never quiesce.
        pc.spin_wait = false;
        pc.max_ecs = cfg_.max_ecs;
        procs.push_back(std::make_unique<workload::InferenceProcess>(
            board, sched, gpu, nets.back(), std::move(pc)));
    }
    for (auto &p : procs) {
        if (!p->deploy()) {
            out.bound_exceeded = true;
            out.detail = "deployment does not fit on " + cfg_.device +
                         " (config error, not a schedule verdict)";
            out.violations = capture.total();
            return out;
        }
    }

    TraceChooser chooser(script);
    eq.setChooser(&chooser);
    for (auto &p : procs) {
        p->beginMeasurement(); // count from the first EC
        p->start();
    }
    out.events = eq.runAll(cfg_.max_events);
    eq.setChooser(nullptr);

    out.trace = chooser.trace();
    out.violations = capture.total();
    out.bound_exceeded = !eq.empty();
    out.max_block_ms.reserve(static_cast<std::size_t>(n));

    check::Digest d;
    for (int i = 0; i < n; ++i) {
        const auto &p = *procs[static_cast<std::size_t>(i)];
        const bool done = p.ecsLaunched() == cfg_.max_ecs &&
                          p.ecsCompleted() == cfg_.max_ecs;
        if (!out.bound_exceeded && !done) {
            out.deadlock = true;
            if (!out.detail.empty())
                out.detail += "; ";
            out.detail += p.config().name + " stalled at " +
                          std::to_string(p.ecsCompleted()) + "/" +
                          std::to_string(cfg_.max_ecs) + " ECs (" +
                          std::to_string(p.ecsLaunched()) +
                          " launched)";
        }
        d.add(p.config().name);
        d.add(p.ecsLaunched());
        d.add(p.ecsCompleted());
        d.add(p.imagesCompleted());
        out.max_block_ms.push_back(p.blockedTime().max() / 1e6);
    }
    for (std::size_t c = 0; c < chan_seq.size(); ++c) {
        d.add(static_cast<std::uint64_t>(c));
        for (const auto &name : chan_seq[c])
            d.add(name);
    }
    d.add(static_cast<std::uint64_t>(board.memory().used()));
    d.add(out.violations);
    out.digest = d.value();
    return out;
}

} // namespace jetsim::mc
