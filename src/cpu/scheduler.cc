#include "cpu/scheduler.hh"

#include <algorithm>

#include "core/hot_annotations.hh"
#include "sim/logging.hh"

namespace jetsim::cpu {

// ---------------------------------------------------------------- Thread

void
Thread::exec(sim::Tick work, sim::InlineFn done)
{
    JETSIM_ASSERT(work >= 0);
    // A work item's callback waits in the thread queue, not the event
    // queue, so EventQueue::schedule never sees its SBO state; count
    // the miss against the queue it will eventually fire on.
    if (done.onHeap())
        JETSIM_COLD_OK("SBO miss: work-item capture spilled past 48 bytes; counted, asserted zero by micro_sim --assert-sbo")
        sched_.eq().noteSboMiss();
    JETSIM_COLD_OK("amortized: per-thread work deque, steady-state depth bounded by queued items")
    queue_.push_back(WorkItem{work, std::move(done)});
    if (state_ == State::Idle)
        sched_.makeRunnable(this);
}

void
Thread::resetStats()
{
    cpu_time_ = 0;
    wake_wait_ = 0;
    preempt_wait_ = 0;
    cache_penalty_ = 0;
    wakeups_ = 0;
    preemptions_ = 0;
    migrations_ = 0;
    dispatches_ = 0;
}

// ----------------------------------------------------------- OsScheduler

OsScheduler::OsScheduler(soc::Board &board)
    : board_(board), eq_(board.eq())
{
    int id = 0;
    for (const auto &cluster : board_.spec().clusters)
        for (int i = 0; i < cluster.cores; ++i)
            cores_.push_back(Core{id++, cluster.big, nullptr, nullptr});
    JETSIM_ASSERT(!cores_.empty());
}

Thread *
OsScheduler::createThread(const std::string &name, bool big)
{
    return createThread(sim::internName(name), big);
}

Thread *
OsScheduler::createThread(sim::NameId name_id, bool big)
{
    threads_.push_back(
        std::unique_ptr<Thread>(new Thread(name_id, big, *this)));
    return threads_.back().get();
}

int
OsScheduler::runnableCount(bool big) const
{
    const auto &q = big ? runq_big_ : runq_little_;
    return static_cast<int>(q.size());
}

int
OsScheduler::busyCores(bool big) const
{
    int n = 0;
    for (const auto &c : cores_)
        if (c.big == big && c.running)
            ++n;
    return n;
}

void
OsScheduler::makeRunnable(Thread *t)
{
    JETSIM_ASSERT(t->state_ == Thread::State::Idle);
    t->state_ = Thread::State::Runnable;
    t->runnable_since_ = eq_.now();
    t->was_preempted_ = false;
    ++t->wakeups_;
    queueFor(t->big_).push_back(t);
    dispatchAll();
}

OsScheduler::Core *
OsScheduler::pickCore(Thread *t)
{
    Core *any = nullptr;
    for (auto &c : cores_) {
        if (c.running)
            continue;
        if (partitioned_ && c.big != t->big_)
            continue;
        if (c.id == t->last_core_)
            return &c; // warm core preferred
        if (!any)
            any = &c;
    }
    return any;
}

JETSIM_HOT void
OsScheduler::dispatchAll()
{
    sim::Chooser *chooser = eq_.chooser();
    for (auto *q : {&runq_big_, &runq_little_}) {
        while (!q->empty()) {
            std::size_t at = 0;
            if (chooser && q->size() >= 2) {
                // Controlled scheduling: the FIFO head is only one
                // legal pick — a real kernel's vruntime order depends
                // on timing noise we don't model, so any queued thread
                // may legally reach the free core first. Offer the
                // queue in order (head = default alternative 0),
                // tagged by interned thread name for the checker's
                // independence relation.
                std::int64_t actors[sim::kMaxChoiceAlts];
                const int nc = static_cast<int>(
                    std::min<std::size_t>(q->size(),
                                          sim::kMaxChoiceAlts));
                for (int i = 0; i < nc; ++i)
                    actors[i] = (*q)[static_cast<std::size_t>(i)]
                                    ->nameId();
                const int sel = chooser->choose(
                    sim::ChoiceKind::CpuRunQueue, actors, nc);
                JETSIM_ASSERT(sel >= 0 && sel < nc);
                at = static_cast<std::size_t>(sel);
            }
            Thread *t = (*q)[at];
            Core *core = pickCore(t);
            if (!core)
                break;
            q->erase(q->begin() +
                     static_cast<std::deque<Thread *>::difference_type>(
                         at));
            dispatch(*core, t);
        }
    }
}

JETSIM_HOT void
OsScheduler::dispatch(Core &core, Thread *t)
{
    JETSIM_ASSERT(t->state_ == Thread::State::Runnable);
    JETSIM_ASSERT(!t->queue_.empty());

    const sim::Tick wait = eq_.now() - t->runnable_since_;
    if (t->was_preempted_)
        t->preempt_wait_ += wait;
    else
        t->wake_wait_ += wait;

    // Cache-warmth penalty: a cold dispatch inflates the remaining
    // work of the current item (models L1/L2 refill after migration
    // or after another thread polluted this core's caches).
    const double pen = board_.spec().runtime.migration_penalty;
    auto &front = t->queue_.front();
    double factor = 0.0;
    if (t->last_core_ >= 0 && t->last_core_ != core.id) {
        factor = pen;
        ++t->migrations_;
    } else if (core.last_thread && core.last_thread != t) {
        factor = 0.5 * pen;
    }
    if (factor > 0.0) {
        // Refill cost is bounded by the working set touched in one
        // timeslice, not by the total remaining work (which would
        // diverge under repeated preemption).
        const sim::Tick touched =
            std::min(front.remaining,
                     board_.spec().runtime.timeslice);
        const auto add = static_cast<sim::Tick>(touched * factor);
        front.remaining += add;
        t->cache_penalty_ += add;
    }

    sim::Tick cs = 0;
    if (core.last_thread != t) {
        cs = board_.spec().runtime.context_switch;
        ++context_switches_;
    }

    t->state_ = Thread::State::Running;
    t->core_ = core.id;
    t->last_core_ = core.id;
    ++t->dispatches_;
    core.running = t;
    core.last_thread = t;
    core.dispatched_at = eq_.now();
    updateBoardActivity();

    const sim::Tick slice =
        std::min(front.remaining, board_.spec().runtime.timeslice);
    eq_.scheduleIn(cs + slice,
                   [this, &core, t, slice] { sliceEnd(core, t, slice); });
}

void
OsScheduler::sliceEnd(Core &core, Thread *t, sim::Tick work_done)
{
    JETSIM_ASSERT(core.running == t);
    JETSIM_ASSERT(!t->queue_.empty());

    auto &front = t->queue_.front();
    front.remaining -= work_done;
    t->cpu_time_ += work_done;

    if (front.remaining <= 0) {
        auto done = std::move(front.done);
        t->queue_.pop_front();
        if (done)
            done(); // may queue more work on this or other threads

        if (t->queue_.empty()) {
            idleThread(core, t);
            return;
        }
    }

    // Work remains. Yield if someone is waiting for this core class
    // and the thread has run at least the CFS-like minimum
    // granularity; otherwise keep the core (no switch cost). The
    // granularity rule keeps micro-items (kernel-launch API calls)
    // from ping-ponging the core at microsecond scale.
    const sim::Tick min_granularity =
        board_.spec().runtime.timeslice / 2;
    auto &q = queueFor(t->big_);
    if (!q.empty() &&
        eq_.now() - core.dispatched_at >= min_granularity) {
        t->state_ = Thread::State::Runnable;
        t->runnable_since_ = eq_.now();
        t->was_preempted_ = true;
        ++t->preemptions_;
        ++preemptions_;
        t->core_ = -1;
        core.running = nullptr;
        JETSIM_COLD_OK("amortized: run queue holds raw pointers, depth bounded by the thread count")
        q.push_back(t);
        updateBoardActivity();
        dispatchAll();
        return;
    }

    const sim::Tick slice =
        std::min(t->queue_.front().remaining,
                 board_.spec().runtime.timeslice);
    eq_.scheduleIn(slice,
                   [this, &core, t, slice] { sliceEnd(core, t, slice); });
}

void
OsScheduler::idleThread(Core &core, Thread *t)
{
    t->state_ = Thread::State::Idle;
    t->core_ = -1;
    core.running = nullptr;
    updateBoardActivity();
    dispatchAll();
}

void
OsScheduler::updateBoardActivity()
{
    board_.setCpuActive(busyCores(true), busyCores(false));
}

} // namespace jetsim::cpu
