/**
 * @file
 * Simulated CPU thread.
 *
 * Threads execute *work items*: a duration of CPU work plus a
 * completion callback. Between items a thread is idle (blocked —
 * e.g. waiting on a cudaStreamSynchronize); queueing a new item makes
 * it runnable and the OS scheduler dispatches it onto a core.
 *
 * The accounting here feeds the paper's Section 7 decomposition
 * EC_i = sum_l (K_l + T_l + C_l + B_l):
 *  - wakeWait()    — B_l: runnable-after-idle until first dispatch;
 *  - preemptWait() — T_l: re-dispatch latency after preemption;
 *  - cpuTime()     — C_l: work actually executed (including the
 *                    cache-migration inflation);
 *  - cachePenalty() — the inflation component alone.
 */

#ifndef JETSIM_CPU_THREAD_HH
#define JETSIM_CPU_THREAD_HH

#include <cstdint>
#include <deque>
#include <string>

#include "sim/inline_fn.hh"
#include "sim/name_registry.hh"
#include "sim/types.hh"

namespace jetsim::cpu {

class OsScheduler;

/** One schedulable thread. Created via OsScheduler::createThread(). */
class Thread
{
  public:
    /** Thread scheduling states. */
    enum class State { Idle, Runnable, Running };

    /**
     * Queue @p work nanoseconds of CPU work; @p done fires when the
     * work completes (from scheduler context). If the thread was
     * idle it becomes runnable. Items execute FIFO.
     */
    void exec(sim::Tick work, sim::InlineFn done);

    /** Display name, resolved from the interned id. */
    const std::string &name() const { return sim::nameOf(name_id_); }

    /** Interned id of the thread's name. */
    sim::NameId nameId() const { return name_id_; }
    State state() const { return state_; }
    bool big() const { return big_; }

    /** @name Accounting (Section 7 decomposition)
     * @{ */
    sim::Tick cpuTime() const { return cpu_time_; }
    sim::Tick wakeWait() const { return wake_wait_; }
    sim::Tick preemptWait() const { return preempt_wait_; }
    sim::Tick cachePenalty() const { return cache_penalty_; }
    std::uint64_t wakeups() const { return wakeups_; }
    std::uint64_t preemptions() const { return preemptions_; }
    std::uint64_t migrations() const { return migrations_; }
    std::uint64_t dispatches() const { return dispatches_; }
    /** @} */

    /** Zero all accounting (used after warm-up). */
    void resetStats();

  private:
    friend class OsScheduler;

    Thread(sim::NameId name_id, bool big, OsScheduler &sched)
        : name_id_(name_id), big_(big), sched_(sched)
    {}

    struct WorkItem
    {
        sim::Tick remaining;
        sim::InlineFn done;
    };

    sim::NameId name_id_;
    bool big_;
    OsScheduler &sched_;

    State state_ = State::Idle;
    std::deque<WorkItem> queue_;
    int core_ = -1;       ///< core currently running on, -1 if none
    int last_core_ = -1;  ///< core of the previous dispatch
    sim::Tick runnable_since_ = sim::kTickInvalid;
    bool was_preempted_ = false;

    sim::Tick cpu_time_ = 0;
    sim::Tick wake_wait_ = 0;
    sim::Tick preempt_wait_ = 0;
    sim::Tick cache_penalty_ = 0;
    std::uint64_t wakeups_ = 0;
    std::uint64_t preemptions_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t dispatches_ = 0;
};

} // namespace jetsim::cpu

#endif // JETSIM_CPU_THREAD_HH
