/**
 * @file
 * Time-sharing OS scheduler over big.LITTLE CPU clusters.
 *
 * The model captures the CPU-side phenomena the paper identifies as
 * GPU-performance bottlenecks (Section 7):
 *  - when runnable threads exceed the heavy-load cluster's cores,
 *    execution becomes time-shared: wake-up and re-dispatch latency
 *    appear (B_l, T_l) and grow with the process count;
 *  - preemption at timeslice boundaries charges a context-switch
 *    cost;
 *  - dispatching a thread on a different core than last time inflates
 *    its remaining work by a cache-warmth penalty (the paper's L1/L2
 *    miss-rate growth inflating C_l).
 *
 * Inference (heavy) threads are created with big-cluster affinity,
 * mirroring the 3 heavy cores on Orin Nano / 2 on Nano.
 */

#ifndef JETSIM_CPU_SCHEDULER_HH
#define JETSIM_CPU_SCHEDULER_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cpu/thread.hh"
#include "sim/event_queue.hh"
#include "soc/board.hh"

namespace jetsim::cpu {

/** Round-robin time-sharing scheduler with per-cluster run queues. */
class OsScheduler
{
  public:
    explicit OsScheduler(soc::Board &board);

    OsScheduler(const OsScheduler &) = delete;
    OsScheduler &operator=(const OsScheduler &) = delete;

    /**
     * Create a thread with affinity to the big (heavy-load) cluster
     * when @p big, otherwise to the LITTLE cluster. The scheduler
     * owns the Thread; the pointer stays valid for its lifetime.
     * Interns @p name and delegates to the NameId overload.
     */
    Thread *createThread(const std::string &name, bool big = true);

    /** As above with an already-interned name — callers creating
     * threads in a loop intern once instead of per call. */
    Thread *createThread(sim::NameId name_id, bool big = true);

    /** Threads currently in state Runnable (queued, not running). */
    int runnableCount(bool big) const;

    /** Cores of the given kind currently executing a thread. */
    int busyCores(bool big) const;

    /** Total context switches charged. */
    std::uint64_t contextSwitches() const { return context_switches_; }

    /** Total timeslice preemptions. */
    std::uint64_t preemptions() const { return preemptions_; }

    /**
     * Ablation hook (A3): when false, big-affinity threads may run on
     * any core (no big.LITTLE partition).
     */
    void setPartitioned(bool on) { partitioned_ = on; }

    /** Access the owned threads (test support). */
    const std::vector<std::unique_ptr<Thread>> &threads() const
    {
        return threads_;
    }

    /** The queue this scheduler's events run on — with sharding, the
     * board's shard, not a global queue. SBO misses of callbacks the
     * scheduler holds are attributed here (see EventQueue::stats()). */
    sim::EventQueue &eq() { return eq_; }

  private:
    friend class Thread;

    struct Core
    {
        int id = 0;
        bool big = false;
        Thread *running = nullptr;
        Thread *last_thread = nullptr;
        /** When the running thread was dispatched (for the CFS-like
         * minimum-granularity rule). */
        sim::Tick dispatched_at = 0;
    };

    /** Called by Thread::exec when an idle thread gains work. */
    void makeRunnable(Thread *t);

    /** Place runnable threads onto idle cores. */
    void dispatchAll();

    /** Pick an idle core usable by @p t; nullptr if none. */
    Core *pickCore(Thread *t);

    /** Begin (or resume) executing @p t on @p core. */
    void dispatch(Core &core, Thread *t);

    /** Timeslice / work-item boundary on @p core. */
    void sliceEnd(Core &core, Thread *t, sim::Tick work_done);

    /** Thread finished its queue: idle it and free the core. */
    void idleThread(Core &core, Thread *t);

    void updateBoardActivity();

    std::deque<Thread *> &queueFor(bool big)
    {
        return big ? runq_big_ : runq_little_;
    }

    soc::Board &board_;
    sim::EventQueue &eq_;
    std::vector<Core> cores_;
    std::vector<std::unique_ptr<Thread>> threads_;
    std::deque<Thread *> runq_big_;
    std::deque<Thread *> runq_little_;
    bool partitioned_ = true;
    std::uint64_t context_switches_ = 0;
    std::uint64_t preemptions_ = 0;
};

} // namespace jetsim::cpu

#endif // JETSIM_CPU_SCHEDULER_HH
