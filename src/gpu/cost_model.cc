#include "gpu/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "check/check.hh"
#include "sim/logging.hh"

namespace jetsim::gpu {

namespace {

constexpr const char *kComponent = "gpu.cost";

/**
 * Longest single kernel body the model will produce (one simulated
 * hour). Finite-clamping before the Tick cast keeps a degenerate
 * input (zero rate or bandwidth would otherwise yield inf, and
 * casting a non-finite double to an integer is UB).
 */
constexpr double kMaxBodyNs = KernelCostModel::kMaxBodyNsCap;

} // namespace

KernelCostModel::KernelCostModel(const soc::DeviceSpec &spec)
    : spec_(spec)
{
}

double
KernelCostModel::baseRate(const KernelDesc &k) const
{
    const auto &g = spec_.gpu;
    if (k.tc && g.hasTensorCores()) {
        switch (k.prec) {
          case soc::Precision::Int8: return g.eff_tc_gflops_int8;
          case soc::Precision::Fp16: return g.eff_tc_gflops_fp16;
          case soc::Precision::Tf32: return g.eff_tc_gflops_tf32;
          case soc::Precision::Fp32: break; // fp32 never on TC
        }
    }
    switch (k.prec) {
      case soc::Precision::Fp16:
      case soc::Precision::Int8:
        // int8 on the CUDA-core path rides the fast-fp16 pipeline
        // (no dedicated int8 units outside tensor cores).
        if (g.eff_cuda_gflops_fp16 > 0)
            return g.eff_cuda_gflops_fp16;
        return g.eff_cuda_gflops_fp32;
      default:
        return g.eff_cuda_gflops_fp32;
    }
}

KernelTiming
KernelCostModel::timing(const KernelDesc &k, double freq_frac,
                        sim::Rng *rng) const
{
    // --- JetSan input validation: a degenerate descriptor or DVFS
    // state must not leak NaN/Inf (or UB) into the timeline.
    JETSIM_CHECK(std::isfinite(freq_frac) && freq_frac > 0.0 &&
                     freq_frac <= 1.0,
                 check::Severity::Error,
                 check::Invariant::Plausibility, kComponent,
                 check::kTimeUnknown,
                 "frequency fraction %g outside (0, 1] for kernel "
                 "'%s'",
                 freq_frac, k.name.c_str());
    if (!std::isfinite(freq_frac) || freq_frac <= 0.0)
        freq_frac = 1e-3;
    freq_frac = std::min(freq_frac, 1.0);

    JETSIM_CHECK(std::isfinite(k.flops) && k.flops >= 0.0 &&
                     std::isfinite(k.bytes) && k.bytes >= 0.0 &&
                     std::isfinite(k.efficiency_scale) &&
                     k.efficiency_scale > 0.0 && k.blocks >= 1,
                 check::Severity::Error,
                 check::Invariant::Plausibility, kComponent,
                 check::kTimeUnknown,
                 "degenerate kernel descriptor '%s' (flops=%g bytes=%g "
                 "eff=%g blocks=%d)",
                 k.name.c_str(), k.flops, k.bytes, k.efficiency_scale,
                 k.blocks);
    const double flops =
        std::isfinite(k.flops) ? std::max(0.0, k.flops) : 0.0;
    const double bytes =
        std::isfinite(k.bytes) ? std::max(0.0, k.bytes) : 0.0;
    const double eff_scale =
        std::isfinite(k.efficiency_scale) && k.efficiency_scale > 0.0
            ? k.efficiency_scale
            : 1.0;
    const int blocks = std::max(1, k.blocks);

    const auto &g = spec_.gpu;

    const double base = baseRate(k);
    JETSIM_CHECK(base > 0.0, check::Severity::Error,
                 check::Invariant::Plausibility, kComponent,
                 check::kTimeUnknown,
                 "device %s has no execution path for kernel '%s' "
                 "(base rate 0)",
                 spec_.name.c_str(), k.name.c_str());

    // Shape-dependent sustained rate, never above ~95 % of peak.
    const bool on_tc = k.tc && g.hasTensorCores() &&
                       k.prec != soc::Precision::Fp32;
    const double peak = on_tc ? g.peakTcGflops(k.prec)
                              : g.peakCudaGflopsFp32() *
                                (k.prec == soc::Precision::Fp16 &&
                                 g.eff_cuda_gflops_fp16 > 0 ? 2.0 : 1.0);
    const double rate = std::max(
        std::min(std::max(base, 1e-9) * eff_scale, 0.95 * peak) *
            freq_frac,
        1e-9);

    const double compute_ns = flops / rate;
    const double eff_bw =
        std::max(g.mem_bw_gbps * g.mem_efficiency, 1e-9);
    const double mem_ns = bytes / eff_bw;

    double body_ns = std::max(compute_ns, mem_ns);
    // Small kernels hit the device's latency floor (launch tail,
    // DRAM latency, layer dependencies) — the overhead larger batch
    // sizes amortise.
    body_ns = std::max(
        body_ns, static_cast<double>(g.min_kernel_latency) / freq_frac);
    if (rng)
        body_ns *= std::clamp(rng->lognormal(1.0, 0.05), kJitterLo,
                              kJitterHi);
    body_ns = std::min(body_ns, kMaxBodyNs);

    KernelTiming t;
    t.duration = kKernelOverhead + static_cast<sim::Tick>(body_ns);

    const double dur_ns = static_cast<double>(t.duration);
    t.compute_frac = std::min(1.0, compute_ns / dur_ns);
    t.bw_util = std::min(1.0, (bytes / dur_ns) / g.mem_bw_gbps);

    // SM-active: average occupied-SM fraction of the wave schedule.
    const int sms = std::max(1, g.num_sms);
    const int waves = (blocks + sms - 1) / sms;
    double occupancy = static_cast<double>(blocks) /
                       static_cast<double>(waves * sms);
    if (rng)
        occupancy *= rng->uniform(0.96, 1.0);
    t.sm_active = std::clamp(occupancy, 0.05, 1.0);

    // Tensor-core utilisation: TC-busy over elapsed. The efficiency
    // fold means memory-bound kernels show low TC utilisation even at
    // high throughput (the paper's int8 inversion).
    if (on_tc) {
        const double tc_busy_ns =
            k.tc_stall_factor * flops /
            std::max(g.peakTcGflops(k.prec) * freq_frac, 1e-9);
        t.tc_util = std::min(0.99, tc_busy_ns / dur_ns);
    }

    // Issue-slot utilisation: dense scalar issue while compute-bound,
    // sparse while waiting on memory.
    t.issue_slot = std::clamp(
        k.issue_intensity * t.compute_frac * t.sm_active +
            0.08 * (1.0 - t.compute_frac),
        0.01, 0.85);

    // --- JetSan output validation: nothing non-finite escapes.
    JETSIM_CHECK(t.duration > 0 && std::isfinite(t.sm_active) &&
                     std::isfinite(t.issue_slot) &&
                     std::isfinite(t.tc_util) &&
                     std::isfinite(t.bw_util) &&
                     std::isfinite(t.compute_frac),
                 check::Severity::Error,
                 check::Invariant::Plausibility, kComponent,
                 check::kTimeUnknown,
                 "non-finite timing escaped the cost model for "
                 "kernel '%s'",
                 k.name.c_str());

    return t;
}

} // namespace jetsim::gpu
