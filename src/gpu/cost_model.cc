#include "gpu/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace jetsim::gpu {

KernelCostModel::KernelCostModel(const soc::DeviceSpec &spec)
    : spec_(spec)
{
}

double
KernelCostModel::baseRate(const KernelDesc &k) const
{
    const auto &g = spec_.gpu;
    if (k.tc && g.hasTensorCores()) {
        switch (k.prec) {
          case soc::Precision::Int8: return g.eff_tc_gflops_int8;
          case soc::Precision::Fp16: return g.eff_tc_gflops_fp16;
          case soc::Precision::Tf32: return g.eff_tc_gflops_tf32;
          case soc::Precision::Fp32: break; // fp32 never on TC
        }
    }
    switch (k.prec) {
      case soc::Precision::Fp16:
      case soc::Precision::Int8:
        // int8 on the CUDA-core path rides the fast-fp16 pipeline
        // (no dedicated int8 units outside tensor cores).
        if (g.eff_cuda_gflops_fp16 > 0)
            return g.eff_cuda_gflops_fp16;
        return g.eff_cuda_gflops_fp32;
      default:
        return g.eff_cuda_gflops_fp32;
    }
}

KernelTiming
KernelCostModel::timing(const KernelDesc &k, double freq_frac,
                        sim::Rng *rng) const
{
    JETSIM_ASSERT(freq_frac > 0.0 && freq_frac <= 1.0);
    const auto &g = spec_.gpu;

    const double base = baseRate(k);
    JETSIM_ASSERT(base > 0.0);

    // Shape-dependent sustained rate, never above ~95 % of peak.
    const bool on_tc = k.tc && g.hasTensorCores() &&
                       k.prec != soc::Precision::Fp32;
    const double peak = on_tc ? g.peakTcGflops(k.prec)
                              : g.peakCudaGflopsFp32() *
                                (k.prec == soc::Precision::Fp16 &&
                                 g.eff_cuda_gflops_fp16 > 0 ? 2.0 : 1.0);
    const double rate =
        std::min(base * k.efficiency_scale, 0.95 * peak) * freq_frac;

    const double compute_ns = k.flops / rate;
    const double eff_bw = g.mem_bw_gbps * g.mem_efficiency;
    const double mem_ns = k.bytes / eff_bw;

    double body_ns = std::max(compute_ns, mem_ns);
    // Small kernels hit the device's latency floor (launch tail,
    // DRAM latency, layer dependencies) — the overhead larger batch
    // sizes amortise.
    body_ns = std::max(
        body_ns, static_cast<double>(g.min_kernel_latency) / freq_frac);
    if (rng)
        body_ns *= std::max(0.5, rng->lognormal(1.0, 0.05));

    KernelTiming t;
    t.duration = kKernelOverhead + static_cast<sim::Tick>(body_ns);

    const double dur_ns = static_cast<double>(t.duration);
    t.compute_frac = compute_ns / dur_ns;
    t.bw_util = std::min(1.0, (k.bytes / dur_ns) / g.mem_bw_gbps);

    // SM-active: average occupied-SM fraction of the wave schedule.
    const int sms = std::max(1, g.num_sms);
    const int waves = (k.blocks + sms - 1) / sms;
    double occupancy = static_cast<double>(k.blocks) /
                       static_cast<double>(waves * sms);
    if (rng)
        occupancy *= rng->uniform(0.96, 1.0);
    t.sm_active = std::clamp(occupancy, 0.05, 1.0);

    // Tensor-core utilisation: TC-busy over elapsed. The efficiency
    // fold means memory-bound kernels show low TC utilisation even at
    // high throughput (the paper's int8 inversion).
    if (on_tc) {
        const double tc_busy_ns = k.tc_stall_factor * k.flops /
                                  (g.peakTcGflops(k.prec) * freq_frac);
        t.tc_util = std::min(0.99, tc_busy_ns / dur_ns);
    }

    // Issue-slot utilisation: dense scalar issue while compute-bound,
    // sparse while waiting on memory.
    t.issue_slot = std::clamp(
        k.issue_intensity * t.compute_frac * t.sm_active +
            0.08 * (1.0 - t.compute_frac),
        0.01, 0.85);

    return t;
}

} // namespace jetsim::gpu
