/**
 * @file
 * The GPU execution engine.
 *
 * Jetson integrated GPUs do not support MPS (paper S2): concurrent
 * processes share the GPU by *time multiplexing*. The engine models
 * one hardware queue: each process's stream maps onto a channel, and
 * the scheduler runs one channel's kernels at a time, rotating at a
 * quantum boundary or when the channel drains, paying a channel-
 * switch penalty. During a switch the SMs hold resident state but
 * issue nothing — which is exactly how concurrency pushes SM-active
 * up while issue-slot and TC utilisation sag (paper Fig 10).
 *
 * A hypothetical *spatial* sharing mode (idealised MPS, ablation A5)
 * runs all channels concurrently under processor sharing instead.
 */

#ifndef JETSIM_GPU_ENGINE_HH
#define JETSIM_GPU_ENGINE_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "gpu/cost_model.hh"
#include "gpu/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "soc/board.hh"

namespace jetsim::gpu {

/** Single-device GPU engine with per-process channels. */
class GpuEngine
{
  public:
    /** Completion callbacks ride the event queue's SBO type: a submit
     * never heap-allocates for captures <= InlineFn::kInlineSize. */
    using Callback = sim::InlineFn;
    using TraceHook = std::function<void(const KernelRecord &)>;

    explicit GpuEngine(soc::Board &board);

    GpuEngine(const GpuEngine &) = delete;
    GpuEngine &operator=(const GpuEngine &) = delete;

    /** Create a channel (one per process stream). */
    int createChannel(const std::string &name);

    /**
     * Retire a channel when its owning stream is destroyed. Queued
     * (not yet started) kernels are dropped and the in-flight one,
     * if any, completes without invoking its callback — submitting
     * to a retired channel afterwards is a JetSan stream-hazard
     * violation (the CUDA use-after-destroy analogue).
     */
    void destroyChannel(int channel);

    /** True while the channel's owning stream is alive. */
    bool channelAlive(int channel) const;

    /**
     * Enqueue @p k on @p channel; @p done fires at completion. The
     * KernelDesc must outlive the execution (engines own theirs).
     */
    void submit(int channel, const KernelDesc *k, Callback done);

    /** Kernels queued or executing on @p channel. */
    std::size_t channelDepth(int channel) const;

    /**
     * Highest channelDepth() ever observed on @p channel. The static
     * queue-depth bound in src/absint ((1 + pre_enqueue) x kernels
     * per EC for trtexec-style processes) is checked against this.
     */
    std::size_t peakChannelDepth(int channel) const;

    /** Switch between time-multiplexed (default) and spatial mode. */
    void setSpatialSharing(bool on);

    bool spatialSharing() const { return spatial_; }

    /** Install a per-kernel trace hook (profiler); may be empty. */
    void setTraceHook(TraceHook hook) { trace_ = std::move(hook); }

    /**
     * Extra GPU residency added to every kernel (profiler intrusion:
     * Nsight-style instrumentation serialises per-kernel bookkeeping;
     * the paper reports ~50 % throughput loss in phase 2).
     */
    void setExtraKernelOverhead(sim::Tick t) { extra_overhead_ = t; }

    sim::Tick extraKernelOverhead() const { return extra_overhead_; }

    /** Expose the cost model for tests and the builder. */
    const KernelCostModel &costModel() const { return cost_; }

    /** The queue this engine's events run on — with sharding, the
     * board's shard. Stream/event waiters attribute their SBO misses
     * here (see EventQueue::stats()). */
    sim::EventQueue &eq() { return eq_; }

    /** @name Statistics
     * @{ */
    std::uint64_t kernelsExecuted() const { return kernels_executed_; }
    std::uint64_t channelSwitches() const { return channel_switches_; }
    /** Submit-to-start wait per kernel (ns samples). */
    const sim::Accumulator &dispatchWait() const { return dispatch_wait_; }
    /** @} */

  private:
    /** One queued kernel: descriptor, completion, submit tick —
     * a single deque node instead of two parallel deques. */
    struct Queued
    {
        const KernelDesc *desc;
        Callback done;
        sim::Tick submit;
    };

    struct Channel
    {
        std::string name;
        std::deque<Queued> queue;
        bool executing = false; // spatial mode only
        bool alive = true;      // owning stream exists
        std::size_t peak_depth = 0;
    };

    /** One in-flight kernel under spatial sharing. */
    struct Exec
    {
        int channel;
        const KernelDesc *desc;
        Callback done;
        sim::Tick submit;
        sim::Tick start;
        double remaining_ns; // at exclusive service rate
        KernelTiming timing;
    };

    // --- time-multiplexed path
    void scheduleNext();
    void finishMux();

    // --- spatial path
    void spatialStart(int channel);
    void spatialAdvance();
    void spatialReschedule();
    void spatialPublish();

    void publishIdleIfQuiet();

    soc::Board &board_;
    sim::EventQueue &eq_;
    KernelCostModel cost_;
    sim::Rng rng_;
    TraceHook trace_;

    // deque: grows without relocation, which a vector would do via
    // Channel's copy constructor (Queued is move-only).
    std::deque<Channel> channels_;
    bool spatial_ = false;
    sim::Tick extra_overhead_ = 0;

    // time-mux state. Exactly one kernel is in flight (busy_), so its
    // record and completion live here instead of inside the end
    // event's capture — the event captures only `this` and stays on
    // the queue's 48-byte inline path.
    bool busy_ = false;
    int active_channel_ = -1;
    sim::Tick quantum_start_ = 0;
    KernelRecord inflight_rec_;
    Callback inflight_done_;

    // spatial state
    std::vector<Exec> execs_;
    std::vector<Exec> finished_scratch_; ///< reused across fires
    sim::Tick last_advance_ = 0;
    sim::EventQueue::Handle spatial_event_;

    std::uint64_t kernels_executed_ = 0;
    std::uint64_t channel_switches_ = 0;
    sim::Accumulator dispatch_wait_;
};

} // namespace jetsim::gpu

#endif // JETSIM_GPU_ENGINE_HH
