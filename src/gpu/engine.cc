#include "gpu/engine.hh"

#include <algorithm>
#include <cmath>

#include "check/check.hh"
#include "core/hot_annotations.hh"
#include "sim/logging.hh"

namespace jetsim::gpu {

namespace {
constexpr const char *kComponent = "gpu.engine";
}

GpuEngine::GpuEngine(soc::Board &board)
    : board_(board), eq_(board.eq()), cost_(board.spec()),
      rng_(board.rng().fork("gpu-engine"))
{
}

int
GpuEngine::createChannel(const std::string &name)
{
    channels_.push_back(Channel{name, {}, false, true, 0});
    return static_cast<int>(channels_.size()) - 1;
}

void
GpuEngine::destroyChannel(int channel)
{
    JETSIM_ASSERT(channel >= 0 &&
                  channel < static_cast<int>(channels_.size()));
    auto &ch = channels_[channel];
    ch.alive = false;
    // Drop not-yet-started work: their callbacks point into the
    // destroyed stream. The in-flight kernel (if any) is skipped at
    // completion via the alive flag.
    ch.queue.clear();
}

bool
GpuEngine::channelAlive(int channel) const
{
    return channel >= 0 &&
           channel < static_cast<int>(channels_.size()) &&
           channels_[channel].alive;
}

void
GpuEngine::submit(int channel, const KernelDesc *k, Callback done)
{
    JETSIM_ASSERT(channel >= 0 &&
                  channel < static_cast<int>(channels_.size()));
    JETSIM_ASSERT(k != nullptr);
    auto &ch = channels_[channel];
    if (!ch.alive) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::StreamHazard, kComponent,
                         eq_.now(),
                         "kernel '%s' submitted on destroyed stream "
                         "channel %d (%s)",
                         k->name.c_str(), channel, ch.name.c_str());
        return; // drop: the owning stream no longer exists
    }
    // Queued completions live in the channel, outside the event
    // queue's own SBO accounting; attribute heap fallbacks here.
    if (done.onHeap())
        JETSIM_COLD_OK("SBO miss: completion capture spilled past 48 bytes; counted, asserted zero by micro_sim --assert-sbo")
        eq_.noteSboMiss();
    JETSIM_COLD_OK("amortized: per-channel deque, steady-state depth bounded by inflight kernels")
    ch.queue.push_back(Queued{k, std::move(done), eq_.now()});
    ch.peak_depth = std::max(ch.peak_depth, channelDepth(channel));

    if (spatial_) {
        if (!ch.executing)
            spatialStart(channel);
    } else {
        scheduleNext();
    }
}

std::size_t
GpuEngine::channelDepth(int channel) const
{
    const auto &ch = channels_[channel];
    std::size_t depth = ch.queue.size();
    if (spatial_) {
        if (ch.executing)
            ++depth;
    } else if (busy_ && active_channel_ == channel) {
        ++depth;
    }
    return depth;
}

std::size_t
GpuEngine::peakChannelDepth(int channel) const
{
    JETSIM_ASSERT(channel >= 0 &&
                  channel < static_cast<int>(channels_.size()));
    return channels_[channel].peak_depth;
}

void
GpuEngine::setSpatialSharing(bool on)
{
    JETSIM_ASSERT(!busy_ && execs_.empty());
    spatial_ = on;
}

void
GpuEngine::publishIdleIfQuiet()
{
    if (!busy_ && execs_.empty())
        board_.setGpuState(false, 0, 0, 0, 0);
}

// ------------------------------------------------- time-multiplexed path

JETSIM_HOT void
GpuEngine::scheduleNext()
{
    if (busy_)
        return;

    const auto &rt = board_.spec().runtime;
    const int n = static_cast<int>(channels_.size());
    int pick = -1;

    if (active_channel_ >= 0 &&
        !channels_[active_channel_].queue.empty() &&
        eq_.now() - quantum_start_ < rt.gpu_quantum) {
        pick = active_channel_;
    } else if (sim::Chooser *chooser = eq_.chooser()) {
        // Controlled scheduling: at a quantum boundary any runnable
        // channel is a legal next occupant — real driver arbitration
        // gives no round-robin guarantee across processes. Offer the
        // runnable set with the rotation default first (alternative 0
        // must reproduce uncontrolled scheduling exactly).
        int cands[sim::kMaxChoiceAlts];
        std::int64_t actors[sim::kMaxChoiceAlts];
        int nc = 0;
        for (int i = 1; i <= n && nc < sim::kMaxChoiceAlts; ++i) {
            const int c = (active_channel_ + i + n) % n;
            if (!channels_[c].queue.empty()) {
                cands[nc] = c;
                actors[nc] = c;
                ++nc;
            }
        }
        if (nc == 1) {
            pick = cands[0];
        } else if (nc > 1) {
            const int sel =
                chooser->choose(sim::ChoiceKind::GpuChannel, actors, nc);
            JETSIM_ASSERT(sel >= 0 && sel < nc);
            pick = cands[sel];
        }
    } else {
        for (int i = 1; i <= n; ++i) {
            const int c = (active_channel_ + i + n) % n;
            if (!channels_[c].queue.empty()) {
                pick = c;
                break;
            }
        }
    }
    if (pick < 0) {
        publishIdleIfQuiet();
        return;
    }

    sim::Tick pen = 0;
    if (pick != active_channel_) {
        if (active_channel_ >= 0) {
            pen = rt.channel_switch;
            ++channel_switches_;
        }
        active_channel_ = pick;
        quantum_start_ = eq_.now() + pen;
    } else if (eq_.now() - quantum_start_ >= rt.gpu_quantum) {
        // Sole runnable channel keeps the GPU; restart its quantum.
        quantum_start_ = eq_.now();
    }

    auto &ch = channels_[pick];
    const KernelDesc *k = ch.queue.front().desc;
    Callback done = std::move(ch.queue.front().done);
    const sim::Tick submit_tick = ch.queue.front().submit;
    ch.queue.pop_front();

    const KernelTiming timing =
        cost_.timing(*k, board_.gpuFreqFrac(), &rng_);
    // Profiler intrusion surfaces as serialisation *between* kernels
    // (driver-side bookkeeping): the GPU idles for the gap, so the
    // in-kernel utilisation counters stay untouched while throughput
    // drops — matching how Nsight perturbs real runs.
    const sim::Tick start = eq_.now() + pen + extra_overhead_;
    const sim::Tick end = start + timing.duration;

    busy_ = true;
    dispatch_wait_.sample(static_cast<double>(start - submit_tick));

    // The in-flight record and completion live on the engine, not in
    // the event captures: both events below capture only `this`
    // (valid because busy_ serialises the time-mux path) and stay on
    // the event queue's inline (no-allocation) path.
    inflight_rec_.channel = pick;
    inflight_rec_.desc = k;
    inflight_rec_.submit = submit_tick;
    inflight_rec_.start = start;
    inflight_rec_.end = end;
    inflight_rec_.timing = timing;
    inflight_done_ = std::move(done);

    if (start > eq_.now()) {
        // Channel switches keep warps resident (SM-active, nothing
        // issued); pure instrumentation gaps leave the GPU idle so
        // they never pollute the sampled counters.
        if (pen > 0)
            board_.setGpuState(true, 1.0, 0.0, 0.0, 0.0);
        else
            board_.setGpuState(false, 0, 0, 0, 0);
        eq_.schedule(start, [this] {
            const KernelTiming &t = inflight_rec_.timing;
            board_.setGpuState(true, t.sm_active, t.issue_slot,
                               t.tc_util, t.bw_util);
        });
    } else {
        board_.setGpuState(true, timing.sm_active, timing.issue_slot,
                           timing.tc_util, timing.bw_util);
    }

    eq_.schedule(end, [this] { finishMux(); });
}

void
GpuEngine::finishMux()
{
    // Exactly one kernel may occupy the time-multiplexed GPU; a
    // second completion without a matching start means occupancy
    // overlapped somewhere.
    JETSIM_CHECK(busy_, check::Severity::Error,
                 check::Invariant::StreamHazard, kComponent, eq_.now(),
                 "kernel completion on channel %d without exclusive "
                 "occupancy (overlap or double finish)",
                 inflight_rec_.channel);
    ++kernels_executed_;
    busy_ = false;
    // Move the in-flight state out first: the completion may submit,
    // which starts the next kernel and overwrites the members.
    const KernelRecord rec = inflight_rec_;
    Callback done = std::move(inflight_done_);
    inflight_done_ = nullptr;
    board_.setGpuState(false, 0, 0, 0, 0);
    if (channels_[rec.channel].alive) {
        if (trace_)
            trace_(rec);
        if (done)
            done(); // may submit; submit() calls scheduleNext itself
    }
    scheduleNext();
}

// ------------------------------------------------------ spatial (MPS) path

void
GpuEngine::spatialStart(int channel)
{
    auto &ch = channels_[channel];
    JETSIM_ASSERT(!ch.executing && !ch.queue.empty());

    spatialAdvance();

    Exec e;
    e.channel = channel;
    e.desc = ch.queue.front().desc;
    e.done = std::move(ch.queue.front().done);
    e.submit = ch.queue.front().submit;
    ch.queue.pop_front();

    e.start = eq_.now();
    e.timing = cost_.timing(*e.desc, board_.gpuFreqFrac(), &rng_);
    e.timing.duration += extra_overhead_;
    e.remaining_ns = static_cast<double>(e.timing.duration);
    ch.executing = true;
    dispatch_wait_.sample(static_cast<double>(eq_.now() - e.submit));

    execs_.push_back(std::move(e));
    spatialReschedule();
    spatialPublish();
}

void
GpuEngine::spatialAdvance()
{
    const sim::Tick now = eq_.now();
    const double elapsed = static_cast<double>(now - last_advance_);
    if (!execs_.empty() && elapsed > 0) {
        const double share = 1.0 / static_cast<double>(execs_.size());
        for (auto &e : execs_)
            e.remaining_ns = std::max(0.0, e.remaining_ns -
                                               elapsed * share);
    }
    last_advance_ = now;
}

void
GpuEngine::spatialReschedule()
{
    spatial_event_.cancel();
    if (execs_.empty()) {
        publishIdleIfQuiet();
        return;
    }
    double min_rem = execs_.front().remaining_ns;
    for (const auto &e : execs_)
        min_rem = std::min(min_rem, e.remaining_ns);
    const double n = static_cast<double>(execs_.size());
    const auto delay =
        static_cast<sim::Tick>(std::ceil(min_rem * n)) + 1;
    spatial_event_ = eq_.scheduleIn(delay, [this] {
        spatialAdvance();

        // Collect everything that finished at this instant into the
        // reused member scratch (no per-fire allocation).
        auto &finished = finished_scratch_;
        finished.clear();
        for (auto it = execs_.begin(); it != execs_.end();) {
            if (it->remaining_ns <= 1.0) {
                finished.push_back(std::move(*it));
                it = execs_.erase(it);
            } else {
                ++it;
            }
        }
        for (auto &e : finished)
            channels_[e.channel].executing = false;

        for (auto &e : finished) {
            ++kernels_executed_;
            if (!channels_[e.channel].alive)
                continue; // owning stream destroyed mid-flight
            KernelRecord rec;
            rec.channel = e.channel;
            rec.desc = e.desc;
            rec.submit = e.submit;
            rec.start = e.start;
            rec.end = eq_.now();
            rec.timing = e.timing;
            if (trace_)
                trace_(rec);
            if (e.done)
                e.done();
        }

        // Channels with queued work (from callbacks or earlier
        // submissions) start their next kernel.
        for (std::size_t c = 0; c < channels_.size(); ++c)
            if (!channels_[c].executing && !channels_[c].queue.empty())
                spatialStart(static_cast<int>(c));

        spatialReschedule();
        spatialPublish();
    });
}

void
GpuEngine::spatialPublish()
{
    if (execs_.empty()) {
        publishIdleIfQuiet();
        return;
    }
    double sm = 0, issue = 0, tc = 0, bw = 0;
    for (const auto &e : execs_) {
        sm += e.timing.sm_active;
        issue += e.timing.issue_slot;
        tc += e.timing.tc_util;
        bw += e.timing.bw_util;
    }
    board_.setGpuState(true, std::min(1.0, sm), std::min(0.85, issue),
                       std::min(0.99, tc), std::min(1.0, bw));
}

} // namespace jetsim::gpu
