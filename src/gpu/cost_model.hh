/**
 * @file
 * Roofline-style kernel cost model with derived hardware counters.
 *
 * Duration = fixed per-kernel overhead + max(compute, memory) time,
 * where compute time scales with the DVFS frequency and the kernel's
 * shape-dependent efficiency, and memory time with sustained DRAM
 * bandwidth. The same quantities yield the counters the paper reads
 * from Nsight Systems: SM-active (grid occupancy over SMs), issue-
 * slot utilisation, tensor-core utilisation (TC-busy cycles over
 * elapsed), and bandwidth utilisation.
 */

#ifndef JETSIM_GPU_COST_MODEL_HH
#define JETSIM_GPU_COST_MODEL_HH

#include "gpu/kernel.hh"
#include "sim/rng.hh"
#include "soc/device_spec.hh"

namespace jetsim::gpu {

/** Pure-function cost model for one device. */
class KernelCostModel
{
  public:
    explicit KernelCostModel(const soc::DeviceSpec &spec);

    /**
     * Timing and counters for @p k at the given DVFS point.
     * @param freq_frac current GPU frequency / max frequency
     * @param rng source for the small execution-time jitter; pass
     *        nullptr for the deterministic expectation (tests).
     */
    KernelTiming timing(const KernelDesc &k, double freq_frac,
                        sim::Rng *rng = nullptr) const;

    /**
     * Sustained GFLOPS this kernel's path achieves (before the
     * per-kernel efficiency scale). 0 means the path is absent and
     * the builder should not have produced this kernel.
     */
    double baseRate(const KernelDesc &k) const;

    /** Fixed per-kernel start/teardown overhead. */
    static constexpr sim::Tick kKernelOverhead = sim::usec(3);

    /**
     * Execution-time jitter envelope: the lognormal(1.0, 0.05) body
     * factor is clamped into [kJitterLo, kJitterHi]. The upper clamp
     * binds with probability < 1e-15 per draw (8 sigma at cv 0.05),
     * so observed timing is unchanged — but every kernel body is now
     * *provably* inside [kJitterLo, kJitterHi] x the deterministic
     * roofline body, which is what the src/absint latency intervals
     * rest on.
     */
    static constexpr double kJitterLo = 0.5;
    static constexpr double kJitterHi = 1.5;

    /** Hard cap on one kernel body in ns (see cost_model.cc). */
    static constexpr double kMaxBodyNsCap = 3.6e12;

  private:
    soc::DeviceSpec spec_;
};

} // namespace jetsim::gpu

#endif // JETSIM_GPU_COST_MODEL_HH
