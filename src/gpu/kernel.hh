/**
 * @file
 * Static and dynamic descriptions of GPU kernels.
 *
 * A KernelDesc is produced once by the TensorRT-like builder for each
 * fused operation of an engine; the GPU cost model turns it into a
 * duration and a set of utilisation counters at execution time.
 */

#ifndef JETSIM_GPU_KERNEL_HH
#define JETSIM_GPU_KERNEL_HH

#include <string>

#include "sim/name_registry.hh"
#include "sim/types.hh"
#include "soc/precision.hh"

namespace jetsim::gpu {

/**
 * One compiled GPU kernel (a fused engine operation) with everything
 * the cost model needs. Values are totals for one invocation at the
 * engine's compiled batch size.
 */
struct KernelDesc
{
    std::string name;           ///< e.g. "layer1.0.conv1+bn+relu"

    /**
     * Interned id of @ref name, assigned when the builder (or plan
     * deserialisation) creates the descriptor. Profiling hooks key
     * their per-kernel accumulators on this id — a dense vector index
     * — instead of hashing/comparing the string on every record.
     * Hand-built descriptors may leave it invalid; consumers intern
     * lazily on first sight.
     */
    sim::NameId name_id = sim::kInvalidNameId;

    /** Numeric operations (FLOPs, or 8-bit MAC-equivalents for int8). */
    double flops = 0.0;

    /** DRAM traffic in bytes (weights + activations in and out). */
    double bytes = 0.0;

    /** Compute precision assigned by the builder (post-fallback). */
    soc::Precision prec = soc::Precision::Fp32;

    /** True when the kernel maps onto the tensor-core path. */
    bool tc = false;

    /** Thread blocks in the launch grid (occupancy proxy). */
    int blocks = 1;

    /**
     * Shape-dependent efficiency multiplier applied to the device's
     * base sustained rate. Large regular GEMM-like kernels approach
     * peak (values up to ~3 over a base calibrated near 30 % of
     * peak); small or irregular kernels fall below 1.
     */
    double efficiency_scale = 1.0;

    /**
     * Scalar-instruction issue density, used to derive the SM issue-
     * slot utilisation counter. Tensor-core kernels issue sparsely
     * (~0.3-0.4); plain CUDA math kernels issue densely (~0.7).
     */
    double issue_intensity = 0.4;

    /**
     * Multiplier on tensor-core *residency* relative to the ideal
     * flops/peak time: >1 means the TCs sit occupied-but-stalled
     * (dilated convolutions) — how FCN_ResNet50 shows near-100 % TC
     * utilisation without matching throughput.
     */
    double tc_stall_factor = 1.0;
};

/** Timing and counters for one kernel execution. */
struct KernelTiming
{
    sim::Tick duration = 0;    ///< total GPU residency
    double sm_active = 0.0;    ///< SM-active fraction during the kernel
    double issue_slot = 0.0;   ///< issue-slot utilisation
    double tc_util = 0.0;      ///< tensor-core utilisation
    double bw_util = 0.0;      ///< DRAM bandwidth utilisation
    double compute_frac = 0.0; ///< fraction of duration compute-bound
};

/** Trace record handed to the profiling hook per executed kernel. */
struct KernelRecord
{
    int channel = -1;
    const KernelDesc *desc = nullptr;
    sim::Tick submit = 0;   ///< when the kernel entered the channel
    sim::Tick start = 0;    ///< execution start (after any switch)
    sim::Tick end = 0;      ///< completion
    KernelTiming timing;
};

} // namespace jetsim::gpu

#endif // JETSIM_GPU_KERNEL_HH
