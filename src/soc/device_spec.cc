#include "soc/device_spec.hh"

#include "sim/logging.hh"

namespace jetsim::soc {

double
GpuSpec::peakCudaGflopsFp32() const
{
    // 2 FLOPs (FMA) per core per cycle.
    return totalCudaCores() * 2.0 * max_freq_ghz;
}

double
GpuSpec::peakTcGflops(Precision p) const
{
    if (!hasTensorCores())
        return 0.0;
    // Ampere tensor core: 256 fp16 MACs (512 FLOPs) per cycle; tf32
    // at half rate; int8 at double rate.
    const double fp16 = totalTensorCores() * 512.0 * max_freq_ghz;
    switch (p) {
      case Precision::Int8: return 2.0 * fp16;
      case Precision::Fp16: return fp16;
      case Precision::Tf32: return 0.5 * fp16;
      case Precision::Fp32: return 0.0;
    }
    return 0.0;
}

double
DeviceSpec::precisionCoverage(Precision p) const
{
    switch (p) {
      case Precision::Int8: return coverage_int8;
      case Precision::Fp16: return coverage_fp16;
      case Precision::Tf32: return coverage_tf32;
      case Precision::Fp32: return coverage_fp32;
    }
    return 1.0;
}

int
DeviceSpec::bigCores() const
{
    int n = 0;
    for (const auto &c : clusters)
        if (c.big)
            n += c.cores;
    return n;
}

int
DeviceSpec::littleCores() const
{
    int n = 0;
    for (const auto &c : clusters)
        if (!c.big)
            n += c.cores;
    return n;
}

DeviceSpec
orinNano()
{
    DeviceSpec d;
    d.name = "orin-nano";

    // 6x Cortex-A78AE @ 1.5 GHz. The paper (S7) reports 3 cores
    // dedicated to heavy loads, so we model a 3+3 big.LITTLE split.
    d.clusters = {
        {"A78AE-big", 3, 1.51, true},
        {"A78AE-little", 3, 1.51, false},
    };

    d.gpu.arch = "Ampere";
    d.gpu.num_sms = 8;              // 1024 CUDA cores
    d.gpu.cuda_cores_per_sm = 128;
    d.gpu.tensor_cores_per_sm = 4;  // 32 tensor cores
    d.gpu.max_freq_ghz = 0.625;
    d.gpu.min_freq_ghz = 0.306;
    d.gpu.dvfs_levels = 8;
    d.gpu.mem_bw_gbps = 68.0;       // LPDDR5
    d.gpu.mem_efficiency = 0.70;

    // Sustained rates = peak x observed efficiency (~30 % TC
    // utilisation per the paper's Fig 5/10).
    d.gpu.eff_tc_gflops_int8 = 6100.0;
    d.gpu.eff_tc_gflops_fp16 = 3070.0;
    d.gpu.eff_tc_gflops_tf32 = 1100.0;
    d.gpu.eff_cuda_gflops_fp32 = 390.0;
    d.gpu.eff_cuda_gflops_fp16 = 0.0; // fp16 routed to TC on Ampere
    d.gpu.min_kernel_latency = sim::usec(25);

    d.memory.total = 8 * sim::kGiB;
    d.memory.os_reserved = static_cast<sim::Bytes>(2.2 * sim::kGiB);
    d.memory.process_runtime_overhead = 100 * sim::kMiB;

    // 7 W power mode (the paper's curves stay under 7 W).
    d.power.idle_w = 2.30;
    d.power.cap_w = 7.0;
    d.power.cpu_core_w = 0.55;
    d.power.cpu_little_w = 0.25;
    d.power.gpu_base_w = 0.45;
    d.power.sm_w = 1.15;
    d.power.tc_w = 2.05;
    d.power.dram_w = 1.35;

    // Full TensorRT precision support on Ampere.
    d.coverage_int8 = 1.0;
    d.coverage_fp16 = 1.0;
    d.coverage_tf32 = 1.0;

    return d;
}

DeviceSpec
orinNano15W()
{
    DeviceSpec d = orinNano();
    d.name = "orin-nano-15w";

    // MAXN-style mode: GPU up to 1.02 GHz; sustained rates scale
    // with the clock (memory bandwidth does not change).
    const double scale = 1.02 / d.gpu.max_freq_ghz;
    d.gpu.max_freq_ghz = 1.02;
    d.gpu.min_freq_ghz = 0.306;
    d.gpu.eff_tc_gflops_int8 *= scale;
    d.gpu.eff_tc_gflops_fp16 *= scale;
    d.gpu.eff_tc_gflops_tf32 *= scale;
    d.gpu.eff_cuda_gflops_fp32 *= scale;

    d.power.cap_w = 15.0;
    // Higher clocks and voltage raise the dynamic coefficients.
    d.power.sm_w *= 1.8;
    d.power.tc_w *= 1.8;
    d.power.dram_w *= 1.3;
    return d;
}

DeviceSpec
jetsonNano()
{
    DeviceSpec d;
    d.name = "nano";

    // 4x Cortex-A57 @ 1.43 GHz; 2 cores carry the heavy load.
    d.clusters = {
        {"A57-big", 2, 1.43, true},
        {"A57-little", 2, 1.43, false},
    };

    d.gpu.arch = "Maxwell";
    d.gpu.num_sms = 1;              // single 128-core SM (GM20B)
    d.gpu.cuda_cores_per_sm = 128;
    d.gpu.tensor_cores_per_sm = 0;  // no tensor cores
    d.gpu.max_freq_ghz = 0.921;
    d.gpu.min_freq_ghz = 0.230;
    d.gpu.dvfs_levels = 6;
    d.gpu.mem_bw_gbps = 25.6;       // LPDDR4
    d.gpu.mem_efficiency = 0.60;

    // GM20B has a double-rate fp16 CUDA path (the reason fp16 wins on
    // this board, paper S6.1.1); int8/tf32 have no native kernels for
    // most layers and fall back to the fp32 path at build time.
    d.gpu.eff_tc_gflops_int8 = 0.0;
    d.gpu.eff_tc_gflops_fp16 = 0.0;
    d.gpu.eff_cuda_gflops_fp32 = 70.0;
    d.gpu.eff_cuda_gflops_fp16 = 280.0;
    d.gpu.min_kernel_latency = sim::usec(55);

    d.memory.total = 4 * sim::kGiB;
    d.memory.os_reserved = static_cast<sim::Bytes>(1.6 * sim::kGiB);
    d.memory.process_runtime_overhead = 520 * sim::kMiB;

    // 5 W power mode.
    d.power.idle_w = 1.90;
    d.power.cap_w = 5.0;
    d.power.cpu_core_w = 0.45;
    d.power.cpu_little_w = 0.20;
    d.power.gpu_base_w = 0.50;
    d.power.sm_w = 1.45;
    d.power.tc_w = 0.0;
    d.power.dram_w = 0.95;

    d.coverage_int8 = 0.35;  // a minority of layer types only
    d.coverage_fp16 = 1.0;
    d.coverage_tf32 = 0.0;   // Maxwell predates tf32 entirely

    // Slower cores, slower launches.
    d.runtime.launch_cpu_cost = sim::usec(9);
    d.runtime.context_switch = sim::usec(18);
    d.runtime.channel_switch = sim::usec(50);

    return d;
}

DeviceSpec
cloudA40()
{
    DeviceSpec d;
    d.name = "a40";

    d.clusters = {
        {"EPYC", 16, 3.0, true},
        {"EPYC-ht", 16, 3.0, false},
    };

    d.gpu.arch = "Ampere-GA102";
    d.gpu.num_sms = 84;
    d.gpu.cuda_cores_per_sm = 128;
    d.gpu.tensor_cores_per_sm = 4;
    d.gpu.max_freq_ghz = 1.74;
    d.gpu.min_freq_ghz = 0.60;
    d.gpu.dvfs_levels = 12;
    d.gpu.mem_bw_gbps = 696.0;      // GDDR6
    d.gpu.mem_efficiency = 0.75;

    d.gpu.eff_tc_gflops_int8 = 130000.0;
    d.gpu.eff_tc_gflops_fp16 = 65000.0;
    d.gpu.eff_tc_gflops_tf32 = 33000.0;
    d.gpu.eff_cuda_gflops_fp32 = 11000.0;
    d.gpu.eff_cuda_gflops_fp16 = 0.0;

    // Discrete 48 GB card; "unified" here is just the device pool.
    d.memory.total = 48 * sim::kGiB;
    d.memory.os_reserved = 1 * sim::kGiB;
    d.memory.process_runtime_overhead = 300 * sim::kMiB;

    d.power.idle_w = 30.0;
    d.power.cap_w = 300.0;
    d.power.cpu_core_w = 4.0;
    d.power.cpu_little_w = 2.0;
    d.power.gpu_base_w = 20.0;
    d.power.sm_w = 90.0;
    d.power.tc_w = 110.0;
    d.power.dram_w = 60.0;

    d.runtime.launch_cpu_cost = sim::usec(3);
    d.runtime.launch_gpu_min = sim::usec(5);
    d.runtime.launch_gpu_max = sim::usec(20);
    d.runtime.channel_switch = sim::usec(8);
    d.gpu.min_kernel_latency = sim::usec(8);

    return d;
}

DeviceSpec
deviceByName(const std::string &name)
{
    if (auto d = findDevice(name))
        return *std::move(d);
    sim::fatal("unknown device '%s' (expected orin-nano, "
               "orin-nano-15w, nano, a40)", name.c_str());
}

const std::vector<std::string> &
deviceNames()
{
    static const std::vector<std::string> names = {
        "orin-nano", "orin-nano-15w", "nano", "a40",
    };
    return names;
}

std::optional<DeviceSpec>
findDevice(const std::string &name)
{
    if (name == "orin-nano")
        return orinNano();
    if (name == "orin-nano-15w")
        return orinNano15W();
    if (name == "nano")
        return jetsonNano();
    if (name == "a40")
        return cloudA40();
    return std::nullopt;
}

} // namespace jetsim::soc
