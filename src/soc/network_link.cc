#include "soc/network_link.hh"

#include <algorithm>

namespace jetsim::soc {

double
NetworkLink::wireThroughput() const
{
    return uplink_mbps * 1e6 / 8.0 / per_image_bytes;
}

double
NetworkLink::effectiveThroughput(double device_fps) const
{
    return std::min(device_fps, wireThroughput());
}

double
NetworkLink::endToEndLatencyMs(double device_fps, int batch) const
{
    const double up_ms =
        1e3 * batch * per_image_bytes * 8.0 / (uplink_mbps * 1e6);
    const double down_ms =
        1e3 * batch * result_bytes * 8.0 / (downlink_mbps * 1e6);
    const double compute_ms =
        device_fps > 0 ? 1e3 * batch / device_fps : 0.0;
    return rtt_ms + up_ms + down_ms + compute_ms;
}

double
NetworkLink::saturationPoint(double device_fps) const
{
    return std::min(device_fps, wireThroughput());
}

} // namespace jetsim::soc
