#include "soc/power.hh"

namespace jetsim::soc {

double
PowerModel::watts(const Activity &a, double freq_frac) const
{
    double p = spec_.idle_w;
    p += spec_.cpu_core_w * a.cpu_active_big;
    p += spec_.cpu_little_w * a.cpu_active_little;
    if (a.gpu_busy) {
        p += spec_.gpu_base_w;
        // Dynamic power scales roughly with f (activity already folds
        // in the voltage-dependent slowdown via throughput).
        const double f = freq_frac;
        p += f * (spec_.sm_w * a.sm_active +
                  spec_.tc_w * a.tc_util +
                  spec_.dram_w * a.bw_util);
    }
    return p;
}

} // namespace jetsim::soc
