/**
 * @file
 * Static description of a target platform (the paper's Table 1, plus
 * the calibrated performance-model parameters behind it).
 *
 * Everything a simulation needs to know about a board lives here:
 * CPU clusters, GPU geometry and effective throughput per precision,
 * unified-memory budget, OS scheduling constants, and power-model
 * coefficients. Factory functions provide the two boards the paper
 * measures (Jetson Orin Nano, Jetson Nano) and the A40-class cloud
 * GPU used by its introduction for the edge-vs-cloud comparison.
 *
 * Calibration: peak rates come from the published architecture specs;
 * the `eff*` factors fold in the sustained efficiency observed in the
 * paper (SM issue-slot utilisation ~25-40 %, TC utilisation ~25-30 %)
 * so that simulated throughput lands on the paper's reported numbers.
 * See DESIGN.md §4 and tests/core/calibration_test.cc.
 */

#ifndef JETSIM_SOC_DEVICE_SPEC_HH
#define JETSIM_SOC_DEVICE_SPEC_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "soc/precision.hh"

namespace jetsim::soc {

/** One CPU cluster of a big.LITTLE system. */
struct CpuClusterSpec
{
    std::string name;     ///< e.g. "A78AE-big"
    int cores = 0;        ///< cores in this cluster
    double freq_ghz = 0;  ///< nominal frequency
    bool big = false;     ///< heavy-load cluster?
};

/** GPU geometry and calibrated throughput model. */
struct GpuSpec
{
    std::string arch;           ///< "Ampere" / "Maxwell" / ...
    int num_sms = 0;            ///< streaming multiprocessors
    int cuda_cores_per_sm = 0;  ///< CUDA cores per SM
    int tensor_cores_per_sm = 0;///< tensor cores per SM (0 = none)
    double max_freq_ghz = 0;    ///< top DVFS state
    double min_freq_ghz = 0;    ///< lowest DVFS state
    int dvfs_levels = 8;        ///< discrete frequency steps
    double mem_bw_gbps = 0;     ///< peak DRAM bandwidth, GB/s
    double mem_efficiency = 0.6;///< sustained fraction of peak BW

    /**
     * Latency floor for one kernel body: small kernels on embedded
     * GPUs cannot finish faster than this regardless of their work
     * (launch tail, DRAM latency, inter-layer dependencies). This is
     * what makes many-small-kernel models (YoloV8n at batch 1)
     * overhead-bound and is amortised by larger batches.
     */
    sim::Tick min_kernel_latency = sim::usec(25);

    /**
     * Effective sustained GFLOPS on the tensor-core path at max
     * frequency, per precision (0 when the path does not exist, e.g.
     * no tensor cores, or tf32 on Maxwell). int8 values count
     * equivalent 8-bit MAC ops.
     */
    double eff_tc_gflops_int8 = 0;
    double eff_tc_gflops_fp16 = 0;
    double eff_tc_gflops_tf32 = 0;

    /** Effective sustained GFLOPS on the CUDA-core path. */
    double eff_cuda_gflops_fp32 = 0;
    double eff_cuda_gflops_fp16 = 0; ///< 0 ⇒ no fast-fp16 CUDA path

    /** @name Peak rates (for utilisation-counter derivation)
     * @{ */
    double peakCudaGflopsFp32() const;
    /** Peak tensor-core GFLOPS for the given precision; 0 if none. */
    double peakTcGflops(Precision p) const;
    /** @} */

    int totalCudaCores() const { return num_sms * cuda_cores_per_sm; }
    int totalTensorCores() const { return num_sms * tensor_cores_per_sm; }
    bool hasTensorCores() const { return tensor_cores_per_sm > 0; }
};

/** Unified-memory budget and per-process footprint constants. */
struct MemorySpec
{
    sim::Bytes total = 0;        ///< physical unified RAM
    sim::Bytes os_reserved = 0;  ///< kernel + desktop + daemons
    /** CUDA context + runtime libraries mapped per process. */
    sim::Bytes process_runtime_overhead = 0;
};

/**
 * Power-model coefficients. Instantaneous power =
 *   idle_w
 * + cpu_core_w × (active big cores) + cpu_little_w × (active LITTLE)
 * + gpu_base_w × gpu_busy
 * + (sm_w × sm_active + tc_w × tc_util + dram_w × bw_util) × f/fmax
 * clamped by the DVFS governor to stay under cap_w.
 */
struct PowerSpec
{
    double idle_w = 0;
    double cap_w = 0;          ///< board power-mode budget
    double cpu_core_w = 0;     ///< per active big core
    double cpu_little_w = 0;   ///< per active LITTLE core
    double gpu_base_w = 0;     ///< any kernel resident
    double sm_w = 0;           ///< scaled by SM-active fraction
    double tc_w = 0;           ///< scaled by TC utilisation
    double dram_w = 0;         ///< scaled by bandwidth utilisation
    /** Thermal throttle threshold in deg C and ambient temperature. */
    double throttle_temp_c = 95.0;
    double ambient_temp_c = 35.0;
};

/** OS / runtime timing constants used by the CPU and CUDA models. */
struct RuntimeSpec
{
    sim::Tick timeslice = sim::msec(2);        ///< scheduler quantum
    sim::Tick context_switch = sim::usec(12);  ///< direct switch cost
    /** Extra first-touch compute inflation after a core migration
     * (models L1/L2 cold misses; the paper's C_l growth). */
    double migration_penalty = 0.25;
    /** CPU-side cost to enqueue one kernel launch. */
    sim::Tick launch_cpu_cost = sim::usec(6);
    /** GPU-side launch latency K_l (paper: 20-100 us). */
    sim::Tick launch_gpu_min = sim::usec(20);
    sim::Tick launch_gpu_max = sim::usec(100);
    /** GPU channel-switch penalty between different processes. */
    sim::Tick channel_switch = sim::usec(35);
    /** GPU scheduler quantum: how long one process's channel keeps
     * the GPU before rotating (Jetson lacks MPS, so sharing is
     * time-multiplexed at this granularity). */
    sim::Tick gpu_quantum = sim::msec(1);
    /** Fixed CPU cost of a cudaStreamSynchronize call. */
    sim::Tick sync_cpu_cost = sim::usec(10);
};

/**
 * Complete platform description. Value type: copy freely; a
 * Simulation owns one per board.
 */
struct DeviceSpec
{
    std::string name;
    std::vector<CpuClusterSpec> clusters;
    GpuSpec gpu;
    MemorySpec memory;
    PowerSpec power;
    RuntimeSpec runtime;

    /**
     * Fraction of DL layer types with a native kernel at precision
     * @p p (1.0 = full support). Layers without a native kernel fall
     * back to the fp32 path at build time — the mechanism behind the
     * Jetson Nano's poor int8/tf32 results (paper §6.1.1).
     */
    double precisionCoverage(Precision p) const;

    /** Convenience: per-coverage table filled by the factories. */
    double coverage_int8 = 1.0;
    double coverage_fp16 = 1.0;
    double coverage_tf32 = 1.0;
    double coverage_fp32 = 1.0;

    /** Number of cores in big (heavy-load) clusters. */
    int bigCores() const;

    /** Number of cores in LITTLE clusters. */
    int littleCores() const;

    int totalCores() const { return bigCores() + littleCores(); }

    /** Memory available to inference processes. */
    sim::Bytes
    availableMemory() const
    {
        return memory.total - memory.os_reserved;
    }
};

/** The NVIDIA Jetson Orin Nano 8 GB (Ampere, 1024 cores, 32 TC),
 * in the 7 W power mode the paper measures. */
DeviceSpec orinNano();

/**
 * The same board in its 15 W power mode (extension): GPU clock up to
 * 1.02 GHz and a 15 W budget. The paper stays in the 7 W mode; this
 * variant quantifies what the bigger envelope buys.
 */
DeviceSpec orinNano15W();

/** The NVIDIA Jetson Nano 4 GB (Maxwell, 128 cores, no TC). */
DeviceSpec jetsonNano();

/**
 * An A40-class cloud GPU (the paper intro's reference point: a single
 * YoloV8n fp16 stream exceeds 1000 img/s). Modelled as a "board" with
 * a large core/TC count and a server-class CPU; used only by the
 * edge-vs-cloud example and tests.
 */
DeviceSpec cloudA40();

/** Look up a device by name ("orin-nano", "nano", "a40"). */
DeviceSpec deviceByName(const std::string &name);

/** Every name deviceByName() accepts, in presentation order. */
const std::vector<std::string> &deviceNames();

/** Non-fatal lookup for validation passes (jetlint). */
std::optional<DeviceSpec> findDevice(const std::string &name);

} // namespace jetsim::soc

#endif // JETSIM_SOC_DEVICE_SPEC_HH
