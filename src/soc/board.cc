#include "soc/board.hh"

namespace jetsim::soc {

Board::Board(DeviceSpec spec, sim::EventQueue &eq, std::uint64_t seed)
    : spec_(std::move(spec)), eq_(eq),
      rng_(seed ^ sim::hashLabel(spec_.name)),
      memory_(spec_.memory.total, spec_.memory.os_reserved),
      power_model_(spec_.power),
      governor_(spec_, eq, [this] { return powerW(); }),
      power_tw_(eq.now(), power_model_.watts(activity_, 1.0))
{
}

void
Board::setCpuActive(int big, int little)
{
    activity_.cpu_active_big = big;
    activity_.cpu_active_little = little;
    refresh();
}

void
Board::setGpuState(bool busy, double sm_active, double issue_slot,
                   double tc_util, double bw_util)
{
    activity_.gpu_busy = busy;
    activity_.sm_active = busy ? sm_active : 0.0;
    activity_.issue_slot = busy ? issue_slot : 0.0;
    activity_.tc_util = busy ? tc_util : 0.0;
    activity_.bw_util = busy ? bw_util : 0.0;

    const sim::Tick now = eq_.now();
    gpu_busy_tw_.set(now, busy ? 1.0 : 0.0);
    sm_active_tw_.set(now, activity_.sm_active);
    issue_tw_.set(now, activity_.issue_slot);
    tc_tw_.set(now, activity_.tc_util);
    refresh();
}

double
Board::powerW() const
{
    return power_model_.watts(activity_, governor_.freqFrac());
}

void
Board::refresh()
{
    power_tw_.set(eq_.now(), powerW());
}

} // namespace jetsim::soc
