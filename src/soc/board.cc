#include "soc/board.hh"

#include <algorithm>
#include <cmath>

#include "check/check.hh"

namespace jetsim::soc {

namespace {

constexpr const char *kComponent = "soc.board";

/** Clamp a utilisation fraction after reporting out-of-range input. */
double
sanitizeFrac(double v)
{
    if (!std::isfinite(v))
        return 0.0;
    return std::clamp(v, 0.0, 1.0);
}

/**
 * The largest power the coefficient model can produce: every unit
 * active at full utilisation and maximum frequency. Anything above
 * this (plus rounding slack) is a model bug, not throttling lag.
 */
double
maxPlausibleWatts(const DeviceSpec &spec)
{
    const auto &p = spec.power;
    return p.idle_w + p.cpu_core_w * spec.bigCores() +
           p.cpu_little_w * spec.littleCores() + p.gpu_base_w +
           p.sm_w + p.tc_w + p.dram_w;
}

} // namespace

Board::Board(DeviceSpec spec, sim::EventQueue &eq, std::uint64_t seed)
    : spec_(std::move(spec)), eq_(eq),
      rng_(seed ^ sim::hashLabel(spec_.name)),
      memory_(spec_.memory.total, spec_.memory.os_reserved),
      power_model_(spec_.power),
      governor_(spec_, eq, [this] { return powerW(); }),
      power_tw_(eq.now(), power_model_.watts(activity_, 1.0))
{
}

void
Board::setCpuActive(int big, int little)
{
    JETSIM_CHECK(big >= 0 && big <= spec_.bigCores() && little >= 0 &&
                     little <= spec_.littleCores(),
                 check::Severity::Error,
                 check::Invariant::Plausibility, kComponent, eq_.now(),
                 "active core counts (%d big, %d little) outside the "
                 "%d/%d the board has",
                 big, little, spec_.bigCores(), spec_.littleCores());
    activity_.cpu_active_big = std::clamp(big, 0, spec_.bigCores());
    activity_.cpu_active_little =
        std::clamp(little, 0, spec_.littleCores());
    refresh();
}

void
Board::setGpuState(bool busy, double sm_active, double issue_slot,
                   double tc_util, double bw_util)
{
    const auto in_range = [](double v) {
        return std::isfinite(v) && v >= 0.0 && v <= 1.0 + 1e-9;
    };
    JETSIM_CHECK(!busy || (in_range(sm_active) && in_range(issue_slot) &&
                           in_range(tc_util) && in_range(bw_util)),
                 check::Severity::Error,
                 check::Invariant::Plausibility, kComponent, eq_.now(),
                 "GPU utilisation outside [0,1] or non-finite "
                 "(sm=%g issue=%g tc=%g bw=%g)",
                 sm_active, issue_slot, tc_util, bw_util);

    activity_.gpu_busy = busy;
    activity_.sm_active = busy ? sanitizeFrac(sm_active) : 0.0;
    activity_.issue_slot = busy ? sanitizeFrac(issue_slot) : 0.0;
    activity_.tc_util = busy ? sanitizeFrac(tc_util) : 0.0;
    activity_.bw_util = busy ? sanitizeFrac(bw_util) : 0.0;

    const sim::Tick now = eq_.now();
    gpu_busy_tw_.set(now, busy ? 1.0 : 0.0);
    sm_active_tw_.set(now, activity_.sm_active);
    issue_tw_.set(now, activity_.issue_slot);
    tc_tw_.set(now, activity_.tc_util);
    refresh();
}

double
Board::powerW() const
{
    return power_model_.watts(activity_, governor_.freqFrac());
}

void
Board::refresh()
{
    const double p = powerW();
    JETSIM_CHECK(std::isfinite(p) && p >= 0.0 &&
                     p <= maxPlausibleWatts(spec_) + 0.5,
                 check::Severity::Error,
                 check::Invariant::Plausibility, kComponent, eq_.now(),
                 "implausible board power %g W (max plausible %g W)",
                 p, maxPlausibleWatts(spec_));
    power_tw_.set(eq_.now(), p);
}

} // namespace jetsim::soc
