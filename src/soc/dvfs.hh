/**
 * @file
 * Dynamic voltage and frequency scaling (DVFS) governor.
 *
 * Jetson boards run a power-mode budget (7 W Orin Nano / 5 W Nano in
 * the paper's experiments). The governor polls board power on a fixed
 * period, integrates a first-order thermal model, and steps the GPU
 * clock through the device's discrete frequency levels to keep the
 * rail under the cap — reducing throughput instead of exceeding the
 * budget, exactly as the paper describes (S6.2.2).
 */

#ifndef JETSIM_SOC_DVFS_HH
#define JETSIM_SOC_DVFS_HH

#include <functional>

#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "soc/device_spec.hh"

namespace jetsim::soc {

/** Closed-loop frequency governor with a simple thermal model. */
class DvfsGovernor
{
  public:
    /** Returns the board's current instantaneous power in Watts. */
    using PowerFn = std::function<double()>;

    DvfsGovernor(const DeviceSpec &spec, sim::EventQueue &eq,
                 PowerFn power_fn);

    /** Begin periodic control; idempotent. */
    void start();

    /** Cancel the periodic control event. */
    void stop();

    /**
     * Enable/disable throttling (ablation A2). Disabled, the clock
     * pins to the maximum level and the cap is ignored.
     */
    void setEnabled(bool enabled);

    bool enabled() const { return enabled_; }

    /** Current GPU frequency as a fraction of the maximum. */
    double freqFrac() const;

    /** Current GPU frequency in GHz. */
    double freqGhz() const;

    /** Current discrete level, 0 (min) .. levels-1 (max). */
    int level() const { return level_; }

    /** Modelled die temperature in deg C. */
    double tempC() const { return temp_c_; }

    /** Number of down-clock decisions taken. */
    std::uint64_t throttleEvents() const { return throttle_events_; }

    /** Control period (public for tests). */
    static constexpr sim::Tick kPeriod = sim::msec(10);

  private:
    void tick();

    const DeviceSpec spec_;
    sim::EventQueue &eq_;
    PowerFn power_fn_;
    bool enabled_ = true;
    bool running_ = false;
    int level_;
    double temp_c_;
    double power_ema_ = 0.0;
    std::uint64_t throttle_events_ = 0;
    sim::EventQueue::Handle pending_;
};

} // namespace jetsim::soc

#endif // JETSIM_SOC_DVFS_HH
