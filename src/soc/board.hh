/**
 * @file
 * A simulated board: the composition root for one device.
 *
 * Board owns the unified memory pool, power model, DVFS governor and
 * the shared Activity snapshot. The CPU and GPU models (which live in
 * higher-level modules) publish their activity through the setters
 * here; samplers and the governor read the derived signals.
 */

#ifndef JETSIM_SOC_BOARD_HH
#define JETSIM_SOC_BOARD_HH

#include <memory>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "soc/device_spec.hh"
#include "soc/dvfs.hh"
#include "soc/power.hh"
#include "soc/unified_memory.hh"

namespace jetsim::soc {

/**
 * One device under simulation. Non-copyable; components hold
 * references for the lifetime of a run.
 */
class Board
{
  public:
    Board(DeviceSpec spec, sim::EventQueue &eq,
          std::uint64_t seed = 0x5eed);

    const DeviceSpec &spec() const { return spec_; }
    sim::EventQueue &eq() { return eq_; }
    UnifiedMemory &memory() { return memory_; }
    const UnifiedMemory &memory() const { return memory_; }
    DvfsGovernor &governor() { return governor_; }
    const DvfsGovernor &governor() const { return governor_; }
    sim::Rng &rng() { return rng_; }

    /** Start periodic services (the DVFS governor). */
    void start() { governor_.start(); }

    /** @name Activity publication (called by cpu/gpu models)
     * @{ */
    void setCpuActive(int big, int little);
    void setGpuState(bool busy, double sm_active, double issue_slot,
                     double tc_util, double bw_util);
    /** @} */

    /** Latest activity snapshot. */
    const Activity &activity() const { return activity_; }

    /** Instantaneous board power in Watts. */
    double powerW() const;

    /** Current GPU frequency fraction (delegates to the governor). */
    double gpuFreqFrac() const { return governor_.freqFrac(); }

    /** @name Profiler intrusion
     * Attached tracers inflate CPU-side launch API costs by this
     * factor (1.0 = no profiler).
     * @{ */
    void setLaunchOverheadFactor(double f) { launch_overhead_ = f; }
    double launchOverheadFactor() const { return launch_overhead_; }
    /** @} */

    /** @name Time-weighted signals for samplers
     * The sampler computes windowed averages from these integrals.
     * @{ */
    const sim::TimeWeighted &powerTw() const { return power_tw_; }
    const sim::TimeWeighted &gpuBusyTw() const { return gpu_busy_tw_; }
    const sim::TimeWeighted &smActiveTw() const { return sm_active_tw_; }
    const sim::TimeWeighted &issueSlotTw() const { return issue_tw_; }
    const sim::TimeWeighted &tcUtilTw() const { return tc_tw_; }
    /** @} */

  private:
    /** Recompute power after any activity change. */
    void refresh();

    const DeviceSpec spec_;
    sim::EventQueue &eq_;
    sim::Rng rng_;
    UnifiedMemory memory_;
    PowerModel power_model_;
    DvfsGovernor governor_;
    Activity activity_;
    double launch_overhead_ = 1.0;

    sim::TimeWeighted power_tw_;
    sim::TimeWeighted gpu_busy_tw_;
    sim::TimeWeighted sm_active_tw_;
    sim::TimeWeighted issue_tw_;
    sim::TimeWeighted tc_tw_;
};

} // namespace jetsim::soc

#endif // JETSIM_SOC_BOARD_HH
