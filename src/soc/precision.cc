#include "soc/precision.hh"

#include "sim/logging.hh"

namespace jetsim::soc {

const char *
name(Precision p)
{
    switch (p) {
      case Precision::Int8: return "int8";
      case Precision::Fp16: return "fp16";
      case Precision::Tf32: return "tf32";
      case Precision::Fp32: return "fp32";
    }
    return "?";
}

Precision
precisionFromName(const std::string &s)
{
    for (Precision p : kAllPrecisions)
        if (s == name(p))
            return p;
    sim::fatal("unknown precision '%s'", s.c_str());
}

unsigned
storageBytes(Precision p)
{
    switch (p) {
      case Precision::Int8: return 1;
      case Precision::Fp16: return 2;
      case Precision::Tf32: return 4;
      case Precision::Fp32: return 4;
    }
    return 4;
}

} // namespace jetsim::soc
