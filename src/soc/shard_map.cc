#include "soc/shard_map.hh"

#include "sim/logging.hh"

namespace jetsim::soc {

ShardMap
ShardMap::roundRobin(int devices, int shards)
{
    JETSIM_ASSERT(devices >= 1);
    JETSIM_ASSERT(shards >= 1);
    // More shards than devices would leave empty shards spinning in
    // every epoch; clamp instead.
    const int k = shards > devices ? devices : shards;
    std::vector<int> map(static_cast<std::size_t>(devices));
    for (int d = 0; d < devices; ++d)
        map[static_cast<std::size_t>(d)] = d % k;
    return ShardMap(std::move(map), k);
}

ShardMap
ShardMap::blocked(int devices, int shards)
{
    JETSIM_ASSERT(devices >= 1);
    JETSIM_ASSERT(shards >= 1);
    const int k = shards > devices ? devices : shards;
    std::vector<int> map(static_cast<std::size_t>(devices));
    // Ceil-sized blocks: the first (devices % k) shards get one more.
    const int base = devices / k;
    const int extra = devices % k;
    int d = 0;
    for (int s = 0; s < k; ++s) {
        const int take = base + (s < extra ? 1 : 0);
        for (int i = 0; i < take; ++i)
            map[static_cast<std::size_t>(d++)] = s;
    }
    JETSIM_ASSERT(d == devices);
    return ShardMap(std::move(map), k);
}

ShardMap
ShardMap::balancerReserved(int devices, int shards)
{
    JETSIM_ASSERT(devices >= 1);
    JETSIM_ASSERT(shards >= 1);
    if (shards < 2) {
        // No shard to reserve: root and devices share shard 0.
        std::vector<int> map(static_cast<std::size_t>(devices), 0);
        return ShardMap(std::move(map), 1);
    }
    // K-1 device shards, shard 0 device-free; clamp so every device
    // shard holds at least one board.
    const int k = shards > devices + 1 ? devices + 1 : shards;
    std::vector<int> map(static_cast<std::size_t>(devices));
    for (int d = 0; d < devices; ++d)
        map[static_cast<std::size_t>(d)] = 1 + d % (k - 1);
    return ShardMap(std::move(map), k);
}

int
ShardMap::shardOf(int device) const
{
    JETSIM_ASSERT(device >= 0 && device < devices());
    return map_[static_cast<std::size_t>(device)];
}

std::vector<int>
ShardMap::devicesOn(int shard) const
{
    JETSIM_ASSERT(shard >= 0 && shard < shards_);
    std::vector<int> out;
    for (int d = 0; d < devices(); ++d)
        if (map_[static_cast<std::size_t>(d)] == shard)
            out.push_back(d);
    return out;
}

} // namespace jetsim::soc
