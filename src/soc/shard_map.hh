/**
 * @file
 * Device-to-shard placement for the sharded event core.
 *
 * A fleet of D boards runs on K event-queue shards
 * (sim::ShardedEngine); the map decides which board lives on which
 * shard. Placement is pure topology — it can never change simulation
 * *results* (the engine's merge is bit-identical at any shard count)
 * — but it decides load balance, so the default interleaves devices
 * round-robin: heterogeneous fleets listed as [big, small, big,
 * small, ...] spread both classes over all shards instead of piling
 * the big boards onto shard 0.
 */

#ifndef JETSIM_SOC_SHARD_MAP_HH
#define JETSIM_SOC_SHARD_MAP_HH

#include <vector>

namespace jetsim::soc {

/** Which shard each of a fleet's devices lives on. */
class ShardMap
{
  public:
    /** Device d -> shard d % shards (load-interleaving default). */
    static ShardMap roundRobin(int devices, int shards);

    /** Device d -> contiguous blocks (cache-friendly when adjacent
     * devices exchange most of their traffic, e.g. pipeline splits
     * of one model across boards). */
    static ShardMap blocked(int devices, int shards);

    /**
     * Shard 0 reserved for a root balancer (no devices), devices
     * round-robin over shards 1..K-1 — the placement hierarchical
     * fleets want: the root's arrival stream is the only cross-shard
     * poster, so the engine's adaptive epoch batching fuses every
     * device shard's work between consecutive dispatch decisions.
     * Degenerates to everything-on-shard-0 when @p shards < 2 (the
     * serial / merge topologies); K is clamped to devices + 1 so no
     * device shard is ever empty.
     */
    static ShardMap balancerReserved(int devices, int shards);

    int devices() const { return static_cast<int>(map_.size()); }
    int shards() const { return shards_; }
    int shardOf(int device) const;

    /** Devices mapped to @p shard, in device order. */
    std::vector<int> devicesOn(int shard) const;

  private:
    ShardMap(std::vector<int> map, int shards)
        : map_(std::move(map)), shards_(shards)
    {
    }

    std::vector<int> map_;
    int shards_ = 1;
};

} // namespace jetsim::soc

#endif // JETSIM_SOC_SHARD_MAP_HH
