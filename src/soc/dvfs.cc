#include "soc/dvfs.hh"

#include <algorithm>

#include "check/check.hh"
#include "sim/logging.hh"

namespace jetsim::soc {

namespace {

/** Thermal RC constants: heating per Watt and cooling per degree. */
constexpr double kHeatPerWatt = 0.35;   // degC/s per W above idle
constexpr double kCoolPerDeg = 0.055;   // 1/s toward ambient

} // namespace

DvfsGovernor::DvfsGovernor(const DeviceSpec &spec, sim::EventQueue &eq,
                           PowerFn power_fn)
    : spec_(spec), eq_(eq), power_fn_(std::move(power_fn)),
      level_(spec.gpu.dvfs_levels - 1),
      temp_c_(spec.power.ambient_temp_c)
{
    JETSIM_ASSERT(spec_.gpu.dvfs_levels >= 2);
}

void
DvfsGovernor::start()
{
    if (running_)
        return;
    running_ = true;
    pending_ = eq_.scheduleIn(kPeriod, [this] { tick(); });
}

void
DvfsGovernor::stop()
{
    running_ = false;
    pending_.cancel();
}

void
DvfsGovernor::setEnabled(bool enabled)
{
    enabled_ = enabled;
    if (!enabled_)
        level_ = spec_.gpu.dvfs_levels - 1;
}

double
DvfsGovernor::freqFrac() const
{
    // The level arithmetic can land a hair above max_freq_ghz in
    // floating point; clamp so consumers can rely on (0, 1].
    return std::min(1.0, freqGhz() / spec_.gpu.max_freq_ghz);
}

double
DvfsGovernor::freqGhz() const
{
    const auto &g = spec_.gpu;
    const double step = (g.max_freq_ghz - g.min_freq_ghz) /
                        static_cast<double>(g.dvfs_levels - 1);
    return g.min_freq_ghz + step * level_;
}

void
DvfsGovernor::tick()
{
    if (!running_)
        return;

    const double p = power_fn_();

    // Exponential smoothing approximates the board's averaging sensor.
    power_ema_ = power_ema_ == 0.0 ? p : 0.6 * power_ema_ + 0.4 * p;

    // First-order thermal integration over the control period.
    const double dt = sim::toSec(kPeriod);
    temp_c_ += dt * (kHeatPerWatt * std::max(0.0, p - spec_.power.idle_w)
                     - kCoolPerDeg * (temp_c_ - spec_.power.ambient_temp_c));

    if (enabled_) {
        const double cap = spec_.power.cap_w;
        const bool hot = temp_c_ > spec_.power.throttle_temp_c;
        if (power_ema_ > cap || hot) {
            if (level_ > 0) {
                --level_;
                ++throttle_events_;
            }
        } else if (power_ema_ < 0.88 * cap &&
                   temp_c_ < spec_.power.throttle_temp_c - 5.0) {
            level_ = std::min(level_ + 1, spec_.gpu.dvfs_levels - 1);
        }
    }

    // JetSan: the clock must stay inside the device's DVFS table.
    JETSIM_CHECK(level_ >= 0 && level_ < spec_.gpu.dvfs_levels &&
                     freqGhz() >= spec_.gpu.min_freq_ghz - 1e-9 &&
                     freqGhz() <= spec_.gpu.max_freq_ghz + 1e-9,
                 check::Severity::Error,
                 check::Invariant::Plausibility, "soc.dvfs", eq_.now(),
                 "GPU clock outside the DVFS table (level=%d of %d, "
                 "%.3f GHz not in [%.3f, %.3f])",
                 level_, spec_.gpu.dvfs_levels, freqGhz(),
                 spec_.gpu.min_freq_ghz, spec_.gpu.max_freq_ghz);

    pending_ = eq_.scheduleIn(kPeriod, [this] { tick(); });
}

} // namespace jetsim::soc
