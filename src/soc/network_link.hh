/**
 * @file
 * Network-link model for edge-vs-cloud offloading analysis.
 *
 * The paper's introduction and conclusion frame the deployment
 * question around network-related delays: "a single YoloV8n model is
 * capable of processing over 1000 images per second [on an A40] —
 * however, network delays including transmission, propagation and
 * processing diminish the effective throughput." This model folds an
 * uplink budget and round-trip latency into the numbers a remote
 * accelerator can actually deliver to an edge client.
 */

#ifndef JETSIM_SOC_NETWORK_LINK_HH
#define JETSIM_SOC_NETWORK_LINK_HH

#include "sim/types.hh"

namespace jetsim::soc {

/** A point-to-point link between the edge client and a remote GPU. */
struct NetworkLink
{
    double uplink_mbps = 50.0;   ///< client to cloud bandwidth
    double downlink_mbps = 100.0;///< result path (results are small)
    double rtt_ms = 40.0;        ///< propagation round trip
    double per_image_bytes = 180e3; ///< compressed frame on the wire
    double result_bytes = 4e3;      ///< detections/logits coming back

    /** Images/s the uplink can carry, independent of the GPU. */
    double wireThroughput() const;

    /**
     * Effective throughput of a remote accelerator: the min of what
     * the device sustains and what the wire admits.
     */
    double effectiveThroughput(double device_fps) const;

    /**
     * End-to-end latency of one image batch: serialisation both
     * ways, propagation, and the device-side batch completion time.
     * @param device_fps  the remote device's sustained rate
     * @param batch       images per inference invocation
     */
    double endToEndLatencyMs(double device_fps, int batch) const;

    /**
     * Offered load (images/s) above which the *wire*, not the GPU,
     * is the bottleneck — the paper's "network delays diminish the
     * effective throughput" crossover.
     */
    double saturationPoint(double device_fps) const;
};

} // namespace jetsim::soc

#endif // JETSIM_SOC_NETWORK_LINK_HH
