/**
 * @file
 * Board-level power model.
 *
 * Power is computed from an instantaneous activity snapshot that the
 * CPU and GPU models keep up to date, using the per-device
 * coefficients in PowerSpec. The DVFS governor (dvfs.hh) closes the
 * loop by throttling the GPU clock when the rail approaches the
 * board's power-mode cap — the mechanism the paper credits for the
 * counter-intuitive fp32 power drop (S6.1.2) and the non-linear
 * multi-process power of Fig 8.
 */

#ifndef JETSIM_SOC_POWER_HH
#define JETSIM_SOC_POWER_HH

#include "sim/stats.hh"
#include "sim/types.hh"
#include "soc/device_spec.hh"

namespace jetsim::soc {

/** Instantaneous activity of every power-relevant unit. */
struct Activity
{
    int cpu_active_big = 0;    ///< big cores currently executing
    int cpu_active_little = 0; ///< LITTLE cores currently executing
    bool gpu_busy = false;     ///< a kernel is resident on the GPU
    double sm_active = 0.0;    ///< SM-active fraction [0,1]
    double issue_slot = 0.0;   ///< issue-slot utilisation [0,1]
    double tc_util = 0.0;      ///< tensor-core utilisation [0,1]
    double bw_util = 0.0;      ///< DRAM bandwidth utilisation [0,1]
};

/** Maps (activity, gpu frequency) to Watts for one device. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerSpec &spec) : spec_(spec) {}

    /**
     * Instantaneous board power in Watts.
     * @param a        current activity snapshot
     * @param freq_frac current GPU frequency / max frequency
     */
    double watts(const Activity &a, double freq_frac) const;

  private:
    PowerSpec spec_;
};

} // namespace jetsim::soc

#endif // JETSIM_SOC_POWER_HH
