/**
 * @file
 * Unified-memory pool shared by CPU and GPU on Jetson boards.
 *
 * The integrated design eliminates copy overhead but couples every
 * process's footprint into one budget: the paper reports that a
 * fourth concurrent FCN_ResNet50 process on the Jetson Nano exhausts
 * memory and reboots the board. We model allocation failure
 * explicitly so deployment-feasibility questions are first-class.
 */

#ifndef JETSIM_SOC_UNIFIED_MEMORY_HH
#define JETSIM_SOC_UNIFIED_MEMORY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace jetsim::soc {

/**
 * Byte-accounting allocator over the board's unified RAM.
 *
 * Allocations are identified by integer ids and tagged with an owner
 * string (one per simulated process) so per-process and total usage
 * can be reported the way jetson-stats does.
 */
class UnifiedMemory
{
  public:
    using AllocId = std::uint64_t;
    static constexpr AllocId kBadAlloc = 0;

    /**
     * JetSan fault-injection seam: tests corrupt the accounting
     * state through this class to prove the checker notices. Never
     * used outside tests/check/.
     */
    friend class MemoryFaultInjector;

    /**
     * @param total Physical RAM on the board.
     * @param os_reserved Bytes permanently held by the OS image.
     */
    UnifiedMemory(sim::Bytes total, sim::Bytes os_reserved);

    /**
     * Try to allocate @p size bytes for @p owner.
     * @return allocation id, or kBadAlloc when the pool is exhausted
     *         (the caller decides whether that is fatal).
     */
    AllocId allocate(const std::string &owner, sim::Bytes size);

    /** Release a previous allocation; id must be live. */
    void release(AllocId id);

    /** Release every allocation tagged with @p owner. */
    void releaseOwner(const std::string &owner);

    /** Bytes currently allocated (excluding the OS reservation). */
    sim::Bytes used() const { return used_; }

    /** Bytes still allocatable. */
    sim::Bytes
    available() const
    {
        return total_ - os_reserved_ - used_;
    }

    /** Physical pool size. */
    sim::Bytes total() const { return total_; }

    /**
     * Usage as a percentage of *total* physical RAM, including the OS
     * share — matching how jetson-stats (and the paper's figures)
     * report GPU memory.
     */
    double usagePercent() const;

    /**
     * Usage percentage counting only inference allocations, i.e. the
     * delta the workload adds over the idle system.
     */
    double workloadPercent() const;

    /** Bytes held by one owner. */
    sim::Bytes ownerUsage(const std::string &owner) const;

    /** High-water mark of used(). */
    sim::Bytes peakUsed() const { return peak_used_; }

    /** Number of failed allocations observed. */
    std::uint64_t oomEvents() const { return oom_events_; }

    /**
     * JetSan audit: verify that used() equals the sum of live
     * allocations and never exceeds the allocatable pool. Called
     * internally after every mutation (O(1) capacity check) and by
     * tests (full O(n) sum check).
     * @return true when the accounting is consistent.
     */
    bool auditInvariants() const;

  private:
    struct Allocation
    {
        std::string owner;
        sim::Bytes size;
    };

    sim::Bytes total_;
    sim::Bytes os_reserved_;
    sim::Bytes used_ = 0;
    sim::Bytes peak_used_ = 0;
    std::uint64_t oom_events_ = 0;
    AllocId next_id_ = 1;
    std::map<AllocId, Allocation> allocs_;
};

} // namespace jetsim::soc

#endif // JETSIM_SOC_UNIFIED_MEMORY_HH
