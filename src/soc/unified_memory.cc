#include "soc/unified_memory.hh"

#include "sim/logging.hh"

namespace jetsim::soc {

UnifiedMemory::UnifiedMemory(sim::Bytes total, sim::Bytes os_reserved)
    : total_(total), os_reserved_(os_reserved)
{
    JETSIM_ASSERT(os_reserved_ <= total_);
}

UnifiedMemory::AllocId
UnifiedMemory::allocate(const std::string &owner, sim::Bytes size)
{
    if (size > available()) {
        ++oom_events_;
        return kBadAlloc;
    }
    const AllocId id = next_id_++;
    allocs_[id] = Allocation{owner, size};
    used_ += size;
    peak_used_ = std::max(peak_used_, used_);
    return id;
}

void
UnifiedMemory::release(AllocId id)
{
    auto it = allocs_.find(id);
    JETSIM_ASSERT(it != allocs_.end());
    used_ -= it->second.size;
    allocs_.erase(it);
}

void
UnifiedMemory::releaseOwner(const std::string &owner)
{
    for (auto it = allocs_.begin(); it != allocs_.end();) {
        if (it->second.owner == owner) {
            used_ -= it->second.size;
            it = allocs_.erase(it);
        } else {
            ++it;
        }
    }
}

double
UnifiedMemory::usagePercent() const
{
    return 100.0 * static_cast<double>(os_reserved_ + used_) /
           static_cast<double>(total_);
}

double
UnifiedMemory::workloadPercent() const
{
    return 100.0 * static_cast<double>(used_) /
           static_cast<double>(total_);
}

sim::Bytes
UnifiedMemory::ownerUsage(const std::string &owner) const
{
    sim::Bytes n = 0;
    for (const auto &[id, a] : allocs_)
        if (a.owner == owner)
            n += a.size;
    return n;
}

} // namespace jetsim::soc
