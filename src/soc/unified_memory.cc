#include "soc/unified_memory.hh"

#include <algorithm>

#include "check/check.hh"
#include "sim/logging.hh"

namespace jetsim::soc {

namespace {
constexpr const char *kComponent = "soc.memory";
}

UnifiedMemory::UnifiedMemory(sim::Bytes total, sim::Bytes os_reserved)
    : total_(total), os_reserved_(os_reserved)
{
    if (os_reserved_ > total_) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::MemoryAccounting, kComponent,
                         check::kTimeUnknown,
                         "OS reservation (%llu B) exceeds physical "
                         "memory (%llu B)",
                         static_cast<unsigned long long>(os_reserved_),
                         static_cast<unsigned long long>(total_));
        os_reserved_ = total_;
    }
}

UnifiedMemory::AllocId
UnifiedMemory::allocate(const std::string &owner, sim::Bytes size)
{
    if (size > available()) {
        // A denied allocation is a *legal* outcome (the paper's
        // over-deployment failure mode), not an invariant violation.
        ++oom_events_;
        return kBadAlloc;
    }
    const AllocId id = next_id_++;
    allocs_[id] = Allocation{owner, size};
    used_ += size;
    peak_used_ = std::max(peak_used_, used_);
    JETSIM_CHECK(used_ <= total_ - os_reserved_,
                 check::Severity::Error,
                 check::Invariant::MemoryAccounting, kComponent,
                 check::kTimeUnknown,
                 "used (%llu B) exceeds allocatable pool (%llu B) "
                 "after allocating for %s",
                 static_cast<unsigned long long>(used_),
                 static_cast<unsigned long long>(total_ - os_reserved_),
                 owner.c_str());
    return id;
}

void
UnifiedMemory::release(AllocId id)
{
    auto it = allocs_.find(id);
    if (it == allocs_.end()) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::MemoryAccounting, kComponent,
                         check::kTimeUnknown,
                         "release of unknown allocation id %llu "
                         "(double free or use-after-free)",
                         static_cast<unsigned long long>(id));
        return;
    }
    JETSIM_CHECK(it->second.size <= used_, check::Severity::Error,
                 check::Invariant::MemoryAccounting, kComponent,
                 check::kTimeUnknown,
                 "releasing %llu B from %s underflows used (%llu B)",
                 static_cast<unsigned long long>(it->second.size),
                 it->second.owner.c_str(),
                 static_cast<unsigned long long>(used_));
    used_ -= std::min(it->second.size, used_);
    allocs_.erase(it);
}

void
UnifiedMemory::releaseOwner(const std::string &owner)
{
    for (auto it = allocs_.begin(); it != allocs_.end();) {
        if (it->second.owner == owner) {
            used_ -= std::min(it->second.size, used_);
            it = allocs_.erase(it);
        } else {
            ++it;
        }
    }
}

bool
UnifiedMemory::auditInvariants() const
{
    sim::Bytes sum = 0;
    for (const auto &[id, a] : allocs_)
        sum += a.size;
    bool ok = true;
    if (sum != used_) {
        ok = false;
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::MemoryAccounting, kComponent,
                         check::kTimeUnknown,
                         "accounting drift: used=%llu B but live "
                         "allocations sum to %llu B",
                         static_cast<unsigned long long>(used_),
                         static_cast<unsigned long long>(sum));
    }
    if (used_ > total_ - os_reserved_) {
        ok = false;
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::MemoryAccounting, kComponent,
                         check::kTimeUnknown,
                         "used (%llu B) exceeds allocatable pool "
                         "(%llu B)",
                         static_cast<unsigned long long>(used_),
                         static_cast<unsigned long long>(
                             total_ - os_reserved_));
    }
    return ok;
}

double
UnifiedMemory::usagePercent() const
{
    return 100.0 * static_cast<double>(os_reserved_ + used_) /
           static_cast<double>(total_);
}

double
UnifiedMemory::workloadPercent() const
{
    return 100.0 * static_cast<double>(used_) /
           static_cast<double>(total_);
}

sim::Bytes
UnifiedMemory::ownerUsage(const std::string &owner) const
{
    sim::Bytes n = 0;
    for (const auto &[id, a] : allocs_)
        if (a.owner == owner)
            n += a.size;
    return n;
}

} // namespace jetsim::soc
