/**
 * @file
 * Numeric weight-precision formats considered by the study.
 *
 * The paper compiles each model at int8, fp16, tf32 and fp32 and
 * sweeps them as the primary independent variable of Section 6.1.
 */

#ifndef JETSIM_SOC_PRECISION_HH
#define JETSIM_SOC_PRECISION_HH

#include <array>
#include <string>

namespace jetsim::soc {

/** Weight/compute precision of a compiled model. */
enum class Precision { Int8, Fp16, Tf32, Fp32 };

/** All precisions in the paper's sweep order (int8 → fp32). */
inline constexpr std::array<Precision, 4> kAllPrecisions = {
    Precision::Int8, Precision::Fp16, Precision::Tf32, Precision::Fp32,
};

/** Short lowercase name as used in the paper ("int8", "fp16", ...). */
const char *name(Precision p);

/** Parse a precision name; fatal() on unknown names. */
Precision precisionFromName(const std::string &s);

/**
 * Bytes used to *store* one weight element in this format. tf32 is a
 * compute format: weights are kept in 32-bit storage.
 */
unsigned storageBytes(Precision p);

} // namespace jetsim::soc

#endif // JETSIM_SOC_PRECISION_HH
