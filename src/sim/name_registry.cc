#include "sim/name_registry.hh"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "sim/logging.hh"

namespace jetsim::sim {

namespace {

struct Registry
{
    std::mutex mu;
    // deque: stable references for nameOf() across growth.
    std::deque<std::string> names;
    std::unordered_map<std::string_view, NameId> ids;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

NameId
internName(std::string_view name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.ids.find(name);
    if (it != r.ids.end())
        return it->second;
    const auto id = static_cast<NameId>(r.names.size());
    JETSIM_ASSERT(id != kInvalidNameId);
    r.names.emplace_back(name);
    // Key the map by the deque-owned string: the view stays valid for
    // the registry's lifetime.
    r.ids.emplace(r.names.back(), id);
    return id;
}

const std::string &
nameOf(NameId id)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    if (id >= r.names.size())
        fatal("name registry: unknown id %u (interned: %zu)", id,
              r.names.size());
    return r.names[id];
}

std::size_t
internedNameCount()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.names.size();
}

} // namespace jetsim::sim
