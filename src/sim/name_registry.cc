#include "sim/name_registry.hh"

#include <deque>
#include <unordered_map>

#include "core/mutex.hh"
#include "core/thread_annotations.hh"
#include "sim/logging.hh"

namespace jetsim::sim {

namespace {

struct Registry
{
    core::Mutex mu;
    // deque: stable references for nameOf() across growth. Entries
    // are immutable once published, so the reference nameOf() hands
    // out stays valid (and data-race-free) after the lock drops.
    std::deque<std::string> names JETSIM_GUARDED_BY(mu);
    std::unordered_map<std::string_view, NameId> ids
        JETSIM_GUARDED_BY(mu);
};

Registry &
registry()
{
    // Self-synchronized: both containers are guarded by Registry::mu.
    static Registry r; // jetrace: guarded(Registry::mu)
    return r;
}

} // namespace

NameId
internName(std::string_view name)
{
    Registry &r = registry();
    core::LockGuard lock(r.mu);
    auto it = r.ids.find(name);
    if (it != r.ids.end())
        return it->second;
    const auto id = static_cast<NameId>(r.names.size());
    JETSIM_ASSERT(id != kInvalidNameId);
    r.names.emplace_back(name);
    // Key the map by the deque-owned string: the view stays valid for
    // the registry's lifetime.
    r.ids.emplace(r.names.back(), id);
    return id;
}

const std::string &
nameOf(NameId id)
{
    Registry &r = registry();
    core::LockGuard lock(r.mu);
    if (id >= r.names.size())
        fatal("name registry: unknown id %u (interned: %zu)", id,
              r.names.size());
    // Returning a reference past the unlock is safe: interned
    // strings are append-only and immutable after publication.
    return r.names[id];
}

std::size_t
internedNameCount()
{
    Registry &r = registry();
    core::LockGuard lock(r.mu);
    return r.names.size();
}

} // namespace jetsim::sim
