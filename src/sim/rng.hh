/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic element of the simulator draws from an Rng that is
 * seeded from the experiment specification, so a given spec always
 * reproduces bit-identical results. The generator is xoshiro256**,
 * seeded through SplitMix64 (the reference seeding procedure).
 */

#ifndef JETSIM_SIM_RNG_HH
#define JETSIM_SIM_RNG_HH

#include <cstdint>
#include <string_view>

namespace jetsim::sim {

/**
 * Envelope for bounded lognormal jitter draws: lognormalBounded()
 * never returns outside [mean / kLognormalEnvelope,
 * mean * kLognormalEnvelope]. The clamp binds with probability
 * < 1e-9 per draw at the coefficients of variation the simulator
 * uses (cv <= 0.35), so sampled behaviour is unchanged in practice —
 * but it turns the distribution's unbounded tail into a *proven*
 * envelope the static bound analyzer (src/absint) builds sound
 * worst-case latencies from.
 */
inline constexpr double kLognormalEnvelope = 8.0;

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Cheap to copy; each component typically owns a fork()ed child so
 * that adding draws in one component never perturbs another.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box-Muller, one value per call). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal variate parameterised by the *target* mean and the
     * coefficient of variation of the resulting distribution — the
     * natural parameterisation for latency jitter.
     */
    double lognormal(double mean, double cv);

    /**
     * lognormal() clamped to the kLognormalEnvelope band around the
     * mean. All latency-jitter draws in the simulator use this form
     * so worst cases are boundable (see src/absint).
     */
    double lognormalBounded(double mean, double cv);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Deterministically derive an independent child generator. The
     * label participates in the derivation so distinct subsystems
     * seeded from the same parent do not correlate.
     */
    Rng fork(std::string_view label);

  private:
    std::uint64_t s_[4];
};

/** Stable 64-bit FNV-1a hash of a string, used for seed derivation. */
std::uint64_t hashLabel(std::string_view label);

} // namespace jetsim::sim

#endif // JETSIM_SIM_RNG_HH
