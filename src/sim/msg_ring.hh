/**
 * @file
 * MsgRing: bounded lock-free MPSC inbox for the sharded event core.
 *
 * Shape: a Vyukov-style bounded ring (per-cell sequence numbers, CAS
 * on the producer cursor) backed by an unbounded overflow path built
 * from arena-batched node blocks on a Treiber stack. Producers are
 * the shards executing an epoch in parallel; the single consumer is
 * the engine coordinator draining at quiescent points (epoch
 * boundaries, behind the barrier). No mutex anywhere: a full ring
 * diverts to the overflow stack instead of blocking, because the
 * consumer only drains *between* epochs — a producer spinning on a
 * full ring would deadlock against a consumer that is itself parked
 * at the barrier waiting for that producer.
 *
 * Delivery order is deliberately unspecified: every message carries
 * its own deterministic dispatch key (when, priority, packed seq) and
 * lands in a binary heap, so the ring only has to hand messages over,
 * never to order them. That is what makes the LIFO overflow stack and
 * the FIFO ring freely mixable.
 *
 * ABA safety is structural, not tagged: producers may *pop* the node
 * freelist and *push* the overflow stack during the parallel phase;
 * the consumer *pushes* the freelist and *pops* the overflow stack
 * only at quiescent points (no producer running). A node can
 * therefore never be recycled back onto the freelist while a
 * concurrent pop holds a stale snapshot of it, and Treiber pushes are
 * ABA-immune by construction. Fresh nodes entering the freelist
 * mid-phase come only from newly malloc'd blocks, which by definition
 * were never observed before.
 *
 * jetrace sees exactly what is here: std::atomic cells and cursors
 * (synchronisation is the type), zero capabilities, zero lock-graph
 * nodes — the `shard-lock-not-leaf` discipline is vacuous for the
 * engine once this replaces the mutexed inbox.
 */

#ifndef JETSIM_SIM_MSG_RING_HH
#define JETSIM_SIM_MSG_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "core/hot_annotations.hh"
#include "sim/logging.hh"

namespace jetsim::sim {

/** Bounded lock-free MPSC queue with arena-batched overflow. */
template <typename T>
class MsgRing
{
  public:
    /** Nodes per overflow block: one malloc buys a batch, so a burst
     * past the ring costs ~1/64th of an allocation per message. */
    static constexpr std::size_t kBlockNodes = 64;

    explicit MsgRing(std::size_t capacity = 256)
        : mask_(capacity - 1),
          cells_(new Cell[capacity])
    {
        JETSIM_ASSERT(capacity >= 2 &&
                      (capacity & (capacity - 1)) == 0);
        for (std::size_t i = 0; i < capacity; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    MsgRing(const MsgRing &) = delete;
    MsgRing &operator=(const MsgRing &) = delete;

    ~MsgRing()
    {
        // Quiescent by contract (engine teardown): drop anything
        // still queued, then release the arena blocks.
        drain([](T &&) {});
        delete[] cells_;
        Block *b = blocks_.load(std::memory_order_relaxed);
        while (b != nullptr) {
            Block *next = b->next;
            delete b;
            b = next;
        }
    }

    std::size_t capacity() const { return mask_ + 1; }

    /**
     * Producer side; safe from any thread. Never blocks, never
     * fails: messages past the ring's capacity take the overflow
     * stack (counted in overflowed()).
     */
    JETSIM_HOT void
    push(T v)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            if (seq == pos) {
                // jethot: allow(hot-spin) Vyukov claim CAS: a retry means another producer claimed the cell — lock-free, not a wait loop
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    ::new (cell.storage()) T(std::move(v));
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return;
                }
                // pos reloaded by the failed CAS; retry.
            } else if (seq < pos) {
                // Cell still holds an undrained message from a lap
                // ago: the ring is full. Divert — do not spin; the
                // consumer only drains between epochs.
                pushOverflow(std::move(v));
                return;
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Consumer side; single-threaded, quiescent points only (no
     * producer running — the engine's barrier provides this).
     * Invokes @p fn on every queued message, in no particular order,
     * and recycles overflow nodes onto the freelist.
     * @return messages delivered.
     */
    template <typename Fn>
    JETSIM_HOT std::size_t
    drain(Fn &&fn)
    {
        std::size_t n = 0;
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            if (cell.seq.load(std::memory_order_acquire) != pos + 1)
                break;
            T *v = std::launder(
                reinterpret_cast<T *>(cell.storage()));
            fn(std::move(*v));
            v->~T();
            cell.seq.store(pos + capacity(),
                           std::memory_order_release);
            ++pos;
            ++n;
        }
        head_.store(pos, std::memory_order_relaxed);

        Node *node =
            over_head_.exchange(nullptr, std::memory_order_acquire);
        while (node != nullptr) {
            Node *next = node->next.load(std::memory_order_relaxed);
            T *v = std::launder(
                reinterpret_cast<T *>(node->storage()));
            fn(std::move(*v));
            v->~T();
            // Quiescent: no producer is popping, a plain splice is
            // race-free (still via atomics for the tooling's sake).
            node->next.store(
                free_head_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            free_head_.store(node, std::memory_order_release);
            node = next;
            ++n;
        }
        return n;
    }

    /** Lifetime count of messages that missed the ring. */
    std::uint64_t
    overflowed() const
    {
        return overflowed_.load(std::memory_order_relaxed);
    }

    /** Arena blocks allocated for the overflow path. */
    std::uint64_t
    blocksAllocated() const
    {
        return blocks_allocated_.load(std::memory_order_relaxed);
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq;
        alignas(T) unsigned char raw[sizeof(T)];
        void *storage() { return raw; }
    };

    struct Node
    {
        // Atomic: a producer losing the freelist-pop race reads a
        // stale next pointer while the winner is already relinking
        // the node onto the overflow stack. The stale value is
        // discarded (the CAS fails), but the read itself must be
        // atomic to be defined.
        std::atomic<Node *> next{nullptr};
        alignas(T) unsigned char raw[sizeof(T)];
        void *storage() { return raw; }
    };

    /** One arena batch; lives until the ring is destroyed. */
    struct Block
    {
        Block *next = nullptr;
        Node nodes[kBlockNodes];
    };

    Node *
    popFree()
    {
        Node *n = free_head_.load(std::memory_order_acquire);
        // jethot: allow(hot-spin) Treiber pop CAS: retries only when another producer popped first — lock-free progress, not waiting
        while (n != nullptr &&
               !free_head_.compare_exchange_weak(
                   n, n->next.load(std::memory_order_relaxed),
                   std::memory_order_acquire,
                   std::memory_order_acquire))
        {
        }
        return n;
    }

    JETSIM_COLD_OK("ring-full overflow: one malloc buys a 64-node arena block, counted by overflowed()/blocksAllocated()")
    void
    pushOverflow(T v)
    {
        overflowed_.fetch_add(1, std::memory_order_relaxed);
        Node *node = popFree();
        if (node == nullptr) {
            // Freelist dry: buy a block, keep one node, donate the
            // rest. The donated chain is fresh memory, so concurrent
            // freelist pops can never hold a stale view of it.
            Block *blk = new Block;
            blocks_allocated_.fetch_add(1,
                                        std::memory_order_relaxed);
            Block *bh = blocks_.load(std::memory_order_relaxed);
            do {
                blk->next = bh;
            } while (!blocks_.compare_exchange_weak(
                bh, blk, std::memory_order_release,
                std::memory_order_relaxed));
            node = &blk->nodes[0];
            for (std::size_t i = 2; i < kBlockNodes; ++i)
                blk->nodes[i - 1].next.store(
                    &blk->nodes[i], std::memory_order_relaxed);
            Node *chain_head = &blk->nodes[1];
            Node *chain_tail = &blk->nodes[kBlockNodes - 1];
            Node *fh = free_head_.load(std::memory_order_relaxed);
            do {
                chain_tail->next.store(fh,
                                       std::memory_order_relaxed);
            } while (!free_head_.compare_exchange_weak(
                fh, chain_head, std::memory_order_release,
                std::memory_order_relaxed));
        }
        ::new (node->storage()) T(std::move(v));
        Node *oh = over_head_.load(std::memory_order_relaxed);
        do {
            node->next.store(oh, std::memory_order_relaxed);
        } while (!over_head_.compare_exchange_weak(
            oh, node, std::memory_order_release,
            std::memory_order_relaxed));
    }

    const std::size_t mask_;
    Cell *const cells_;
    alignas(64) std::atomic<std::size_t> tail_{0}; ///< producers
    alignas(64) std::atomic<std::size_t> head_{0}; ///< consumer
    alignas(64) std::atomic<Node *> over_head_{nullptr};
    std::atomic<Node *> free_head_{nullptr};
    std::atomic<Block *> blocks_{nullptr};
    std::atomic<std::uint64_t> overflowed_{0};
    std::atomic<std::uint64_t> blocks_allocated_{0};
};

} // namespace jetsim::sim

#endif // JETSIM_SIM_MSG_RING_HH
