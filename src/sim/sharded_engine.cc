#include "sim/sharded_engine.hh"

#include <algorithm>

#include "core/hot_annotations.hh"
#include "sim/logging.hh"

namespace jetsim::sim {

namespace {
constexpr const char *kComponent = "sim.sharded_engine";
} // namespace

ShardedEngine::ShardedEngine(Options opts)
{
    JETSIM_ASSERT(opts.shards >= 1);
    JETSIM_ASSERT(opts.threads >= 1);
    JETSIM_ASSERT(opts.lookahead >= 0);
    shards_.reserve(static_cast<std::size_t>(opts.shards));
    for (int s = 0; s < opts.shards; ++s)
        shards_.push_back(std::make_unique<Shard>(opts.inbox_capacity));
    threads_ = std::min(opts.threads, opts.shards);
    lookahead_ = opts.lookahead;
    batch_windows_ = opts.batch_windows;
    scratch_.resize(static_cast<std::size_t>(opts.shards));
}

ShardedEngine::~ShardedEngine()
{
    stopWorkers();
    // Undelivered messages (posts past the last runUntil target) are
    // dropped with their captured state; the queues destroy their own
    // pending events and the rings their own blocks.
}

EventQueue &
ShardedEngine::shard(int s)
{
    JETSIM_ASSERT(s >= 0 && s < shards());
    return shards_[static_cast<std::size_t>(s)]->eq;
}

int
ShardedEngine::addPort(int shard_idx, bool local_only)
{
    JETSIM_ASSERT(shard_idx >= 0 && shard_idx < shards());
    JETSIM_ASSERT(static_cast<int>(port_shard_.size()) < kMaxPorts);
    port_shard_.push_back(shard_idx);
    port_local_.push_back(local_only);
    port_count_.push_back(0);
    if (!local_only)
        shards_[static_cast<std::size_t>(shard_idx)]->posts = true;
    return static_cast<int>(port_shard_.size()) - 1;
}

JETSIM_HOT void
ShardedEngine::post(int src_port, int dst_shard, Tick when,
                    EventQueue::Callback cb, int priority)
{
    JETSIM_ASSERT(src_port >= 0 &&
                  src_port < static_cast<int>(port_shard_.size()));
    JETSIM_ASSERT(dst_shard >= 0 && dst_shard < shards());
    JETSIM_ASSERT(static_cast<bool>(cb));
    const int src_shard = port_shard_[static_cast<std::size_t>(src_port)];
    const bool local_only =
        port_local_[static_cast<std::size_t>(src_port)];
    // A local_only port never crosses shards: that is what exempts
    // its shard from the gmin_post horizon bound.
    JETSIM_ASSERT(!local_only || dst_shard == src_shard);
    Shard &src = *shards_[static_cast<std::size_t>(src_shard)];
    // The conservative bound: a message must not land inside the
    // horizon the epoch that sent it was allowed to run under. With
    // lookahead 0 (merge mode) one tick of latency still keeps the
    // dispatch-key order shard-count-invariant; a local_only post is
    // a same-heap insert, so one tick suffices at any lookahead.
    const Tick min_delay =
        local_only ? 1 : (lookahead_ > 0 ? lookahead_ : 1);
    if (when < src.eq.now() + min_delay) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::Causality, kComponent,
                         src.eq.now(),
                         "cross-shard post at when=%lld violates the "
                         "lookahead bound (src now=%lld, min "
                         "delay=%lld)",
                         static_cast<long long>(when),
                         static_cast<long long>(src.eq.now()),
                         static_cast<long long>(min_delay));
        when = src.eq.now() + min_delay; // sanitise for Log mode
    }
    // Deterministic low-band seq: (port, per-port counter) — a pure
    // function of what the simulation sent, never of when the epoch
    // protocol delivers it. The counter is written only from the
    // port's own shard, so no synchronisation is needed.
    auto &count = port_count_[static_cast<std::size_t>(src_port)];
    const std::uint64_t seq =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             src_port))
         << 32) |
        count++;
    JETSIM_ASSERT(seq < EventQueue::kMessageSeqLimit);

    Shard &dst = *shards_[static_cast<std::size_t>(dst_shard)];
    if (dst_shard == src_shard || threads_ == 1) {
        // Same shard — or everything runs on the caller thread (merge
        // mode and single-threaded epochs): insert directly. The
        // cache min-update keeps next_when exact even when the
        // destination's slice (or an idle skip) already refreshed it
        // this round — without it a single-threaded cross-shard post
        // into an earlier-indexed shard would go stale-late.
        dst.eq.scheduleMessage(when, std::move(cb), priority, seq);
        if (when < dst.next_when.load(std::memory_order_relaxed))
            dst.next_when.store(when, std::memory_order_relaxed);
        return;
    }
    msgs_pending_.fetch_add(1, std::memory_order_relaxed);
    dst.inbox.push(Msg{when, priority, seq, std::move(cb)});
}

JETSIM_HOT void
ShardedEngine::deliverInboxes()
{
    std::uint64_t delivered = 0;
    for (auto &sp : shards_) {
        Shard &s = *sp;
        Tick min_when = s.next_when.load(std::memory_order_relaxed);
        const std::size_t k = s.inbox.drain([&](Msg &&m) {
            if (m.when < min_when)
                min_when = m.when;
            s.eq.scheduleMessage(m.when, std::move(m.cb), m.priority,
                                 m.seq);
        });
        if (k != 0) {
            s.next_when.store(min_when, std::memory_order_relaxed);
            max_inbox_ =
                std::max(max_inbox_, static_cast<std::uint64_t>(k));
            delivered += k;
        }
    }
    if (delivered != 0)
        msgs_pending_.fetch_sub(delivered, std::memory_order_relaxed);
}

void
ShardedEngine::refreshCache(Shard &sh)
{
    EventQueue::NextEvent e;
    sh.next_when.store(sh.eq.peekNext(e) ? e.when : kTickMax,
                       std::memory_order_relaxed);
}

void
ShardedEngine::refreshAll()
{
    // Public entry points resync every cache: the user may have
    // scheduled or cancelled events directly on the shard queues
    // since the last run.
    for (auto &sp : shards_)
        refreshCache(*sp);
}

JETSIM_HOT void
ShardedEngine::reduceMins(Tick &gmin, Tick &gmin_post)
{
    // Tournament (pairwise bracket) min-reduction over the cached
    // per-shard next-event times: two lanes, one over every shard
    // (gmin — the earliest work anywhere) and one over the shards
    // that own a cross-shard source port (gmin_post — the earliest
    // tick at which anything *could* post). Reading K relaxed atomics
    // beats K heap peeks; the bracket keeps each round's operands
    // adjacent in the scratch vector.
    const int k = shards();
    for (int s = 0; s < k; ++s) {
        const Shard &sh = *shards_[static_cast<std::size_t>(s)];
        const Tick w = sh.next_when.load(std::memory_order_relaxed);
        scratch_[static_cast<std::size_t>(s)] = {
            w, sh.posts ? w : kTickMax};
    }
    for (int width = k; width > 1;) {
        const int half = (width + 1) / 2;
        for (int i = 0; i + half < width; ++i) {
            auto &a = scratch_[static_cast<std::size_t>(i)];
            const auto &b =
                scratch_[static_cast<std::size_t>(i + half)];
            a.first = std::min(a.first, b.first);
            a.second = std::min(a.second, b.second);
        }
        width = half;
    }
    gmin = scratch_[0].first;
    gmin_post = scratch_[0].second;
}

bool
ShardedEngine::nextEventTime(Tick &when)
{
    if (msgs_pending_.load(std::memory_order_relaxed) != 0)
        deliverInboxes();
    // Exact peek sweep (not the caches): this is a public query and
    // must see events parked at kTickMax, which the cache sentinel
    // cannot distinguish from empty.
    bool any = false;
    EventQueue::NextEvent e;
    for (auto &sp : shards_) {
        refreshCache(*sp);
        if (!sp->eq.peekNext(e))
            continue;
        if (!any || e.when < when)
            when = e.when;
        any = true;
    }
    return any;
}

std::uint64_t
ShardedEngine::runUntil(Tick target)
{
    std::uint64_t n = 0;
    if (shards() == 1) {
        // Single shard: the engine is exactly one EventQueue; run it
        // directly (no merge bookkeeping, no barrier, no caches).
        // The queue handles an installed Chooser itself.
        n = shards_[0]->eq.runUntil(target);
        refreshCache(*shards_[0]);
        return n;
    }
    refreshAll();
    n = chooser_ != nullptr || lookahead_ == 0 ? runMerge(target)
                                               : runEpochs(target);
    // Advance every shard clock to exactly the target (mirrors
    // EventQueue::runUntil semantics); nothing is pending at or
    // before it. Idle-skipped shards catch up here too.
    for (auto &sp : shards_)
        if (sp->eq.now() < target)
            sp->eq.runUntil(target);
    return n;
}

JETSIM_HOT std::uint64_t
ShardedEngine::runEpochs(Tick target)
{
    std::uint64_t n = 0;
    for (;;) {
        if (msgs_pending_.load(std::memory_order_relaxed) != 0)
            deliverInboxes();
        Tick gmin = kTickMax;
        Tick gmin_post = kTickMax;
        reduceMins(gmin, gmin_post);
        // gmin == kTickMax: nothing schedulable below the sentinel.
        // (An event *at* kTickMax is indistinguishable from empty
        // here; runUntil's final clock sync — or runAll's saturated
        // tail merge — executes those.)
        if (gmin >= kTickMax || gmin > target)
            return n;
        // Safety argument: every cross-shard post originates on a
        // shard that owns a non-local port, whose events this epoch
        // all run at when >= gmin_post — so the message lands at
        // when >= gmin_post + L >= horizon. Shards without such a
        // port can run arbitrarily far ahead, which is what fuses
        // multiple lookahead windows into one barrier when
        // gmin_post >> gmin (adaptive epoch batching).
        const Tick cap = target >= kTickMax ? kTickMax : target + 1;
        Tick horizon =
            std::min(cap, gmin_post > kTickMax - lookahead_
                              ? kTickMax
                              : gmin_post + lookahead_);
        if (batch_windows_ != 0) {
            // Fuse at most batch_windows lookahead windows past gmin
            // (1 restores the classic single-window epoch exactly).
            const Tick span =
                lookahead_ >
                        kTickMax / static_cast<Tick>(batch_windows_)
                    ? kTickMax
                    : lookahead_ * static_cast<Tick>(batch_windows_);
            horizon = std::min(horizon, gmin > kTickMax - span
                                            ? kTickMax
                                            : gmin + span);
        }
        ++epochs_;
        if (threads_ == 1) {
            for (auto &sp : shards_) {
                Shard &sh = *sp;
                if (sh.next_when.load(std::memory_order_relaxed) >=
                    horizon)
                    continue; // idle shard: skip without touching it
                n += sh.eq.runUntil(horizon - 1);
                refreshCache(sh);
            }
        } else {
            startWorkers();
            executed_parallel_.store(0, std::memory_order_relaxed);
            horizon_.store(horizon, std::memory_order_relaxed);
            barrierArrive(start_, start_sense_);
            runShardSlice(0, horizon); // caller is worker 0
            barrierArrive(end_, end_sense_);
            barriers_ += 2;
            n += executed_parallel_.load(std::memory_order_relaxed);
        }
    }
}

JETSIM_HOT void
ShardedEngine::runShardSlice(int worker, Tick horizon)
{
    std::uint64_t n = 0;
    for (int s = worker; s < shards(); s += threads_) {
        Shard &sh = *shards_[static_cast<std::size_t>(s)];
        if (sh.next_when.load(std::memory_order_relaxed) >= horizon)
            continue; // idle shard: no dispatch, no clock advance
        n += sh.eq.runUntil(horizon - 1);
        refreshCache(sh); // published through the end barrier
    }
    if (n != 0)
        executed_parallel_.fetch_add(n, std::memory_order_relaxed);
}

JETSIM_HOT void
ShardedEngine::barrierArrive(Barrier &b, bool &local_sense)
{
    const bool s = !local_sense;
    local_sense = s;
    if (b.count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        threads_)
    {
        // Last arriver: reset the count *before* flipping the sense,
        // so no thread from the next crossing can observe the stale
        // count (they only proceed past the sense flip).
        b.count.store(0, std::memory_order_relaxed);
        b.sense.store(s, std::memory_order_release);
    } else {
        // jethot: allow(hot-spin, hot-io) sense-reversing barrier: the spin (and its yield) is the design, bounded by the slowest shard's slice
        while (b.sense.load(std::memory_order_acquire) != s)
            std::this_thread::yield();
    }
}

JETSIM_HOT void
ShardedEngine::workerLoop(int worker)
{
    bool start_sense = false;
    bool end_sense = false;
    for (;;) {
        barrierArrive(start_, start_sense);
        if (stop_.load(std::memory_order_acquire))
            return;
        runShardSlice(worker,
                      horizon_.load(std::memory_order_relaxed));
        barrierArrive(end_, end_sense);
    }
}

JETSIM_COLD_OK("once per run: worker threads spawned lazily at the first parallel epoch, reused until stopWorkers()")
void
ShardedEngine::startWorkers()
{
    if (!workers_.empty() || threads_ <= 1)
        return;
    // No workers exist yet, so the barrier state can be reset
    // race-free (it also recovers from a previous stopWorkers()).
    start_.count.store(0, std::memory_order_relaxed);
    start_.sense.store(false, std::memory_order_relaxed);
    end_.count.store(0, std::memory_order_relaxed);
    end_.sense.store(false, std::memory_order_relaxed);
    start_sense_ = false;
    end_sense_ = false;
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
ShardedEngine::stopWorkers()
{
    if (workers_.empty())
        return;
    // Workers park at the start barrier between epochs; one extra
    // crossing with stop_ raised releases them.
    stop_.store(true, std::memory_order_release);
    barrierArrive(start_, start_sense_);
    for (auto &t : workers_)
        t.join();
    workers_.clear();
    stop_.store(false, std::memory_order_release);
}

bool
ShardedEngine::mergeOne(Tick target)
{
    // Candidate = the shards whose *cached* next-event time equals
    // the cached minimum; peek only those, validating the cache on
    // the way (a cancel can leave it stale-early — refresh and
    // retry). Execute the globally smallest (when, priority, seq,
    // shard). Cross-shard ties on the (when, priority) prefix are the
    // ShardMerge arbitration sites: the default (alternative 0) is
    // the smallest (seq, shard), which the epoch path reproduces by
    // construction — message seqs order messages, and cross-shard
    // *local* ties are independent events whose order is unobservable
    // (DESIGN.md §4i).
    for (;;) {
        Tick m = kTickMax;
        for (auto &sp : shards_)
            m = std::min(
                m, sp->next_when.load(std::memory_order_relaxed));
        if (m > target)
            return false;

        int best = -1;
        EventQueue::NextEvent best_e;
        bool stale = false;
        for (int s = 0; s < shards(); ++s) {
            Shard &sh = *shards_[static_cast<std::size_t>(s)];
            // m == kTickMax: the sentinel cannot distinguish an
            // event parked at kTickMax from an empty shard — peek
            // everything (rare: only the saturated drain tail).
            if (m < kTickMax &&
                sh.next_when.load(std::memory_order_relaxed) != m)
                continue;
            EventQueue::NextEvent e;
            if (!sh.eq.peekNext(e)) {
                // Empty shard: only stale if the cache claimed work
                // (a drained shard at the kTickMax sentinel is the
                // steady state of the m == kTickMax sweep, not a
                // cache miss — flagging it would spin forever).
                if (sh.next_when.load(std::memory_order_relaxed) !=
                    kTickMax)
                {
                    refreshCache(sh);
                    stale = true;
                }
                continue;
            }
            if (e.when != m) {
                refreshCache(sh); // stale-early cache: fix, rescan
                stale = true;
                continue;
            }
            if (best < 0 || e.priority < best_e.priority ||
                (e.priority == best_e.priority && e.seq < best_e.seq))
            {
                best = s;
                best_e = e;
            }
        }
        if (best < 0) {
            if (stale)
                continue; // minimum moved under us: recompute
            return false; // genuinely nothing at or below target
        }

        int pick = best;
        if (chooser_ != nullptr) {
            // Collect every shard tied on the (when, priority)
            // prefix, default first, shard index as the actor tag.
            int cand[kMaxChoiceAlts];
            std::int64_t actors[kMaxChoiceAlts];
            int nc = 0;
            cand[nc] = best;
            actors[nc++] = best;
            for (int s = 0; s < shards() && nc < kMaxChoiceAlts;
                 ++s) {
                if (s == best)
                    continue;
                Shard &sh = *shards_[static_cast<std::size_t>(s)];
                EventQueue::NextEvent e;
                if (sh.eq.peekNext(e) && e.when == best_e.when &&
                    e.priority == best_e.priority)
                {
                    cand[nc] = s;
                    actors[nc++] = s;
                }
            }
            if (nc > 1) {
                const int c = chooser_->choose(ChoiceKind::ShardMerge,
                                               actors, nc);
                JETSIM_ASSERT(c >= 0 && c < nc);
                pick = cand[c];
            }
        }
        ++merge_steps_;
        Shard &psh = *shards_[static_cast<std::size_t>(pick)];
        const bool ran = psh.eq.runOne();
        JETSIM_ASSERT(ran);
        // The dispatched callback can only have scheduled into its
        // own shard (direct post inserts min-update theirs).
        refreshCache(psh);
        return true;
    }
}

std::uint64_t
ShardedEngine::runMerge(Tick target)
{
    std::uint64_t n = 0;
    for (;;) {
        if (msgs_pending_.load(std::memory_order_relaxed) != 0)
            deliverInboxes(); // posts buffer only when threads_ > 1,
                              // but stay correct under any config
        if (!mergeOne(target))
            return n;
        ++n;
    }
}

std::uint64_t
ShardedEngine::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    if (shards() == 1) {
        while (n < max_events && shards_[0]->eq.runOne())
            ++n;
        refreshCache(*shards_[0]);
        return n;
    }
    refreshAll();
    if (chooser_ != nullptr || lookahead_ == 0) {
        while (n < max_events) {
            if (msgs_pending_.load(std::memory_order_relaxed) != 0)
                deliverInboxes();
            if (!mergeOne(kTickMax))
                break;
            ++n;
        }
        return n;
    }
    Tick when = 0;
    while (n < max_events && nextEventTime(when)) {
        if (when > kTickMax - lookahead_) {
            // Saturated tail (events scheduled at or near kTickMax):
            // the epoch horizon cannot pass them, so merge serially.
            if (!mergeOne(kTickMax))
                break;
            ++n;
            continue;
        }
        // Epoch-drain: run one horizon past the current minimum.
        // runEpochs handles delivery, horizons and the barrier.
        n += runEpochs(when + lookahead_);
    }
    return n;
}

void
ShardedEngine::setChooser(Chooser *c)
{
    chooser_ = c;
    for (auto &sp : shards_)
        sp->eq.setChooser(c);
}

ShardedEngine::Stats
ShardedEngine::stats() const
{
    Stats st;
    st.shards = static_cast<int>(shards_.size());
    st.threads = threads_;
    st.lookahead = lookahead_;
    st.epochs = epochs_;
    st.barriers = barriers_;
    st.merge_steps = merge_steps_;
    st.max_inbox = max_inbox_;
    for (const auto &sp : shards_) {
        st.executed += sp->eq.executed();
        st.ring_overflow += sp->inbox.overflowed();
    }
    for (const std::uint32_t c : port_count_)
        st.messages += c;
    return st;
}

} // namespace jetsim::sim
