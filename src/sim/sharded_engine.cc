#include "sim/sharded_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jetsim::sim {

namespace {
constexpr const char *kComponent = "sim.sharded_engine";
} // namespace

ShardedEngine::ShardedEngine(Options opts)
{
    JETSIM_ASSERT(opts.shards >= 1);
    JETSIM_ASSERT(opts.threads >= 1);
    JETSIM_ASSERT(opts.lookahead >= 0);
    shards_.reserve(static_cast<std::size_t>(opts.shards));
    for (int s = 0; s < opts.shards; ++s)
        shards_.push_back(std::make_unique<Shard>());
    threads_ = std::min(opts.threads, opts.shards);
    lookahead_ = opts.lookahead;
}

ShardedEngine::~ShardedEngine()
{
    stopWorkers();
    // Undelivered messages (posts past the last runUntil target) are
    // dropped with their captured state; the queues destroy their own
    // pending events.
}

EventQueue &
ShardedEngine::shard(int s)
{
    JETSIM_ASSERT(s >= 0 && s < shards());
    return shards_[static_cast<std::size_t>(s)]->eq;
}

int
ShardedEngine::addPort(int shard_idx)
{
    JETSIM_ASSERT(shard_idx >= 0 && shard_idx < shards());
    JETSIM_ASSERT(static_cast<int>(port_shard_.size()) < kMaxPorts);
    port_shard_.push_back(shard_idx);
    port_count_.push_back(0);
    return static_cast<int>(port_shard_.size()) - 1;
}

void
ShardedEngine::post(int src_port, int dst_shard, Tick when,
                    EventQueue::Callback cb, int priority)
{
    JETSIM_ASSERT(src_port >= 0 &&
                  src_port < static_cast<int>(port_shard_.size()));
    JETSIM_ASSERT(dst_shard >= 0 && dst_shard < shards());
    JETSIM_ASSERT(static_cast<bool>(cb));
    const int src_shard = port_shard_[static_cast<std::size_t>(src_port)];
    Shard &src = *shards_[static_cast<std::size_t>(src_shard)];
    // The conservative bound: a message must not land inside the
    // horizon the epoch that sent it was allowed to run under. With
    // lookahead 0 (merge mode) one tick of latency still keeps the
    // dispatch-key order shard-count-invariant.
    const Tick min_delay = lookahead_ > 0 ? lookahead_ : 1;
    if (when < src.eq.now() + min_delay) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::Causality, kComponent,
                         src.eq.now(),
                         "cross-shard post at when=%lld violates the "
                         "lookahead bound (src now=%lld, min "
                         "delay=%lld)",
                         static_cast<long long>(when),
                         static_cast<long long>(src.eq.now()),
                         static_cast<long long>(min_delay));
        when = src.eq.now() + min_delay; // sanitise for Log mode
    }
    // Deterministic low-band seq: (port, per-port counter) — a pure
    // function of what the simulation sent, never of when the epoch
    // protocol delivers it. The counter is written only from the
    // port's own shard, so no synchronisation is needed.
    auto &count = port_count_[static_cast<std::size_t>(src_port)];
    const std::uint64_t seq =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             src_port))
         << 32) |
        count++;
    JETSIM_ASSERT(seq < EventQueue::kMessageSeqLimit);

    Shard &dst = *shards_[static_cast<std::size_t>(dst_shard)];
    if (dst_shard == src_shard || threads_ == 1) {
        // Same shard — or everything runs on the caller thread (merge
        // mode and single-threaded epochs): insert directly. when is
        // beyond anything the destination has dispatched, so the key
        // order is identical to the buffered path.
        dst.eq.scheduleMessage(when, std::move(cb), priority, seq);
        return;
    }
    core::LockGuard lock(dst.shard_mu_);
    dst.inbox.push_back(Msg{when, priority, seq, std::move(cb)});
}

void
ShardedEngine::deliverInboxes()
{
    for (auto &sp : shards_) {
        Shard &s = *sp;
        {
            core::LockGuard lock(s.shard_mu_);
            std::swap(s.inbox, s.staged);
        }
        if (s.staged.empty())
            continue;
        max_inbox_ = std::max(max_inbox_,
                              static_cast<std::uint64_t>(
                                  s.staged.size()));
        for (auto &m : s.staged)
            s.eq.scheduleMessage(m.when, std::move(m.cb), m.priority,
                                 m.seq);
        s.staged.clear(); // keeps capacity: no steady-state alloc
    }
}

bool
ShardedEngine::peekShard(int s, EventQueue::NextEvent &out)
{
    return shards_[static_cast<std::size_t>(s)]->eq.peekNext(out);
}

bool
ShardedEngine::nextEventTime(Tick &when)
{
    deliverInboxes();
    bool any = false;
    EventQueue::NextEvent e;
    for (int s = 0; s < shards(); ++s) {
        if (!peekShard(s, e))
            continue;
        if (!any || e.when < when)
            when = e.when;
        any = true;
    }
    return any;
}

std::uint64_t
ShardedEngine::runUntil(Tick target)
{
    std::uint64_t n = chooser_ != nullptr || lookahead_ == 0 ||
                              shards() == 1
                          ? runMerge(target)
                          : runEpochs(target);
    // Advance every shard clock to exactly the target (mirrors
    // EventQueue::runUntil semantics); nothing is pending at or
    // before it.
    for (auto &sp : shards_)
        if (sp->eq.now() < target)
            sp->eq.runUntil(target);
    return n;
}

std::uint64_t
ShardedEngine::runEpochs(Tick target)
{
    std::uint64_t n = 0;
    for (;;) {
        deliverInboxes();
        Tick gmin = 0;
        {
            bool any = false;
            EventQueue::NextEvent e;
            for (int s = 0; s < shards(); ++s) {
                if (!peekShard(s, e))
                    continue;
                if (!any || e.when < gmin)
                    gmin = e.when;
                any = true;
            }
            if (!any || gmin > target)
                return n;
        }
        // Safety argument: every event executing this epoch has
        // when >= gmin, so any message it posts lands at
        // when >= gmin + lookahead >= horizon — outside the epoch.
        const Tick cap = target >= kTickMax ? kTickMax : target + 1;
        const Tick reach = gmin > kTickMax - lookahead_
                               ? kTickMax
                               : gmin + lookahead_;
        const Tick horizon = std::min(cap, reach);
        ++epochs_;
        if (threads_ == 1) {
            for (auto &sp : shards_)
                n += sp->eq.runUntil(horizon - 1);
        } else {
            startWorkers();
            executed_parallel_.store(0, std::memory_order_relaxed);
            pending_.store(threads_, std::memory_order_relaxed);
            horizon_.store(horizon, std::memory_order_relaxed);
            epoch_.fetch_add(1, std::memory_order_release);
            runShardSlice(0, horizon); // caller is worker 0
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            while (pending_.load(std::memory_order_acquire) != 0)
                std::this_thread::yield();
            n += executed_parallel_.load(std::memory_order_relaxed);
        }
    }
}

void
ShardedEngine::runShardSlice(int worker, Tick horizon)
{
    std::uint64_t n = 0;
    for (int s = worker; s < shards(); s += threads_)
        n += shards_[static_cast<std::size_t>(s)]->eq.runUntil(
            horizon - 1);
    if (n != 0)
        executed_parallel_.fetch_add(n, std::memory_order_relaxed);
}

void
ShardedEngine::workerLoop(int worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            std::this_thread::yield();
        }
        seen = epoch_.load(std::memory_order_acquire);
        runShardSlice(worker, horizon_.load(std::memory_order_relaxed));
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void
ShardedEngine::startWorkers()
{
    if (!workers_.empty() || threads_ <= 1)
        return;
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
ShardedEngine::stopWorkers()
{
    if (workers_.empty())
        return;
    stop_.store(true, std::memory_order_release);
    for (auto &t : workers_)
        t.join();
    workers_.clear();
    stop_.store(false, std::memory_order_release);
}

bool
ShardedEngine::mergeOne(Tick target)
{
    // Candidate = each shard's next key; execute the globally
    // smallest (when, priority, seq, shard). Cross-shard ties on the
    // (when, priority) prefix are the ShardMerge arbitration sites:
    // the default (alternative 0) is the smallest (seq, shard), which
    // the epoch path reproduces by construction — message seqs order
    // messages, and cross-shard *local* ties are independent events
    // whose order is unobservable (DESIGN.md §4i).
    int best = -1;
    EventQueue::NextEvent best_e;
    for (int s = 0; s < shards(); ++s) {
        EventQueue::NextEvent e;
        if (!peekShard(s, e))
            continue;
        if (best < 0 || e.when < best_e.when ||
            (e.when == best_e.when &&
             (e.priority < best_e.priority ||
              (e.priority == best_e.priority &&
               e.seq < best_e.seq)))) {
            best = s;
            best_e = e;
        }
    }
    if (best < 0 || best_e.when > target)
        return false;

    int pick = best;
    if (chooser_ != nullptr) {
        // Collect every shard tied on the (when, priority) prefix,
        // default first, shard index as the actor tag.
        int cand[kMaxChoiceAlts];
        std::int64_t actors[kMaxChoiceAlts];
        int nc = 0;
        cand[nc] = best;
        actors[nc++] = best;
        for (int s = 0; s < shards() && nc < kMaxChoiceAlts; ++s) {
            if (s == best)
                continue;
            EventQueue::NextEvent e;
            if (peekShard(s, e) && e.when == best_e.when &&
                e.priority == best_e.priority) {
                cand[nc] = s;
                actors[nc++] = s;
            }
        }
        if (nc > 1) {
            const int c =
                chooser_->choose(ChoiceKind::ShardMerge, actors, nc);
            JETSIM_ASSERT(c >= 0 && c < nc);
            pick = cand[c];
        }
    }
    ++merge_steps_;
    const bool ran = shards_[static_cast<std::size_t>(pick)]->eq.runOne();
    JETSIM_ASSERT(ran);
    return true;
}

std::uint64_t
ShardedEngine::runMerge(Tick target)
{
    std::uint64_t n = 0;
    for (;;) {
        deliverInboxes(); // posts buffer only when threads_ > 1, but
                          // stay correct under any configuration
        if (!mergeOne(target))
            return n;
        ++n;
    }
}

std::uint64_t
ShardedEngine::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    if (chooser_ != nullptr || lookahead_ == 0 || shards() == 1) {
        while (n < max_events) {
            deliverInboxes();
            if (!mergeOne(kTickMax))
                break;
            ++n;
        }
        return n;
    }
    Tick when = 0;
    while (n < max_events && nextEventTime(when)) {
        if (when > kTickMax - lookahead_) {
            // Saturated tail (events scheduled at or near kTickMax):
            // the epoch horizon cannot pass them, so merge serially.
            deliverInboxes();
            if (!mergeOne(kTickMax))
                break;
            ++n;
            continue;
        }
        // Epoch-drain: run one horizon past the current minimum.
        // runEpochs handles delivery, horizons and the barrier.
        n += runEpochs(when + lookahead_);
    }
    return n;
}

void
ShardedEngine::setChooser(Chooser *c)
{
    chooser_ = c;
    for (auto &sp : shards_)
        sp->eq.setChooser(c);
}

ShardedEngine::Stats
ShardedEngine::stats() const
{
    Stats st;
    st.shards = static_cast<int>(shards_.size());
    st.threads = threads_;
    st.lookahead = lookahead_;
    st.epochs = epochs_;
    st.merge_steps = merge_steps_;
    st.max_inbox = max_inbox_;
    for (const auto &sp : shards_)
        st.executed += sp->eq.executed();
    for (const std::uint32_t c : port_count_)
        st.messages += c;
    return st;
}

} // namespace jetsim::sim
