/**
 * @file
 * EventPool: slab/freelist storage for EventQueue events.
 *
 * Callbacks live in fixed-size slabs (stable addresses — callbacks
 * may schedule new events, growing the pool, while an event reference
 * is held). Freed slots are recycled through a LIFO freelist; each
 * free bumps the slot's generation counter so a stale Handle (index,
 * generation) pair becomes inert instead of aliasing the slot's next
 * occupant (the classic ABA hazard of pooled storage).
 *
 * Layout is split hot/cold on purpose:
 *  - per-slot liveness metadata (generation, cancelled) sits in a
 *    dense side array that stays cache-resident for the queue's
 *    cancelled-skip checks and handle validation;
 *  - the 64-byte slab slots hold only the callback, so growing the
 *    pool never touches slab memory — a slot's cache line is first
 *    written when a callback actually lands in it.
 * The ordering keys (when, priority, seq) travel inside the queue's
 * heap entries, so heap comparisons touch neither array.
 *
 * Under AddressSanitizer the callback storage of freed slots is
 * poisoned, so a use-after-free through a dangling event reference
 * trips ASan rather than reading recycled bytes.
 */

#ifndef JETSIM_SIM_EVENT_POOL_HH
#define JETSIM_SIM_EVENT_POOL_HH

#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "core/hot_annotations.hh"
#include "sim/inline_fn.hh"
#include "sim/types.hh"

#if defined(__SANITIZE_ADDRESS__)
#define JETSIM_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define JETSIM_POOL_ASAN 1
#endif
#endif

#ifdef JETSIM_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace jetsim::sim {

/** Generation-checked slab allocator for pending events. */
class EventPool
{
  public:
    using Index = std::uint32_t;
    static constexpr Index kInvalidIndex = 0xffffffffu;
    /** Events per slab (power of two: index maths stays shifts). */
    static constexpr std::uint32_t kSlabEvents = 256;

    /** One slot's callback storage; exactly one cache line. */
    struct alignas(64) Event
    {
        /** Manually managed: an InlineFn lives here only while the
         * slot is allocated (poisoned under ASan while free). */
        alignas(InlineFn) unsigned char cb_storage[sizeof(InlineFn)];

        InlineFn &
        cb()
        {
            return *std::launder(
                reinterpret_cast<InlineFn *>(cb_storage));
        }
    };

    /** Per-slot liveness record (dense side array, hot). */
    struct Meta
    {
        std::uint32_t gen = 0;
        bool cancelled = false;
    };

    EventPool() = default;
    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;
    ~EventPool();

    /** Take a slot and move @p cb into it. Never reuses a live slot. */
    Index
    alloc(InlineFn &&cb)
    {
        Index idx;
        if (!free_.empty()) {
            // Recycled slots first (LIFO: recently-hot lines).
            idx = free_.back();
            free_.pop_back();
        } else {
            // Never-used slots are handed out by bump pointer, so
            // growing never prefills a freelist.
            if (bump_ >= capacity())
                grow();
            idx = bump_++;
        }
        meta_[idx].cancelled = false;
        Event &e = at(idx);
        unpoisonCb(e);
        ::new (static_cast<void *>(e.cb_storage))
            InlineFn(std::move(cb));
        ++live_;
        return idx;
    }

    /** Destroy the slot's callback and recycle it (generation bump). */
    void
    free(Index idx)
    {
        Meta &m = meta_[idx];
        if (!m.cancelled)
            --live_; // freed while still pending (queue teardown)
        // A freed slot must never look pending to a stale handle that
        // guessed the new generation; cancelled also guards isPending.
        m.cancelled = true;
        recycle(idx, m, at(idx));
    }

    /**
     * Recycle a slot that markDispatched() already consumed — the
     * dispatch fast path: no liveness bookkeeping left to do. Takes
     * the already-resolved Event so dispatch chases the slab pointer
     * once, not three times.
     */
    void
    recycleDispatched(Index idx, Event &e)
    {
        recycle(idx, meta_[idx], e);
    }

    /** Pull the slot's lines toward the core before they're needed. */
    void
    prefetch(Index idx)
    {
        __builtin_prefetch(&meta_[idx]);
        __builtin_prefetch(&at(idx));
    }

    Event &
    at(Index idx)
    {
        return slabs_[idx / kSlabEvents]->events[idx % kSlabEvents];
    }

    /** Current generation of slot @p idx (for issuing handles). */
    std::uint32_t gen(Index idx) const { return meta_[idx].gen; }

    /** Was slot @p idx cancelled (or already consumed)? */
    bool cancelled(Index idx) const { return meta_[idx].cancelled; }

    /** True while (idx, gen) names a live, uncancelled event. */
    bool
    isPending(Index idx, std::uint32_t gen) const
    {
        if (idx >= meta_.size())
            return false;
        const Meta &m = meta_[idx];
        return m.gen == gen && !m.cancelled;
    }

    /**
     * Cancel (idx, gen) if still pending; inert on generation
     * mismatch (slot reused) or when already cancelled/fired.
     */
    void cancel(Index idx, std::uint32_t gen);

    /** Mark a dispatching event consumed (Handle reports !pending). */
    void
    markDispatched(Index idx)
    {
        meta_[idx].cancelled = true;
        --live_;
    }

    /** Live = allocated and not cancelled (the queue's pending()). */
    std::uint64_t liveCount() const { return live_; }

    /** Slots currently allocated (live + cancelled-but-queued). */
    std::uint64_t
    allocatedCount() const
    {
        return bump_ - free_.size();
    }

    /** Handles cancelled through cancel() over the pool's lifetime. */
    std::uint64_t cancelCount() const { return cancels_; }

    std::size_t slabCount() const { return slabs_.size(); }

    std::size_t
    capacity() const
    {
        return slabs_.size() * kSlabEvents;
    }

    /**
     * Release every slab, the metadata and the freelist. Requires
     * allocatedCount() == 0. Outstanding handles stay safe: their
     * indices exceed the (now zero) capacity, and the generation
     * floor carried into new slabs keeps recycled (index, generation)
     * pairs from ever matching a pre-release handle. Callers that
     * know no handle is outstanding pass @p handles_outstanding =
     * false to skip raising the floor (no stale pair can exist).
     */
    void releaseAll(bool handles_outstanding = true);

  private:
    struct Slab
    {
        Event events[kSlabEvents];
    };

    /** Cold path of alloc(): add a slab, refill the freelist. */
    void grow();

    /** Destroy the slot's callback, bump its generation, relist it. */
    void
    recycle(Index idx, Meta &m, Event &e)
    {
        e.cb().~InlineFn();
        poisonCb(e);
        ++m.gen;
        JETSIM_COLD_OK("amortized: freelist capacity tracks slab capacity, grown only by grow()")
        free_.push_back(idx);
    }

    static void
    poisonCb(Event &e)
    {
#ifdef JETSIM_POOL_ASAN
        ASAN_POISON_MEMORY_REGION(e.cb_storage, sizeof(e.cb_storage));
#else
        (void)e;
#endif
    }

    static void
    unpoisonCb(Event &e)
    {
#ifdef JETSIM_POOL_ASAN
        ASAN_UNPOISON_MEMORY_REGION(e.cb_storage,
                                    sizeof(e.cb_storage));
#else
        (void)e;
#endif
    }

    std::vector<std::unique_ptr<Slab>> slabs_;
    std::vector<Meta> meta_;
    /** Recycled slots only; never-used slots live past bump_. */
    std::vector<Index> free_;
    /** First never-used slot index (== used range's end). */
    Index bump_ = 0;
    std::uint64_t live_ = 0;
    std::uint64_t cancels_ = 0;
    /** Starting generation for slots of newly created slabs; raised
     * past every generation ever handed out when releaseAll() drops
     * the slabs, preserving ABA safety across a shrink. */
    std::uint32_t gen_floor_ = 0;
};

} // namespace jetsim::sim

#endif // JETSIM_SIM_EVENT_POOL_HH
