#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace jetsim::sim {

EventQueue::EventQueue()
    : life_(new detail::PoolLife{&pool_, 1})
{
    // One slab's worth up front: a fresh queue reaches steady state
    // without a cascade of doubling reallocations.
    heap_keys_.reserve(EventPool::kSlabEvents);
    heap_idx_.reserve(EventPool::kSlabEvents);
}

EventQueue::~EventQueue()
{
    // Free every queued slot (destroying the callbacks' captured
    // state) and drop the slabs, then detach the liveness block so
    // outstanding handles go inert; the last handle deletes it.
    for (const Index idx : heap_idx_)
        pool_.free(idx);
    heap_keys_.clear();
    heap_idx_.clear();
    pool_.releaseAll(life_->refs > 1);
    life_->pool = nullptr;
    if (--life_->refs == 0)
        delete life_;
}

EventQueue::Stats
EventQueue::stats() const
{
    checkPlausible();
    Stats s;
    s.pending = pool_.liveCount();
    s.peak_pending = peak_pending_;
    s.executed = executed_;
    s.cancelled = pool_.cancelCount();
    s.pool_slabs = pool_.slabCount();
    s.pool_capacity = pool_.capacity();
    s.heap_capacity = heap_keys_.capacity();
    s.sbo_misses = sbo_misses_;
    s.shrinks = shrinks_;
    return s;
}

void
EventQueue::checkPlausible() const
{
    JETSIM_CHECK(pool_.liveCount() <= pool_.allocatedCount(),
                 check::Severity::Error,
                 check::Invariant::Plausibility, detail::kEqComponent,
                 now_, "live events (%llu) exceed allocated slots (%llu)",
                 static_cast<unsigned long long>(pool_.liveCount()),
                 static_cast<unsigned long long>(
                     pool_.allocatedCount()));
    JETSIM_CHECK(pool_.allocatedCount() <= pool_.capacity(),
                 check::Severity::Error,
                 check::Invariant::Plausibility, detail::kEqComponent,
                 now_, "allocated slots (%llu) exceed pool capacity (%zu)",
                 static_cast<unsigned long long>(
                     pool_.allocatedCount()),
                 pool_.capacity());
    JETSIM_CHECK(pool_.liveCount() <= peak_pending_,
                 check::Severity::Error,
                 check::Invariant::Plausibility, detail::kEqComponent,
                 now_,
                 "pending (%llu) above recorded high-water mark (%llu)",
                 static_cast<unsigned long long>(pool_.liveCount()),
                 static_cast<unsigned long long>(peak_pending_));
}

void
EventQueue::shrink()
{
    checkPlausible();
    ++shrinks_;
    heap_keys_.shrink_to_fit();
    heap_idx_.shrink_to_fit();
    if (heap_keys_.empty() && pool_.allocatedCount() == 0)
        pool_.releaseAll(life_->refs > 1);
}

} // namespace jetsim::sim
