#include "sim/event_queue.hh"

#include "check/check.hh"
#include "sim/logging.hh"

namespace jetsim::sim {

namespace {
constexpr const char *kComponent = "sim.event_queue";
}

bool
EventQueue::Handle::pending() const
{
    auto e = entry_.lock();
    return e && !e->cancelled;
}

void
EventQueue::Handle::cancel()
{
    auto e = entry_.lock();
    if (e && !e->cancelled) {
        e->cancelled = true;
        --e->owner->live_;
    }
}

EventQueue::Handle
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now_) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::Causality, kComponent, now_,
                         "event scheduled into the past (when=%lld < "
                         "now=%lld)",
                         static_cast<long long>(when),
                         static_cast<long long>(now_));
        when = now_; // sanitise so Log mode can continue
    }
    JETSIM_ASSERT(cb != nullptr);
    auto entry = std::make_shared<Handle::Entry>();
    entry->owner = this;
    entry->when = when;
    entry->priority = priority;
    entry->seq = seq_++;
    entry->cb = std::move(cb);
    heap_.push(entry);
    ++live_;
    return Handle(entry);
}

EventQueue::Handle
EventQueue::scheduleIn(Tick delay, Callback cb, int priority)
{
    JETSIM_CHECK(delay >= 0, check::Severity::Error,
                 check::Invariant::Causality, kComponent, now_,
                 "negative delay %lld", static_cast<long long>(delay));
    if (delay < 0)
        delay = 0;
    // Saturate instead of overflowing past kTickMax (UB on int64).
    const Tick when =
        delay > kTickMax - now_ ? kTickMax : now_ + delay;
    return schedule(when, std::move(cb), priority);
}

EventQueue::EntryPtr
EventQueue::popLive()
{
    while (!heap_.empty()) {
        EntryPtr e = heap_.top();
        heap_.pop();
        if (e->cancelled)
            continue;
        --live_;
        return e;
    }
    return nullptr;
}

void
EventQueue::checkDispatch(const Handle::Entry &e)
{
    // Time must never run backwards, and same-tick events must leave
    // the heap in (priority, insertion-order) order — the strict-
    // weak-ordering contract of the comparator.
    JETSIM_CHECK(e.when >= now_, check::Severity::Error,
                 check::Invariant::Causality, kComponent, now_,
                 "dispatch went backwards in time (event at %lld)",
                 static_cast<long long>(e.when));
    if (e.when == last_when_) {
        // An event with a lower seq than the previous dispatch was
        // already in the heap back then; at equal-or-lower priority
        // the comparator should have popped it first. (A *higher*
        // priority value is fine: it legitimately runs later.)
        const bool ordered =
            !(e.seq < last_seq_ && e.priority <= last_priority_);
        JETSIM_CHECK(ordered, check::Severity::Error,
                     check::Invariant::Causality, kComponent, now_,
                     "same-tick dispatch out of order (pri=%d seq=%llu "
                     "after pri=%d seq=%llu)",
                     e.priority,
                     static_cast<unsigned long long>(e.seq),
                     last_priority_,
                     static_cast<unsigned long long>(last_seq_));
    }
    last_when_ = e.when;
    last_priority_ = e.priority;
    last_seq_ = e.seq;
}

bool
EventQueue::runOne()
{
    EntryPtr e = popLive();
    if (!e)
        return false;
    checkDispatch(*e);
    now_ = e->when;
    ++executed_;
    // Mark consumed so a Handle held by the callback's owner reports
    // !pending() during and after execution.
    e->cancelled = true;
    e->cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick horizon)
{
    JETSIM_CHECK(horizon >= now_, check::Severity::Error,
                 check::Invariant::Causality, kComponent, now_,
                 "runUntil horizon %lld is in the past",
                 static_cast<long long>(horizon));
    std::uint64_t n = 0;
    while (true) {
        EntryPtr e = popLive();
        if (!e)
            break;
        if (e->when > horizon) {
            // Put it back: not yet due.
            heap_.push(e);
            ++live_;
            break;
        }
        checkDispatch(*e);
        now_ = e->when;
        ++executed_;
        ++n;
        e->cancelled = true;
        e->cb();
    }
    if (horizon > now_)
        now_ = horizon;
    return n;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

} // namespace jetsim::sim
