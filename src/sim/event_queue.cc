#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace jetsim::sim {

bool
EventQueue::Handle::pending() const
{
    auto e = entry_.lock();
    return e && !e->cancelled;
}

void
EventQueue::Handle::cancel()
{
    auto e = entry_.lock();
    if (e && !e->cancelled) {
        e->cancelled = true;
        --e->owner->live_;
    }
}

EventQueue::Handle
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    JETSIM_ASSERT(when >= now_);
    JETSIM_ASSERT(cb != nullptr);
    auto entry = std::make_shared<Handle::Entry>();
    entry->owner = this;
    entry->when = when;
    entry->priority = priority;
    entry->seq = seq_++;
    entry->cb = std::move(cb);
    heap_.push(entry);
    ++live_;
    return Handle(entry);
}

EventQueue::Handle
EventQueue::scheduleIn(Tick delay, Callback cb, int priority)
{
    JETSIM_ASSERT(delay >= 0);
    return schedule(now_ + delay, std::move(cb), priority);
}

EventQueue::EntryPtr
EventQueue::popLive()
{
    while (!heap_.empty()) {
        EntryPtr e = heap_.top();
        heap_.pop();
        if (e->cancelled)
            continue;
        --live_;
        return e;
    }
    return nullptr;
}

bool
EventQueue::runOne()
{
    EntryPtr e = popLive();
    if (!e)
        return false;
    now_ = e->when;
    ++executed_;
    // Mark consumed so a Handle held by the callback's owner reports
    // !pending() during and after execution.
    e->cancelled = true;
    e->cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick horizon)
{
    JETSIM_ASSERT(horizon >= now_);
    std::uint64_t n = 0;
    while (true) {
        EntryPtr e = popLive();
        if (!e)
            break;
        if (e->when > horizon) {
            // Put it back: not yet due.
            heap_.push(e);
            ++live_;
            break;
        }
        now_ = e->when;
        ++executed_;
        ++n;
        e->cancelled = true;
        e->cb();
    }
    now_ = horizon;
    return n;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

} // namespace jetsim::sim
