#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace jetsim::sim {

EventQueue::EventQueue()
    : life_(new detail::PoolLife{&pool_, 1})
{
    // One slab's worth up front: a fresh queue reaches steady state
    // without a cascade of doubling reallocations.
    heap_keys_.reserve(EventPool::kSlabEvents);
    heap_idx_.reserve(EventPool::kSlabEvents);
}

EventQueue::~EventQueue()
{
    // Free every queued slot (destroying the callbacks' captured
    // state) and drop the slabs, then detach the liveness block so
    // outstanding handles go inert; the last handle deletes it.
    for (const Index idx : heap_idx_)
        pool_.free(idx);
    heap_keys_.clear();
    heap_idx_.clear();
    pool_.releaseAll(life_->refs > 1);
    life_->pool = nullptr;
    if (--life_->refs == 0)
        delete life_;
}

EventQueue::Stats
EventQueue::stats() const
{
    checkPlausible();
    Stats s;
    s.pending = pool_.liveCount();
    s.peak_pending = peak_pending_;
    s.executed = executed_;
    s.cancelled = pool_.cancelCount();
    s.pool_slabs = pool_.slabCount();
    s.pool_capacity = pool_.capacity();
    s.heap_capacity = heap_keys_.capacity();
    s.sbo_misses = sbo_misses_;
    s.shrinks = shrinks_;
    return s;
}

void
EventQueue::checkPlausible() const
{
    JETSIM_CHECK(pool_.liveCount() <= pool_.allocatedCount(),
                 check::Severity::Error,
                 check::Invariant::Plausibility, detail::kEqComponent,
                 now_, "live events (%llu) exceed allocated slots (%llu)",
                 static_cast<unsigned long long>(pool_.liveCount()),
                 static_cast<unsigned long long>(
                     pool_.allocatedCount()));
    JETSIM_CHECK(pool_.allocatedCount() <= pool_.capacity(),
                 check::Severity::Error,
                 check::Invariant::Plausibility, detail::kEqComponent,
                 now_, "allocated slots (%llu) exceed pool capacity (%zu)",
                 static_cast<unsigned long long>(
                     pool_.allocatedCount()),
                 pool_.capacity());
    JETSIM_CHECK(pool_.liveCount() <= peak_pending_,
                 check::Severity::Error,
                 check::Invariant::Plausibility, detail::kEqComponent,
                 now_,
                 "pending (%llu) above recorded high-water mark (%llu)",
                 static_cast<unsigned long long>(pool_.liveCount()),
                 static_cast<unsigned long long>(peak_pending_));
}

// Boundary, not hot: a Chooser is only installed under jetmc, whose
// harness (and whatever its choose() does) is audited by the model
// checker itself, never in steady-state serving.
JETSIM_HOT_BOUNDARY bool
EventQueue::runOneControlled()
{
    // Collect every live event tied with the top on the (when,
    // priority) prefix — the seq component is exactly the insertion
    // order a controlled scheduler is allowed to permute. Capped at
    // kMaxChoiceAlts: deeper ties keep their relative order and get
    // re-offered at the next pop, so every permutation is still
    // reachable through successive choices.
    HeapKey cand_key[kMaxChoiceAlts];
    Index cand_idx[kMaxChoiceAlts];
    std::int64_t actors[kMaxChoiceAlts];
    int n = 0;
    while (!heap_keys_.empty() && n < kMaxChoiceAlts) {
        const HeapKey key = heap_keys_.front();
        const Index idx = heap_idx_.front();
        if (pool_.cancelled(idx)) {
            heapPopTop();
            pool_.free(idx);
            continue;
        }
        if (n > 0 &&
            (key & ~HeapKey(kSeqMask)) !=
                (cand_key[0] & ~HeapKey(kSeqMask)))
            break;
        heapPopTop();
        cand_key[n] = key;
        cand_idx[n] = idx;
        actors[n] = kActorUnknown;
        ++n;
    }
    if (n == 0)
        return false;
    int pick = 0;
    if (n > 1)
        pick = chooser_->choose(ChoiceKind::EventTie, actors, n);
    JETSIM_ASSERT(pick >= 0 && pick < n);
    // Re-queue the rest with their original keys: relative order among
    // them (and against everything still queued) is unchanged.
    for (int i = 0; i < n; ++i)
        if (i != pick)
            heapPush(cand_key[i], cand_idx[i]);
    dispatch(cand_key[pick], cand_idx[pick]);
    return true;
}

void
EventQueue::shrink()
{
    checkPlausible();
    ++shrinks_;
    heap_keys_.shrink_to_fit();
    heap_idx_.shrink_to_fit();
    if (heap_keys_.empty() && pool_.allocatedCount() == 0)
        pool_.releaseAll(life_->refs > 1);
}

} // namespace jetsim::sim
