/**
 * @file
 * Lightweight statistics primitives shared across the simulator.
 *
 * `Accumulator` tracks streaming moments (Welford) plus min/max;
 * `TimeWeighted` integrates a piecewise-constant signal over
 * simulated time (used for utilisation-style metrics).
 */

#ifndef JETSIM_SIM_STATS_HH
#define JETSIM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace jetsim::sim {

/** Streaming mean/variance/min/max over a sequence of samples. */
class Accumulator
{
  public:
    /** Record one sample. */
    void
    sample(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    double stddev() const;

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Discard all samples. */
    void reset() { *this = Accumulator(); }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Time integral of a piecewise-constant signal. Feed level changes
 * with `set(now, level)`; `average(now)` yields the time-weighted mean
 * since construction (or the last reset).
 */
class TimeWeighted
{
  public:
    explicit TimeWeighted(Tick start = 0, double level = 0.0)
        : start_(start), last_(start), level_(level)
    {}

    /** Change the signal level at time @p now. */
    void
    set(Tick now, double level)
    {
        integral_ += level_ * static_cast<double>(now - last_);
        last_ = now;
        level_ = level;
    }

    /** Current level. */
    double level() const { return level_; }

    /** Integral of the signal from the window start to @p now. */
    double
    integral(Tick now) const
    {
        return integral_ + level_ * static_cast<double>(now - last_);
    }

    /** Time-weighted average level over [start, now]. */
    double
    average(Tick now) const
    {
        const double span = static_cast<double>(now - start_);
        return span > 0.0 ? integral(now) / span : level_;
    }

    /** Restart the averaging window at @p now, keeping the level. */
    void
    reset(Tick now)
    {
        start_ = now;
        last_ = now;
        integral_ = 0.0;
    }

  private:
    Tick start_;
    Tick last_;
    double level_;
    double integral_ = 0.0;
};

} // namespace jetsim::sim

#endif // JETSIM_SIM_STATS_HH
