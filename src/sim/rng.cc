#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace jetsim::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
hashLabel(std::string_view label)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random bits into the double mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    JETSIM_ASSERT(lo <= hi);
    // Width in unsigned arithmetic: `hi - lo` overflows int64 when
    // the bounds span more than half the type's range, and the +1
    // wraps to 0 for the full range (then `next() % span` would
    // divide by zero). Both are handled by staying unsigned and
    // special-casing the wrap.
    const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                               static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     next() % span);
}

double
Rng::normal()
{
    // Box-Muller; discard the second variate to stay stateless.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mean, double cv)
{
    JETSIM_ASSERT(mean > 0.0 && cv >= 0.0);
    if (cv == 0.0)
        return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * normal());
}

double
Rng::lognormalBounded(double mean, double cv)
{
    const double v = lognormal(mean, cv);
    const double lo = mean / kLognormalEnvelope;
    const double hi = mean * kLognormalEnvelope;
    return v < lo ? lo : (v > hi ? hi : v);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::string_view label)
{
    return Rng(next() ^ hashLabel(label));
}

} // namespace jetsim::sim
