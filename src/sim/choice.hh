/**
 * @file
 * Nondeterministic-choice points for controlled scheduling.
 *
 * The simulator is deterministic by construction: every arbitration —
 * same-tick event ties, the GPU channel rotation, the OS run-queue
 * pick — resolves to one fixed "default" alternative. That is the
 * right behaviour for profiling runs, but it means only a single
 * interleaving of a concurrent deployment is ever exercised.
 *
 * A Chooser makes those arbitration points explicit. When one is
 * installed on an EventQueue (the composition root every component
 * reaches through its Board), each arbitration site with two or more
 * legal alternatives asks the chooser which branch to take instead of
 * silently taking the default. The model checker (src/mc) installs a
 * trace-recording chooser and exhaustively explores the branch tree;
 * replaying a recorded choice script reproduces any interleaving
 * bit-for-bit.
 *
 * Contract for every site:
 *  - alternative 0 IS the default: a chooser that always returns 0
 *    must reproduce uncontrolled scheduling exactly, and when no
 *    chooser is installed the site must not even construct the
 *    alternative list (the hot path pays one null check);
 *  - alternatives carry an *actor* id identifying the model entity
 *    the branch would schedule (GPU channel index, interned thread
 *    name id); kActorUnknown when no entity is attributable (event
 *    ties between opaque callbacks). Actor ids feed the checker's
 *    independence relation, so they must be stable across runs of
 *    the same configuration.
 */

#ifndef JETSIM_SIM_CHOICE_HH
#define JETSIM_SIM_CHOICE_HH

#include <cstdint>

namespace jetsim::sim {

/** Which arbitration site is asking. */
enum class ChoiceKind : std::uint8_t {
    EventTie = 0,    ///< same-(tick,priority) event-queue tie break
    GpuChannel = 1,  ///< GpuEngine time-slice channel rotation
    CpuRunQueue = 2, ///< OsScheduler run-queue head pick
    ShardMerge = 3,  ///< ShardedEngine cross-shard same-(tick,
                     ///< priority) merge pick (serial-merge fallback)
};

/** Stable short name for traces and reports. */
inline const char *
name(ChoiceKind k)
{
    switch (k) {
      case ChoiceKind::EventTie:
        return "event-tie";
      case ChoiceKind::GpuChannel:
        return "gpu-channel";
      case ChoiceKind::CpuRunQueue:
        return "cpu-runq";
      case ChoiceKind::ShardMerge:
        return "shard-merge";
    }
    return "?";
}

/** Actor id when the alternative has no attributable model entity. */
inline constexpr std::int64_t kActorUnknown = -1;

/** Arbitration sites never offer more alternatives than this. */
inline constexpr int kMaxChoiceAlts = 8;

/**
 * Decision callback for controlled scheduling. Implementations live
 * in src/mc; the simulator only ever calls choose() from arbitration
 * sites with n >= 2 genuinely distinct alternatives.
 */
// jethot: boundary(choose) controlled-scheduling hook: a Chooser is only installed under jetmc, whose harness audits its own choose() implementations; steady-state serving never reaches one
class Chooser
{
  public:
    virtual ~Chooser() = default;

    /**
     * Pick one of @p n alternatives at a @p kind site. @p actors has
     * one entry per alternative (kActorUnknown when untagged);
     * alternative 0 is the default. Must return a value in [0, n).
     */
    virtual int choose(ChoiceKind kind, const std::int64_t *actors,
                       int n) = 0;
};

} // namespace jetsim::sim

#endif // JETSIM_SIM_CHOICE_HH
