/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * Events are callbacks scheduled at an absolute Tick. Events at the
 * same tick execute in (priority, insertion-order) order so that
 * component interactions are fully deterministic.
 */

#ifndef JETSIM_SIM_EVENT_QUEUE_HH
#define JETSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace jetsim::sim {

/**
 * Time-ordered queue of callbacks with deterministic tie-breaking.
 *
 * The queue owns the current simulated time: executing an event
 * advances `now()` to that event's tick. Scheduling into the past is
 * an internal error.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Priorities for same-tick ordering; lower runs first. */
    static constexpr int kPriDefault = 0;
    /** Samplers run after the state they observe has settled. */
    static constexpr int kPriSample = 100;

    /**
     * Cancellation handle for a scheduled event. Default-constructed
     * handles are inert. Cancelling an already-executed or already-
     * cancelled event is a no-op.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** True while the event is still pending. */
        bool pending() const;

        /** Prevent the event from running; idempotent. */
        void cancel();

      private:
        friend class EventQueue;
        struct Entry;
        explicit Handle(std::weak_ptr<Entry> e) : entry_(std::move(e)) {}
        std::weak_ptr<Entry> entry_;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute tick @p when. */
    Handle schedule(Tick when, Callback cb, int priority = kPriDefault);

    /** Schedule @p cb at now() + @p delay. */
    Handle scheduleIn(Tick delay, Callback cb, int priority = kPriDefault);

    /** True when no pending (non-cancelled) events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::uint64_t pending() const { return live_; }

    /**
     * Execute the single next event, advancing time to it.
     * @return false when the queue was empty.
     */
    bool runOne();

    /**
     * Run every event scheduled at or before @p horizon, then advance
     * time to exactly @p horizon.
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Tick horizon);

    /** Run until the queue drains (or @p max_events executed). */
    std::uint64_t runAll(std::uint64_t max_events = UINT64_MAX);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Handle::Entry
    {
        EventQueue *owner = nullptr;
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
        bool cancelled = false;
    };
    using EntryPtr = std::shared_ptr<Handle::Entry>;

    struct Later
    {
        bool
        operator()(const EntryPtr &a, const EntryPtr &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    /** Pop the next live entry; nullptr when drained. */
    EntryPtr popLive();

    /** JetSan: verify dispatch order against the previous event. */
    void checkDispatch(const Handle::Entry &e);

    std::priority_queue<EntryPtr, std::vector<EntryPtr>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t live_ = 0;
    std::uint64_t executed_ = 0;

    // Key of the most recently dispatched event, for the JetSan
    // monotonic-dispatch / same-tick-ordering invariant.
    Tick last_when_ = -1;
    int last_priority_ = 0;
    std::uint64_t last_seq_ = 0;
};

} // namespace jetsim::sim

#endif // JETSIM_SIM_EVENT_QUEUE_HH
