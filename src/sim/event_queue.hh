/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * Events are callbacks scheduled at an absolute Tick. Events at the
 * same tick execute in (priority, insertion-order) order so that
 * component interactions are fully deterministic.
 *
 * The implementation is a pooled, intrusive event core built for the
 * per-cell hot path (the sweep loop schedules millions of events per
 * experiment cell):
 *  - callback state lives in a slab/freelist EventPool — no per-event
 *    heap allocation, no shared_ptr refcounting;
 *  - the ordering keys (when, priority, seq) are packed into one
 *    128-bit integer per heap node, so a heap compare is a single
 *    scalar `<` on a dense array and never dereferences the pool;
 *  - handles carry (index, generation) pairs plus a non-atomic
 *    liveness block, so cancel()/pending() stay safe across slot
 *    reuse and even across queue destruction — without any per-event
 *    atomic refcount traffic;
 *  - callbacks are sim::InlineFn: captures up to 48 bytes never
 *    allocate (stats() counts the fallbacks).
 * Dispatch order — (when, priority, seq) — is bit-identical to the
 * previous shared_ptr implementation; the golden determinism tests
 * and the JetSan monotonic-dispatch invariant are the proof.
 */

#ifndef JETSIM_SIM_EVENT_QUEUE_HH
#define JETSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "check/check.hh"
#include "core/hot_annotations.hh"
#include "sim/choice.hh"
#include "sim/event_pool.hh"
#include "sim/inline_fn.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace jetsim::sim {

namespace detail {

inline constexpr const char *kEqComponent = "sim.event_queue";

/**
 * Shared liveness block between a queue's pool and its handles.
 * The refcount is deliberately non-atomic: a queue and every handle
 * it issues belong to one simulation cell, which runs on one thread
 * (the parallel sweep runner gives each worker its own queues).
 */
struct PoolLife
{
    EventPool *pool = nullptr;
    std::uint64_t refs = 0;
};

} // namespace detail

/**
 * Time-ordered queue of callbacks with deterministic tie-breaking.
 *
 * The queue owns the current simulated time: executing an event
 * advances `now()` to that event's tick. Scheduling into the past is
 * an internal error.
 */
class EventQueue
{
  public:
    using Callback = InlineFn;

    /** Priorities for same-tick ordering; lower runs first. */
    static constexpr int kPriDefault = 0;
    /** Samplers run after the state they observe has settled. */
    static constexpr int kPriSample = 100;

    /**
     * Sequence-number band split for the sharded engine. Local
     * events draw their insertion-order seq from a counter starting
     * at kMessageSeqLimit; seqs below it are reserved for cross-shard
     * messages (scheduleMessage), whose explicit (source port,
     * counter) packing is independent of delivery timing. The split
     * makes same-(tick,priority) ties between a message and a local
     * event resolve message-first in *every* shard/thread
     * configuration — the keystone of the sharded engine's
     * bit-identical merge (DESIGN.md §4i).
     */
    static constexpr std::uint64_t kMessageSeqLimit = 1ull << 47;

    /**
     * Cancellation handle for a scheduled event. Default-constructed
     * handles are inert. Cancelling an already-executed or already-
     * cancelled event is a no-op, and a handle may safely outlive the
     * queue (the shared liveness block outlives the pool; the event
     * storage itself does not). A handle whose slot was recycled is
     * inert: the generation check rejects the new occupant. Handles
     * are not thread-safe — they belong to their queue's cell.
     */
    class Handle
    {
      public:
        Handle() = default;

        Handle(const Handle &o)
            : life_(o.life_), idx_(o.idx_), gen_(o.gen_)
        {
            if (life_)
                ++life_->refs;
        }

        Handle(Handle &&o) noexcept
            : life_(o.life_), idx_(o.idx_), gen_(o.gen_)
        {
            o.life_ = nullptr;
        }

        Handle &
        operator=(const Handle &o)
        {
            if (this != &o) {
                release();
                life_ = o.life_;
                idx_ = o.idx_;
                gen_ = o.gen_;
                if (life_)
                    ++life_->refs;
            }
            return *this;
        }

        Handle &
        operator=(Handle &&o) noexcept
        {
            if (this != &o) {
                release();
                life_ = o.life_;
                idx_ = o.idx_;
                gen_ = o.gen_;
                o.life_ = nullptr;
            }
            return *this;
        }

        ~Handle() { release(); }

        /** True while the event is still pending. */
        bool
        pending() const
        {
            return life_ && life_->pool &&
                   life_->pool->isPending(idx_, gen_);
        }

        /** Prevent the event from running; idempotent. */
        void
        cancel()
        {
            if (life_ && life_->pool)
                life_->pool->cancel(idx_, gen_);
        }

      private:
        friend class EventQueue;
        Handle(detail::PoolLife *life, EventPool::Index idx,
               std::uint32_t gen)
            : life_(life), idx_(idx), gen_(gen)
        {
            ++life_->refs;
        }

        void
        release()
        {
            if (life_ && --life_->refs == 0)
                delete life_;
            life_ = nullptr;
        }

        detail::PoolLife *life_ = nullptr;
        EventPool::Index idx_ = EventPool::kInvalidIndex;
        std::uint32_t gen_ = 0;
    };

    /** Memory / hot-path health counters (see stats()). */
    struct Stats
    {
        std::uint64_t pending = 0;       ///< live (non-cancelled) events
        std::uint64_t peak_pending = 0;  ///< high-water mark of pending
        std::uint64_t executed = 0;      ///< lifetime dispatch count
        std::uint64_t cancelled = 0;     ///< lifetime handle cancels
        std::size_t pool_slabs = 0;      ///< slabs currently held
        std::size_t pool_capacity = 0;   ///< event slots currently held
        std::size_t heap_capacity = 0;   ///< heap array capacity (slots)
        std::uint64_t sbo_misses = 0;    ///< callbacks that heap-allocated
        std::uint64_t shrinks = 0;       ///< shrink() invocations
    };

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute tick @p when. */
    Handle schedule(Tick when, Callback cb, int priority = kPriDefault);

    /** Schedule @p cb at now() + @p delay. */
    Handle scheduleIn(Tick delay, Callback cb, int priority = kPriDefault);

    /**
     * Schedule a cross-shard message with an explicit low-band seq
     * (must be < kMessageSeqLimit). The caller — sim::ShardedEngine —
     * guarantees seqs are unique and that @p when is strictly beyond
     * every tick this queue has already dispatched, so the key total
     * order (and the JetSan monotonic-dispatch invariant) is
     * preserved no matter when in the epoch protocol the message is
     * physically inserted.
     */
    Handle scheduleMessage(Tick when, Callback cb, int priority,
                           std::uint64_t msg_seq);

    /** The next pending event's dispatch key (peek). */
    struct NextEvent
    {
        Tick when = 0;
        int priority = 0;
        std::uint64_t seq = 0;
    };

    /**
     * Peek the next pending event without executing it, pruning
     * cancelled entries off the heap top. @return false when empty.
     * Used by the sharded engine for horizon computation and the
     * deterministic cross-shard merge.
     */
    bool peekNext(NextEvent &out);

    /** True when no pending (non-cancelled) events remain. */
    bool empty() const { return pool_.liveCount() == 0; }

    /** Number of pending (non-cancelled) events. */
    std::uint64_t pending() const { return pool_.liveCount(); }

    /**
     * Execute the single next event, advancing time to it.
     * @return false when the queue was empty.
     */
    bool runOne();

    /**
     * Run every event scheduled at or before @p horizon, then advance
     * time to exactly @p horizon.
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Tick horizon);

    /** Run until the queue drains (or @p max_events executed). */
    std::uint64_t runAll(std::uint64_t max_events = UINT64_MAX);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Snapshot of pool / heap / SBO health. peak_pending is the
     * high-water mark long sweeps can compare against the retained
     * pool_capacity; sbo_misses counts callbacks attributed to *this*
     * queue whose captures exceeded InlineFn::kInlineSize (each one a
     * heap allocation on the hot path): every callback scheduled
     * here, plus component-held callbacks the owning components
     * attribute via noteSboMiss(). Per-queue counting keeps per-shard
     * stats attributable under the sharded engine; the process-wide
     * aggregate (InlineFn::heapFallbackCount, used by
     * `micro_sim --assert-sbo`) is unchanged.
     */
    Stats stats() const;

    /**
     * Attribute one InlineFn heap fallback to this queue. Components
     * that hold callbacks *outside* the queue (cpu::Thread work
     * items, gpu::GpuEngine completion callbacks, cuda::Stream
     * waiters) call this so per-shard SBO accounting stays complete —
     * schedule() already counts callbacks it stores itself.
     */
    JETSIM_COLD_OK("SBO miss ledger: attribution counter for externally-held callbacks, asserted zero by micro_sim --assert-sbo")
    void noteSboMiss() { ++sbo_misses_; }

    /**
     * Release retained capacity back to the allocator: shrinks the
     * heap array and, when no events are queued at all, drops every
     * pool slab. Outstanding handles remain safe (generation floor).
     * Call between sweep cells so long runs don't hold peak memory.
     */
    void shrink();

    /** @name Controlled scheduling (model checking)
     * Install a Chooser to make the queue's same-(tick,priority) tie
     * breaks — and, through chooser(), the GPU/CPU arbitration sites
     * of every component sharing this queue — explicit branch points.
     * nullptr (the default) keeps the fully deterministic
     * (priority, insertion-order) dispatch; the hot path pays one
     * predicted-not-taken null check.
     * @{ */
    void setChooser(Chooser *c) { chooser_ = c; }
    Chooser *chooser() const { return chooser_; }
    /** @} */

  private:
    using Index = EventPool::Index;

    /** Heap arity: flatter tree, fewer cache-missing compares. */
    /**
     * The dispatch key (when, priority, seq) packed into one 128-bit
     * integer — when in the top 64 bits, the bias-shifted priority in
     * the next 16, seq in the low 48 — so a heap comparison is a
     * single scalar `<`. seq is unique per event, making the order
     * total: the dispatch sequence is exactly the sorted key order,
     * independent of heap internals. Priorities are clamped (with a
     * JetSan check) to the 16-bit lane; seq wrapping at 2^48 would
     * need ~281 T events through one queue.
     */
    using HeapKey = unsigned __int128;

    static constexpr int kPriPackMin = -32768;
    static constexpr int kPriPackMax = 32767;
    static constexpr std::uint64_t kSeqMask = (1ull << 48) - 1;

    static HeapKey
    makeKey(Tick when, int priority, std::uint64_t seq)
    {
        const auto pri_biased = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(priority) + 0x8000u) &
            0xffffu;
        return (HeapKey(static_cast<std::uint64_t>(when)) << 64) |
               (pri_biased << 48) | (seq & kSeqMask);
    }

    static Tick
    keyWhen(HeapKey k)
    {
        return static_cast<Tick>(static_cast<std::uint64_t>(k >> 64));
    }

    static int
    keyPriority(HeapKey k)
    {
        const auto biased = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(k) >> 48) & 0xffffu);
        return static_cast<int>(biased) - 0x8000;
    }

    static std::uint64_t
    keySeq(HeapKey k)
    {
        return static_cast<std::uint64_t>(k) & kSeqMask;
    }

    void heapPush(HeapKey key, Index idx);
    void heapPopTop();

    /** Common schedule body; @p seq is the full packed seq lane. */
    Handle scheduleKeyed(Tick when, Callback cb, int priority,
                         std::uint64_t seq);

    /**
     * Pop path when a Chooser is installed (cold, defined in the
     * .cc): collects the same-(when,priority) tie set at the top of
     * the heap, lets the chooser pick, re-queues the rest.
     * @return false when the queue was empty.
     */
    bool runOneControlled();

    /** Dispatch the already-popped live event (@p key, @p idx). */
    void dispatch(HeapKey key, Index idx);

    /** JetSan: verify dispatch order against the previous event. */
    void checkDispatch(HeapKey key);

    /** JetSan plausibility: counters must be mutually consistent. */
    void checkPlausible() const;

    // Direct member (EventQueue is neither copyable nor movable, so
    // &pool_ is stable for the handles' liveness block): one less
    // allocation per queue and no pointer chase on the hot path.
    EventPool pool_;
    // Shared with handles so they stay safe past queue destruction;
    // the queue frees all slots (and slabs) in its destructor and
    // nulls life_->pool, after which stale handles are inert.
    detail::PoolLife *life_ = nullptr;

    // Binary heap as parallel key/slot arrays: sift compares touch
    // only the dense key array (16 B per pending event).
    std::vector<HeapKey> heap_keys_;
    std::vector<Index> heap_idx_;
    Chooser *chooser_ = nullptr;
    Tick now_ = 0;
    // Local insertion-order counter; starts above the message band so
    // cross-shard messages (explicit seqs < kMessageSeqLimit) win
    // same-(tick,priority) ties deterministically. The remaining
    // 2^47 local seqs would still take ~140 T events to exhaust.
    std::uint64_t seq_ = kMessageSeqLimit;
    std::uint64_t executed_ = 0;
    std::uint64_t peak_pending_ = 0;
    std::uint64_t sbo_misses_ = 0;
    std::uint64_t shrinks_ = 0;

    // Key of the most recently dispatched event, for the JetSan
    // monotonic-dispatch / same-tick-ordering invariant (checked only
    // once executed_ > 0).
    HeapKey last_key_ = 0;
};

// The schedule/dispatch path is defined in the header on purpose:
// call sites (the engines, the sweep loop) see through the InlineFn
// type erasure and the sift loops, which is worth a large constant
// factor per event. Cold paths (construction, stats, shrink) live in
// event_queue.cc.

JETSIM_HOT inline void
EventQueue::heapPush(HeapKey key, Index idx)
{
    // Hole-based sift-up: parents slide down into the hole and the
    // new entry is written exactly once.
    std::size_t i = heap_keys_.size();
    JETSIM_COLD_OK("amortized: geometric vector growth, reserved up front and recycled by shrink()")
    heap_keys_.push_back(key);
    JETSIM_COLD_OK("amortized: grows in lockstep with heap_keys_")
    heap_idx_.push_back(idx);
    HeapKey *k = heap_keys_.data();
    Index *v = heap_idx_.data();
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!(key < k[parent]))
            break;
        k[i] = k[parent];
        v[i] = v[parent];
        i = parent;
    }
    k[i] = key;
    v[i] = idx;
}

JETSIM_HOT inline void
EventQueue::heapPopTop()
{
    // Bottom-up pop: the hole runs to the bottom along the min-child
    // path (one branchless compare per level), then the displaced
    // back element bubbles up from the hole — usually not at all,
    // because the back element is among the largest. Fewer compares,
    // and the child select never mispredicts.
    const HeapKey key = heap_keys_.back();
    const Index idx = heap_idx_.back();
    heap_keys_.pop_back();
    heap_idx_.pop_back();
    const std::size_t n = heap_keys_.size();
    if (n == 0)
        return;
    HeapKey *k = heap_keys_.data();
    Index *v = heap_idx_.data();
    std::size_t i = 0;
    while (true) {
        std::size_t c = 2 * i + 1;
        if (c >= n)
            break;
        if (c + 1 < n)
            c += static_cast<std::size_t>(k[c + 1] < k[c]);
        k[i] = k[c];
        v[i] = v[c];
        i = c;
    }
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!(key < k[parent]))
            break;
        k[i] = k[parent];
        v[i] = v[parent];
        i = parent;
    }
    k[i] = key;
    v[i] = idx;
}

JETSIM_HOT inline EventQueue::Handle
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    return scheduleKeyed(when, std::move(cb), priority, seq_++);
}

JETSIM_HOT inline EventQueue::Handle
EventQueue::scheduleKeyed(Tick when, Callback cb, int priority,
                          std::uint64_t seq)
{
    if (when < now_) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::Causality,
                         detail::kEqComponent, now_,
                         "event scheduled into the past (when=%lld < "
                         "now=%lld)",
                         static_cast<long long>(when),
                         static_cast<long long>(now_));
        when = now_; // sanitise so Log mode can continue
    }
    JETSIM_ASSERT(static_cast<bool>(cb));
    if (priority < kPriPackMin || priority > kPriPackMax) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::Plausibility,
                         detail::kEqComponent, now_,
                         "priority %d outside the packable range "
                         "[%d, %d]; clamping",
                         priority, kPriPackMin, kPriPackMax);
        priority = priority < kPriPackMin ? kPriPackMin : kPriPackMax;
    }
    if (cb.onHeap())
        JETSIM_COLD_OK("SBO miss: capture spilled past 48 bytes; counted, asserted zero by micro_sim --assert-sbo")
        ++sbo_misses_;
    const Index idx = pool_.alloc(std::move(cb));
    heapPush(makeKey(when, priority, seq), idx);
    const std::uint64_t live = pool_.liveCount();
    if (live > peak_pending_)
        peak_pending_ = live;
    return Handle(life_, idx, pool_.gen(idx));
}

JETSIM_HOT inline EventQueue::Handle
EventQueue::scheduleMessage(Tick when, Callback cb, int priority,
                            std::uint64_t msg_seq)
{
    JETSIM_CHECK(msg_seq < kMessageSeqLimit, check::Severity::Error,
                 check::Invariant::Plausibility, detail::kEqComponent,
                 now_,
                 "message seq %llu outside the reserved low band",
                 static_cast<unsigned long long>(msg_seq));
    return scheduleKeyed(when, std::move(cb), priority,
                         msg_seq & (kMessageSeqLimit - 1));
}

JETSIM_HOT inline bool
EventQueue::peekNext(NextEvent &out)
{
    while (!heap_keys_.empty()) {
        const HeapKey key = heap_keys_.front();
        const Index idx = heap_idx_.front();
        if (pool_.cancelled(idx)) {
            heapPopTop();
            pool_.free(idx);
            continue;
        }
        out.when = keyWhen(key);
        out.priority = keyPriority(key);
        out.seq = keySeq(key);
        return true;
    }
    return false;
}

JETSIM_HOT inline EventQueue::Handle
EventQueue::scheduleIn(Tick delay, Callback cb, int priority)
{
    JETSIM_CHECK(delay >= 0, check::Severity::Error,
                 check::Invariant::Causality, detail::kEqComponent,
                 now_, "negative delay %lld",
                 static_cast<long long>(delay));
    if (delay < 0)
        delay = 0;
    // Saturate instead of overflowing past kTickMax (UB on int64).
    const Tick when =
        delay > kTickMax - now_ ? kTickMax : now_ + delay;
    return schedule(when, std::move(cb), priority);
}

JETSIM_HOT inline void
EventQueue::checkDispatch(HeapKey key)
{
    // Dispatch keys are a total order (seq is unique), so "time never
    // runs backwards" and "same-tick events leave in (priority,
    // insertion) order" collapse into one invariant: keys must come
    // out strictly increasing. One compare on the hot path; the
    // violation path unpacks the key for the report.
    //
    // Under a Chooser the insertion-order (seq) component is exactly
    // what the controlled scheduler is allowed to permute, so the
    // invariant weakens to the (when, priority) prefix: time still
    // never runs backwards and priorities still order a tick.
    const bool ok =
        chooser_ == nullptr
            ? key > last_key_
            : (key & ~HeapKey(kSeqMask)) >=
                  (last_key_ & ~HeapKey(kSeqMask));
    if (executed_ > 0 && !ok) {
        JETSIM_VIOLATION(check::Severity::Error,
                         check::Invariant::Causality,
                         detail::kEqComponent, now_,
                         "dispatch out of order (when=%lld pri=%d "
                         "seq=%llu after when=%lld pri=%d seq=%llu)",
                         static_cast<long long>(keyWhen(key)),
                         keyPriority(key),
                         static_cast<unsigned long long>(keySeq(key)),
                         static_cast<long long>(keyWhen(last_key_)),
                         keyPriority(last_key_),
                         static_cast<unsigned long long>(
                             keySeq(last_key_)));
    }
    last_key_ = key;
}

JETSIM_HOT inline void
EventQueue::dispatch(HeapKey key, Index idx)
{
    checkDispatch(key);
    now_ = keyWhen(key);
    ++executed_;
    // Mark consumed so a Handle held by the callback's owner reports
    // !pending() during and after execution. The callback is invoked
    // in place — slab addresses are stable even if the callback
    // schedules (growing the pool) — and the slot is recycled after
    // it returns.
    pool_.markDispatched(idx);
    EventPool::Event &e = pool_.at(idx);
    e.cb()();
    pool_.recycleDispatched(idx, e);
}

JETSIM_HOT inline bool
EventQueue::runOne()
{
    if (chooser_ != nullptr)
        return runOneControlled();
    while (!heap_keys_.empty()) {
        const HeapKey key = heap_keys_.front();
        const Index idx = heap_idx_.front();
        // Overlap the slot's cache-line fetch with the sift-down.
        pool_.prefetch(idx);
        heapPopTop();
        if (pool_.cancelled(idx)) {
            pool_.free(idx);
            continue;
        }
        dispatch(key, idx);
        return true;
    }
    return false;
}

JETSIM_HOT inline std::uint64_t
EventQueue::runUntil(Tick horizon)
{
    JETSIM_CHECK(horizon >= now_, check::Severity::Error,
                 check::Invariant::Causality, detail::kEqComponent,
                 now_, "runUntil horizon %lld is in the past",
                 static_cast<long long>(horizon));
    std::uint64_t n = 0;
    if (chooser_ != nullptr) {
        // Controlled scheduling: same horizon semantics, but every
        // pop goes through the tie-break choice point.
        while (!heap_keys_.empty()) {
            const HeapKey key = heap_keys_.front();
            const Index idx = heap_idx_.front();
            if (pool_.cancelled(idx)) {
                heapPopTop();
                pool_.free(idx);
                continue;
            }
            if (keyWhen(key) > horizon)
                break;
            runOneControlled();
            ++n;
        }
        if (horizon > now_)
            now_ = horizon;
        return n;
    }
    while (!heap_keys_.empty()) {
        const HeapKey key = heap_keys_.front();
        const Index idx = heap_idx_.front();
        if (pool_.cancelled(idx)) {
            heapPopTop();
            pool_.free(idx);
            continue;
        }
        if (keyWhen(key) > horizon)
            break; // not yet due; stays queued
        heapPopTop();
        dispatch(key, idx);
        ++n;
    }
    if (horizon > now_)
        now_ = horizon;
    return n;
}

JETSIM_HOT inline std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

} // namespace jetsim::sim

#endif // JETSIM_SIM_EVENT_QUEUE_HH
