#include "sim/event_pool.hh"

#include "sim/logging.hh"

namespace jetsim::sim {

EventPool::~EventPool()
{
    // The owning queue frees every allocated slot before releasing
    // its pool reference; a pool dying with live slots would leak the
    // callbacks' captured state.
    JETSIM_ASSERT(allocatedCount() == 0);
#ifdef JETSIM_POOL_ASAN
    for (auto &slab : slabs_)
        for (auto &e : slab->events)
            unpoisonCb(e);
#endif
}

JETSIM_COLD_OK("slab growth: geometric, O(log n) calls over a queue's life, startup-dominated")
void
EventPool::grow()
{
    // Geometric: double the slab count each time so a deep queue pays
    // O(log n) grow calls (and meta_ reallocation copies), not O(n).
    const std::size_t add = slabs_.empty() ? 1 : slabs_.size();
    meta_.reserve((slabs_.size() + add) * kSlabEvents);
    for (std::size_t s = 0; s < add; ++s) {
        // Default-init (not make_unique's value-init): slab memory is
        // deliberately left untouched until a callback lands in a
        // slot.
        slabs_.emplace_back(new Slab);
        const auto base = static_cast<Index>(meta_.size());
        meta_.resize(meta_.size() + kSlabEvents);
        if (gen_floor_ != 0)
            for (std::uint32_t i = 0; i < kSlabEvents; ++i)
                meta_[base + i].gen = gen_floor_;
#ifdef JETSIM_POOL_ASAN
        for (auto &e : slabs_.back()->events)
            poisonCb(e);
#endif
    }
}

void
EventPool::cancel(Index idx, std::uint32_t gen)
{
    if (!isPending(idx, gen))
        return;
    meta_[idx].cancelled = true;
    --live_;
    ++cancels_;
}

void
EventPool::releaseAll(bool handles_outstanding)
{
    JETSIM_ASSERT(allocatedCount() == 0);
#ifdef JETSIM_POOL_ASAN
    for (auto &slab : slabs_)
        for (auto &e : slab->events)
            unpoisonCb(e);
#endif
    if (handles_outstanding && bump_ > 0) {
        // Raise the generation floor past every generation ever
        // handed out, so a recycled (index, generation) pair can
        // never match a pre-release handle. Scanned here (cold)
        // rather than tracked on every free (hot); slots past bump_
        // were never handed out and still sit at the old floor.
        std::uint32_t max_gen = gen_floor_;
        for (Index i = 0; i < bump_; ++i)
            if (meta_[i].gen > max_gen)
                max_gen = meta_[i].gen;
        gen_floor_ = max_gen + 1;
    }
    slabs_.clear();
    slabs_.shrink_to_fit();
    meta_.clear();
    meta_.shrink_to_fit();
    free_.clear();
    free_.shrink_to_fit();
    bump_ = 0;
}

} // namespace jetsim::sim
