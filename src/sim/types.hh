/**
 * @file
 * Fundamental simulation types and time-unit helpers.
 *
 * The simulator uses a single global time base: one Tick equals one
 * nanosecond of simulated wall time. All durations and timestamps in
 * the code base are expressed in Ticks unless a name explicitly says
 * otherwise (e.g. "seconds" in user-facing reports).
 */

#ifndef JETSIM_SIM_TYPES_HH
#define JETSIM_SIM_TYPES_HH

#include <cstdint>

namespace jetsim::sim {

/** Simulated time. One tick is one nanosecond. */
using Tick = std::int64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick kTickInvalid = -1;

/** Largest representable tick. */
constexpr Tick kTickMax = INT64_MAX;

/** @name Duration constructors
 * Convert human units into Ticks. Implemented as constexpr functions
 * rather than user-defined literals so call sites read
 * `usec(20)` / `msec(1.5)` explicitly.
 * @{
 */
constexpr Tick
nsec(double n)
{
    return static_cast<Tick>(n);
}

constexpr Tick
usec(double u)
{
    return static_cast<Tick>(u * 1e3);
}

constexpr Tick
msec(double m)
{
    return static_cast<Tick>(m * 1e6);
}

constexpr Tick
sec(double s)
{
    return static_cast<Tick>(s * 1e9);
}
/** @} */

/** @name Duration accessors
 * Convert Ticks back into floating-point human units.
 * @{
 */
constexpr double
toUsec(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMsec(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / 1e9;
}
/** @} */

/** Bytes, as an unsigned 64-bit count. */
using Bytes = std::uint64_t;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

/** Convert bytes to mebibytes for reporting. */
constexpr double
toMiB(Bytes b)
{
    return static_cast<double>(b) / static_cast<double>(kMiB);
}

} // namespace jetsim::sim

#endif // JETSIM_SIM_TYPES_HH
