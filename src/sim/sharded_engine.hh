/**
 * @file
 * ShardedEngine: conservative-lookahead parallel event core.
 *
 * One EventQueue *shard* per device (or device group). Device stacks
 * share no mutable state across shards, so the only cross-shard edges
 * are explicit messages — request arrivals, balancer decisions,
 * future net:: hops — posted through post() with a minimum latency.
 * That latency is the *lookahead* L of classic conservative
 * (Chandy–Misra–Bryant-style) parallel discrete-event simulation, and
 * it drives an epoch loop:
 *
 *   1. deliver every buffered cross-shard message into its
 *      destination shard's heap;
 *   2. global_min = the smallest pending (when) over all shards;
 *   3. horizon = global_min + L: no event executing this epoch (all
 *      at when >= global_min) can post a message due before horizon;
 *   4. every shard runs its events with when < horizon — in parallel,
 *      outbound posts buffered into per-shard inboxes behind a leaf
 *      core::Mutex;
 *   5. barrier; repeat.
 *
 * Determinism is *bit-identical* to the serial engine at any
 * shard/thread count, by construction rather than by luck:
 *  - within a shard, dispatch order is the packed (when, priority,
 *    seq) key order of EventQueue — unchanged;
 *  - cross-shard messages carry an explicit seq in the reserved low
 *    band (EventQueue::kMessageSeqLimit), packed from (source port,
 *    per-port counter): a pure function of simulation content, never
 *    of epoch boundaries, worker assignment or delivery timing;
 *  - events on *different* shards never touch shared state, so their
 *    relative order across shards cannot affect any observable — the
 *    same independence argument jetmc's partial-order reduction is
 *    built on (DESIGN.md §4i has the proof sketch).
 *
 * With lookahead 0 (or a Chooser installed) the engine falls back to
 * a serial cross-shard merge: repeatedly execute the globally
 * smallest key, cross-shard same-(when,priority) ties resolved
 * deterministically by (seq, shard) — or exposed to the model checker
 * as ChoiceKind::ShardMerge arbitration points. Digests from the
 * merge path equal the epoch path's for the same reason as above.
 *
 * Locking contract (jetrace, DESIGN.md §4h): the per-shard inbox
 * locks are annotated core::Mutex, named `shard_mu_` so the
 * `shard-lock-not-leaf` rule can hold them to the leaf discipline —
 * no lock is ever acquired while one is held. The epoch barrier is
 * lock-free (atomics + yield), so it adds no lock-graph nodes at all.
 * The hot path is allocation-free at steady state: each shard reuses
 * its slab EventPool, and inbox vectors retain capacity across
 * epochs.
 */

#ifndef JETSIM_SIM_SHARDED_ENGINE_HH
#define JETSIM_SIM_SHARDED_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/mutex.hh"
#include "sim/event_queue.hh"

namespace jetsim::sim {

/** Parallel event core: one EventQueue shard per device group. */
class ShardedEngine
{
  public:
    /** Ports (message sources) fit the 15-bit lane of the packed
     * message seq; counters per port fit the low 32 bits. */
    static constexpr int kMaxPorts = 1 << 15;

    struct Options
    {
        /** Event-queue shards (>= 1). */
        int shards = 1;
        /** Worker threads for the epoch phase; 1 = in-caller. Capped
         * at the shard count (spare workers would idle). */
        int threads = 1;
        /**
         * Conservative lookahead: the minimum delay of every
         * cross-shard post. 0 selects the serial-merge fallback —
         * bit-identical results, no parallelism. Ignored (treated as
         * 0) while a Chooser is installed: controlled runs are
         * single-threaded and branch at merge ties.
         */
        Tick lookahead = 0;
    };

    /** Epoch / message / merge counters (see stats()). */
    struct Stats
    {
        int shards = 0;
        int threads = 0;
        Tick lookahead = 0;
        std::uint64_t epochs = 0;      ///< parallel-phase barriers
        std::uint64_t merge_steps = 0; ///< serial-merge dispatches
        std::uint64_t messages = 0;    ///< lifetime post() count
        std::uint64_t executed = 0;    ///< events over all shards
        std::uint64_t max_inbox = 0;   ///< deepest inbox observed
    };

    explicit ShardedEngine(Options opts);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    int shards() const { return static_cast<int>(shards_.size()); }
    int threads() const { return threads_; }
    Tick lookahead() const { return lookahead_; }

    /** Shard @p s's queue: the composition root for the boards mapped
     * to that shard (soc::ShardMap). */
    EventQueue &shard(int s);

    /**
     * Register a message source living on shard @p shard_idx; the
     * returned port id feeds post(). Ports are allocated before the
     * run starts (registration is not thread-safe) and their order is
     * part of the deterministic merge: lower ports win
     * message-message ties at equal (when, priority).
     */
    int addPort(int shard_idx);

    /**
     * Post a cross-shard message: run @p cb on shard @p dst_shard at
     * absolute tick @p when. Must be called from @p src_port's own
     * shard (its executing callbacks), with
     * when >= src now + max(1, lookahead) — the conservative bound
     * that makes the epoch horizon safe. Safe to call concurrently
     * from distinct shards during the parallel phase; delivery is
     * deferred to the next epoch boundary (same-shard posts insert
     * directly).
     */
    void post(int src_port, int dst_shard, Tick when,
              EventQueue::Callback cb,
              int priority = EventQueue::kPriDefault);

    /**
     * Run every shard up to and including @p target, then advance all
     * shard clocks to exactly @p target (mirrors
     * EventQueue::runUntil). Callable repeatedly with increasing
     * targets — the profiler's warmup / measure / extend loop works
     * unchanged. @return events executed across all shards.
     */
    std::uint64_t runUntil(Tick target);

    /** Run until every shard drains (or @p max_events executed). */
    std::uint64_t runAll(std::uint64_t max_events = UINT64_MAX);

    /** Smallest pending event time across shards; false when all
     * shards (and inboxes) are empty. */
    bool nextEventTime(Tick &when);

    /**
     * Install @p c on every shard queue *and* the cross-shard merge
     * tie sites — forces the serial-merge path so the model checker
     * sees ShardMerge branch points. nullptr restores epoch
     * scheduling.
     */
    void setChooser(Chooser *c);

    Stats stats() const;

  private:
    /** One buffered cross-shard message. */
    struct Msg
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        EventQueue::Callback cb;
    };

    /**
     * A shard: queue + inbox. The inbox mutex is a *leaf* lock
     * (jetrace `shard-lock-not-leaf`): its critical sections are a
     * vector push / swap, never another acquisition. Padded so two
     * workers' hot shards never share a cache line.
     */
    struct alignas(64) Shard
    {
        EventQueue eq;
        core::Mutex shard_mu_;
        std::vector<Msg> inbox JETSIM_GUARDED_BY(shard_mu_);
        /** Coordinator-side scratch, swapped with inbox at epoch
         * start so delivery never holds the lock while scheduling;
         * retains capacity (allocation-free steady state). */
        std::vector<Msg> staged;
    };

    void deliverInboxes();
    bool peekShard(int s, EventQueue::NextEvent &out);
    std::uint64_t runEpochs(Tick target);
    std::uint64_t runMerge(Tick target);
    bool mergeOne(Tick target);
    void startWorkers();
    void stopWorkers();
    void workerLoop(int worker);
    void runShardSlice(int worker, Tick horizon);

    std::vector<std::unique_ptr<Shard>> shards_;
    int threads_ = 1;
    Tick lookahead_ = 0;
    Chooser *chooser_ = nullptr;

    /** Port registry: port id -> shard, plus the per-port message
     * counters. Counters are written only from the port's own shard
     * (one thread per epoch), read at quiescent points. */
    std::vector<int> port_shard_;
    std::vector<std::uint32_t> port_count_;

    std::uint64_t epochs_ = 0;
    std::uint64_t merge_steps_ = 0;
    std::uint64_t max_inbox_ = 0;

    /** @name Epoch barrier (lock-free)
     * The coordinator publishes horizon_ then bumps epoch_; workers
     * acquire epoch_, run their shard slice, and retire through
     * pending_. No condition variables, no locks: jetrace's graph
     * over the engine is exactly the shard leaves.
     * @{ */
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<Tick> horizon_{0};
    std::atomic<int> pending_{0};
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> executed_parallel_{0};
    /** @} */
};

} // namespace jetsim::sim

#endif // JETSIM_SIM_SHARDED_ENGINE_HH
