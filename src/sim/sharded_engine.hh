/**
 * @file
 * ShardedEngine: conservative-lookahead parallel event core.
 *
 * One EventQueue *shard* per device (or device group). Device stacks
 * share no mutable state across shards, so the only cross-shard edges
 * are explicit messages — request arrivals, balancer decisions,
 * future net:: hops — posted through post() with a minimum latency.
 * That latency is the *lookahead* L of classic conservative
 * (Chandy–Misra–Bryant-style) parallel discrete-event simulation, and
 * it drives an epoch loop:
 *
 *   1. deliver buffered cross-shard messages into their destination
 *      shards' heaps (skipped outright when the pending counter is
 *      zero);
 *   2. a tournament min-reduction over *cached* per-shard next-event
 *      times yields gmin (over all shards) and gmin_post (over shards
 *      that own a cross-shard source port);
 *   3. horizon = min(target + 1, gmin_post + L): no event executing
 *      this epoch can post a message due before it, because every
 *      post originates on a port-owning shard whose events all run at
 *      when >= gmin_post. When gmin_post >> gmin this *fuses many
 *      lookahead windows into one epoch* (adaptive epoch batching;
 *      Options::batch_windows caps or disables the fusion);
 *   4. every shard whose cached next event is below the horizon runs
 *      it in parallel — idle shards are skipped without touching
 *      their queues — with outbound posts pushed onto per-shard
 *      lock-free MPSC rings (sim::MsgRing);
 *   5. a sense-reversing barrier; repeat.
 *
 * Determinism is *bit-identical* to the serial engine at any
 * shard/thread count, by construction rather than by luck:
 *  - within a shard, dispatch order is the packed (when, priority,
 *    seq) key order of EventQueue — unchanged;
 *  - cross-shard messages carry an explicit seq in the reserved low
 *    band (EventQueue::kMessageSeqLimit), packed from (source port,
 *    per-port counter): a pure function of simulation content, never
 *    of epoch boundaries, worker assignment or delivery timing;
 *  - events on *different* shards never touch shared state, so their
 *    relative order across shards cannot affect any observable — the
 *    same independence argument jetmc's partial-order reduction is
 *    built on (DESIGN.md §4i has the proof sketch).
 *
 * With lookahead 0 (or a Chooser installed) the engine falls back to
 * a serial cross-shard merge: repeatedly execute the globally
 * smallest key, cross-shard same-(when,priority) ties resolved
 * deterministically by (seq, shard) — or exposed to the model checker
 * as ChoiceKind::ShardMerge arbitration points. Digests from the
 * merge path equal the epoch path's for the same reason as above.
 *
 * Locking contract (jetrace, DESIGN.md §4h): there is none to state —
 * the engine's hot path owns no mutex at all. The inbox is a bounded
 * lock-free ring with arena-batched overflow blocks, the barrier is
 * two sense-reversing atomics, and the per-shard next-event cache is
 * a relaxed atomic published through the barrier. jetrace's
 * `shard-lock-not-leaf` rule is vacuous here by construction. The hot
 * path is allocation-free at steady state: each shard reuses its slab
 * EventPool, and ring cells / overflow node blocks are recycled
 * across epochs.
 */

#ifndef JETSIM_SIM_SHARDED_ENGINE_HH
#define JETSIM_SIM_SHARDED_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/msg_ring.hh"

namespace jetsim::sim {

/** Parallel event core: one EventQueue shard per device group. */
class ShardedEngine
{
  public:
    /** Ports (message sources) fit the 15-bit lane of the packed
     * message seq; counters per port fit the low 32 bits. */
    static constexpr int kMaxPorts = 1 << 15;

    struct Options
    {
        /** Event-queue shards (>= 1). */
        int shards = 1;
        /** Worker threads for the epoch phase; 1 = in-caller. Capped
         * at the shard count (spare workers would idle). */
        int threads = 1;
        /**
         * Conservative lookahead: the minimum delay of every
         * cross-shard post. 0 selects the serial-merge fallback —
         * bit-identical results, no parallelism. Ignored (treated as
         * 0) while a Chooser is installed: controlled runs are
         * single-threaded and branch at merge ties.
         */
        Tick lookahead = 0;
        /**
         * Adaptive epoch batching cap: how many lookahead windows one
         * epoch may fuse when the port map proves it safe (horizon =
         * gmin_post + L instead of gmin + L). 0 = unlimited fusion
         * (default), 1 = classic single-window epochs, N = fuse at
         * most N windows per barrier. Any value yields bit-identical
         * digests; the knob only trades barriers for window size.
         */
        std::uint64_t batch_windows = 0;
        /** Per-shard inbox ring capacity (power of two); bursts past
         * it take the arena-batched overflow path, never a lock. */
        std::size_t inbox_capacity = 256;
    };

    /** Epoch / message / merge counters (see stats()). */
    struct Stats
    {
        int shards = 0;
        int threads = 0;
        Tick lookahead = 0;
        std::uint64_t epochs = 0;      ///< parallel-phase rounds
        std::uint64_t barriers = 0;    ///< barrier crossings (2/epoch
                                       ///< when threads > 1)
        std::uint64_t merge_steps = 0; ///< serial-merge dispatches
        std::uint64_t messages = 0;    ///< lifetime post() count
        std::uint64_t executed = 0;    ///< events over all shards
        std::uint64_t max_inbox = 0;   ///< deepest drain observed
        std::uint64_t ring_overflow = 0; ///< posts past the ring
    };

    explicit ShardedEngine(Options opts);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    int shards() const { return static_cast<int>(shards_.size()); }
    int threads() const { return threads_; }
    Tick lookahead() const { return lookahead_; }

    /** Shard @p s's queue: the composition root for the boards mapped
     * to that shard (soc::ShardMap). */
    EventQueue &shard(int s);

    /**
     * Register a message source living on shard @p shard_idx; the
     * returned port id feeds post(). Ports are allocated before the
     * run starts (registration is not thread-safe) and their order is
     * part of the deterministic merge: lower ports win
     * message-message ties at equal (when, priority).
     *
     * A @p local_only port may post only to its own shard (min delay
     * one tick instead of the lookahead) and — crucially for adaptive
     * epoch batching — does not mark the shard as a cross-shard
     * poster, so its events never shrink the fused horizon. Fleet
     * sub-balancers are the canonical user: the root->sub hop crosses
     * shards, the sub->device hop is a local_only message.
     */
    int addPort(int shard_idx, bool local_only = false);

    /**
     * Post a cross-shard message: run @p cb on shard @p dst_shard at
     * absolute tick @p when. Must be called from @p src_port's own
     * shard (its executing callbacks), with
     * when >= src now + max(1, lookahead) — the conservative bound
     * that makes the epoch horizon safe (local_only ports: one tick).
     * Safe to call concurrently from distinct shards during the
     * parallel phase; delivery is deferred to the next epoch boundary
     * (same-shard posts insert directly).
     */
    void post(int src_port, int dst_shard, Tick when,
              EventQueue::Callback cb,
              int priority = EventQueue::kPriDefault);

    /**
     * Run every shard up to and including @p target, then advance all
     * shard clocks to exactly @p target (mirrors
     * EventQueue::runUntil). Callable repeatedly with increasing
     * targets — the profiler's warmup / measure / extend loop works
     * unchanged. @return events executed across all shards.
     */
    std::uint64_t runUntil(Tick target);

    /** Run until every shard drains (or @p max_events executed). */
    std::uint64_t runAll(std::uint64_t max_events = UINT64_MAX);

    /** Smallest pending event time across shards; false when all
     * shards (and inboxes) are empty. */
    bool nextEventTime(Tick &when);

    /**
     * Install @p c on every shard queue *and* the cross-shard merge
     * tie sites — forces the serial-merge path so the model checker
     * sees ShardMerge branch points. nullptr restores epoch
     * scheduling.
     */
    void setChooser(Chooser *c);

    Stats stats() const;

  private:
    /** One buffered cross-shard message. */
    struct Msg
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        EventQueue::Callback cb;
    };

    /**
     * A shard: queue + lock-free inbox + cached next-event time.
     * next_when is kTickMax when the queue looked empty; it may run
     * *early* (a cancelled event leaves it stale-low, which costs at
     * most one wasted peek) but never late — every insertion path
     * min-updates it, and the owning worker refreshes it after each
     * slice, published to the coordinator through the barrier. Padded
     * so two workers' hot shards never share a cache line.
     */
    struct alignas(64) Shard
    {
        explicit Shard(std::size_t inbox_capacity)
            : inbox(inbox_capacity)
        {
        }
        EventQueue eq;
        MsgRing<Msg> inbox;
        std::atomic<Tick> next_when{kTickMax};
        /** Owns >= 1 non-local port: only these shards can shrink
         * the fused epoch horizon (gmin_post). */
        bool posts = false;
    };

    /** Sense-reversing barrier half (one for epoch start, one for
     * epoch end). No locks, no condvars: an atomic arrival count and
     * a flip-flopping sense flag each thread tracks locally. */
    struct alignas(64) Barrier
    {
        std::atomic<int> count{0};
        std::atomic<bool> sense{false};
    };

    void deliverInboxes();
    void refreshCache(Shard &sh);
    void refreshAll();
    void reduceMins(Tick &gmin, Tick &gmin_post);
    std::uint64_t runEpochs(Tick target);
    std::uint64_t runMerge(Tick target);
    bool mergeOne(Tick target);
    void barrierArrive(Barrier &b, bool &local_sense);
    void startWorkers();
    void stopWorkers();
    void workerLoop(int worker);
    void runShardSlice(int worker, Tick horizon);

    std::vector<std::unique_ptr<Shard>> shards_;
    int threads_ = 1;
    Tick lookahead_ = 0;
    std::uint64_t batch_windows_ = 0;
    Chooser *chooser_ = nullptr;

    /** Port registry: port id -> (shard, local_only), plus the
     * per-port message counters. Counters are written only from the
     * port's own shard (one thread per epoch), read at quiescent
     * points. */
    std::vector<int> port_shard_;
    std::vector<bool> port_local_;
    std::vector<std::uint32_t> port_count_;

    /** Tournament scratch: (gmin lane, gmin_post lane) per slot. */
    std::vector<std::pair<Tick, Tick>> scratch_;

    std::uint64_t epochs_ = 0;
    std::uint64_t barriers_ = 0;
    std::uint64_t merge_steps_ = 0;
    std::uint64_t max_inbox_ = 0;

    /** Buffered (ring) messages not yet delivered; exact at the
     * quiescent points where it is read, letting the epoch loop skip
     * the delivery sweep entirely when nothing is in flight. */
    std::atomic<std::uint64_t> msgs_pending_{0};

    /** @name Epoch workers (lock-free coordination)
     * The coordinator publishes horizon_, crosses the start barrier
     * with the workers, runs its own slice, and meets them again at
     * the end barrier. Workers check stop_ right after the start
     * barrier, so shutdown is one extra crossing. jetrace's graph
     * over the engine has no lock nodes at all.
     * @{ */
    std::vector<std::thread> workers_;
    Barrier start_;
    Barrier end_;
    bool start_sense_ = false; ///< coordinator-local senses
    bool end_sense_ = false;
    std::atomic<Tick> horizon_{0};
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> executed_parallel_{0};
    /** @} */
};

} // namespace jetsim::sim

#endif // JETSIM_SIM_SHARDED_ENGINE_HH
