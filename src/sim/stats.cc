#include "sim/stats.hh"

#include <cmath>

namespace jetsim::sim {

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

} // namespace jetsim::sim
