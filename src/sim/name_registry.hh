/**
 * @file
 * Process-wide string interning for hot-path identifiers.
 *
 * Kernel/layer names are decided once, at engine-build time; the
 * profiling layers used to key maps by std::string on every executed
 * kernel. Interning turns the hot path into dense-vector indexing by
 * a small integer id and defers string resolution to report time.
 *
 * Ids are process-global and thread-safe (the parallel sweep runner
 * interns from worker threads). Id *values* depend on interning
 * order and must therefore never influence results — report-time
 * consumers sort by resolved name or by measured quantity, not by id.
 *
 * Synchronization (audited by jetrace, DESIGN.md 4h): the registry
 * singleton is a core::Mutex-guarded table; nameOf() may return its
 * reference outside the lock because storage is a std::deque the
 * registry only appends to — a published string is never moved or
 * mutated for the life of the process.
 */

#ifndef JETSIM_SIM_NAME_REGISTRY_HH
#define JETSIM_SIM_NAME_REGISTRY_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace jetsim::sim {

/** Dense identifier for an interned name. */
using NameId = std::uint32_t;

/** "Not interned" sentinel (e.g. hand-built KernelDescs). */
inline constexpr NameId kInvalidNameId = 0xffffffffu;

/** Intern @p name, returning its stable id (idempotent). */
NameId internName(std::string_view name);

/** Resolve an id back to its string; fatal() on an unknown id. */
const std::string &nameOf(NameId id);

/** Number of distinct names interned so far. */
std::size_t internedNameCount();

} // namespace jetsim::sim

#endif // JETSIM_SIM_NAME_REGISTRY_HH
