/**
 * @file
 * InlineFn: the event queue's small-buffer-optimised callback.
 *
 * The simulator's hot path schedules millions of short-lived
 * callbacks whose captures are tiny (`this` plus a couple of ids).
 * std::function heap-allocates for anything beyond two words;
 * InlineFn stores captures up to kInlineSize bytes in place and only
 * falls back to the heap beyond that. Fallbacks are counted twice
 * over: a process-wide aggregate here (heapFallbackCount, the
 * `micro_sim --assert-sbo` gate) and per event queue
 * (EventQueue::stats().sbo_misses — schedule() counts callbacks it
 * stores, components holding callbacks outside a queue attribute
 * theirs via EventQueue::noteSboMiss), so under the sharded engine
 * every miss is attributable to the shard that paid for it.
 *
 * Contract: callbacks whose capture state is <= kInlineSize bytes,
 * suitably aligned and nothrow-move-constructible never allocate.
 * Move-only, void(), one-shot friendly (may be invoked repeatedly but
 * the queue invokes each event once).
 */

#ifndef JETSIM_SIM_INLINE_FN_HH
#define JETSIM_SIM_INLINE_FN_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "core/hot_annotations.hh"

namespace jetsim::sim {

namespace detail {
/** Process-wide count of InlineFn heap fallbacks (test hook). */
inline std::atomic<std::uint64_t> g_inline_fn_heap_fallbacks{0};
} // namespace detail

/** Move-only void() callable with a 48-byte inline capture buffer. */
class InlineFn
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t kInlineSize = 48;

    InlineFn() noexcept = default;
    InlineFn(std::nullptr_t) noexcept {} // NOLINT(*-explicit-*)

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFn> &&
                  std::is_invocable_r_v<void, D &>>>
    InlineFn(F &&f) // NOLINT(*-explicit-*): drop-in for std::function
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &kInlineOps<D>;
        } else {
            JETSIM_COLD_OK("SBO miss ledger: counted here, asserted zero by micro_sim --assert-sbo")
            detail::g_inline_fn_heap_fallbacks.fetch_add(
                1, std::memory_order_relaxed);
            JETSIM_COLD_OK("SBO fallback arm: only reached by captures past 48 bytes, which the gate above proves absent in hot runs")
            ::new (static_cast<void *>(buf_))
                D *(new D(std::forward<F>(f)));
            ops_ = &kHeapOps<D>;
        }
    }

    InlineFn(InlineFn &&o) noexcept { moveFrom(o); }

    InlineFn &
    operator=(InlineFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineFn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    /** Invoke the wrapped callable; undefined when empty. */
    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** True when the capture did not fit inline (heap fallback). */
    bool onHeap() const noexcept { return ops_ && ops_->heap; }

    /** Destroy the wrapped callable, leaving the fn empty. */
    void
    reset() noexcept
    {
        if (ops_) {
            if (ops_->copy_bytes == kRelocateFn)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** Process-wide heap fallbacks since start (test hook). */
    static std::uint64_t
    heapFallbackCount() noexcept
    {
        return detail::g_inline_fn_heap_fallbacks.load(
            std::memory_order_relaxed);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst's buffer from src's, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool heap;
        /** Relocation recipe: kRelocateFn = call relocate(); other
         * values = inline + trivially copyable/destructible, copy
         * exactly this many buffer bytes (0 for stateless captures)
         * and skip destroy(). Lets the hot path avoid two indirect
         * calls for the common trivial captures. */
        std::uint8_t copy_bytes;
    };

    static constexpr std::uint8_t kRelocateFn = 0xff;

    template <typename D>
    static constexpr std::uint8_t
    copyRecipe()
    {
        if (!std::is_trivially_copyable_v<D> ||
            !std::is_trivially_destructible_v<D>)
            return kRelocateFn;
        if (std::is_empty_v<D>)
            return 0;
        return sizeof(D) <= 16 ? 16 : sizeof(D) <= 32 ? 32 : 48;
    }

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= kInlineSize &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops kInlineOps = {
        [](void *p) { (*static_cast<D *>(p))(); },
        [](void *dst, void *src) noexcept {
            ::new (dst) D(std::move(*static_cast<D *>(src)));
            static_cast<D *>(src)->~D();
        },
        [](void *p) noexcept { static_cast<D *>(p)->~D(); },
        false,
        copyRecipe<D>(),
    };

    template <typename D>
    static constexpr Ops kHeapOps = {
        [](void *p) { (**static_cast<D **>(p))(); },
        [](void *dst, void *src) noexcept {
            ::new (dst) D *(*static_cast<D **>(src));
        },
        [](void *p) noexcept { delete *static_cast<D **>(p); },
        true,
        kRelocateFn,
    };

    void
    moveFrom(InlineFn &o) noexcept
    {
        if (o.ops_) {
            // Fixed-size copies beat an indirect relocate call for
            // trivial captures; the compare chain is predictable at
            // any call site dominated by one callback type. The
            // bucketed sizes deliberately copy up to 48 bytes even
            // when the capture is smaller — unsigned-char copies of
            // the uninitialized tail are well-defined and never read
            // back, but GCC's -Wmaybe-uninitialized can't see that.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
            switch (o.ops_->copy_bytes) {
              case 0:
                break;
              case 16:
                __builtin_memcpy(buf_, o.buf_, 16);
                break;
              case 32:
                __builtin_memcpy(buf_, o.buf_, 32);
                break;
              case 48:
                __builtin_memcpy(buf_, o.buf_, 48);
                break;
              default:
                o.ops_->relocate(buf_, o.buf_);
                break;
            }
#pragma GCC diagnostic pop
            ops_ = o.ops_;
            o.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const Ops *ops_ = nullptr;
};

} // namespace jetsim::sim

#endif // JETSIM_SIM_INLINE_FN_HH
