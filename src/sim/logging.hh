/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * `fatal()` terminates the run for conditions that are the user's
 * fault (bad configuration, impossible experiment spec). `panic()`
 * aborts for conditions that indicate a bug in the simulator itself.
 * `warn()` and `inform()` report without stopping.
 */

#ifndef JETSIM_SIM_LOGGING_HH
#define JETSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace jetsim::sim {

/** Severity of a log message. */
enum class LogLevel { Info, Warn, Fatal, Panic };

/**
 * Sink invoked for every log message. Tests may replace it to capture
 * output; the default writes to stderr.
 */
using LogSink = void (*)(LogLevel, const std::string &);

/**
 * Replace the process-wide log sink; returns the previous sink.
 *
 * The swap is atomic but deliberately does not wait for concurrent
 * log calls to finish: a thread may still be executing the *old*
 * sink when this returns. Sinks are therefore required to be
 * stateless function pointers that remain callable for the life of
 * the process — do not install a sink that reads state you intend
 * to tear down while other threads can still log (annotated
 * benign-racy in the PR-7 thread-safety audit; see logging.cc).
 */
LogSink setLogSink(LogSink sink);

/** printf-style message formatting used by the helpers below. */
std::string vformat(const char *fmt, std::va_list ap);

/** Report a condition the user should know about but not worry over. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a condition that might indicate degraded behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate with exit(1): the simulation cannot continue due to a
 * user-level error (invalid configuration or arguments).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort: an internal invariant was violated; this is a simulator bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** JETSIM_ASSERT's slow path; `fmt` adds optional context. */
[[noreturn]] void assertFail(const char *func, const char *cond,
                             const char *fmt = nullptr, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Assertion that survives NDEBUG builds: panics with a message when
 * the condition is false. Optional printf-style arguments add
 * context to the failure report.
 */
#define JETSIM_ASSERT(cond, ...)                                        \
    do {                                                                \
        if (!(cond))                                                    \
            ::jetsim::sim::assertFail(__func__, #cond                   \
                                          __VA_OPT__(, ) __VA_ARGS__);  \
    } while (0)

} // namespace jetsim::sim

#endif // JETSIM_SIM_LOGGING_HH
