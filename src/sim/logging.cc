#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace jetsim::sim {

namespace {

void
defaultSink(LogLevel level, const std::string &msg)
{
    const char *tag = "info";
    switch (level) {
      case LogLevel::Info: tag = "info"; break;
      case LogLevel::Warn: tag = "warn"; break;
      case LogLevel::Fatal: tag = "fatal"; break;
      case LogLevel::Panic: tag = "panic"; break;
    }
    std::fprintf(stderr, "jetsim: %s: %s\n", tag, msg.c_str());
}

// Atomic: core::Runner workers log concurrently, and a plain global
// here was the first race the pool exposed.
//
// Benign-racy by contract (PR-7 thread-safety audit): a logger that
// loaded the old sink may still be *executing* it after a concurrent
// setLogSink() returns — the swap is atomic but does not wait for
// in-flight calls to drain. That is sound only because LogSink is a
// plain function pointer with no owned state to tear down; sinks
// must stay callable for the life of the process (see the contract
// on setLogSink in logging.hh). A sink with captured state would
// need RCU-style quiescence the simulator has no use for.
std::atomic<LogSink> current_sink{&defaultSink};

LogSink
sink()
{
    return current_sink.load(std::memory_order_acquire);
}

} // namespace

LogSink
setLogSink(LogSink new_sink)
{
    return current_sink.exchange(new_sink ? new_sink : &defaultSink,
                                 std::memory_order_acq_rel);
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    sink()(LogLevel::Info, vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    sink()(LogLevel::Warn, vformat(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    sink()(LogLevel::Fatal, vformat(fmt, ap));
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    sink()(LogLevel::Panic, vformat(fmt, ap));
    va_end(ap);
    std::abort();
}

void
assertFail(const char *func, const char *cond, const char *fmt, ...)
{
    std::string msg =
        "assertion failed: " + std::string(func) + ": " + cond;
    if (fmt) {
        std::va_list ap;
        va_start(ap, fmt);
        msg += ": " + vformat(fmt, ap);
        va_end(ap);
    }
    sink()(LogLevel::Panic, msg);
    std::abort();
}

} // namespace jetsim::sim
