/**
 * @file
 * Sweep helpers: run grids of experiments the way the paper's
 * evaluation does (precision sweeps, batch x process grids).
 *
 * Since the Runner landed these are thin wrappers that expand the
 * grid into a spec list and hand it to a default-configured
 * core::Runner: parallel across cells (JETSIM_THREADS override,
 * JETSIM_THREADS=1 forces the old serial path) and served from the
 * result cache when JETSIM_CACHE_DIR is set. Results are always in
 * grid order and bit-identical to a serial run.
 */

#ifndef JETSIM_CORE_SWEEP_HH
#define JETSIM_CORE_SWEEP_HH

#include <functional>
#include <optional>
#include <vector>

#include "core/runner.hh"

namespace jetsim::core {

/** Run @p base once per precision in @p precisions. */
std::vector<ExperimentResult>
sweepPrecision(ExperimentSpec base,
               const std::vector<soc::Precision> &precisions,
               const ProgressFn &progress = nullptr);

/** Run @p base once per batch size. */
std::vector<ExperimentResult>
sweepBatch(ExperimentSpec base, const std::vector<int> &batches,
           const ProgressFn &progress = nullptr);

/** Run the full batch x processes grid (row-major over processes). */
std::vector<ExperimentResult>
sweepGrid(ExperimentSpec base, const std::vector<int> &batches,
          const std::vector<int> &processes,
          const ProgressFn &progress = nullptr);

/**
 * Cell pre-screen: return false to prune the cell (skip its
 * simulation). core stays analyzer-agnostic — src/absint supplies
 * the sound implementation (prescreen.hh), tests may stub it.
 */
using CellScreenFn = std::function<bool(const ExperimentSpec &)>;

/** A grid run where some cells were statically pruned. */
struct ScreenedSweep
{
    /** Grid order; nullopt for pruned cells. */
    std::vector<std::optional<ExperimentResult>> cells;
    int simulated = 0;
    int pruned = 0;
};

/**
 * sweepGrid with a pre-screen: cells where @p keep returns false are
 * never simulated. Cells that do run are submitted in grid order to
 * the same Runner as sweepGrid, so their results are bit-identical
 * to an unscreened sweep (each cell's simulation is hermetic).
 */
ScreenedSweep
sweepGridScreened(ExperimentSpec base, const std::vector<int> &batches,
                  const std::vector<int> &processes,
                  const CellScreenFn &keep,
                  const ProgressFn &progress = nullptr);

} // namespace jetsim::core

#endif // JETSIM_CORE_SWEEP_HH
