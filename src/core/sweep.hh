/**
 * @file
 * Sweep helpers: run grids of experiments the way the paper's
 * evaluation does (precision sweeps, batch x process grids).
 */

#ifndef JETSIM_CORE_SWEEP_HH
#define JETSIM_CORE_SWEEP_HH

#include <functional>
#include <vector>

#include "core/experiment.hh"

namespace jetsim::core {

/** Optional progress callback (label of the cell about to run). */
using ProgressFn = std::function<void(const std::string &)>;

/** Run @p base once per precision in @p precisions. */
std::vector<ExperimentResult>
sweepPrecision(ExperimentSpec base,
               const std::vector<soc::Precision> &precisions,
               const ProgressFn &progress = nullptr);

/** Run @p base once per batch size. */
std::vector<ExperimentResult>
sweepBatch(ExperimentSpec base, const std::vector<int> &batches,
           const ProgressFn &progress = nullptr);

/** Run the full batch x processes grid (row-major over processes). */
std::vector<ExperimentResult>
sweepGrid(ExperimentSpec base, const std::vector<int> &batches,
          const std::vector<int> &processes,
          const ProgressFn &progress = nullptr);

} // namespace jetsim::core

#endif // JETSIM_CORE_SWEEP_HH
