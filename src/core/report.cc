#include "core/report.hh"

#include <cstdio>
#include <sstream>

#include "core/bottleneck.hh"
#include "core/profiler.hh"
#include "prof/report.hh"
#include "sim/logging.hh"

namespace jetsim::core {

namespace {

void
metricRow(std::ostringstream &os, const char *name,
          const std::string &value, const char *unit)
{
    os << "| " << name << " | " << value << " | " << unit << " |\n";
}

void
cdfRow(std::ostringstream &os, const char *name, const prof::Cdf &c)
{
    if (c.empty())
        return;
    os << "| " << name << " | " << prof::fmt(c.quantile(0.10), 1)
       << " | " << prof::fmt(c.median(), 1) << " | "
       << prof::fmt(c.quantile(0.90), 1) << " | "
       << prof::fmt(c.max(), 1) << " |\n";
}

} // namespace

std::string
renderReport(const ExperimentResult &light,
             const ExperimentResult &deep)
{
    std::ostringstream os;
    const auto &spec = light.spec;

    os << "# Profiling report: " << spec.label() << "\n\n";
    os << "- device: `" << spec.device << "`\n";
    os << "- model: `" << spec.model << "` at `"
       << soc::name(spec.precision) << "`, batch " << spec.batch
       << ", " << spec.processes << " process(es)\n";
    os << "- deployment: "
       << (light.all_deployed ? "ok" : "FAILED (out of memory)")
       << ", " << prof::fmt(light.workload_mem_mb, 0)
       << " MiB pinned\n\n";

    if (!light.all_deployed) {
        os << "Only " << light.deployed_count << "/"
           << spec.processes
           << " processes fit in unified memory; no measurements "
              "were taken (the paper's boards reboot here).\n";
        return os.str();
    }

    os << "## Phase 1 — trtexec + jetson-stats (non-intrusive)\n\n";
    os << "| metric | value | unit |\n|---|---|---|\n";
    metricRow(os, "throughput (total)",
              prof::fmt(light.total_throughput, 1), "img/s");
    metricRow(os, "throughput per process",
              prof::fmt(light.throughput_per_process, 1), "img/s");
    metricRow(os, "power (avg / max)",
              prof::fmt(light.avg_power_w) + " / " +
                  prof::fmt(light.max_power_w),
              "W");
    metricRow(os, "energy per image",
              prof::fmt(light.avg_power_w / light.total_throughput,
                        3),
              "W/img");
    metricRow(os, "GPU utilisation",
              prof::fmt(light.gpu_util_pct, 1), "%");
    metricRow(os, "memory (incl. OS)", prof::fmt(light.mem_pct, 1),
              "%");
    metricRow(os, "DVFS throttle events",
              std::to_string(light.dvfs_throttle_events), "");
    os << "\n";

    os << "## Phase 2 — Nsight tracing (intrusive)\n\n";
    os << "| metric | value | unit |\n|---|---|---|\n";
    metricRow(os, "throughput under profiler",
              prof::fmt(deep.total_throughput, 1), "img/s");
    metricRow(
        os, "profiler intrusion",
        prof::fmt(100.0 * (1.0 - deep.total_throughput /
                                     light.total_throughput),
                  0),
        "% slower");
    metricRow(os, "kernels traced", std::to_string(deep.kernels), "");
    metricRow(os, "kernel duration (mean)",
              prof::fmt(deep.kernel_us_mean, 1), "us");
    os << "\n### Utilisation counters (percent)\n\n";
    os << "| counter | p10 | p50 | p90 | max |\n|---|---|---|---|---|\n";
    cdfRow(os, "SM active", deep.sm_active);
    cdfRow(os, "issue slot", deep.issue_slot);
    cdfRow(os, "TC utilisation", deep.tc_util);
    os << "\n";

    os << "## Kernel-level decomposition (EC_i = K + T + C + B)\n\n";
    const auto b = analyzeBottleneck(deep);
    os << "| term | ms per EC |\n|---|---|\n";
    os << "| EC duration | " << prof::fmt(b.ec_ms) << " |\n";
    os << "| K (launch API) | " << prof::fmt(b.launch_ms) << " |\n";
    os << "| T (re-dispatch wait) | " << prof::fmt(b.resched_ms)
       << " |\n";
    os << "| C (CPU work) | " << prof::fmt(b.cpu_ms) << " |\n";
    os << "| — cache penalty share | " << prof::fmt(b.cache_ms)
       << " |\n";
    os << "| B (blocking) | " << prof::fmt(b.blocking_ms) << " |\n";
    os << "| sync span | " << prof::fmt(b.sync_ms) << " |\n\n";
    os << "**Bottleneck:** `" << bottleneckName(b.primary) << "` — "
       << b.explanation << "\n\n";

    const auto obs = makeObservations({light, deep});
    if (!obs.empty()) {
        os << "## Observations\n\n";
        for (const auto &o : obs)
            os << "- **" << o.id << "**: " << o.text << "\n";
    }
    return os.str();
}

bool
writeReport(const ExperimentSpec &spec, const std::string &path)
{
    auto [light, deep] = runTwoPhase(spec);
    const std::string doc = renderReport(light, deep);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
}

} // namespace jetsim::core
