/**
 * @file
 * Fleet experiments: a serving deployment over many boards on the
 * sharded event core.
 *
 * A FleetSpec describes a heterogeneous fleet of simulated Jetson
 * boards, each running one open-loop inference server
 * (workload::ServingProcess), plus a central load balancer that
 * receives fleet-wide Poisson traffic and dispatches requests
 * round-robin over the boards with a fixed network latency. The
 * dispatch hop is the *only* cross-device edge, which makes it the
 * sharded engine's lookahead: with K shards (soc::ShardMap placement)
 * the per-device event streams run in parallel between balancer
 * decisions.
 *
 * The determinism contract extends core::Runner's: runFleet() is
 * bit-identical — equal resultDigest(FleetResult) — at *any*
 * (shards, threads) configuration, including the serial merge
 * fallback. tests/core/fleet_test.cc and the sharded differential
 * battery (tests/sim/sharded_diff_test.cc) are the proof; CI pass 1c
 * gates the committed digests (GOLDEN_fleet.json via
 * `simcheck --fleet-golden`).
 */

#ifndef JETSIM_CORE_FLEET_HH
#define JETSIM_CORE_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "soc/precision.hh"

namespace jetsim::core {

/** One board of the fleet and the engine it serves. */
struct FleetDevice
{
    std::string device = "orin-nano"; ///< soc::deviceByName
    std::string model = "resnet50";   ///< models::modelByName
    soc::Precision precision = soc::Precision::Int8;
    int batch = 1;
    /** Device-local open-loop arrivals (img/s) on top of balancer
     * traffic; 0 = balancer-fed only. */
    double local_rate = 0.0;
};

/** A fleet serving deployment. */
struct FleetSpec
{
    std::vector<FleetDevice> devices;
    /** Fleet-wide Poisson arrivals (img/s) at the balancer,
     * dispatched round-robin. 0 disables the balancer. */
    double balancer_rate = 200.0;
    /** Balancer-to-device dispatch latency: the one cross-device
     * edge, and therefore the sharded engine's lookahead. */
    sim::Tick dispatch_latency = sim::usec(200);
    /**
     * Hierarchical dispatch: the root balancer lives alone on a
     * reserved shard (soc::ShardMap::balancerReserved) and routes
     * each request to the destination shard's *sub-balancer*, which
     * forwards it device-locally after fanout_latency. Requests
     * arrive at origin + dispatch_latency + fanout_latency at any
     * shard count — the two-hop path is part of the workload, so the
     * flag is spec-level and digested (via label()). This removes
     * the root as the fleets' single serialization point: with the
     * sub-hop on shard-local ports, only the root shard bounds the
     * engine's fused epoch horizon.
     */
    bool hierarchical = false;
    /** Sub-balancer-to-device forwarding latency (hierarchical
     * fleets only). */
    sim::Tick fanout_latency = sim::usec(50);
    sim::Tick warmup = sim::msec(100);
    sim::Tick duration = sim::msec(500);
    std::uint64_t seed = 1;

    /** "fleet[256x orin-nano/resnet50/int8 b1, ...] r200 s1" style
     * tag; runs of identical boards are run-length compressed so a
     * 1000-board fleet stays one line. */
    std::string label() const;
};

/** Per-board outcome of a fleet run. */
struct FleetDeviceResult
{
    std::string name;    ///< "srv0", matching FleetSpec order
    std::string device;  ///< board name
    bool deployed = false;
    std::uint64_t arrived = 0; ///< requests reaching this board
    std::uint64_t served = 0;  ///< requests completed in the window
    double throughput = 0.0;   ///< served img/s
    double p50_ms = 0.0;       ///< request latency median
    double p99_ms = 0.0;
    double max_ms = 0.0;
    std::uint64_t max_queue = 0; ///< deepest backlog observed
};

/** Everything one fleet run produces. */
struct FleetResult
{
    FleetSpec spec;
    bool all_deployed = false;
    std::vector<FleetDeviceResult> devices;
    double total_throughput = 0.0;  ///< served img/s, fleet-wide
    double p99_ms = 0.0;            ///< fleet-wide request p99
    std::uint64_t dispatched = 0;   ///< balancer decisions (window)
    /** Events executed across all shards — identical at any
     * shard/thread count (the same simulation runs either way), so
     * it is folded into the digest as a structural check. */
    std::uint64_t events = 0;
    /** @name Engine diagnostics — mode-dependent, never digested.
     * @{ */
    std::uint64_t epochs = 0;
    std::uint64_t barriers = 0;
    std::uint64_t merge_steps = 0;
    std::uint64_t messages = 0;
    /** @} */
};

/** How to run a fleet: shard/thread topology of the event core. */
struct FleetOptions
{
    int shards = 1;
    int threads = 1;
    /** Engine lookahead. -1 = auto (the spec's dispatch_latency);
     * 0 = force the serial-merge fallback. */
    sim::Tick lookahead = -1;
};

/** Simulate @p spec under @p opts (bit-identical at any opts). */
FleetResult runFleet(const FleetSpec &spec,
                     const FleetOptions &opts = {});

/** @name Replay specs (differential harness <-> simcheck)
 * A failing sharded-vs-serial comparison dumps its spec as a flat
 * key=value file that `simcheck --fleet-replay` re-runs. @{ */
bool writeFleetReplay(const FleetSpec &spec, const FleetOptions &opts,
                      const std::string &path);
bool readFleetReplay(const std::string &path, FleetSpec &spec,
                     FleetOptions &opts, std::string &err);
/** @} */

} // namespace jetsim::core

#endif // JETSIM_CORE_FLEET_HH
