#include "core/bottleneck.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "soc/device_spec.hh"

namespace jetsim::core {

const char *
bottleneckName(Bottleneck b)
{
    switch (b) {
      case Bottleneck::GpuCompute: return "gpu-compute";
      case Bottleneck::CpuBlocking: return "cpu-blocking";
      case Bottleneck::KernelLaunch: return "kernel-launch";
      case Bottleneck::MemoryCapacity: return "memory-capacity";
      case Bottleneck::PowerThrottle: return "power-throttle";
    }
    return "?";
}

EcBreakdown
analyzeBottleneck(const ExperimentResult &res)
{
    EcBreakdown b;
    const auto &m = res.mean;
    b.ec_ms = m.ec_ms;
    b.launch_ms = m.launch_ms_per_ec;
    b.resched_ms = m.resched_ms_per_ec;
    b.cpu_ms = m.cpu_ms_per_ec;
    b.cache_ms = m.cache_ms_per_ec;
    b.blocking_ms = m.blocking_ms_per_ec;
    b.sync_ms = m.sync_ms;

    char buf[256];
    if (!res.all_deployed) {
        b.primary = Bottleneck::MemoryCapacity;
        std::snprintf(buf, sizeof(buf),
                      "only %d/%d processes fit in unified memory",
                      res.deployed_count, res.spec.processes);
        b.explanation = buf;
        return b;
    }

    const double wait = b.blocking_ms + b.resched_ms;
    if (b.ec_ms > 0 && wait > 0.20 * b.ec_ms) {
        b.primary = Bottleneck::CpuBlocking;
        std::snprintf(buf, sizeof(buf),
                      "scheduler wait %.2f ms is %.0f%% of the %.2f ms "
                      "EC (processes exceed the heavy-load cores)",
                      wait, 100.0 * wait / b.ec_ms, b.ec_ms);
        b.explanation = buf;
        return b;
    }

    if (res.dvfs_throttle_events > 3 && res.final_freq_frac < 0.9) {
        b.primary = Bottleneck::PowerThrottle;
        std::snprintf(buf, sizeof(buf),
                      "DVFS throttled %d times; GPU settled at %.0f%% "
                      "of max frequency to hold the power cap",
                      res.dvfs_throttle_events,
                      100.0 * res.final_freq_frac);
        b.explanation = buf;
        return b;
    }

    if (b.ec_ms > 0 && b.launch_ms > 0.30 * b.ec_ms) {
        b.primary = Bottleneck::KernelLaunch;
        std::snprintf(buf, sizeof(buf),
                      "launch-API time %.2f ms is %.0f%% of the EC",
                      b.launch_ms, 100.0 * b.launch_ms / b.ec_ms);
        b.explanation = buf;
        return b;
    }

    b.primary = Bottleneck::GpuCompute;
    b.explanation = "GPU execution dominates the EC timeline";
    return b;
}

namespace {

std::string
format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

std::string
format(const char *fmt, ...)
{
    char buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace

std::vector<Observation>
makeObservations(const std::vector<ExperimentResult> &results)
{
    std::vector<Observation> out;
    if (results.empty())
        return out;

    // --- best precision per (device, model): single-process cells.
    std::map<std::pair<std::string, std::string>,
             std::map<soc::Precision, double>>
        tput;
    for (const auto &r : results)
        if (r.all_deployed && r.spec.processes == 1)
            tput[{r.spec.device, r.spec.model}][r.spec.precision] =
                r.total_throughput;
    for (const auto &[key, by_prec] : tput) {
        if (by_prec.size() < 2)
            continue;
        auto best = by_prec.begin();
        for (auto it = by_prec.begin(); it != by_prec.end(); ++it)
            if (it->second > best->second)
                best = it;
        out.push_back(
            {"best-precision",
             format("%s: %s precision is optimal for %s "
                    "(%.0f img/s)",
                    key.first.c_str(), soc::name(best->first),
                    key.second.c_str(), best->second)});
    }

    // --- concurrency threshold: blocking appears past the big cores.
    for (const auto &r : results) {
        if (!r.all_deployed)
            continue;
        const auto spec = soc::deviceByName(r.spec.device);
        if (r.spec.processes > spec.bigCores() &&
            r.mean.blocking_ms_per_ec > 0.5) {
            out.push_back(
                {"blocking-threshold",
                 format("%s: with %d processes (> %d heavy-load "
                        "cores) per-EC blocking reaches %.2f ms",
                        r.spec.label().c_str(), r.spec.processes,
                        spec.bigCores(), r.mean.blocking_ms_per_ec)});
            break; // one witness suffices
        }
    }

    // --- power envelope compliance.
    double max_power = 0;
    std::string max_label;
    for (const auto &r : results)
        if (r.max_power_w > max_power) {
            max_power = r.max_power_w;
            max_label = r.spec.device;
        }
    if (max_power > 0)
        out.push_back(
            {"power-envelope",
             format("peak power %.2f W (%s) stayed within the board "
                    "power-mode budget",
                    max_power, max_label.c_str())});

    // --- SM active vs issue-slot gap (phase-2 runs only).
    for (const auto &r : results) {
        if (r.sm_active.empty() || r.issue_slot.empty())
            continue;
        const double sm = r.sm_active.median();
        const double is = r.issue_slot.median();
        if (sm > 70.0 && is < 45.0) {
            out.push_back(
                {"issue-stall",
                 format("%s: SM active %.0f%% but issue-slot only "
                        "%.0f%% - instruction stalls cap throughput",
                        r.spec.label().c_str(), sm, is)});
            break;
        }
    }

    // --- memory-capacity failures.
    for (const auto &r : results)
        if (!r.all_deployed) {
            out.push_back(
                {"oom",
                 format("%s: deployment failed (%d/%d processes fit) "
                        "- unified memory is the scaling wall",
                        r.spec.label().c_str(), r.deployed_count,
                        r.spec.processes)});
            break;
        }

    return out;
}

} // namespace jetsim::core
