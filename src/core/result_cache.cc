#include "core/result_cache.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "check/digest.hh"
#include "sim/logging.hh"

namespace jetsim::core {

namespace {

// ---------------------------------------------------------------------
// Canonical key derivation. Every field participates; the version
// constant invalidates old entries when the schema evolves.
// ---------------------------------------------------------------------

void
addCommon(check::Digest &d, const std::string &device, int phase,
          sim::Tick warmup, sim::Tick duration, int pre_enqueue,
          bool dvfs, bool biglittle, bool spatial_sharing,
          std::uint64_t seed)
{
    d.add(device);
    d.add(static_cast<std::int64_t>(phase));
    d.add(static_cast<std::int64_t>(warmup));
    d.add(static_cast<std::int64_t>(duration));
    d.add(static_cast<std::int64_t>(pre_enqueue));
    d.add(std::uint64_t{dvfs});
    d.add(std::uint64_t{biglittle});
    d.add(std::uint64_t{spatial_sharing});
    d.add(seed);
}

// ---------------------------------------------------------------------
// JSON writer. Doubles use 17 significant digits (bit-exact round
// trip for finite IEEE values); integers are written verbatim so
// 64-bit seeds and tick counts never pass through a double.
// ---------------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

class JsonWriter
{
  public:
    void key(const std::string &k)
    {
        comma();
        out_ << '"' << jsonEscape(k) << "\":";
        pending_ = false;
    }

    void beginObject() { prefix(); out_ << '{'; first_ = true; }
    void endObject() { out_ << '}'; first_ = false; }
    void beginArray() { prefix(); out_ << '['; first_ = true; }
    void endArray() { out_ << ']'; first_ = false; }

    void value(double v)
    {
        prefix();
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ << buf;
    }

    void value(std::int64_t v) { prefix(); out_ << v; }
    void value(std::uint64_t v) { prefix(); out_ << v; }
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v) { prefix(); out_ << (v ? "true" : "false"); }

    void value(const std::string &s)
    {
        prefix();
        out_ << '"' << jsonEscape(s) << '"';
    }

    void field(const std::string &k, double v) { key(k); value(v); }
    void field(const std::string &k, std::int64_t v) { key(k); value(v); }
    void field(const std::string &k, std::uint64_t v) { key(k); value(v); }
    void field(const std::string &k, int v) { key(k); value(v); }
    void field(const std::string &k, bool v) { key(k); value(v); }
    void field(const std::string &k, const std::string &v)
    {
        key(k);
        value(v);
    }

    std::string str() const { return out_.str(); }

  private:
    void comma()
    {
        if (!first_)
            out_ << ',';
        first_ = false;
    }

    /** Array elements need commas; values after key() do not. */
    void prefix()
    {
        if (pending_)
            comma();
        pending_ = true;
    }

    std::ostringstream out_;
    bool first_ = true;
    bool pending_ = true;
};

// ---------------------------------------------------------------------
// JSON parser: minimal recursive descent over the subset the writer
// emits. Numbers keep their raw token so the consumer decides the
// type (bit-exact doubles via strtod, full-range u64 via strtoull).
// Any malformed input yields "no value", which the cache treats as a
// miss.
// ---------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; ///< decoded string, or raw number token
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *find(const std::string &k) const
    {
        if (kind != Kind::Object)
            return nullptr;
        for (const auto &[key, v] : fields)
            if (key == k)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    std::optional<JsonValue> parse()
    {
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != s_.size()) // trailing garbage
            return std::nullopt;
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool eat(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::optional<JsonValue> parseValue()
    {
        skipWs();
        if (pos_ >= s_.size())
            return std::nullopt;
        const char c = s_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f' || c == 'n') {
            JsonValue v;
            if (literal("true")) {
                v.kind = JsonValue::Kind::Bool;
                v.boolean = true;
                return v;
            }
            if (literal("false")) {
                v.kind = JsonValue::Kind::Bool;
                return v;
            }
            if (literal("null"))
                return v;
            return std::nullopt;
        }
        return parseNumber();
    }

    std::optional<JsonValue> parseObject()
    {
        if (!eat('{'))
            return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (eat('}'))
            return v;
        for (;;) {
            auto key = parseString();
            if (!key || !eat(':'))
                return std::nullopt;
            auto val = parseValue();
            if (!val)
                return std::nullopt;
            v.fields.emplace_back(std::move(key->text),
                                  std::move(*val));
            if (eat(','))
                continue;
            if (eat('}'))
                return v;
            return std::nullopt;
        }
    }

    std::optional<JsonValue> parseArray()
    {
        if (!eat('['))
            return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (eat(']'))
            return v;
        for (;;) {
            auto item = parseValue();
            if (!item)
                return std::nullopt;
            v.items.push_back(std::move(*item));
            if (eat(','))
                continue;
            if (eat(']'))
                return v;
            return std::nullopt;
        }
    }

    std::optional<JsonValue> parseString()
    {
        if (!eat('"'))
            return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.text += c;
                continue;
            }
            if (pos_ >= s_.size())
                return std::nullopt;
            const char e = s_[pos_++];
            switch (e) {
              case '"': v.text += '"'; break;
              case '\\': v.text += '\\'; break;
              case '/': v.text += '/'; break;
              case 'n': v.text += '\n'; break;
              case 't': v.text += '\t'; break;
              case 'r': v.text += '\r'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return std::nullopt;
                const std::string hex = s_.substr(pos_, 4);
                pos_ += 4;
                char *end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4 || code < 0 || code > 0x7f)
                    return std::nullopt; // writer only emits ASCII
                v.text += static_cast<char>(code);
                break;
              }
              default: return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue> parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '-' || s_[pos_] == '+')) {
            digits |= std::isdigit(static_cast<unsigned char>(s_[pos_]));
            ++pos_;
        }
        if (!digits)
            return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.text = s_.substr(start, pos_ - start);
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// Typed getters: nullopt on kind/type mismatch so one missing or
// mistyped field poisons the whole load (treated as a miss).

std::optional<double>
getDouble(const JsonValue *v)
{
    if (!v || v->kind != JsonValue::Kind::Number)
        return std::nullopt;
    char *end = nullptr;
    const double d = std::strtod(v->text.c_str(), &end);
    if (end != v->text.c_str() + v->text.size())
        return std::nullopt;
    return d;
}

std::optional<std::int64_t>
getI64(const JsonValue *v)
{
    if (!v || v->kind != JsonValue::Kind::Number)
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const long long x = std::strtoll(v->text.c_str(), &end, 10);
    if (errno || end != v->text.c_str() + v->text.size())
        return std::nullopt;
    return x;
}

std::optional<std::uint64_t>
getU64(const JsonValue *v)
{
    if (!v || v->kind != JsonValue::Kind::Number ||
        (!v->text.empty() && v->text[0] == '-'))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long x = std::strtoull(v->text.c_str(), &end, 10);
    if (errno || end != v->text.c_str() + v->text.size())
        return std::nullopt;
    return x;
}

std::optional<bool>
getBool(const JsonValue *v)
{
    if (!v || v->kind != JsonValue::Kind::Bool)
        return std::nullopt;
    return v->boolean;
}

std::optional<std::string>
getString(const JsonValue *v)
{
    if (!v || v->kind != JsonValue::Kind::String)
        return std::nullopt;
    return v->text;
}

// ---------------------------------------------------------------------
// Spec / result <-> JSON
// ---------------------------------------------------------------------

void
writeSpec(JsonWriter &w, const ExperimentSpec &s)
{
    w.beginObject();
    w.field("device", s.device);
    w.field("model", s.model);
    w.field("precision", std::string(soc::name(s.precision)));
    w.field("batch", s.batch);
    w.field("processes", s.processes);
    // std::string() is load-bearing: a bare const char* would pick
    // the bool overload of field().
    w.field("phase",
            std::string(s.phase == Phase::Deep ? "deep" : "light"));
    w.field("warmup", static_cast<std::int64_t>(s.warmup));
    w.field("duration", static_cast<std::int64_t>(s.duration));
    w.field("pre_enqueue", s.pre_enqueue);
    w.field("dvfs", s.dvfs);
    w.field("biglittle", s.biglittle);
    w.field("spatial_sharing", s.spatial_sharing);
    w.field("seed", s.seed);
    w.endObject();
}

void
writeSpec(JsonWriter &w, const MixedExperimentSpec &s)
{
    w.beginObject();
    w.field("device", s.device);
    w.key("workloads");
    w.beginArray();
    for (const auto &wl : s.workloads) {
        w.beginObject();
        w.field("model", wl.model);
        w.field("precision", std::string(soc::name(wl.precision)));
        w.field("batch", wl.batch);
        w.field("processes", wl.processes);
        w.endObject();
    }
    w.endArray();
    // std::string() is load-bearing: a bare const char* would pick
    // the bool overload of field().
    w.field("phase",
            std::string(s.phase == Phase::Deep ? "deep" : "light"));
    w.field("warmup", static_cast<std::int64_t>(s.warmup));
    w.field("duration", static_cast<std::int64_t>(s.duration));
    w.field("pre_enqueue", s.pre_enqueue);
    w.field("dvfs", s.dvfs);
    w.field("biglittle", s.biglittle);
    w.field("spatial_sharing", s.spatial_sharing);
    w.field("seed", s.seed);
    w.endObject();
}

/** Spec echo check: the stored spec must equal the requested one. */
bool
specMatches(const JsonValue *v, const ExperimentSpec &s)
{
    if (!v)
        return false;
    return getString(v->find("device")) == s.device &&
           getString(v->find("model")) == s.model &&
           getString(v->find("precision")) ==
               std::string(soc::name(s.precision)) &&
           getI64(v->find("batch")) == std::int64_t{s.batch} &&
           getI64(v->find("processes")) == std::int64_t{s.processes} &&
           getString(v->find("phase")) ==
               std::string(s.phase == Phase::Deep ? "deep" : "light") &&
           getI64(v->find("warmup")) == std::int64_t{s.warmup} &&
           getI64(v->find("duration")) == std::int64_t{s.duration} &&
           getI64(v->find("pre_enqueue")) ==
               std::int64_t{s.pre_enqueue} &&
           getBool(v->find("dvfs")) == s.dvfs &&
           getBool(v->find("biglittle")) == s.biglittle &&
           getBool(v->find("spatial_sharing")) == s.spatial_sharing &&
           getU64(v->find("seed")) == s.seed;
}

bool
specMatches(const JsonValue *v, const MixedExperimentSpec &s)
{
    if (!v)
        return false;
    const JsonValue *wls = v->find("workloads");
    if (!wls || wls->kind != JsonValue::Kind::Array ||
        wls->items.size() != s.workloads.size())
        return false;
    for (std::size_t i = 0; i < s.workloads.size(); ++i) {
        const auto &wl = s.workloads[i];
        const auto &jw = wls->items[i];
        if (getString(jw.find("model")) != wl.model ||
            getString(jw.find("precision")) !=
                std::string(soc::name(wl.precision)) ||
            getI64(jw.find("batch")) != std::int64_t{wl.batch} ||
            getI64(jw.find("processes")) != std::int64_t{wl.processes})
            return false;
    }
    return getString(v->find("device")) == s.device &&
           getString(v->find("phase")) ==
               std::string(s.phase == Phase::Deep ? "deep" : "light") &&
           getI64(v->find("warmup")) == std::int64_t{s.warmup} &&
           getI64(v->find("duration")) == std::int64_t{s.duration} &&
           getI64(v->find("pre_enqueue")) ==
               std::int64_t{s.pre_enqueue} &&
           getBool(v->find("dvfs")) == s.dvfs &&
           getBool(v->find("biglittle")) == s.biglittle &&
           getBool(v->find("spatial_sharing")) == s.spatial_sharing &&
           getU64(v->find("seed")) == s.seed;
}

void
writeCdf(JsonWriter &w, const std::string &k, const prof::Cdf &c)
{
    w.key(k);
    w.beginArray();
    for (const double x : c.samples())
        w.value(x);
    w.endArray();
}

bool
readCdf(const JsonValue *v, prof::Cdf &out)
{
    if (!v || v->kind != JsonValue::Kind::Array)
        return false;
    for (const auto &item : v->items) {
        const auto x = getDouble(&item);
        if (!x)
            return false;
        out.add(*x);
    }
    return true;
}

void
writeProc(JsonWriter &w, const ProcessMetrics &p)
{
    w.beginObject();
    w.field("name", p.name);
    w.field("deployed", p.deployed);
    w.field("throughput", p.throughput);
    w.field("ec_ms", p.ec_ms);
    w.field("pipeline_ms", p.pipeline_ms);
    w.field("enqueue_ms", p.enqueue_ms);
    w.field("launch_ms_per_ec", p.launch_ms_per_ec);
    w.field("sync_ms", p.sync_ms);
    w.field("blocking_ms_per_ec", p.blocking_ms_per_ec);
    w.field("resched_ms_per_ec", p.resched_ms_per_ec);
    w.field("cpu_ms_per_ec", p.cpu_ms_per_ec);
    w.field("cache_ms_per_ec", p.cache_ms_per_ec);
    w.field("migrations", p.migrations);
    w.field("preemptions", p.preemptions);
    w.field("ecs", p.ecs);
    w.endObject();
}

bool
readProc(const JsonValue *v, ProcessMetrics &p)
{
    if (!v || v->kind != JsonValue::Kind::Object)
        return false;
    const auto name = getString(v->find("name"));
    const auto deployed = getBool(v->find("deployed"));
    const auto throughput = getDouble(v->find("throughput"));
    const auto ec = getDouble(v->find("ec_ms"));
    const auto pipe = getDouble(v->find("pipeline_ms"));
    const auto enq = getDouble(v->find("enqueue_ms"));
    const auto launch = getDouble(v->find("launch_ms_per_ec"));
    const auto sync = getDouble(v->find("sync_ms"));
    const auto block = getDouble(v->find("blocking_ms_per_ec"));
    const auto resched = getDouble(v->find("resched_ms_per_ec"));
    const auto cpu = getDouble(v->find("cpu_ms_per_ec"));
    const auto cache = getDouble(v->find("cache_ms_per_ec"));
    const auto migrations = getU64(v->find("migrations"));
    const auto preemptions = getU64(v->find("preemptions"));
    const auto ecs = getU64(v->find("ecs"));
    if (!name || !deployed || !throughput || !ec || !pipe || !enq ||
        !launch || !sync || !block || !resched || !cpu || !cache ||
        !migrations || !preemptions || !ecs)
        return false;
    p.name = *name;
    p.deployed = *deployed;
    p.throughput = *throughput;
    p.ec_ms = *ec;
    p.pipeline_ms = *pipe;
    p.enqueue_ms = *enq;
    p.launch_ms_per_ec = *launch;
    p.sync_ms = *sync;
    p.blocking_ms_per_ec = *block;
    p.resched_ms_per_ec = *resched;
    p.cpu_ms_per_ec = *cpu;
    p.cache_ms_per_ec = *cache;
    p.migrations = *migrations;
    p.preemptions = *preemptions;
    p.ecs = *ecs;
    return true;
}

bool
writeWholeFile(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << text;
        if (!out.flush())
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<std::string>
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return ss.str();
}

/** Parse + validate the envelope shared by both entry kinds. */
const JsonValue *
validEnvelope(const JsonValue &root, std::uint64_t key)
{
    if (root.kind != JsonValue::Kind::Object)
        return nullptr;
    if (getI64(root.find("version")) !=
        std::int64_t{ResultCache::kFormatVersion})
        return nullptr;
    if (getU64(root.find("key")) != key)
        return nullptr;
    return root.find("result");
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    JETSIM_ASSERT(!dir_.empty());
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        sim::warn("result cache: cannot create '%s': %s",
                  dir_.c_str(), ec.message().c_str());
}

std::uint64_t
ResultCache::specKey(const ExperimentSpec &spec)
{
    check::Digest d;
    d.add(std::int64_t{kFormatVersion});
    d.add("experiment");
    d.add(spec.model);
    d.add(static_cast<std::int64_t>(spec.precision));
    d.add(std::int64_t{spec.batch});
    d.add(std::int64_t{spec.processes});
    addCommon(d, spec.device, static_cast<int>(spec.phase),
              spec.warmup, spec.duration, spec.pre_enqueue, spec.dvfs,
              spec.biglittle, spec.spatial_sharing, spec.seed);
    return d.value();
}

std::uint64_t
ResultCache::specKey(const MixedExperimentSpec &spec)
{
    check::Digest d;
    d.add(std::int64_t{kFormatVersion});
    d.add("mixed");
    d.add(static_cast<std::uint64_t>(spec.workloads.size()));
    for (const auto &w : spec.workloads) {
        d.add(w.model);
        d.add(static_cast<std::int64_t>(w.precision));
        d.add(std::int64_t{w.batch});
        d.add(std::int64_t{w.processes});
    }
    addCommon(d, spec.device, static_cast<int>(spec.phase),
              spec.warmup, spec.duration, spec.pre_enqueue, spec.dvfs,
              spec.biglittle, spec.spatial_sharing, spec.seed);
    return d.value();
}

std::string
ResultCache::pathForKey(std::uint64_t key) const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return dir_ + "/jetsim-" + buf + ".json";
}

std::string
ResultCache::pathFor(const ExperimentSpec &spec) const
{
    return pathForKey(specKey(spec));
}

std::string
ResultCache::pathFor(const MixedExperimentSpec &spec) const
{
    return pathForKey(specKey(spec));
}

void
ResultCache::store(const ExperimentResult &r) const
{
    JsonWriter w;
    w.beginObject();
    w.field("version", kFormatVersion);
    w.field("key", specKey(r.spec));
    w.key("spec");
    writeSpec(w, r.spec);
    w.key("result");
    w.beginObject();
    w.field("all_deployed", r.all_deployed);
    w.field("deployed_count", r.deployed_count);
    w.field("total_throughput", r.total_throughput);
    w.field("throughput_per_process", r.throughput_per_process);
    w.field("avg_power_w", r.avg_power_w);
    w.field("max_power_w", r.max_power_w);
    w.field("gpu_util_pct", r.gpu_util_pct);
    w.field("mem_pct", r.mem_pct);
    w.field("workload_mem_mb", r.workload_mem_mb);
    w.field("dvfs_throttle_events", r.dvfs_throttle_events);
    w.field("final_freq_frac", r.final_freq_frac);
    writeCdf(w, "sm_active", r.sm_active);
    writeCdf(w, "issue_slot", r.issue_slot);
    writeCdf(w, "tc_util", r.tc_util);
    w.field("kernel_us_mean", r.kernel_us_mean);
    w.field("kernels", r.kernels);
    w.key("procs");
    w.beginArray();
    for (const auto &p : r.procs)
        writeProc(w, p);
    w.endArray();
    w.key("mean");
    writeProc(w, r.mean);
    w.endObject();
    w.endObject();

    const auto path = pathFor(r.spec);
    if (!writeWholeFile(path, w.str()))
        sim::warn("result cache: cannot write '%s'", path.c_str());
}

std::optional<ExperimentResult>
ResultCache::load(const ExperimentSpec &spec) const
{
    const auto text = readWholeFile(pathFor(spec));
    if (!text)
        return std::nullopt;
    const auto root = JsonParser(*text).parse();
    if (!root)
        return std::nullopt;
    const JsonValue *res = validEnvelope(*root, specKey(spec));
    if (!res || res->kind != JsonValue::Kind::Object ||
        !specMatches(root->find("spec"), spec))
        return std::nullopt;

    ExperimentResult r;
    r.spec = spec;
    const auto all_deployed = getBool(res->find("all_deployed"));
    const auto deployed = getI64(res->find("deployed_count"));
    const auto tput = getDouble(res->find("total_throughput"));
    const auto tpp = getDouble(res->find("throughput_per_process"));
    const auto avg_w = getDouble(res->find("avg_power_w"));
    const auto max_w = getDouble(res->find("max_power_w"));
    const auto gpu = getDouble(res->find("gpu_util_pct"));
    const auto mem = getDouble(res->find("mem_pct"));
    const auto wl_mem = getDouble(res->find("workload_mem_mb"));
    const auto throttle = getI64(res->find("dvfs_throttle_events"));
    const auto freq = getDouble(res->find("final_freq_frac"));
    const auto kmean = getDouble(res->find("kernel_us_mean"));
    const auto kernels = getU64(res->find("kernels"));
    if (!all_deployed || !deployed || !tput || !tpp || !avg_w ||
        !max_w || !gpu || !mem || !wl_mem || !throttle || !freq ||
        !kmean || !kernels)
        return std::nullopt;
    r.all_deployed = *all_deployed;
    r.deployed_count = static_cast<int>(*deployed);
    r.total_throughput = *tput;
    r.throughput_per_process = *tpp;
    r.avg_power_w = *avg_w;
    r.max_power_w = *max_w;
    r.gpu_util_pct = *gpu;
    r.mem_pct = *mem;
    r.workload_mem_mb = *wl_mem;
    r.dvfs_throttle_events = static_cast<int>(*throttle);
    r.final_freq_frac = *freq;
    r.kernel_us_mean = *kmean;
    r.kernels = *kernels;
    if (!readCdf(res->find("sm_active"), r.sm_active) ||
        !readCdf(res->find("issue_slot"), r.issue_slot) ||
        !readCdf(res->find("tc_util"), r.tc_util))
        return std::nullopt;

    const JsonValue *procs = res->find("procs");
    if (!procs || procs->kind != JsonValue::Kind::Array)
        return std::nullopt;
    for (const auto &jp : procs->items) {
        ProcessMetrics p;
        if (!readProc(&jp, p))
            return std::nullopt;
        r.procs.push_back(std::move(p));
    }
    if (!readProc(res->find("mean"), r.mean))
        return std::nullopt;
    return r;
}

void
ResultCache::store(const MixedExperimentResult &r) const
{
    JsonWriter w;
    w.beginObject();
    w.field("version", kFormatVersion);
    w.field("key", specKey(r.spec));
    w.key("spec");
    writeSpec(w, r.spec);
    w.key("result");
    w.beginObject();
    w.field("all_deployed", r.all_deployed);
    w.field("deployed_count", r.deployed_count);
    w.field("total_throughput", r.total_throughput);
    w.field("avg_power_w", r.avg_power_w);
    w.field("max_power_w", r.max_power_w);
    w.field("gpu_util_pct", r.gpu_util_pct);
    w.field("mem_pct", r.mem_pct);
    w.field("workload_mem_mb", r.workload_mem_mb);
    w.key("throughput_by_workload");
    w.beginArray();
    for (const double t : r.throughput_by_workload)
        w.value(t);
    w.endArray();
    writeCdf(w, "sm_active", r.sm_active);
    writeCdf(w, "issue_slot", r.issue_slot);
    writeCdf(w, "tc_util", r.tc_util);
    w.field("kernel_us_mean", r.kernel_us_mean);
    w.field("kernels", r.kernels);
    w.field("dvfs_throttle_events", r.dvfs_throttle_events);
    w.field("final_freq_frac", r.final_freq_frac);
    w.key("procs");
    w.beginArray();
    for (const auto &p : r.procs)
        writeProc(w, p);
    w.endArray();
    w.endObject();
    w.endObject();

    const auto path = pathFor(r.spec);
    if (!writeWholeFile(path, w.str()))
        sim::warn("result cache: cannot write '%s'", path.c_str());
}

std::optional<MixedExperimentResult>
ResultCache::load(const MixedExperimentSpec &spec) const
{
    const auto text = readWholeFile(pathFor(spec));
    if (!text)
        return std::nullopt;
    const auto root = JsonParser(*text).parse();
    if (!root)
        return std::nullopt;
    const JsonValue *res = validEnvelope(*root, specKey(spec));
    if (!res || res->kind != JsonValue::Kind::Object ||
        !specMatches(root->find("spec"), spec))
        return std::nullopt;

    MixedExperimentResult r;
    r.spec = spec;
    const auto all_deployed = getBool(res->find("all_deployed"));
    const auto deployed = getI64(res->find("deployed_count"));
    const auto tput = getDouble(res->find("total_throughput"));
    const auto avg_w = getDouble(res->find("avg_power_w"));
    const auto max_w = getDouble(res->find("max_power_w"));
    const auto gpu = getDouble(res->find("gpu_util_pct"));
    const auto mem = getDouble(res->find("mem_pct"));
    const auto wl_mem = getDouble(res->find("workload_mem_mb"));
    const auto kmean = getDouble(res->find("kernel_us_mean"));
    const auto kernels = getU64(res->find("kernels"));
    const auto throttle = getI64(res->find("dvfs_throttle_events"));
    const auto freq = getDouble(res->find("final_freq_frac"));
    if (!all_deployed || !deployed || !tput || !avg_w || !max_w ||
        !gpu || !mem || !wl_mem || !kmean || !kernels || !throttle ||
        !freq)
        return std::nullopt;
    r.all_deployed = *all_deployed;
    r.deployed_count = static_cast<int>(*deployed);
    r.total_throughput = *tput;
    r.avg_power_w = *avg_w;
    r.max_power_w = *max_w;
    r.gpu_util_pct = *gpu;
    r.mem_pct = *mem;
    r.workload_mem_mb = *wl_mem;
    r.kernel_us_mean = *kmean;
    r.kernels = *kernels;
    r.dvfs_throttle_events = static_cast<int>(*throttle);
    r.final_freq_frac = *freq;

    const JsonValue *tbw = res->find("throughput_by_workload");
    if (!tbw || tbw->kind != JsonValue::Kind::Array)
        return std::nullopt;
    for (const auto &jt : tbw->items) {
        const auto t = getDouble(&jt);
        if (!t)
            return std::nullopt;
        r.throughput_by_workload.push_back(*t);
    }
    if (!readCdf(res->find("sm_active"), r.sm_active) ||
        !readCdf(res->find("issue_slot"), r.issue_slot) ||
        !readCdf(res->find("tc_util"), r.tc_util))
        return std::nullopt;

    const JsonValue *procs = res->find("procs");
    if (!procs || procs->kind != JsonValue::Kind::Array)
        return std::nullopt;
    for (const auto &jp : procs->items) {
        ProcessMetrics p;
        if (!readProc(&jp, p))
            return std::nullopt;
        r.procs.push_back(std::move(p));
    }
    return r;
}

} // namespace jetsim::core
