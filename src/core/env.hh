/**
 * @file
 * The process's JETSIM_* environment, read once at startup.
 *
 * std::getenv is not thread-safe against concurrent environment
 * mutation, and ambient reads scattered through the tree made each
 * site carry its own concurrency-mt-unsafe suppression. This header
 * is now the only getenv site in src/: every JETSIM_* variable is
 * captured into an immutable snapshot on first use (a magic static,
 * so initialisation is thread-safe by construction) and all
 * consumers — check::Reporter's mode, core::Runner's thread count
 * and cache directory — read the cached copy. After startup no
 * simulation or worker path ever touches the environment.
 *
 * Tests that mutate JETSIM_* via setenv() must call reloadEnv()
 * afterwards, from a quiescent point (no Runner batch in flight, no
 * concurrent simulations) — the same discipline setenv itself
 * already demands of them.
 */

#ifndef JETSIM_CORE_ENV_HH
#define JETSIM_CORE_ENV_HH

#include <cstdlib>
#include <string>

namespace jetsim::core {

/** Snapshot of every JETSIM_* environment variable jetsim reads.
 * Empty string == unset (no consumer distinguishes the two). */
struct Env
{
    std::string check_mode; ///< JETSIM_CHECK_MODE (abort|log|count)
    std::string threads;    ///< JETSIM_THREADS (worker-count override)
    std::string cache_dir;  ///< JETSIM_CACHE_DIR (result-cache root)
};

namespace detail {

inline Env
readEnv()
{
    auto get = [](const char *name) -> std::string {
        // The single sanctioned environment read: startup (or an
        // explicitly quiescent reloadEnv()), never a worker path.
        // NOLINTNEXTLINE(concurrency-mt-unsafe) detlint: allow(getenv)
        const char *v = std::getenv(name);
        return v ? v : "";
    };
    Env e;
    e.check_mode = get("JETSIM_CHECK_MODE");
    e.threads = get("JETSIM_THREADS");
    e.cache_dir = get("JETSIM_CACHE_DIR");
    return e;
}

inline Env &
envSlot()
{
    // Written at first use and by reloadEnv() (quiescent points
    // only); read-only everywhere else. jetrace: confined(main)
    static Env e = readEnv();
    return e;
}

} // namespace detail

/** The cached startup environment (first call snapshots it). */
inline const Env &
env()
{
    return detail::envSlot();
}

/**
 * Re-snapshot the environment. Test hook for suites that setenv()
 * JETSIM_* at runtime; call only from a quiescent point — never
 * while a Runner batch or any simulation is in flight.
 */
inline void
reloadEnv()
{
    detail::envSlot() = detail::readEnv();
}

} // namespace jetsim::core

#endif // JETSIM_CORE_ENV_HH
