#include "core/fleet.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "cpu/scheduler.hh"
#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "prof/cdf.hh"
#include "sim/logging.hh"
#include "sim/sharded_engine.hh"
#include "soc/board.hh"
#include "soc/device_spec.hh"
#include "soc/shard_map.hh"
#include "workload/serving_process.hh"

namespace jetsim::core {

std::string
FleetSpec::label() const
{
    // Runs of identical boards are run-length compressed ("256x
    // orin-nano/mobilenet_v2/int8 b1") so thousand-board fleet
    // labels stay one line.
    const auto same = [](const FleetDevice &a, const FleetDevice &b) {
        return a.device == b.device && a.model == b.model &&
               a.precision == b.precision && a.batch == b.batch &&
               a.local_rate == b.local_rate;
    };
    std::string s = "fleet[";
    for (std::size_t i = 0; i < devices.size();) {
        const auto &d = devices[i];
        std::size_t run = 1;
        while (i + run < devices.size() &&
               same(d, devices[i + run]))
            ++run;
        if (i)
            s += " + ";
        char buf[160];
        if (run > 1) {
            std::snprintf(buf, sizeof(buf), "%zux ", run);
            s += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s/%s/%s b%d",
                      d.device.c_str(), d.model.c_str(),
                      soc::name(d.precision), d.batch);
        s += buf;
        if (d.local_rate > 0.0) {
            std::snprintf(buf, sizeof(buf), " l%g", d.local_rate);
            s += buf;
        }
        i += run;
    }
    char tail[128];
    std::snprintf(tail, sizeof(tail), "] r%g d%gus s%llu",
                  balancer_rate, sim::toUsec(dispatch_latency),
                  static_cast<unsigned long long>(seed));
    s += tail;
    if (hierarchical) {
        std::snprintf(tail, sizeof(tail), " h%gus",
                      sim::toUsec(fanout_latency));
        s += tail;
    }
    return s;
}

namespace {

/** One board's full simulation stack, pinned to its shard's queue. */
struct Node
{
    Node(const FleetDevice &d, sim::EventQueue &eq, std::uint64_t seed)
        : board(soc::deviceByName(d.device), eq, seed), sched(board),
          gpu(board), net(models::modelByName(d.model))
    {
        workload::ServingConfig cfg;
        cfg.name = "srv"; // per-fleet index appended by caller
        cfg.build.precision = d.precision;
        cfg.build.batch = d.batch;
        cfg.arrival_rate = d.local_rate; // 0 = balancer-fed only
        srv_cfg = cfg;
    }

    soc::Board board;
    cpu::OsScheduler sched;
    gpu::GpuEngine gpu;
    graph::Network net;
    workload::ServingConfig srv_cfg;
    std::unique_ptr<workload::ServingProcess> srv;
};

/**
 * The central dispatcher: fleet-wide Poisson arrivals on shard 0,
 * round-robin over deployed boards, each decision posted through the
 * engine's cross-shard path with the spec's dispatch latency.
 *
 * Hierarchical mode (FleetSpec::hierarchical) splits the dispatch in
 * two: the *root* (this struct, alone on the reserved shard 0 of
 * soc::ShardMap::balancerReserved) posts the decision to the target
 * shard's *sub-balancer*, which forwards it to the device over a
 * shard-local port after fanout_latency. The root's port is the
 * engine's only cross-shard source, so adaptive epoch batching fuses
 * all device-shard work between consecutive root arrivals; the sub
 * hop rides the message seq band (sub ports are local_only), keeping
 * the two-hop dispatch order topology-invariant.
 */
struct Balancer
{
    sim::ShardedEngine &engine;
    sim::EventQueue &eq; ///< shard 0 — where decisions execute
    sim::Rng rng;
    int port;
    double rate;
    sim::Tick latency;
    sim::Tick fanout;      ///< sub->device hop (hierarchical only)
    bool hierarchical;
    /** Shard -> local_only sub-balancer port; -1 off the hierarchy
     * (never indexed in flat mode). Immutable during the run. */
    std::vector<int> sub_ports;
    /** (dst shard, server), in device order — the round-robin ring. */
    std::vector<std::pair<int, workload::ServingProcess *>> targets;
    std::size_t next = 0;
    bool measuring = false;
    bool stopped = false;
    std::uint64_t dispatched = 0;

    void
    scheduleNext()
    {
        const double mean_ns = 1e9 / rate;
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        const auto gap =
            static_cast<sim::Tick>(-mean_ns * std::log(u)) + 1;
        eq.scheduleIn(gap, [this] { onArrival(); });
    }

    void
    onArrival()
    {
        if (stopped)
            return;
        const auto [shard, srv] = targets[next];
        next = (next + 1) % targets.size();
        if (measuring)
            ++dispatched;
        // The request's latency clock starts here; the dispatch hop
        // is the fleet's one cross-shard edge (= engine lookahead).
        const sim::Tick origin = eq.now();
        if (!hierarchical) {
            engine.post(port, shard, origin + latency,
                        [srv, origin] { srv->injectArrival(origin); });
        } else {
            // Two-hop: root -> sub (cross-shard, dispatch latency)
            // -> device (shard-local, fanout latency). The sub
            // callback reads only immutable balancer state, so the
            // forward hop is safe on any worker thread; arrival is
            // at origin + latency + fanout at any shard count.
            const int sub = sub_ports[static_cast<std::size_t>(shard)];
            engine.post(port, shard, origin + latency,
                        [this, sub, shard, srv, origin] {
                            engine.post(
                                sub, shard,
                                engine.shard(shard).now() + fanout,
                                [srv, origin] {
                                    srv->injectArrival(origin);
                                });
                        });
        }
        scheduleNext();
    }
};

/** Per-device leaf of the deterministic result reduction tree. */
struct Partial
{
    FleetDeviceResult dev;
    std::vector<double> samples; ///< request latencies (ticks)
    double throughput = 0.0;
};

} // namespace

FleetResult
runFleet(const FleetSpec &spec, const FleetOptions &opts)
{
    JETSIM_ASSERT(!spec.devices.empty());
    JETSIM_ASSERT(spec.dispatch_latency >= 1);
    JETSIM_ASSERT(!spec.hierarchical || spec.fanout_latency >= 1);

    const int n = static_cast<int>(spec.devices.size());
    const int want_shards = opts.shards < 1 ? 1 : opts.shards;
    const auto map = spec.hierarchical
                         ? soc::ShardMap::balancerReserved(
                               n, want_shards)
                         : soc::ShardMap::roundRobin(n, want_shards);

    sim::ShardedEngine::Options eopts;
    eopts.shards = map.shards();
    eopts.threads = opts.threads < 1 ? 1 : opts.threads;
    eopts.lookahead =
        opts.lookahead < 0 ? spec.dispatch_latency : opts.lookahead;
    sim::ShardedEngine engine(eopts);

    FleetResult res;
    res.spec = spec;
    res.all_deployed = true;

    // Boards in spec order; the seed stride keeps per-board RNG
    // streams independent of fleet size and shard topology.
    std::vector<std::unique_ptr<Node>> nodes;
    nodes.reserve(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
        auto node = std::make_unique<Node>(
            spec.devices[static_cast<std::size_t>(d)],
            engine.shard(map.shardOf(d)),
            spec.seed * 1000003 + static_cast<std::uint64_t>(d));
        node->board.start();
        node->srv_cfg.name = "srv" + std::to_string(d);
        node->srv = std::make_unique<workload::ServingProcess>(
            node->board, node->sched, node->gpu, node->net,
            node->srv_cfg);
        if (!node->srv->deploy())
            res.all_deployed = false;
        nodes.push_back(std::move(node));
    }

    Balancer bal{engine,
                 engine.shard(0),
                 sim::Rng(spec.seed).fork("fleet-balancer"),
                 engine.addPort(0), // root: port 0, beats sub ties
                 spec.balancer_rate,
                 spec.dispatch_latency,
                 spec.fanout_latency,
                 spec.hierarchical,
                 {},
                 {},
                 0,
                 false,
                 false,
                 0};
    if (spec.hierarchical) {
        // One local_only sub-balancer port per device-hosting shard,
        // registered in shard order: the port ids differ across
        // topologies, but every queue sees exactly one sub, so
        // same-queue message ties always resolve by that sub's
        // counter — i.e. in root dispatch order.
        bal.sub_ports.assign(
            static_cast<std::size_t>(map.shards()), -1);
        for (int s = 0; s < map.shards(); ++s)
            if (!map.devicesOn(s).empty())
                bal.sub_ports[static_cast<std::size_t>(s)] =
                    engine.addPort(s, /*local_only=*/true);
    }
    for (int d = 0; d < n; ++d)
        if (nodes[static_cast<std::size_t>(d)]->srv->deployed())
            bal.targets.emplace_back(
                map.shardOf(d),
                nodes[static_cast<std::size_t>(d)]->srv.get());

    for (auto &node : nodes)
        if (node->srv->deployed())
            node->srv->start();
    if (spec.balancer_rate > 0.0 && !bal.targets.empty())
        bal.scheduleNext();

    engine.runUntil(spec.warmup);
    for (auto &node : nodes)
        node->srv->beginMeasurement();
    bal.measuring = true;
    engine.runUntil(spec.warmup + spec.duration);
    bal.measuring = false;
    bal.stopped = true;
    for (auto &node : nodes) {
        node->srv->endMeasurement();
        node->srv->stopArrivals();
    }

    // Per-device leaf accumulators merged by a deterministic
    // pairwise reduction tree in *device-index* order — never shard
    // order, which would make the floating-point throughput sum (and
    // so the digest) depend on the placement topology. The latency
    // quantile is computed over the merged sample multiset, which is
    // merge-order-invariant by construction (prof::Cdf sorts).
    std::vector<Partial> parts(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
        const auto &node = *nodes[static_cast<std::size_t>(d)];
        const auto &srv = *node.srv;
        Partial &p = parts[static_cast<std::size_t>(d)];
        FleetDeviceResult &r = p.dev;
        r.name = "srv" + std::to_string(d);
        r.device = spec.devices[static_cast<std::size_t>(d)].device;
        r.deployed = srv.deployed();
        if (r.deployed) {
            r.arrived = srv.arrived();
            r.served = srv.served();
            r.throughput = srv.achievedThroughput();
            const auto &lat = srv.requestLatency();
            if (!lat.empty()) {
                r.p50_ms = sim::toMsec(
                    static_cast<sim::Tick>(lat.quantile(0.5)));
                r.p99_ms = sim::toMsec(
                    static_cast<sim::Tick>(lat.quantile(0.99)));
                r.max_ms =
                    sim::toMsec(static_cast<sim::Tick>(lat.max()));
            }
            p.samples = lat.samples();
            r.max_queue = srv.maxQueueDepth();
            p.throughput = r.throughput;
        }
        res.devices.push_back(r);
    }
    for (std::size_t width = parts.size(); width > 1;) {
        const std::size_t half = (width + 1) / 2;
        for (std::size_t i = 0; i + half < width; ++i) {
            Partial &a = parts[i];
            Partial &b = parts[i + half];
            a.throughput += b.throughput;
            a.samples.insert(a.samples.end(), b.samples.begin(),
                             b.samples.end());
            b.samples.clear();
            b.samples.shrink_to_fit();
        }
        width = half;
    }
    res.total_throughput = parts[0].throughput;
    if (!parts[0].samples.empty()) {
        prof::Cdf fleet_latency;
        for (const double x : parts[0].samples)
            fleet_latency.add(x);
        res.p99_ms = sim::toMsec(
            static_cast<sim::Tick>(fleet_latency.quantile(0.99)));
    }
    res.dispatched = bal.dispatched;

    const auto st = engine.stats();
    res.events = st.executed;
    res.epochs = st.epochs;
    res.barriers = st.barriers;
    res.merge_steps = st.merge_steps;
    res.messages = st.messages;
    return res;
}

// ---------------------------------------------------------------------------
// Replay specs: flat key=value, one per line. Written by the
// differential harness on failure, consumed by simcheck
// --fleet-replay; doubles use %.17g so the round trip is bit-exact.

bool
writeFleetReplay(const FleetSpec &spec, const FleetOptions &opts,
                 const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    char buf[64];
    auto num = [&buf](double v) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return std::string(buf);
    };
    out << "devices=" << spec.devices.size() << "\n";
    for (std::size_t i = 0; i < spec.devices.size(); ++i) {
        const auto &d = spec.devices[i];
        out << "d" << i << ".device=" << d.device << "\n";
        out << "d" << i << ".model=" << d.model << "\n";
        out << "d" << i << ".precision=" << soc::name(d.precision)
            << "\n";
        out << "d" << i << ".batch=" << d.batch << "\n";
        out << "d" << i << ".local_rate=" << num(d.local_rate)
            << "\n";
    }
    out << "balancer_rate=" << num(spec.balancer_rate) << "\n";
    out << "dispatch_latency=" << spec.dispatch_latency << "\n";
    out << "hierarchical=" << (spec.hierarchical ? 1 : 0) << "\n";
    out << "fanout_latency=" << spec.fanout_latency << "\n";
    out << "warmup=" << spec.warmup << "\n";
    out << "duration=" << spec.duration << "\n";
    out << "seed=" << spec.seed << "\n";
    out << "shards=" << opts.shards << "\n";
    out << "threads=" << opts.threads << "\n";
    out << "lookahead=" << opts.lookahead << "\n";
    return static_cast<bool>(out);
}

bool
readFleetReplay(const std::string &path, FleetSpec &spec,
                FleetOptions &opts, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    spec = FleetSpec{};
    spec.devices.clear();
    opts = FleetOptions{};

    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            err = path + ":" + std::to_string(lineno) +
                  ": expected key=value";
            return false;
        }
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);

        if (key == "devices") {
            spec.devices.resize(
                static_cast<std::size_t>(std::stoul(val)));
            continue;
        }
        if (key.size() > 1 && key[0] == 'd' &&
            key.find('.') != std::string::npos) {
            const auto dot = key.find('.');
            const auto idx = static_cast<std::size_t>(
                std::stoul(key.substr(1, dot - 1)));
            if (idx >= spec.devices.size()) {
                err = path + ":" + std::to_string(lineno) +
                      ": device index out of range";
                return false;
            }
            auto &d = spec.devices[idx];
            const std::string field = key.substr(dot + 1);
            if (field == "device")
                d.device = val;
            else if (field == "model")
                d.model = val;
            else if (field == "precision")
                d.precision = soc::precisionFromName(val);
            else if (field == "batch")
                d.batch = std::stoi(val);
            else if (field == "local_rate")
                d.local_rate = std::stod(val);
            else {
                err = path + ":" + std::to_string(lineno) +
                      ": unknown device field " + field;
                return false;
            }
            continue;
        }
        if (key == "balancer_rate")
            spec.balancer_rate = std::stod(val);
        else if (key == "dispatch_latency")
            spec.dispatch_latency = std::stoll(val);
        else if (key == "hierarchical") // absent in pre-hierarchy
            spec.hierarchical = std::stoi(val) != 0; // files: default
        else if (key == "fanout_latency")            // (flat) holds
            spec.fanout_latency = std::stoll(val);
        else if (key == "warmup")
            spec.warmup = std::stoll(val);
        else if (key == "duration")
            spec.duration = std::stoll(val);
        else if (key == "seed")
            spec.seed = std::stoull(val);
        else if (key == "shards")
            opts.shards = std::stoi(val);
        else if (key == "threads")
            opts.threads = std::stoi(val);
        else if (key == "lookahead")
            opts.lookahead = std::stoll(val);
        else {
            err = path + ":" + std::to_string(lineno) +
                  ": unknown key " + key;
            return false;
        }
    }
    if (spec.devices.empty()) {
        err = path + ": no devices";
        return false;
    }
    return true;
}

} // namespace jetsim::core
