#include "core/fleet.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "cpu/scheduler.hh"
#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "prof/cdf.hh"
#include "sim/logging.hh"
#include "sim/sharded_engine.hh"
#include "soc/board.hh"
#include "soc/device_spec.hh"
#include "soc/shard_map.hh"
#include "workload/serving_process.hh"

namespace jetsim::core {

std::string
FleetSpec::label() const
{
    std::string s = "fleet[";
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const auto &d = devices[i];
        if (i)
            s += " + ";
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s/%s/%s b%d",
                      d.device.c_str(), d.model.c_str(),
                      soc::name(d.precision), d.batch);
        s += buf;
        if (d.local_rate > 0.0) {
            std::snprintf(buf, sizeof(buf), " l%g", d.local_rate);
            s += buf;
        }
    }
    char tail[96];
    std::snprintf(tail, sizeof(tail), "] r%g d%gus s%llu",
                  balancer_rate, sim::toUsec(dispatch_latency),
                  static_cast<unsigned long long>(seed));
    s += tail;
    return s;
}

namespace {

/** One board's full simulation stack, pinned to its shard's queue. */
struct Node
{
    Node(const FleetDevice &d, sim::EventQueue &eq, std::uint64_t seed)
        : board(soc::deviceByName(d.device), eq, seed), sched(board),
          gpu(board), net(models::modelByName(d.model))
    {
        workload::ServingConfig cfg;
        cfg.name = "srv"; // per-fleet index appended by caller
        cfg.build.precision = d.precision;
        cfg.build.batch = d.batch;
        cfg.arrival_rate = d.local_rate; // 0 = balancer-fed only
        srv_cfg = cfg;
    }

    soc::Board board;
    cpu::OsScheduler sched;
    gpu::GpuEngine gpu;
    graph::Network net;
    workload::ServingConfig srv_cfg;
    std::unique_ptr<workload::ServingProcess> srv;
};

/**
 * The central dispatcher: fleet-wide Poisson arrivals on shard 0,
 * round-robin over deployed boards, each decision posted through the
 * engine's cross-shard path with the spec's dispatch latency.
 */
struct Balancer
{
    sim::ShardedEngine &engine;
    sim::EventQueue &eq; ///< shard 0 — where decisions execute
    sim::Rng rng;
    int port;
    double rate;
    sim::Tick latency;
    /** (dst shard, server), in device order — the round-robin ring. */
    std::vector<std::pair<int, workload::ServingProcess *>> targets;
    std::size_t next = 0;
    bool measuring = false;
    bool stopped = false;
    std::uint64_t dispatched = 0;

    void
    scheduleNext()
    {
        const double mean_ns = 1e9 / rate;
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        const auto gap =
            static_cast<sim::Tick>(-mean_ns * std::log(u)) + 1;
        eq.scheduleIn(gap, [this] { onArrival(); });
    }

    void
    onArrival()
    {
        if (stopped)
            return;
        const auto [shard, srv] = targets[next];
        next = (next + 1) % targets.size();
        if (measuring)
            ++dispatched;
        // The request's latency clock starts here; the dispatch hop
        // is the fleet's one cross-shard edge (= engine lookahead).
        const sim::Tick origin = eq.now();
        engine.post(port, shard, origin + latency,
                    [srv, origin] { srv->injectArrival(origin); });
        scheduleNext();
    }
};

} // namespace

FleetResult
runFleet(const FleetSpec &spec, const FleetOptions &opts)
{
    JETSIM_ASSERT(!spec.devices.empty());
    JETSIM_ASSERT(spec.dispatch_latency >= 1);

    const int n = static_cast<int>(spec.devices.size());
    const auto map = soc::ShardMap::roundRobin(
        n, opts.shards < 1 ? 1 : opts.shards);

    sim::ShardedEngine::Options eopts;
    eopts.shards = map.shards();
    eopts.threads = opts.threads < 1 ? 1 : opts.threads;
    eopts.lookahead =
        opts.lookahead < 0 ? spec.dispatch_latency : opts.lookahead;
    sim::ShardedEngine engine(eopts);

    FleetResult res;
    res.spec = spec;
    res.all_deployed = true;

    // Boards in spec order; the seed stride keeps per-board RNG
    // streams independent of fleet size and shard topology.
    std::vector<std::unique_ptr<Node>> nodes;
    nodes.reserve(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
        auto node = std::make_unique<Node>(
            spec.devices[static_cast<std::size_t>(d)],
            engine.shard(map.shardOf(d)),
            spec.seed * 1000003 + static_cast<std::uint64_t>(d));
        node->board.start();
        node->srv_cfg.name = "srv" + std::to_string(d);
        node->srv = std::make_unique<workload::ServingProcess>(
            node->board, node->sched, node->gpu, node->net,
            node->srv_cfg);
        if (!node->srv->deploy())
            res.all_deployed = false;
        nodes.push_back(std::move(node));
    }

    Balancer bal{engine,
                 engine.shard(0),
                 sim::Rng(spec.seed).fork("fleet-balancer"),
                 engine.addPort(0),
                 spec.balancer_rate,
                 spec.dispatch_latency,
                 {},
                 0,
                 false,
                 false,
                 0};
    for (int d = 0; d < n; ++d)
        if (nodes[static_cast<std::size_t>(d)]->srv->deployed())
            bal.targets.emplace_back(
                map.shardOf(d),
                nodes[static_cast<std::size_t>(d)]->srv.get());

    for (auto &node : nodes)
        if (node->srv->deployed())
            node->srv->start();
    if (spec.balancer_rate > 0.0 && !bal.targets.empty())
        bal.scheduleNext();

    engine.runUntil(spec.warmup);
    for (auto &node : nodes)
        node->srv->beginMeasurement();
    bal.measuring = true;
    engine.runUntil(spec.warmup + spec.duration);
    bal.measuring = false;
    bal.stopped = true;
    for (auto &node : nodes) {
        node->srv->endMeasurement();
        node->srv->stopArrivals();
    }

    prof::Cdf fleet_latency;
    for (int d = 0; d < n; ++d) {
        const auto &node = *nodes[static_cast<std::size_t>(d)];
        const auto &srv = *node.srv;
        FleetDeviceResult r;
        r.name = "srv" + std::to_string(d);
        r.device = spec.devices[static_cast<std::size_t>(d)].device;
        r.deployed = srv.deployed();
        if (r.deployed) {
            r.arrived = srv.arrived();
            r.served = srv.served();
            r.throughput = srv.achievedThroughput();
            const auto &lat = srv.requestLatency();
            if (!lat.empty()) {
                r.p50_ms = sim::toMsec(
                    static_cast<sim::Tick>(lat.quantile(0.5)));
                r.p99_ms = sim::toMsec(
                    static_cast<sim::Tick>(lat.quantile(0.99)));
                r.max_ms =
                    sim::toMsec(static_cast<sim::Tick>(lat.max()));
            }
            for (const double x : lat.samples())
                fleet_latency.add(x);
            r.max_queue = srv.maxQueueDepth();
            res.total_throughput += r.throughput;
        }
        res.devices.push_back(std::move(r));
    }
    if (!fleet_latency.empty())
        res.p99_ms = sim::toMsec(
            static_cast<sim::Tick>(fleet_latency.quantile(0.99)));
    res.dispatched = bal.dispatched;

    const auto st = engine.stats();
    res.events = st.executed;
    res.epochs = st.epochs;
    res.merge_steps = st.merge_steps;
    res.messages = st.messages;
    return res;
}

// ---------------------------------------------------------------------------
// Replay specs: flat key=value, one per line. Written by the
// differential harness on failure, consumed by simcheck
// --fleet-replay; doubles use %.17g so the round trip is bit-exact.

bool
writeFleetReplay(const FleetSpec &spec, const FleetOptions &opts,
                 const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    char buf[64];
    auto num = [&buf](double v) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return std::string(buf);
    };
    out << "devices=" << spec.devices.size() << "\n";
    for (std::size_t i = 0; i < spec.devices.size(); ++i) {
        const auto &d = spec.devices[i];
        out << "d" << i << ".device=" << d.device << "\n";
        out << "d" << i << ".model=" << d.model << "\n";
        out << "d" << i << ".precision=" << soc::name(d.precision)
            << "\n";
        out << "d" << i << ".batch=" << d.batch << "\n";
        out << "d" << i << ".local_rate=" << num(d.local_rate)
            << "\n";
    }
    out << "balancer_rate=" << num(spec.balancer_rate) << "\n";
    out << "dispatch_latency=" << spec.dispatch_latency << "\n";
    out << "warmup=" << spec.warmup << "\n";
    out << "duration=" << spec.duration << "\n";
    out << "seed=" << spec.seed << "\n";
    out << "shards=" << opts.shards << "\n";
    out << "threads=" << opts.threads << "\n";
    out << "lookahead=" << opts.lookahead << "\n";
    return static_cast<bool>(out);
}

bool
readFleetReplay(const std::string &path, FleetSpec &spec,
                FleetOptions &opts, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    spec = FleetSpec{};
    spec.devices.clear();
    opts = FleetOptions{};

    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            err = path + ":" + std::to_string(lineno) +
                  ": expected key=value";
            return false;
        }
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);

        if (key == "devices") {
            spec.devices.resize(
                static_cast<std::size_t>(std::stoul(val)));
            continue;
        }
        if (key.size() > 1 && key[0] == 'd' &&
            key.find('.') != std::string::npos) {
            const auto dot = key.find('.');
            const auto idx = static_cast<std::size_t>(
                std::stoul(key.substr(1, dot - 1)));
            if (idx >= spec.devices.size()) {
                err = path + ":" + std::to_string(lineno) +
                      ": device index out of range";
                return false;
            }
            auto &d = spec.devices[idx];
            const std::string field = key.substr(dot + 1);
            if (field == "device")
                d.device = val;
            else if (field == "model")
                d.model = val;
            else if (field == "precision")
                d.precision = soc::precisionFromName(val);
            else if (field == "batch")
                d.batch = std::stoi(val);
            else if (field == "local_rate")
                d.local_rate = std::stod(val);
            else {
                err = path + ":" + std::to_string(lineno) +
                      ": unknown device field " + field;
                return false;
            }
            continue;
        }
        if (key == "balancer_rate")
            spec.balancer_rate = std::stod(val);
        else if (key == "dispatch_latency")
            spec.dispatch_latency = std::stoll(val);
        else if (key == "warmup")
            spec.warmup = std::stoll(val);
        else if (key == "duration")
            spec.duration = std::stoll(val);
        else if (key == "seed")
            spec.seed = std::stoull(val);
        else if (key == "shards")
            opts.shards = std::stoi(val);
        else if (key == "threads")
            opts.threads = std::stoi(val);
        else if (key == "lookahead")
            opts.lookahead = std::stoll(val);
        else {
            err = path + ":" + std::to_string(lineno) +
                  ": unknown key " + key;
            return false;
        }
    }
    if (spec.devices.empty()) {
        err = path + ": no devices";
        return false;
    }
    return true;
}

} // namespace jetsim::core
