/**
 * @file
 * Markdown report rendering: one document per profiled
 * configuration, covering both methodology phases, the Section-7
 * decomposition, and the derived observations — the deliverable an
 * engineer would attach to a deployment decision.
 */

#ifndef JETSIM_CORE_REPORT_HH
#define JETSIM_CORE_REPORT_HH

#include <string>

#include "core/experiment.hh"

namespace jetsim::core {

/**
 * Render a two-phase profiling report as markdown.
 * @param light the phase-1 (non-intrusive) result
 * @param deep  the phase-2 (traced) result for the same spec
 */
std::string renderReport(const ExperimentResult &light,
                         const ExperimentResult &deep);

/**
 * Run the two-phase methodology for @p spec and write the report to
 * @p path.
 * @return false when the file cannot be written.
 */
bool writeReport(const ExperimentSpec &spec, const std::string &path);

} // namespace jetsim::core

#endif // JETSIM_CORE_REPORT_HH
