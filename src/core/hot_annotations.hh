/**
 * @file
 * Hot-path discipline annotations, consumed by tools/jethot.py.
 *
 * The event core's performance contract (DESIGN.md §4j) is that the
 * steady-state dispatch path performs no heap allocation, acquires no
 * lock, never throws, and never enters the kernel. PR 4 and PR 9 made
 * that true and proved it with runtime probes (`micro_sim
 * --assert-sbo`, the operator-new-counting test, TSan); jethot closes
 * the loop statically: it walks the call graph from every JETSIM_HOT
 * root and proves no forbidden operation is *reachable*, the same way
 * jetrace proves lock-order discipline.
 *
 * All three macros expand to nothing in every build configuration —
 * they cost zero codegen, zero preprocessor branches, and are safe in
 * any position the grammar allows a declaration specifier. They exist
 * purely as tokens for the analyzer (and for the reader):
 *
 *   JETSIM_HOT
 *       Marks a function *definition* as a hot-path root. jethot
 *       scans its body and everything reachable from it. Place it on
 *       the definition (the body is what gets audited), not on a
 *       prototype.
 *
 *   JETSIM_COLD_OK("reason")
 *       A sanctioned cold escape. On a function definition: the body
 *       is exempt and traversal stops there — use for slow paths
 *       deliberately hung off a hot function (slab growth, overflow
 *       arena refill, thread spawn). On a statement line (or the line
 *       above): that statement's findings and call edges are
 *       suppressed — use for amortized container growth and
 *       first-occurrence setup inside an otherwise hot body. The
 *       reason string is mandatory, is collected into jethot's JSON
 *       output, and is the reviewable artifact: every escape says
 *       *why* it cannot run in steady state.
 *
 *   JETSIM_HOT_BOUNDARY
 *       Traversal stops here and the body is not scanned: the callee
 *       side of a dispatch indirection whose discipline is audited at
 *       its own capture/registration sites, or a diagnostics path
 *       that only runs when an invariant is already broken. Unlike
 *       COLD_OK this asserts "audited elsewhere", not "allowed to be
 *       cold".
 *
 * Comment forms for positions macros cannot reach (e.g. a #define),
 * each written as a comment starting "jethot:" followed by
 *   boundary(NAME) <why>   — declares callee NAME a boundary
 *   cold-ok(<why>)         — statement-level COLD_OK
 *   allow(<rule>) <why>    — suppress one rule on one line
 *
 * The runtime cross-check: every `noteSboMiss()` caller — the
 * counters `micro_sim --assert-sbo` gates on — must sit on a line
 * covered by JETSIM_COLD_OK, so the static escape set and the runtime
 * probe set name exactly the same heap-fallback sites.
 */

#ifndef JETSIM_CORE_HOT_ANNOTATIONS_HH
#define JETSIM_CORE_HOT_ANNOTATIONS_HH

#define JETSIM_HOT
#define JETSIM_COLD_OK(reason)
#define JETSIM_HOT_BOUNDARY

#endif // JETSIM_CORE_HOT_ANNOTATIONS_HH
