/**
 * @file
 * Content-addressed on-disk cache of experiment results.
 *
 * A sweep re-runs the same grid cells again and again — the b1/p1
 * corner is shared by half the paper's figures, and editing one bench
 * re-simulates every cell it shares with the others. Because the
 * simulator is bit-deterministic (same spec ⇒ same result, the JetSan
 * determinism invariant), a result can be keyed purely by its spec:
 * the cache key is a canonical FNV-1a digest over *every* field of
 * the ExperimentSpec / MixedExperimentSpec plus a format version, so
 * any change to any field (or to the serialisation format) misses.
 *
 * Entries are single JSON files, `jetsim-<16-hex-key>.json`, written
 * atomically (temp file + rename). Doubles are stored with 17
 * significant digits so the round trip is bit-exact — a cached
 * result's core::resultDigest equals the fresh one's. Loads verify
 * the echoed spec field-by-field (guards digest collisions and stale
 * formats); any parse error, truncation or mismatch is treated as a
 * miss, never an error — a corrupted cache can only cost time.
 */

#ifndef JETSIM_CORE_RESULT_CACHE_HH
#define JETSIM_CORE_RESULT_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/experiment.hh"

namespace jetsim::core {

/** On-disk, digest-keyed store of experiment results. */
class ResultCache
{
  public:
    /** Bump when the JSON schema or the key derivation changes. */
    static constexpr int kFormatVersion = 1;

    /** Open (and create, if needed) a cache rooted at @p dir. */
    explicit ResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Canonical digest of every field of @p spec (the cache key). */
    static std::uint64_t specKey(const ExperimentSpec &spec);
    static std::uint64_t specKey(const MixedExperimentSpec &spec);

    /** File that does/would hold the entry for @p spec. */
    std::string pathFor(const ExperimentSpec &spec) const;
    std::string pathFor(const MixedExperimentSpec &spec) const;

    /**
     * Look up a cached result. Returns nullopt on miss, corruption,
     * format-version or spec mismatch — the caller re-runs.
     */
    std::optional<ExperimentResult>
    load(const ExperimentSpec &spec) const;
    std::optional<MixedExperimentResult>
    load(const MixedExperimentSpec &spec) const;

    /** Persist a result under its spec's key. Best-effort: failures
     * (read-only dir, full disk) are reported via warn() once. */
    void store(const ExperimentResult &r) const;
    void store(const MixedExperimentResult &r) const;

  private:
    std::string pathForKey(std::uint64_t key) const;

    std::string dir_;
};

} // namespace jetsim::core

#endif // JETSIM_CORE_RESULT_CACHE_HH
