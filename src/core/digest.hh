/**
 * @file
 * Bit-exact digests of experiment results.
 *
 * The JetSan determinism invariant: running the same seeded spec
 * twice must reproduce every output bit. These helpers fold an
 * entire result — SoC metrics, per-process decomposition, counter
 * CDFs — into one 64-bit value so the replay harness
 * (tools/simcheck) and tests/check/determinism_test.cc can compare
 * runs with a single integer.
 */

#ifndef JETSIM_CORE_DIGEST_HH
#define JETSIM_CORE_DIGEST_HH

#include <cstdint>

#include "core/experiment.hh"
#include "core/fleet.hh"

namespace jetsim::core {

/** Digest of every numeric field of a single-model result. */
std::uint64_t resultDigest(const ExperimentResult &r);

/** Digest of a heterogeneous (multi-tenant) result. */
std::uint64_t resultDigest(const MixedExperimentResult &r);

/**
 * Digest of a fleet result. Folds only topology-invariant fields —
 * per-board serving metrics, balancer decisions, and the total
 * executed-event count — never the engine's epoch/merge diagnostics,
 * which legitimately vary with (shards, threads). Equality of this
 * digest across configurations *is* the sharded engine's bit-identity
 * claim (tests/sim/sharded_diff_test.cc, CI pass 1c).
 */
std::uint64_t resultDigest(const FleetResult &r);

} // namespace jetsim::core

#endif // JETSIM_CORE_DIGEST_HH
