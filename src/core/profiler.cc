#include "core/profiler.hh"

#include <cstdio>
#include <memory>

#include "cpu/scheduler.hh"
#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "prof/jstats.hh"
#include "prof/nsight.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "soc/board.hh"
#include "workload/inference_process.hh"

namespace jetsim::core {

std::string
ExperimentSpec::label() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s/%s/%s b%d p%d %s",
                  device.c_str(), model.c_str(), soc::name(precision),
                  batch, processes,
                  phase == Phase::Deep ? "deep" : "light");
    return buf;
}

int
MixedExperimentSpec::totalProcesses() const
{
    int n = 0;
    for (const auto &w : workloads)
        n += w.processes;
    return n;
}

std::string
MixedExperimentSpec::label() const
{
    std::string s = device + "/mix[";
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto &w = workloads[i];
        if (i)
            s += " + ";
        s += std::to_string(w.processes) + "x" + w.model + "/" +
             soc::name(w.precision) + " b" +
             std::to_string(w.batch);
    }
    s += phase == Phase::Deep ? "] deep" : "] light";
    return s;
}

namespace {

double
msOrZero(const sim::Accumulator &a)
{
    return a.count() ? sim::toMsec(static_cast<sim::Tick>(a.mean()))
                     : 0.0;
}

ProcessMetrics
collectProcess(const workload::InferenceProcess &p)
{
    ProcessMetrics m;
    m.name = p.config().name;
    m.deployed = p.deployed();
    if (!p.deployed())
        return m;

    m.throughput = p.throughput();
    m.ec_ms = msOrZero(p.ecPeriod());
    m.pipeline_ms = msOrZero(p.ecSpan());
    m.enqueue_ms = msOrZero(p.enqueueSpan());
    m.launch_ms_per_ec = msOrZero(p.launchApiPerEc());
    m.sync_ms = msOrZero(p.syncSpan());
    m.ecs = p.ecsCompleted();

    // B_l: measured directly as GPU-completion-to-detection latency
    // (covers both spin-wait and blocking-sync modes).
    m.blocking_ms_per_ec = msOrZero(p.blockedTime());

    const auto &t = p.thread();
    const double ecs = m.ecs ? static_cast<double>(m.ecs) : 1.0;
    m.resched_ms_per_ec = sim::toMsec(t.preemptWait()) / ecs;
    m.cpu_ms_per_ec = sim::toMsec(t.cpuTime()) / ecs;
    m.cache_ms_per_ec = sim::toMsec(t.cachePenalty()) / ecs;
    m.migrations = t.migrations();
    m.preemptions = t.preemptions();
    return m;
}

/** Everything the generic runner needs for one process. */
struct ProcessPlan
{
    int workload = 0; ///< index into the mixed spec's workloads
    workload::ProcessConfig cfg;
};

} // namespace

MixedExperimentResult
runMixedExperiment(const MixedExperimentSpec &spec)
{
    JETSIM_ASSERT(!spec.workloads.empty());

    MixedExperimentResult res;
    res.spec = spec;
    res.throughput_by_workload.assign(spec.workloads.size(), 0.0);

    sim::EventQueue eq;
    soc::Board board(soc::deviceByName(spec.device), eq, spec.seed);
    board.governor().setEnabled(spec.dvfs);
    board.start();

    cpu::OsScheduler sched(board);
    sched.setPartitioned(spec.biglittle);

    gpu::GpuEngine gpu(board);
    gpu.setSpatialSharing(spec.spatial_sharing);

    // One network instance per distinct model name.
    std::vector<graph::Network> nets;
    nets.reserve(spec.workloads.size());
    for (const auto &w : spec.workloads)
        nets.push_back(models::modelByName(w.model));

    std::vector<ProcessPlan> plans;
    int idx = 0;
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
        const auto &wl = spec.workloads[w];
        JETSIM_ASSERT(wl.processes >= 1 && wl.batch >= 1);
        for (int i = 0; i < wl.processes; ++i) {
            ProcessPlan plan;
            plan.workload = static_cast<int>(w);
            plan.cfg.name = wl.model + "/" +
                            soc::name(wl.precision) + "." +
                            std::to_string(i);
            plan.cfg.build.precision = wl.precision;
            plan.cfg.build.batch = wl.batch;
            plan.cfg.pre_enqueue = spec.pre_enqueue;
            plan.cfg.start_offset = sim::msec(7) * idx++;
            plans.push_back(std::move(plan));
        }
    }

    std::vector<std::unique_ptr<workload::InferenceProcess>> procs;
    std::vector<int> proc_workload;
    for (auto &plan : plans) {
        procs.push_back(std::make_unique<workload::InferenceProcess>(
            board, sched, gpu,
            nets[static_cast<std::size_t>(plan.workload)],
            std::move(plan.cfg)));
        proc_workload.push_back(plan.workload);
        if (procs.back()->deploy())
            ++res.deployed_count;
    }
    res.all_deployed = res.deployed_count == spec.totalProcesses();
    res.mem_pct = board.memory().usagePercent();
    res.workload_mem_mb = sim::toMiB(board.memory().used());

    if (!res.all_deployed) {
        // The paper's boards reboot / fail deployment here; we report
        // the failed cell without running the loop.
        for (auto &p : procs)
            res.procs.push_back(collectProcess(*p));
        return res;
    }

    prof::JStatsSampler jstats(board, sim::msec(100));
    jstats.start();

    std::unique_ptr<prof::NsightTracer> tracer;
    if (spec.phase == Phase::Deep) {
        tracer = std::make_unique<prof::NsightTracer>(board, gpu,
                                                      sim::msec(1));
        tracer->attach();
    }

    for (auto &p : procs)
        p->start();

    // Warm-up, then reset every collector at the measurement start.
    eq.runUntil(eq.now() + spec.warmup);
    for (auto &p : procs)
        p->beginMeasurement();
    jstats.reset();
    if (tracer)
        tracer->reset();

    eq.runUntil(eq.now() + spec.duration);

    // Slow cells (e.g. FCN_ResNet50 at large batch on the Nano) may
    // not complete a single EC inside the nominal window; extend it
    // until every process has a statistically usable sample, the way
    // trtexec keeps iterating until it has enough runs.
    constexpr std::uint64_t kMinEcs = 3;
    constexpr int kMaxExtensions = 12;
    for (int ext = 0; ext < kMaxExtensions; ++ext) {
        bool enough = true;
        for (auto &p : procs)
            enough &= p->ecsCompleted() >= kMinEcs;
        if (enough)
            break;
        eq.runUntil(eq.now() + spec.duration);
    }

    for (auto &p : procs) {
        p->endMeasurement();
        p->stopEnqueue();
    }

    res.avg_power_w = jstats.avgPowerW();
    res.max_power_w = jstats.maxPowerW();
    res.gpu_util_pct = jstats.avgGpuUtilPct();
    res.mem_pct = jstats.peakMemPct();

    res.dvfs_throttle_events =
        static_cast<int>(board.governor().throttleEvents());
    res.final_freq_frac = board.governor().freqFrac();

    if (tracer) {
        res.sm_active = tracer->smActiveCdf();
        res.issue_slot = tracer->issueSlotCdf();
        res.tc_util = tracer->tcUtilCdf();
        res.kernels = tracer->kernelCount();
        res.kernel_us_mean =
            tracer->kernelDuration().count()
                ? sim::toUsec(static_cast<sim::Tick>(
                      tracer->kernelDuration().mean()))
                : 0.0;
    }

    for (std::size_t i = 0; i < procs.size(); ++i) {
        res.procs.push_back(collectProcess(*procs[i]));
        const auto &m = res.procs.back();
        if (m.deployed) {
            res.total_throughput += m.throughput;
            res.throughput_by_workload[static_cast<std::size_t>(
                proc_workload[i])] += m.throughput;
        }
    }

    jstats.stop();
    if (tracer)
        tracer->detach();
    return res;
}

ExperimentResult
runExperiment(const ExperimentSpec &spec)
{
    JETSIM_ASSERT(spec.processes >= 1 && spec.batch >= 1);

    MixedExperimentSpec mixed;
    mixed.device = spec.device;
    mixed.workloads = {WorkloadSpec{spec.model, spec.precision,
                                    spec.batch, spec.processes}};
    mixed.phase = spec.phase;
    mixed.warmup = spec.warmup;
    mixed.duration = spec.duration;
    mixed.pre_enqueue = spec.pre_enqueue;
    mixed.dvfs = spec.dvfs;
    mixed.biglittle = spec.biglittle;
    mixed.spatial_sharing = spec.spatial_sharing;
    mixed.seed = spec.seed;

    MixedExperimentResult m = runMixedExperiment(mixed);

    ExperimentResult res;
    res.spec = spec;
    res.all_deployed = m.all_deployed;
    res.deployed_count = m.deployed_count;
    res.total_throughput = m.total_throughput;
    res.avg_power_w = m.avg_power_w;
    res.max_power_w = m.max_power_w;
    res.gpu_util_pct = m.gpu_util_pct;
    res.mem_pct = m.mem_pct;
    res.workload_mem_mb = m.workload_mem_mb;
    res.sm_active = std::move(m.sm_active);
    res.issue_slot = std::move(m.issue_slot);
    res.tc_util = std::move(m.tc_util);
    res.kernels = m.kernels;
    res.kernel_us_mean = m.kernel_us_mean;
    res.dvfs_throttle_events = m.dvfs_throttle_events;
    res.final_freq_frac = m.final_freq_frac;
    res.procs = std::move(m.procs);

    int live = 0;
    for (const auto &p : res.procs) {
        if (!p.deployed)
            continue;
        ++live;
        res.mean.throughput += p.throughput;
        res.mean.ec_ms += p.ec_ms;
        res.mean.pipeline_ms += p.pipeline_ms;
        res.mean.enqueue_ms += p.enqueue_ms;
        res.mean.launch_ms_per_ec += p.launch_ms_per_ec;
        res.mean.sync_ms += p.sync_ms;
        res.mean.blocking_ms_per_ec += p.blocking_ms_per_ec;
        res.mean.resched_ms_per_ec += p.resched_ms_per_ec;
        res.mean.cpu_ms_per_ec += p.cpu_ms_per_ec;
        res.mean.cache_ms_per_ec += p.cache_ms_per_ec;
        res.mean.migrations += p.migrations;
        res.mean.preemptions += p.preemptions;
        res.mean.ecs += p.ecs;
    }
    if (live > 0) {
        const double n = live;
        res.throughput_per_process = res.total_throughput / n;
        res.mean.throughput /= n;
        res.mean.ec_ms /= n;
        res.mean.pipeline_ms /= n;
        res.mean.enqueue_ms /= n;
        res.mean.launch_ms_per_ec /= n;
        res.mean.sync_ms /= n;
        res.mean.blocking_ms_per_ec /= n;
        res.mean.resched_ms_per_ec /= n;
        res.mean.cpu_ms_per_ec /= n;
        res.mean.cache_ms_per_ec /= n;
        res.mean.deployed = true;
        res.mean.name = "mean";
    }
    return res;
}

std::pair<ExperimentResult, ExperimentResult>
runTwoPhase(ExperimentSpec spec)
{
    spec.phase = Phase::Light;
    ExperimentResult light = runExperiment(spec);
    spec.phase = Phase::Deep;
    ExperimentResult deep = runExperiment(spec);
    return {std::move(light), std::move(deep)};
}

} // namespace jetsim::core
