/**
 * @file
 * Deterministic parallel experiment runner.
 *
 * The paper's evaluation is a grid — device x model x precision x
 * batch x processes — and every cell is an independent, fully
 * isolated simulation: its own sim::EventQueue, its own Rng derived
 * only from spec.seed. That makes the grid embarrassingly parallel,
 * *provided* nothing global leaks between cells. Runner executes a
 * batch of cells on a work-stealing thread pool and returns results
 * in submission order; the determinism contract (proven by
 * tests/core/runner_test.cc and the tools/simcheck replay) is that
 * every result is bit-identical to a serial run of the same spec.
 *
 * Thread count resolution: Options::threads > 0 wins; 0 means auto —
 * the JETSIM_THREADS environment variable if set, else the hardware
 * concurrency. threads=1 is the preserved serial path (no pool, no
 * extra threads, progress fired as each cell starts, exactly the old
 * core::sweep* behaviour).
 *
 * Caching: when a cache directory is configured (Options::cache_dir,
 * or the JETSIM_CACHE_DIR environment variable), cells are served
 * from the content-addressed ResultCache when their spec digest hits,
 * and stored after a miss runs. Because results are bit-reproducible
 * a hit is indistinguishable from a re-run.
 *
 * Both environment variables are read through the core::env()
 * snapshot (DESIGN.md 4h): captured once at first use, immutable
 * after, so worker threads never touch mt-unsafe libc. A setenv()
 * after the first env() call is invisible until the
 * core::reloadEnv() test hook runs at a quiescent point.
 *
 * Progress callbacks are delivered serialized (never concurrently)
 * and in submission order; with threads > 1 a cell's callback fires
 * when the cell retires rather than when it starts.
 */

#ifndef JETSIM_CORE_RUNNER_HH
#define JETSIM_CORE_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace jetsim::core {

class ResultCache;

/** Optional progress callback (label of a grid cell). */
using ProgressFn = std::function<void(const std::string &)>;

/** Cache traffic observed by one Runner. */
struct RunnerCacheStats
{
    std::uint64_t hits = 0;   ///< cells served from the cache
    std::uint64_t misses = 0; ///< cells simulated
    std::uint64_t stores = 0; ///< results written back
};

/** Work-stealing executor for batches of experiment cells. */
class Runner
{
  public:
    struct Options
    {
        /** Worker threads; 0 = auto (JETSIM_THREADS, else hardware
         * concurrency), 1 = serial in-caller execution. */
        int threads = 0;

        /** Result-cache directory; empty = JETSIM_CACHE_DIR if set,
         * else caching disabled. */
        std::string cache_dir;

        /** Set false to ignore JETSIM_CACHE_DIR when cache_dir is
         * empty — for callers (e.g. the simcheck replay harness)
         * whose correctness depends on cells actually re-running. */
        bool env_cache = true;
    };

    /** Auto threads, env-driven cache (see Options defaults). */
    Runner();

    explicit Runner(Options opts);

    /** Convenience: Runner(4), Runner(2, dir). */
    explicit Runner(int threads, std::string cache_dir = "",
                    bool env_cache = true)
        : Runner(Options{threads, std::move(cache_dir), env_cache})
    {
    }
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Run every spec; results in submission order. */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs,
        const ProgressFn &progress = nullptr);

    /** Heterogeneous (multi-tenant) batch. */
    std::vector<MixedExperimentResult>
    runMixed(const std::vector<MixedExperimentSpec> &specs,
             const ProgressFn &progress = nullptr);

    /** Resolved worker count this runner uses. */
    int threads() const { return threads_; }

    bool cacheEnabled() const { return cache_ != nullptr; }

    /** Cumulative cache traffic across run()/runMixed() calls. */
    RunnerCacheStats cacheStats() const;

    /**
     * Thread-count resolution used by Options{threads=0}: positive
     * @p requested wins, else JETSIM_THREADS, else the hardware
     * concurrency (minimum 1).
     */
    static int resolveThreads(int requested);

  private:
    template <typename Spec, typename Result>
    std::vector<Result> runBatch(const std::vector<Spec> &specs,
                                 const ProgressFn &progress);

    int threads_;
    std::unique_ptr<ResultCache> cache_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
};

} // namespace jetsim::core

#endif // JETSIM_CORE_RUNNER_HH
