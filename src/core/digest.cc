#include "core/digest.hh"

#include "check/digest.hh"

namespace jetsim::core {

namespace {

void
addCdf(check::Digest &d, const prof::Cdf &c)
{
    d.add(static_cast<std::uint64_t>(c.count()));
    if (c.empty())
        return;
    d.add(c.mean());
    for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0})
        d.add(c.quantile(q));
}

void
addProc(check::Digest &d, const ProcessMetrics &p)
{
    d.add(p.name);
    d.add(std::uint64_t{p.deployed});
    d.add(p.throughput);
    d.add(p.ec_ms);
    d.add(p.pipeline_ms);
    d.add(p.enqueue_ms);
    d.add(p.launch_ms_per_ec);
    d.add(p.sync_ms);
    d.add(p.blocking_ms_per_ec);
    d.add(p.resched_ms_per_ec);
    d.add(p.cpu_ms_per_ec);
    d.add(p.cache_ms_per_ec);
    d.add(p.migrations);
    d.add(p.preemptions);
    d.add(p.ecs);
}

} // namespace

std::uint64_t
resultDigest(const ExperimentResult &r)
{
    check::Digest d;
    d.add(r.spec.label());
    d.add(std::uint64_t{r.all_deployed});
    d.add(static_cast<std::int64_t>(r.deployed_count));
    d.add(r.total_throughput);
    d.add(r.throughput_per_process);
    d.add(r.avg_power_w);
    d.add(r.max_power_w);
    d.add(r.gpu_util_pct);
    d.add(r.mem_pct);
    d.add(r.workload_mem_mb);
    d.add(static_cast<std::int64_t>(r.dvfs_throttle_events));
    d.add(r.final_freq_frac);
    addCdf(d, r.sm_active);
    addCdf(d, r.issue_slot);
    addCdf(d, r.tc_util);
    d.add(r.kernel_us_mean);
    d.add(r.kernels);
    for (const auto &p : r.procs)
        addProc(d, p);
    addProc(d, r.mean);
    return d.value();
}

std::uint64_t
resultDigest(const MixedExperimentResult &r)
{
    check::Digest d;
    d.add(r.spec.label());
    d.add(std::uint64_t{r.all_deployed});
    d.add(static_cast<std::int64_t>(r.deployed_count));
    d.add(r.total_throughput);
    d.add(r.avg_power_w);
    d.add(r.max_power_w);
    d.add(r.gpu_util_pct);
    d.add(r.mem_pct);
    d.add(r.workload_mem_mb);
    for (const double t : r.throughput_by_workload)
        d.add(t);
    for (const auto &p : r.procs)
        addProc(d, p);
    addCdf(d, r.sm_active);
    addCdf(d, r.issue_slot);
    addCdf(d, r.tc_util);
    d.add(r.kernel_us_mean);
    d.add(r.kernels);
    d.add(static_cast<std::int64_t>(r.dvfs_throttle_events));
    d.add(r.final_freq_frac);
    return d.value();
}

std::uint64_t
resultDigest(const FleetResult &r)
{
    check::Digest d;
    d.add(r.spec.label());
    d.add(std::uint64_t{r.all_deployed});
    for (const auto &dev : r.devices) {
        d.add(dev.name);
        d.add(dev.device);
        d.add(std::uint64_t{dev.deployed});
        d.add(dev.arrived);
        d.add(dev.served);
        d.add(dev.throughput);
        d.add(dev.p50_ms);
        d.add(dev.p99_ms);
        d.add(dev.max_ms);
        d.add(dev.max_queue);
    }
    d.add(r.total_throughput);
    d.add(r.p99_ms);
    d.add(r.dispatched);
    // Structural check: total events executed is the same simulation
    // regardless of shard/thread topology. epochs/merge_steps are
    // deliberately excluded (mode diagnostics).
    d.add(r.events);
    return d.value();
}

} // namespace jetsim::core
