/**
 * @file
 * Annotated mutex wrappers: the only sanctioned lock types in src/.
 *
 * core::Mutex wraps std::mutex with Clang thread-safety-analysis
 * capability attributes; core::LockGuard is the RAII scope that the
 * analysis (and the jetrace lock-order auditor) understands. Raw
 * std::mutex / std::lock_guard / std::unique_lock are banned from
 * src/ by jetrace's `raw-mutex` rule: routing every lock through
 * these two types is what makes both the compiler analysis
 * (-Wthread-safety) and the static lock-acquisition-order graph
 * sound — an unwrapped lock would be invisible to both.
 *
 * The wrappers are zero-cost: LockGuard is std::lock_guard with
 * attributes, Mutex is std::mutex with attributes; everything
 * inlines to the identical pthread calls (verified perf-neutral in
 * BENCH_runner.json after the PR-7 migration).
 *
 * Header-only so the lowest layers (sim, check) can use it without a
 * link dependency on jetsim_core.
 */

#ifndef JETSIM_CORE_MUTEX_HH
#define JETSIM_CORE_MUTEX_HH

#include <mutex>

#include "core/thread_annotations.hh"

namespace jetsim::core {

/** Annotated exclusive mutex (capability "mutex"). */
class JETSIM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() JETSIM_ACQUIRE() { m_.lock(); }
    void unlock() JETSIM_RELEASE() { m_.unlock(); }
    bool try_lock() JETSIM_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** The wrapped handle, for APIs that need a std::mutex (none in
     * tree today; condition variables would use this). */
    std::mutex &native() { return m_; }

  private:
    std::mutex m_;
};

/** RAII lock scope over core::Mutex (annotated std::lock_guard). */
class JETSIM_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) JETSIM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~LockGuard() JETSIM_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

} // namespace jetsim::core

#endif // JETSIM_CORE_MUTEX_HH
