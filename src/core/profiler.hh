/**
 * @file
 * TwoPhaseProfiler: the paper's methodology as a library call.
 *
 * runExperiment() stands up a fresh simulation (board, OS scheduler,
 * GPU engine, N inference processes), applies the phase's profiling
 * tools (phase 1: jetson-stats sampler; phase 2: + Nsight tracer with
 * its intrusion), runs warm-up followed by a measured window, and
 * returns an ExperimentResult. Deterministic for a given spec.
 */

#ifndef JETSIM_CORE_PROFILER_HH
#define JETSIM_CORE_PROFILER_HH

#include "core/experiment.hh"

namespace jetsim::core {

/** Execute one experiment from scratch. */
ExperimentResult runExperiment(const ExperimentSpec &spec);

/**
 * Execute a heterogeneous (multi-tenant) experiment: several groups
 * of processes running *different* models/precisions/batch sizes on
 * one board. Deterministic for a given spec.
 */
MixedExperimentResult
runMixedExperiment(const MixedExperimentSpec &spec);

/**
 * Convenience: run the same spec in both phases and return the pair
 * {light, deep} — the full two-phase methodology for one grid cell.
 */
std::pair<ExperimentResult, ExperimentResult>
runTwoPhase(ExperimentSpec spec);

} // namespace jetsim::core

#endif // JETSIM_CORE_PROFILER_HH
