/**
 * @file
 * Experiment specification and result types — the public face of the
 * profiling library.
 *
 * One ExperimentSpec describes a cell of the paper's measurement
 * grid: device x model x precision x batch x concurrent processes,
 * plus the profiling phase (1 = lightweight jetson-stats/trtexec,
 * 2 = deep Nsight tracing with intrusion) and ablation switches.
 */

#ifndef JETSIM_CORE_EXPERIMENT_HH
#define JETSIM_CORE_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prof/cdf.hh"
#include "sim/types.hh"
#include "soc/precision.hh"

namespace jetsim::core {

/** Which methodology phase to run (paper Section 4). */
enum class Phase {
    Light, ///< phase 1: trtexec + jetson-stats, no intrusion
    Deep,  ///< phase 2: + Nsight tracing, ~50 % throughput intrusion
};

/** Full description of one profiling run. */
struct ExperimentSpec
{
    std::string device = "orin-nano"; ///< orin-nano | nano | a40
    std::string model = "resnet50";
    soc::Precision precision = soc::Precision::Fp16;
    int batch = 1;
    int processes = 1;
    Phase phase = Phase::Light;

    sim::Tick warmup = sim::msec(400);
    sim::Tick duration = sim::sec(4);

    /** trtexec pre-enqueue depth (0 disables; ablation A1). */
    int pre_enqueue = 1;
    /** DVFS governor enabled (ablation A2). */
    bool dvfs = true;
    /** big.LITTLE partitioning enabled (ablation A3). */
    bool biglittle = true;
    /** Hypothetical spatial GPU sharing, i.e. MPS (ablation A5). */
    bool spatial_sharing = false;

    std::uint64_t seed = 1;

    /** Compact one-line identity for logs and reports. */
    std::string label() const;
};

/** Per-process measurements (Section 7 decomposition inputs). */
struct ProcessMetrics
{
    std::string name;
    bool deployed = false;
    double throughput = 0;        ///< img/s
    double ec_ms = 0;             ///< mean EC duration (completion period)
    double pipeline_ms = 0;       ///< enqueue-begin to GPU-done span
    double enqueue_ms = 0;        ///< mean CPU enqueue span
    double launch_ms_per_ec = 0;  ///< K: launch-API wall per EC
    double sync_ms = 0;           ///< CS span (wake + sync API)
    double blocking_ms_per_ec = 0;///< B: wake-wait per EC
    double resched_ms_per_ec = 0; ///< T: post-preemption wait per EC
    double cpu_ms_per_ec = 0;     ///< C: CPU work per EC
    double cache_ms_per_ec = 0;   ///< cache-penalty share of C
    std::uint64_t migrations = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t ecs = 0;
};

/**
 * One group of identical processes inside a mixed (multi-tenant)
 * experiment — e.g. 2x ResNet50 int8 b1 alongside 1x YoloV8n fp16 b4
 * on the same board, the AI-multi-tenancy scenario the paper's
 * related work motivates.
 */
struct WorkloadSpec
{
    std::string model = "resnet50";
    soc::Precision precision = soc::Precision::Fp16;
    int batch = 1;
    int processes = 1;
};

/** A heterogeneous concurrent experiment. */
struct MixedExperimentSpec
{
    std::string device = "orin-nano";
    std::vector<WorkloadSpec> workloads;
    Phase phase = Phase::Light;

    sim::Tick warmup = sim::msec(400);
    sim::Tick duration = sim::sec(4);
    int pre_enqueue = 1;
    bool dvfs = true;
    bool biglittle = true;
    bool spatial_sharing = false;
    std::uint64_t seed = 1;

    int totalProcesses() const;
    std::string label() const;
};

/** Everything one run produces. */
struct ExperimentResult
{
    ExperimentSpec spec;

    /** Deployment outcome. */
    bool all_deployed = false;
    int deployed_count = 0;

    /** SoC level. */
    double total_throughput = 0;     ///< img/s across processes
    double throughput_per_process = 0;
    double avg_power_w = 0;
    double max_power_w = 0;

    /** GPU level. */
    double gpu_util_pct = 0;
    double mem_pct = 0;          ///< of total RAM, incl. OS share
    double workload_mem_mb = 0;  ///< the deployment's own footprint
    int dvfs_throttle_events = 0;
    double final_freq_frac = 1.0;

    /** Phase-2 counter CDFs (percent units; empty in phase 1). */
    prof::Cdf sm_active;
    prof::Cdf issue_slot;
    prof::Cdf tc_util;

    /** Phase-2 kernel spans. */
    double kernel_us_mean = 0;
    std::uint64_t kernels = 0;

    std::vector<ProcessMetrics> procs;

    /** Mean across deployed processes of the ProcessMetrics fields. */
    ProcessMetrics mean;
};

/** Result of a heterogeneous run. */
struct MixedExperimentResult
{
    MixedExperimentSpec spec;
    bool all_deployed = false;
    int deployed_count = 0;

    double total_throughput = 0;
    double avg_power_w = 0;
    double max_power_w = 0;
    double gpu_util_pct = 0;
    double mem_pct = 0;
    double workload_mem_mb = 0;

    /** Aggregate throughput per workload group (spec order). */
    std::vector<double> throughput_by_workload;

    /** Per-process metrics, named "<model>/<precision>.N". */
    std::vector<ProcessMetrics> procs;

    /** Phase-2 counter CDFs (empty in phase 1). */
    prof::Cdf sm_active;
    prof::Cdf issue_slot;
    prof::Cdf tc_util;

    /** Phase-2 kernel spans. */
    double kernel_us_mean = 0;
    std::uint64_t kernels = 0;

    int dvfs_throttle_events = 0;
    double final_freq_frac = 1.0;
};

} // namespace jetsim::core

#endif // JETSIM_CORE_EXPERIMENT_HH
