#include "core/runner.hh"

#include <algorithm>
#include <deque>
#include <optional>
#include <thread>

#include "core/env.hh"
#include "core/mutex.hh"
#include "core/profiler.hh"
#include "core/result_cache.hh"
#include "sim/logging.hh"

namespace jetsim::core {

namespace {

/** Overload set so runBatch() stays a single template. */
ExperimentResult
executeSpec(const ExperimentSpec &spec)
{
    return runExperiment(spec);
}

MixedExperimentResult
executeSpec(const MixedExperimentSpec &spec)
{
    return runMixedExperiment(spec);
}

/**
 * One mutex-protected deque per worker. Each worker pops LIFO from
 * its own queue (warm caches) and steals FIFO from its victims'
 * queues when drained — the classic Chase-Lev discipline, with locks
 * instead of lock-free deques because a task here is a whole
 * simulation (seconds), so queue overhead is irrelevant.
 */
class StealPool
{
  public:
    StealPool(std::size_t workers, std::size_t tasks)
        : queues_(workers)
    {
        // Round-robin initial distribution keeps early, usually
        // cheaper cells (small batch, few processes) spread evenly.
        // Workers haven't spawned yet, but the fill still runs under
        // each queue's lock so the guarded-by contract holds in the
        // compiler's eyes too (uncontended lock: nanoseconds, once).
        for (std::size_t w = 0; w < workers; ++w) {
            LockGuard lock(queues_[w].m);
            for (std::size_t t = w; t < tasks; t += workers)
                queues_[w].tasks.push_back(t);
        }
    }

    /** Next task for @p worker, or nullopt when everything drained. */
    std::optional<std::size_t> next(std::size_t worker)
    {
        auto &own = queues_[worker];
        {
            LockGuard lock(own.m);
            if (!own.tasks.empty()) {
                const std::size_t t = own.tasks.back();
                own.tasks.pop_back();
                return t;
            }
        }
        // Each deque lock is taken and dropped in turn — never two at
        // once — so steals contribute no lock-order edges (jetrace's
        // graph over the pool is edge-free by construction).
        for (std::size_t i = 1; i < queues_.size(); ++i) {
            auto &victim = queues_[(worker + i) % queues_.size()];
            LockGuard lock(victim.m);
            if (!victim.tasks.empty()) {
                const std::size_t t = victim.tasks.front();
                victim.tasks.pop_front();
                return t;
            }
        }
        return std::nullopt;
    }

  private:
    struct Queue
    {
        Mutex m;
        std::deque<std::size_t> tasks JETSIM_GUARDED_BY(m);
    };

    std::deque<Queue> queues_; // deque: Queue is not movable
};

/**
 * Serialized, submission-ordered delivery of progress callbacks:
 * workers retire cells in any order; announcements drain strictly
 * in index order once every earlier cell has retired.
 */
class OrderedProgress
{
  public:
    OrderedProgress(std::size_t n, const ProgressFn &fn) : done_(n, 0), fn_(fn) {}

    template <typename Spec>
    void retire(std::size_t index, const std::vector<Spec> &specs)
    {
        if (!fn_)
            return;
        LockGuard lock(m_);
        done_[index] = 1;
        while (next_ < done_.size() && done_[next_]) {
            fn_(specs[next_].label());
            ++next_;
        }
    }

  private:
    Mutex m_;
    std::vector<char> done_ JETSIM_GUARDED_BY(m_);
    std::size_t next_ JETSIM_GUARDED_BY(m_) = 0;
    const ProgressFn &fn_;
};

} // namespace

int
Runner::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    // Worker-count config from the cached startup environment
    // (core::env()); thread count never affects results.
    if (const std::string &ts = env().threads; !ts.empty()) {
        const int v = std::atoi(ts.c_str());
        if (v > 0)
            return v;
        sim::warn("JETSIM_THREADS='%s' is not a positive integer; "
                  "using hardware concurrency", ts.c_str());
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

Runner::Runner() : Runner(Options{}) {}

Runner::Runner(Options opts) : threads_(resolveThreads(opts.threads))
{
    const std::string dir = !opts.cache_dir.empty()
                                ? opts.cache_dir
                                : (opts.env_cache ? env().cache_dir : "");
    if (!dir.empty())
        cache_ = std::make_unique<ResultCache>(dir);
}

Runner::~Runner() = default;

RunnerCacheStats
Runner::cacheStats() const
{
    RunnerCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    return s;
}

template <typename Spec, typename Result>
std::vector<Result>
Runner::runBatch(const std::vector<Spec> &specs,
                 const ProgressFn &progress)
{
    std::vector<Result> results(specs.size());
    if (specs.empty())
        return results;

    auto execute = [&](std::size_t i) {
        const Spec &spec = specs[i];
        if (cache_) {
            if (auto cached = cache_->load(spec)) {
                hits_.fetch_add(1, std::memory_order_relaxed);
                results[i] = std::move(*cached);
                return;
            }
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        results[i] = executeSpec(spec);
        if (cache_) {
            cache_->store(results[i]);
            stores_.fetch_add(1, std::memory_order_relaxed);
        }
    };

    // Serial path: no pool, and progress fires as a cell *starts*,
    // matching the historical core::sweep* behaviour exactly.
    if (threads_ <= 1 || specs.size() == 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (progress)
                progress(specs[i].label());
            execute(i);
        }
        return results;
    }

    const std::size_t workers =
        std::min(static_cast<std::size_t>(threads_), specs.size());
    StealPool pool(workers, specs.size());
    OrderedProgress announcer(specs.size(), progress);

    auto worker = [&](std::size_t w) {
        while (auto task = pool.next(w)) {
            execute(*task);
            announcer.retire(*task, specs);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(worker, w);
    for (auto &t : threads)
        t.join();
    return results;
}

std::vector<ExperimentResult>
Runner::run(const std::vector<ExperimentSpec> &specs,
            const ProgressFn &progress)
{
    return runBatch<ExperimentSpec, ExperimentResult>(specs, progress);
}

std::vector<MixedExperimentResult>
Runner::runMixed(const std::vector<MixedExperimentSpec> &specs,
                 const ProgressFn &progress)
{
    return runBatch<MixedExperimentSpec, MixedExperimentResult>(
        specs, progress);
}

} // namespace jetsim::core
