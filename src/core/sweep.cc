#include "core/sweep.hh"

#include "core/profiler.hh"

namespace jetsim::core {

namespace {

ExperimentResult
runCell(const ExperimentSpec &spec, const ProgressFn &progress)
{
    if (progress)
        progress(spec.label());
    return runExperiment(spec);
}

} // namespace

std::vector<ExperimentResult>
sweepPrecision(ExperimentSpec base,
               const std::vector<soc::Precision> &precisions,
               const ProgressFn &progress)
{
    std::vector<ExperimentResult> out;
    out.reserve(precisions.size());
    for (const auto p : precisions) {
        base.precision = p;
        out.push_back(runCell(base, progress));
    }
    return out;
}

std::vector<ExperimentResult>
sweepBatch(ExperimentSpec base, const std::vector<int> &batches,
           const ProgressFn &progress)
{
    std::vector<ExperimentResult> out;
    out.reserve(batches.size());
    for (const int b : batches) {
        base.batch = b;
        out.push_back(runCell(base, progress));
    }
    return out;
}

std::vector<ExperimentResult>
sweepGrid(ExperimentSpec base, const std::vector<int> &batches,
          const std::vector<int> &processes, const ProgressFn &progress)
{
    std::vector<ExperimentResult> out;
    out.reserve(batches.size() * processes.size());
    for (const int p : processes) {
        base.processes = p;
        for (const int b : batches) {
            base.batch = b;
            out.push_back(runCell(base, progress));
        }
    }
    return out;
}

} // namespace jetsim::core
