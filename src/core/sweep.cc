#include "core/sweep.hh"

namespace jetsim::core {

namespace {

std::vector<ExperimentResult>
runSpecs(const std::vector<ExperimentSpec> &specs,
         const ProgressFn &progress)
{
    Runner runner; // auto threads + env cache (see runner.hh)
    return runner.run(specs, progress);
}

} // namespace

std::vector<ExperimentResult>
sweepPrecision(ExperimentSpec base,
               const std::vector<soc::Precision> &precisions,
               const ProgressFn &progress)
{
    std::vector<ExperimentSpec> specs;
    specs.reserve(precisions.size());
    for (const auto p : precisions) {
        base.precision = p;
        specs.push_back(base);
    }
    return runSpecs(specs, progress);
}

std::vector<ExperimentResult>
sweepBatch(ExperimentSpec base, const std::vector<int> &batches,
           const ProgressFn &progress)
{
    std::vector<ExperimentSpec> specs;
    specs.reserve(batches.size());
    for (const int b : batches) {
        base.batch = b;
        specs.push_back(base);
    }
    return runSpecs(specs, progress);
}

std::vector<ExperimentResult>
sweepGrid(ExperimentSpec base, const std::vector<int> &batches,
          const std::vector<int> &processes, const ProgressFn &progress)
{
    std::vector<ExperimentSpec> specs;
    specs.reserve(batches.size() * processes.size());
    for (const int p : processes) {
        base.processes = p;
        for (const int b : batches) {
            base.batch = b;
            specs.push_back(base);
        }
    }
    return runSpecs(specs, progress);
}

ScreenedSweep
sweepGridScreened(ExperimentSpec base, const std::vector<int> &batches,
                  const std::vector<int> &processes,
                  const CellScreenFn &keep, const ProgressFn &progress)
{
    ScreenedSweep out;
    std::vector<ExperimentSpec> specs; // surviving cells, grid order
    std::vector<std::size_t> where;    // their grid positions
    std::size_t pos = 0;
    for (const int p : processes) {
        base.processes = p;
        for (const int b : batches) {
            base.batch = b;
            out.cells.emplace_back(std::nullopt);
            if (!keep || keep(base)) {
                specs.push_back(base);
                where.push_back(pos);
            } else {
                ++out.pruned;
                if (progress)
                    progress("pruned " + base.label());
            }
            ++pos;
        }
    }
    auto results = runSpecs(specs, progress);
    for (std::size_t i = 0; i < results.size(); ++i)
        out.cells[where[i]] = std::move(results[i]);
    out.simulated = static_cast<int>(specs.size());
    return out;
}

} // namespace jetsim::core
