/**
 * @file
 * Runtime-bottleneck analysis (the paper's Section 7 as a library).
 *
 * Decomposes the measured execution-context duration into the
 * paper's EC_i = sum_l (K_l + T_l + C_l + B_l) terms and classifies
 * the dominant constraint, turning raw profiles into the actionable
 * statements the paper boxes at the end of each subsection.
 */

#ifndef JETSIM_CORE_BOTTLENECK_HH
#define JETSIM_CORE_BOTTLENECK_HH

#include <string>
#include <vector>

#include "core/experiment.hh"

namespace jetsim::core {

/** Dominant constraint on a run's performance. */
enum class Bottleneck {
    GpuCompute,     ///< the GPU does useful work most of the time
    CpuBlocking,    ///< scheduler wait (B_l/T_l) dominates EC growth
    KernelLaunch,   ///< launch overhead is a large EC share
    MemoryCapacity, ///< deployment failed: unified RAM exhausted
    PowerThrottle,  ///< DVFS repeatedly down-clocked the GPU
};

const char *bottleneckName(Bottleneck b);

/** Per-EC decomposition in milliseconds. */
struct EcBreakdown
{
    double ec_ms = 0;       ///< measured EC_i span
    double launch_ms = 0;   ///< K: launch-API wall time per EC
    double resched_ms = 0;  ///< T: post-preemption dispatch wait
    double cpu_ms = 0;      ///< C: CPU work (incl. cache penalty)
    double cache_ms = 0;    ///< cache-penalty share of C
    double blocking_ms = 0; ///< B: wake-to-run wait
    double sync_ms = 0;     ///< CS span (blocking + sync API)

    Bottleneck primary = Bottleneck::GpuCompute;
    std::string explanation;
};

/** Decompose and classify one experiment result. */
EcBreakdown analyzeBottleneck(const ExperimentResult &res);

/** A paper-style takeaway derived from measured data. */
struct Observation
{
    std::string id;   ///< stable key, e.g. "best-precision"
    std::string text; ///< human-readable statement
};

/**
 * Derive cross-run observations from a set of results (typically one
 * sweep): best precision per device, concurrency thresholds, power
 * envelope compliance, SM-vs-issue-slot gaps, and more. Mirrors the
 * boxed conclusions of the paper's Sections 6-7.
 */
std::vector<Observation>
makeObservations(const std::vector<ExperimentResult> &results);

} // namespace jetsim::core

#endif // JETSIM_CORE_BOTTLENECK_HH
