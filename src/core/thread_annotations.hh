/**
 * @file
 * Clang Thread Safety Analysis attribute macros.
 *
 * jetsim's concurrency discipline is machine-checked at three levels:
 * dynamically (TSan, pass 2c), over schedule space (jetmc, pass 1d),
 * and — via these macros — at the source level (jetrace, pass 1f).
 * Every piece of shared mutable state must be one of:
 *
 *   - guarded:  `JETSIM_GUARDED_BY(mu_)` names the core::Mutex that
 *               must be held for every access;
 *   - atomic:   a std::atomic whose memory ordering is written at the
 *               use site;
 *   - confined: touched by exactly one thread, carrying a
 *               `// jetrace: confined(<thread>)` justification.
 *
 * Under Clang with -Wthread-safety (CMake: -DJETSIM_THREAD_SAFETY=ON)
 * the guarded contracts are compiler-enforced: an unguarded read of a
 * GUARDED_BY field is a build error. Under GCC the attributes expand
 * to nothing — the contracts are then still audited structurally by
 * tools/jetrace.py, which requires every global/static to carry one
 * of the three classifications and derives the static lock-order
 * graph from the JETSIM_* / core::LockGuard idiom.
 *
 * The macro set mirrors the Clang documentation's canonical
 * mutex.h (and abseil's thread_annotations.h); names are prefixed
 * JETSIM_ so the audit can grep them unambiguously.
 */

#ifndef JETSIM_CORE_THREAD_ANNOTATIONS_HH
#define JETSIM_CORE_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define JETSIM_THREAD_ATTR(x) __attribute__((x))
#else
#define JETSIM_THREAD_ATTR(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define JETSIM_CAPABILITY(x) JETSIM_THREAD_ATTR(capability(x))

/** Marks an RAII type that acquires on construction, releases on
 * destruction (core::LockGuard). */
#define JETSIM_SCOPED_CAPABILITY JETSIM_THREAD_ATTR(scoped_lockable)

/** Field/global access requires holding @p x. */
#define JETSIM_GUARDED_BY(x) JETSIM_THREAD_ATTR(guarded_by(x))

/** Pointee access requires holding @p x (the pointer itself is free). */
#define JETSIM_PT_GUARDED_BY(x) JETSIM_THREAD_ATTR(pt_guarded_by(x))

/** Capability must be acquired before the listed ones. */
#define JETSIM_ACQUIRED_BEFORE(...) \
    JETSIM_THREAD_ATTR(acquired_before(__VA_ARGS__))

/** Capability must be acquired after the listed ones. */
#define JETSIM_ACQUIRED_AFTER(...) \
    JETSIM_THREAD_ATTR(acquired_after(__VA_ARGS__))

/** Caller must hold the listed capabilities exclusively. */
#define JETSIM_REQUIRES(...) \
    JETSIM_THREAD_ATTR(requires_capability(__VA_ARGS__))

/** Caller must hold the listed capabilities at least shared. */
#define JETSIM_REQUIRES_SHARED(...) \
    JETSIM_THREAD_ATTR(requires_shared_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (exclusive). */
#define JETSIM_ACQUIRE(...) \
    JETSIM_THREAD_ATTR(acquire_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (shared). */
#define JETSIM_ACQUIRE_SHARED(...) \
    JETSIM_THREAD_ATTR(acquire_shared_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define JETSIM_RELEASE(...) \
    JETSIM_THREAD_ATTR(release_capability(__VA_ARGS__))

/** Function releases shared capabilities. */
#define JETSIM_RELEASE_SHARED(...) \
    JETSIM_THREAD_ATTR(release_shared_capability(__VA_ARGS__))

/** Conditional acquisition: returns @p r iff acquired. */
#define JETSIM_TRY_ACQUIRE(r, ...) \
    JETSIM_THREAD_ATTR(try_acquire_capability(r, __VA_ARGS__))

/** Caller must NOT hold the listed capabilities (anti-deadlock). */
#define JETSIM_EXCLUDES(...) \
    JETSIM_THREAD_ATTR(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define JETSIM_RETURN_CAPABILITY(x) \
    JETSIM_THREAD_ATTR(lock_returned(x))

/**
 * Escape hatch: the analysis is suppressed for this function. Every
 * use must explain why the contract holds anyway (e.g. a documented
 * quiescent-point accessor) — jetrace counts these.
 */
#define JETSIM_NO_THREAD_SAFETY_ANALYSIS \
    JETSIM_THREAD_ATTR(no_thread_safety_analysis)

#endif // JETSIM_CORE_THREAD_ANNOTATIONS_HH
