#include "check/digest.hh"

#include <cmath>
#include <cstring>

namespace jetsim::check {

void
Digest::addBytes(const void *p, std::size_t n)
{
    const auto *b = static_cast<const unsigned char *>(p);
    for (std::size_t i = 0; i < n; ++i) {
        h_ ^= b[i];
        h_ *= 0x100000001b3ULL;
    }
}

Digest &
Digest::add(std::uint64_t v)
{
    addBytes(&v, sizeof(v));
    return *this;
}

Digest &
Digest::add(std::int64_t v)
{
    return add(static_cast<std::uint64_t>(v));
}

Digest &
Digest::add(double v)
{
    // All NaN payloads hash alike so a NaN-vs-NaN comparison cannot
    // masquerade as non-determinism.
    if (std::isnan(v))
        return add(std::uint64_t{0x7ff8000000000000ULL});
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return add(bits);
}

Digest &
Digest::add(std::string_view s)
{
    addBytes(s.data(), s.size());
    return add(static_cast<std::uint64_t>(s.size()));
}

} // namespace jetsim::check
