/**
 * @file
 * The JetSan violation reporter.
 *
 * Every runtime invariant check in the simulator funnels through one
 * process-wide Reporter. A violation carries a severity, the
 * invariant class, the reporting component ("sim.event_queue",
 * "soc.memory", ...), the simulated time at which it was detected
 * (kTimeUnknown when the component has no clock), and a formatted
 * message.
 *
 * The reporter's mode decides what happens next:
 *  - Abort: print and abort() on Error (the default — tests and
 *    tier-1 runs must never continue past a simulator bug; this
 *    matches the panic() semantics the checks replaced),
 *  - Log:   print to stderr and keep running (benches, tools),
 *  - Count: record silently (violation-injection tests).
 *
 * The JETSIM_CHECK_MODE environment variable ("abort", "log",
 * "count") overrides the initial mode.
 */

#ifndef JETSIM_CHECK_REPORTER_HH
#define JETSIM_CHECK_REPORTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant.hh"
#include "core/mutex.hh"
#include "core/thread_annotations.hh"

namespace jetsim::check {

/** Sim time for components without access to a clock. */
constexpr std::int64_t kTimeUnknown = -1;

/** One recorded invariant violation. */
struct Violation
{
    Severity severity;
    Invariant invariant;
    std::string component; ///< e.g. "sim.event_queue"
    std::int64_t sim_time; ///< ticks; kTimeUnknown if not available
    std::string message;

    /** One-line rendering used by the Log/Abort modes. */
    std::string str() const;
};

/** Process-wide sink for invariant violations. */
class Reporter
{
  public:
    /** What to do when a violation is reported. */
    enum class Mode { Abort, Log, Count };

    /** The process-wide reporter. */
    static Reporter &instance();

    /** Report one violation (printf-style message). */
    void report(Severity sev, Invariant inv, const char *component,
                std::int64_t sim_time, const char *fmt, ...)
        JETSIM_EXCLUDES(mu_) __attribute__((format(printf, 6, 7)));

    /** Replace the mode; returns the previous one. */
    Mode setMode(Mode m) JETSIM_EXCLUDES(mu_);

    Mode mode() const JETSIM_EXCLUDES(mu_);

    /** Total violations reported since construction / clear(). */
    std::uint64_t total() const JETSIM_EXCLUDES(mu_);

    /** Violations reported for one invariant class. */
    std::uint64_t count(Invariant inv) const JETSIM_EXCLUDES(mu_);

    /**
     * Most recent violations (bounded history), copied under the
     * lock — safe at any time, including while parallel Runner cells
     * are still reporting.
     */
    std::vector<Violation> violationsSnapshot() const
        JETSIM_EXCLUDES(mu_);

    /**
     * Most recent violations, by reference to internal storage —
     * zero-copy, but legal only from a quiescent point (no
     * concurrent simulations reporting), e.g. after a Runner batch
     * has joined or under ScopedCapture in a single-threaded test.
     * The PR-7 thread-safety audit kept this accessor (every in-tree
     * caller is a quiescent test) but the analysis is suppressed, so
     * new callers must justify quiescence — prefer
     * violationsSnapshot().
     */
    const std::vector<Violation> &violations() const
        JETSIM_NO_THREAD_SAFETY_ANALYSIS
    {
        return violations_;
    }

    /** Drop all recorded violations and zero the counters. */
    void clear() JETSIM_EXCLUDES(mu_);

  private:
    Reporter();

    static constexpr std::size_t kMaxRecorded = 64;

    /** Guards every member: parallel Runner cells report through the
     * one process-wide instance. */
    mutable core::Mutex mu_;
    Mode mode_ JETSIM_GUARDED_BY(mu_) = Mode::Abort;
    std::uint64_t total_ JETSIM_GUARDED_BY(mu_) = 0;
    std::uint64_t by_invariant_[kInvariantCount] JETSIM_GUARDED_BY(
        mu_) = {};
    std::vector<Violation> violations_ JETSIM_GUARDED_BY(mu_);
};

/**
 * RAII capture scope for violation-injection tests: switches the
 * reporter to Count mode and clears its history, restoring both on
 * destruction. Query what the planted bug produced via the
 * accessors.
 */
class ScopedCapture
{
  public:
    ScopedCapture();
    ~ScopedCapture();

    ScopedCapture(const ScopedCapture &) = delete;
    ScopedCapture &operator=(const ScopedCapture &) = delete;

    std::uint64_t total() const { return Reporter::instance().total(); }

    std::uint64_t count(Invariant inv) const
    {
        return Reporter::instance().count(inv);
    }

    const std::vector<Violation> &violations() const
    {
        return Reporter::instance().violations();
    }

    /** Lock-safe copy; use when reporters may still be running. */
    std::vector<Violation> violationsSnapshot() const
    {
        return Reporter::instance().violationsSnapshot();
    }

  private:
    Reporter::Mode prev_;
};

} // namespace jetsim::check

#endif // JETSIM_CHECK_REPORTER_HH
