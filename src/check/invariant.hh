/**
 * @file
 * JetSan invariant taxonomy.
 *
 * Every runtime check in the simulator belongs to one of five
 * invariant classes, mirroring the failure modes that would corrupt
 * the paper-reproduction numbers silently: causality bugs in the
 * event queue, memory-accounting drift, stream/context hazards,
 * physically implausible model outputs, and cross-seed
 * non-determinism.
 */

#ifndef JETSIM_CHECK_INVARIANT_HH
#define JETSIM_CHECK_INVARIANT_HH

namespace jetsim::check {

/** How bad a violation is. */
enum class Severity {
    Info,    ///< noteworthy but harmless
    Warning, ///< recoverable; results may be degraded
    Error,   ///< simulator bug; results cannot be trusted
};

/** The invariant class a check belongs to. */
enum class Invariant {
    Causality,        ///< event-queue time ordering
    MemoryAccounting, ///< unified-memory alloc/free balance
    StreamHazard,     ///< use of destroyed streams/contexts, overlap
    Plausibility,     ///< physical bounds (power, freq, NaN/Inf)
    Determinism,      ///< same seed must reproduce bit-identically
    StaticLint,       ///< ahead-of-time findings (src/lint, jetlint)
};

/** Number of Invariant enumerators (sizes per-class counters). */
inline constexpr int kInvariantCount = 6;

/** Display name, e.g. "error". */
const char *severityName(Severity s);

/** Display name, e.g. "causality". */
const char *invariantName(Invariant i);

} // namespace jetsim::check

#endif // JETSIM_CHECK_INVARIANT_HH
