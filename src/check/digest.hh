/**
 * @file
 * Streaming 64-bit digest for determinism checking.
 *
 * The replay harness (tools/simcheck) and the determinism tests hash
 * every numeric field of an experiment result; two runs of the same
 * seeded spec must produce bit-identical digests. Doubles are hashed
 * by bit pattern, so even sub-ULP drift — the earliest symptom of
 * hidden global state or iteration-order dependence — is caught.
 */

#ifndef JETSIM_CHECK_DIGEST_HH
#define JETSIM_CHECK_DIGEST_HH

#include <cstdint>
#include <string_view>

namespace jetsim::check {

/** Order-sensitive FNV-1a accumulator over typed values. */
class Digest
{
  public:
    /** Fold in one 64-bit value. */
    Digest &add(std::uint64_t v);

    Digest &add(std::int64_t v);

    /** Fold in a double by bit pattern (NaNs normalised). */
    Digest &add(double v);

    /** Fold in a string's bytes and length. */
    Digest &add(std::string_view s);

    /** The digest over everything added so far. */
    std::uint64_t value() const { return h_; }

  private:
    void addBytes(const void *p, std::size_t n);

    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

} // namespace jetsim::check

#endif // JETSIM_CHECK_DIGEST_HH
